module hinfs

go 1.24
