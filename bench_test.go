// Benchmarks regenerating every measured artifact of the paper's
// evaluation (one benchmark per figure; Figs. 3-5 are diagrams), plus
// micro-benchmarks of the core data paths.
//
// The figure benchmarks drive the same harness as cmd/hinfs-bench in
// Quick mode with small op counts, so `go test -bench=.` reproduces each
// figure's shape in bounded time; run the CLI for full sweeps.
package hinfs

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"hinfs/internal/buffer"
	"hinfs/internal/cacheline"
	"hinfs/internal/clock"
	"hinfs/internal/core"
	"hinfs/internal/harness"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
	"hinfs/internal/pmfs"
	"hinfs/internal/vfs"
	"hinfs/internal/workload"
)

// benchCfg is a scaled-down environment so every figure regenerates
// quickly under `go test -bench`.
func benchCfg() harness.Config {
	return harness.Config{DeviceSize: 192 << 20}
}

// benchFigure runs a figure generator b.N times and logs the table once.
func benchFigure(b *testing.B, name string,
	fn func(harness.Config, harness.Opts) (*harness.Figure, error), o harness.Opts) {
	b.Helper()
	o.Quick = true
	for i := 0; i < b.N; i++ {
		fig, err := fn(benchCfg(), o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%s:\n%s", name, fig.Table.String())
		}
	}
}

func BenchmarkFig1TimeBreakdown(b *testing.B) {
	benchFigure(b, "Figure 1", harness.Figure1, harness.Opts{Ops: 2000})
}

func BenchmarkFig2FsyncBytes(b *testing.B) {
	benchFigure(b, "Figure 2", harness.Figure2, harness.Opts{Ops: 150})
}

func BenchmarkFig6ModelAccuracy(b *testing.B) {
	benchFigure(b, "Figure 6", harness.Figure6, harness.Opts{Ops: 200})
}

func BenchmarkFig7OverallPerformance(b *testing.B) {
	benchFigure(b, "Figure 7", harness.Figure7, harness.Opts{Ops: 30, Threads: 2})
}

func BenchmarkFig8Scalability(b *testing.B) {
	benchFigure(b, "Figure 8", harness.Figure8, harness.Opts{Ops: 20})
}

func BenchmarkFig9IOSizeCLFW(b *testing.B) {
	benchFigure(b, "Figure 9", harness.Figure9, harness.Opts{Ops: 60})
}

func BenchmarkFig10BufferSize(b *testing.B) {
	benchFigure(b, "Figure 10", harness.Figure10, harness.Opts{Ops: 40})
}

func BenchmarkFig11WriteLatency(b *testing.B) {
	benchFigure(b, "Figure 11", harness.Figure11, harness.Opts{Ops: 30})
}

func BenchmarkFig12TraceReplay(b *testing.B) {
	benchFigure(b, "Figure 12", harness.Figure12, harness.Opts{Ops: 1500})
}

func BenchmarkFig13Macrobenchmarks(b *testing.B) {
	benchFigure(b, "Figure 13", harness.Figure13, harness.Opts{Ops: 60})
}

func BenchmarkPoolScalingReport(b *testing.B) {
	benchFigure(b, "Pool scaling", harness.PoolScaling, harness.Opts{Ops: 30000})
}

// BenchmarkPoolParallelWrite measures DRAM buffer lock scaling directly:
// 8 goroutines issuing 64 B write hits to disjoint files on a single-lock
// pool (Shards: 1) versus the default sharded pool. Write hits touch no
// device and trigger no eviction, so the delta is pure lock contention.
// GOMAXPROCS is raised to 8 for the duration so the goroutines run on
// distinct OS threads.
//
// The gap requires >= 2 physical cores: on a single-core host only one
// thread executes at a time, so the global mutex is almost never contended
// and the two configurations coincide. Compare the sub-benchmarks on a
// multicore machine (the intended CI shape) to see the sharding win.
func BenchmarkPoolParallelWrite(b *testing.B) {
	const workers = 8
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)
	for _, sc := range []struct {
		name    string
		shards  int
		observe bool
	}{
		{"single-lock", 1, false},
		{"sharded", 0, false},
		// Same pool with an obs.Collector attached: the write-hit path
		// carries no recording calls (only stalls and writeback do), so
		// the delta vs "sharded" bounds the observability overhead.
		{"sharded-observed", 0, true},
	} {
		b.Run(sc.name, func(b *testing.B) {
			dev := microDevice(b)
			var col *obs.Collector
			if sc.observe {
				col = obs.New()
			}
			pool := buffer.NewPool(dev, clock.Real{}, buffer.Config{
				Blocks: 8192, Shards: sc.shards, CLFW: true, Obs: col})
			defer pool.Close()
			const blocksPer = 64
			addr := func(g int, blk int64) int64 {
				return (int64(g)*blocksPer + blk) * buffer.BlockSize
			}
			fbs := make([]*buffer.FileBuf, workers)
			line := make([]byte, cacheline.Size)
			for g := range fbs {
				fbs[g] = pool.NewFile()
				for blk := int64(0); blk < blocksPer; blk++ {
					fbs[g].Write(blk, 0, line, addr(g, blk), false)
				}
			}
			var next atomic.Int32
			b.SetBytes(cacheline.Size)
			b.SetParallelism(1) // workers = GOMAXPROCS = 8
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := int(next.Add(1)-1) % workers
				fb := fbs[g]
				buf := make([]byte, cacheline.Size)
				i := 0
				for pb.Next() {
					blk := int64(i % blocksPer)
					off := (i % cacheline.PerBlock) * cacheline.Size
					fb.Write(blk, off, buf, addr(g, blk), true)
					i++
				}
			})
		})
	}
}

// BenchmarkMetadataParallel measures metadata hot-path lock scaling
// directly: 8 goroutines running a create/write/fsync/unlink loop in
// private directories on bare PMFS, with the serial metadata path (one
// namespace lock, one journal lane, one allocator shard) versus the
// sharded one. The device is zero-latency, so the delta is pure software:
// lock contention in the namespace, journal slot allocation and the block
// allocator.
//
// As with BenchmarkPoolParallelWrite, the gap requires >= 2 physical
// cores; on a single-core host the configurations coincide. The
// `hinfs-bench -fig metascale` report reproduces the gap on any core
// count by scaling device latency instead.
func BenchmarkMetadataParallel(b *testing.B) {
	const workers = 8
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)
	for _, sc := range []struct {
		name string
		opts pmfs.Options
	}{
		{"serial", pmfs.Options{MaxInodes: 2048, SerialNamespace: true, JournalLanes: 1, AllocShards: 1}},
		{"sharded", pmfs.Options{MaxInodes: 2048}},
	} {
		b.Run(sc.name, func(b *testing.B) {
			dev := microDevice(b)
			fs, err := pmfs.Mkfs(dev, sc.opts)
			if err != nil {
				b.Fatal(err)
			}
			logs := make([]vfs.File, workers)
			line := make([]byte, 64)
			for g := 0; g < workers; g++ {
				dir := fmt.Sprintf("/g%d", g)
				if err := fs.Mkdir(dir); err != nil {
					b.Fatal(err)
				}
				f, err := fs.Create(dir + "/log")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := f.WriteAt(line, 0); err != nil {
					b.Fatal(err)
				}
				logs[g] = f
			}
			var next atomic.Int32
			b.SetParallelism(1) // workers = GOMAXPROCS = 8
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := int(next.Add(1)-1) % workers
				buf := make([]byte, 64)
				i := 0
				for pb.Next() {
					name := fmt.Sprintf("/g%d/f%d", g, i)
					f, err := fs.Create(name)
					if err != nil {
						b.Error(err)
						return
					}
					if err := f.Close(); err != nil {
						b.Error(err)
						return
					}
					if _, err := logs[g].WriteAt(buf, 0); err != nil {
						b.Error(err)
						return
					}
					if err := logs[g].Fsync(); err != nil {
						b.Error(err)
						return
					}
					if err := fs.Unlink(name); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// --- micro-benchmarks of the core data paths (unscaled, zero-latency
// device: they measure software overhead, not the emulated medium) ---

func microDevice(b *testing.B) *nvmm.Device {
	b.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	return dev
}

func BenchmarkHiNFSBufferedWrite4K(b *testing.B) {
	dev := microDevice(b)
	fs, err := core.Mkfs(dev, core.Options{BufferBlocks: 16384, PMFS: pmfs.Options{MaxInodes: 1024}})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Unmount()
	f, err := fs.Create("/bench")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	const span = int64(8 << 20)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, (int64(i)*4096)%span); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPMFSDirectWrite4K(b *testing.B) {
	dev := microDevice(b)
	fs, err := pmfs.Mkfs(dev, pmfs.Options{MaxInodes: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Unmount()
	f, err := fs.Create("/bench")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	const span = int64(8 << 20)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, (int64(i)*4096)%span); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHiNFSRead4K(b *testing.B) {
	dev := microDevice(b)
	fs, err := core.Mkfs(dev, core.Options{BufferBlocks: 4096, PMFS: pmfs.Options{MaxInodes: 1024}})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Unmount()
	f, err := fs.Create("/bench")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	const span = int64(8 << 20)
	if _, err := f.WriteAt(make([]byte, span), 0); err != nil {
		b.Fatal(err)
	}
	f.Fsync()
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, (int64(i)*4096)%span); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHiNFSMergedRead4K(b *testing.B) {
	// Reads that merge DRAM and NVMM cachelines (dirty middle lines).
	dev := microDevice(b)
	fs, err := core.Mkfs(dev, core.Options{BufferBlocks: 4096, PMFS: pmfs.Options{MaxInodes: 1024}})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Unmount()
	f, err := fs.Create("/bench")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	const span = int64(4 << 20)
	if _, err := f.WriteAt(make([]byte, span), 0); err != nil {
		b.Fatal(err)
	}
	f.Fsync()
	// Dirty one cacheline in every block.
	patch := make([]byte, 64)
	for off := int64(1024); off < span; off += 4096 {
		f.WriteAt(patch, off)
	}
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, (int64(i)*4096)%span); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFsyncSmallFile(b *testing.B) {
	dev := microDevice(b)
	fs, err := core.Mkfs(dev, core.Options{BufferBlocks: 4096, PMFS: pmfs.Options{MaxInodes: 1024}})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Unmount()
	f, err := fs.Create("/bench")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.WriteAt(buf, 0)
		if err := f.Fsync(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCreateUnlinkChurn(b *testing.B) {
	dev := microDevice(b)
	fs, err := core.Mkfs(dev, core.Options{BufferBlocks: 4096, PMFS: pmfs.Options{MaxInodes: 4096}})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Unmount()
	buf := make([]byte, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fs.Create("/churn")
		if err != nil {
			b.Fatal(err)
		}
		f.WriteAt(buf, 0)
		f.Close()
		if err := fs.Unlink("/churn"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReplacementPolicy compares LRW eviction order against a
// deliberately bad policy (evict most-recently-written) by measuring the
// buffer hit ratio proxy: the NVMM bytes flushed for a skewed rewrite
// workload. This backs the DESIGN.md ablation note on LRW.
func BenchmarkAblationLRWSkewedRewrites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dev := microDevice(b)
		fs, err := core.Mkfs(dev, core.Options{BufferBlocks: 128, PMFS: pmfs.Options{MaxInodes: 1024}})
		if err != nil {
			b.Fatal(err)
		}
		f, _ := fs.Create("/skew")
		rng := workload.NewRand(1)
		buf := make([]byte, 4096)
		for op := 0; op < 4000; op++ {
			// 80/20 skew across 512 blocks with a 128-block buffer.
			blk := int64(rng.HotIntn(512))
			f.WriteAt(buf, blk*4096)
		}
		f.Close()
		hits := fs.Pool().Stats().WriteHits
		fs.Unmount()
		if i == 0 {
			b.ReportMetric(float64(hits)/4000*100, "hit%")
		}
	}
}

// BenchmarkAblationPolicies compares buffer replacement policies' write
// hit ratios under an 80/20-skewed rewrite stream (DESIGN.md ablation:
// LRW vs FIFO vs LFW). Higher hit% = more coalescing before writeback.
func BenchmarkAblationPolicies(b *testing.B) {
	for _, pol := range []buffer.Policy{buffer.LRW, buffer.FIFO, buffer.LFW} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev := microDevice(b)
				fs, err := core.Mkfs(dev, core.Options{
					BufferBlocks: 128,
					Buffer:       buffer.Config{Policy: pol},
					PMFS:         pmfs.Options{MaxInodes: 1024},
				})
				if err != nil {
					b.Fatal(err)
				}
				f, _ := fs.Create("/skew")
				rng := workload.NewRand(1)
				buf := make([]byte, 4096)
				for op := 0; op < 4000; op++ {
					f.WriteAt(buf, int64(rng.HotIntn(512))*4096)
				}
				f.Close()
				hits := fs.Pool().Stats().WriteHits
				fs.Unmount()
				if i == 0 {
					b.ReportMetric(float64(hits)/4000*100, "hit%")
				}
			}
		})
	}
}

// BenchmarkAblationWritebackThresholds sweeps the Low_f/High_f watermarks
// (paper defaults 5%/20%), reporting foreground stalls per 4k writes.
func BenchmarkAblationWritebackThresholds(b *testing.B) {
	configs := []struct {
		name      string
		low, high float64
	}{
		{"low1-high5", 0.01, 0.05},
		{"low5-high20", 0.05, 0.20}, // paper defaults
		{"low20-high50", 0.20, 0.50},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev, err := nvmm.New(nvmm.Config{
					Size: 256 << 20, WriteLatency: 200, WriteBandwidth: 1 << 30, TimeScale: 8})
				if err != nil {
					b.Fatal(err)
				}
				fs, err := core.Mkfs(dev, core.Options{
					BufferBlocks: 256,
					Buffer:       buffer.Config{LowFree: c.low, HighFree: c.high},
					PMFS:         pmfs.Options{MaxInodes: 1024},
				})
				if err != nil {
					b.Fatal(err)
				}
				f, _ := fs.Create("/stream")
				buf := make([]byte, 4096)
				for op := 0; op < 4000; op++ {
					f.WriteAt(buf, int64(op%2048)*4096)
				}
				f.Close()
				stalls := fs.Pool().Stats().Stalls
				fs.Unmount()
				if i == 0 {
					b.ReportMetric(float64(stalls), "stalls")
				}
			}
		})
	}
}
