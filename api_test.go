package hinfs_test

import (
	"bytes"
	"testing"
	"time"

	"hinfs"
)

// TestPublicAPIQuickstart is the README quickstart, verified.
func TestPublicAPIQuickstart(t *testing.T) {
	dev, err := hinfs.NewDevice(hinfs.DeviceConfig{
		Size:           64 << 20,
		WriteLatency:   200 * time.Nanosecond,
		WriteBandwidth: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := hinfs.Mkfs(dev, hinfs.Options{BufferBlocks: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Unmount()

	f, err := fs.Create("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("hello, NVMM"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 11)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello, NVMM" {
		t.Fatalf("got %q", got)
	}
}

// TestPublicAPIBaselines mounts every baseline constructor on a fresh
// device and round-trips data through the shared FileSystem interface.
func TestPublicAPIBaselines(t *testing.T) {
	constructors := map[string]func(*hinfs.Device) (hinfs.FileSystem, error){
		"pmfs": func(d *hinfs.Device) (hinfs.FileSystem, error) {
			return hinfs.NewPMFS(d, hinfs.PMFSOptions{MaxInodes: 512})
		},
		"ext2": func(d *hinfs.Device) (hinfs.FileSystem, error) {
			return hinfs.NewExt2(d, hinfs.ExtOptions{MaxInodes: 512})
		},
		"ext4": func(d *hinfs.Device) (hinfs.FileSystem, error) {
			return hinfs.NewExt4(d, hinfs.ExtOptions{MaxInodes: 512})
		},
		"ext4-dax": func(d *hinfs.Device) (hinfs.FileSystem, error) {
			return hinfs.NewExt4DAX(d, hinfs.ExtOptions{MaxInodes: 512})
		},
	}
	for name, mk := range constructors {
		t.Run(name, func(t *testing.T) {
			dev, err := hinfs.NewDevice(hinfs.DefaultDeviceConfig(64 << 20))
			if err != nil {
				t.Fatal(err)
			}
			fs, err := mk(dev)
			if err != nil {
				t.Fatal(err)
			}
			defer fs.Unmount()
			f, err := fs.Create("/x")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			payload := bytes.Repeat([]byte{0x7E}, 9000)
			if _, err := f.WriteAt(payload, 123); err != nil {
				t.Fatal(err)
			}
			if err := f.Fsync(); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(payload))
			if _, err := f.ReadAt(got, 123); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("round trip failed")
			}
		})
	}
}

// TestPublicAPIImagePersistence saves a device image and reopens it.
func TestPublicAPIImagePersistence(t *testing.T) {
	dev, _ := hinfs.NewDevice(hinfs.DefaultDeviceConfig(64 << 20))
	fs, err := hinfs.Mkfs(dev, hinfs.Options{BufferBlocks: 512})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/keep")
	f.WriteAt([]byte("saved"), 0)
	f.Close()
	fs.Unmount()

	var img bytes.Buffer
	if err := dev.Save(&img); err != nil {
		t.Fatal(err)
	}
	dev2, err := hinfs.LoadDevice(&img, hinfs.DeviceConfig{WriteLatency: 200 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := hinfs.Mount(dev2, hinfs.Options{BufferBlocks: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Unmount()
	g, err := fs2.Open("/keep", hinfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got := make([]byte, 5)
	g.ReadAt(got, 0)
	if string(got) != "saved" {
		t.Fatalf("got %q", got)
	}
}
