// Webcache: a Webproxy-style application (paper Table 1) showing why
// HiNFS's delete-aware write buffer wins on short-lived files: cached
// objects are written, served a few times, and evicted — and objects
// deleted before background writeback never cost a single NVMM write
// ("writes to files that are later deleted do not need to be performed",
// paper §1).
package main

import (
	"fmt"
	"log"
	"time"

	"hinfs"
)

const objects = 64

func objPath(i int) string { return fmt.Sprintf("/cache/obj%d", i) }

func main() {
	dev, err := hinfs.NewDevice(hinfs.DeviceConfig{
		Size:           128 << 20,
		WriteLatency:   200 * time.Nanosecond,
		WriteBandwidth: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := hinfs.Mkfs(dev, hinfs.Options{BufferBlocks: 8192})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Unmount()
	dev.ResetStats() // count only the application's I/O below

	if err := fs.Mkdir("/cache"); err != nil {
		log.Fatal(err)
	}

	// fill simulates fetching an object from origin and caching it.
	body := make([]byte, 16<<10)
	fill := func(i int) error {
		f, err := fs.Open(objPath(i), hinfs.OCreate|hinfs.ORdwr|hinfs.OTrunc)
		if err != nil {
			return err
		}
		defer f.Close()
		for j := range body {
			body[j] = byte(i + j)
		}
		_, err = f.WriteAt(body, 0)
		return err
	}
	// serve reads a cached object (a proxy cache hit).
	serve := func(i int) error {
		f, err := fs.Open(objPath(i), hinfs.ORdonly)
		if err != nil {
			return err
		}
		defer f.Close()
		buf := make([]byte, f.Size())
		_, err = f.ReadAt(buf, 0)
		return err
	}

	// Churn: cache objects, serve them, then invalidate (delete) most
	// before the background writeback would have persisted them.
	served, invalidated := 0, 0
	for round := 0; round < 20; round++ {
		for i := 0; i < objects; i++ {
			if err := fill(i); err != nil {
				log.Fatal(err)
			}
			for h := 0; h < 3; h++ {
				if err := serve(i); err != nil {
					log.Fatal(err)
				}
				served++
			}
			if i%4 != 0 { // 75% of objects are invalidated quickly
				if err := fs.Unlink(objPath(i)); err != nil {
					log.Fatal(err)
				}
				invalidated++
			}
		}
	}

	ps := fs.Pool().Stats()
	ds := dev.Stats()
	written := 20 * objects * len(body)
	fmt.Printf("objects cached:    %d (%.1f MiB written by the application)\n",
		20*objects, float64(written)/(1<<20))
	fmt.Printf("cache hits served: %d\n", served)
	fmt.Printf("invalidated:       %d objects before writeback\n", invalidated)
	fmt.Printf("dropped blocks:    %d dirty DRAM blocks never reached NVMM\n", ps.Drops)
	fmt.Printf("NVMM flushed:      %.1f MiB (vs %.1f MiB written — the gap is the buffer's win)\n",
		float64(ds.BytesFlushed)/(1<<20), float64(written)/(1<<20))
}
