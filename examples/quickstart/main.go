// Quickstart: create a HiNFS instance on an emulated NVMM device, write a
// file through the DRAM write buffer, persist it with fsync, and inspect
// what reached NVMM.
package main

import (
	"fmt"
	"log"
	"time"

	"hinfs"
)

func main() {
	// An emulated NVMM device with the paper's Table-2 characteristics:
	// 200 ns per-cacheline write latency, 1 GB/s write bandwidth.
	dev, err := hinfs.NewDevice(hinfs.DeviceConfig{
		Size:           128 << 20,
		WriteLatency:   200 * time.Nanosecond,
		WriteBandwidth: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Mount HiNFS with a 16 MB DRAM write buffer.
	fs, err := hinfs.Mkfs(dev, hinfs.Options{BufferBlocks: 4096})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Unmount()
	dev.ResetStats() // count only the application's I/O below

	if err := fs.Mkdir("/docs"); err != nil {
		log.Fatal(err)
	}
	f, err := fs.Create("/docs/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// A normal write is lazy-persistent: it lands in the DRAM buffer and
	// returns at memory speed; NVMM is written in the background.
	msg := []byte("hello, non-volatile world\n")
	if _, err := f.WriteAt(msg, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after write:  %d dirty DRAM block(s), %d B flushed to NVMM\n",
		fs.Pool().DirtyBlocks(), dev.Stats().BytesFlushed)

	// fsync persists the file's buffered blocks to NVMM.
	if err := f.Fsync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after fsync:  %d dirty DRAM block(s), %d B flushed to NVMM\n",
		fs.Pool().DirtyBlocks(), dev.Stats().BytesFlushed)

	// Reads copy straight from DRAM and/or NVMM to the caller — one copy,
	// no page cache in between.
	buf := make([]byte, len(msg))
	if _, err := f.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back:    %q\n", buf)

	// Directory listing and metadata come from the persistent substrate.
	ents, err := fs.ReadDir("/docs")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range ents {
		fi, _ := fs.Stat("/docs/" + e.Name)
		fmt.Printf("/docs/%s: %d bytes\n", e.Name, fi.Size)
	}
}
