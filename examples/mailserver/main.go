// Mailserver: a Varmail-style application (paper Table 1) showing the
// Eager-Persistent Write Checker in action. Mailboxes are append-fsync
// files; after a few delivery-sync cycles the Buffer Benefit Model learns
// that buffering such blocks cannot help (every write is flushed by the
// next fsync) and routes subsequent appends directly to NVMM, skipping the
// double copy.
package main

import (
	"fmt"
	"log"
	"time"

	"hinfs"
)

func main() {
	dev, err := hinfs.NewDevice(hinfs.DeviceConfig{
		Size:           128 << 20,
		WriteLatency:   200 * time.Nanosecond,
		WriteBandwidth: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := hinfs.Mkfs(dev, hinfs.Options{BufferBlocks: 4096})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Unmount()
	dev.ResetStats() // count only the application's I/O below

	if err := fs.Mkdir("/mail"); err != nil {
		log.Fatal(err)
	}

	users := []string{"alice", "bob", "carol"}
	boxes := make(map[string]hinfs.File)
	for _, u := range users {
		f, err := fs.Open("/mail/"+u, hinfs.OCreate|hinfs.ORdwr|hinfs.OAppend)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		boxes[u] = f
	}

	// Deliver mail: append + fsync, the mail server's durability contract.
	deliver := func(user, from, body string) error {
		msg := fmt.Sprintf("From: %s\n\n%s\n.\n", from, body)
		f := boxes[user]
		if _, err := f.WriteAt([]byte(msg), 0); err != nil {
			return err
		}
		return f.Fsync() // the message is durable when delivery returns
	}

	for round := 0; round < 50; round++ {
		for _, u := range users {
			if err := deliver(u, "list@example.com",
				fmt.Sprintf("newsletter issue %d for %s", round, u)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The model has been watching each block's sync behaviour.
	acc, total := fs.Model().Accuracy()
	ps := fs.Pool().Stats()
	fmt.Printf("deliveries:        %d (all fsynced)\n", 50*len(users))
	fmt.Printf("model decisions:   %d (%d consistent with the previous sync)\n", total, acc)
	fmt.Printf("buffered writes:   %d hits + %d misses\n", ps.WriteHits, ps.WriteMisses)
	fmt.Printf("NVMM flushed:      %.1f KiB (mail + metadata, all eager)\n", float64(dev.Stats().BytesFlushed)/(1<<10))
	fmt.Printf("dirty DRAM blocks: %d (eager-persistent appends bypass the buffer)\n",
		fs.Pool().DirtyBlocks())

	// Mailbox contents survive: read one back.
	fi, _ := fs.Stat("/mail/alice")
	fmt.Printf("/mail/alice:       %d bytes of durable mail\n", fi.Size)
}
