// Tracereplay: replay the same synthesized desktop I/O trace (Usr0,
// paper §5.3) against HiNFS and PMFS and compare where the time goes —
// a miniature of the paper's Figure 12.
package main

import (
	"fmt"
	"log"
	"time"

	"hinfs/internal/harness"
	"hinfs/internal/trace"
)

func main() {
	cfg := harness.Config{DeviceSize: 256 << 20}

	fmt.Println("replaying the usr0 trace (8000 ops) on two systems:")
	var pmfsTotal time.Duration
	for _, sys := range []harness.System{harness.PMFS, harness.HiNFS} {
		tr := trace.Usr0(8000)
		inst, err := harness.NewInstance(sys, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.Prepare(inst.FS); err != nil {
			log.Fatal(err)
		}
		res, err := tr.Replay(inst.FS)
		if err != nil {
			log.Fatal(err)
		}
		inst.Close()

		total := res.Total()
		if sys == harness.PMFS {
			pmfsTotal = total
		}
		fmt.Printf("\n%s: total %v\n", sys, total.Round(time.Millisecond))
		for _, k := range []trace.Kind{trace.Read, trace.Write, trace.Unlink, trace.Fsync} {
			fmt.Printf("  %-6s %10v\n", k, res.TimeFor(k).Round(time.Microsecond))
		}
		if sys == harness.HiNFS && pmfsTotal > 0 {
			fmt.Printf("\nHiNFS replay time = %.0f%% of PMFS (paper: ~63%% on Usr0)\n",
				100*float64(total)/float64(pmfsTotal))
		}
	}
}
