// Package hinfs is a userspace reproduction of HiNFS, the high
// performance file system for non-volatile main memory from EuroSys 2016
// (Ou, Shu, Lu), together with every system its evaluation depends on.
//
// HiNFS hides NVMM's long write latency by buffering lazy-persistent
// writes in a DRAM write buffer managed at cacheline granularity, while
// eliminating double-copy overheads with direct access for reads and for
// eager-persistent writes, classified online by a Buffer Benefit Model.
//
// The package is a facade over the internal implementation:
//
//   - New/Mkfs/Mount create HiNFS instances on an emulated NVMM Device.
//   - NewPMFS, NewExt2, NewExt4, NewExt4DAX build the paper's baseline
//     systems (Table 3) on the same Device abstraction.
//   - The FileSystem/File interfaces are shared by every system, so any
//     workload runs unmodified against any of them.
//
// Quickstart:
//
//	dev, _ := hinfs.NewDevice(hinfs.DeviceConfig{
//		Size:           256 << 20,
//		WriteLatency:   200 * time.Nanosecond, // emulated NVMM
//		WriteBandwidth: 1 << 30,
//	})
//	fs, _ := hinfs.Mkfs(dev, hinfs.Options{BufferBlocks: 8192})
//	defer fs.Unmount()
//	f, _ := fs.Create("/hello.txt")
//	f.WriteAt([]byte("hello, NVMM"), 0)
//	f.Fsync()
package hinfs

import (
	"io"

	"hinfs/internal/blockdev"
	"hinfs/internal/core"
	"hinfs/internal/extfs"
	"hinfs/internal/nvmm"
	"hinfs/internal/pmfs"
	"hinfs/internal/vfs"
)

// Core file-system surface shared by every system in the repository.
type (
	// FileSystem is a mounted file system instance.
	FileSystem = vfs.FileSystem
	// File is an open file handle.
	File = vfs.File
	// FileInfo describes a file.
	FileInfo = vfs.FileInfo
	// DirEntry is a directory listing entry.
	DirEntry = vfs.DirEntry
)

// Open flags.
const (
	ORdonly = vfs.ORdonly
	OWronly = vfs.OWronly
	ORdwr   = vfs.ORdwr
	OCreate = vfs.OCreate
	OTrunc  = vfs.OTrunc
	OAppend = vfs.OAppend
	OSync   = vfs.OSync
)

// Common errors.
var (
	ErrNotExist = vfs.ErrNotExist
	ErrExist    = vfs.ErrExist
	ErrIsDir    = vfs.ErrIsDir
	ErrNotDir   = vfs.ErrNotDir
	ErrNotEmpty = vfs.ErrNotEmpty
	ErrNoSpace  = vfs.ErrNoSpace
	ErrClosed   = vfs.ErrClosed
	ErrInvalid  = vfs.ErrInvalid
)

// Device is an emulated NVMM device (DRAM-backed, with the paper's
// latency/bandwidth model).
type Device = nvmm.Device

// DeviceConfig configures an emulated device.
type DeviceConfig = nvmm.Config

// DeviceStats snapshots device counters.
type DeviceStats = nvmm.Stats

// NewDevice creates an emulated NVMM device.
func NewDevice(cfg DeviceConfig) (*Device, error) { return nvmm.New(cfg) }

// LoadDevice restores a device image previously written with Device.Save,
// applying cfg's performance model.
func LoadDevice(r io.Reader, cfg DeviceConfig) (*Device, error) { return nvmm.Load(r, cfg) }

// DefaultDeviceConfig returns the paper's Table-2 device (200 ns write
// latency, 1 GB/s write bandwidth) at the given capacity.
func DefaultDeviceConfig(size int64) DeviceConfig { return nvmm.DefaultConfig(size) }

// Options configures a HiNFS mount (DRAM buffer size, variants, policy
// knobs).
type Options = core.Options

// FS is a mounted HiNFS instance (it implements FileSystem and exposes
// buffer/model statistics).
type FS = core.FS

// Mkfs formats dev and mounts HiNFS on it.
func Mkfs(dev *Device, opts Options) (*FS, error) { return core.Mkfs(dev, opts) }

// Mount mounts HiNFS on a formatted device, running journal recovery.
func Mount(dev *Device, opts Options) (*FS, error) { return core.Mount(dev, opts) }

// MountRecover is Mount, also reporting the number of journal
// transactions rolled back during recovery.
func MountRecover(dev *Device, opts Options) (*FS, int, error) {
	return core.MountRecover(dev, opts)
}

// PMFSOptions tunes the PMFS substrate/baseline format.
type PMFSOptions = pmfs.Options

// NewPMFS formats dev as the PMFS baseline: direct access for all
// operations, no DRAM buffer.
func NewPMFS(dev *Device, opts PMFSOptions) (FileSystem, error) {
	return pmfs.Mkfs(dev, opts)
}

// MountPMFS mounts an existing PMFS image with journal recovery.
func MountPMFS(dev *Device) (FileSystem, error) { return pmfs.Mount(dev) }

// ExtOptions tunes the block-based baselines.
type ExtOptions = extfs.Options

// BlockConfig tunes the emulated generic block layer.
type BlockConfig = blockdev.Config

// NewExt2 builds the EXT2+NVMMBD baseline: a non-journaling block file
// system through the OS page cache and the generic block layer.
func NewExt2(dev *Device, opts ExtOptions) (FileSystem, error) {
	opts.Journal = false
	opts.DAX = false
	return extfs.Mkfs(dev, opts)
}

// NewExt4 builds the EXT4+NVMMBD baseline: EXT2 plus JBD2-style
// ordered-mode metadata journaling.
func NewExt4(dev *Device, opts ExtOptions) (FileSystem, error) {
	opts.Journal = true
	opts.DAX = false
	return extfs.Mkfs(dev, opts)
}

// NewExt4DAX builds the EXT4-DAX baseline: file data bypasses the page
// cache (direct NVMM copies) while metadata keeps the EXT4 cache path.
func NewExt4DAX(dev *Device, opts ExtOptions) (FileSystem, error) {
	opts.Journal = true
	opts.DAX = true
	return extfs.Mkfs(dev, opts)
}
