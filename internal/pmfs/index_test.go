package pmfs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestIndexTreeProperty drives the per-file block index with random
// ensure/free sequences and checks it against a map shadow: lookups agree,
// created-flags are truthful, and freeing everything returns the allocator
// to its starting state (no leaks, no double frees — the allocator panics
// on those).
func TestIndexTreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		fs, _ := testFS(t)
		free0 := fs.FreeBlocks()
		rng := rand.New(rand.NewSource(seed))
		rec := inodeRec{Type: typeFile}
		shadow := make(map[int64]int64) // idx → block number

		for op := 0; op < 60; op++ {
			tx := fs.jnl.Begin()
			switch rng.Intn(4) {
			case 0, 1: // ensure a random single index (occasionally deep)
				idx := int64(rng.Intn(64))
				if rng.Intn(8) == 0 {
					idx = int64(512 + rng.Intn(2000))
				}
				bn, created, err := fs.treeEnsure(tx, &rec, idx)
				if err != nil {
					t.Logf("ensure: %v", err)
					tx.Commit()
					return false
				}
				if prev, ok := shadow[idx]; ok {
					if created || prev != bn {
						t.Logf("idx %d: created=%v bn=%d prev=%d", idx, created, bn, prev)
						tx.Commit()
						return false
					}
				} else if !created {
					t.Logf("idx %d: expected created", idx)
					tx.Commit()
					return false
				}
				shadow[idx] = bn
			case 2: // ensure a contiguous range
				first := int64(rng.Intn(100))
				count := int64(1 + rng.Intn(40))
				exts, err := fs.treeEnsureRange(tx, &rec, first, count, nil)
				if err != nil {
					t.Logf("range: %v", err)
					tx.Commit()
					return false
				}
				for _, e := range exts {
					bn := e.Addr / BlockSize
					if prev, ok := shadow[e.Index]; ok {
						if e.Created || prev != bn {
							t.Logf("range idx %d inconsistent", e.Index)
							tx.Commit()
							return false
						}
					} else if !e.Created {
						t.Logf("range idx %d: expected created", e.Index)
						tx.Commit()
						return false
					}
					shadow[e.Index] = bn
				}
			case 3: // free from a random cut point
				from := int64(rng.Intn(128))
				fs.treeFreeFrom(tx, &rec, from)
				for idx := range shadow {
					if idx >= from {
						delete(shadow, idx)
					}
				}
			}
			tx.Commit()
			// Spot-check lookups.
			for k := 0; k < 5; k++ {
				idx := int64(rng.Intn(128))
				got := fs.treeLookup(rec, idx)
				want := shadow[idx]
				if got != want {
					t.Logf("lookup idx %d: got %d want %d", idx, got, want)
					return false
				}
			}
			if int64(len(shadow)) != rec.Blocks {
				t.Logf("block count %d != shadow %d", rec.Blocks, len(shadow))
				return false
			}
		}
		// Tear down: everything must return to the allocator.
		tx := fs.jnl.Begin()
		fs.treeFreeFrom(tx, &rec, 0)
		tx.Commit()
		if fs.FreeBlocks() != free0 {
			t.Logf("leak: %d != %d", fs.FreeBlocks(), free0)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestCapBlocksAndHeightFor pins the tree geometry.
func TestCapBlocksAndHeightFor(t *testing.T) {
	if capBlocks(0) != 1 || capBlocks(1) != 512 || capBlocks(2) != 512*512 {
		t.Fatal("capBlocks wrong")
	}
	cases := []struct {
		idx  int64
		want byte
	}{
		{0, 0}, {1, 1}, {511, 1}, {512, 2}, {512*512 - 1, 2}, {512 * 512, 3},
	}
	for _, c := range cases {
		if got := heightFor(c.idx); got != c.want {
			t.Errorf("heightFor(%d) = %d, want %d", c.idx, got, c.want)
		}
	}
}
