package pmfs

import (
	"encoding/binary"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"hinfs/internal/journal"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
	"hinfs/internal/vfs"
)

// DefaultAllocShards is the default number of allocator shards. Matches
// journal.DefaultLanes so a metadata transaction's journal lane and block
// shard contend at the same concurrency grain.
const DefaultAllocShards = 8

// allocShard is one independently locked slice of the block range. Shard
// boundaries are 64-block (one bitmap word) aligned, so every mirror word
// is owned by exactly one shard and can be read-modified-persisted under
// that shard's mutex alone.
type allocShard struct {
	mu   sync.Mutex
	lo   int64 // first block of the shard's range
	hi   int64 // one past the last block
	free int64 // zero bits in [lo, hi), exact under mu
	hint int64 // next block number to try; rewound on release
}

// allocator manages the persistent block bitmap. A DRAM mirror of the
// bitmap serves lookups; every change is undo-journaled and written through
// to the NVMM bitmap so that recovery sees a consistent free map.
//
// The block range is partitioned into word-aligned shards, each with its
// own mutex, free count and allocation hint (NOVA-style per-CPU free
// lists). An allocation reserves space globally (one CAS on freeTotal — the
// all-or-nothing ErrNoSpace check), picks a round-robin home shard, and
// steals from neighbouring shards when its home runs dry. Sharding is a
// DRAM-only concurrency structure: the persistent bitmap format and the
// XOR undo records are unchanged, so recovery and recoverRebuild are
// oblivious to the shard count.
type allocator struct {
	dev         *nvmm.Device
	bitmapStart int64 // device byte offset of bitmap
	firstBlock  int64 // first allocatable block number
	totalBlocks int64

	words []uint64 // DRAM mirror, bit set = allocated

	shards        []*allocShard
	wordsPerShard int64
	nextShard     atomic.Uint64 // round-robin home-shard assignment
	// freeTotal is the global free count. Invariant: freeTotal never
	// exceeds the number of zero bits in the mirror — alloc decrements it
	// before setting bits, release increments it after clearing them — so
	// a successful reservation always finds its blocks in some shard.
	freeTotal atomic.Int64

	steals       atomic.Int64 // cross-shard grabs (home shard ran dry)
	wordsScanned atomic.Int64 // bitmap words examined by free-block scans
	col          atomic.Pointer[obs.Collector]
}

func newAllocator(dev *nvmm.Device, l layout, shards int) *allocator {
	if shards <= 0 {
		shards = DefaultAllocShards
	}
	a := &allocator{
		dev:         dev,
		bitmapStart: l.bitmapStart,
		firstBlock:  l.dataStart,
		totalBlocks: l.totalBlocks,
		words:       make([]uint64, (l.totalBlocks+63)/64),
	}
	numWords := int64(len(a.words))
	if int64(shards) > numWords {
		shards = int(numWords)
	}
	a.wordsPerShard = (numWords + int64(shards) - 1) / int64(shards)
	for i := 0; i < shards; i++ {
		loW := int64(i) * a.wordsPerShard
		hiW := loW + a.wordsPerShard
		if hiW > numWords {
			hiW = numWords
		}
		s := &allocShard{lo: loW * 64, hi: hiW * 64}
		if s.lo < a.firstBlock {
			s.lo = a.firstBlock
		}
		if s.hi > a.totalBlocks {
			s.hi = a.totalBlocks
		}
		if s.hi < s.lo {
			s.hi = s.lo // shard entirely inside the metadata region
		}
		s.hint = s.lo
		a.shards = append(a.shards, s)
	}
	return a
}

// SetObs attaches a collector receiving steal/scan counters, or detaches
// with nil.
func (a *allocator) SetObs(c *obs.Collector) { a.col.Store(c) }

// shardOf returns the shard owning block bn.
func (a *allocator) shardOf(bn int64) int {
	i := (bn / 64) / a.wordsPerShard
	if i >= int64(len(a.shards)) {
		i = int64(len(a.shards)) - 1
	}
	return int(i)
}

// recount recomputes every shard's free count (and the global total) from
// the mirror and rewinds all hints. Caller holds every shard lock (or has
// exclusive access during init).
func (a *allocator) recount() {
	total := int64(0)
	for _, s := range a.shards {
		s.free = 0
		for bn := s.lo; bn < s.hi; bn++ {
			if a.words[bn/64]&(1<<uint(bn%64)) == 0 {
				s.free++
			}
		}
		s.hint = s.lo
		total += s.free
	}
	a.freeTotal.Store(total)
}

// lockAll acquires every shard lock in index order, quiescing the
// allocator for whole-bitmap operations (Check, rebuild).
func (a *allocator) lockAll() {
	for _, s := range a.shards {
		s.mu.Lock()
	}
}

func (a *allocator) unlockAll() {
	for _, s := range a.shards {
		s.mu.Unlock()
	}
}

// isAllocated reports whether bn's bitmap bit is set in the mirror. Callers
// must hold the owning shard's lock or guarantee quiescence.
func (a *allocator) isAllocated(bn int64) bool {
	return a.words[bn/64]&(1<<uint(bn%64)) != 0
}

// format marks all metadata blocks allocated and persists the bitmap.
func (a *allocator) format() {
	for bn := int64(0); bn < a.firstBlock; bn++ {
		a.words[bn/64] |= 1 << uint(bn%64)
	}
	buf := make([]byte, len(a.words)*8)
	for i, w := range a.words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	a.dev.Write(buf, a.bitmapStart)
	a.dev.Flush(a.bitmapStart, len(buf))
	a.dev.Fence()
	a.recount()
}

// load reads the bitmap mirror from the device at mount time.
func (a *allocator) load() {
	buf := make([]byte, len(a.words)*8)
	a.dev.Read(buf, a.bitmapStart)
	for i := range a.words {
		a.words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	a.recount()
}

// rebuild overwrites the mirror and the persistent bitmap with want
// (recoverRebuild's reachability truth), then recomputes shard state. It
// returns the number of words that disagreed. Flushes are issued but not
// fenced; the caller fences.
func (a *allocator) rebuild(want []uint64) (wordsFixed int) {
	a.lockAll()
	defer a.unlockAll()
	var buf [8]byte
	for i := range want {
		if want[i] != a.words[i] {
			a.words[i] = want[i]
			addr := a.bitmapStart + int64(i)*8
			binary.LittleEndian.PutUint64(buf[:], want[i])
			a.dev.Write(buf[:], addr)
			a.dev.Flush(addr, 8)
			wordsFixed++
		}
	}
	a.recount()
	return wordsFixed
}

// applyWords journals, mutates and persists the set of bitmap words
// touched by toggling the given blocks' bits. Grouping by word keeps the
// journal traffic proportional to words, not blocks — PMFS-style extent
// allocation rather than per-block logging. The undo entries are logical
// (the XOR mask applied to each word) rather than physical images:
// bitmap words are shared by unrelated transactions, and with deferred
// commits an uncommitted transaction's physical pre-image could roll a
// later committed transaction's bits back off the word. XOR undos
// commute, so rollback only ever clears this transaction's own toggles.
// Caller holds the owning shard's mutex and all blocks must belong to that
// shard (shard boundaries are word-aligned, so every touched word is
// exclusively owned by it).
func (a *allocator) applyWords(tx *journal.Tx, blocks []int64) {
	// Collect the per-word XOR masks in first-touch order.
	masks := make(map[int64]uint64, 4)
	var order []int64
	for _, bn := range blocks {
		w := bn / 64
		if _, ok := masks[w]; !ok {
			order = append(order, w)
		}
		masks[w] ^= 1 << uint(bn%64)
	}
	for _, w := range order {
		addr := a.bitmapStart + w*8
		tx.LogBitmap(addr, masks[w])
	}
	for _, bn := range blocks {
		a.words[bn/64] ^= 1 << uint(bn%64)
	}
	var buf [8]byte
	for _, w := range order {
		addr := a.bitmapStart + w*8
		binary.LittleEndian.PutUint64(buf[:], a.words[w])
		a.dev.Write(buf[:], addr)
		a.dev.Flush(addr, 8)
	}
	a.dev.Fence()
}

// allocFromShard takes up to want free blocks from s, journaling and
// persisting the bitmap change under s's lock. The scan walks whole mirror
// words from the shard's hint (wrapping within the shard), skipping full
// words in one test — words examined are counted as the hint-quality
// metric.
func (a *allocator) allocFromShard(tx *journal.Tx, s *allocShard, want int) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.free == 0 || s.lo >= s.hi {
		return nil
	}
	if int64(want) > s.free {
		want = int(s.free)
	}
	out := make([]int64, 0, want)
	loW, hiW := s.lo/64, (s.hi+63)/64
	nW := hiW - loW
	hint := s.hint
	if hint < s.lo || hint >= s.hi {
		hint = s.lo
	}
	scanned := int64(0)
	for i := int64(0); i <= nW && len(out) < want; i++ {
		w := hint/64 + i
		if w >= hiW {
			w -= nW
		}
		base := w * 64
		avail := ^a.words[w]
		// Mask bits outside [lo, hi) and, on the first word, below the hint
		// (those are revisited by the wrap iteration if needed).
		if i == 0 && hint > base {
			avail &= ^uint64(0) << uint(hint-base)
		}
		if base < s.lo {
			avail &= ^uint64(0) << uint(s.lo-base)
		}
		if s.hi-base < 64 {
			avail &= 1<<uint(s.hi-base) - 1
		}
		scanned++
		for avail != 0 && len(out) < want {
			b := int64(bits.TrailingZeros64(avail))
			out = append(out, base+b)
			avail &= avail - 1
		}
	}
	a.wordsScanned.Add(scanned)
	a.col.Load().Add(obs.CtrAllocWordsScanned, scanned)
	if len(out) < want {
		// free said the blocks were here; the scan is exhaustive under mu.
		panic("pmfs: shard free count inconsistent with bitmap")
	}
	if len(out) > 0 {
		s.free -= int64(len(out))
		s.hint = out[len(out)-1] + 1
		a.applyWords(tx, out)
	}
	return out
}

// alloc allocates n blocks, returning their block numbers (contiguous
// where possible). The blocks are not zeroed. It returns vfs.ErrNoSpace if
// fewer than n are free.
//
// Space is reserved globally first (CAS on freeTotal), so the result is
// all-or-nothing; the shard walk then gathers the reserved blocks starting
// at a round-robin home shard and stealing from the others as needed. A
// single sweep can transiently find fewer than n blocks (a release that
// already published to a swept shard's mirror but not yet to freeTotal
// races with this reservation), so the sweep loops, yielding between empty
// passes.
func (a *allocator) alloc(tx *journal.Tx, n int) ([]int64, error) {
	if n <= 0 {
		return nil, nil
	}
	for {
		f := a.freeTotal.Load()
		if f < int64(n) {
			return nil, vfs.ErrNoSpace
		}
		if a.freeTotal.CompareAndSwap(f, f-int64(n)) {
			break
		}
	}
	out := make([]int64, 0, n)
	home := int(a.nextShard.Add(1) % uint64(len(a.shards)))
	idle := 0
	for len(out) < n {
		progress := false
		for off := 0; off < len(a.shards) && len(out) < n; off++ {
			s := a.shards[(home+off)%len(a.shards)]
			got := a.allocFromShard(tx, s, n-len(out))
			if len(got) > 0 {
				out = append(out, got...)
				progress = true
				if off != 0 {
					a.steals.Add(1)
					a.col.Load().Add(obs.CtrAllocShardSteals, 1)
				}
			}
		}
		if len(out) < n && !progress {
			idle++
			if idle > 1<<20 {
				panic("pmfs: allocator free count inconsistent with bitmap")
			}
			runtime.Gosched()
		} else {
			idle = 0
		}
	}
	return out, nil
}

// release frees the given blocks, rewinding each shard's hint toward the
// lowest freed block so the next scan finds the hole instead of walking
// the rest of the shard.
func (a *allocator) release(tx *journal.Tx, blocks []int64) {
	if len(blocks) == 0 {
		return
	}
	// Group by owning shard, preserving first-touch order.
	groups := make(map[int][]int64, 2)
	var order []int
	for _, bn := range blocks {
		i := a.shardOf(bn)
		if _, ok := groups[i]; !ok {
			order = append(order, i)
		}
		groups[i] = append(groups[i], bn)
	}
	for _, i := range order {
		s := a.shards[i]
		g := groups[i]
		s.mu.Lock()
		for _, bn := range g {
			if a.words[bn/64]&(1<<uint(bn%64)) == 0 {
				s.mu.Unlock()
				panic("pmfs: double free of block")
			}
		}
		a.applyWords(tx, g)
		s.free += int64(len(g))
		for _, bn := range g {
			if bn < s.hint {
				s.hint = bn
			}
		}
		s.mu.Unlock()
	}
	// Publish after the mirror bits are cleared: see freeTotal's invariant.
	a.freeTotal.Add(int64(len(blocks)))
}

// freeBlocks returns the number of free data blocks.
func (a *allocator) freeBlocks() int64 {
	return a.freeTotal.Load()
}

// AllocStats reports allocator activity counters.
type AllocStats struct {
	Shards       int
	Steals       int64
	WordsScanned int64
}

func (a *allocator) stats() AllocStats {
	return AllocStats{
		Shards:       len(a.shards),
		Steals:       a.steals.Load(),
		WordsScanned: a.wordsScanned.Load(),
	}
}
