package pmfs

import (
	"encoding/binary"
	"sync"

	"hinfs/internal/journal"
	"hinfs/internal/nvmm"
	"hinfs/internal/vfs"
)

// allocator manages the persistent block bitmap. A DRAM mirror of the
// bitmap serves lookups; every change is undo-journaled and written through
// to the NVMM bitmap so that recovery sees a consistent free map.
type allocator struct {
	dev         *nvmm.Device
	bitmapStart int64 // device byte offset of bitmap
	firstBlock  int64 // first allocatable block number
	totalBlocks int64

	mu    sync.Mutex
	words []uint64 // DRAM mirror, bit set = allocated
	free  int64
	hint  int64 // next block number to try
}

func newAllocator(dev *nvmm.Device, l layout) *allocator {
	a := &allocator{
		dev:         dev,
		bitmapStart: l.bitmapStart,
		firstBlock:  l.dataStart,
		totalBlocks: l.totalBlocks,
		words:       make([]uint64, (l.totalBlocks+63)/64),
		hint:        l.dataStart,
	}
	return a
}

// format marks all metadata blocks allocated and persists the bitmap.
func (a *allocator) format() {
	for bn := int64(0); bn < a.firstBlock; bn++ {
		a.words[bn/64] |= 1 << uint(bn%64)
	}
	a.free = a.totalBlocks - a.firstBlock
	buf := make([]byte, len(a.words)*8)
	for i, w := range a.words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	a.dev.Write(buf, a.bitmapStart)
	a.dev.Flush(a.bitmapStart, len(buf))
	a.dev.Fence()
}

// load reads the bitmap mirror from the device at mount time.
func (a *allocator) load() {
	buf := make([]byte, len(a.words)*8)
	a.dev.Read(buf, a.bitmapStart)
	a.free = 0
	for i := range a.words {
		a.words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	for bn := a.firstBlock; bn < a.totalBlocks; bn++ {
		if a.words[bn/64]&(1<<uint(bn%64)) == 0 {
			a.free++
		}
	}
}

// wordAddr returns the device byte offset of the bitmap word holding bn.
func (a *allocator) wordAddr(bn int64) int64 {
	return a.bitmapStart + (bn/64)*8
}

// applyWords journals, mutates and persists the set of bitmap words
// touched by toggling the given blocks' bits. Grouping by word keeps the
// journal traffic proportional to words, not blocks — PMFS-style extent
// allocation rather than per-block logging. The undo entries are logical
// (the XOR mask applied to each word) rather than physical images:
// bitmap words are shared by unrelated transactions, and with deferred
// commits an uncommitted transaction's physical pre-image could roll a
// later committed transaction's bits back off the word. XOR undos
// commute, so rollback only ever clears this transaction's own toggles.
// Caller holds a.mu and has already validated the bits.
func (a *allocator) applyWords(tx *journal.Tx, blocks []int64) {
	// Collect the per-word XOR masks in first-touch order.
	masks := make(map[int64]uint64, 4)
	var order []int64
	for _, bn := range blocks {
		w := bn / 64
		if _, ok := masks[w]; !ok {
			order = append(order, w)
		}
		masks[w] ^= 1 << uint(bn%64)
	}
	for _, w := range order {
		addr := a.bitmapStart + w*8
		tx.LogBitmap(addr, masks[w])
	}
	for _, bn := range blocks {
		a.words[bn/64] ^= 1 << uint(bn%64)
	}
	var buf [8]byte
	for _, w := range order {
		addr := a.bitmapStart + w*8
		binary.LittleEndian.PutUint64(buf[:], a.words[w])
		a.dev.Write(buf[:], addr)
		a.dev.Flush(addr, 8)
	}
	a.dev.Fence()
}

// alloc allocates n blocks, returning their block numbers (contiguous
// where possible). The blocks are not zeroed. It returns vfs.ErrNoSpace if
// fewer than n are free.
func (a *allocator) alloc(tx *journal.Tx, n int) ([]int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int64(n) > a.free {
		return nil, vfs.ErrNoSpace
	}
	out := make([]int64, 0, n)
	bn := a.hint
	scanned := int64(0)
	span := a.totalBlocks - a.firstBlock
	for len(out) < n && scanned < span {
		if bn >= a.totalBlocks {
			bn = a.firstBlock
		}
		if a.words[bn/64]&(1<<uint(bn%64)) == 0 {
			out = append(out, bn)
		}
		bn++
		scanned++
	}
	if len(out) < n {
		// Mirror said space existed but the scan disagreed: corrupt state.
		panic("pmfs: allocator free count inconsistent with bitmap")
	}
	a.free -= int64(n)
	a.hint = bn
	a.applyWords(tx, out)
	return out, nil
}

// release frees the given blocks.
func (a *allocator) release(tx *journal.Tx, blocks []int64) {
	if len(blocks) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, bn := range blocks {
		if a.words[bn/64]&(1<<uint(bn%64)) == 0 {
			panic("pmfs: double free of block")
		}
	}
	a.free += int64(len(blocks))
	a.applyWords(tx, blocks)
}

// freeBlocks returns the number of free data blocks.
func (a *allocator) freeBlocks() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.free
}
