package pmfs

import (
	"hinfs/internal/journal"
	"hinfs/internal/vfs"
)

// Directories are regular files whose data blocks hold fixed-size 64 B
// dentries (one cacheline each, so a dentry update journals cleanly).
// A dentry with ino 0 is a free slot.

const dentriesPerBlock = BlockSize / DentrySize

type dentry struct {
	ino  Ino
	typ  byte
	name string
}

func decodeDentry(b []byte) dentry {
	ino := Ino(le64(b[deIno:]))
	if ino == 0 {
		return dentry{}
	}
	n := int(b[deNameLen])
	if n > MaxNameLen {
		n = MaxNameLen
	}
	return dentry{ino: ino, typ: b[deType], name: string(b[deName : deName+n])}
}

func encodeDentry(d dentry) [DentrySize]byte {
	var b [DentrySize]byte
	putLE64(b[deIno:], uint64(d.ino))
	b[deType] = d.typ
	b[deNameLen] = byte(len(d.name))
	copy(b[deName:], d.name)
	return b
}

// dirScan iterates the dentries of directory dir, calling fn with each
// in-use entry's device address and contents. fn returns true to stop.
// The caller holds the directory's inode lock.
func (fs *FS) dirScan(rec inodeRec, fn func(addr int64, d dentry) bool) {
	blocks := (rec.Size + BlockSize - 1) / BlockSize
	var buf [DentrySize]byte
	for bi := int64(0); bi < blocks; bi++ {
		bn := fs.treeLookup(rec, bi)
		if bn == 0 {
			continue
		}
		for s := int64(0); s < dentriesPerBlock; s++ {
			addr := blockAddr(bn) + s*DentrySize
			fs.dev.Read(buf[:], addr)
			d := decodeDentry(buf[:])
			if d.ino == 0 {
				continue
			}
			if fn(addr, d) {
				return
			}
		}
	}
}

// dirLookup finds name in the directory, returning its dentry address.
func (fs *FS) dirLookup(rec inodeRec, name string) (addr int64, d dentry, ok bool) {
	fs.dirScan(rec, func(a int64, e dentry) bool {
		if e.name == name {
			addr, d, ok = a, e, true
			return true
		}
		return false
	})
	return
}

// dirAddEntry inserts a dentry, reusing a free slot or extending the
// directory by one block. It journals the slot and persists the write.
func (fs *FS) dirAddEntry(tx *journal.Tx, dirIno Ino, rec *inodeRec, d dentry) error {
	if len(d.name) > MaxNameLen {
		return vfs.ErrNameTooLon
	}
	// Find a free slot in existing blocks.
	blocks := (rec.Size + BlockSize - 1) / BlockSize
	var buf [DentrySize]byte
	var slotAddr int64 = -1
	for bi := int64(0); bi < blocks && slotAddr < 0; bi++ {
		bn := fs.treeLookup(*rec, bi)
		if bn == 0 {
			continue
		}
		for s := int64(0); s < dentriesPerBlock; s++ {
			addr := blockAddr(bn) + s*DentrySize
			fs.dev.Read(buf[:8], addr)
			if le64(buf[:8]) == 0 {
				slotAddr = addr
				break
			}
		}
	}
	if slotAddr < 0 {
		bn, _, err := fs.treeEnsure(tx, rec, blocks)
		if err != nil {
			return err
		}
		rec.Size = (blocks + 1) * BlockSize
		slotAddr = blockAddr(bn)
	}
	e := encodeDentry(d)
	tx.LogRange(slotAddr, DentrySize)
	fs.dev.Write(e[:], slotAddr)
	fs.dev.Flush(slotAddr, DentrySize)
	fs.dev.Fence()
	return nil
}

// dirRemoveEntry clears the dentry at addr.
func (fs *FS) dirRemoveEntry(tx *journal.Tx, addr int64) {
	tx.LogRange(addr, 8)
	var zero [8]byte
	fs.dev.Write(zero[:], addr)
	fs.dev.Flush(addr, 8)
	fs.dev.Fence()
}

// dirEmpty reports whether the directory has no entries.
func (fs *FS) dirEmpty(rec inodeRec) bool {
	empty := true
	fs.dirScan(rec, func(int64, dentry) bool {
		empty = false
		return true
	})
	return empty
}
