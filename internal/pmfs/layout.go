// Package pmfs implements a PMFS-like direct-access file system on an
// emulated NVMM device. It serves two roles in this repository: it is the
// PMFS baseline of the paper's evaluation, and it is the persistent
// substrate on which HiNFS (internal/core) layers its DRAM write buffer.
//
// The on-device format is byte-serialized into the NVMM device so that
// crash/recovery behaviour is real: mount re-parses the image, and the
// journal rolls back torn metadata updates.
//
// Layout (4 KB blocks, absolute block numbers):
//
//	block 0                superblock
//	blocks 1..J            metadata undo journal (internal/journal)
//	blocks J+1..I          inode table (128 B inodes)
//	blocks I+1..B          block allocation bitmap (1 bit per device block)
//	blocks B+1..F          flight-recorder ring, optional (internal/obs/flight)
//	blocks F+1..end        data blocks
//
// File data is indexed by a per-inode B-tree of 512-ary index blocks,
// exactly PMFS's scheme: height 0 means the root pointer is the single
// data block; height h>0 means the root is an index block whose subtrees
// cover 512^h blocks.
package pmfs

import (
	"encoding/binary"
	"fmt"

	"hinfs/internal/cacheline"
	"hinfs/internal/nvmm"
)

// BlockSize is the file-system block size.
const BlockSize = cacheline.BlockSize

// Magic identifies a formatted device.
const Magic = 0x48694e4653_2016 // "HiNFS" 2016

// InodeSize is the on-device inode record size.
const InodeSize = 128

// MaxNameLen is the maximum file name length storable in a 64 B dentry.
const MaxNameLen = 54

// DentrySize is the on-device directory entry size (one cacheline).
const DentrySize = cacheline.Size

// ptrsPerBlock is the fan-out of one index block (512 8-byte pointers).
const ptrsPerBlock = BlockSize / 8

// Ino is an inode number. Ino 0 is invalid; ino 1 is the root directory.
type Ino uint64

// RootIno is the root directory inode.
const RootIno Ino = 1

// Inode types.
const (
	typeFree = 0
	typeFile = 1
	typeDir  = 2
)

// Superblock field offsets within block 0.
const (
	sbMagic        = 0
	sbSize         = 8
	sbJournalStart = 16 // byte offset
	sbJournalSize  = 24 // bytes
	sbInodeStart   = 32 // byte offset of inode table
	sbMaxInodes    = 40
	sbBitmapStart  = 48 // byte offset of block bitmap
	sbBitmapBlocks = 56
	sbDataStart    = 64 // first data block number
	sbTotalBlocks  = 72
	sbCleanUnmount = 80 // 1 if cleanly unmounted
	sbFlightStart  = 88 // byte offset of flight-recorder region (0 = none)
	sbFlightSize   = 96 // bytes
	sbHeaderEnd    = 104
)

// Inode record field offsets.
const (
	inoType   = 0  // byte
	inoHeight = 1  // byte
	inoLinks  = 4  // uint32
	inoSize   = 8  // uint64
	inoRoot   = 16 // uint64 block number (0 = none)
	inoBlocks = 24 // uint64 allocated data+index blocks
	inoMtime  = 32 // uint64 unix nanos
)

// Dentry record field offsets (64 B).
const (
	deIno     = 0  // uint64, 0 = free slot
	deType    = 8  // byte
	deNameLen = 9  // byte
	deName    = 10 // up to 54 bytes
)

// Options configures Mkfs (format parameters) and, via MountOpts, the
// runtime concurrency knobs — lane/shard counts are DRAM-only structures,
// not persisted, so any image may be remounted with different values.
type Options struct {
	// JournalBlocks is the size of the undo journal area (default 1024
	// blocks = 4 MB; the area is split into independent lanes of two
	// ping-pong halves each, see internal/journal).
	JournalBlocks int64
	// MaxInodes is the inode table capacity (default 65536).
	MaxInodes int64
	// JournalLanes is the number of independent journal lanes (0 =
	// journal.DefaultLanes). Runtime knob, not persisted.
	JournalLanes int
	// AllocShards is the number of block-allocator shards (0 =
	// DefaultAllocShards). Runtime knob, not persisted.
	AllocShards int
	// SerialNamespace routes every namespace operation through one global
	// RWMutex, recreating the pre-sharding metadata path. It exists as the
	// measured baseline for the metascale figure — never set it otherwise.
	SerialNamespace bool
	// FlightBlocks reserves a flight-recorder region of this many blocks
	// between the bitmap and the data area (internal/obs/flight). 0 means
	// no region: images formatted before the recorder existed read back
	// with zeroed flight fields and mount exactly as before.
	FlightBlocks int64
}

func (o *Options) fill() {
	if o.JournalBlocks == 0 {
		o.JournalBlocks = 1024
	}
	if o.MaxInodes == 0 {
		o.MaxInodes = 65536
	}
}

// layout holds the parsed superblock geometry.
type layout struct {
	size         int64
	journalStart int64
	journalSize  int64
	inodeStart   int64
	maxInodes    int64
	bitmapStart  int64
	bitmapBlocks int64
	flightStart  int64 // byte offset of flight region (0 = none)
	flightSize   int64 // bytes
	dataStart    int64 // first data block number
	totalBlocks  int64
}

func computeLayout(size int64, opts Options) (layout, error) {
	totalBlocks := size / BlockSize
	var l layout
	l.size = size
	l.totalBlocks = totalBlocks
	l.journalStart = BlockSize // block 1
	l.journalSize = opts.JournalBlocks * BlockSize
	l.inodeStart = l.journalStart + l.journalSize
	l.maxInodes = opts.MaxInodes
	inodeBytes := opts.MaxInodes * InodeSize
	inodeBlocks := (inodeBytes + BlockSize - 1) / BlockSize
	l.bitmapStart = l.inodeStart + inodeBlocks*BlockSize
	bitmapBytes := (totalBlocks + 7) / 8
	l.bitmapBlocks = (bitmapBytes + BlockSize - 1) / BlockSize
	if opts.FlightBlocks > 0 {
		l.flightStart = l.bitmapStart + l.bitmapBlocks*BlockSize
		l.flightSize = opts.FlightBlocks * BlockSize
	}
	l.dataStart = l.bitmapStart/BlockSize + l.bitmapBlocks + opts.FlightBlocks
	if l.dataStart >= totalBlocks {
		return l, fmt.Errorf("pmfs: device too small (%d bytes) for metadata", size)
	}
	return l, nil
}

func (l layout) writeSuper(dev *nvmm.Device) {
	var b [BlockSize]byte
	put := binary.LittleEndian.PutUint64
	put(b[sbMagic:], Magic)
	put(b[sbSize:], uint64(l.size))
	put(b[sbJournalStart:], uint64(l.journalStart))
	put(b[sbJournalSize:], uint64(l.journalSize))
	put(b[sbInodeStart:], uint64(l.inodeStart))
	put(b[sbMaxInodes:], uint64(l.maxInodes))
	put(b[sbBitmapStart:], uint64(l.bitmapStart))
	put(b[sbBitmapBlocks:], uint64(l.bitmapBlocks))
	put(b[sbDataStart:], uint64(l.dataStart))
	put(b[sbTotalBlocks:], uint64(l.totalBlocks))
	put(b[sbFlightStart:], uint64(l.flightStart))
	put(b[sbFlightSize:], uint64(l.flightSize))
	dev.Write(b[:], 0)
	dev.Flush(0, BlockSize)
	dev.Fence()
}

func readLayout(dev *nvmm.Device) (layout, error) {
	var b [sbHeaderEnd]byte
	dev.Read(b[:], 0)
	get := binary.LittleEndian.Uint64
	if get(b[sbMagic:]) != Magic {
		return layout{}, fmt.Errorf("pmfs: bad magic: device not formatted")
	}
	l := layout{
		size:         int64(get(b[sbSize:])),
		journalStart: int64(get(b[sbJournalStart:])),
		journalSize:  int64(get(b[sbJournalSize:])),
		inodeStart:   int64(get(b[sbInodeStart:])),
		maxInodes:    int64(get(b[sbMaxInodes:])),
		bitmapStart:  int64(get(b[sbBitmapStart:])),
		bitmapBlocks: int64(get(b[sbBitmapBlocks:])),
		dataStart:    int64(get(b[sbDataStart:])),
		totalBlocks:  int64(get(b[sbTotalBlocks:])),
		flightStart:  int64(get(b[sbFlightStart:])),
		flightSize:   int64(get(b[sbFlightSize:])),
	}
	if l.size != dev.Size() {
		return layout{}, fmt.Errorf("pmfs: superblock size %d != device size %d", l.size, dev.Size())
	}
	return l, nil
}

// inodeAddr returns the device byte offset of an inode record.
func (l layout) inodeAddr(ino Ino) int64 {
	return l.inodeStart + int64(ino)*InodeSize
}

// blockAddr returns the device byte offset of a block number.
func blockAddr(bn int64) int64 { return bn * BlockSize }
