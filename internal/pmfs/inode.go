package pmfs

import (
	"encoding/binary"
	"sync"
	"time"

	"hinfs/internal/journal"
	"hinfs/internal/vfs"
)

// inodeRec is a DRAM view of one on-device inode record. Mutations go
// through store, which journals the old record and writes the new one
// through to NVMM, so the device image is always authoritative.
type inodeRec struct {
	Type   byte
	Height byte
	Links  uint32
	Size   int64
	Root   int64 // root block number of the index tree (0 = none)
	Blocks int64 // data+index blocks allocated
	Mtime  int64
}

func (fs *FS) loadInode(ino Ino) inodeRec {
	var b [InodeSize]byte
	fs.dev.Read(b[:], fs.l.inodeAddr(ino))
	return inodeRec{
		Type:   b[inoType],
		Height: b[inoHeight],
		Links:  binary.LittleEndian.Uint32(b[inoLinks:]),
		Size:   int64(binary.LittleEndian.Uint64(b[inoSize:])),
		Root:   int64(binary.LittleEndian.Uint64(b[inoRoot:])),
		Blocks: int64(binary.LittleEndian.Uint64(b[inoBlocks:])),
		Mtime:  int64(binary.LittleEndian.Uint64(b[inoMtime:])),
	}
}

// storeInode journals the inode's first cacheline under tx and writes rec
// through to NVMM. Every transaction that mutates an inode passes through
// here, so this is also where per-inode commit chaining is established:
// tx's commit record is ordered behind the previous transaction that
// touched the same inode. Deferred (ordered-mode) commits finish in data
// writeback order, which can invert begin order; without the chain a crash
// could roll an older uncommitted transaction's inode pre-image over a
// newer committed one's update.
func (fs *FS) storeInode(tx *journal.Tx, ino Ino, rec inodeRec) {
	st := fs.state(ino)
	st.meta.Lock()
	prev := st.lastTx
	if prev != tx {
		st.lastTx = tx
	}
	st.meta.Unlock()
	if prev != tx {
		tx.After(prev)
	}
	addr := fs.l.inodeAddr(ino)
	tx.LogRange(addr, 40) // all fields live in the first 40 bytes
	var b [40]byte
	b[inoType] = rec.Type
	b[inoHeight] = rec.Height
	binary.LittleEndian.PutUint32(b[inoLinks:], rec.Links)
	binary.LittleEndian.PutUint64(b[inoSize:], uint64(rec.Size))
	binary.LittleEndian.PutUint64(b[inoRoot:], uint64(rec.Root))
	binary.LittleEndian.PutUint64(b[inoBlocks:], uint64(rec.Blocks))
	binary.LittleEndian.PutUint64(b[inoMtime:], uint64(rec.Mtime))
	fs.dev.Write(b[:], addr)
	fs.dev.Flush(addr, len(b))
	fs.dev.Fence()
}

// inodeState is the DRAM-resident lock and bookkeeping for one inode.
// mu is the inode data lock (serializes file reads/writes); dir is the
// per-directory namespace lock (crabbed during path walks, write-held for
// dentry mutations — meaningful only on directory inodes); meta guards
// the small bookkeeping fields and may be taken while mu or dir is held.
type inodeState struct {
	mu  sync.RWMutex
	dir sync.RWMutex

	meta sync.Mutex
	// refs counts open handles; a deleted inode is reclaimed at last close.
	refs int
	// unlinked marks an inode removed from the namespace while open.
	unlinked bool
	// lastSync is the last fsync wall time, used by HiNFS's Buffer Benefit
	// Model (the paper stores it in the in-DRAM file metadata).
	lastSync time.Time
	// lastTx is the most recent journal transaction that touched this
	// inode's metadata; storeInode chains each new transaction's commit
	// record behind it (see storeInode).
	lastTx *journal.Tx
}

func (fs *FS) state(ino Ino) *inodeState {
	v, ok := fs.states.Load(ino)
	if !ok {
		v, _ = fs.states.LoadOrStore(ino, &inodeState{})
	}
	return v.(*inodeState)
}

// allocInode reserves a free inode number and initializes its record.
func (fs *FS) allocInode(tx *journal.Tx, typ byte) (Ino, error) {
	fs.inoMu.Lock()
	if len(fs.freeInos) == 0 {
		fs.inoMu.Unlock()
		return 0, vfs.ErrNoSpace
	}
	ino := fs.freeInos[len(fs.freeInos)-1]
	fs.freeInos = fs.freeInos[:len(fs.freeInos)-1]
	fs.inoMu.Unlock()
	fs.storeInode(tx, ino, inodeRec{
		Type:  typ,
		Links: 1,
		Mtime: fs.now().UnixNano(),
	})
	return ino, nil
}

// freeInode releases an inode record and returns the number to the free
// list.
func (fs *FS) freeInode(tx *journal.Tx, ino Ino) {
	fs.storeInode(tx, ino, inodeRec{})
	fs.inoMu.Lock()
	fs.freeInos = append(fs.freeInos, ino)
	fs.inoMu.Unlock()
	fs.states.Delete(ino)
}
