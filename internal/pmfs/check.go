package pmfs

import (
	"errors"
	"fmt"
)

// ErrJournalResidue is the distinct error class for journal-region
// validation failures: valid-flagged log entries left behind by
// transactions that are no longer open (committed or rolled back).
// Check wraps each finding so callers can test with errors.Is.
var ErrJournalResidue = errors.New("journal residue")

// Check is an fsck-style validator of the on-device image. It walks the
// namespace from the root, validates every inode record and index tree,
// and cross-checks the block bitmap:
//
//   - directory entries must point at live inodes of the recorded type;
//   - every index/data block must be inside the data region, marked
//     allocated in the bitmap, and referenced exactly once;
//   - inode Blocks counters must match the tree contents;
//   - every allocated block must be reachable (no leaks).
//
// The file system must be quiescent while Check runs (no in-flight
// operations; with per-directory locking there is no single lock to take,
// so quiescence is the caller's contract). It returns every problem found
// (nil means the image is consistent).
func (fs *FS) Check() []error {
	var errs []error
	addErr := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	seen := make(map[int64]Ino) // block number → owning inode
	var walkTree func(ino Ino, bn int64, height byte) int64
	walkTree = func(ino Ino, bn int64, height byte) int64 {
		if bn < fs.l.dataStart || bn >= fs.l.totalBlocks {
			addErr("inode %d: block %d outside data region", ino, bn)
			return 0
		}
		if owner, dup := seen[bn]; dup {
			addErr("inode %d: block %d already referenced by inode %d", ino, bn, owner)
			return 0
		}
		seen[bn] = ino
		if !fs.alloc.isAllocated(bn) {
			addErr("inode %d: block %d referenced but free in bitmap", ino, bn)
		}
		if height == 0 {
			return 1
		}
		var data int64
		for slot := int64(0); slot < ptrsPerBlock; slot++ {
			child := fs.readPtr(bn, slot)
			if child != 0 {
				data += walkTree(ino, child, height-1)
			}
		}
		return data
	}

	checkInode := func(ino Ino, wantType byte) inodeRec {
		rec := fs.loadInode(ino)
		if rec.Type != wantType {
			addErr("inode %d: type %d, want %d", ino, rec.Type, wantType)
			return rec
		}
		if rec.Root != 0 {
			dataBlocks := walkTree(ino, rec.Root, rec.Height)
			if dataBlocks != rec.Blocks {
				addErr("inode %d: Blocks=%d but tree holds %d data blocks",
					ino, rec.Blocks, dataBlocks)
			}
		} else if rec.Blocks != 0 {
			addErr("inode %d: Blocks=%d with no tree", ino, rec.Blocks)
		}
		if rec.Size < 0 {
			addErr("inode %d: negative size %d", ino, rec.Size)
		}
		return rec
	}

	liveInos := map[Ino]bool{RootIno: true}
	var walkDir func(ino Ino)
	walkDir = func(ino Ino) {
		rec := checkInode(ino, typeDir)
		fs.dirScan(rec, func(_ int64, d dentry) bool {
			if d.ino == 0 || int64(d.ino) >= fs.l.maxInodes {
				addErr("dir %d: dentry %q has bad ino %d", ino, d.name, d.ino)
				return false
			}
			if liveInos[d.ino] {
				addErr("dir %d: dentry %q points at already-linked ino %d (hard links unsupported)",
					ino, d.name, d.ino)
				return false
			}
			liveInos[d.ino] = true
			switch d.typ {
			case typeDir:
				walkDir(d.ino)
			case typeFile:
				checkInode(d.ino, typeFile)
			default:
				addErr("dir %d: dentry %q has bad type %d", ino, d.name, d.typ)
			}
			return false
		})
	}
	walkDir(RootIno)

	// Unlinked-but-open inodes are legitimately live without a dentry.
	fs.states.Range(func(k, v any) bool {
		st := v.(*inodeState)
		st.meta.Lock()
		if st.unlinked && st.refs > 0 {
			ino := k.(Ino)
			if !liveInos[ino] {
				liveInos[ino] = true
				rec := fs.loadInode(ino)
				if rec.Root != 0 {
					walkTree(ino, rec.Root, rec.Height)
				}
			}
		}
		st.meta.Unlock()
		return true
	})

	// Leak check: every allocated data-region block must have been seen.
	fs.alloc.lockAll()
	for bn := fs.l.dataStart; bn < fs.l.totalBlocks; bn++ {
		if fs.alloc.isAllocated(bn) {
			if _, ok := seen[bn]; !ok {
				addErr("block %d allocated but unreachable (leaked)", bn)
			}
		}
	}
	fs.alloc.unlockAll()

	// Inode-table scan: every in-use inode must be linked somewhere.
	for ino := Ino(1); ino < Ino(fs.l.maxInodes); ino++ {
		var b [1]byte
		fs.dev.Read(b[:], fs.l.inodeAddr(ino)+inoType)
		if b[0] != typeFree && !liveInos[ino] {
			addErr("inode %d in use but not reachable from the namespace", ino)
		}
	}

	// Journal-region scan: the log must hold entries only for open
	// transactions. Committed transactions retire their entries eagerly
	// and recovery zeroes the area, so anything else is residue that
	// could replay a stale undo image after the next crash.
	for _, r := range fs.jnl.Residue() {
		errs = append(errs, fmt.Errorf("journal lane %d slot %d: valid entry (kind %d) for non-open tx %d: %w",
			r.Lane, r.Slot, r.Kind, r.TxID, ErrJournalResidue))
	}
	return errs
}
