package pmfs

import (
	"encoding/binary"

	"hinfs/internal/journal"
)

// The per-file block index is a B-tree of 512-ary index blocks, as in PMFS.
// A file of height 0 stores its single data block number directly in the
// inode root pointer; height h > 0 means the root is an index block whose
// children each cover 512^(h-1) blocks.

// capBlocks returns the number of data blocks addressable at height h.
func capBlocks(h byte) int64 {
	c := int64(1)
	for i := byte(0); i < h; i++ {
		c *= ptrsPerBlock
	}
	return c
}

// heightFor returns the minimum tree height addressing block index idx.
func heightFor(idx int64) byte {
	h := byte(0)
	for capBlocks(h) <= idx {
		h++
	}
	return h
}

// readPtr reads pointer slot of index block bn.
func (fs *FS) readPtr(bn int64, slot int64) int64 {
	var b [8]byte
	fs.dev.Read(b[:], blockAddr(bn)+slot*8)
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// writePtr journals and updates pointer slot of index block bn.
func (fs *FS) writePtr(tx *journal.Tx, bn int64, slot int64, val int64) {
	addr := blockAddr(bn) + slot*8
	tx.LogRange(addr, 8)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(val))
	fs.dev.Write(b[:], addr)
	fs.dev.Flush(addr, 8)
}

// zeroBlock clears a freshly allocated block and flushes the zeroes. The
// flush is required for crash consistency, not just hygiene: the allocator
// reuses freed blocks (its per-shard hints rewind toward freed ranges), so a
// fresh block may carry stale bytes from its previous life. Index blocks,
// directory blocks and the unwritten tail of data blocks are all assumed to
// read as zero once the allocating transaction commits — if the zeroes were
// left as plain stores, a crash after the commit record could resurrect the
// stale content (e.g. garbage tree pointers).
func (fs *FS) zeroBlock(bn int64) {
	fs.dev.Write(fs.zero[:], blockAddr(bn))
	fs.dev.Flush(blockAddr(bn), BlockSize)
}

// treeLookup returns the block number holding file block idx, or 0 if the
// block is a hole.
func (fs *FS) treeLookup(rec inodeRec, idx int64) int64 {
	if rec.Root == 0 || idx >= capBlocks(rec.Height) {
		return 0
	}
	bn := rec.Root
	for h := rec.Height; h > 0; h-- {
		sub := capBlocks(h - 1)
		slot := idx / sub
		idx %= sub
		bn = fs.readPtr(bn, slot)
		if bn == 0 {
			return 0
		}
	}
	return bn
}

// treeEnsure makes file block idx exist, growing the tree and allocating
// index/data blocks as needed. It updates rec in place (caller persists the
// inode record once per operation) and returns the data block number.
func (fs *FS) treeEnsure(tx *journal.Tx, rec *inodeRec, idx int64) (bn int64, created bool, err error) {
	// Grow the tree until idx is addressable.
	for idx >= capBlocks(rec.Height) {
		if rec.Root == 0 {
			rec.Height = heightFor(idx)
			break
		}
		newRoot, err := fs.alloc.alloc(tx, 1)
		if err != nil {
			return 0, false, err
		}
		fs.zeroBlock(newRoot[0])
		fs.writePtr(tx, newRoot[0], 0, rec.Root)
		rec.Root = newRoot[0]
		rec.Height++
	}
	if rec.Root == 0 {
		// Empty file: allocate the root path directly.
		blocks, err := fs.alloc.alloc(tx, 1)
		if err != nil {
			return 0, false, err
		}
		if rec.Height == 0 {
			fs.zeroBlock(blocks[0])
			rec.Root = blocks[0]
			rec.Blocks++
			return blocks[0], true, nil
		}
		fs.zeroBlock(blocks[0])
		rec.Root = blocks[0]
	}
	// Walk down, filling missing interior blocks.
	cur := rec.Root
	for h := rec.Height; h > 0; h-- {
		sub := capBlocks(h - 1)
		slot := idx / sub
		idx %= sub
		child := fs.readPtr(cur, slot)
		if child == 0 {
			blocks, err := fs.alloc.alloc(tx, 1)
			if err != nil {
				return 0, false, err
			}
			child = blocks[0]
			fs.zeroBlock(child)
			fs.writePtr(tx, cur, slot, child)
			if h == 1 {
				created = true
				rec.Blocks++
			}
		}
		cur = child
	}
	return cur, created, nil
}

// walkToLeaf ensures the interior path for file block idx exists and
// returns the leaf index block covering it plus the first file block index
// that leaf covers. Height must be >= 1 and idx addressable.
func (fs *FS) walkToLeaf(tx *journal.Tx, rec *inodeRec, idx int64) (leafBn, leafBase int64, err error) {
	cur := rec.Root
	base := int64(0)
	for h := rec.Height; h > 1; h-- {
		sub := capBlocks(h - 1)
		slot := (idx - base) / sub
		child := fs.readPtr(cur, slot)
		if child == 0 {
			blocks, err := fs.alloc.alloc(tx, 1)
			if err != nil {
				return 0, 0, err
			}
			child = blocks[0]
			fs.zeroBlock(child)
			fs.writePtr(tx, cur, slot, child)
		}
		base += slot * sub
		cur = child
	}
	return cur, base, nil
}

// treeEnsureRange makes file blocks [first, first+count) exist, batching
// allocation and journaling per leaf index block: the bitmap is journaled
// per word and a leaf's pointer slots are journaled as one range, so the
// per-write journal traffic is proportional to extents, not blocks (as in
// PMFS's extent-style allocation). It appends the resolved extents to dst
// and updates rec in place.
func (fs *FS) treeEnsureRange(tx *journal.Tx, rec *inodeRec, first, count int64, dst []Extent) ([]Extent, error) {
	if count <= 0 {
		return dst, nil
	}
	last := first + count - 1
	// Grow the tree until the whole range is addressable.
	for last >= capBlocks(rec.Height) {
		if rec.Root == 0 {
			rec.Height = heightFor(last)
			break
		}
		newRoot, err := fs.alloc.alloc(tx, 1)
		if err != nil {
			return dst, err
		}
		fs.zeroBlock(newRoot[0])
		fs.writePtr(tx, newRoot[0], 0, rec.Root)
		rec.Root = newRoot[0]
		rec.Height++
	}
	// Height 0: single-block file, root is the data block.
	if rec.Height == 0 {
		if rec.Root == 0 {
			blocks, err := fs.alloc.alloc(tx, 1)
			if err != nil {
				return dst, err
			}
			fs.zeroBlock(blocks[0])
			rec.Root = blocks[0]
			rec.Blocks++
			return append(dst, Extent{Index: 0, Addr: blockAddr(blocks[0]), Created: true}), nil
		}
		return append(dst, Extent{Index: 0, Addr: blockAddr(rec.Root)}), nil
	}
	if rec.Root == 0 {
		blocks, err := fs.alloc.alloc(tx, 1)
		if err != nil {
			return dst, err
		}
		fs.zeroBlock(blocks[0])
		rec.Root = blocks[0]
	}
	idx := first
	for idx <= last {
		leafBn, leafBase, err := fs.walkToLeaf(tx, rec, idx)
		if err != nil {
			return dst, err
		}
		batchEnd := leafBase + ptrsPerBlock
		if batchEnd > last+1 {
			batchEnd = last + 1
		}
		startSlot := idx - leafBase
		endSlot := batchEnd - leafBase // exclusive
		// Read existing pointers and find the missing ones.
		var miss []int64
		ptrs := make([]int64, endSlot-startSlot)
		for s := startSlot; s < endSlot; s++ {
			ptrs[s-startSlot] = fs.readPtr(leafBn, s)
			if ptrs[s-startSlot] == 0 {
				miss = append(miss, s)
			}
		}
		if len(miss) > 0 {
			blocks, err := fs.alloc.alloc(tx, len(miss))
			if err != nil {
				return dst, err
			}
			// Journal the touched slot span once, then write the slots.
			spanAddr := blockAddr(leafBn) + miss[0]*8
			spanLen := int((miss[len(miss)-1] - miss[0] + 1) * 8)
			tx.LogRange(spanAddr, spanLen)
			var b [8]byte
			for i, s := range miss {
				fs.zeroBlock(blocks[i])
				ptrs[s-startSlot] = blocks[i]
				binary.LittleEndian.PutUint64(b[:], uint64(blocks[i]))
				fs.dev.Write(b[:], blockAddr(leafBn)+s*8)
			}
			fs.dev.Flush(spanAddr, spanLen)
			fs.dev.Fence()
			rec.Blocks += int64(len(miss))
		}
		mi := 0
		for s := startSlot; s < endSlot; s++ {
			created := mi < len(miss) && miss[mi] == s
			if created {
				mi++
			}
			dst = append(dst, Extent{
				Index:   leafBase + s,
				Addr:    blockAddr(ptrs[s-startSlot]),
				Created: created,
			})
		}
		idx = batchEnd
	}
	return dst, nil
}

// treeFreeFrom frees all data blocks with index >= from, plus any index
// blocks left with no children, updating rec in place. from = 0 tears down
// the whole tree.
func (fs *FS) treeFreeFrom(tx *journal.Tx, rec *inodeRec, from int64) {
	if rec.Root == 0 {
		return
	}
	var freed []int64
	empty := fs.freeWalk(tx, &freed, rec.Root, rec.Height, 0, from, rec)
	if empty {
		rec.Root = 0
		rec.Height = 0
	}
	fs.alloc.release(tx, freed)
}

// freeWalk recursively frees blocks under bn (covering file blocks starting
// at base, at the given height) whose index >= from. It reports whether bn
// itself was freed.
func (fs *FS) freeWalk(tx *journal.Tx, freed *[]int64, bn int64, height byte, base, from int64, rec *inodeRec) bool {
	if height == 0 {
		if base >= from {
			*freed = append(*freed, bn)
			rec.Blocks--
			return true
		}
		return false
	}
	sub := capBlocks(height - 1)
	anyLeft := false
	for slot := int64(0); slot < ptrsPerBlock; slot++ {
		child := fs.readPtr(bn, slot)
		if child == 0 {
			continue
		}
		childBase := base + slot*sub
		if childBase+sub <= from {
			anyLeft = true
			continue // entirely below the cut
		}
		if fs.freeWalk(tx, freed, child, height-1, childBase, from, rec) {
			fs.writePtr(tx, bn, slot, 0)
		} else {
			anyLeft = true
		}
	}
	if !anyLeft {
		*freed = append(*freed, bn)
		return true
	}
	return false
}
