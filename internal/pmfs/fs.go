package pmfs

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/clock"
	"hinfs/internal/journal"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
	"hinfs/internal/obs/flight"
	"hinfs/internal/vfs"
)

func le64(b []byte) uint64       { return binary.LittleEndian.Uint64(b) }
func putLE64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// FS is a mounted PMFS-like file system. It implements vfs.FileSystem with
// direct access: reads copy NVMM→user, writes copy user→NVMM with
// non-temporal stores, and all metadata updates are undo-journaled.
//
// Namespace concurrency uses per-directory read/write locks (each
// directory's inodeState.dir) instead of one tree-wide mutex. Path walks
// crab: the child's lock is acquired before the parent's is released, so a
// walker can never land in a directory that was removed out from under it
// — rmdir needs the parent's write lock to unlink the child and the
// child's write lock to free it, and both conflict with the walker's read
// locks. All lock edges therefore point parent→child, which is what makes
// the scheme deadlock-free; the one operation needing two unrelated
// directory locks (rename) is serialized against other renames by renameMu
// and orders its pair ancestor-first (ino-order for disjoint subtrees).
// See DESIGN.md "Lock hierarchy & multicore metadata scaling".
type FS struct {
	dev   *nvmm.Device
	l     layout
	jnl   *journal.Journal
	alloc *allocator
	clk   clock.Clock

	// serial, when set, routes every namespace operation through serialMu
	// exactly as the pre-sharding global nsMu did — the measured baseline
	// for the metascale figure, not a production mode.
	serial   bool
	serialMu sync.RWMutex

	// renameMu serializes renames against each other so that the ancestry
	// relation between any rename's two parent directories is stable while
	// it decides its lock order.
	renameMu sync.Mutex

	states sync.Map // Ino → *inodeState

	inoMu    sync.Mutex
	freeInos []Ino

	col          atomic.Pointer[obs.Collector]
	dirContended atomic.Int64

	zero [BlockSize]byte

	// flt is the NVMM flight recorder over the layout's flight region,
	// nil when the image was formatted without one.
	flt *flight.Recorder

	unmounted atomic.Bool
}

// Mkfs formats dev and returns the mounted file system.
func Mkfs(dev *nvmm.Device, opts Options) (*FS, error) {
	opts.fill()
	l, err := computeLayout(dev.Size(), opts)
	if err != nil {
		return nil, err
	}
	fs := &FS{dev: dev, l: l, clk: clock.Real{}, serial: opts.SerialNamespace}
	// Zero the metadata regions.
	for off := l.journalStart; off < l.bitmapStart; off += BlockSize {
		dev.Write(fs.zero[:], off)
	}
	dev.Flush(l.journalStart, int(l.bitmapStart-l.journalStart))
	fs.alloc = newAllocator(dev, l, opts.AllocShards)
	fs.alloc.format()
	fs.jnl, err = journal.NewLanes(dev, l.journalStart, l.journalSize, opts.JournalLanes)
	if err != nil {
		return nil, err
	}
	fs.initFreeInos()
	if l.flightSize > 0 {
		if err := flight.Format(dev, l.flightStart, l.flightSize); err != nil {
			return nil, err
		}
		if fs.flt, err = flight.Attach(dev, l.flightStart, l.flightSize); err != nil {
			return nil, err
		}
	}
	// Create the root directory.
	tx := fs.jnl.Begin()
	fs.storeInode(tx, RootIno, inodeRec{Type: typeDir, Links: 2, Mtime: fs.clk.Now().UnixNano()})
	tx.Commit()
	l.writeSuper(dev)
	return fs, nil
}

// Mount parses an existing image, runs journal recovery, and returns the
// file system with default runtime options.
func Mount(dev *nvmm.Device) (*FS, error) {
	fs, _, err := MountRecoverOpts(dev, Options{})
	return fs, err
}

// MountOpts is Mount with explicit runtime options (lane/shard counts and
// the serial-namespace baseline switch; the format parameters come from
// the superblock). Lane and shard counts are DRAM-only structures, so an
// image may be remounted with any values.
func MountOpts(dev *nvmm.Device, opts Options) (*FS, error) {
	fs, _, err := MountRecoverOpts(dev, opts)
	return fs, err
}

// MountRecover is Mount, also reporting rolled-back transaction count.
func MountRecover(dev *nvmm.Device) (*FS, int, error) {
	return MountRecoverOpts(dev, Options{})
}

// MountRecoverOpts is MountOpts, also reporting rolled-back transaction
// count.
func MountRecoverOpts(dev *nvmm.Device, opts Options) (*FS, int, error) {
	l, err := readLayout(dev)
	if err != nil {
		return nil, 0, err
	}
	rolled, err := journal.Recover(dev, l.journalStart, l.journalSize)
	if err != nil {
		return nil, 0, err
	}
	fs := &FS{dev: dev, l: l, clk: clock.Real{}, serial: opts.SerialNamespace}
	fs.alloc = newAllocator(dev, l, opts.AllocShards)
	fs.alloc.load()
	fs.jnl, err = journal.NewLanes(dev, l.journalStart, l.journalSize, opts.JournalLanes)
	if err != nil {
		return nil, 0, err
	}
	fs.recoverRebuild()
	fs.initFreeInos()
	if l.flightSize > 0 {
		// Attach resumes the sequence counter past every record that
		// survived the crash; the pre-crash suffix stays decodable (and
		// is what MountRecover-time forensics reads) until new records
		// lap it.
		if fs.flt, err = flight.Attach(dev, l.flightStart, l.flightSize); err != nil {
			return nil, 0, err
		}
	}
	return fs, rolled, nil
}

// Flight returns the NVMM flight recorder, or nil when the image was
// formatted without a flight region (Options.FlightBlocks == 0).
func (fs *FS) Flight() *flight.Recorder { return fs.flt }

// FlightRegion returns the byte offset and size of the on-device flight
// region, or (0, 0) when absent. Forensic tools decode the region
// directly from a crash image with flight.Decode without mounting.
func (fs *FS) FlightRegion() (off, size int64) { return fs.l.flightStart, fs.l.flightSize }

// SetClock replaces the time source (tests and the HiNFS layer).
func (fs *FS) SetClock(c clock.Clock) { fs.clk = c }

// SetObs attaches an observability collector to the metadata path: journal
// lane contention, allocator steal/scan counters, and directory-lock
// contention. Nil detaches.
func (fs *FS) SetObs(c *obs.Collector) {
	fs.col.Store(c)
	fs.jnl.SetObs(c)
	fs.alloc.SetObs(c)
}

func (fs *FS) now() time.Time { return fs.clk.Now() }

// Device returns the underlying NVMM device.
func (fs *FS) Device() *nvmm.Device { return fs.dev }

// Journal returns the metadata journal.
func (fs *FS) Journal() *journal.Journal { return fs.jnl }

// FreeBlocks returns the number of free data blocks.
func (fs *FS) FreeBlocks() int64 { return fs.alloc.freeBlocks() }

// AllocStats reports block-allocator activity counters.
func (fs *FS) AllocStats() AllocStats { return fs.alloc.stats() }

// DirLockContended reports how many directory-lock acquisitions found the
// lock held.
func (fs *FS) DirLockContended() int64 { return fs.dirContended.Load() }

func (fs *FS) initFreeInos() {
	// Scan the inode table for free records; ino 0 is reserved invalid and
	// ino 1 is the root. Scan high→low so allocation hands out low numbers.
	var b [1]byte
	for ino := Ino(fs.l.maxInodes - 1); ino >= 2; ino-- {
		fs.dev.Read(b[:], fs.l.inodeAddr(ino)+inoType)
		if b[0] == typeFree {
			fs.freeInos = append(fs.freeInos, ino)
		}
	}
}

func (fs *FS) checkMounted() error {
	if fs.unmounted.Load() {
		return vfs.ErrUnmounted
	}
	return nil
}

var nsNoop = func() {}

// nsSerial takes the whole-tree lock in serial-namespace baseline mode and
// returns the matching unlock; in the default sharded mode it is a no-op.
func (fs *FS) nsSerial(write bool) func() {
	if !fs.serial {
		return nsNoop
	}
	if write {
		fs.serialMu.Lock()
		return fs.serialMu.Unlock
	}
	fs.serialMu.RLock()
	return fs.serialMu.RUnlock
}

// dirLock acquires st's directory lock, counting contended acquisitions
// and charging the contended wait to the attached op's lock stage.
func (fs *FS) dirLock(st *inodeState, write bool) {
	if write {
		if st.dir.TryLock() {
			return
		}
	} else if st.dir.TryRLock() {
		return
	}
	fs.dirContended.Add(1)
	fs.col.Load().Add(obs.CtrDirLockContended, 1)
	op := obs.CurrentOp()
	var start time.Time
	if op != nil {
		start = time.Now()
	}
	if write {
		st.dir.Lock()
	} else {
		st.dir.RLock()
	}
	if op != nil {
		op.Charge(obs.StageLock, time.Since(start).Nanoseconds())
	}
}

func (fs *FS) dirUnlock(st *inodeState, write bool) {
	if write {
		st.dir.Unlock()
	} else {
		st.dir.RUnlock()
	}
}

// lockDirPath walks parts from the root with lock crabbing and returns the
// final directory's inode with its dir lock held — in write mode when
// write is set, read mode otherwise; intermediate directories are only
// ever read-locked, and each child's lock is acquired before its parent's
// is released. The caller must release the returned lock via dirUnlock.
func (fs *FS) lockDirPath(parts []string, write bool) (Ino, *inodeState, error) {
	cur := RootIno
	curSt := fs.state(cur)
	curWrite := write && len(parts) == 0
	fs.dirLock(curSt, curWrite)
	for i, name := range parts {
		rec := fs.loadInode(cur)
		if rec.Type != typeDir {
			fs.dirUnlock(curSt, curWrite)
			return 0, nil, vfs.ErrNotDir
		}
		_, d, ok := fs.dirLookup(rec, name)
		if !ok {
			fs.dirUnlock(curSt, curWrite)
			return 0, nil, vfs.ErrNotExist
		}
		if d.typ != typeDir {
			fs.dirUnlock(curSt, curWrite)
			return 0, nil, vfs.ErrNotDir
		}
		childSt := fs.state(d.ino)
		childWrite := write && i == len(parts)-1
		fs.dirLock(childSt, childWrite)
		fs.dirUnlock(curSt, curWrite)
		cur, curSt, curWrite = d.ino, childSt, childWrite
	}
	return cur, curSt, nil
}

// Resolve returns the inode at path.
func (fs *FS) Resolve(path string) (Ino, error) {
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return 0, err
	}
	defer fs.nsSerial(false)()
	if len(parts) == 0 {
		return RootIno, nil
	}
	dir, dirSt, err := fs.lockDirPath(parts[:len(parts)-1], false)
	if err != nil {
		return 0, err
	}
	defer fs.dirUnlock(dirSt, false)
	rec := fs.loadInode(dir)
	_, d, ok := fs.dirLookup(rec, parts[len(parts)-1])
	if !ok {
		return 0, vfs.ErrNotExist
	}
	return d.ino, nil
}

// Create implements vfs.FileSystem.
func (fs *FS) Create(path string) (vfs.File, error) {
	return fs.Open(path, vfs.OCreate|vfs.ORdwr)
}

// Open implements vfs.FileSystem.
func (fs *FS) Open(path string, flags int) (vfs.File, error) {
	f, err := fs.OpenFile(path, flags)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OpenFile is Open returning the concrete *File (used by the HiNFS layer).
// The parent directory is write-locked only when the open may create; a
// plain open shares the read lock. An O_TRUNC truncate is data-path work
// and runs after the namespace lock is released — the handle's ref (taken
// under the parent lock) keeps concurrent unlink from freeing the storage
// underneath it.
func (fs *FS) OpenFile(path string, flags int) (*File, error) {
	if err := fs.checkMounted(); err != nil {
		return nil, err
	}
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return nil, err
	}
	write := flags&vfs.OCreate != 0
	defer fs.nsSerial(true)()
	dirIno, dirSt, err := fs.lockDirPath(dirParts, write)
	if err != nil {
		return nil, err
	}
	dirRec := fs.loadInode(dirIno)
	_, d, ok := fs.dirLookup(dirRec, base)
	var f *File
	switch {
	case ok && d.typ == typeDir:
		fs.dirUnlock(dirSt, write)
		return nil, vfs.ErrIsDir
	case ok:
		f = fs.fileHandle(d.ino, flags)
		fs.dirUnlock(dirSt, write)
		if flags&vfs.OTrunc != 0 {
			f.Lock()
			err := f.truncateLocked(0)
			f.Unlock()
			if err != nil {
				f.Close()
				return nil, err
			}
		}
	case flags&vfs.OCreate != 0:
		tx := fs.jnl.Begin()
		ino, err := fs.allocInode(tx, typeFile)
		if err != nil {
			tx.Commit()
			fs.dirUnlock(dirSt, write)
			return nil, err
		}
		if err := fs.dirAddEntry(tx, dirIno, &dirRec, dentry{ino: ino, typ: typeFile, name: base}); err != nil {
			fs.freeInode(tx, ino)
			tx.Commit()
			fs.dirUnlock(dirSt, write)
			return nil, err
		}
		fs.storeInode(tx, dirIno, dirRec)
		tx.Commit()
		f = fs.fileHandle(ino, flags)
		fs.dirUnlock(dirSt, write)
	default:
		fs.dirUnlock(dirSt, write)
		return nil, vfs.ErrNotExist
	}
	return f, nil
}

func (fs *FS) fileHandle(ino Ino, flags int) *File {
	st := fs.state(ino)
	st.meta.Lock()
	st.refs++
	st.meta.Unlock()
	return &File{fs: fs, ino: ino, flags: flags}
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(path string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return err
	}
	defer fs.nsSerial(true)()
	dirIno, dirSt, err := fs.lockDirPath(dirParts, true)
	if err != nil {
		return err
	}
	defer fs.dirUnlock(dirSt, true)
	dirRec := fs.loadInode(dirIno)
	if _, _, ok := fs.dirLookup(dirRec, base); ok {
		return vfs.ErrExist
	}
	tx := fs.jnl.Begin()
	ino, err := fs.allocInode(tx, typeDir)
	if err != nil {
		tx.Commit()
		return err
	}
	if err := fs.dirAddEntry(tx, dirIno, &dirRec, dentry{ino: ino, typ: typeDir, name: base}); err != nil {
		fs.freeInode(tx, ino)
		tx.Commit()
		return err
	}
	fs.storeInode(tx, dirIno, dirRec)
	tx.Commit()
	return nil
}

// Rmdir implements vfs.FileSystem. The victim's own write lock is taken
// (parent first, then child) before it is freed, so walkers that crabbed
// into it are excluded, and walkers that have not reached the parent yet
// can never find its dentry again.
func (fs *FS) Rmdir(path string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return err
	}
	defer fs.nsSerial(true)()
	dirIno, dirSt, err := fs.lockDirPath(dirParts, true)
	if err != nil {
		return err
	}
	defer fs.dirUnlock(dirSt, true)
	dirRec := fs.loadInode(dirIno)
	addr, d, ok := fs.dirLookup(dirRec, base)
	if !ok {
		return vfs.ErrNotExist
	}
	if d.typ != typeDir {
		return vfs.ErrNotDir
	}
	childSt := fs.state(d.ino)
	fs.dirLock(childSt, true)
	defer fs.dirUnlock(childSt, true)
	rec := fs.loadInode(d.ino)
	if !fs.dirEmpty(rec) {
		return vfs.ErrNotEmpty
	}
	tx := fs.jnl.Begin()
	fs.dirRemoveEntry(tx, addr)
	rec2 := rec
	fs.treeFreeFrom(tx, &rec2, 0)
	fs.freeInode(tx, d.ino)
	tx.Commit()
	return nil
}

// Unlink implements vfs.FileSystem.
func (fs *FS) Unlink(path string) error {
	_, reclaim, err := fs.UnlinkKeepStorage(path)
	if err != nil {
		return err
	}
	if reclaim != nil {
		reclaim()
	}
	return nil
}

// UnlinkKeepStorage removes path's directory entry but defers freeing the
// inode's storage: if no handle is open it returns a reclaim closure the
// caller invokes after discarding any cached state for the inode (HiNFS
// drops its DRAM buffer blocks first, so background writeback can never
// touch freed NVMM blocks). A nil reclaim means open handles exist and the
// last Close frees the storage instead.
func (fs *FS) UnlinkKeepStorage(path string) (Ino, func(), error) {
	if err := fs.checkMounted(); err != nil {
		return 0, nil, err
	}
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return 0, nil, err
	}
	defer fs.nsSerial(true)()
	dirIno, dirSt, err := fs.lockDirPath(dirParts, true)
	if err != nil {
		return 0, nil, err
	}
	defer fs.dirUnlock(dirSt, true)
	dirRec := fs.loadInode(dirIno)
	addr, d, ok := fs.dirLookup(dirRec, base)
	if !ok {
		return 0, nil, vfs.ErrNotExist
	}
	if d.typ == typeDir {
		return 0, nil, vfs.ErrIsDir
	}
	tx := fs.jnl.Begin()
	fs.dirRemoveEntry(tx, addr)
	reclaim := fs.deferredReclaim(d.ino)
	tx.Commit()
	return d.ino, reclaim, nil
}

// deferredReclaim marks ino for reclamation. If handles are open it
// arranges last-close reclamation and returns nil; otherwise it returns a
// closure freeing the storage in its own transaction. The closure takes
// the inode lock, so in-flight reads through surviving paths are excluded.
func (fs *FS) deferredReclaim(ino Ino) func() {
	st := fs.state(ino)
	st.meta.Lock()
	open := st.refs > 0
	if open {
		st.unlinked = true
	}
	st.meta.Unlock()
	if open {
		return nil
	}
	return func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		rtx := fs.jnl.Begin()
		rec := fs.loadInode(ino)
		fs.treeFreeFrom(rtx, &rec, 0)
		fs.freeInode(rtx, ino)
		rtx.Commit()
	}
}

// Rename implements vfs.FileSystem. A regular file at newpath is replaced.
func (fs *FS) Rename(oldpath, newpath string) error {
	_, reclaim, err := fs.RenameKeepStorage(oldpath, newpath)
	if err != nil {
		return err
	}
	if reclaim != nil {
		reclaim()
	}
	return nil
}

func partsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// partsPrefix reports whether a is a (non-strict) path prefix of b. With
// no "." / ".." / symlinks, textual prefix is the ancestry relation.
func partsPrefix(a, b []string) bool {
	if len(a) > len(b) {
		return false
	}
	return partsEqual(a, b[:len(a)])
}

// peekDir resolves parts to a directory with read crabbing and returns the
// ino plus its state pointer with no locks held. The pointer is the
// validity token for the later re-lock: freeInode deletes the state entry,
// so if fs.state(ino) still returns the same pointer the directory was
// never freed (and renames are excluded by renameMu, so it is also still
// at this path).
func (fs *FS) peekDir(parts []string) (Ino, *inodeState, error) {
	ino, st, err := fs.lockDirPath(parts, false)
	if err != nil {
		return 0, nil, err
	}
	fs.dirUnlock(st, false)
	return ino, st, nil
}

// RenameKeepStorage is Rename with the replaced target's storage
// reclamation deferred to the returned closure (see UnlinkKeepStorage).
// The returned ino is the replaced file's inode (0 if none was replaced).
//
// Locking protocol: renames hold renameMu (stabilizing directory
// ancestry), resolve both parent directories with plain read crabbing
// releasing all locks, then write-lock the two parents ancestor-first
// (path-prefix order; ino order when the subtrees are disjoint) and
// validate both via state-pointer identity before trusting the snapshot.
// Holding the first parent's lock while walking to the second would
// deadlock against walkers queued behind the pending write lock, which is
// why the resolve and lock phases are separate.
func (fs *FS) RenameKeepStorage(oldpath, newpath string) (Ino, func(), error) {
	if err := fs.checkMounted(); err != nil {
		return 0, nil, err
	}
	oldDirParts, oldBase, err := vfs.SplitDirBase(oldpath)
	if err != nil {
		return 0, nil, err
	}
	newDirParts, newBase, err := vfs.SplitDirBase(newpath)
	if err != nil {
		return 0, nil, err
	}
	oldAll := append(append([]string{}, oldDirParts...), oldBase)
	newAll := append(append([]string{}, newDirParts...), newBase)
	if partsEqual(oldAll, newAll) {
		return 0, nil, nil // rename to self is a no-op
	}
	if partsPrefix(oldAll, newAll) {
		// Moving a directory into its own subtree would detach the subtree
		// as an unreachable cycle.
		return 0, nil, vfs.ErrInvalid
	}
	defer fs.nsSerial(true)()
	fs.renameMu.Lock()
	defer fs.renameMu.Unlock()

	var (
		oldDir, newDir     Ino
		oldSt, newSt       *inodeState
		oldWrite, newWrite bool // whether each lock is held separately
	)
	unlockBoth := func() {
		if newWrite {
			fs.dirUnlock(newSt, true)
		}
		if oldWrite {
			fs.dirUnlock(oldSt, true)
		}
		oldWrite, newWrite = false, false
	}
	for attempt := 0; ; attempt++ {
		oldDir, oldSt, err = fs.peekDir(oldDirParts)
		if err != nil {
			return 0, nil, err
		}
		newDir, newSt, err = fs.peekDir(newDirParts)
		if err != nil {
			return 0, nil, err
		}
		switch {
		case oldDir == newDir:
			fs.dirLock(oldSt, true)
			oldWrite = true
			newSt = oldSt
		case partsPrefix(oldDirParts, newDirParts):
			fs.dirLock(oldSt, true)
			fs.dirLock(newSt, true)
			oldWrite, newWrite = true, true
		case partsPrefix(newDirParts, oldDirParts):
			fs.dirLock(newSt, true)
			fs.dirLock(oldSt, true)
			oldWrite, newWrite = true, true
		case oldDir < newDir:
			fs.dirLock(oldSt, true)
			fs.dirLock(newSt, true)
			oldWrite, newWrite = true, true
		default:
			fs.dirLock(newSt, true)
			fs.dirLock(oldSt, true)
			oldWrite, newWrite = true, true
		}
		// Both directories may have been removed (and their inos reused)
		// between the unlocked resolve and the locks landing; a stale state
		// pointer or record proves it.
		if fs.state(oldDir) == oldSt && fs.loadInode(oldDir).Type == typeDir &&
			fs.state(newDir) == newSt && fs.loadInode(newDir).Type == typeDir {
			break
		}
		unlockBoth()
		if attempt >= 16 {
			return 0, nil, vfs.ErrNotExist
		}
	}
	defer unlockBoth()

	oldDirRec := fs.loadInode(oldDir)
	oldAddr, d, ok := fs.dirLookup(oldDirRec, oldBase)
	if !ok {
		return 0, nil, vfs.ErrNotExist
	}
	newDirRec := fs.loadInode(newDir)
	if newDir == oldDir {
		newDirRec = oldDirRec
	}
	var replaced Ino
	var reclaim func()
	tx := fs.jnl.Begin()
	if destAddr, destD, exists := fs.dirLookup(newDirRec, newBase); exists {
		if destD.typ == typeDir {
			tx.Commit()
			return 0, nil, vfs.ErrIsDir
		}
		fs.dirRemoveEntry(tx, destAddr)
		replaced = destD.ino
		reclaim = fs.deferredReclaim(destD.ino)
	}
	fs.dirRemoveEntry(tx, oldAddr)
	if err := fs.dirAddEntry(tx, newDir, &newDirRec, dentry{ino: d.ino, typ: d.typ, name: newBase}); err != nil {
		tx.Commit()
		return 0, nil, err
	}
	fs.storeInode(tx, newDir, newDirRec)
	tx.Commit()
	return replaced, reclaim, nil
}

// Stat implements vfs.FileSystem.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	if err := fs.checkMounted(); err != nil {
		return vfs.FileInfo{}, err
	}
	ino, err := fs.Resolve(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	parts, _ := vfs.SplitPath(path)
	name := "/"
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	st := fs.state(ino)
	st.mu.RLock()
	defer st.mu.RUnlock()
	rec := fs.loadInode(ino)
	return vfs.FileInfo{Name: name, Size: rec.Size, IsDir: rec.Type == typeDir, Blocks: rec.Blocks}, nil
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	if err := fs.checkMounted(); err != nil {
		return nil, err
	}
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return nil, err
	}
	defer fs.nsSerial(false)()
	ino, st, err := fs.lockDirPath(parts, false)
	if err != nil {
		return nil, err
	}
	defer fs.dirUnlock(st, false)
	rec := fs.loadInode(ino)
	if rec.Type != typeDir {
		return nil, vfs.ErrNotDir
	}
	var out []vfs.DirEntry
	fs.dirScan(rec, func(_ int64, d dentry) bool {
		out = append(out, vfs.DirEntry{Name: d.name, IsDir: d.typ == typeDir})
		return false
	})
	return out, nil
}

// OpenRefs returns the number of open handles on ino.
func (fs *FS) OpenRefs(ino Ino) int {
	st := fs.state(ino)
	st.meta.Lock()
	defer st.meta.Unlock()
	return st.refs
}

// Sync implements vfs.FileSystem. PMFS persists data at write time, so a
// fence suffices.
func (fs *FS) Sync() error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.dev.Fence()
	return nil
}

// Unmount implements vfs.FileSystem.
func (fs *FS) Unmount() error {
	if fs.unmounted.Swap(true) {
		return vfs.ErrUnmounted
	}
	fs.dev.Fence()
	return nil
}
