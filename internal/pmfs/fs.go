package pmfs

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/clock"
	"hinfs/internal/journal"
	"hinfs/internal/nvmm"
	"hinfs/internal/vfs"
)

func le64(b []byte) uint64       { return binary.LittleEndian.Uint64(b) }
func putLE64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// FS is a mounted PMFS-like file system. It implements vfs.FileSystem with
// direct access: reads copy NVMM→user, writes copy user→NVMM with
// non-temporal stores, and all metadata updates are undo-journaled.
type FS struct {
	dev   *nvmm.Device
	l     layout
	jnl   *journal.Journal
	alloc *allocator
	clk   clock.Clock

	// nsMu serializes namespace (directory tree) mutations; lookups take
	// the read side.
	nsMu sync.RWMutex

	states sync.Map // Ino → *inodeState

	inoMu    sync.Mutex
	freeInos []Ino

	zero [BlockSize]byte

	unmounted atomic.Bool
}

// Mkfs formats dev and returns the mounted file system.
func Mkfs(dev *nvmm.Device, opts Options) (*FS, error) {
	opts.fill()
	l, err := computeLayout(dev.Size(), opts)
	if err != nil {
		return nil, err
	}
	fs := &FS{dev: dev, l: l, clk: clock.Real{}}
	// Zero the metadata regions.
	for off := l.journalStart; off < l.bitmapStart; off += BlockSize {
		dev.Write(fs.zero[:], off)
	}
	dev.Flush(l.journalStart, int(l.bitmapStart-l.journalStart))
	fs.alloc = newAllocator(dev, l)
	fs.alloc.format()
	fs.jnl, err = journal.New(dev, l.journalStart, l.journalSize)
	if err != nil {
		return nil, err
	}
	fs.initFreeInos()
	// Create the root directory.
	tx := fs.jnl.Begin()
	fs.storeInode(tx, RootIno, inodeRec{Type: typeDir, Links: 2, Mtime: fs.clk.Now().UnixNano()})
	tx.Commit()
	l.writeSuper(dev)
	return fs, nil
}

// Mount parses an existing image, runs journal recovery, and returns the
// file system. RecoveredTxs reports how many torn transactions were rolled
// back.
func Mount(dev *nvmm.Device) (*FS, error) {
	fs, _, err := MountRecover(dev)
	return fs, err
}

// MountRecover is Mount, also reporting rolled-back transaction count.
func MountRecover(dev *nvmm.Device) (*FS, int, error) {
	l, err := readLayout(dev)
	if err != nil {
		return nil, 0, err
	}
	rolled, err := journal.Recover(dev, l.journalStart, l.journalSize)
	if err != nil {
		return nil, 0, err
	}
	fs := &FS{dev: dev, l: l, clk: clock.Real{}}
	fs.alloc = newAllocator(dev, l)
	fs.alloc.load()
	fs.jnl, err = journal.New(dev, l.journalStart, l.journalSize)
	if err != nil {
		return nil, 0, err
	}
	fs.recoverRebuild()
	fs.initFreeInos()
	return fs, rolled, nil
}

// SetClock replaces the time source (tests and the HiNFS layer).
func (fs *FS) SetClock(c clock.Clock) { fs.clk = c }

func (fs *FS) now() time.Time { return fs.clk.Now() }

// Device returns the underlying NVMM device.
func (fs *FS) Device() *nvmm.Device { return fs.dev }

// Journal returns the metadata journal.
func (fs *FS) Journal() *journal.Journal { return fs.jnl }

// FreeBlocks returns the number of free data blocks.
func (fs *FS) FreeBlocks() int64 { return fs.alloc.freeBlocks() }

func (fs *FS) initFreeInos() {
	// Scan the inode table for free records; ino 0 is reserved invalid and
	// ino 1 is the root. Scan high→low so allocation hands out low numbers.
	var b [1]byte
	for ino := Ino(fs.l.maxInodes - 1); ino >= 2; ino-- {
		fs.dev.Read(b[:], fs.l.inodeAddr(ino)+inoType)
		if b[0] == typeFree {
			fs.freeInos = append(fs.freeInos, ino)
		}
	}
}

func (fs *FS) checkMounted() error {
	if fs.unmounted.Load() {
		return vfs.ErrUnmounted
	}
	return nil
}

// resolveDir walks parts from the root, returning the inode of the final
// directory. Caller holds nsMu (read or write).
func (fs *FS) resolveDir(parts []string) (Ino, error) {
	cur := RootIno
	for _, name := range parts {
		rec := fs.loadInode(cur)
		if rec.Type != typeDir {
			return 0, vfs.ErrNotDir
		}
		_, d, ok := fs.dirLookup(rec, name)
		if !ok {
			return 0, vfs.ErrNotExist
		}
		if d.typ != typeDir {
			return 0, vfs.ErrNotDir
		}
		cur = d.ino
	}
	return cur, nil
}

// Resolve returns the inode at path.
func (fs *FS) Resolve(path string) (Ino, error) {
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return 0, err
	}
	fs.nsMu.RLock()
	defer fs.nsMu.RUnlock()
	if len(parts) == 0 {
		return RootIno, nil
	}
	dir, err := fs.resolveDir(parts[:len(parts)-1])
	if err != nil {
		return 0, err
	}
	rec := fs.loadInode(dir)
	_, d, ok := fs.dirLookup(rec, parts[len(parts)-1])
	if !ok {
		return 0, vfs.ErrNotExist
	}
	return d.ino, nil
}

// Create implements vfs.FileSystem.
func (fs *FS) Create(path string) (vfs.File, error) {
	return fs.Open(path, vfs.OCreate|vfs.ORdwr)
}

// Open implements vfs.FileSystem.
func (fs *FS) Open(path string, flags int) (vfs.File, error) {
	f, err := fs.OpenFile(path, flags)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OpenFile is Open returning the concrete *File (used by the HiNFS layer).
func (fs *FS) OpenFile(path string, flags int) (*File, error) {
	if err := fs.checkMounted(); err != nil {
		return nil, err
	}
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return nil, err
	}
	fs.nsMu.Lock()
	defer fs.nsMu.Unlock()
	dirIno, err := fs.resolveDir(dirParts)
	if err != nil {
		return nil, err
	}
	dirRec := fs.loadInode(dirIno)
	_, d, ok := fs.dirLookup(dirRec, base)
	var ino Ino
	switch {
	case ok && d.typ == typeDir:
		return nil, vfs.ErrIsDir
	case ok:
		ino = d.ino
		if flags&vfs.OTrunc != 0 {
			f := fs.fileHandle(ino, flags)
			f.Lock()
			err := f.truncateLocked(0)
			f.Unlock()
			if err != nil {
				return nil, err
			}
			return f, nil
		}
	case flags&vfs.OCreate != 0:
		tx := fs.jnl.Begin()
		ino, err = fs.allocInode(tx, typeFile)
		if err != nil {
			tx.Commit()
			return nil, err
		}
		if err := fs.dirAddEntry(tx, dirIno, &dirRec, dentry{ino: ino, typ: typeFile, name: base}); err != nil {
			fs.freeInode(tx, ino)
			tx.Commit()
			return nil, err
		}
		fs.storeInode(tx, dirIno, dirRec)
		tx.Commit()
	default:
		return nil, vfs.ErrNotExist
	}
	return fs.fileHandle(ino, flags), nil
}

func (fs *FS) fileHandle(ino Ino, flags int) *File {
	st := fs.state(ino)
	st.meta.Lock()
	st.refs++
	st.meta.Unlock()
	return &File{fs: fs, ino: ino, flags: flags}
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(path string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return err
	}
	fs.nsMu.Lock()
	defer fs.nsMu.Unlock()
	dirIno, err := fs.resolveDir(dirParts)
	if err != nil {
		return err
	}
	dirRec := fs.loadInode(dirIno)
	if _, _, ok := fs.dirLookup(dirRec, base); ok {
		return vfs.ErrExist
	}
	tx := fs.jnl.Begin()
	ino, err := fs.allocInode(tx, typeDir)
	if err != nil {
		tx.Commit()
		return err
	}
	if err := fs.dirAddEntry(tx, dirIno, &dirRec, dentry{ino: ino, typ: typeDir, name: base}); err != nil {
		fs.freeInode(tx, ino)
		tx.Commit()
		return err
	}
	fs.storeInode(tx, dirIno, dirRec)
	tx.Commit()
	return nil
}

// Rmdir implements vfs.FileSystem.
func (fs *FS) Rmdir(path string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return err
	}
	fs.nsMu.Lock()
	defer fs.nsMu.Unlock()
	dirIno, err := fs.resolveDir(dirParts)
	if err != nil {
		return err
	}
	dirRec := fs.loadInode(dirIno)
	addr, d, ok := fs.dirLookup(dirRec, base)
	if !ok {
		return vfs.ErrNotExist
	}
	if d.typ != typeDir {
		return vfs.ErrNotDir
	}
	rec := fs.loadInode(d.ino)
	if !fs.dirEmpty(rec) {
		return vfs.ErrNotEmpty
	}
	tx := fs.jnl.Begin()
	fs.dirRemoveEntry(tx, addr)
	rec2 := rec
	fs.treeFreeFrom(tx, &rec2, 0)
	fs.freeInode(tx, d.ino)
	tx.Commit()
	return nil
}

// Unlink implements vfs.FileSystem.
func (fs *FS) Unlink(path string) error {
	_, reclaim, err := fs.UnlinkKeepStorage(path)
	if err != nil {
		return err
	}
	if reclaim != nil {
		reclaim()
	}
	return nil
}

// UnlinkKeepStorage removes path's directory entry but defers freeing the
// inode's storage: if no handle is open it returns a reclaim closure the
// caller invokes after discarding any cached state for the inode (HiNFS
// drops its DRAM buffer blocks first, so background writeback can never
// touch freed NVMM blocks). A nil reclaim means open handles exist and the
// last Close frees the storage instead.
func (fs *FS) UnlinkKeepStorage(path string) (Ino, func(), error) {
	if err := fs.checkMounted(); err != nil {
		return 0, nil, err
	}
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return 0, nil, err
	}
	fs.nsMu.Lock()
	defer fs.nsMu.Unlock()
	dirIno, err := fs.resolveDir(dirParts)
	if err != nil {
		return 0, nil, err
	}
	dirRec := fs.loadInode(dirIno)
	addr, d, ok := fs.dirLookup(dirRec, base)
	if !ok {
		return 0, nil, vfs.ErrNotExist
	}
	if d.typ == typeDir {
		return 0, nil, vfs.ErrIsDir
	}
	tx := fs.jnl.Begin()
	fs.dirRemoveEntry(tx, addr)
	reclaim := fs.deferredReclaim(d.ino)
	tx.Commit()
	return d.ino, reclaim, nil
}

// deferredReclaim marks ino for reclamation. If handles are open it
// arranges last-close reclamation and returns nil; otherwise it returns a
// closure freeing the storage in its own transaction. The closure takes
// the inode lock, so in-flight reads through surviving paths are excluded.
func (fs *FS) deferredReclaim(ino Ino) func() {
	st := fs.state(ino)
	st.meta.Lock()
	open := st.refs > 0
	if open {
		st.unlinked = true
	}
	st.meta.Unlock()
	if open {
		return nil
	}
	return func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		rtx := fs.jnl.Begin()
		rec := fs.loadInode(ino)
		fs.treeFreeFrom(rtx, &rec, 0)
		fs.freeInode(rtx, ino)
		rtx.Commit()
	}
}

// Rename implements vfs.FileSystem. A regular file at newpath is replaced.
func (fs *FS) Rename(oldpath, newpath string) error {
	_, reclaim, err := fs.RenameKeepStorage(oldpath, newpath)
	if err != nil {
		return err
	}
	if reclaim != nil {
		reclaim()
	}
	return nil
}

// RenameKeepStorage is Rename with the replaced target's storage
// reclamation deferred to the returned closure (see UnlinkKeepStorage).
// The returned ino is the replaced file's inode (0 if none was replaced).
func (fs *FS) RenameKeepStorage(oldpath, newpath string) (Ino, func(), error) {
	if err := fs.checkMounted(); err != nil {
		return 0, nil, err
	}
	oldDirParts, oldBase, err := vfs.SplitDirBase(oldpath)
	if err != nil {
		return 0, nil, err
	}
	newDirParts, newBase, err := vfs.SplitDirBase(newpath)
	if err != nil {
		return 0, nil, err
	}
	fs.nsMu.Lock()
	defer fs.nsMu.Unlock()
	oldDir, err := fs.resolveDir(oldDirParts)
	if err != nil {
		return 0, nil, err
	}
	newDir, err := fs.resolveDir(newDirParts)
	if err != nil {
		return 0, nil, err
	}
	oldDirRec := fs.loadInode(oldDir)
	oldAddr, d, ok := fs.dirLookup(oldDirRec, oldBase)
	if !ok {
		return 0, nil, vfs.ErrNotExist
	}
	newDirRec := fs.loadInode(newDir)
	if newDir == oldDir {
		newDirRec = oldDirRec
	}
	if oldDir == newDir && oldBase == newBase {
		return 0, nil, nil // rename to self is a no-op
	}
	var replaced Ino
	var reclaim func()
	tx := fs.jnl.Begin()
	if destAddr, destD, exists := fs.dirLookup(newDirRec, newBase); exists {
		if destD.typ == typeDir {
			tx.Commit()
			return 0, nil, vfs.ErrIsDir
		}
		fs.dirRemoveEntry(tx, destAddr)
		replaced = destD.ino
		reclaim = fs.deferredReclaim(destD.ino)
	}
	fs.dirRemoveEntry(tx, oldAddr)
	if err := fs.dirAddEntry(tx, newDir, &newDirRec, dentry{ino: d.ino, typ: d.typ, name: newBase}); err != nil {
		tx.Commit()
		return 0, nil, err
	}
	fs.storeInode(tx, newDir, newDirRec)
	tx.Commit()
	return replaced, reclaim, nil
}

// Stat implements vfs.FileSystem.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	if err := fs.checkMounted(); err != nil {
		return vfs.FileInfo{}, err
	}
	ino, err := fs.Resolve(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	parts, _ := vfs.SplitPath(path)
	name := "/"
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	st := fs.state(ino)
	st.mu.RLock()
	defer st.mu.RUnlock()
	rec := fs.loadInode(ino)
	return vfs.FileInfo{Name: name, Size: rec.Size, IsDir: rec.Type == typeDir, Blocks: rec.Blocks}, nil
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	if err := fs.checkMounted(); err != nil {
		return nil, err
	}
	ino, err := fs.Resolve(path)
	if err != nil {
		return nil, err
	}
	fs.nsMu.RLock()
	defer fs.nsMu.RUnlock()
	rec := fs.loadInode(ino)
	if rec.Type != typeDir {
		return nil, vfs.ErrNotDir
	}
	var out []vfs.DirEntry
	fs.dirScan(rec, func(_ int64, d dentry) bool {
		out = append(out, vfs.DirEntry{Name: d.name, IsDir: d.typ == typeDir})
		return false
	})
	return out, nil
}

// OpenRefs returns the number of open handles on ino.
func (fs *FS) OpenRefs(ino Ino) int {
	st := fs.state(ino)
	st.meta.Lock()
	defer st.meta.Unlock()
	return st.refs
}

// Sync implements vfs.FileSystem. PMFS persists data at write time, so a
// fence suffices.
func (fs *FS) Sync() error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.dev.Fence()
	return nil
}

// Unmount implements vfs.FileSystem.
func (fs *FS) Unmount() error {
	if fs.unmounted.Swap(true) {
		return vfs.ErrUnmounted
	}
	fs.dev.Fence()
	return nil
}
