package pmfs

// recoverRebuild reconstructs the allocation state from the recovered
// namespace, after journal rollback. It exists because the bitmap's undo
// records are logical XOR masks (see applyWords): rollback cannot know
// whether a torn word's in-place update persisted before the crash, so
// applying the mask can just as well set a bit that was never durably
// set as clear one that was. The same ambiguity holds for the inode-use
// bytes of transactions whose effects interleave with the crash. Rather
// than guess, recovery walks the (already rolled-back) namespace and
// makes the truth authoritative — the NOVA approach of rebuilding
// allocator state at every mount:
//
//   - an inode is live iff it is reachable from the root (there are no
//     open handles at mount time, so unlinked-but-open does not apply);
//     any other in-use inode record is freed;
//   - the block bitmap becomes exactly {metadata region} ∪ {blocks
//     referenced by live inodes' index trees}.
//
// The walk is defensive: out-of-range or doubly-referenced blocks are
// skipped rather than trusted (Check reports them). Rebuilding is
// idempotent, so a crash during recovery just repeats it on the next
// mount. Returns the number of bitmap words corrected and inode records
// freed.
func (fs *FS) recoverRebuild() (wordsFixed, inosFreed int) {
	reach := make(map[int64]bool)
	live := map[Ino]bool{RootIno: true}
	var walkTree func(bn int64, height byte)
	walkTree = func(bn int64, height byte) {
		if bn < fs.l.dataStart || bn >= fs.l.totalBlocks || reach[bn] {
			return
		}
		reach[bn] = true
		if height == 0 {
			return
		}
		for slot := int64(0); slot < ptrsPerBlock; slot++ {
			if child := fs.readPtr(bn, slot); child != 0 {
				walkTree(child, height-1)
			}
		}
	}
	var walkDir func(ino Ino)
	walkDir = func(ino Ino) {
		rec := fs.loadInode(ino)
		if rec.Root != 0 {
			walkTree(rec.Root, rec.Height)
		}
		fs.dirScan(rec, func(_ int64, d dentry) bool {
			if d.ino == 0 || int64(d.ino) >= fs.l.maxInodes || live[d.ino] {
				return false
			}
			live[d.ino] = true
			if d.typ == typeDir {
				walkDir(d.ino)
			} else if rec := fs.loadInode(d.ino); rec.Root != 0 {
				walkTree(rec.Root, rec.Height)
			}
			return false
		})
	}
	walkDir(RootIno)

	// Free orphaned inode records.
	var b [1]byte
	for ino := Ino(2); ino < Ino(fs.l.maxInodes); ino++ {
		addr := fs.l.inodeAddr(ino) + inoType
		fs.dev.Read(b[:], addr)
		if b[0] != typeFree && !live[ino] {
			b[0] = typeFree
			fs.dev.Write(b[:], addr)
			fs.dev.Flush(addr, 1)
			inosFreed++
		}
	}

	// Rewrite every bitmap word that disagrees with reachability; the
	// allocator recomputes its per-shard free counts and hints from the
	// corrected mirror.
	a := fs.alloc
	want := make([]uint64, len(a.words))
	for bn := int64(0); bn < a.firstBlock; bn++ {
		want[bn/64] |= 1 << uint(bn%64)
	}
	for bn := range reach {
		want[bn/64] |= 1 << uint(bn%64)
	}
	wordsFixed = a.rebuild(want)
	if wordsFixed > 0 || inosFreed > 0 {
		fs.dev.Fence()
	}
	return wordsFixed, inosFreed
}
