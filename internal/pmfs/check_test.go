package pmfs

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"hinfs/internal/vfs"
)

func TestCheckCleanImage(t *testing.T) {
	fs, _ := testFS(t)
	fs.Mkdir("/d")
	f, _ := fs.Create("/d/file")
	f.WriteAt(make([]byte, 3*BlockSize+100), 0)
	f.Close()
	g, _ := fs.Create("/top")
	g.WriteAt([]byte("x"), 600*BlockSize) // deep tree
	g.Close()
	if errs := fs.Check(); len(errs) != 0 {
		t.Fatalf("clean image reported errors: %v", errs)
	}
}

func TestCheckAfterChurn(t *testing.T) {
	fs, _ := testFS(t)
	rng := rand.New(rand.NewSource(9))
	paths := make([]string, 12)
	for i := range paths {
		paths[i] = "/f" + string(rune('a'+i))
	}
	for op := 0; op < 300; op++ {
		p := paths[rng.Intn(len(paths))]
		switch rng.Intn(4) {
		case 0:
			if f, err := fs.Open(p, vfs.OCreate|vfs.ORdwr|vfs.OTrunc); err == nil {
				f.WriteAt(make([]byte, rng.Intn(4*BlockSize)), int64(rng.Intn(2*BlockSize)))
				f.Close()
			}
		case 1:
			fs.Unlink(p)
		case 2:
			if f, err := fs.Open(p, vfs.ORdwr); err == nil {
				f.Truncate(int64(rng.Intn(3 * BlockSize)))
				f.Close()
			}
		case 3:
			fs.Rename(p, paths[rng.Intn(len(paths))])
		}
	}
	if errs := fs.Check(); len(errs) != 0 {
		t.Fatalf("post-churn image inconsistent: %v", errs)
	}
}

func TestCheckUnlinkedOpenFileIsNotALeak(t *testing.T) {
	fs, _ := testFS(t)
	f, _ := fs.Create("/ghost")
	f.WriteAt(make([]byte, 2*BlockSize), 0)
	fs.Unlink("/ghost")
	// Still open: its blocks are live, not leaked.
	if errs := fs.Check(); len(errs) != 0 {
		t.Fatalf("open-unlinked file flagged: %v", errs)
	}
	f.Close()
	if errs := fs.Check(); len(errs) != 0 {
		t.Fatalf("after close: %v", errs)
	}
}

func TestCheckDetectsCorruptPointer(t *testing.T) {
	fs, dev := testFS(t)
	f, _ := fs.Create("/victim")
	f.WriteAt(make([]byte, 4*BlockSize), 0) // height-1 tree
	f.Close()
	ino, _ := fs.Resolve("/victim")
	rec := fs.loadInode(ino)
	// Corrupt the first leaf pointer to an out-of-range block.
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(fs.l.totalBlocks+5))
	dev.Write(b[:], blockAddr(rec.Root))
	if errs := fs.Check(); len(errs) == 0 {
		t.Fatal("corrupt pointer not detected")
	}
}

func TestCheckDetectsLeakedBlock(t *testing.T) {
	fs, _ := testFS(t)
	// Allocate a block outside any file: leak it deliberately.
	tx := fs.jnl.Begin()
	if _, err := fs.alloc.alloc(tx, 1); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	errs := fs.Check()
	if len(errs) == 0 {
		t.Fatal("leaked block not detected")
	}
}

func TestCheckDetectsBadBlocksCounter(t *testing.T) {
	fs, _ := testFS(t)
	f, _ := fs.Create("/miscount")
	f.WriteAt(make([]byte, 2*BlockSize), 0)
	f.Close()
	ino, _ := fs.Resolve("/miscount")
	rec := fs.loadInode(ino)
	rec.Blocks += 3
	tx := fs.jnl.Begin()
	fs.storeInode(tx, ino, rec)
	tx.Commit()
	if errs := fs.Check(); len(errs) == 0 {
		t.Fatal("bad Blocks counter not detected")
	}
}
