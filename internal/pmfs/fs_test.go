package pmfs

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"hinfs/internal/nvmm"
	"hinfs/internal/vfs"
)

// testDev returns a small, zero-latency device for functional tests.
func testDev(t testing.TB, size int64) *nvmm.Device {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: size})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func testFS(t testing.TB) (*FS, *nvmm.Device) {
	t.Helper()
	dev := testDev(t, 64<<20)
	fs, err := Mkfs(dev, Options{MaxInodes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

func TestMkfsAndRemount(t *testing.T) {
	fs, dev := testFS(t)
	f, err := fs.Create("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello nvmm"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}

	fs2, err := Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs2.Open("/hello.txt", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := f2.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello nvmm" {
		t.Fatalf("got %q", buf[:n])
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs, _ := testFS(t)
	f, err := fs.Create("/data")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Multi-block write with an unaligned offset.
	data := make([]byte, 3*BlockSize+717)
	for i := range data {
		data[i] = byte(i * 31)
	}
	const off = 2*BlockSize + 123
	if n, err := f.WriteAt(data, off); err != nil || n != len(data) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	if got, want := f.Size(), int64(off+len(data)); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	back := make([]byte, len(data))
	if n, err := f.ReadAt(back, off); err != nil || n != len(back) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("data mismatch after round trip")
	}
	// The hole before the write reads as zeros.
	hole := make([]byte, off)
	if n, err := f.ReadAt(hole, 0); err != nil || n != off {
		t.Fatalf("hole read = %d, %v", n, err)
	}
	for i, b := range hole {
		if b != 0 {
			t.Fatalf("hole byte %d = %d, want 0", i, b)
		}
	}
}

func TestReadPastEOF(t *testing.T) {
	fs, _ := testFS(t)
	f, _ := fs.Create("/f")
	defer f.Close()
	f.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	// io.ReaderAt contract: a short read reports io.EOF alongside the
	// bytes read; a read at or past EOF reports (0, io.EOF).
	n, err := f.ReadAt(buf, 0)
	if err != io.EOF || n != 3 {
		t.Fatalf("ReadAt = %d, %v; want 3, io.EOF", n, err)
	}
	n, err = f.ReadAt(buf, 100)
	if err != io.EOF || n != 0 {
		t.Fatalf("ReadAt past EOF = %d, %v; want 0, io.EOF", n, err)
	}
	// An exact read up to EOF stays error-free.
	n, err = f.ReadAt(buf[:3], 0)
	if err != nil || n != 3 {
		t.Fatalf("exact ReadAt = %d, %v; want 3, nil", n, err)
	}
}

func TestMkdirTree(t *testing.T) {
	fs, _ := testFS(t)
	for _, d := range []string{"/a", "/a/b", "/a/b/c"} {
		if err := fs.Mkdir(d); err != nil {
			t.Fatalf("Mkdir(%s): %v", d, err)
		}
	}
	if err := fs.Mkdir("/a"); err != vfs.ErrExist {
		t.Fatalf("duplicate Mkdir = %v, want ErrExist", err)
	}
	f, err := fs.Create("/a/b/c/file")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	ents, err := fs.ReadDir("/a/b/c")
	if err != nil || len(ents) != 1 || ents[0].Name != "file" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fs.Rmdir("/a/b/c"); err != vfs.ErrNotEmpty {
		t.Fatalf("Rmdir non-empty = %v, want ErrNotEmpty", err)
	}
	if err := fs.Unlink("/a/b/c/file"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/a/b/c"); err != vfs.ErrNotExist {
		t.Fatalf("Stat removed dir = %v", err)
	}
}

// warmRootDir forces the root directory to allocate its dentry block so
// free-space accounting in tests isn't skewed by it.
func warmRootDir(t *testing.T, fs *FS) {
	t.Helper()
	f, err := fs.Create("/.warm")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Unlink("/.warm"); err != nil {
		t.Fatal(err)
	}
}

func TestUnlinkFreesSpace(t *testing.T) {
	fs, _ := testFS(t)
	warmRootDir(t, fs)
	before := fs.FreeBlocks()
	f, _ := fs.Create("/big")
	data := make([]byte, 64*BlockSize)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if free := fs.FreeBlocks(); free >= before {
		t.Fatalf("no blocks consumed: %d >= %d", free, before)
	}
	if err := fs.Unlink("/big"); err != nil {
		t.Fatal(err)
	}
	if free := fs.FreeBlocks(); free != before {
		t.Fatalf("blocks leaked: %d != %d", free, before)
	}
}

func TestUnlinkOpenFileDeferred(t *testing.T) {
	fs, _ := testFS(t)
	warmRootDir(t, fs)
	before := fs.FreeBlocks()
	f, _ := fs.Create("/tmp1")
	f.WriteAt(make([]byte, 8*BlockSize), 0)
	if err := fs.Unlink("/tmp1"); err != nil {
		t.Fatal(err)
	}
	// Still readable through the open handle.
	buf := make([]byte, 8)
	if n, err := f.ReadAt(buf, 0); err != nil || n != 8 {
		t.Fatalf("read after unlink = %d, %v", n, err)
	}
	if _, err := fs.Stat("/tmp1"); err != vfs.ErrNotExist {
		t.Fatalf("Stat after unlink = %v", err)
	}
	f.Close()
	if free := fs.FreeBlocks(); free != before {
		t.Fatalf("blocks leaked after deferred reclaim: %d != %d", free, before)
	}
}

func TestRename(t *testing.T) {
	fs, _ := testFS(t)
	f, _ := fs.Create("/old")
	f.WriteAt([]byte("payload"), 0)
	f.Close()
	g, _ := fs.Create("/existing")
	g.WriteAt([]byte("gone"), 0)
	g.Close()
	if err := fs.Rename("/old", "/existing"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/old"); err != vfs.ErrNotExist {
		t.Fatalf("old still exists: %v", err)
	}
	h, err := fs.Open("/existing", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	h.ReadAt(buf, 0)
	if string(buf) != "payload" {
		t.Fatalf("got %q", buf)
	}
	fs.Mkdir("/dir")
	if err := fs.Rename("/existing", "/dir"); err != vfs.ErrIsDir {
		t.Fatalf("rename onto dir = %v", err)
	}
}

func TestTruncate(t *testing.T) {
	fs, _ := testFS(t)
	f, _ := fs.Create("/t")
	defer f.Close()
	data := make([]byte, 2*BlockSize)
	for i := range data {
		data[i] = 0xAB
	}
	f.WriteAt(data, 0)
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 100 {
		t.Fatalf("size = %d", f.Size())
	}
	// Extending again must expose zeros beyond 100.
	if err := f.Truncate(200); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 200)
	f.ReadAt(buf, 0)
	for i := 100; i < 200; i++ {
		if buf[i] != 0 {
			t.Fatalf("byte %d = %#x after re-extend, want 0", i, buf[i])
		}
	}
	for i := 0; i < 100; i++ {
		if buf[i] != 0xAB {
			t.Fatalf("byte %d lost", i)
		}
	}
}

func TestAppendFlag(t *testing.T) {
	fs, _ := testFS(t)
	f, err := fs.Open("/log", vfs.OCreate|vfs.OWronly|vfs.OAppend)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 10; i++ {
		if _, err := f.WriteAt([]byte(fmt.Sprintf("line-%d\n", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.Size() != 70 {
		t.Fatalf("size = %d, want 70", f.Size())
	}
}

func TestLargeSparseFile(t *testing.T) {
	fs, _ := testFS(t)
	f, _ := fs.Create("/sparse")
	defer f.Close()
	// Forces tree height growth: block index far beyond 512.
	const idx = 512*3 + 7
	if _, err := f.WriteAt([]byte("deep"), idx*BlockSize); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, idx*BlockSize); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "deep" {
		t.Fatalf("got %q", buf)
	}
	// A hole in the middle reads zero.
	mid := make([]byte, 64)
	f.ReadAt(mid, 1000*int64(BlockSize/2))
	for _, b := range mid {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
}

func TestOpenTrunc(t *testing.T) {
	fs, _ := testFS(t)
	f, _ := fs.Create("/x")
	f.WriteAt(make([]byte, 5000), 0)
	f.Close()
	g, err := fs.Open("/x", vfs.ORdwr|vfs.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Size() != 0 {
		t.Fatalf("size after O_TRUNC = %d", g.Size())
	}
}

func TestStatBlocks(t *testing.T) {
	fs, _ := testFS(t)
	f, _ := fs.Create("/b")
	f.WriteAt(make([]byte, 3*BlockSize), 0)
	f.Close()
	fi, err := fs.Stat("/b")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Blocks != 3 {
		t.Fatalf("Blocks = %d, want 3", fi.Blocks)
	}
}

func TestCrashRecoveryRollsBackTornMetadata(t *testing.T) {
	dev, err := nvmm.New(nvmm.Config{Size: 64 << 20, TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mkfs(dev, Options{MaxInodes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/durable")
	f.WriteAt([]byte("committed"), 0)
	f.Close()

	// Start a transaction that journals and modifies metadata but never
	// commits, then crash.
	tx := fs.jnl.Begin()
	rec := fs.loadInode(RootIno)
	mangled := rec
	mangled.Size = 999999
	fs.storeInode(tx, RootIno, mangled)
	// No commit. Power loss:
	dev.Crash()

	fs2, rolled, err := MountRecover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if rolled == 0 {
		t.Fatal("recovery rolled back nothing")
	}
	got := fs2.loadInode(RootIno)
	if got.Size != rec.Size {
		t.Fatalf("root size = %d, want %d (undo failed)", got.Size, rec.Size)
	}
	// The committed file survives.
	g, err := fs2.Open("/durable", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	g.ReadAt(buf, 0)
	if string(buf) != "committed" {
		t.Fatalf("got %q", buf)
	}
}

func TestConcurrentWritersDistinctFiles(t *testing.T) {
	fs, _ := testFS(t)
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			path := fmt.Sprintf("/w%d", w)
			f, err := fs.Create(path)
			if err != nil {
				done <- err
				return
			}
			defer f.Close()
			data := bytes.Repeat([]byte{byte(w + 1)}, BlockSize)
			for i := 0; i < 16; i++ {
				if _, err := f.WriteAt(data, int64(i)*BlockSize); err != nil {
					done <- err
					return
				}
			}
			buf := make([]byte, BlockSize)
			for i := 0; i < 16; i++ {
				f.ReadAt(buf, int64(i)*BlockSize)
				if buf[0] != byte(w+1) || buf[BlockSize-1] != byte(w+1) {
					done <- fmt.Errorf("worker %d: corrupt read", w)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMmapBlock(t *testing.T) {
	fs, dev := testFS(t)
	f, err := fs.OpenFile("/m", vfs.OCreate|vfs.ORdwr)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := f.MmapBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(m, "direct store")
	// The store is visible through the read path immediately.
	buf := make([]byte, 12)
	f.ReadAt(buf, 0)
	if string(buf) != "direct store" {
		t.Fatalf("got %q", buf)
	}
	_ = dev
}

func TestRenameToSelfIsNoop(t *testing.T) {
	fs, _ := testFS(t)
	f, _ := fs.Create("/same")
	f.WriteAt([]byte("keep"), 0)
	f.Close()
	if err := fs.Rename("/same", "/same"); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open("/same", vfs.ORdonly)
	if err != nil {
		t.Fatalf("file vanished after self-rename: %v", err)
	}
	buf := make([]byte, 4)
	g.ReadAt(buf, 0)
	if string(buf) != "keep" {
		t.Fatalf("content lost: %q", buf)
	}
	if errs := fs.Check(); len(errs) != 0 {
		t.Fatalf("image inconsistent: %v", errs)
	}
}
