package pmfs

import (
	"fmt"
	"sync"
	"testing"

	"hinfs/internal/vfs"
)

// stressBody churns the namespace from goroutine g inside its private
// directory, with every third file detouring through a shared directory so
// cross-directory renames (the ordered double-lock path) are exercised
// concurrently. Every operation must succeed: names are partitioned by
// goroutine, so the only interactions are on the shared locks themselves.
func stressBody(fs *FS, g, iters int) error {
	dir := fmt.Sprintf("/g%d", g)
	buf := make([]byte, 64)
	for i := 0; i < iters; i++ {
		name := fmt.Sprintf("%s/f%d", dir, i)
		f, err := fs.Create(name)
		if err != nil {
			return fmt.Errorf("create %s: %w", name, err)
		}
		if _, err := f.WriteAt(buf, 0); err != nil {
			return fmt.Errorf("write %s: %w", name, err)
		}
		if err := f.Fsync(); err != nil {
			return fmt.Errorf("fsync %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", name, err)
		}
		switch {
		case i%3 == 0:
			// Detour through the shared directory: two cross-directory
			// renames plus an unlink in the private dir.
			shared := fmt.Sprintf("/shared/g%d-%d", g, i)
			if err := fs.Rename(name, shared); err != nil {
				return fmt.Errorf("rename %s -> %s: %w", name, shared, err)
			}
			if err := fs.Rename(shared, name); err != nil {
				return fmt.Errorf("rename %s -> %s: %w", shared, name, err)
			}
			if err := fs.Unlink(name); err != nil {
				return fmt.Errorf("unlink %s: %w", name, err)
			}
		case i%3 == 1:
			// Same-directory rename, then unlink under the new name.
			moved := fmt.Sprintf("%s/m%d", dir, i)
			if err := fs.Rename(name, moved); err != nil {
				return fmt.Errorf("rename %s -> %s: %w", name, moved, err)
			}
			if err := fs.Unlink(moved); err != nil {
				return fmt.Errorf("unlink %s: %w", moved, err)
			}
		default:
			if err := fs.Unlink(name); err != nil {
				return fmt.Errorf("unlink %s: %w", name, err)
			}
		}
		if i%5 == 0 {
			sub := fmt.Sprintf("%s/d%d", dir, i)
			if err := fs.Mkdir(sub); err != nil {
				return fmt.Errorf("mkdir %s: %w", sub, err)
			}
			if err := fs.Rmdir(sub); err != nil {
				return fmt.Errorf("rmdir %s: %w", sub, err)
			}
		}
		if i%7 == 0 {
			if _, err := fs.Stat(dir); err != nil {
				return fmt.Errorf("stat %s: %w", dir, err)
			}
			if _, err := fs.ReadDir("/shared"); err != nil {
				return fmt.Errorf("readdir /shared: %w", err)
			}
		}
	}
	return nil
}

// runParallelStress mounts a fresh FS with opts, churns it from
// `goroutines` concurrent workers, and verifies the result with Check and
// a remount. Run under -race this doubles as the data-race gate for the
// sharded namespace/journal/allocator.
func runParallelStress(t *testing.T, opts Options, goroutines, iters int) {
	t.Helper()
	dev := testDev(t, 64<<20)
	fs, err := Mkfs(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/shared"); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < goroutines; g++ {
		if err := fs.Mkdir(fmt.Sprintf("/g%d", g)); err != nil {
			t.Fatal(err)
		}
	}
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = stressBody(fs, g, iters)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if cerrs := fs.Check(); len(cerrs) != 0 {
		t.Fatalf("post-stress check: %v", cerrs)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	if cerrs := fs2.Check(); len(cerrs) != 0 {
		t.Fatalf("post-remount check: %v", cerrs)
	}
	// Every scratch file was unlinked; only the setup directories remain.
	ents, err := fs2.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != goroutines+1 {
		t.Fatalf("root holds %d entries after stress, want %d", len(ents), goroutines+1)
	}
}

// TestParallelMetadataStress churns create/write/fsync/rename/unlink/
// mkdir/rmdir from 8 goroutines against the sharded metadata path, then
// fscks and remounts. This is the concurrency gate for the per-directory
// locks, journal lanes and allocator shards.
func TestParallelMetadataStress(t *testing.T) {
	iters := 120
	if testing.Short() {
		iters = 30
	}
	runParallelStress(t, Options{MaxInodes: 1024}, 8, iters)
}

// TestParallelMetadataStressSerial runs the same churn with the serial
// namespace and single lane/shard, pinning the baseline configuration the
// metascale report measures against.
func TestParallelMetadataStressSerial(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 20
	}
	runParallelStress(t, Options{
		MaxInodes:       1024,
		SerialNamespace: true,
		JournalLanes:    1,
		AllocShards:     1,
	}, 8, iters)
}

// TestOpenTruncDoesNotHoldDirLock: opening with OTrunc resolves under the
// parent lock but truncates after releasing it. The observable contract is
// functional — the truncate happens, concurrent namespace traffic in the
// same directory proceeds — so hammer one directory with OTrunc opens of a
// multi-block file while a sibling churns creates.
func TestOpenTruncDoesNotHoldDirLock(t *testing.T) {
	fs, _ := testFS(t)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 64*BlockSize)
	var wg sync.WaitGroup
	var truncErr, churnErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			f, err := fs.Open("/d/victim", vfs.ORdwr|vfs.OCreate)
			if err != nil {
				truncErr = err
				return
			}
			if _, err := f.WriteAt(big, 0); err != nil {
				truncErr = err
				return
			}
			if err := f.Close(); err != nil {
				truncErr = err
				return
			}
			g, err := fs.Open("/d/victim", vfs.ORdwr|vfs.OTrunc)
			if err != nil {
				truncErr = err
				return
			}
			if g.Size() != 0 {
				truncErr = fmt.Errorf("OTrunc left size %d", g.Size())
				g.Close()
				return
			}
			if err := g.Close(); err != nil {
				truncErr = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			name := fmt.Sprintf("/d/c%d", i)
			f, err := fs.Create(name)
			if err != nil {
				churnErr = err
				return
			}
			if err := f.Close(); err != nil {
				churnErr = err
				return
			}
			if err := fs.Unlink(name); err != nil {
				churnErr = err
				return
			}
		}
	}()
	wg.Wait()
	if truncErr != nil {
		t.Fatalf("truncate loop: %v", truncErr)
	}
	if churnErr != nil {
		t.Fatalf("churn loop: %v", churnErr)
	}
	if errs := fs.Check(); len(errs) != 0 {
		t.Fatalf("post-stress check: %v", errs)
	}
}

// TestRenameCycleRejected: moving a directory into its own subtree must
// fail with ErrInvalid, and moving a path onto itself is a no-op.
func TestRenameCycleRejected(t *testing.T) {
	fs, _ := testFS(t)
	for _, p := range []string{"/a", "/a/b", "/a/b/c"} {
		if err := fs.Mkdir(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Rename("/a", "/a/b/c/a"); err != vfs.ErrInvalid {
		t.Fatalf("cycle rename = %v, want ErrInvalid", err)
	}
	if err := fs.Rename("/a/b", "/a/b"); err != nil {
		t.Fatalf("self rename = %v, want nil", err)
	}
	if errs := fs.Check(); len(errs) != 0 {
		t.Fatalf("check after rejected renames: %v", errs)
	}
}
