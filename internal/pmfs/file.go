package pmfs

import (
	"io"
	"sync/atomic"
	"time"

	"hinfs/internal/journal"
	"hinfs/internal/obs"
	"hinfs/internal/vfs"
)

// File is an open PMFS file handle. It implements vfs.File with direct
// access, and exposes the locked low-level primitives (PrepareWriteLocked,
// BlockAddrLocked, ...) that the HiNFS layer composes with its DRAM buffer.
type File struct {
	fs     *FS
	ino    Ino
	flags  int
	closed atomic.Bool
}

// Extent locates one file block on the device.
type Extent struct {
	// Index is the file block index (offset / BlockSize).
	Index int64
	// Addr is the device byte offset of the block.
	Addr int64
	// Created reports whether this block was newly allocated.
	Created bool
}

// WritePlan is the metadata side of a write: the resolved extents and the
// journal transaction that made them visible.
type WritePlan struct {
	Extents []Extent
	Tx      *journal.Tx
}

// Ino returns the file's inode number.
func (f *File) Ino() Ino { return f.ino }

// InodeNumber implements vfs.InodeNumberer.
func (f *File) InodeNumber() uint64 { return uint64(f.ino) }

// Flags returns the open flags.
func (f *File) Flags() int { return f.flags }

// FS returns the owning file system.
func (f *File) FS() *FS { return f.fs }

// Lock acquires the inode's write lock.
func (f *File) Lock() { f.fs.state(f.ino).mu.Lock() }

// Unlock releases the inode's write lock.
func (f *File) Unlock() { f.fs.state(f.ino).mu.Unlock() }

// RLock acquires the inode's read lock.
func (f *File) RLock() { f.fs.state(f.ino).mu.RLock() }

// RUnlock releases the inode's read lock.
func (f *File) RUnlock() { f.fs.state(f.ino).mu.RUnlock() }

// Size implements vfs.File.
func (f *File) Size() int64 {
	f.RLock()
	defer f.RUnlock()
	return f.SizeLocked()
}

// SizeLocked returns the file size; the caller holds the inode lock.
func (f *File) SizeLocked() int64 { return f.fs.loadInode(f.ino).Size }

// BlockAddrLocked returns the device byte address of file block index, or
// 0 if the block is a hole; the caller holds the inode lock.
func (f *File) BlockAddrLocked(index int64) int64 {
	rec := f.fs.loadInode(f.ino)
	bn := f.fs.treeLookup(rec, index)
	if bn == 0 {
		return 0
	}
	return blockAddr(bn)
}

// LastSync returns the file's last synchronization time (DRAM metadata
// used by the HiNFS Buffer Benefit Model).
func (f *File) LastSync() time.Time {
	st := f.fs.state(f.ino)
	st.meta.Lock()
	defer st.meta.Unlock()
	return st.lastSync
}

// MarkSynced records t as the file's last synchronization time.
func (f *File) MarkSynced(t time.Time) {
	st := f.fs.state(f.ino)
	st.meta.Lock()
	st.lastSync = t
	st.meta.Unlock()
}

func (f *File) checkOpen() error {
	if f.closed.Load() {
		return vfs.ErrClosed
	}
	return f.fs.checkMounted()
}

// ReadAt implements vfs.File: a single copy NVMM→user.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	f.RLock()
	defer f.RUnlock()
	return f.readAtLocked(p, off)
}

func (f *File) readAtLocked(p []byte, off int64) (int, error) {
	rec := f.fs.loadInode(f.ino)
	if off >= rec.Size {
		// io.ReaderAt contract: reads at or past EOF report io.EOF, so a
		// streaming caller can distinguish "end of file" from "empty read".
		return 0, io.EOF
	}
	n := len(p)
	var eof error
	if off+int64(n) > rec.Size {
		n = int(rec.Size - off)
		eof = io.EOF
	}
	read := 0
	for read < n {
		idx := (off + int64(read)) / BlockSize
		bo := (off + int64(read)) % BlockSize
		chunk := BlockSize - int(bo)
		if chunk > n-read {
			chunk = n - read
		}
		bn := f.fs.treeLookup(rec, idx)
		if bn == 0 {
			for i := read; i < read+chunk; i++ {
				p[i] = 0
			}
		} else {
			f.fs.dev.Read(p[read:read+chunk], blockAddr(bn)+bo)
			f.fs.col.Load().Copy(obs.CopyReadOut, chunk)
		}
		read += chunk
	}
	return n, eof
}

// PrepareWriteLocked allocates and journals the metadata for a write of n
// bytes at off: it ensures every touched block exists, extends the size,
// and stamps mtime. The caller holds the inode write lock.
//
// If deferred is false the caller must write the data (WriteNT) and then
// Commit the returned transaction — the PMFS eager path. If deferred is
// true the transaction is sealed with one pending reference per extent;
// the commit record is written when the last extent's data is persisted
// (HiNFS ordered mode, §4.1).
func (f *File) PrepareWriteLocked(off int64, n int, deferred bool) (WritePlan, error) {
	if off < 0 || n < 0 {
		return WritePlan{}, vfs.ErrInvalid
	}
	rec := f.fs.loadInode(f.ino)
	tx := f.fs.jnl.Begin()
	first := off / BlockSize
	count := int64(0)
	if n > 0 {
		count = (off+int64(n)-1)/BlockSize - first + 1
	}
	plan := WritePlan{Tx: tx}
	extents, err := f.fs.treeEnsureRange(tx, &rec, first, count, make([]Extent, 0, count))
	if err != nil {
		// Roll forward what we logged; the allocation state is
		// consistent, the write just fails.
		f.fs.storeInode(tx, f.ino, rec)
		tx.Commit()
		return WritePlan{}, err
	}
	plan.Extents = extents
	if off+int64(n) > rec.Size {
		rec.Size = off + int64(n)
	}
	rec.Mtime = f.fs.now().UnixNano()
	f.fs.storeInode(tx, f.ino, rec)
	if deferred {
		tx.AddPending(len(plan.Extents))
		tx.Seal()
	}
	return plan, nil
}

// WriteAt implements vfs.File: the PMFS direct write path. Data is copied
// user→NVMM with non-temporal stores so it is durable when the metadata
// transaction commits.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	f.Lock()
	defer f.Unlock()
	if f.flags&vfs.OAppend != 0 {
		off = f.SizeLocked()
	}
	return f.writeAtLocked(p, off)
}

func (f *File) writeAtLocked(p []byte, off int64) (int, error) {
	plan, err := f.PrepareWriteLocked(off, len(p), false)
	if err != nil {
		return 0, err
	}
	written := 0
	for _, e := range plan.Extents {
		blkOff := int64(0)
		if e.Index == off/BlockSize {
			blkOff = off % BlockSize
		}
		chunk := int(BlockSize - blkOff)
		if chunk > len(p)-written {
			chunk = len(p) - written
		}
		f.fs.dev.WriteNT(p[written:written+chunk], e.Addr+blkOff)
		f.fs.col.Load().Copy(obs.CopyUserIn, chunk)
		written += chunk
	}
	f.fs.dev.Fence()
	plan.Tx.Commit()
	return written, nil
}

// Fsync implements vfs.File. PMFS data is durable at write return, so only
// an ordering fence is needed.
func (f *File) Fsync() error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	f.fs.dev.Fence()
	f.MarkSynced(f.fs.now())
	return nil
}

// Truncate implements vfs.File.
func (f *File) Truncate(size int64) error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	if size < 0 {
		return vfs.ErrInvalid
	}
	f.Lock()
	defer f.Unlock()
	return f.truncateLocked(size)
}

// TruncateLocked is Truncate with the inode lock already held (HiNFS
// drops its buffered blocks first, then delegates here).
func (f *File) TruncateLocked(size int64) error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	if size < 0 {
		return vfs.ErrInvalid
	}
	return f.truncateLocked(size)
}

func (f *File) truncateLocked(size int64) error {
	rec := f.fs.loadInode(f.ino)
	if size == rec.Size {
		return nil
	}
	tx := f.fs.jnl.Begin()
	if size < rec.Size {
		from := (size + BlockSize - 1) / BlockSize
		f.fs.treeFreeFrom(tx, &rec, from)
		// Zero the tail of the boundary block so later extension reads
		// zeros, matching POSIX semantics.
		if size%BlockSize != 0 {
			if bn := f.fs.treeLookup(rec, size/BlockSize); bn != 0 {
				tail := int(BlockSize - size%BlockSize)
				f.fs.dev.Write(f.fs.zero[:tail], blockAddr(bn)+size%BlockSize)
				f.fs.dev.Flush(blockAddr(bn)+size%BlockSize, tail)
			}
		}
	}
	rec.Size = size
	rec.Mtime = f.fs.now().UnixNano()
	f.fs.storeInode(tx, f.ino, rec)
	tx.Commit()
	return nil
}

// CloseWillReclaim reports whether closing this handle would free the
// inode's storage (it is the last handle to an unlinked file). The HiNFS
// layer uses it to discard buffered blocks before the NVMM blocks are
// released.
func (f *File) CloseWillReclaim() bool {
	st := f.fs.state(f.ino)
	st.meta.Lock()
	defer st.meta.Unlock()
	return st.refs == 1 && st.unlinked
}

// Close implements vfs.File. Closing an already-closed handle returns
// ErrClosed without touching the refcount (a double Close must not
// release another handle's reference).
func (f *File) Close() error { return f.close(nil) }

// CloseWithHook is Close, additionally invoking pre just before this
// close frees an unlinked inode's storage. The reclaim decision is made
// under the refcount lock, so exactly one of N racing closes runs the
// hook — the HiNFS layer uses it to discard the inode's buffered DRAM
// blocks before their NVMM blocks are released.
func (f *File) CloseWithHook(pre func()) error { return f.close(pre) }

func (f *File) close(pre func()) error {
	if f.closed.Swap(true) {
		return vfs.ErrClosed
	}
	st := f.fs.state(f.ino)
	st.meta.Lock()
	st.refs--
	reclaim := st.refs == 0 && st.unlinked
	st.meta.Unlock()
	if reclaim {
		if pre != nil {
			pre()
		}
		// Free the storage under the inode lock: a ReadAt that raced Close
		// and passed its closed-check still holds the read lock, and must
		// finish before the blocks it is copying from are reused.
		st.mu.Lock()
		defer st.mu.Unlock()
		tx := f.fs.jnl.Begin()
		rec := f.fs.loadInode(f.ino)
		f.fs.treeFreeFrom(tx, &rec, 0)
		f.fs.freeInode(tx, f.ino)
		tx.Commit()
	}
	return nil
}

// MmapBlock emulates PMFS direct memory-mapped I/O for one file block: it
// ensures the block exists and returns a slice aliasing its device memory.
// Stores through the slice become durable only at the next Flush/Msync,
// matching §4.2's "mmap writes are not persistent until msync".
func (f *File) MmapBlock(index int64) ([]byte, error) {
	if err := f.checkOpen(); err != nil {
		return nil, err
	}
	f.Lock()
	defer f.Unlock()
	plan, err := f.PrepareWriteLocked(index*BlockSize, BlockSize, false)
	if err != nil {
		return nil, err
	}
	plan.Tx.Commit()
	return f.fs.dev.Slice(plan.Extents[0].Addr, BlockSize), nil
}
