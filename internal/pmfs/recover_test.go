package pmfs

import (
	"encoding/binary"
	"testing"
)

// TestRecoverRebuildFixesPhantomAllocation reproduces the allocator
// ambiguity recoverRebuild exists for: bitmap undo records are XOR
// masks, so a crash that tears the bitmap word's in-place update can
// leave rollback setting bits that were never durably set. We fake the
// aftermath directly — a set bitmap bit for a block no file references —
// and expect the rebuild at mount to clear it.
func TestRecoverRebuildFixesPhantomAllocation(t *testing.T) {
	fs, dev := testFS(t)
	fs.Mkdir("/d")
	f, _ := fs.Create("/d/file")
	f.WriteAt(make([]byte, 2*BlockSize), 0)
	f.Close()

	// Find a free data block and set its bitmap bit on the device.
	var victim int64 = -1
	fs.alloc.lockAll()
	for bn := fs.alloc.firstBlock; bn < fs.alloc.totalBlocks; bn++ {
		if !fs.alloc.isAllocated(bn) {
			victim = bn
			break
		}
	}
	fs.alloc.unlockAll()
	if victim < 0 {
		t.Fatal("no free block to corrupt")
	}
	addr := fs.alloc.bitmapStart + (victim/64)*8
	var b [8]byte
	dev.Read(b[:], addr)
	w := binary.LittleEndian.Uint64(b[:]) | 1<<uint(victim%64)
	binary.LittleEndian.PutUint64(b[:], w)
	dev.Write(b[:], addr)
	dev.Flush(addr, 8)
	dev.Fence()

	fs2, err := Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	if errs := fs2.Check(); len(errs) != 0 {
		t.Fatalf("phantom allocation survived remount: %v", errs)
	}
	if fs2.alloc.words[victim/64]&(1<<uint(victim%64)) != 0 {
		t.Fatalf("bitmap bit for block %d still set", victim)
	}
}

// TestRecoverRebuildFreesOrphanInode: an inode marked in use but
// unreachable from the namespace (the other side of the same rollback
// ambiguity) must be freed at mount, and stay allocatable afterwards.
func TestRecoverRebuildFreesOrphanInode(t *testing.T) {
	fs, dev := testFS(t)
	f, _ := fs.Create("/keep")
	f.WriteAt([]byte("stays"), 0)
	f.Close()

	// Mark a high inode in use directly, bypassing the namespace.
	orphan := Ino(fs.l.maxInodes - 3)
	addr := fs.l.inodeAddr(orphan) + inoType
	dev.Write([]byte{typeFile}, addr)
	dev.Flush(addr, 1)
	dev.Fence()

	fs2, err := Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	if errs := fs2.Check(); len(errs) != 0 {
		t.Fatalf("orphan inode survived remount: %v", errs)
	}
	var tb [1]byte
	dev.Read(tb[:], addr)
	if tb[0] != typeFree {
		t.Fatalf("orphan inode type = %d, want free", tb[0])
	}
	// The rebuilt state must still be a working file system.
	g, err := fs2.Create("/new")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt([]byte("works"), 0); err != nil {
		t.Fatal(err)
	}
	g.Close()
	if errs := fs2.Check(); len(errs) != 0 {
		t.Fatalf("post-rebuild churn inconsistent: %v", errs)
	}
}

// TestRecoverRebuildIdempotent: a clean image must pass through the
// rebuild untouched — mounting is not allowed to invent corrections.
func TestRecoverRebuildIdempotent(t *testing.T) {
	fs, dev := testFS(t)
	fs.Mkdir("/d")
	f, _ := fs.Create("/d/file")
	f.WriteAt(make([]byte, 3*BlockSize), 0)
	f.Close()

	fs2, err := Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	words, inos := fs2.recoverRebuild()
	if words != 0 || inos != 0 {
		t.Fatalf("rebuild on a clean mounted image corrected %d words, %d inodes", words, inos)
	}
}
