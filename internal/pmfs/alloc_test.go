package pmfs

import (
	"testing"
)

// TestAllocHintRewind is the regression test for the only-advancing hint:
// after blocks at the low end of a shard are freed, the next allocation
// must find them again cheaply. With the rewind, the scan restarts at the
// freed range and touches a handful of bitmap words; without it, the hint
// stays past the high-water mark and the scan walks the rest of the shard
// before wrapping.
func TestAllocHintRewind(t *testing.T) {
	dev := testDev(t, 64<<20)
	fs, err := Mkfs(dev, Options{MaxInodes: 1024, AllocShards: 1})
	if err != nil {
		t.Fatal(err)
	}

	tx := fs.jnl.Begin()
	blocks, err := fs.alloc.alloc(tx, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Free the first word's worth of blocks, then reallocate as many.
	freed := append([]int64(nil), blocks[:64]...)
	fs.alloc.release(tx, freed)

	before := fs.alloc.stats().WordsScanned
	got, err := fs.alloc.alloc(tx, 64)
	if err != nil {
		t.Fatal(err)
	}
	scanned := fs.alloc.stats().WordsScanned - before
	tx.Commit()

	want := make(map[int64]bool, len(freed))
	for _, bn := range freed {
		want[bn] = true
	}
	for _, bn := range got {
		if !want[bn] {
			t.Fatalf("reallocation returned block %d outside the freed range %v", bn, freed)
		}
	}
	// The freed range spans at most three bitmap words (64 blocks, possibly
	// unaligned). Without the rewind the scan walks from the high-water mark
	// to the end of the shard first — hundreds of words on this device.
	if scanned > 4 {
		t.Fatalf("reallocation scanned %d bitmap words, want <= 4 (hint not rewound)", scanned)
	}
}

// TestAllocShardSteal: an allocation larger than the home shard's free
// space must transparently take blocks from other shards and count the
// steal, still all-or-nothing.
func TestAllocShardSteal(t *testing.T) {
	dev := testDev(t, 64<<20)
	fs, err := Mkfs(dev, Options{MaxInodes: 1024, AllocShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.AllocStats().Shards; got != 4 {
		t.Fatalf("AllocStats().Shards = %d, want 4", got)
	}
	free := fs.FreeBlocks()
	tx := fs.jnl.Begin()
	// More than any single shard holds, less than the device: must steal.
	n := int(free/2 + free/4)
	blocks, err := fs.alloc.alloc(tx, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != n {
		t.Fatalf("alloc returned %d blocks, want %d", len(blocks), n)
	}
	if fs.AllocStats().Steals == 0 {
		t.Fatal("cross-shard allocation counted no steals")
	}
	seen := make(map[int64]bool, n)
	for _, bn := range blocks {
		if bn < fs.alloc.firstBlock || bn >= fs.alloc.totalBlocks {
			t.Fatalf("allocated block %d outside data region", bn)
		}
		if seen[bn] {
			t.Fatalf("block %d allocated twice", bn)
		}
		seen[bn] = true
	}
	fs.alloc.release(tx, blocks)
	tx.Commit()
	if got := fs.FreeBlocks(); got != free {
		t.Fatalf("free count %d after alloc+release, want %d", got, free)
	}
}

// TestAllocExhaustionAllOrNothing: asking for more blocks than exist must
// fail without reserving anything — a retry at a smaller size succeeds.
func TestAllocExhaustionAllOrNothing(t *testing.T) {
	dev := testDev(t, 64<<20)
	fs, err := Mkfs(dev, Options{MaxInodes: 1024, AllocShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	free := fs.FreeBlocks()
	tx := fs.jnl.Begin()
	if _, err := fs.alloc.alloc(tx, int(free)+1); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	if got := fs.FreeBlocks(); got != free {
		t.Fatalf("failed allocation leaked reservation: free %d, want %d", got, free)
	}
	blocks, err := fs.alloc.alloc(tx, int(free))
	if err != nil {
		t.Fatalf("exact-capacity allocation failed: %v", err)
	}
	fs.alloc.release(tx, blocks)
	tx.Commit()
}
