package buffer

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hinfs/internal/clock"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
)

var errInjected = errors.New("injected writeback fault")

// faultPool builds a single-shard, foreground-only pool whose writeback
// write path consults fail: while fail holds a positive value, each
// attempted device write decrements it and fails.
func faultPool(t testing.TB, blocks int, fail *atomic.Int64, col *obs.Collector) (*Pool, *nvmm.Device) {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(dev, clock.Real{}, Config{
		Blocks: blocks, Shards: 1, WritebackThreads: -1, CLFW: true,
		FaultBackoff: time.Microsecond, Obs: col,
		WriteFault: func(addr int64, n int) error {
			for {
				v := fail.Load()
				if v <= 0 {
					return nil
				}
				if fail.CompareAndSwap(v, v-1) {
					return errInjected
				}
			}
		},
	})
	t.Cleanup(p.Close)
	return p, dev
}

func TestWritebackTransientFaultRetried(t *testing.T) {
	var fail atomic.Int64
	col := obs.New()
	p, dev := faultPool(t, 8, &fail, col)
	fb := p.NewFile()
	const addr = 1 << 20
	data := []byte("retry me")
	fb.Write(0, 0, data, addr, false)

	fail.Store(2) // first two attempts fail, the third succeeds
	n, err := fb.Flush()
	if err != nil {
		t.Fatalf("Flush after transient fault: %v", err)
	}
	if n == 0 {
		t.Fatal("Flush reported zero lines")
	}
	got := make([]byte, len(data))
	dev.Read(got, addr)
	if !bytes.Equal(got, data) {
		t.Fatalf("NVMM holds %q, want %q", got, data)
	}
	st := p.Stats()
	if st.WritebackFaults != 2 || st.WritebackRetries != 2 || st.WritebackGiveUps != 0 {
		t.Fatalf("stats faults=%d retries=%d giveups=%d, want 2/2/0",
			st.WritebackFaults, st.WritebackRetries, st.WritebackGiveUps)
	}
	if got := col.Counter(obs.CtrWritebackFaults); got != 2 {
		t.Fatalf("obs writeback-faults = %d, want 2", got)
	}
	if got := col.Counter(obs.CtrWritebackRetries); got != 2 {
		t.Fatalf("obs writeback-retries = %d, want 2", got)
	}
}

func TestWritebackPermanentFaultKeepsDirtyData(t *testing.T) {
	var fail atomic.Int64
	p, dev := faultPool(t, 8, &fail, nil)
	fb := p.NewFile()
	const addr = 1 << 20
	data := []byte("must not be lost")
	fb.Write(0, 0, data, addr, false)

	fail.Store(1 << 30) // every attempt fails
	if _, err := fb.Flush(); !errors.Is(err, errInjected) {
		t.Fatalf("Flush error = %v, want injected fault", err)
	}
	st := p.Stats()
	if st.WritebackGiveUps == 0 {
		t.Fatal("no give-up recorded")
	}
	if p.DirtyBlocks() != 1 {
		t.Fatalf("dirty blocks = %d, want 1 (data retained)", p.DirtyBlocks())
	}
	// FlushAll fails the same way but must not panic or discard the block.
	if _, err := p.FlushAll(); !errors.Is(err, errInjected) {
		t.Fatalf("FlushAll error = %v, want injected fault", err)
	}
	// The fault clears; the retained dirty data reaches NVMM.
	fail.Store(0)
	if _, err := fb.Flush(); err != nil {
		t.Fatalf("Flush after fault cleared: %v", err)
	}
	got := make([]byte, len(data))
	dev.Read(got, addr)
	if !bytes.Equal(got, data) {
		t.Fatalf("NVMM holds %q, want %q", got, data)
	}
}

func TestEvictBlockFaultLeavesBlockBuffered(t *testing.T) {
	var fail atomic.Int64
	p, _ := faultPool(t, 8, &fail, nil)
	fb := p.NewFile()
	const addr = 1 << 20
	fb.Write(0, 0, []byte("eager"), addr, false)

	fail.Store(1 << 30)
	if err := fb.EvictBlock(0); !errors.Is(err, errInjected) {
		t.Fatalf("EvictBlock error = %v, want injected fault", err)
	}
	if !fb.Buffered(0) {
		t.Fatal("failed eviction detached the block")
	}
	if fb.DirtyLines(0) == 0 {
		t.Fatal("failed eviction dropped dirty lines")
	}
	fail.Store(0)
	if err := fb.EvictBlock(0); err != nil {
		t.Fatalf("EvictBlock after fault cleared: %v", err)
	}
	if fb.Buffered(0) {
		t.Fatal("block still buffered after successful eviction")
	}
}

// TestInlineEvictionFaultDoesNotLoseBlocks fills a pool whose writeback
// permanently fails, forcing the foreground allocation path through its
// inline-eviction fallback. Allocation must neither panic nor discard a
// dirty block; once the fault clears, every block's data reaches NVMM.
func TestInlineEvictionFaultDoesNotLoseBlocks(t *testing.T) {
	var fail atomic.Int64
	p, dev := faultPool(t, 4, &fail, nil)
	fb := p.NewFile()
	base := int64(1 << 20)

	fail.Store(1 << 30)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Writes 4..6 need eviction of 0..2; with writeback failing the
		// allocator stalls until the fault clears (quarantine expires).
		for i := int64(0); i < 7; i++ {
			fb.Write(i, 0, []byte{byte('a' + i)}, base+i*BlockSize, false)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	fail.Store(0)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("allocation did not recover after fault cleared")
	}
	if p.Stats().WritebackGiveUps == 0 {
		t.Fatal("inline eviction never recorded a give-up")
	}
	if _, err := fb.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	var b [1]byte
	for i := int64(0); i < 7; i++ {
		if ok := fb.ReadMerge(i, 0, b[:], base+i*BlockSize); !ok {
			dev.Read(b[:], base+i*BlockSize)
		}
		if b[0] != byte('a'+i) {
			t.Fatalf("block %d holds %q, want %q", i, b[0], byte('a'+i))
		}
	}
}
