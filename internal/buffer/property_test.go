package buffer

import (
	"bytes"
	"testing"
	"testing/quick"

	"hinfs/internal/clock"
	"hinfs/internal/nvmm"
	"hinfs/internal/workload"
)

// TestReadMergeConsistencyProperty is the §3.3.1 invariant as a property:
// after any sequence of buffered writes, flushes, invalidates and evictions
// on one block, the merged view (DRAM valid lines + NVMM for the rest)
// must equal a plain shadow array that saw the same writes.
func TestReadMergeConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		dev, err := nvmm.New(nvmm.Config{Size: 4 << 20})
		if err != nil {
			t.Fatal(err)
		}
		p := NewPool(dev, clock.Real{}, Config{Blocks: 2, CLFW: true})
		defer p.Close()
		fb := p.NewFile()
		rng := workload.NewRand(seed)

		const addr = 1 << 20
		shadow := make([]byte, BlockSize)
		buf := make([]byte, BlockSize)
		blockExists := false

		for op := 0; op < 120; op++ {
			switch rng.Intn(10) {
			case 0: // flush the file (block becomes clean, NVMM catches up)
				fb.Flush()
			case 1: // invalidate a random line range
				off := rng.Intn(BlockSize)
				n := 1 + rng.Intn(BlockSize-off)
				fb.Invalidate(0, off, n)
			case 2: // evict (flush + drop)
				fb.EvictBlock(0)
			default: // buffered write of a random range
				off := rng.Intn(BlockSize)
				n := 1 + rng.Intn(BlockSize-off)
				data := buf[:n]
				for i := range data {
					data[i] = byte(rng.Uint64())
				}
				fb.Write(0, off, data, addr, blockExists)
				copy(shadow[off:], data)
				blockExists = true
			}
			// The merged view must equal the shadow at all times. Bytes
			// never written are zero in the shadow; the device block was
			// never pre-populated, so unwritten NVMM bytes are zero too.
			got := make([]byte, BlockSize)
			if !fb.ReadMerge(0, 0, got, addr) {
				dev.Read(got, addr)
			}
			if !blockExists {
				continue
			}
			if !bytes.Equal(got, shadow) {
				for i := range got {
					if got[i] != shadow[i] {
						t.Logf("seed %d op %d: byte %d (line %d): got %#x want %#x",
							seed, op, i, i/64, got[i], shadow[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiBlockMergeProperty extends the invariant across several blocks
// competing for a tiny pool (constant eviction churn).
func TestMultiBlockMergeProperty(t *testing.T) {
	dev, err := nvmm.New(nvmm.Config{Size: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(dev, clock.Real{}, Config{Blocks: 3, CLFW: true})
	defer p.Close()
	fb := p.NewFile()
	rng := workload.NewRand(77)

	const nBlocks = 8
	base := int64(1 << 20)
	shadows := make([][]byte, nBlocks)
	exists := make([]bool, nBlocks)
	for i := range shadows {
		shadows[i] = make([]byte, BlockSize)
	}
	data := make([]byte, BlockSize)
	for op := 0; op < 600; op++ {
		blk := rng.Intn(nBlocks)
		addr := base + int64(blk)*BlockSize
		off := rng.Intn(BlockSize)
		n := 1 + rng.Intn(BlockSize-off)
		for i := 0; i < n; i++ {
			data[i] = byte(rng.Uint64())
		}
		fb.Write(int64(blk), off, data[:n], addr, exists[blk])
		copy(shadows[blk][off:], data[:n])
		exists[blk] = true

		probe := rng.Intn(nBlocks)
		if !exists[probe] {
			continue
		}
		got := make([]byte, BlockSize)
		if !fb.ReadMerge(int64(probe), 0, got, base+int64(probe)*BlockSize) {
			dev.Read(got, base+int64(probe)*BlockSize)
		}
		if !bytes.Equal(got, shadows[probe]) {
			t.Fatalf("op %d: block %d diverged from shadow", op, probe)
		}
	}
}
