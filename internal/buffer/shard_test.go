package buffer

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"hinfs/internal/clock"
	"hinfs/internal/nvmm"
)

func shardedPool(t testing.TB, blocks, shards int) (*Pool, *nvmm.Device) {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(dev, clock.Real{}, Config{Blocks: blocks, Shards: shards, CLFW: true})
	t.Cleanup(p.Close)
	return p, dev
}

func TestShardCountDefaults(t *testing.T) {
	cases := []struct {
		blocks, shards int
		min, max       int
	}{
		{blocks: 8, shards: 0, min: 1, max: 1},       // tiny pool: auto = 1
		{blocks: 8, shards: 16, min: 8, max: 8},      // explicit, clamped to blocks
		{blocks: 4096, shards: 3, min: 3, max: 3},    // explicit, honoured
		{blocks: 4096, shards: 0, min: 1, max: 4096}, // auto = GOMAXPROCS-ish
	}
	for _, c := range cases {
		p, _ := shardedPool(t, c.blocks, c.shards)
		if n := p.ShardCount(); n < c.min || n > c.max {
			t.Fatalf("Blocks=%d Shards=%d: got %d shards, want in [%d,%d]",
				c.blocks, c.shards, n, c.min, c.max)
		}
		if got := p.Config().Shards; got != p.ShardCount() {
			t.Fatalf("Config().Shards=%d != ShardCount()=%d", got, p.ShardCount())
		}
	}
}

func TestShardCapacityPartition(t *testing.T) {
	p, _ := shardedPool(t, 10, 4)
	st := p.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("shard stats len = %d", len(st.Shards))
	}
	total, free := 0, 0
	for _, s := range st.Shards {
		if s.Capacity < 2 || s.Capacity > 3 {
			t.Fatalf("uneven shard capacity %d", s.Capacity)
		}
		total += s.Capacity
		free += s.Free
	}
	if total != 10 || free != 10 {
		t.Fatalf("capacity=%d free=%d, want 10/10", total, free)
	}
	if p.FreeBlocks() != 10 {
		t.Fatalf("FreeBlocks = %d", p.FreeBlocks())
	}
}

func TestShardedWriteReadFlushAcrossFiles(t *testing.T) {
	p, dev := shardedPool(t, 64, 4)
	const nFiles, nBlocks = 5, 6
	fbs := make([]*FileBuf, nFiles)
	for i := range fbs {
		fbs[i] = p.NewFile()
	}
	addr := func(f, blk int) int64 { return int64(1<<20) + int64(f*nBlocks+blk)*BlockSize }
	for f, fb := range fbs {
		for blk := 0; blk < nBlocks; blk++ {
			data := bytes.Repeat([]byte{byte(16*f + blk + 1)}, BlockSize)
			fb.Write(int64(blk), 0, data, addr(f, blk), false)
		}
	}
	if n, _ := p.FlushAll(); n == 0 {
		t.Fatal("FlushAll flushed nothing")
	}
	if p.DirtyBlocks() != 0 {
		t.Fatalf("dirty after FlushAll = %d", p.DirtyBlocks())
	}
	// Every block readable with the right contents, buffered or from NVMM.
	for f, fb := range fbs {
		for blk := 0; blk < nBlocks; blk++ {
			got := make([]byte, BlockSize)
			if !fb.ReadMerge(int64(blk), 0, got, addr(f, blk)) {
				dev.Read(got, addr(f, blk))
			}
			want := byte(16*f + blk + 1)
			if got[0] != want || got[BlockSize-1] != want {
				t.Fatalf("file %d block %d = %#x, want %#x", f, blk, got[0], want)
			}
		}
	}
}

// TestSmallPoolWatermarksClamped is the regression for the truncated
// watermarks: pools under 20 blocks used to compute Low_f = High_f = 0, so
// background reclamation never armed and every foreground write stalled on
// the inline-evict path. With the clamp, an 8-block pool must arm its
// writeback threads and bring free space back above the high watermark.
func TestSmallPoolWatermarksClamped(t *testing.T) {
	p, _ := shardedPool(t, 8, 1)
	sh := p.shards[0]
	if sh.low < 1 {
		t.Fatalf("low watermark = %d, want >= 1", sh.low)
	}
	if sh.high <= sh.low {
		t.Fatalf("high watermark = %d, want > low (%d)", sh.high, sh.low)
	}
	fb := p.NewFile()
	for i := int64(0); i < 8; i++ {
		fb.Write(i, 0, []byte{byte(i + 1)}, (1<<20)+i*BlockSize, false)
	}
	// The final allocation left free < Low_f and kicked the writeback
	// threads; they must reclaim up to the high watermark on their own.
	deadline := time.Now().Add(2 * time.Second)
	for p.FreeBlocks() < sh.high {
		if time.Now().After(deadline) {
			t.Fatalf("background reclaim never armed: free=%d high=%d",
				p.FreeBlocks(), sh.high)
		}
		p.Kick()
		time.Sleep(time.Millisecond)
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

// TestFlushAllFlushesPinnedBlocks is the sync-durability regression: a
// concurrent reader's pin (here simulated with lookupPin) used to make
// FlushAll skip the block entirely, so sync(2) returned with dirty data
// still in DRAM.
func TestFlushAllFlushesPinnedBlocks(t *testing.T) {
	p, dev := shardedPool(t, 16, 1)
	fb := p.NewFile()
	const addr = 1 << 20
	fb.Write(0, 0, bytes.Repeat([]byte{0xD1}, BlockSize), addr, false)
	b := fb.lookupPin(0, false) // a reader holds the block pinned
	defer b.pins.Add(-1)
	if n, _ := p.FlushAll(); n == 0 {
		t.Fatal("FlushAll skipped the pinned dirty block")
	}
	if p.DirtyBlocks() != 0 {
		t.Fatalf("dirty after FlushAll = %d, want 0", p.DirtyBlocks())
	}
	got := make([]byte, BlockSize)
	dev.Read(got, addr)
	if got[0] != 0xD1 || got[BlockSize-1] != 0xD1 {
		t.Fatal("pinned block's data never reached NVMM")
	}
}

// TestFlushAllVsReadMergeRace races sync(2) against concurrent readers:
// after every FlushAll (with no concurrent writers) the pool must hold
// zero dirty lines. Same-file writer/reader exclusion is the owning file
// system's job (the inode lock), so the test provides it with an RWMutex;
// FlushAll itself runs outside that lock, racing the readers.
func TestFlushAllVsReadMergeRace(t *testing.T) {
	p, _ := shardedPool(t, 32, 2)
	const nBlocks = 8
	fb := p.NewFile()
	addr := func(blk int64) int64 { return 1<<20 + blk*BlockSize }
	var ino sync.RWMutex // stand-in for the owning inode lock
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, BlockSize)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				blk := int64(i % nBlocks)
				ino.RLock()
				fb.ReadMerge(blk, 0, buf, addr(blk))
				ino.RUnlock()
			}
		}()
	}
	for round := 0; round < 100; round++ {
		for blk := int64(0); blk < nBlocks; blk++ {
			ino.Lock()
			fb.Write(blk, 0, []byte{byte(round)}, addr(blk), round > 0)
			ino.Unlock()
		}
		p.FlushAll()
		if n := p.DirtyBlocks(); n != 0 {
			close(stop)
			wg.Wait()
			t.Fatalf("round %d: %d dirty blocks survived FlushAll", round, n)
		}
	}
	close(stop)
	wg.Wait()
}

// TestAllocStallUsesInjectedClock pins the only block of a one-shard pool
// so a second allocation must take the stall path; the wait has to run on
// the injected clock (a fake here) and be accounted in StallNanos. Before
// the fix the stall was a real time.Sleep, so simulated-clock runs mixed
// wall time into their results.
func TestAllocStallUsesInjectedClock(t *testing.T) {
	fk := clock.NewFake(time.Unix(0, 0))
	dev, err := nvmm.New(nvmm.Config{Size: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(dev, fk, Config{Blocks: 1, Shards: 1, WritebackThreads: -1, CLFW: true})
	fb := p.NewFile()
	fb.Write(0, 0, []byte{1}, 1<<20, false)
	b := fb.lookupPin(0, false) // all blocks pinned: no inline victim
	done := make(chan struct{})
	go func() {
		fb.Write(1, 0, []byte{2}, 2<<20, false)
		close(done)
	}()
	// The writer is stalled on clk.After; advancing the fake clock lets it
	// retry. Unpin after a few spins so a victim becomes available.
	deadline := time.Now().Add(2 * time.Second)
	finished := false
	for i := 0; !finished; i++ {
		if i == 10 {
			b.pins.Add(-1)
		}
		fk.Advance(stallBackoff)
		select {
		case <-done:
			finished = true
		case <-time.After(time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("stalled write never completed under the fake clock")
			}
		}
	}
	st := p.Stats()
	if st.Stalls == 0 {
		t.Fatal("stall episode not counted")
	}
	if st.StallNanos == 0 {
		t.Fatal("stall duration not accounted (StallNanos = 0)")
	}
	p.Close()
}

// TestAllocStealsFromOtherShards exhausts one shard while its neighbours
// are idle: the allocation must migrate a free block instead of evicting.
func TestAllocStealsFromOtherShards(t *testing.T) {
	dev, err := nvmm.New(nvmm.Config{Size: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(dev, clock.Real{}, Config{
		Blocks: 8, Shards: 4, WritebackThreads: -1, CLFW: true})
	defer p.Close()
	fb := p.NewFile()
	// Find 4 block indices that all hash to the same 2-block shard.
	target := p.shardFor(fb, 0)
	indices := []int64{0}
	for idx := int64(1); len(indices) < 4 && idx < 1<<20; idx++ {
		if p.shardFor(fb, idx) == target {
			indices = append(indices, idx)
		}
	}
	if len(indices) < 4 {
		t.Skip("hash never collided (astronomically unlikely)")
	}
	for _, idx := range indices {
		fb.Write(idx, 0, []byte{byte(idx + 1)}, (1<<20)+idx*BlockSize, false)
	}
	for _, idx := range indices {
		if !fb.Buffered(idx) {
			t.Fatalf("block %d evicted despite free blocks elsewhere", idx)
		}
	}
	if p.Stats().Evictions != 0 {
		t.Fatalf("evicted %d blocks instead of stealing", p.Stats().Evictions)
	}
}
