// Package buffer implements HiNFS's NVMM-aware DRAM write buffer
// (paper §3.2).
//
// The buffer holds 4 KB DRAM blocks managed with the LRW (Least Recently
// Written) replacement policy. Each block carries two cacheline bitmaps:
// valid (which 64 B lines hold up-to-date data in DRAM) and dirty (which
// lines must be written back to NVMM). The Cacheline Level Fetch/Writeback
// scheme (CLFW, §3.2.1) fetches only the cachelines a partial write needs
// and writes back only dirty cachelines, run by run.
//
// Background writeback threads reclaim blocks when free space drops below
// Low_f (until it exceeds High_f), wake every FlushPeriod, and write back
// dirty blocks older than MaxDirtyAge. Ordered-mode journaling is
// supported by per-block transaction references: when a block's dirty
// lines reach NVMM, every registered transaction is notified so its commit
// record can be written (paper §4.1).
//
// Concurrency model: the pool is split into Config.Shards independent
// shards. A buffered block's shard is chosen by hashing its (FileBuf,
// block index) pair, so different files — and different block ranges of
// the same file — spread across shards and the write-hit fast path never
// serializes behind one global lock. Each shard owns:
//
//   - a mutex guarding the shard's slice of every file's DRAM Block Index,
//     the shard's LRW list and its free list;
//   - its own free list (blocks migrate between shards under allocation
//     pressure: an empty shard steals a free block from the fullest one);
//   - its own Low_f/High_f watermarks, computed from the shard's share of
//     the pool and clamped so that Low_f >= 1 block and Low_f < High_f —
//     background reclamation therefore arms even for tiny pools whose
//     fractional watermarks would truncate to zero.
//
// Within a shard the per-block protocol is unchanged: a per-block pin
// count keeps a block from being detached or reclaimed while in use; a
// per-block flush mutex serializes content mutation (write-copy,
// writeback, invalidate); and the bitmaps are atomics so scans read
// consistent snapshots without locks. Same-file writer/reader exclusion is
// provided by the owning file system's inode lock.
//
// Cross-shard operations (FlushAll, DirtyBlocks, Close) visit shards in
// index order, locking one shard at a time; they never hold two shard
// locks at once, so there is no lock-ordering hazard. FlushAll — the
// sync(2) path — pins every dirty block it finds regardless of the block's
// current pin count: pins only block detachment, not writeback, so a
// concurrent reader's pin must not (and no longer does) exempt a dirty
// block from durability.
//
// The paper indexes buffered blocks with a per-file B-tree reused from
// PMFS and notes (§3.2) that the index structure is not performance
// critical — "there will be little performance difference between the
// index implementations of B-tree and other structures". We use Go's map
// as the per-file, per-shard DRAM Block Index accordingly.
package buffer

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/cacheline"
	"hinfs/internal/clock"
	"hinfs/internal/journal"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
)

// BlockSize is the DRAM buffer block size (equal to the FS block size).
const BlockSize = cacheline.BlockSize

// minShardBlocks is the smallest per-shard capacity the automatic shard
// count will produce; below it, per-shard watermarks degenerate and the
// sharding overhead outweighs the lock-contention win.
const minShardBlocks = 64

// stallBackoff is how long a stalled foreground allocation waits when
// every block in its shard is pinned (liveness fallback).
const stallBackoff = 10 * time.Microsecond

// Config tunes the buffer pool. Zero fields take the paper's defaults.
type Config struct {
	// Blocks is the pool capacity in 4 KB blocks. Required.
	Blocks int
	// Shards is the number of independent pool shards. 0 picks
	// runtime.GOMAXPROCS(0), capped so every shard holds at least
	// minShardBlocks blocks; an explicit value is honoured up to one
	// shard per block.
	Shards int
	// LowFree is the free-block fraction that wakes the writeback threads
	// (default 0.05, the paper's Low_f). Per shard it is clamped to at
	// least one block.
	LowFree float64
	// HighFree is the free-block fraction reclamation aims for
	// (default 0.20, the paper's High_f). Per shard it is clamped to stay
	// above the low watermark.
	HighFree float64
	// FlushPeriod is the periodic writeback wake interval (default 5 s).
	FlushPeriod time.Duration
	// MaxDirtyAge writes back blocks not written for this long
	// (default 30 s).
	MaxDirtyAge time.Duration
	// WritebackThreads is the number of background flusher goroutines
	// (default 4; the paper creates "multiple independent kernel
	// threads"). A negative value disables background writeback entirely:
	// eviction then happens only inline in the foreground allocation
	// path, which deterministic replacement-policy tests rely on.
	WritebackThreads int
	// CLFW enables Cacheline Level Fetch/Writeback. When false (the
	// paper's HiNFS-NCLFW ablation), whole blocks are fetched on a partial
	// miss and whole blocks are written back.
	CLFW bool
	// Policy selects the replacement policy. The paper uses LRW and notes
	// other policies (LFU, ARC, 2Q) could be integrated; LRW, FIFO and a
	// simple LFW are provided for the ablation benches.
	Policy Policy
	// Obs, when non-nil, receives foreground stall latencies
	// (obs.PathStall), background writeback batch sizes
	// (obs.PathWriteback) and the corresponding spans. Nil disables
	// observability at zero cost on the write-hit fast path.
	Obs *obs.Collector
	// WriteFault, when non-nil, is consulted before every writeback
	// device write with the target range and may return an error to
	// inject a transient write failure (fault-injection testing). Failed
	// writeback attempts are retried with exponential backoff on the pool
	// clock; a block whose retries are exhausted keeps its dirty data and
	// is quarantined from eviction for a short period.
	WriteFault func(addr int64, n int) error
	// FaultRetries is the number of writeback retries after a failed
	// attempt before giving up on the attempt (default 5).
	FaultRetries int
	// FaultBackoff is the initial retry backoff, doubled per retry
	// (default 50 µs).
	FaultBackoff time.Duration
}

// Policy is a buffer replacement policy.
type Policy int

// Replacement policies.
const (
	// LRW evicts the Least Recently Written block (paper default).
	LRW Policy = iota
	// FIFO evicts in insertion order (rewrites do not refresh position).
	FIFO
	// LFW evicts the Least Frequently Written block (LRW tiebreak).
	LFW
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRW:
		return "lrw"
	case FIFO:
		return "fifo"
	case LFW:
		return "lfw"
	}
	return "unknown"
}

func (c *Config) fill() {
	if c.Shards == 0 {
		n := runtime.GOMAXPROCS(0)
		if most := c.Blocks / minShardBlocks; n > most {
			n = most
		}
		c.Shards = n
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Shards > c.Blocks && c.Blocks > 0 {
		c.Shards = c.Blocks
	}
	if c.LowFree == 0 {
		c.LowFree = 0.05
	}
	if c.HighFree == 0 {
		c.HighFree = 0.20
	}
	if c.FlushPeriod == 0 {
		c.FlushPeriod = 5 * time.Second
	}
	if c.MaxDirtyAge == 0 {
		c.MaxDirtyAge = 30 * time.Second
	}
	if c.WritebackThreads == 0 {
		c.WritebackThreads = 4
	}
	if c.WritebackThreads < 0 {
		c.WritebackThreads = 0
	}
	if c.FaultRetries == 0 {
		c.FaultRetries = 5
	}
	if c.FaultBackoff == 0 {
		c.FaultBackoff = 50 * time.Microsecond
	}
}

// ShardStats reports one shard's occupancy (lock-free snapshot).
type ShardStats struct {
	// Capacity is the shard's initial share of the pool in blocks.
	Capacity int
	// Free is the shard's current free-list length.
	Free int
	// InUse is the number of blocks currently installed in the shard.
	InUse int
}

// Stats aggregates pool counters.
type Stats struct {
	// WriteHits counts buffered writes that found their block in DRAM.
	WriteHits int64
	// WriteMisses counts buffered writes that allocated a new DRAM block.
	WriteMisses int64
	// LinesFetched counts cachelines fetched NVMM→DRAM for partial writes.
	LinesFetched int64
	// LinesFlushed counts cachelines written back DRAM→NVMM.
	LinesFlushed int64
	// Evictions counts blocks reclaimed by writeback threads or inline.
	Evictions int64
	// Stalls counts foreground allocation episodes that found their shard
	// exhausted.
	Stalls int64
	// StallNanos is the cumulative time foreground allocations spent in
	// the exhausted-shard slow path (inline eviction plus backoff waits),
	// measured on the pool clock.
	StallNanos int64
	// WritebackBatches counts background reclaim/age passes that wrote
	// back at least one block.
	WritebackBatches int64
	// WritebackBlocks counts blocks written back by background batches
	// (per-batch size = WritebackBlocks / WritebackBatches).
	WritebackBlocks int64
	// Drops counts dirty blocks discarded because their file was deleted —
	// writes that never had to reach NVMM.
	Drops int64
	// WritebackFaults counts injected writeback write errors observed
	// (Config.WriteFault returning non-nil).
	WritebackFaults int64
	// WritebackRetries counts writeback attempts re-run after a fault,
	// each preceded by an exponential-backoff wait on the pool clock.
	WritebackRetries int64
	// WritebackGiveUps counts writeback episodes that exhausted their
	// retries; the block keeps its dirty data (background paths quarantine
	// it and retry later, sync paths surface the error).
	WritebackGiveUps int64
	// Shards snapshots per-shard occupancy.
	Shards []ShardStats
}

// block is one DRAM buffer block. Its data is owned by the pool slab.
type block struct {
	data []byte
	fb   *FileBuf
	sh   *shard // owning shard (home of free/LRW membership)
	idx  int64  // file block index
	addr int64  // NVMM device byte address of the backing block

	valid atomic.Uint64 // cacheline.Bitmap: up-to-date lines in DRAM
	dirty atomic.Uint64 // cacheline.Bitmap: lines needing writeback

	lastWrite atomic.Int64 // unix nanos of the last buffered write
	writes    atomic.Int64 // buffered write count (LFW policy)
	retryAt   atomic.Int64 // pool-clock nanos before which eviction skips the block (fault quarantine)

	fmu sync.Mutex    // serializes content mutation: write, flush, invalidate
	txs []*journal.Tx // ordered-mode commits gated on this block (under fmu)

	pins atomic.Int32 // >0: block must not be detached or reclaimed

	prev, next *block // LRW list links (head = MRW, tail = LRW)
}

func (b *block) validMap() cacheline.Bitmap { return cacheline.Bitmap(b.valid.Load()) }
func (b *block) dirtyMap() cacheline.Bitmap { return cacheline.Bitmap(b.dirty.Load()) }

// shard is one independent slice of the pool: its own lock, free list,
// LRW list and watermarks.
type shard struct {
	pool *Pool
	id   int
	// total is the shard's initial share of the pool; low/high are the
	// reclamation watermarks in blocks, clamped to low >= 1 and
	// low < high (<= total).
	total     int
	low, high int

	mu    sync.Mutex
	free  []*block
	head  *block // most recently written
	tail  *block // least recently written
	inUse int

	// freeCount and inUseCount mirror len(free) and inUse so Stats and
	// FreeBlocks read occupancy without taking shard locks.
	freeCount  atomic.Int32
	inUseCount atomic.Int32
}

// Pool is the shared DRAM buffer.
type Pool struct {
	dev *nvmm.Device
	clk clock.Clock
	cfg Config

	shards []*shard
	total  int

	fileID atomic.Uint64
	closed atomic.Bool

	wake chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup

	writeHits    atomic.Int64
	writeMisses  atomic.Int64
	linesFetched atomic.Int64
	linesFlushed atomic.Int64
	evictions    atomic.Int64
	stalls       atomic.Int64
	stallNanos   atomic.Int64
	wbBatches    atomic.Int64
	wbBlocks     atomic.Int64
	drops        atomic.Int64
	wbFaults     atomic.Int64
	wbRetries    atomic.Int64
	wbGiveUps    atomic.Int64
}

// NewPool creates a pool of cfg.Blocks DRAM blocks over dev and starts the
// background writeback threads.
func NewPool(dev *nvmm.Device, clk clock.Clock, cfg Config) *Pool {
	if cfg.Blocks <= 0 {
		panic("buffer: Config.Blocks must be positive")
	}
	cfg.fill()
	p := &Pool{dev: dev, clk: clk, cfg: cfg, total: cfg.Blocks,
		wake: make(chan struct{}, 1), quit: make(chan struct{})}
	slab := make([]byte, cfg.Blocks*BlockSize)
	p.shards = make([]*shard, cfg.Shards)
	base := cfg.Blocks / cfg.Shards
	rem := cfg.Blocks % cfg.Shards
	next := 0
	for i := range p.shards {
		n := base
		if i < rem {
			n++
		}
		sh := &shard{pool: p, id: i, total: n}
		sh.low = int(float64(n) * cfg.LowFree)
		sh.high = int(float64(n) * cfg.HighFree)
		if sh.low < 1 {
			sh.low = 1
		}
		if sh.high <= sh.low {
			sh.high = sh.low + 1
		}
		if sh.high > n {
			sh.high = n
		}
		if sh.low > sh.high {
			sh.low = sh.high // degenerate one-block shard
		}
		sh.free = make([]*block, n)
		for j := 0; j < n; j++ {
			sh.free[j] = &block{
				data: slab[(next+j)*BlockSize : (next+j+1)*BlockSize],
				sh:   sh,
			}
		}
		sh.freeCount.Store(int32(n))
		next += n
		p.shards[i] = sh
	}
	for i := 0; i < cfg.WritebackThreads; i++ {
		p.wg.Add(1)
		go p.writebackLoop(i)
	}
	return p
}

// shardFor maps a (file, block index) pair onto its shard.
func (p *Pool) shardFor(fb *FileBuf, idx int64) *shard {
	if len(p.shards) == 1 {
		return p.shards[0]
	}
	h := fb.id*0x9E3779B97F4A7C15 + uint64(idx)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	h *= 0x94D049BB133111EB
	h ^= h >> 32
	return p.shards[h%uint64(len(p.shards))]
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats {
	st := Stats{
		WriteHits:        p.writeHits.Load(),
		WriteMisses:      p.writeMisses.Load(),
		LinesFetched:     p.linesFetched.Load(),
		LinesFlushed:     p.linesFlushed.Load(),
		Evictions:        p.evictions.Load(),
		Stalls:           p.stalls.Load(),
		StallNanos:       p.stallNanos.Load(),
		WritebackBatches: p.wbBatches.Load(),
		WritebackBlocks:  p.wbBlocks.Load(),
		Drops:            p.drops.Load(),
		WritebackFaults:  p.wbFaults.Load(),
		WritebackRetries: p.wbRetries.Load(),
		WritebackGiveUps: p.wbGiveUps.Load(),
		Shards:           make([]ShardStats, len(p.shards)),
	}
	for i, sh := range p.shards {
		st.Shards[i] = ShardStats{
			Capacity: sh.total,
			Free:     int(sh.freeCount.Load()),
			InUse:    int(sh.inUseCount.Load()),
		}
	}
	return st
}

// FreeBlocks returns the current number of free DRAM blocks (lock-free
// snapshot summed across shards).
func (p *Pool) FreeBlocks() int {
	n := 0
	for _, sh := range p.shards {
		n += int(sh.freeCount.Load())
	}
	return n
}

// Capacity returns the pool size in blocks.
func (p *Pool) Capacity() int { return p.total }

// ShardCount returns the number of independent pool shards.
func (p *Pool) ShardCount() int { return len(p.shards) }

// Config returns the pool configuration after defaulting (Shards holds
// the resolved shard count).
func (p *Pool) Config() Config { return p.cfg }

// DirtyBlocks returns the number of buffered blocks with dirty lines.
func (p *Pool) DirtyBlocks() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		for b := sh.head; b != nil; b = b.next {
			if b.dirtyMap().Any() {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Abandon stops the background writeback threads without flushing
// anything. Crash-simulation harnesses use it in place of Close so the
// NVMM image stays exactly as the persist events issued so far made it.
func (p *Pool) Abandon() {
	if p.closed.Swap(true) {
		return
	}
	close(p.quit)
	p.wg.Wait()
}

// Close flushes every dirty block to NVMM and stops the writeback threads
// (the paper flushes all DRAM blocks at unmount). A block whose writeback
// exhausts its retries stays installed with its dirty data — never
// discarded — and is skipped for the rest of the unmount sweep.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.quit)
	p.wg.Wait()
	for _, sh := range p.shards {
		failed := make(map[*block]bool)
		for {
			sh.mu.Lock()
			var victim *block
			remaining := 0
			for b := sh.tail; b != nil; b = b.prev {
				if failed[b] {
					continue
				}
				remaining++
				if victim == nil && b.pins.Load() == 0 {
					victim = b
				}
			}
			if victim != nil {
				victim.pins.Add(1)
			}
			sh.mu.Unlock()
			if victim == nil {
				if remaining == 0 {
					break
				}
				runtime.Gosched()
				continue
			}
			err := p.flushBlock(victim, obs.CopySyncFlush)
			sh.mu.Lock()
			ok := err == nil && victim.fb != nil && victim.pins.Load() == 1 &&
				!victim.dirtyMap().Any()
			if ok {
				sh.detachLocked(victim)
			}
			sh.mu.Unlock()
			victim.pins.Add(-1)
			if ok {
				p.releaseBlock(victim)
			} else if err != nil {
				failed[victim] = true
			}
		}
	}
}

// --- per-shard LRW list management (callers hold sh.mu) ---

func (sh *shard) pushMRW(b *block) {
	b.prev = nil
	b.next = sh.head
	if sh.head != nil {
		sh.head.prev = b
	}
	sh.head = b
	if sh.tail == nil {
		sh.tail = b
	}
}

func (sh *shard) unlinkList(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		sh.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		sh.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

func (sh *shard) touch(b *block) {
	b.writes.Add(1)
	if sh.pool.cfg.Policy == FIFO {
		return // insertion order is preserved
	}
	sh.unlinkList(b)
	sh.pushMRW(b)
}

// installLocked links b into the shard for (fb, idx); the caller owns b
// exclusively and holds sh.mu.
func (sh *shard) installLocked(b *block, fb *FileBuf, idx, addr int64) {
	b.fb = fb
	b.sh = sh
	b.idx = idx
	b.addr = addr
	m := fb.blocks[sh.id]
	if m == nil {
		m = make(map[int64]*block)
		fb.blocks[sh.id] = m
	}
	m[idx] = b
	sh.pushMRW(b)
	sh.inUse++
	sh.inUseCount.Store(int32(sh.inUse))
}

// detachLocked removes b from its file index and the LRW list; the caller
// then owns the block exclusively (pins must be zero, or the caller holds
// the only pin — new pins require the map entry this deletes). Caller
// holds sh.mu.
func (sh *shard) detachLocked(b *block) {
	sh.unlinkList(b)
	delete(b.fb.blocks[sh.id], b.idx)
	b.fb = nil
	sh.inUse--
	sh.inUseCount.Store(int32(sh.inUse))
}

// victimLocked picks the eviction victim per the configured policy from
// unpinned blocks, skipping blocks quarantined after a failed writeback;
// nil if none. Caller holds sh.mu.
func (sh *shard) victimLocked() *block {
	now := sh.pool.clk.Now().UnixNano()
	skip := func(b *block) bool {
		return b.pins.Load() != 0 || b.retryAt.Load() > now
	}
	if sh.pool.cfg.Policy == LFW {
		var victim *block
		min := int64(1) << 62
		for b := sh.tail; b != nil; b = b.prev {
			if skip(b) {
				continue
			}
			if w := b.writes.Load(); w < min {
				min, victim = w, b
			}
		}
		return victim
	}
	for b := sh.tail; b != nil; b = b.prev {
		if !skip(b) {
			return b
		}
	}
	return nil
}

// releaseBlock resets b and returns it to its shard's free list.
func (p *Pool) releaseBlock(b *block) {
	b.valid.Store(0)
	b.dirty.Store(0)
	b.writes.Store(0)
	b.retryAt.Store(0)
	b.idx, b.addr = 0, 0
	sh := b.sh
	sh.mu.Lock()
	sh.free = append(sh.free, b)
	sh.freeCount.Store(int32(len(sh.free)))
	sh.mu.Unlock()
}

// notifyTxsLocked tells every transaction gated on b that its data
// persisted. Caller holds b.fmu.
func notifyTxsLocked(b *block) {
	for _, tx := range b.txs {
		tx.BlockPersisted()
	}
	b.txs = nil
}

// faultQuarantine is how long a block whose writeback exhausted its
// retries is exempted from eviction scans, so a persistently failing
// block cannot pin the reclaim loop in a hot spin.
const faultQuarantine = 5 * time.Millisecond

// flushBlock writes b's dirty lines back to NVMM, retrying injected write
// faults with exponential backoff. The caller must hold a pin or have
// detached the block. On error the block keeps its dirty lines. kind
// attributes the DRAM→NVMM copy: CopySyncFlush for fsync/sync/unmount,
// CopyInlineEvict for foreground stall evictions, CopyWriteback for
// background reclaim/age passes.
func (p *Pool) flushBlock(b *block, kind obs.CopyKind) error {
	b.fmu.Lock()
	defer b.fmu.Unlock()
	return p.flushBlockRetryLocked(b, kind)
}

// flushBlockRetryLocked runs one writeback episode: an attempt plus up to
// FaultRetries retries with exponential backoff on the pool clock. If the
// episode fails the block stays dirty (nothing is lost), is quarantined
// from eviction for faultQuarantine, and the error is returned for sync
// paths to surface. Caller holds b.fmu.
func (p *Pool) flushBlockRetryLocked(b *block, kind obs.CopyKind) error {
	err := p.flushBlockLocked(b, kind)
	if err == nil {
		return nil
	}
	backoff := p.cfg.FaultBackoff
	for i := 0; i < p.cfg.FaultRetries; i++ {
		<-p.clk.After(backoff)
		backoff *= 2
		p.wbRetries.Add(1)
		p.cfg.Obs.Add(obs.CtrWritebackRetries, 1)
		if err = p.flushBlockLocked(b, kind); err == nil {
			return nil
		}
	}
	p.wbGiveUps.Add(1)
	b.retryAt.Store(p.clk.Now().Add(faultQuarantine).UnixNano())
	return err
}

// flushBlockLocked is one writeback attempt. With CLFW only dirty runs are
// copied and flushed; without it the whole block is written. The dirty map
// is cleared — and gated transactions notified — only after every write
// succeeded, so a failed attempt is safe to retry (undone runs stay dirty,
// re-written runs are idempotent). Caller holds b.fmu.
func (p *Pool) flushBlockLocked(b *block, kind obs.CopyKind) error {
	dirty := b.dirtyMap()
	if !dirty.Any() {
		notifyTxsLocked(b)
		return nil
	}
	dirtyBytes := dirty.Count() * cacheline.Size
	if !p.cfg.CLFW {
		dirtyBytes = BlockSize
	}
	write := func(data []byte, addr int64) error {
		if f := p.cfg.WriteFault; f != nil {
			if err := f(addr, len(data)); err != nil {
				p.wbFaults.Add(1)
				p.cfg.Obs.Add(obs.CtrWritebackFaults, 1)
				return err
			}
		}
		p.dev.Write(data, addr)
		p.dev.Flush(addr, len(data))
		return nil
	}
	if p.cfg.CLFW {
		runs := dirty.Runs(nil, 0, cacheline.PerBlock-1)
		for _, r := range runs {
			if !r.Set {
				continue
			}
			if err := write(b.data[r.Off:r.Off+r.Len], b.addr+int64(r.Off)); err != nil {
				p.dev.Fence() // runs already issued drain; all lines stay dirty
				return err
			}
			p.linesFlushed.Add(int64(r.Len / cacheline.Size))
		}
	} else {
		if err := write(b.data, b.addr); err != nil {
			return err
		}
		p.linesFlushed.Add(cacheline.PerBlock)
	}
	p.dev.Fence()
	b.dirty.Store(0)
	p.cfg.Obs.Copy(kind, dirtyBytes)
	notifyTxsLocked(b)
	return nil
}

// FlushAll writes back every dirty block in the pool (the sync(2) path)
// and returns the number of cachelines flushed. Blocks stay cached clean.
//
// Every dirty block is pinned and flushed regardless of its current pin
// count: a pin only prevents detachment, never writeback, so a concurrent
// reader (ReadMerge) must not exempt a block from sync durability. Shards
// are visited in index order; blocks dirtied after their shard was scanned
// belong to the next sync. If a block's writeback episode exhausts its
// retries the remaining blocks are still flushed and the first error is
// returned; failed blocks keep their dirty lines for a later attempt.
func (p *Pool) FlushAll() (int, error) {
	flushed := 0
	var firstErr error
	var victims []*block
	for _, sh := range p.shards {
		victims = victims[:0]
		sh.mu.Lock()
		for b := sh.head; b != nil; b = b.next {
			if b.dirtyMap().Any() {
				b.pins.Add(1)
				victims = append(victims, b)
			}
		}
		sh.mu.Unlock()
		for _, b := range victims {
			b.fmu.Lock()
			n := b.dirtyMap().Count()
			err := p.flushBlockRetryLocked(b, obs.CopySyncFlush)
			b.fmu.Unlock()
			b.pins.Add(-1)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			flushed += n
		}
	}
	return flushed, firstErr
}

// writebackLoop is the background flusher (§3.2): it reclaims blocks from
// the LRW position when free space is low, and periodically writes back
// aged dirty blocks. Thread i starts its shard sweep at offset i so
// concurrent threads drain different shards.
func (p *Pool) writebackLoop(i int) {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case <-p.wake:
			p.reclaimFrom(i)
			p.flushAgedFrom(i)
		case <-p.clk.After(p.cfg.FlushPeriod):
			p.flushAgedFrom(i)
			if p.needReclaim() {
				p.reclaimFrom(i)
			}
		}
	}
}

// needReclaim reports whether any shard is below its low watermark.
func (p *Pool) needReclaim() bool {
	for _, sh := range p.shards {
		if int(sh.freeCount.Load()) < sh.low {
			return true
		}
	}
	return false
}

// reclaimFrom evicts LRW-position blocks in every shard that is below its
// high watermark, starting the sweep at shard offset off.
func (p *Pool) reclaimFrom(off int) {
	n := len(p.shards)
	for k := 0; k < n; k++ {
		p.reclaimShard(p.shards[(off+k)%n])
	}
}

// reclaimShard evicts LRW-position blocks until the shard's free space
// exceeds High_f. Eviction pins and flushes the victim first and detaches
// it only once writeback succeeded and the block is still installed,
// unshared and clean — a failed (fault-injected) writeback leaves the
// block buffered and quarantined rather than detached with dirty data.
func (p *Pool) reclaimShard(sh *shard) {
	start := p.clk.Now()
	batch := int64(0)
	for {
		sh.mu.Lock()
		if len(sh.free) >= sh.high {
			sh.mu.Unlock()
			break
		}
		victim := sh.victimLocked()
		if victim == nil {
			sh.mu.Unlock()
			break
		}
		victim.pins.Add(1)
		sh.mu.Unlock()
		if p.evictPinned(sh, victim, obs.CopyWriteback) {
			batch++
		}
	}
	if batch > 0 {
		p.wbBatches.Add(1)
		p.wbBlocks.Add(batch)
		p.observeWriteback(sh, start, batch, "reclaim")
	}
}

// evictPinned flushes a pinned eviction victim and, if the flush succeeded
// and the block is still installed, clean and exclusively ours, detaches
// and releases it. The pin is always dropped. Reports whether the block
// was reclaimed. kind attributes the flush copy: CopyWriteback from the
// background reclaim threads, CopyInlineEvict from a stalled foreground
// allocation.
func (p *Pool) evictPinned(sh *shard, victim *block, kind obs.CopyKind) bool {
	err := p.flushBlock(victim, kind)
	sh.mu.Lock()
	ok := err == nil && victim.fb != nil && victim.pins.Load() == 1 &&
		!victim.dirtyMap().Any()
	if ok {
		sh.detachLocked(victim)
	}
	sh.mu.Unlock()
	victim.pins.Add(-1)
	if ok {
		p.evictions.Add(1)
		p.releaseBlock(victim)
	}
	return ok
}

// observeWriteback records one background writeback batch (size in
// blocks, plus a span timed on the pool clock) into the collector.
func (p *Pool) observeWriteback(sh *shard, start time.Time, blocks int64, outcome string) {
	c := p.cfg.Obs
	if c == nil {
		return
	}
	c.Path(obs.PathWriteback, blocks)
	c.Span(obs.Span{
		Start:   start.UnixNano(),
		Dur:     p.clk.Now().Sub(start).Nanoseconds(),
		Op:      obs.OpWrite,
		Path:    obs.PathWriteback,
		Size:    blocks,
		Shard:   int32(sh.id),
		Outcome: outcome,
	})
}

// flushAgedFrom writes back dirty blocks older than MaxDirtyAge without
// evicting them; they stay cached clean. The sweep starts at shard offset
// off.
func (p *Pool) flushAgedFrom(off int) {
	cutoff := p.clk.Now().Add(-p.cfg.MaxDirtyAge).UnixNano()
	n := len(p.shards)
	var victims []*block
	for k := 0; k < n; k++ {
		sh := p.shards[(off+k)%n]
		start := p.clk.Now()
		victims = victims[:0]
		sh.mu.Lock()
		for b := sh.tail; b != nil; b = b.prev {
			if b.pins.Load() == 0 && b.dirtyMap().Any() && b.lastWrite.Load() < cutoff {
				b.pins.Add(1)
				victims = append(victims, b)
			}
		}
		sh.mu.Unlock()
		for _, b := range victims {
			// A failed episode quarantines the block; the next periodic
			// sweep retries it.
			_ = p.flushBlock(b, obs.CopyWriteback)
			b.pins.Add(-1)
		}
		if len(victims) > 0 {
			p.wbBatches.Add(1)
			p.wbBlocks.Add(int64(len(victims)))
			p.observeWriteback(sh, start, int64(len(victims)), "age")
		}
	}
}

// Kick nudges the background writeback threads without blocking.
func (p *Pool) Kick() { p.kickWriteback() }

// kickWriteback nudges the background threads without blocking.
func (p *Pool) kickWriteback() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// stealFree takes a free block from the shard with the most free blocks
// (excluding sh). It returns nil if every other shard is exhausted too.
func (p *Pool) stealFree(sh *shard) *block {
	var richest *shard
	best := 0
	for _, o := range p.shards {
		if o == sh {
			continue
		}
		if f := int(o.freeCount.Load()); f > best {
			best, richest = f, o
		}
	}
	if richest == nil {
		return nil
	}
	richest.mu.Lock()
	defer richest.mu.Unlock()
	if len(richest.free) == 0 {
		return nil
	}
	b := richest.free[len(richest.free)-1]
	richest.free = richest.free[:len(richest.free)-1]
	richest.freeCount.Store(int32(len(richest.free)))
	return b
}

// allocBlock takes a free block for shard sh. If the shard is exhausted
// the caller first steals a free block from another shard; failing that it
// stalls (the paper's foreground stall behaviour): it kicks the writeback
// threads and, as a liveness fallback, evicts one LRW block inline. Stall
// waits run on the pool clock so simulated-clock runs stay deterministic,
// and stall duration is accounted in Stats.StallNanos.
func (p *Pool) allocBlock(sh *shard) *block {
	sh.mu.Lock()
	var stallStart time.Time
	var stallOp *obs.OpCtx
	var stallFlush0 int64
	stalled := false
	for len(sh.free) == 0 {
		if !stalled {
			stalled = true
			stallStart = p.clk.Now()
			p.stalls.Add(1)
			// Snapshot the attached op's flush charge: device persists
			// performed inside this stall (inline evictions) bill to
			// StageFlush, and the episode's StageStall is net of them.
			if stallOp = obs.CurrentOp(); stallOp != nil {
				stallFlush0 = stallOp.StageNS(obs.StageFlush)
			}
		}
		p.kickWriteback()
		sh.mu.Unlock()
		if b := p.stealFree(sh); b != nil {
			p.observeStall(sh, stallStart, stallOp, stallFlush0)
			return b
		}
		sh.mu.Lock()
		victim := sh.victimLocked()
		if victim != nil {
			victim.pins.Add(1)
			sh.mu.Unlock()
			if !p.evictPinned(sh, victim, obs.CopyInlineEvict) {
				// Writeback failed (victim is quarantined) or the block
				// was re-dirtied; back off before rescanning.
				<-p.clk.After(stallBackoff)
			}
		} else {
			sh.mu.Unlock()
			<-p.clk.After(stallBackoff)
		}
		sh.mu.Lock()
	}
	b := sh.free[len(sh.free)-1]
	sh.free = sh.free[:len(sh.free)-1]
	sh.freeCount.Store(int32(len(sh.free)))
	if len(sh.free) < sh.low {
		p.kickWriteback()
	}
	sh.mu.Unlock()
	if stalled {
		p.observeStall(sh, stallStart, stallOp, stallFlush0)
	}
	return b
}

// observeStall accounts one completed foreground stall episode: the
// cumulative StallNanos counter, the stall-latency histogram, a span,
// and the attached op's StageStall — net of device flush time charged
// during the episode, so stall and flush never double-count.
func (p *Pool) observeStall(sh *shard, start time.Time, op *obs.OpCtx, flush0 int64) {
	ns := p.clk.Now().Sub(start).Nanoseconds()
	p.stallNanos.Add(ns)
	if op != nil {
		net := ns - (op.StageNS(obs.StageFlush) - flush0)
		if net > 0 {
			op.Charge(obs.StageStall, net)
		}
	}
	if c := p.cfg.Obs; c != nil {
		c.Path(obs.PathStall, ns)
		c.Span(obs.Span{
			Start:   start.UnixNano(),
			Dur:     ns,
			Op:      obs.OpWrite,
			Path:    obs.PathStall,
			Shard:   int32(sh.id),
			Trace:   op.TraceOrZero(),
			Outcome: "stall",
		})
	}
}
