// Package buffer implements HiNFS's NVMM-aware DRAM write buffer
// (paper §3.2).
//
// The buffer holds 4 KB DRAM blocks managed with the LRW (Least Recently
// Written) replacement policy. Each block carries two cacheline bitmaps:
// valid (which 64 B lines hold up-to-date data in DRAM) and dirty (which
// lines must be written back to NVMM). The Cacheline Level Fetch/Writeback
// scheme (CLFW, §3.2.1) fetches only the cachelines a partial write needs
// and writes back only dirty cachelines, run by run.
//
// Background writeback threads reclaim blocks when free space drops below
// Low_f (until it exceeds High_f), wake every FlushPeriod, and write back
// dirty blocks older than MaxDirtyAge. Ordered-mode journaling is
// supported by per-block transaction references: when a block's dirty
// lines reach NVMM, every registered transaction is notified so its commit
// record can be written (paper §4.1).
//
// Concurrency model: the pool mutex guards the LRW list, the free list and
// the per-file block indices; a per-block pin count keeps a block from
// being detached or reclaimed while in use; a per-block flush mutex
// serializes content mutation (write-copy, writeback, invalidate); and the
// bitmaps are atomics so scans read consistent snapshots without locks.
// Same-file writer/reader exclusion is provided by the owning file
// system's inode lock.
//
// The paper indexes buffered blocks with a per-file B-tree reused from
// PMFS and notes (§3.2) that the index structure is not performance
// critical — "there will be little performance difference between the
// index implementations of B-tree and other structures". We use Go's map
// as the per-file DRAM Block Index accordingly.
package buffer

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/cacheline"
	"hinfs/internal/clock"
	"hinfs/internal/journal"
	"hinfs/internal/nvmm"
)

// BlockSize is the DRAM buffer block size (equal to the FS block size).
const BlockSize = cacheline.BlockSize

// Config tunes the buffer pool. Zero fields take the paper's defaults.
type Config struct {
	// Blocks is the pool capacity in 4 KB blocks. Required.
	Blocks int
	// LowFree is the free-block fraction that wakes the writeback threads
	// (default 0.05, the paper's Low_f).
	LowFree float64
	// HighFree is the free-block fraction reclamation aims for
	// (default 0.20, the paper's High_f).
	HighFree float64
	// FlushPeriod is the periodic writeback wake interval (default 5 s).
	FlushPeriod time.Duration
	// MaxDirtyAge writes back blocks not written for this long
	// (default 30 s).
	MaxDirtyAge time.Duration
	// WritebackThreads is the number of background flusher goroutines
	// (default 4; the paper creates "multiple independent kernel threads").
	WritebackThreads int
	// CLFW enables Cacheline Level Fetch/Writeback. When false (the
	// paper's HiNFS-NCLFW ablation), whole blocks are fetched on a partial
	// miss and whole blocks are written back.
	CLFW bool
	// Policy selects the replacement policy. The paper uses LRW and notes
	// other policies (LFU, ARC, 2Q) could be integrated; LRW, FIFO and a
	// simple LFW are provided for the ablation benches.
	Policy Policy
}

// Policy is a buffer replacement policy.
type Policy int

// Replacement policies.
const (
	// LRW evicts the Least Recently Written block (paper default).
	LRW Policy = iota
	// FIFO evicts in insertion order (rewrites do not refresh position).
	FIFO
	// LFW evicts the Least Frequently Written block (LRW tiebreak).
	LFW
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRW:
		return "lrw"
	case FIFO:
		return "fifo"
	case LFW:
		return "lfw"
	}
	return "unknown"
}

func (c *Config) fill() {
	if c.LowFree == 0 {
		c.LowFree = 0.05
	}
	if c.HighFree == 0 {
		c.HighFree = 0.20
	}
	if c.FlushPeriod == 0 {
		c.FlushPeriod = 5 * time.Second
	}
	if c.MaxDirtyAge == 0 {
		c.MaxDirtyAge = 30 * time.Second
	}
	if c.WritebackThreads == 0 {
		c.WritebackThreads = 4
	}
}

// Stats aggregates pool counters.
type Stats struct {
	// WriteHits counts buffered writes that found their block in DRAM.
	WriteHits int64
	// WriteMisses counts buffered writes that allocated a new DRAM block.
	WriteMisses int64
	// LinesFetched counts cachelines fetched NVMM→DRAM for partial writes.
	LinesFetched int64
	// LinesFlushed counts cachelines written back DRAM→NVMM.
	LinesFlushed int64
	// Evictions counts blocks reclaimed by the writeback threads.
	Evictions int64
	// Stalls counts foreground waits for free blocks.
	Stalls int64
	// Drops counts dirty blocks discarded because their file was deleted —
	// writes that never had to reach NVMM.
	Drops int64
}

// block is one DRAM buffer block. Its data is owned by the pool slab.
type block struct {
	data []byte
	fb   *FileBuf
	idx  int64 // file block index
	addr int64 // NVMM device byte address of the backing block

	valid atomic.Uint64 // cacheline.Bitmap: up-to-date lines in DRAM
	dirty atomic.Uint64 // cacheline.Bitmap: lines needing writeback

	lastWrite atomic.Int64 // unix nanos of the last buffered write
	writes    atomic.Int64 // buffered write count (LFW policy)

	fmu sync.Mutex    // serializes content mutation: write, flush, invalidate
	txs []*journal.Tx // ordered-mode commits gated on this block (under fmu)

	pins atomic.Int32 // >0: block must not be detached or reclaimed

	prev, next *block // LRW list links (head = MRW, tail = LRW)
}

func (b *block) validMap() cacheline.Bitmap { return cacheline.Bitmap(b.valid.Load()) }
func (b *block) dirtyMap() cacheline.Bitmap { return cacheline.Bitmap(b.dirty.Load()) }

// Pool is the shared DRAM buffer.
type Pool struct {
	dev *nvmm.Device
	clk clock.Clock
	cfg Config

	mu     sync.Mutex
	free   []*block
	total  int
	head   *block // most recently written
	tail   *block // least recently written
	inUse  int
	closed bool

	wake chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup

	writeHits    atomic.Int64
	writeMisses  atomic.Int64
	linesFetched atomic.Int64
	linesFlushed atomic.Int64
	evictions    atomic.Int64
	stalls       atomic.Int64
	drops        atomic.Int64
}

// NewPool creates a pool of cfg.Blocks DRAM blocks over dev and starts the
// background writeback threads.
func NewPool(dev *nvmm.Device, clk clock.Clock, cfg Config) *Pool {
	cfg.fill()
	if cfg.Blocks <= 0 {
		panic("buffer: Config.Blocks must be positive")
	}
	p := &Pool{dev: dev, clk: clk, cfg: cfg, total: cfg.Blocks,
		wake: make(chan struct{}, 1), quit: make(chan struct{})}
	slab := make([]byte, cfg.Blocks*BlockSize)
	p.free = make([]*block, cfg.Blocks)
	for i := 0; i < cfg.Blocks; i++ {
		p.free[i] = &block{data: slab[i*BlockSize : (i+1)*BlockSize]}
	}
	for i := 0; i < cfg.WritebackThreads; i++ {
		p.wg.Add(1)
		go p.writebackLoop()
	}
	return p
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		WriteHits:    p.writeHits.Load(),
		WriteMisses:  p.writeMisses.Load(),
		LinesFetched: p.linesFetched.Load(),
		LinesFlushed: p.linesFlushed.Load(),
		Evictions:    p.evictions.Load(),
		Stalls:       p.stalls.Load(),
		Drops:        p.drops.Load(),
	}
}

// FreeBlocks returns the current number of free DRAM blocks.
func (p *Pool) FreeBlocks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Capacity returns the pool size in blocks.
func (p *Pool) Capacity() int { return p.total }

// Config returns the pool configuration after defaulting.
func (p *Pool) Config() Config { return p.cfg }

// DirtyBlocks returns the number of buffered blocks with dirty lines.
func (p *Pool) DirtyBlocks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for b := p.head; b != nil; b = b.next {
		if b.dirtyMap().Any() {
			n++
		}
	}
	return n
}

// Close flushes every dirty block to NVMM and stops the writeback threads
// (the paper flushes all DRAM blocks at unmount).
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.quit)
	p.wg.Wait()
	for {
		p.mu.Lock()
		var victim *block
		for b := p.tail; b != nil; b = b.prev {
			if b.pins.Load() == 0 {
				victim = b
				break
			}
		}
		if victim != nil {
			p.detachLocked(victim)
		}
		empty := p.head == nil
		p.mu.Unlock()
		if victim == nil {
			if empty {
				return
			}
			runtime.Gosched()
			continue
		}
		p.flushBlock(victim)
		p.releaseBlock(victim)
	}
}

// --- LRW list management (callers hold p.mu) ---

func (p *Pool) pushMRW(b *block) {
	b.prev = nil
	b.next = p.head
	if p.head != nil {
		p.head.prev = b
	}
	p.head = b
	if p.tail == nil {
		p.tail = b
	}
}

func (p *Pool) unlinkList(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		p.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		p.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

func (p *Pool) touch(b *block) {
	b.writes.Add(1)
	if p.cfg.Policy == FIFO {
		return // insertion order is preserved
	}
	p.unlinkList(b)
	p.pushMRW(b)
}

// detachLocked removes b from its file index and the LRW list; the caller
// then owns the block exclusively (pins must be zero).
func (p *Pool) detachLocked(b *block) {
	p.unlinkList(b)
	delete(b.fb.blocks, b.idx)
	b.fb = nil
	p.inUse--
}

// releaseBlock resets b and returns it to the free list.
func (p *Pool) releaseBlock(b *block) {
	b.valid.Store(0)
	b.dirty.Store(0)
	b.writes.Store(0)
	b.idx, b.addr = 0, 0
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// notifyTxsLocked tells every transaction gated on b that its data
// persisted. Caller holds b.fmu.
func notifyTxsLocked(b *block) {
	for _, tx := range b.txs {
		tx.BlockPersisted()
	}
	b.txs = nil
}

// flushBlock writes b's dirty lines back to NVMM. With CLFW only dirty
// runs are copied and flushed; without it the whole block is written. The
// caller must hold a pin or have detached the block.
func (p *Pool) flushBlock(b *block) {
	b.fmu.Lock()
	defer b.fmu.Unlock()
	p.flushBlockLocked(b)
}

func (p *Pool) flushBlockLocked(b *block) {
	dirty := b.dirtyMap()
	if !dirty.Any() {
		notifyTxsLocked(b)
		return
	}
	if p.cfg.CLFW {
		runs := dirty.Runs(nil, 0, cacheline.PerBlock-1)
		for _, r := range runs {
			if !r.Set {
				continue
			}
			p.dev.Write(b.data[r.Off:r.Off+r.Len], b.addr+int64(r.Off))
			p.dev.Flush(b.addr+int64(r.Off), r.Len)
			p.linesFlushed.Add(int64(r.Len / cacheline.Size))
		}
	} else {
		p.dev.Write(b.data, b.addr)
		p.dev.Flush(b.addr, BlockSize)
		p.linesFlushed.Add(cacheline.PerBlock)
	}
	p.dev.Fence()
	b.dirty.Store(0)
	notifyTxsLocked(b)
}

// FlushAll writes back every dirty block in the pool (the sync(2) path)
// and returns the number of cachelines flushed. Blocks stay cached clean.
func (p *Pool) FlushAll() int {
	var victims []*block
	p.mu.Lock()
	for b := p.head; b != nil; b = b.next {
		if b.pins.Load() == 0 && b.dirtyMap().Any() {
			b.pins.Add(1)
			victims = append(victims, b)
		}
	}
	p.mu.Unlock()
	flushed := 0
	for _, b := range victims {
		b.fmu.Lock()
		flushed += b.dirtyMap().Count()
		p.flushBlockLocked(b)
		b.fmu.Unlock()
		b.pins.Add(-1)
	}
	return flushed
}

// lowWater and highWater are the reclamation thresholds in blocks.
func (p *Pool) lowWater() int  { return int(float64(p.total) * p.cfg.LowFree) }
func (p *Pool) highWater() int { return int(float64(p.total) * p.cfg.HighFree) }

// writebackLoop is the background flusher (§3.2): it reclaims blocks from
// the LRW position when free space is low, and periodically writes back
// aged dirty blocks.
func (p *Pool) writebackLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case <-p.wake:
			p.reclaim()
			p.flushAged()
		case <-p.clk.After(p.cfg.FlushPeriod):
			p.flushAged()
			if p.needReclaim() {
				p.reclaim()
			}
		}
	}
}

func (p *Pool) needReclaim() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free) < p.lowWater()
}

// reclaim evicts LRW-position blocks until free space exceeds High_f.
func (p *Pool) reclaim() {
	for {
		p.mu.Lock()
		if len(p.free) >= p.highWater() {
			p.mu.Unlock()
			return
		}
		victim := p.victimLocked()
		if victim == nil {
			p.mu.Unlock()
			return
		}
		p.detachLocked(victim)
		p.mu.Unlock()
		p.flushBlock(victim)
		p.evictions.Add(1)
		p.releaseBlock(victim)
	}
}

// victimLocked picks the eviction victim per the configured policy from
// unpinned blocks; nil if none. Caller holds p.mu.
func (p *Pool) victimLocked() *block {
	if p.cfg.Policy == LFW {
		var victim *block
		min := int64(1) << 62
		for b := p.tail; b != nil; b = b.prev {
			if b.pins.Load() != 0 {
				continue
			}
			if w := b.writes.Load(); w < min {
				min, victim = w, b
			}
		}
		return victim
	}
	for b := p.tail; b != nil; b = b.prev {
		if b.pins.Load() == 0 {
			return b
		}
	}
	return nil
}

// flushAged writes back dirty blocks older than MaxDirtyAge without
// evicting them; they stay cached clean.
func (p *Pool) flushAged() {
	cutoff := p.clk.Now().Add(-p.cfg.MaxDirtyAge).UnixNano()
	var victims []*block
	p.mu.Lock()
	for b := p.tail; b != nil; b = b.prev {
		if b.pins.Load() == 0 && b.dirtyMap().Any() && b.lastWrite.Load() < cutoff {
			b.pins.Add(1)
			victims = append(victims, b)
		}
	}
	p.mu.Unlock()
	for _, b := range victims {
		p.flushBlock(b)
		b.pins.Add(-1)
	}
}

// Kick nudges the background writeback threads without blocking.
func (p *Pool) Kick() { p.kickWriteback() }

// kickWriteback nudges the background threads without blocking.
func (p *Pool) kickWriteback() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// allocBlock takes a free block. If the pool is exhausted the caller
// stalls (the paper's foreground stall behaviour): it kicks the writeback
// threads and, as a liveness fallback, evicts one LRW block inline.
func (p *Pool) allocBlock() *block {
	p.mu.Lock()
	for len(p.free) == 0 {
		p.stalls.Add(1)
		p.kickWriteback()
		victim := p.victimLocked()
		if victim != nil {
			p.detachLocked(victim)
			p.mu.Unlock()
			p.flushBlock(victim)
			p.evictions.Add(1)
			p.releaseBlock(victim)
		} else {
			p.mu.Unlock()
			time.Sleep(10 * time.Microsecond)
		}
		p.mu.Lock()
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	if len(p.free) < p.highWater() {
		p.kickWriteback()
	}
	p.inUse++
	p.mu.Unlock()
	return b
}
