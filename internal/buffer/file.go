package buffer

import (
	"runtime"
	"sort"

	"hinfs/internal/cacheline"
	"hinfs/internal/journal"
	"hinfs/internal/obs"
)

// FileBuf is the per-file view of the pool: the DRAM Block Index mapping
// file block indices to buffered DRAM blocks (paper Fig. 5). HiNFS holds
// one FileBuf per inode with buffered data.
//
// The index is split across the pool's shards: blocks[i] holds the file
// blocks whose (FileBuf, index) hash lands on shard i and is guarded by
// that shard's mutex. Same-file write/read exclusion is provided by the
// owning file system's inode lock; FileBuf coordinates with the pool's
// writeback threads via the shard mutexes, per-block pins and the
// per-block flush mutex.
type FileBuf struct {
	pool *Pool
	id   uint64
	// blocks[i] is the shard-i slice of the index; the slice header is
	// immutable after NewFile, each element is created lazily and accessed
	// only under shard i's mutex.
	blocks []map[int64]*block
}

// NewFile returns an empty per-file buffer view.
func (p *Pool) NewFile() *FileBuf {
	return &FileBuf{
		pool:   p,
		id:     p.fileID.Add(1),
		blocks: make([]map[int64]*block, len(p.shards)),
	}
}

// lookupPin finds the buffered block for idx and pins it; the caller must
// unpin. Returns nil if the block is not buffered.
func (fb *FileBuf) lookupPin(idx int64, touch bool) *block {
	sh := fb.pool.shardFor(fb, idx)
	sh.mu.Lock()
	b := fb.blocks[sh.id][idx]
	if b != nil {
		b.pins.Add(1)
		if touch {
			sh.touch(b)
		}
	}
	sh.mu.Unlock()
	return b
}

// Write buffers data at byte offset blkOff within file block idx. addr is
// the NVMM device address of the backing block (used for CLFW fetch and
// later writeback). blockExists reports whether the NVMM block held data
// before this write (false for newly allocated blocks, whose unwritten
// bytes are zero). txs are ordered-mode transactions whose commit must
// wait for this block's persistence; they are registered on the block.
//
// It returns the number of cachelines the write covered (the Buffer
// Benefit Model's N_cw contribution).
func (fb *FileBuf) Write(idx int64, blkOff int, data []byte, addr int64, blockExists bool, txs ...*journal.Tx) int {
	if len(data) == 0 || blkOff+len(data) > BlockSize {
		panic("buffer: bad write range")
	}
	p := fb.pool
	b := fb.lookupPin(idx, true)
	if b == nil {
		sh := p.shardFor(fb, idx)
		nb := p.allocBlock(sh)
		sh.mu.Lock()
		if cur := fb.blocks[sh.id][idx]; cur != nil {
			// Defensive: installed concurrently (should not happen under
			// the inode lock).
			cur.pins.Add(1)
			sh.touch(cur)
			sh.mu.Unlock()
			p.releaseBlock(nb)
			b = cur
		} else {
			nb.pins.Add(1)
			sh.installLocked(nb, fb, idx, addr)
			sh.mu.Unlock()
			b = nb
		}
		p.writeMisses.Add(1)
	} else {
		p.writeHits.Add(1)
	}
	b.fmu.Lock()
	valid := b.validMap()
	mask := cacheline.RangeMask(blkOff, len(data))
	// CLFW fetch: bring in only the cachelines this write partially covers
	// and that are not yet valid (§3.2.1). Without CLFW the whole block is
	// fetched on a miss.
	fetchMask := cacheline.Bitmap(0)
	if p.cfg.CLFW {
		first, last := cacheline.LinesCovering(blkOff, len(data))
		if blkOff%cacheline.Size != 0 && !valid.Test(first) {
			fetchMask.Set(first)
		}
		if (blkOff+len(data))%cacheline.Size != 0 && !valid.Test(last) {
			fetchMask.Set(last)
		}
	} else {
		fetchMask = ^valid
	}
	if fetchMask.Any() {
		runs := fetchMask.Runs(nil, 0, cacheline.PerBlock-1)
		fetched := 0
		for _, r := range runs {
			if !r.Set {
				continue
			}
			if blockExists {
				p.dev.Read(b.data[r.Off:r.Off+r.Len], b.addr+int64(r.Off))
				p.linesFetched.Add(int64(r.Len / cacheline.Size))
				fetched += r.Len
			} else {
				// Backing block is fresh: the missing lines are zero.
				zero(b.data[r.Off : r.Off+r.Len])
			}
		}
		p.cfg.Obs.Copy(obs.CopyWriteFetch, fetched)
	}
	if !p.cfg.CLFW {
		valid = cacheline.Full
	}
	copy(b.data[blkOff:], data)
	p.cfg.Obs.Copy(obs.CopyUserIn, len(data))
	b.valid.Store(uint64(valid | mask))
	b.dirty.Store(uint64(b.dirtyMap() | mask))
	b.lastWrite.Store(p.clk.Now().UnixNano())
	if len(txs) > 0 {
		b.txs = append(b.txs, txs...)
	}
	b.fmu.Unlock()
	b.pins.Add(-1)
	return mask.Count()
}

func zero(s []byte) {
	for i := range s {
		s[i] = 0
	}
}

// ReadMerge copies the byte range [blkOff, blkOff+len(dst)) of file block
// idx into dst, taking each cacheline from DRAM if the buffered block
// holds it valid and from NVMM (at addr) otherwise — the paper's
// read-consistency merge (§3.3.1). One copy is issued per run of
// consecutive same-source cachelines. It reports whether the block was
// buffered; if not it copies nothing and the caller reads NVMM directly.
func (fb *FileBuf) ReadMerge(idx int64, blkOff int, dst []byte, addr int64) bool {
	if len(dst) == 0 {
		return false
	}
	b := fb.lookupPin(idx, false)
	if b == nil {
		return false
	}
	defer b.pins.Add(-1)
	fb.pool.cfg.Obs.Copy(obs.CopyReadOut, len(dst))
	first, last := cacheline.LinesCovering(blkOff, len(dst))
	runs := b.validMap().Runs(nil, first, last)
	for _, r := range runs {
		lo, hi := r.Off, r.Off+r.Len
		if lo < blkOff {
			lo = blkOff
		}
		if hi > blkOff+len(dst) {
			hi = blkOff + len(dst)
		}
		if lo >= hi {
			continue
		}
		if r.Set {
			copy(dst[lo-blkOff:hi-blkOff], b.data[lo:hi])
		} else if addr == 0 {
			// The block is a hole on NVMM; unbuffered lines read zero.
			zero(dst[lo-blkOff : hi-blkOff])
		} else {
			fb.pool.dev.Read(dst[lo-blkOff:hi-blkOff], addr+int64(lo))
		}
	}
	return true
}

// DropBlock discards block idx without writeback (truncate: the NVMM
// block is about to be freed, so its buffered data must never be flushed).
// Gated transactions are released.
func (fb *FileBuf) DropBlock(idx int64) {
	p := fb.pool
	sh := p.shardFor(fb, idx)
	for {
		sh.mu.Lock()
		b := fb.blocks[sh.id][idx]
		if b == nil {
			sh.mu.Unlock()
			return
		}
		if b.pins.Load() != 0 {
			sh.mu.Unlock()
			runtime.Gosched()
			continue
		}
		sh.detachLocked(b)
		sh.mu.Unlock()
		b.fmu.Lock()
		if b.dirtyMap().Any() {
			p.drops.Add(1)
		}
		b.dirty.Store(0)
		notifyTxsLocked(b)
		b.fmu.Unlock()
		p.releaseBlock(b)
		return
	}
}

// Buffered reports whether file block idx is in the DRAM buffer.
func (fb *FileBuf) Buffered(idx int64) bool {
	sh := fb.pool.shardFor(fb, idx)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return fb.blocks[sh.id][idx] != nil
}

// DirtyLines returns the number of dirty cachelines buffered for block
// idx (0 if not buffered).
func (fb *FileBuf) DirtyLines(idx int64) int {
	sh := fb.pool.shardFor(fb, idx)
	sh.mu.Lock()
	b := fb.blocks[sh.id][idx]
	sh.mu.Unlock()
	if b == nil {
		return 0
	}
	return b.dirtyMap().Count()
}

// Flush writes back every dirty block of the file (the fsync path) and
// returns the number of cachelines flushed — the Buffer Benefit Model's
// N_cf as performed by the synchronization process itself. Blocks stay
// cached clean. Shards are visited in index order, one at a time. If a
// block's writeback episode exhausts its retries the remaining blocks are
// still flushed and the first error is returned; failed blocks keep their
// dirty lines (fsync must not report durability it does not have).
func (fb *FileBuf) Flush() (int, error) {
	p := fb.pool
	flushed := 0
	var firstErr error
	var victims []*block
	for _, sh := range p.shards {
		victims = victims[:0]
		sh.mu.Lock()
		for _, b := range fb.blocks[sh.id] {
			if b.dirtyMap().Any() {
				b.pins.Add(1)
				victims = append(victims, b)
			}
		}
		sh.mu.Unlock()
		// Flush in file-block order, not map order: the device-write
		// schedule (and with it the persist-event stream crash exploration
		// replays) must be identical across runs.
		sort.Slice(victims, func(i, j int) bool { return victims[i].idx < victims[j].idx })
		for _, b := range victims {
			b.fmu.Lock()
			n := b.dirtyMap().Count()
			err := p.flushBlockRetryLocked(b, obs.CopySyncFlush)
			b.fmu.Unlock()
			b.pins.Add(-1)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			flushed += n
		}
	}
	return flushed, firstErr
}

// EvictBlock flushes block idx if dirty and removes it from the buffer
// (the paper's case-1 eager-persistent consistency path: write to the
// DRAM block, then explicitly evict it before returning). On a writeback
// error the block stays buffered with its dirty data and the error is
// returned — the eager durability contract was not met.
func (fb *FileBuf) EvictBlock(idx int64) error {
	p := fb.pool
	sh := p.shardFor(fb, idx)
	for {
		sh.mu.Lock()
		b := fb.blocks[sh.id][idx]
		if b == nil {
			sh.mu.Unlock()
			return nil
		}
		if b.pins.Load() != 0 {
			sh.mu.Unlock()
			runtime.Gosched()
			continue
		}
		b.pins.Add(1)
		sh.mu.Unlock()
		err := p.flushBlock(b, obs.CopyInlineEvict)
		sh.mu.Lock()
		ok := err == nil && b.fb != nil && b.pins.Load() == 1 && !b.dirtyMap().Any()
		if ok {
			sh.detachLocked(b)
		}
		sh.mu.Unlock()
		b.pins.Add(-1)
		if err != nil {
			return err
		}
		if ok {
			p.releaseBlock(b)
			return nil
		}
	}
}

// Invalidate drops the valid/dirty state of every cacheline overlapping
// [blkOff, blkOff+n) of block idx, flushing first if any covered line is
// dirty. HiNFS calls it when an eager-persistent write goes directly to
// NVMM so stale DRAM lines cannot shadow the new data. If the flush fails
// the lines stay valid and dirty and the error is returned — invalidating
// unflushed dirty data would lose writes.
func (fb *FileBuf) Invalidate(idx int64, blkOff, n int) error {
	b := fb.lookupPin(idx, false)
	if b == nil {
		return nil
	}
	mask := cacheline.RangeMask(blkOff, n)
	b.fmu.Lock()
	if (b.dirtyMap() & mask).Any() {
		if err := fb.pool.flushBlockRetryLocked(b, obs.CopyInlineEvict); err != nil {
			b.fmu.Unlock()
			b.pins.Add(-1)
			return err
		}
	}
	b.valid.Store(uint64(b.validMap() &^ mask))
	b.dirty.Store(uint64(b.dirtyMap() &^ mask))
	b.fmu.Unlock()
	b.pins.Add(-1)
	if !b.validMap().Any() {
		fb.dropIfEmpty(idx)
	}
	return nil
}

// dropIfEmpty releases block idx if it holds no valid lines.
func (fb *FileBuf) dropIfEmpty(idx int64) {
	p := fb.pool
	sh := p.shardFor(fb, idx)
	sh.mu.Lock()
	b := fb.blocks[sh.id][idx]
	if b == nil || b.pins.Load() != 0 || b.validMap().Any() {
		sh.mu.Unlock()
		return
	}
	sh.detachLocked(b)
	sh.mu.Unlock()
	// No valid lines means no dirty lines: this only releases any gated
	// transactions and cannot fail.
	_ = p.flushBlock(b, obs.CopySyncFlush)
	p.releaseBlock(b)
}

// Drop discards every buffered block of the file without writing it back:
// the file was deleted, so its dirty data never needs to reach NVMM (§1's
// "writes to files that are later deleted do not need to be performed").
// Ordered-mode transactions gated on dropped blocks are released.
func (fb *FileBuf) Drop() {
	p := fb.pool
	for _, sh := range p.shards {
		for {
			var victim *block
			sh.mu.Lock()
			// Lowest block index first, for a deterministic release order of
			// any gated transactions (see Flush).
			for _, b := range fb.blocks[sh.id] {
				if b.pins.Load() == 0 && (victim == nil || b.idx < victim.idx) {
					victim = b
				}
			}
			if victim != nil {
				sh.detachLocked(victim)
			}
			done := len(fb.blocks[sh.id]) == 0
			sh.mu.Unlock()
			if victim != nil {
				victim.fmu.Lock()
				if victim.dirtyMap().Any() {
					p.drops.Add(1)
				}
				victim.dirty.Store(0)
				notifyTxsLocked(victim)
				victim.fmu.Unlock()
				p.releaseBlock(victim)
			}
			if done {
				break
			}
			if victim == nil {
				runtime.Gosched()
			}
		}
	}
}

// BlockIndices returns the sorted file block indices currently buffered
// (diagnostics and tests).
func (fb *FileBuf) BlockIndices() []int64 {
	p := fb.pool
	var out []int64
	for _, sh := range p.shards {
		sh.mu.Lock()
		for idx := range fb.blocks[sh.id] {
			out = append(out, idx)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
