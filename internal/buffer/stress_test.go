package buffer

import (
	"bytes"
	"sync"
	"testing"

	"hinfs/internal/cacheline"
	"hinfs/internal/clock"
	"hinfs/internal/nvmm"
	"hinfs/internal/workload"
)

// TestShardedPoolConcurrentStress drives parallel Write / ReadMerge /
// Flush / DropBlock / EvictBlock / FlushAll across several files and
// goroutines over a small sharded pool, so eviction, stealing and the
// background writeback threads all run under contention. It is meant to
// run under -race (CI does); the assertions are the pool invariants that
// survive any interleaving.
//
// Locking mirrors the production caller (internal/core): each file has an
// inode RWMutex — writers and block droppers take it exclusively, readers
// share it. FlushAll, like sync(2), takes no inode locks at all.
func TestShardedPoolConcurrentStress(t *testing.T) {
	dev, err := nvmm.New(nvmm.Config{Size: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(dev, clock.Real{}, Config{Blocks: 48, Shards: 4, CLFW: true})
	defer p.Close()

	const (
		nFiles     = 6
		nBlocks    = 16 // per file: 96 blocks contending for 48 slots
		goroutines = 8
		opsPerG    = 1500
	)
	type file struct {
		mu sync.RWMutex
		fb *FileBuf
	}
	files := make([]*file, nFiles)
	for i := range files {
		files[i] = &file{fb: p.NewFile()}
	}
	addr := func(f int, blk int64) int64 {
		return int64(1<<20) + (int64(f)*nBlocks+blk)*BlockSize
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := workload.NewRand(seed)
			buf := make([]byte, BlockSize)
			for op := 0; op < opsPerG; op++ {
				fi := rng.Intn(nFiles)
				f := files[fi]
				blk := int64(rng.Intn(nBlocks))
				switch rng.Intn(10) {
				case 0: // fsync path
					f.mu.Lock()
					f.fb.Flush()
					f.mu.Unlock()
				case 1: // truncate path
					f.mu.Lock()
					f.fb.DropBlock(blk)
					f.mu.Unlock()
				case 2: // eager-persistent case-1 path
					f.mu.Lock()
					f.fb.EvictBlock(blk)
					f.mu.Unlock()
				case 3: // sync(2): no inode locks
					p.FlushAll()
				case 4, 5, 6: // read
					f.mu.RLock()
					n := cacheline.Size * (1 + rng.Intn(4))
					f.fb.ReadMerge(blk, 0, buf[:n], addr(fi, blk))
					f.mu.RUnlock()
				default: // buffered write
					f.mu.Lock()
					off := cacheline.Size * rng.Intn(cacheline.PerBlock)
					n := 1 + rng.Intn(BlockSize-off)
					f.fb.Write(blk, off, buf[:n], addr(fi, blk), true)
					f.mu.Unlock()
				}
			}
		}(uint64(g) + 1)
	}
	wg.Wait()

	if p.FlushAll(); p.DirtyBlocks() != 0 {
		t.Fatalf("dirty blocks after quiescent FlushAll: %d", p.DirtyBlocks())
	}
	st := p.Stats()
	inUse, free := 0, 0
	for _, s := range st.Shards {
		inUse += s.InUse
		free += s.Free
	}
	if inUse+free != p.Capacity() {
		t.Fatalf("block leak: inUse=%d free=%d capacity=%d", inUse, free, p.Capacity())
	}
	// Dropping every file must return all blocks to the free lists.
	for _, f := range files {
		f.fb.Drop()
	}
	if p.FreeBlocks() != p.Capacity() {
		t.Fatalf("free=%d after dropping all files, want %d", p.FreeBlocks(), p.Capacity())
	}
}

// TestShardedPropertyCrossShard reruns the multi-block shadow property on
// an explicitly sharded pool with eviction churn, so merges, evictions and
// cross-shard stealing are all exercised against a byte-exact oracle.
func TestShardedPropertyCrossShard(t *testing.T) {
	dev, err := nvmm.New(nvmm.Config{Size: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(dev, clock.Real{}, Config{Blocks: 6, Shards: 3, CLFW: true})
	defer p.Close()
	fb := p.NewFile()
	rng := workload.NewRand(1234)

	const nBlocks = 12
	base := int64(1 << 20)
	shadows := make([][]byte, nBlocks)
	exists := make([]bool, nBlocks)
	for i := range shadows {
		shadows[i] = make([]byte, BlockSize)
	}
	data := make([]byte, BlockSize)
	for op := 0; op < 800; op++ {
		blk := rng.Intn(nBlocks)
		addr := base + int64(blk)*BlockSize
		off := rng.Intn(BlockSize)
		n := 1 + rng.Intn(BlockSize-off)
		for i := 0; i < n; i++ {
			data[i] = byte(rng.Uint64())
		}
		fb.Write(int64(blk), off, data[:n], addr, exists[blk])
		copy(shadows[blk][off:], data[:n])
		exists[blk] = true

		probe := rng.Intn(nBlocks)
		if !exists[probe] {
			continue
		}
		got := make([]byte, BlockSize)
		if !fb.ReadMerge(int64(probe), 0, got, base+int64(probe)*BlockSize) {
			dev.Read(got, base+int64(probe)*BlockSize)
		}
		if !bytes.Equal(got, shadows[probe]) {
			t.Fatalf("op %d: block %d diverged from shadow", op, probe)
		}
	}
}
