package buffer

import (
	"bytes"
	"testing"
	"time"

	"hinfs/internal/cacheline"
	"hinfs/internal/clock"
	"hinfs/internal/nvmm"
)

func testPool(t testing.TB, blocks int, clfw bool) (*Pool, *nvmm.Device) {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(dev, clock.Real{}, Config{Blocks: blocks, CLFW: clfw})
	t.Cleanup(p.Close)
	return p, dev
}

// policyPool builds a pool whose eviction order is fully deterministic:
// one shard (a single LRW list) and no background writeback threads, so
// every eviction happens inline in the foreground allocation path.
func policyPool(t testing.TB, blocks int, pol Policy) *Pool {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(dev, clock.Real{}, Config{
		Blocks: blocks, Shards: 1, WritebackThreads: -1, CLFW: true, Policy: pol})
	t.Cleanup(p.Close)
	return p
}

func TestWriteThenReadMerge(t *testing.T) {
	p, _ := testPool(t, 8, true)
	fb := p.NewFile()
	const addr = 1 << 20
	data := []byte("hello buffer")
	fb.Write(0, 0, data, addr, false)
	got := make([]byte, len(data))
	if !fb.ReadMerge(0, 0, got, addr) {
		t.Fatal("block not buffered")
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestCLFWFetchesOnlyPartialLines(t *testing.T) {
	p, dev := testPool(t, 8, true)
	// Pre-populate NVMM block.
	const addr = 1 << 20
	nv := bytes.Repeat([]byte{0xBB}, BlockSize)
	dev.Write(nv, addr)
	fb := p.NewFile()
	// Write 0..112: line 0 fully covered (no fetch), line 1 partially
	// covered (fetch). This is the paper's §3.2.1 example.
	fb.Write(0, 0, make([]byte, 112), addr, true)
	if got := p.Stats().LinesFetched; got != 1 {
		t.Fatalf("fetched %d lines, want 1", got)
	}
	// The merged read of line 1 must combine the write and the fetched
	// NVMM bytes.
	got := make([]byte, 128)
	fb.ReadMerge(0, 0, got, addr)
	for i := 0; i < 112; i++ {
		if got[i] != 0 {
			t.Fatalf("written byte %d = %#x", i, got[i])
		}
	}
	for i := 112; i < 128; i++ {
		if got[i] != 0xBB {
			t.Fatalf("fetched byte %d = %#x, want 0xBB", i, got[i])
		}
	}
}

func TestNCLFWFetchesWholeBlock(t *testing.T) {
	p, dev := testPool(t, 8, false)
	const addr = 1 << 20
	dev.Write(bytes.Repeat([]byte{0xCC}, BlockSize), addr)
	fb := p.NewFile()
	fb.Write(0, 0, []byte("x"), addr, true)
	if got := p.Stats().LinesFetched; got != cacheline.PerBlock-1 && got != cacheline.PerBlock {
		t.Fatalf("fetched %d lines, want whole block", got)
	}
}

func TestReadMergeUnbufferedLinesFromNVMM(t *testing.T) {
	p, dev := testPool(t, 8, true)
	const addr = 2 << 20
	dev.Write(bytes.Repeat([]byte{0x55}, BlockSize), addr)
	fb := p.NewFile()
	// Buffer only lines 4..7 (aligned write).
	patch := bytes.Repeat([]byte{0x66}, 4*cacheline.Size)
	fb.Write(0, 4*cacheline.Size, patch, addr, true)
	got := make([]byte, BlockSize)
	fb.ReadMerge(0, 0, got, addr)
	for i := 0; i < BlockSize; i++ {
		want := byte(0x55)
		if i >= 4*cacheline.Size && i < 8*cacheline.Size {
			want = 0x66
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestFlushWritesOnlyDirtyRuns(t *testing.T) {
	p, dev := testPool(t, 8, true)
	fb := p.NewFile()
	const addr = 1 << 20
	// Two aligned single-line writes far apart.
	fb.Write(0, 0, make([]byte, cacheline.Size), addr, false)
	fb.Write(0, 32*cacheline.Size, make([]byte, cacheline.Size), addr, false)
	dev.ResetStats()
	n, _ := fb.Flush()
	if n != 2 {
		t.Fatalf("flushed %d lines, want 2", n)
	}
	if got := dev.Stats().BytesFlushed; got != 2*cacheline.Size {
		t.Fatalf("device flushed %d bytes, want %d", got, 2*cacheline.Size)
	}
	// Second flush is a no-op.
	if n, _ := fb.Flush(); n != 0 {
		t.Fatalf("re-flush wrote %d lines", n)
	}
}

func TestEvictionWritesBackAndFrees(t *testing.T) {
	p, dev := testPool(t, 4, true)
	fb := p.NewFile()
	// Overcommit the pool: 16 distinct blocks through 4 slots.
	for i := int64(0); i < 16; i++ {
		fb.Write(i, 0, bytes.Repeat([]byte{byte(i + 1)}, BlockSize), (1<<20)+i*BlockSize, false)
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("no evictions")
	}
	// Every block's data must be readable: buffered or already on NVMM.
	for i := int64(0); i < 16; i++ {
		got := make([]byte, BlockSize)
		addr := int64(1<<20) + i*BlockSize
		if !fb.ReadMerge(i, 0, got, addr) {
			dev.Read(got, addr)
		}
		if got[0] != byte(i+1) || got[BlockSize-1] != byte(i+1) {
			t.Fatalf("block %d lost: %#x", i, got[0])
		}
	}
}

func TestDropDiscardsDirtyData(t *testing.T) {
	p, dev := testPool(t, 8, true)
	fb := p.NewFile()
	fb.Write(0, 0, bytes.Repeat([]byte{0xAD}, BlockSize), 1<<20, false)
	dev.ResetStats()
	fb.Drop()
	if got := dev.Stats().BytesFlushed; got != 0 {
		t.Fatalf("drop flushed %d bytes", got)
	}
	if p.Stats().Drops != 1 {
		t.Fatalf("drops = %d", p.Stats().Drops)
	}
	if p.FreeBlocks() != 8 {
		t.Fatalf("free = %d, want 8", p.FreeBlocks())
	}
}

func TestInvalidateFlushesDirtyBeforeDropping(t *testing.T) {
	p, dev := testPool(t, 8, true)
	fb := p.NewFile()
	const addr = 1 << 20
	fb.Write(0, 0, bytes.Repeat([]byte{0x77}, 2*cacheline.Size), addr, false)
	fb.Invalidate(0, 0, cacheline.Size)
	// The dirty covered line was flushed to NVMM before invalidation.
	got := make([]byte, cacheline.Size)
	dev.Read(got, addr)
	if got[0] != 0x77 {
		t.Fatal("invalidate lost dirty data")
	}
	// Line 0 now reads from NVMM (invalid in DRAM); line 1 still DRAM.
	buf := make([]byte, 2*cacheline.Size)
	if !fb.ReadMerge(0, 0, buf, addr) {
		t.Fatal("block gone entirely")
	}
	if buf[0] != 0x77 || buf[cacheline.Size] != 0x77 {
		t.Fatal("merge after invalidate broken")
	}
}

func TestLRWOrderEvictsOldestWritten(t *testing.T) {
	p := policyPool(t, 4, LRW)
	fb := p.NewFile()
	base := int64(1 << 20)
	for i := int64(0); i < 4; i++ {
		fb.Write(i, 0, []byte{1}, base+i*BlockSize, false)
	}
	// Rewrite block 0 → it becomes MRW; block 1 is now LRW.
	fb.Write(0, 64, []byte{2}, base, false)
	// Force one eviction.
	fb.Write(4, 0, []byte{3}, base+4*BlockSize, false)
	if fb.Buffered(1) {
		// Block 1 should have been the LRW victim.
		t.Fatal("LRW policy evicted the wrong block")
	}
	if !fb.Buffered(0) {
		t.Fatal("recently rewritten block was evicted")
	}
}

func TestWriteStallsWaitForReclaim(t *testing.T) {
	p, _ := testPool(t, 2, true)
	fb := p.NewFile()
	for i := int64(0); i < 50; i++ {
		fb.Write(i, 0, []byte{byte(i)}, (1<<20)+i*BlockSize, false)
	}
	if p.Stats().Stalls == 0 {
		t.Skip("no stall observed (writeback kept up); nothing to assert")
	}
}

func TestFlushAll(t *testing.T) {
	p, _ := testPool(t, 16, true)
	fa := p.NewFile()
	fbb := p.NewFile()
	fa.Write(0, 0, []byte{1}, 1<<20, false)
	fbb.Write(0, 0, []byte{2}, 2<<20, false)
	if n, _ := p.FlushAll(); n != 2 {
		t.Fatalf("FlushAll flushed %d lines, want 2", n)
	}
	if p.DirtyBlocks() != 0 {
		t.Fatal("dirty blocks remain")
	}
}

func TestAgedFlushWithFakeClock(t *testing.T) {
	fk := clock.NewFake(time.Unix(0, 0))
	dev, _ := nvmm.New(nvmm.Config{Size: 16 << 20})
	p := NewPool(dev, fk, Config{Blocks: 8, CLFW: true,
		FlushPeriod: 5 * time.Second, MaxDirtyAge: 30 * time.Second})
	defer p.Close()
	fb := p.NewFile()
	fb.Write(0, 0, []byte{9}, 1<<20, false)
	// Before the age threshold, periodic wakeups must not flush.
	fk.Advance(10 * time.Second)
	time.Sleep(20 * time.Millisecond)
	if p.DirtyBlocks() != 1 {
		t.Fatal("young block flushed early")
	}
	for i := 0; i < 10; i++ {
		fk.Advance(5 * time.Second)
		time.Sleep(5 * time.Millisecond)
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.DirtyBlocks() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("aged block never flushed")
		}
		fk.Advance(5 * time.Second)
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBlockIndices(t *testing.T) {
	p, _ := testPool(t, 8, true)
	fb := p.NewFile()
	for _, i := range []int64{5, 1, 3} {
		fb.Write(i, 0, []byte{1}, (1<<20)+i*BlockSize, false)
	}
	got := fb.BlockIndices()
	want := []int64{1, 3, 5}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("indices %v", got)
	}
}

func TestDirtyLines(t *testing.T) {
	p, _ := testPool(t, 8, true)
	fb := p.NewFile()
	fb.Write(0, 0, make([]byte, 3*cacheline.Size), 1<<20, false)
	if got := fb.DirtyLines(0); got != 3 {
		t.Fatalf("dirty lines = %d, want 3", got)
	}
	if got := fb.DirtyLines(9); got != 0 {
		t.Fatalf("missing block dirty lines = %d", got)
	}
}

func TestFIFOPolicyIgnoresRewrites(t *testing.T) {
	p := policyPool(t, 4, FIFO)
	fb := p.NewFile()
	base := int64(1 << 20)
	for i := int64(0); i < 4; i++ {
		fb.Write(i, 0, []byte{1}, base+i*BlockSize, false)
	}
	// Rewrite block 0; under FIFO it must NOT be refreshed, so it is
	// still the first victim.
	fb.Write(0, 64, []byte{2}, base, false)
	fb.Write(4, 0, []byte{3}, base+4*BlockSize, false)
	if fb.Buffered(0) {
		t.Fatal("FIFO kept the rewritten block")
	}
	if !fb.Buffered(1) {
		t.Fatal("FIFO evicted the wrong block")
	}
}

func TestLFWPolicyKeepsHotBlocks(t *testing.T) {
	p := policyPool(t, 4, LFW)
	fb := p.NewFile()
	base := int64(1 << 20)
	for i := int64(0); i < 4; i++ {
		fb.Write(i, 0, []byte{1}, base+i*BlockSize, false)
	}
	// Make blocks 1..3 hot; block 0 stays cold (1 write).
	for r := 0; r < 5; r++ {
		for i := int64(1); i < 4; i++ {
			fb.Write(i, 64, []byte{2}, base+i*BlockSize, false)
		}
	}
	fb.Write(4, 0, []byte{3}, base+4*BlockSize, false)
	if fb.Buffered(0) {
		t.Fatal("LFW kept the cold block")
	}
	for i := int64(1); i < 4; i++ {
		if !fb.Buffered(i) {
			t.Fatalf("LFW evicted hot block %d", i)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if LRW.String() != "lrw" || FIFO.String() != "fifo" || LFW.String() != "lfw" {
		t.Fatal("policy names")
	}
}
