package harness

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/obs"
	"hinfs/internal/server"
	"hinfs/internal/vfs"
)

// FigureTenants measures the multi-tenant front-end: an in-process server
// over a real TCP loopback listener, two tenants with a 4:1 fair-share
// weight ratio and equal client counts, each client issuing 16 KiB reads
// and writes with an fsync every fourth op against its own file for a
// fixed wall-clock window. The fsyncs force foreground flushes to
// emulated NVMM, so the scheduler's workers — not the network — are the
// contended resource. Reported per tenant: completed ops, throughput and
// its share, the share of measured worker time (svc-share — the quantity
// the weights divide; under contention it should track the 4:1 ratio),
// client-observed latency percentiles (p50/p99/p999), quota rejections,
// and namespace escape attempts that succeeded (must be zero).
func FigureTenants(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	clients := 32
	window := 1500 * time.Millisecond
	if o.Quick {
		clients = 8
		window = 500 * time.Millisecond
	}
	if o.Threads > 0 {
		clients = o.Threads
	}

	inst, err := NewInstance(HiNFS, cfg)
	if err != nil {
		return nil, err
	}
	defer inst.Close()

	tenants := []struct {
		name   string
		weight int
	}{
		{"gold", 4},
		{"bronze", 1},
	}
	srvTenants := make(map[string]server.TenantConfig)
	for _, tn := range tenants {
		srvTenants[tn.name] = server.TenantConfig{Root: "/tenants/" + tn.name, Weight: tn.weight}
	}
	// Two scheduler workers: fewer service slots than clients, so the
	// fair scheduler — not goroutine scheduling — resolves contention.
	srv, err := server.New(server.Config{FS: inst.FS, Tenants: srvTenants, Workers: 2})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	type tenantRun struct {
		ops        atomic.Int64
		violations atomic.Int64
		errs       atomic.Int64
		lat        obs.Hist
	}
	runs := make(map[string]*tenantRun, len(tenants))
	for _, tn := range tenants {
		runs[tn.name] = &tenantRun{}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ti, tn := range tenants {
		other := tenants[1-ti].name
		run := runs[tn.name]
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(tenant string, i int) {
				defer wg.Done()
				c, err := server.Dial(addr, tenant)
				if err != nil {
					run.errs.Add(1)
					return
				}
				defer c.Unmount()
				f, err := c.Create(fmt.Sprintf("/u%d", i))
				if err != nil {
					run.errs.Add(1)
					return
				}
				defer f.Close()
				buf := make([]byte, 16<<10)
				for j := 0; ; j++ {
					select {
					case <-stop:
						return
					default:
					}
					start := time.Now()
					var err error
					switch {
					case j%4 == 3:
						// Periodic durability point: flushes the dirty
						// DRAM-buffered blocks to NVMM at emulated media
						// latency, in the issuing request's service slot.
						err = f.Fsync()
					case j%2 == 0:
						_, err = f.WriteAt(buf, int64(j%32)*(16<<10))
					default:
						// Read back the slot the previous step wrote; io.EOF
						// stays contractual on the first lap of a fresh file.
						if _, err = f.ReadAt(buf, int64((j-1)%32)*(16<<10)); err == io.EOF {
							err = nil
						}
					}
					if err != nil && err != vfs.ErrUnmounted {
						run.errs.Add(1)
						return
					}
					run.lat.ObserveSince(start)
					run.ops.Add(1)
					if j%64 == 63 {
						// Periodic escape probe against the sibling tenant.
						if _, err := c.Stat("/../" + other + "/u0"); err != vfs.ErrInvalid {
							run.violations.Add(1)
						}
					}
				}
			}(tn.name, i)
		}
	}
	startAll := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(startAll)

	fig := &Figure{Table: Table{
		Title: "Multi-tenant fairness: weighted service shares over a loopback server",
		Note: fmt.Sprintf("HiNFS backend, %d clients/tenant, 16KiB R/W + fsync every 4 ops, %v window, 2 scheduler workers; svc-share should track the 4:1 weights",
			clients, window),
		Header: []string{"tenant", "weight", "ops", "ops/s", "share", "svc-share", "p50(us)", "p99(us)", "p999(us)", "quota-rej", "escapes"},
	}}
	var total int64
	for _, tn := range tenants {
		total += runs[tn.name].ops.Load()
	}
	stats := srv.Stats()
	var totalSvc int64
	for _, ts := range stats {
		totalSvc += ts.ServiceNS
	}
	for _, tn := range tenants {
		run := runs[tn.name]
		if run.errs.Load() > 0 {
			return nil, fmt.Errorf("tenants: %d client errors for %s", run.errs.Load(), tn.name)
		}
		ops := run.ops.Load()
		snap := run.lat.Snapshot()
		p50, _, p99, p999 := snap.Percentiles()
		share := 0.0
		if total > 0 {
			share = float64(ops) / float64(total)
		}
		var rejects, svcNS int64
		for _, ts := range stats {
			if ts.Name == tn.name {
				rejects, svcNS = ts.QuotaRejects, ts.ServiceNS
			}
		}
		svcShare := 0.0
		if totalSvc > 0 {
			svcShare = float64(svcNS) / float64(totalSvc)
		}
		opsps := float64(ops) / elapsed.Seconds()
		fig.Table.Rows = append(fig.Table.Rows, []string{
			tn.name, fmt.Sprint(tn.weight), fmt.Sprint(ops),
			fmt.Sprintf("%.0f", opsps), fmt.Sprintf("%.1f%%", 100*share),
			fmt.Sprintf("%.1f%%", 100*svcShare),
			fmt.Sprintf("%.1f", float64(p50)/1e3),
			fmt.Sprintf("%.1f", float64(p99)/1e3),
			fmt.Sprintf("%.1f", float64(p999)/1e3),
			fmt.Sprint(rejects), fmt.Sprint(run.violations.Load()),
		})
		fig.put(tn.name+"/ops", float64(ops))
		fig.put(tn.name+"/opsps", opsps)
		fig.put(tn.name+"/share", share)
		fig.put(tn.name+"/svcshare", svcShare)
		fig.put(tn.name+"/p50us", float64(p50)/1e3)
		fig.put(tn.name+"/p99us", float64(p99)/1e3)
		fig.put(tn.name+"/p999us", float64(p999)/1e3)
		fig.put(tn.name+"/violations", float64(run.violations.Load()))
	}

	// Secondary table: where each tenant's measured latency went. The
	// attributed stages (queue+quota+lock+stall+flush) should sum to the
	// measured admission-to-completion time; the residual inside the
	// service stage is unattributed compute (memcpy, framing, handle
	// lookups) and is reported as its own column so it cannot hide.
	att := Table{
		Title:  "Per-tenant stage attribution of measured latency",
		Note:   "attributed = queue+quota+lock+stall+flush; measured = scheduler admission to completion; attributed/measured should be ~1",
		Header: []string{"tenant", "measured(ms)", "queue", "quota", "lock", "stall", "flush", "other", "attributed"},
	}
	for _, tn := range tenants {
		var ts server.TenantStats
		for i := range stats {
			if stats[i].Name == tn.name {
				ts = stats[i]
			}
		}
		measured := ts.MeasuredNS()
		stagePct := func(name string) string {
			return fmt.Sprintf("%.1f%%", 100*fracNS(ts.StageNS[name], measured))
		}
		var attributed int64
		for _, st := range []string{"queue", "quota", "lock", "stall", "flush"} {
			attributed += ts.StageNS[st]
			fig.put(tn.name+"/stage/"+st, float64(ts.StageNS[st]))
		}
		other := ts.StageNS["service"] - (attributed - ts.StageNS["queue"])
		if other < 0 {
			other = 0
		}
		ratio := fracNS(attributed, measured)
		att.Rows = append(att.Rows, []string{
			tn.name,
			fmt.Sprintf("%.1f", float64(measured)/1e6),
			stagePct("queue"), stagePct("quota"), stagePct("lock"),
			stagePct("stall"), stagePct("flush"),
			fmt.Sprintf("%.1f%%", 100*fracNS(other, measured)),
			fmt.Sprintf("%.1f%%", 100*ratio),
		})
		fig.put(tn.name+"/measuredns", float64(measured))
		fig.put(tn.name+"/attribution", ratio)
	}
	fig.Extra = append(fig.Extra, att)
	return fig, nil
}

// fracNS is part/whole for int64 nanosecond sums, 0 when whole is 0.
func fracNS(part, whole int64) float64 {
	if whole <= 0 {
		return 0
	}
	return float64(part) / float64(whole)
}
