package harness

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"hinfs/internal/buffer"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
	"hinfs/internal/workload"
)

// RunResult reports one workload execution on one system.
type RunResult struct {
	workload.Result
	// Elapsed is the wall time of the run phase (setup excluded).
	Elapsed time.Duration
	// Dev is the device counter delta over the run phase.
	Dev nvmm.Stats
	// OpsPerSec is the Filebench-style throughput metric.
	OpsPerSec float64
	// Pool snapshots the DRAM write-buffer counters after the run for
	// HiNFS-family systems (nil otherwise): shard occupancy, stall time
	// and writeback batch sizes for scaling analysis.
	Pool *buffer.Stats
	// Obs snapshots the instance's observability collector over the run
	// phase (nil unless Config.Observe): per-op-class and per-path
	// latency histograms plus routing counters.
	Obs *obs.Snapshot
}

// RunWorkload mounts a fresh instance of sys, runs w's setup phase, then
// executes threads×ops operations and reports the run-phase metrics.
func RunWorkload(sys System, cfg Config, w workload.Workload, threads, ops int) (RunResult, error) {
	inst, err := NewInstance(sys, cfg)
	if err != nil {
		return RunResult{}, err
	}
	defer inst.Close()
	return RunOn(inst, w, threads, ops)
}

// RunOn runs w on an already mounted instance.
func RunOn(inst *Instance, w workload.Workload, threads, ops int) (RunResult, error) {
	if err := w.Setup(inst.FS); err != nil {
		return RunResult{}, fmt.Errorf("%s setup on %s: %w", w.Name(), inst.System, err)
	}
	// Start cold, as the paper does: flush all dirty state and clear the
	// OS page cache before the measured phase.
	if err := inst.FS.Sync(); err != nil {
		return RunResult{}, err
	}
	if inst.Ext != nil {
		inst.Ext.DropCaches()
	}
	// Setup traffic is not part of the measured phase.
	inst.Obs.Reset()
	before := inst.Dev.Stats()
	start := time.Now()
	res, err := w.Run(inst.FS, threads, ops)
	elapsed := time.Since(start)
	if err != nil {
		return RunResult{}, fmt.Errorf("%s run on %s: %w", w.Name(), inst.System, err)
	}
	after := inst.Dev.Stats()
	out := RunResult{
		Result:  res,
		Elapsed: elapsed,
		Dev: nvmm.Stats{
			BytesRead:    after.BytesRead - before.BytesRead,
			BytesWritten: after.BytesWritten - before.BytesWritten,
			BytesFlushed: after.BytesFlushed - before.BytesFlushed,
			Flushes:      after.Flushes - before.Flushes,
			Fences:       after.Fences - before.Fences,
			FencesElided: after.FencesElided - before.FencesElided,
			ReadTime:     after.ReadTime - before.ReadTime,
			WriteTime:    after.WriteTime - before.WriteTime,
		},
	}
	if elapsed > 0 {
		out.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	if inst.HiNFS != nil {
		ps := inst.HiNFS.Pool().Stats()
		out.Pool = &ps
	}
	if inst.Obs != nil {
		out.Obs = inst.Obs.Snapshot()
	}
	return out, nil
}

// Table is a printable figure reproduction.
type Table struct {
	// Title names the paper artifact ("Figure 7: ...").
	Title string
	// Note explains the metric and any normalization.
	Note string
	// Header labels the columns.
	Header []string
	// Rows hold formatted cells.
	Rows [][]string
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  %s\n", t.Note)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	sep := make([]string, len(t.Header))
	for i, h := range t.Header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func pct(part, whole time.Duration) string {
	if whole <= 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

func ratio(v, base float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v/base)
}

func mib(b int64) string {
	return fmt.Sprintf("%.2f", float64(b)/(1<<20))
}
