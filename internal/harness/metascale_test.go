package harness

import "testing"

// TestMetadataScalingShape regenerates the metascale report in quick mode
// and checks its defining property: at 8 goroutines the sharded metadata
// path clearly outscales the serial baseline, while at 1 goroutine the two
// coincide (sharding must not tax the single-threaded path). Thresholds
// are far below the typical ratios (~5x and ~1.0x) to stay robust on
// loaded CI runners.
func TestMetadataScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("metascale sweep is seconds-long by design (scaled flush latency)")
	}
	fig, err := MetadataScaling(Config{}, Opts{Quick: true, Ops: 12})
	if err != nil {
		t.Fatal(err)
	}
	s1, p1 := fig.Get("1/serial"), fig.Get("1/sharded")
	s8, p8 := fig.Get("8/serial"), fig.Get("8/sharded")
	if s1 <= 0 || p1 <= 0 || s8 <= 0 || p8 <= 0 {
		t.Fatalf("missing series: %v", fig.Series)
	}
	if p8 < 1.5*s8 {
		t.Fatalf("sharded path at 8 goroutines = %.0f ops/s, serial = %.0f; want >= 1.5x", p8, s8)
	}
	if p1 < 0.5*s1 {
		t.Fatalf("sharded path at 1 goroutine = %.0f ops/s, serial = %.0f; sharding overhead too high", p1, s1)
	}
}
