package harness

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/obs"
	"hinfs/internal/server"
)

// batchSpeedupFloor is the acceptance gate on the pipelined submission
// path: at batch 32 HiNFS must move small ops at least this multiple of
// the synchronous (batch 1) rate over the same loopback server.
//
// Sizing: healthy runs measure 2.0–2.9x (2.4x full mode on the
// reference container); a broken pipeline degenerates to ~1.0x. The
// floor sits between the two rather than at the healthy edge because
// the ratio compresses under outside load — batch 32 is nearly pure
// service time while batch 1 is turnaround-dominated, so a uniformly
// slower machine (shared runner, thermal clamp, a heavy figure that
// ran just before) inflates service and squeezes the speedup toward
// 1x. 1.5 catches the failure mode without tripping on the venue.
const batchSpeedupFloor = 1.5

// batchSizes is the pipeline-depth sweep of -fig batch.
func batchSizes(quick bool) []int {
	if quick {
		return []int{1, 8, 32}
	}
	return []int{1, 2, 4, 8, 16, 32, 64}
}

// FigureBatch measures batched asynchronous submission end to end: HiNFS
// and PMFS behind the multi-tenant server on a real TCP loopback, a few
// clients each pumping small 256 B reads and writes (fsync every 32
// ops) through the pipelined Batch API at increasing window sizes. Batch 1 is the
// synchronous RPC baseline; deeper windows overlap wire turnarounds and
// let the scheduler's dispatch batches coalesce trailing persist fences
// (fences/op falls as elision kicks in). Reported per point: ops/s,
// speedup over batch 1, client-observed p50/p999, realized pipeline
// depth, and device fences per op. The run fails if HiNFS's batch-32
// speedup is below the acceptance floor — that gate is what makes the
// CI leg a regression tripwire, not a chart generator.
func FigureBatch(cfg Config, o Opts) (*Figure, error) {
	// Real-time scale: pipelining removes protocol turnaround, which
	// scaled device delays would drown out.
	cfg.TimeScale = 1
	cfg.Fill()
	clients := 4
	window := 700 * time.Millisecond
	if o.Quick {
		window = 400 * time.Millisecond
	}
	if o.Threads > 0 {
		clients = o.Threads
	}
	sizes := batchSizes(o.Quick)
	systems := []System{HiNFS, PMFS}

	fig := &Figure{Table: Table{
		Title: "Batched submission: pipelined ops/s vs batch size over a loopback server",
		Note: fmt.Sprintf("%d clients, 256B 50/50 read/write + fsync every 32 ops, %v/point, 4 workers; batch 1 = synchronous RPC; fences/op shows cross-op fence coalescing",
			clients, window),
		Header: []string{"system", "batch", "ops/s", "speedup", "p50(us)", "p999(us)", "depth", "fences/op"},
	}}

	for _, sys := range systems {
		baseline := 0.0
		for _, size := range sizes {
			opsps, p50, p999, depth, fpo, err := runBatchPoint(sys, cfg, clients, size, window)
			if err != nil {
				return nil, fmt.Errorf("batch: %s batch %d: %w", sys, size, err)
			}
			if size == 1 {
				baseline = opsps
			}
			speedup := 0.0
			if baseline > 0 {
				speedup = opsps / baseline
			}
			key := fmt.Sprintf("%s/%d", sys, size)
			fig.Table.Rows = append(fig.Table.Rows, []string{
				string(sys), fmt.Sprint(size), fmt.Sprintf("%.0f", opsps),
				fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%.1f", float64(p50)/1e3),
				fmt.Sprintf("%.1f", float64(p999)/1e3),
				fmt.Sprintf("%.1f", depth),
				fmt.Sprintf("%.2f", fpo),
			})
			fig.put(key+"/opsps", opsps)
			fig.put(key+"/speedup", speedup)
			fig.put(key+"/p50us", float64(p50)/1e3)
			fig.put(key+"/p999us", float64(p999)/1e3)
			fig.put(key+"/depth", depth)
			fig.put(key+"/fencesperop", fpo)
		}
	}

	if got := fig.Get("hinfs/32/speedup"); got < batchSpeedupFloor {
		return fig, fmt.Errorf("batch: hinfs batch-32 speedup %.2fx below the %.1fx floor",
			got, batchSpeedupFloor)
	}
	return fig, nil
}

// runBatchPoint measures one (system, batch size) point on a fresh
// instance and server.
func runBatchPoint(sys System, cfg Config, clients, size int, window time.Duration) (opsps float64, p50, p999 int64, depth, fencesPerOp float64, err error) {
	// Earlier figures in the same invocation (-fig all) can leave
	// hundreds of MiB of dead device arrays behind; collect them so
	// their GC work does not land inside the measured window.
	runtime.GC()
	inst, err := NewInstance(sys, cfg)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer inst.Close()
	dev := inst.Dev
	srv, err := server.New(server.Config{
		FS:      inst.FS,
		Tenants: map[string]server.TenantConfig{"t": {Root: "/t", Weight: 1}},
		Workers: 4,
		BatchFences: func() server.PersistScope {
			return dev.EnterFenceScope()
		},
	})
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	var (
		wg       sync.WaitGroup
		ops      atomic.Int64
		depthSum int64
		depthN   int64
		errsCh   = make(chan error, clients)
		hists    = make([]*obs.Hist, clients)
		stop     = make(chan struct{})
	)
	var depthMu sync.Mutex
	for i := 0; i < clients; i++ {
		hists[i] = &obs.Hist{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := server.Dial(addr, "t")
			if err != nil {
				errsCh <- err
				return
			}
			defer c.Unmount()
			f, err := c.Create(fmt.Sprintf("/f%d", i))
			if err != nil {
				errsCh <- err
				return
			}
			defer f.Close()
			b := c.NewBatch()
			b.SetWindow(size)
			b.SetLatency(hists[i])
			wbuf := make([]byte, 256)
			// One read destination per queued op: a reply may land any
			// time before Wait returns, so in-flight reads cannot share.
			rbufs := make([][]byte, 32)
			for k := range rbufs {
				rbufs[k] = make([]byte, 256)
			}
			// Each round is one pipelined burst: 32 small ops (50/50
			// read/write) round-robin over 8 file slots plus a trailing
			// fsync — the durability cadence of a small-record store.
			for j := 0; ; {
				select {
				case <-stop:
					depthMu.Lock()
					depthSum += int64(b.AchievedDepth() * 1000)
					depthN++
					depthMu.Unlock()
					return
				default:
				}
				for k := 0; k < 32; k++ {
					if k%2 == 0 {
						b.WriteAt(f, wbuf, int64(j%8)*(4<<10))
					} else {
						b.ReadAt(f, rbufs[k], int64(j%8)*(4<<10))
					}
					j++
				}
				b.Fsync(f)
				if err := b.Wait(); err != nil {
					errsCh <- err
					return
				}
				for _, o := range b.Ops() {
					// io.EOF is a short read at a not-yet-written slot
					// (first round only), not a failure.
					if o.Err != nil && o.Err != io.EOF {
						errsCh <- o.Err
						return
					}
				}
				ops.Add(int64(b.Len()))
				b.Reset()
			}
		}(i)
	}
	// Warm up before the clock starts: Dial, Create, first-lap EOF
	// reads, and scheduler ramp all land outside the measured window,
	// so short (quick-mode) windows measure the same steady state as
	// long ones.
	time.Sleep(150 * time.Millisecond)
	before := dev.Stats()
	ops.Store(0)
	start := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	close(errsCh)
	for e := range errsCh {
		return 0, 0, 0, 0, 0, e
	}
	after := dev.Stats()

	total := ops.Load()
	merged := &obs.Hist{}
	for _, h := range hists {
		merged.Merge(h)
	}
	snap := merged.Snapshot()
	p50v, _, _, p999v := snap.Percentiles()
	if depthN > 0 {
		depth = float64(depthSum) / float64(depthN) / 1000
	}
	if total > 0 {
		fencesPerOp = float64(after.Fences-before.Fences) / float64(total)
	}
	return float64(total) / elapsed.Seconds(), p50v, p999v, depth, fencesPerOp, nil
}
