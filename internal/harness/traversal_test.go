package harness

import (
	"strings"
	"testing"

	"hinfs/internal/vfs"
)

// escapeShapes is every path shape an adversarial client might send to
// break out of (or break) a namespace: dot-dot traversal in all its
// spellings, NUL injection, empty paths, and oversized names. wantErr is
// the error SplitPath-based validation must return.
var escapeShapes = []struct {
	name    string
	path    string
	wantErr error
}{
	{"bare-dotdot", "..", vfs.ErrInvalid},
	{"rooted-dotdot", "/..", vfs.ErrInvalid},
	{"trailing-slash-dotdot", "/../", vfs.ErrInvalid},
	{"escape-then-descend", "/../secret", vfs.ErrInvalid},
	{"deep-escape", "/a/../../secret", vfs.ErrInvalid},
	{"double-slash-escape", "//..//secret", vfs.ErrInvalid},
	{"dot-then-dotdot", "/./../secret", vfs.ErrInvalid},
	{"interior-dotdot", "/a/../b", vfs.ErrInvalid},
	{"empty-path", "", vfs.ErrInvalid},
	{"nul-component", "/se\x00cret", vfs.ErrInvalid},
	{"nul-only", "/\x00", vfs.ErrInvalid},
	{"oversized-component", "/" + strings.Repeat("a", vfs.MaxComponentLen+1), vfs.ErrNameTooLon},
	{"oversized-path", "/" + strings.Repeat("a/", vfs.MaxPathLen/2) + "x", vfs.ErrInvalid},
	{"too-deep", strings.Repeat("/d", vfs.MaxPathComponents+1), vfs.ErrInvalid},
}

// benignShapes are messy-but-legal spellings that must resolve, and must
// resolve INSIDE the namespace they were issued in.
var benignShapes = []struct {
	name string
	path string
}{
	{"repeated-slashes", "//dir///inside"},
	{"trailing-slash", "/dir/inside/"},
	{"dot-components", "/./dir/./inside"},
	{"dot-named-siblings", "/dir/..."},
	{"relative", "dir/inside"},
}

// TestPathTraversal drives every escape shape against every system, both
// directly and through a vfs.Sub confined view with a secret planted
// outside the subtree. No shape may reach the secret or corrupt the
// namespace.
func TestPathTraversal(t *testing.T) {
	for _, sys := range AllBaselines {
		t.Run(string(sys), func(t *testing.T) {
			inst, err := NewInstance(sys, lifecycleConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			fs := inst.FS

			// Outside world: a secret file the jail must never see.
			if err := fs.Mkdir("/outside"); err != nil {
				t.Fatal(err)
			}
			sec, err := fs.Create("/outside/secret")
			if err != nil {
				t.Fatal(err)
			}
			sec.WriteAt([]byte("top"), 0)
			sec.Close()
			if err := fs.Mkdir("/jail"); err != nil {
				t.Fatal(err)
			}
			jail, err := vfs.Sub(fs, "/jail")
			if err != nil {
				t.Fatal(err)
			}

			// Benign-shape targets.
			if err := jail.Mkdir("/dir"); err != nil {
				t.Fatal(err)
			}
			for _, p := range []string{"/dir/inside", "/dir/..."} {
				f, err := jail.Create(p)
				if err != nil {
					t.Fatalf("Create(%q): %v", p, err)
				}
				f.Close()
			}

			for _, c := range escapeShapes {
				t.Run(c.name, func(t *testing.T) {
					// Directly against the file system.
					if _, err := fs.Open(c.path, vfs.ORdonly); err != c.wantErr {
						t.Errorf("fs.Open(%.32q) = %v, want %v", c.path, err, c.wantErr)
					}
					if _, err := fs.Stat(c.path); c.path != "" && err != c.wantErr {
						// Stat("/..") etc. must fail identically; Stat("")
						// shares the ErrInvalid case.
						t.Errorf("fs.Stat(%.32q) = %v, want %v", c.path, err, c.wantErr)
					}
					// Through the confined view, across the op surface.
					if _, err := jail.Open(c.path, vfs.ORdonly); err != c.wantErr {
						t.Errorf("jail.Open(%.32q) = %v, want %v", c.path, err, c.wantErr)
					}
					if _, err := jail.Create(c.path); err != c.wantErr {
						t.Errorf("jail.Create(%.32q) = %v, want %v", c.path, err, c.wantErr)
					}
					if err := jail.Mkdir(c.path); err != c.wantErr {
						t.Errorf("jail.Mkdir(%.32q) = %v, want %v", c.path, err, c.wantErr)
					}
					if err := jail.Unlink(c.path); err != c.wantErr {
						t.Errorf("jail.Unlink(%.32q) = %v, want %v", c.path, err, c.wantErr)
					}
					if err := jail.Rename(c.path, "/dir/inside"); err != c.wantErr {
						t.Errorf("jail.Rename(%.32q, ok) = %v, want %v", c.path, err, c.wantErr)
					}
					if err := jail.Rename("/dir/inside", c.path); err != c.wantErr {
						t.Errorf("jail.Rename(ok, %.32q) = %v, want %v", c.path, err, c.wantErr)
					}
					if _, err := jail.ReadDir(c.path); err != c.wantErr {
						t.Errorf("jail.ReadDir(%.32q) = %v, want %v", c.path, err, c.wantErr)
					}
				})
			}

			// The secret is still there, still 3 bytes, still outside.
			fi, err := fs.Stat("/outside/secret")
			if err != nil || fi.Size != 3 {
				t.Fatalf("secret damaged: %+v, %v", fi, err)
			}
			if _, err := jail.Stat("/outside/secret"); err != vfs.ErrNotExist {
				t.Fatalf("jail sees a parallel /outside/secret: %v", err)
			}

			for _, c := range benignShapes {
				t.Run("benign-"+c.name, func(t *testing.T) {
					target := "/dir/inside"
					if c.name == "dot-named-siblings" {
						target = "/dir/..."
					}
					fi, err := jail.Stat(c.path)
					if err != nil {
						t.Fatalf("jail.Stat(%q): %v", c.path, err)
					}
					want, _ := jail.Stat(target)
					if fi.Name != want.Name {
						t.Fatalf("Stat(%q) resolved to %q, want %q", c.path, fi.Name, want.Name)
					}
					// And the resolution stayed inside the jail: the same
					// name does not exist at the mount root.
					if _, err := fs.Stat(target); err != vfs.ErrNotExist {
						t.Fatalf("benign path leaked to the root namespace: %v", err)
					}
				})
			}
		})
	}
}
