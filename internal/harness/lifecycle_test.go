package harness

import (
	"io"
	"sync"
	"testing"
	"time"

	"hinfs/internal/vfs"
)

// lifecycleConfig is a minimal-latency config for semantic tests.
func lifecycleConfig() Config {
	return Config{
		DeviceSize:      96 << 20,
		WriteLatency:    time.Nanosecond,
		ReadLatency:     time.Nanosecond,
		SyscallOverhead: time.Nanosecond,
		BlockOverhead:   time.Nanosecond,
		TimeScale:       1,
	}
}

// TestHandleLifecycle pins the vfs.File close contract on every system:
// a second Close returns ErrClosed, operations on a closed handle return
// ErrClosed, and closing one handle never invalidates another handle to
// the same file. Run with -race, these are regression tests for the
// handle-lifecycle sweep.
func TestHandleLifecycle(t *testing.T) {
	systems := []System{HiNFS, HiNFSNCLFW, HiNFSWB, PMFS, EXT4DAX, EXT2NVMMBD, EXT4NVMMBD}
	for _, sys := range systems {
		t.Run(string(sys), func(t *testing.T) {
			inst, err := NewInstance(sys, lifecycleConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			fs := inst.FS

			t.Run("DoubleClose", func(t *testing.T) { lcDoubleClose(t, fs) })
			t.Run("OpsAfterClose", func(t *testing.T) { lcOpsAfterClose(t, fs) })
			t.Run("SiblingHandleSurvives", func(t *testing.T) { lcSibling(t, fs) })
			t.Run("ConcurrentClose", func(t *testing.T) { lcConcurrentClose(t, fs) })
			t.Run("IORacingClose", func(t *testing.T) { lcIORacingClose(t, fs) })
			t.Run("UnlinkedReclaimRace", func(t *testing.T) { lcUnlinkedReclaim(t, fs) })
		})
	}
}

func lcDoubleClose(t *testing.T, fs vfs.FileSystem) {
	f, err := fs.Create("/lc-double")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("first Close = %v", err)
	}
	if err := f.Close(); err != vfs.ErrClosed {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

func lcOpsAfterClose(t *testing.T, fs vfs.FileSystem) {
	f, err := fs.Create("/lc-ops")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("x"), 0)
	f.Close()
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, 0); err != vfs.ErrClosed {
		t.Errorf("ReadAt after Close = %v, want ErrClosed", err)
	}
	if _, err := f.WriteAt(buf, 0); err != vfs.ErrClosed {
		t.Errorf("WriteAt after Close = %v, want ErrClosed", err)
	}
	if err := f.Fsync(); err != vfs.ErrClosed {
		t.Errorf("Fsync after Close = %v, want ErrClosed", err)
	}
	if err := f.Truncate(0); err != vfs.ErrClosed {
		t.Errorf("Truncate after Close = %v, want ErrClosed", err)
	}
}

// lcSibling checks that closing one handle does not release the file
// state another open handle depends on (the refcount is per handle, and a
// double Close on one handle must not decrement it twice).
func lcSibling(t *testing.T, fs vfs.FileSystem) {
	a, err := fs.Create("/lc-sib")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteAt([]byte("sibling"), 0); err != nil {
		t.Fatal(err)
	}
	b, err := fs.Open("/lc-sib", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Unlink, then close (and double-close) the first handle: if the
	// second Close dropped a reference too, b's storage would be reclaimed
	// while b is still open.
	if err := fs.Unlink("/lc-sib"); err != nil {
		t.Fatal(err)
	}
	a.Close()
	a.Close()
	buf := make([]byte, 7)
	if n, err := b.ReadAt(buf, 0); err != nil && err != io.EOF || n != 7 {
		t.Fatalf("sibling read = %d, %v", n, err)
	}
	if string(buf) != "sibling" {
		t.Fatalf("sibling read %q", buf)
	}
}

// lcConcurrentClose races N goroutines closing the same handle: exactly
// one must win; the rest must see ErrClosed.
func lcConcurrentClose(t *testing.T, fs vfs.FileSystem) {
	f, err := fs.Create("/lc-cc")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f.Close()
		}(i)
	}
	wg.Wait()
	wins := 0
	for i, err := range errs {
		switch err {
		case nil:
			wins++
		case vfs.ErrClosed:
		default:
			t.Errorf("close %d = %v", i, err)
		}
	}
	if wins != 1 {
		t.Fatalf("%d closes succeeded, want exactly 1", wins)
	}
}

// lcIORacingClose runs readers and writers against a handle while another
// goroutine closes it. Every operation must either complete or fail with
// ErrClosed — never panic, never touch reclaimed storage (the -race run
// checks the latter).
func lcIORacingClose(t *testing.T, fs vfs.FileSystem) {
	f, err := fs.Create("/lc-race")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 64<<10), 0); err != nil {
		t.Fatal(err)
	}
	// The file is unlinked while open, so the racing Close also races the
	// storage reclaim — the dangerous path.
	if err := fs.Unlink("/lc-race"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	opErr := func(err error) bool {
		return err == nil || err == io.EOF || err == vfs.ErrClosed
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			buf := make([]byte, 4096)
			for j := 0; ; j++ {
				_, err := f.ReadAt(buf, int64((i*37+j)%16)*4096)
				if !opErr(err) {
					t.Errorf("racing ReadAt = %v", err)
					return
				}
				if err == vfs.ErrClosed {
					return
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			buf := make([]byte, 512)
			for j := 0; ; j++ {
				_, err := f.WriteAt(buf, int64((i*11+j)%16)*4096)
				if !opErr(err) {
					t.Errorf("racing WriteAt = %v", err)
					return
				}
				if err == vfs.ErrClosed {
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(time.Millisecond)
		if err := f.Close(); err != nil {
			t.Errorf("Close = %v", err)
		}
	}()
	close(start)
	wg.Wait()
}

// lcUnlinkedReclaim opens many handles to one file, unlinks it, closes
// all handles concurrently, and checks that the path can be recreated and
// used — i.e. the deferred reclaim ran exactly once and left the
// allocator consistent.
func lcUnlinkedReclaim(t *testing.T, fs vfs.FileSystem) {
	const handles = 8
	f0, err := fs.Create("/lc-reclaim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f0.WriteAt(make([]byte, 32<<10), 0); err != nil {
		t.Fatal(err)
	}
	hs := []vfs.File{f0}
	for i := 1; i < handles; i++ {
		h, err := fs.Open("/lc-reclaim", vfs.ORdwr)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	if err := fs.Unlink("/lc-reclaim"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, h := range hs {
		wg.Add(1)
		go func(h vfs.File) {
			defer wg.Done()
			if err := h.Close(); err != nil {
				t.Errorf("close = %v", err)
			}
		}(h)
	}
	wg.Wait()
	// The name is free again and new storage works.
	g, err := fs.Create("/lc-reclaim")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.WriteAt([]byte("fresh"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if n, err := g.ReadAt(buf, 0); n != 5 || (err != nil && err != io.EOF) {
		t.Fatalf("reread = %d, %v", n, err)
	}
	if string(buf) != "fresh" {
		t.Fatalf("reread %q", buf)
	}
}
