package harness

import (
	"strings"
	"testing"
	"time"

	"hinfs/internal/trace"
	"hinfs/internal/workload"
)

// fastCfg keeps harness tests quick: small device, mild scale.
func fastCfg() Config {
	return Config{DeviceSize: 128 << 20, TimeScale: 8}
}

func TestNewInstanceAllSystems(t *testing.T) {
	for _, sys := range []System{HiNFS, HiNFSNCLFW, HiNFSWB, PMFS, EXT4DAX, EXT2NVMMBD, EXT4NVMMBD} {
		inst, err := NewInstance(sys, fastCfg())
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		f, err := inst.FS.Create("/probe")
		if err != nil {
			t.Fatalf("%s create: %v", sys, err)
		}
		if _, err := f.WriteAt([]byte("probe"), 0); err != nil {
			t.Fatalf("%s write: %v", sys, err)
		}
		got := make([]byte, 5)
		if _, err := f.ReadAt(got, 0); err != nil || string(got) != "probe" {
			t.Fatalf("%s read: %q %v", sys, got, err)
		}
		f.Close()
		if err := inst.Close(); err != nil {
			t.Fatalf("%s close: %v", sys, err)
		}
	}
	if _, err := NewInstance(System("btrfs"), fastCfg()); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestRunWorkloadReportsMetrics(t *testing.T) {
	res, err := RunWorkload(HiNFS, fastCfg(), &workload.Fileserver{Files: 16, FileSize: 16 << 10, IOSize: 16 << 10}, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.OpsPerSec == 0 || res.Elapsed == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestSyscallOverheadCharged(t *testing.T) {
	inst, err := NewInstance(PMFS, Config{DeviceSize: 64 << 20, SyscallOverhead: 200 * time.Microsecond, TimeScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	start := time.Now()
	if _, err := inst.FS.Stat("/"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 200*time.Microsecond {
		t.Fatal("syscall overhead not charged")
	}
}

func TestFigure1Shape(t *testing.T) {
	// Paper: Write Access > 80% at >= 4KB; Others dominant at 64B.
	fig, err := Figure1(fastCfg(), Opts{Quick: true, Ops: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if w := fig.Get("4KB/write"); w < 0.5 {
		t.Fatalf("write access at 4KB = %.2f, want > 0.5", w)
	}
	if o, w := fig.Get("64B/others"), fig.Get("64B/write"); o < w {
		t.Fatalf("at 64B others (%.2f) should dominate write access (%.2f)", o, w)
	}
}

func TestFigure2Shape(t *testing.T) {
	fig, err := Figure2(fastCfg(), Opts{Ops: 150})
	if err != nil {
		t.Fatal(err)
	}
	if v := fig.Get("lasr"); v != 0 {
		t.Fatalf("LASR fsync bytes = %.1f%%, want 0", v)
	}
	if v := fig.Get("tpcc"); v < 80 {
		t.Fatalf("TPC-C fsync bytes = %.1f%%, want > 80 (paper: >90)", v)
	}
	if v := fig.Get("varmail"); v < 90 {
		t.Fatalf("varmail fsync bytes = %.1f%%, want > 90", v)
	}
	if v := fig.Get("fileserver"); v != 0 {
		t.Fatalf("fileserver fsync bytes = %.1f%%, want 0", v)
	}
}

func TestFigure6Accuracy(t *testing.T) {
	// Single-threaded for deterministic sync interleavings.
	fig, err := Figure6(fastCfg(), Opts{Ops: 300, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: close to 90% even in the worst case; allow slack at our scale.
	for _, w := range []string{"varmail", "tpcc", "facebook"} {
		if v := fig.Get(w); v < 70 {
			t.Fatalf("%s model accuracy = %.1f%%, want >= 70", w, v)
		}
	}
}

func TestHiNFSBeatsPMFSOnFileserver(t *testing.T) {
	// The headline result (Fig. 7), at reduced scale.
	cfg := fastCfg()
	var tput [2]float64
	for i, sys := range []System{HiNFS, PMFS} {
		res, err := RunWorkload(sys, cfg, &workload.Fileserver{}, 2, 40)
		if err != nil {
			t.Fatal(err)
		}
		tput[i] = res.OpsPerSec
	}
	if tput[0] <= tput[1] {
		t.Fatalf("HiNFS (%.0f ops/s) did not beat PMFS (%.0f ops/s) on fileserver", tput[0], tput[1])
	}
}

func TestCLFWReducesNVMMWriteBytes(t *testing.T) {
	// Fig. 9(b): with sub-block writes, CLFW flushes far fewer bytes.
	cfg := fastCfg()
	cfg.BufferBlocks = 256 // force eviction while blocks are sparsely dirty
	var flushed [2]int64
	for i, sys := range []System{HiNFS, HiNFSNCLFW} {
		w := &workload.Fio{IOSize: 512, FileSize: 16 << 20, ReadPercent: 33}
		res, err := RunWorkload(sys, cfg, w, 2, 800)
		if err != nil {
			t.Fatal(err)
		}
		flushed[i] = res.Dev.BytesFlushed
	}
	if flushed[0] >= flushed[1] {
		t.Fatalf("CLFW flushed %d B >= NCLFW %d B", flushed[0], flushed[1])
	}
}

func TestTraceReplayHiNFSFasterOnUsr0(t *testing.T) {
	// Fig. 12: HiNFS cuts Usr0 replay time versus PMFS.
	cfg := fastCfg()
	var totals [2]time.Duration
	for i, sys := range []System{HiNFS, PMFS} {
		tr := trace.Usr0(6000)
		inst, err := NewInstance(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Prepare(inst.FS); err != nil {
			t.Fatal(err)
		}
		res, err := tr.Replay(inst.FS)
		inst.Close()
		if err != nil {
			t.Fatal(err)
		}
		totals[i] = res.Total()
	}
	// Paper: ~37% faster. Require a clear win but leave margin for
	// scheduler noise on small hosts.
	if float64(totals[0]) >= 0.95*float64(totals[1]) {
		t.Fatalf("HiNFS replay %v not clearly faster than PMFS %v on usr0", totals[0], totals[1])
	}
}

func TestTablePrinting(t *testing.T) {
	tb := Table{
		Title:  "Test table",
		Note:   "note",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
	}
	s := tb.String()
	for _, want := range []string{"Test table", "note", "a", "bb", "3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestFormattingHelpers(t *testing.T) {
	if got := pct(250*time.Millisecond, time.Second); got != "25.0%" {
		t.Fatalf("pct = %q", got)
	}
	if got := pct(time.Second, 0); got != "0.0%" {
		t.Fatalf("pct zero-base = %q", got)
	}
	if got := ratio(3, 2); got != "1.50" {
		t.Fatalf("ratio = %q", got)
	}
	if got := ratio(1, 0); got != "-" {
		t.Fatalf("ratio zero-base = %q", got)
	}
	if got := mib(3 << 20); got != "3.00" {
		t.Fatalf("mib = %q", got)
	}
	if got := sizeLabel(64); got != "64B" {
		t.Fatalf("sizeLabel = %q", got)
	}
	if got := sizeLabel(4096); got != "4KB" {
		t.Fatalf("sizeLabel = %q", got)
	}
	if got := sizeLabel(1 << 20); got != "1MB" {
		t.Fatalf("sizeLabel = %q", got)
	}
}

func TestCloneWorkloadTypes(t *testing.T) {
	for _, w := range []workload.Workload{
		&workload.Fileserver{}, &workload.Webserver{}, &workload.Webproxy{},
		&workload.Varmail{}, &workload.Postmark{}, &workload.TPCC{},
		&workload.KernelGrep{}, &workload.KernelMake{},
	} {
		c := cloneWorkload(w)
		if c == w {
			t.Fatalf("%s: clone returned the same instance", w.Name())
		}
		if c.Name() != w.Name() {
			t.Fatalf("clone of %s is %s", w.Name(), c.Name())
		}
	}
}
