package harness

import (
	"testing"
	"time"
)

// ampCfg keeps the amplification runs fast: real-time scale and cheap
// device latencies (the figure reads copy counters, not wall time).
func ampCfg() Config {
	return Config{
		DeviceSize:      128 << 20,
		WriteLatency:    time.Nanosecond,
		ReadLatency:     time.Nanosecond,
		BlockOverhead:   time.Microsecond,
		SyscallOverhead: time.Nanosecond,
		TimeScale:       1,
	}
}

// TestAmplificationFigure checks the figure reproduces the paper's §2
// double-copy analysis: HiNFS's lazy write path copies strictly less on
// the critical path than the page-cache baselines, and — for the
// unique-offset workload where nothing can coalesce away — every system
// flushes at least as many bytes to NVMM as the workload wrote.
func TestAmplificationFigure(t *testing.T) {
	fig, err := FigureAmplification(ampCfg(), Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	const wl = "seq-write"
	hinfs := fig.Get(string(HiNFS) + "/" + wl + "/copies-per-write")
	// Block-aligned lazy writes land in the DRAM buffer exactly once.
	if hinfs < 0.99 || hinfs > 1.05 {
		t.Errorf("hinfs copies-per-write = %.3f, want ~1.0", hinfs)
	}
	for _, sys := range []System{EXT2NVMMBD, EXT4NVMMBD} {
		pc := fig.Get(string(sys) + "/" + wl + "/copies-per-write")
		if pc <= hinfs {
			t.Errorf("%s copies-per-write = %.3f, want strictly above hinfs %.3f (page cache double copy)", sys, pc, hinfs)
		}
	}
	for _, sys := range AmpSystems {
		amp := fig.Get(string(sys) + "/" + wl + "/amp")
		if amp < 1.0 {
			t.Errorf("%s amplification = %.3f on %s, want >= 1.0 (drained unique-offset writes)", sys, amp, wl)
		}
	}
	// Every cell carries a machine-readable profile with copy counters.
	for _, sys := range AmpSystems {
		p := fig.Profiles[string(sys)+"/"+wl]
		if p == nil {
			t.Fatalf("%s/%s: missing profile", sys, wl)
		}
		if len(p.Copies) == 0 {
			t.Errorf("%s/%s: profile has no copy attribution", sys, wl)
		}
	}
}

// TestAmpUniqueWorkloads pins the set the >=1 guarantee is asserted for.
func TestAmpUniqueWorkloads(t *testing.T) {
	got := AmpUniqueWorkloads()
	if len(got) != 1 || got[0] != "seq-write" {
		t.Fatalf("unique workloads = %v, want [seq-write]", got)
	}
}
