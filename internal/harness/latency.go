package harness

import (
	"fmt"
	"time"

	"hinfs/internal/obs"
	"hinfs/internal/workload"
)

// latencySystems is the lineup of the latency report: HiNFS against the
// direct-access baseline (and EXT4-DAX for the double-copy contrast in
// full runs).
func latencySystems(quick bool) []System {
	if quick {
		return []System{HiNFS, PMFS}
	}
	return []System{HiNFS, PMFS, EXT4DAX}
}

// FigureLatency is the repo's Fig.4/5-style breakdown: per-op-class
// latency percentiles for HiNFS and the baselines on the Varmail
// workload, plus HiNFS's decision-path split (direct vs buffered reads,
// eager vs lazy writes, foreground stalls, writeback batches). Varmail
// is the lineup's only workload that exercises every op class (it
// fsyncs every append), and its sync pressure drives the Buffer Benefit
// Model into both verdicts, so the eager/lazy split is populated. Where
// the paper decomposes mean op latency into NVMM-write exposure and
// double-copy overhead, this report shows the full distribution per
// path, which is what tail-latency work needs.
//
// Series keys: "<system>/<op>/p50|p90|p99|p999" (µs) and, for HiNFS,
// "hinfs/path/<path>/count" plus "hinfs/eager-blocks"/"hinfs/lazy-blocks".
func FigureLatency(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	cfg.Observe = true
	ops := o.Ops
	if ops == 0 {
		ops = 400
	}
	threads := o.Threads
	if threads == 0 {
		threads = 4
	}
	fig := &Figure{Table: Table{
		Title: "Latency: per-op-class percentiles and HiNFS path mix (Varmail)",
		Header: []string{"system", "op", "count", "p50(us)", "p90(us)",
			"p99(us)", "p999(us)", "max(us)"},
	}}
	var hinfsSnap *obs.Snapshot
	for _, sys := range latencySystems(o.Quick) {
		w := &workload.Varmail{}
		res, err := RunWorkload(sys, cfg, w, threads, ops)
		if err != nil {
			return nil, err
		}
		if res.Obs == nil {
			return nil, fmt.Errorf("latency: no obs snapshot for %s", sys)
		}
		if sys == HiNFS {
			hinfsSnap = res.Obs
		}
		for _, op := range obs.OpClasses() {
			h := res.Obs.Op(op)
			if h.Count == 0 {
				continue
			}
			fig.Table.Rows = append(fig.Table.Rows, latencyRow(string(sys), op.String(), h))
			putPercentiles(fig, fmt.Sprintf("%s/%s", sys, op), h)
		}
	}
	// HiNFS decision paths, from the same run's collector.
	if hinfsSnap != nil {
		for _, p := range obs.Paths() {
			if p == obs.PathWriteback {
				continue // batch sizes, not latencies: reported in the note
			}
			h := hinfsSnap.Path(p)
			if h.Count == 0 {
				continue
			}
			fig.Table.Rows = append(fig.Table.Rows,
				latencyRow("hinfs", "["+p.String()+"]", h))
			putPercentiles(fig, "hinfs/path/"+p.String(), h)
			fig.put(fmt.Sprintf("hinfs/path/%s/count", p), float64(h.Count))
		}
		eb := hinfsSnap.Counter(obs.CtrEagerBlocks)
		lb := hinfsSnap.Counter(obs.CtrLazyBlocks)
		wb := hinfsSnap.Path(obs.PathWriteback)
		fig.put("hinfs/eager-blocks", float64(eb))
		fig.put("hinfs/lazy-blocks", float64(lb))
		eagerPct := 0.0
		if eb+lb > 0 {
			eagerPct = 100 * float64(eb) / float64(eb+lb)
		}
		fig.Table.Note = fmt.Sprintf(
			"HiNFS write routing: %d eager / %d lazy blocks (%.1f%% eager); "+
				"%d writeback batches (mean %.1f blocks); benefit verdicts %d eager / %d lazy. "+
				"Bracketed rows are HiNFS-internal decision paths.",
			eb, lb, eagerPct, wb.Count, wb.Mean(),
			hinfsSnap.Counter(obs.CtrBenefitEager), hinfsSnap.Counter(obs.CtrBenefitLazy))
	}
	return fig, nil
}

// latencyRow formats one histogram as a table row in microseconds.
func latencyRow(sys, op string, h obs.HistSnapshot) []string {
	p50, p90, p99, p999 := h.Percentiles()
	return []string{
		sys, op,
		fmt.Sprintf("%d", h.Count),
		us(p50), us(p90), us(p99), us(p999), us(h.Max),
	}
}

// putPercentiles stores a histogram's percentile series (µs) under key.
func putPercentiles(fig *Figure, key string, h obs.HistSnapshot) {
	p50, p90, p99, p999 := h.Percentiles()
	fig.put(key+"/p50", float64(p50)/1e3)
	fig.put(key+"/p90", float64(p90)/1e3)
	fig.put(key+"/p99", float64(p99)/1e3)
	fig.put(key+"/p999", float64(p999)/1e3)
}

// us renders nanoseconds as microseconds.
func us(ns int64) string {
	return fmt.Sprintf("%.1f", float64(ns)/float64(time.Microsecond))
}
