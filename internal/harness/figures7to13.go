package harness

import (
	"fmt"
	"time"

	"hinfs/internal/trace"
	"hinfs/internal/workload"
)

func filebenchWorkloads() []workload.Workload {
	return []workload.Workload{
		&workload.Fileserver{},
		&workload.Webserver{},
		&workload.Webproxy{},
		&workload.Varmail{},
	}
}

// Figure7 regenerates the overall Filebench throughput comparison across
// the five systems, normalized to PMFS.
func Figure7(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	fig := &Figure{Table: Table{
		Title: "Figure 7: Overall Filebench performance (throughput normalized to PMFS)",
		Note: "Paper: HiNFS best everywhere (up to +184% on Fileserver); EXT2/EXT4+NVMMBD " +
			"beat PMFS only on Webproxy; HiNFS ~ PMFS on Webserver and Varmail.",
		Header: []string{"workload", "hinfs", "pmfs", "ext4-dax", "ext2-nvmmbd", "ext4-nvmmbd"},
	}}
	ops := o.Ops
	if ops == 0 {
		ops = 100
	}
	threads := o.Threads
	if threads == 0 {
		threads = 4
	}
	systems := AllBaselines
	for _, w := range filebenchWorkloads() {
		tput := make(map[System]float64)
		for _, sys := range systems {
			res, err := RunWorkload(sys, cfg, cloneWorkload(w), threads, ops)
			if err != nil {
				return nil, err
			}
			tput[sys] = res.OpsPerSec
			fig.put(string(sys)+"/"+w.Name(), res.OpsPerSec)
			fig.putP(string(sys)+"/"+w.Name(), res)
		}
		base := tput[PMFS]
		row := []string{w.Name()}
		for _, sys := range []System{HiNFS, PMFS, EXT4DAX, EXT2NVMMBD, EXT4NVMMBD} {
			row = append(row, ratio(tput[sys], base))
		}
		fig.Table.Rows = append(fig.Table.Rows, row)
	}
	return fig, nil
}

// cloneWorkload returns a fresh generator of the same type so per-run
// state (fill defaults) never leaks between systems.
func cloneWorkload(w workload.Workload) workload.Workload {
	switch w.(type) {
	case *workload.Fileserver:
		return &workload.Fileserver{}
	case *workload.Webserver:
		return &workload.Webserver{}
	case *workload.Webproxy:
		return &workload.Webproxy{}
	case *workload.Varmail:
		return &workload.Varmail{}
	case *workload.Postmark:
		return &workload.Postmark{}
	case *workload.TPCC:
		return &workload.TPCC{}
	case *workload.KernelGrep:
		return &workload.KernelGrep{}
	case *workload.KernelMake:
		return &workload.KernelMake{}
	}
	return w
}

// Figure8 regenerates the thread-scalability sweep: throughput for 1-10
// client threads across systems and workloads.
func Figure8(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	threadCounts := []int{1, 2, 4, 8, 10}
	systems := AllBaselines
	if o.Quick {
		threadCounts = []int{1, 4, 10}
		systems = []System{HiNFS, PMFS, EXT4NVMMBD}
	}
	ops := o.Ops
	if ops == 0 {
		ops = 60
	}
	header := []string{"workload", "system"}
	for _, tc := range threadCounts {
		header = append(header, fmt.Sprintf("%dT", tc))
	}
	fig := &Figure{Table: Table{
		Title: "Figure 8: Throughput (ops/s) for 1-10 threads",
		Note: "Paper: HiNFS scales best; PMFS/EXT4-DAX saturate on NVMM write bandwidth; " +
			"EXT2/EXT4+NVMMBD stay flat under software overheads.",
		Header: header,
	}}
	for _, w := range filebenchWorkloads() {
		for _, sys := range systems {
			row := []string{w.Name(), string(sys)}
			for _, tc := range threadCounts {
				res, err := RunWorkload(sys, cfg, cloneWorkload(w), tc, ops)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.0f", res.OpsPerSec))
				fig.put(fmt.Sprintf("%s/%s/%d", sys, w.Name(), tc), res.OpsPerSec)
				fig.putP(fmt.Sprintf("%s/%s/%d", sys, w.Name(), tc), res)
			}
			fig.Table.Rows = append(fig.Table.Rows, row)
		}
	}
	return fig, nil
}

// Figure9 regenerates the I/O-size sensitivity study on Fileserver:
// (a) throughput and (b) NVMM write volume for HiNFS, HiNFS-NCLFW and
// PMFS across I/O sizes.
func Figure9(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	sizes := []int{64, 512, 1 << 10, 4 << 10, 16 << 10, 64 << 10}
	if o.Quick {
		sizes = []int{64, 4 << 10, 64 << 10}
	}
	ops := o.Ops
	if ops == 0 {
		ops = 200
	}
	threads := o.Threads
	if threads == 0 {
		threads = 2
	}
	fig := &Figure{Table: Table{
		Title: "Figure 9: Throughput and NVMM write size vs I/O size (random writes)",
		Note: "Paper: CLFW cuts NVMM write bytes sharply below the 4KB block size " +
			"(up to ~30% higher throughput than HiNFS-NCLFW); HiNFS-PMFS gap grows with I/O size. " +
			"Workload: random fio-style writes (the regime where buffer blocks are evicted " +
			"partially dirty, which is what CLFW exploits).",
		Header: []string{"io-size", "system", "ops/s", "nvmm-write-MB"},
	}}
	for _, ioSize := range sizes {
		for _, sys := range []System{HiNFS, HiNFSNCLFW, PMFS} {
			// A working set several times the DRAM buffer forces eviction
			// while blocks are still sparsely dirty.
			c := cfg
			c.BufferBlocks = 1024
			w := &workload.Fio{IOSize: ioSize, FileSize: 32 << 20, ReadPercent: 33}
			// Scale op count so each point moves a similar byte volume.
			pops := ops * (4 << 10) / ioSize
			if pops > 20000 {
				pops = 20000
			}
			if pops < ops {
				pops = ops
			}
			res, err := RunWorkload(sys, c, w, threads, pops)
			if err != nil {
				return nil, err
			}
			fig.Table.Rows = append(fig.Table.Rows, []string{
				sizeLabel(ioSize), string(sys),
				fmt.Sprintf("%.0f", res.OpsPerSec), mib(res.Dev.BytesFlushed),
			})
			fig.put(fmt.Sprintf("%s/%s/ops", sys, sizeLabel(ioSize)), res.OpsPerSec)
			fig.put(fmt.Sprintf("%s/%s/bytes", sys, sizeLabel(ioSize)), float64(res.Dev.BytesFlushed))
			fig.putP(fmt.Sprintf("%s/%s", sys, sizeLabel(ioSize)), res)
		}
	}
	return fig, nil
}

// Figure10 regenerates the DRAM buffer size sensitivity: HiNFS throughput
// as the buffer shrinks from 100% to 10% of the workload size, for
// Fileserver and Webproxy, with the other systems as flat references.
func Figure10(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	ratios := []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
	if o.Quick {
		ratios = []float64{0.1, 0.5, 1.0}
	}
	ops := o.Ops
	if ops == 0 {
		ops = 120
	}
	threads := o.Threads
	if threads == 0 {
		threads = 2
	}
	fig := &Figure{Table: Table{
		Title: "Figure 10: Throughput as a function of DRAM buffer size",
		Note: "Paper: Fileserver improves with buffer size; Webproxy is insensitive " +
			"(strong locality + short-lived files).",
		Header: []string{"workload", "series", "ops/s"},
	}}
	cases := []struct {
		w            workload.Workload
		datasetBytes int64
	}{
		{&workload.Fileserver{}, 192 * (256 << 10)},
		{&workload.Webproxy{}, 256 * (32 << 10)},
	}
	for _, tc := range cases {
		w, datasetBytes := tc.w, tc.datasetBytes
		datasetBlocks := int(datasetBytes / 4096)
		for _, r := range ratios {
			c := cfg
			c.BufferBlocks = int(float64(datasetBlocks) * r)
			if c.BufferBlocks < 64 {
				c.BufferBlocks = 64
			}
			res, err := RunWorkload(HiNFS, c, cloneWorkload(w), threads, ops)
			if err != nil {
				return nil, err
			}
			series := fmt.Sprintf("hinfs@%.1f", r)
			fig.Table.Rows = append(fig.Table.Rows, []string{
				w.Name(), series, fmt.Sprintf("%.0f", res.OpsPerSec),
			})
			fig.put(w.Name()+"/"+series, res.OpsPerSec)
			fig.putP(w.Name()+"/"+series, res)
		}
		for _, sys := range []System{PMFS, EXT4NVMMBD} {
			res, err := RunWorkload(sys, cfg, cloneWorkload(w), threads, ops)
			if err != nil {
				return nil, err
			}
			fig.Table.Rows = append(fig.Table.Rows, []string{
				w.Name(), string(sys), fmt.Sprintf("%.0f", res.OpsPerSec),
			})
			fig.put(w.Name()+"/"+string(sys), res.OpsPerSec)
			fig.putP(w.Name()+"/"+string(sys), res)
		}
	}
	return fig, nil
}

// Figure11 regenerates the NVMM write latency sensitivity: single-thread
// throughput at 50-800 ns write latency for HiNFS and PMFS.
func Figure11(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	lats := []time.Duration{50 * time.Nanosecond, 100 * time.Nanosecond,
		200 * time.Nanosecond, 400 * time.Nanosecond, 800 * time.Nanosecond}
	if o.Quick {
		lats = []time.Duration{50 * time.Nanosecond, 200 * time.Nanosecond, 800 * time.Nanosecond}
	}
	ops := o.Ops
	if ops == 0 {
		ops = 100
	}
	fig := &Figure{Table: Table{
		Title: "Figure 11: Throughput vs NVMM write latency (single thread)",
		Note: "Paper: HiNFS's edge grows with latency (x1.5 at 100ns to ~x6 at 800ns on " +
			"Webproxy); at 50ns HiNFS is never worse than PMFS.",
		Header: []string{"workload", "system", "50ns", "100ns", "200ns", "400ns", "800ns"},
	}}
	if o.Quick {
		fig.Table.Header = []string{"workload", "system", "50ns", "200ns", "800ns"}
	}
	for _, w := range []workload.Workload{&workload.Fileserver{}, &workload.Webproxy{}} {
		for _, sys := range []System{HiNFS, PMFS} {
			row := []string{w.Name(), string(sys)}
			for _, lat := range lats {
				c := cfg
				c.WriteLatency = lat
				res, err := RunWorkload(sys, c, cloneWorkload(w), 1, ops)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.0f", res.OpsPerSec))
				fig.put(fmt.Sprintf("%s/%s/%v", sys, w.Name(), lat), res.OpsPerSec)
				fig.putP(fmt.Sprintf("%s/%s/%v", sys, w.Name(), lat), res)
			}
			fig.Table.Rows = append(fig.Table.Rows, row)
		}
	}
	return fig, nil
}

// Figure12 regenerates the trace-replay time breakdown: read/write/
// unlink/fsync time for the four traces across six systems, normalized to
// PMFS's total.
func Figure12(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	ops := o.Ops
	if ops == 0 {
		ops = 8000
	}
	systems := TraceSystems
	if o.Quick {
		systems = []System{HiNFS, HiNFSWB, PMFS}
	}
	fig := &Figure{Table: Table{
		Title: "Figure 12: Breakdown of time spent replaying traces (normalized to PMFS total)",
		Note: "Paper: HiNFS cuts Usr0/Usr1/LASR time by ~35-38% vs PMFS (write time); " +
			"Facebook ~ PMFS (sync-heavy); HiNFS-WB is 14-32% slower than HiNFS on sync-heavy traces.",
		Header: []string{"trace", "system", "read", "write", "unlink", "fsync", "total"},
	}}
	for _, name := range []string{"usr0", "usr1", "lasr", "facebook"} {
		// The per-trace op stream is identical across systems (seeded).
		var pmfsTotal time.Duration
		type row struct {
			sys System
			res trace.ReplayResult
		}
		var rows []row
		for _, sys := range systems {
			tr, err := trace.ByName(name, ops)
			if err != nil {
				return nil, err
			}
			// The trace's buffer sizing rule (§5.3): 1/10 of workload size.
			c := cfg
			c.BufferBlocks = int(int64(tr.Files)*tr.InitialSize/4096) / 10
			if c.BufferBlocks < 64 {
				c.BufferBlocks = 64
			}
			inst, err := NewInstance(sys, c)
			if err != nil {
				return nil, err
			}
			if err := tr.Prepare(inst.FS); err != nil {
				inst.Close()
				return nil, err
			}
			res, err := tr.Replay(inst.FS)
			inst.Close()
			if err != nil {
				return nil, err
			}
			if sys == PMFS {
				pmfsTotal = res.Total()
			}
			rows = append(rows, row{sys, res})
		}
		for _, r := range rows {
			fig.Table.Rows = append(fig.Table.Rows, []string{
				name, string(r.sys),
				normPct(r.res.TimeFor(trace.Read), pmfsTotal),
				normPct(r.res.TimeFor(trace.Write), pmfsTotal),
				normPct(r.res.TimeFor(trace.Unlink), pmfsTotal),
				normPct(r.res.TimeFor(trace.Fsync), pmfsTotal),
				normPct(r.res.Total(), pmfsTotal),
			})
			fig.put(fmt.Sprintf("%s/%s/total", r.sys, name),
				float64(r.res.Total())/float64(pmfsTotal))
		}
	}
	return fig, nil
}

func normPct(d, base time.Duration) string {
	if base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(d)/float64(base))
}

// Figure13 regenerates the macrobenchmark elapsed-time comparison,
// normalized to PMFS.
func Figure13(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	ops := o.Ops
	if ops == 0 {
		ops = 150
	}
	threads := o.Threads
	if threads == 0 {
		threads = 2
	}
	systems := TraceSystems
	if o.Quick {
		systems = []System{HiNFS, PMFS, EXT4NVMMBD}
	}
	fig := &Figure{Table: Table{
		Title: "Figure 13: Elapsed time of macrobenchmarks (normalized to PMFS)",
		Note: "Paper: HiNFS cuts Postmark/Kernel-Make time by 60%/64% vs PMFS; " +
			"TPC-C and Kernel-Grep tie PMFS; EXT2 beats EXT4 (no journal).",
		Header: []string{"benchmark", "system", "elapsed", "normalized"},
	}}
	for _, w := range []workload.Workload{
		&workload.Postmark{}, &workload.TPCC{}, &workload.KernelGrep{}, &workload.KernelMake{},
	} {
		var pmfsTime time.Duration
		type row struct {
			sys     System
			elapsed time.Duration
		}
		var rows []row
		for _, sys := range systems {
			res, err := RunWorkload(sys, cfg, cloneWorkload(w), threads, ops)
			if err != nil {
				return nil, err
			}
			if sys == PMFS {
				pmfsTime = res.Elapsed
			}
			rows = append(rows, row{sys, res.Elapsed})
			fig.putP(fmt.Sprintf("%s/%s", sys, w.Name()), res)
		}
		for _, r := range rows {
			fig.Table.Rows = append(fig.Table.Rows, []string{
				w.Name(), string(r.sys),
				r.elapsed.Round(time.Millisecond).String(),
				normPct(r.elapsed, pmfsTime),
			})
			fig.put(fmt.Sprintf("%s/%s", r.sys, w.Name()),
				float64(r.elapsed)/float64(pmfsTime))
		}
	}
	return fig, nil
}
