package harness

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// diffDoc builds a two-figure document; scale multiplies every series.
func diffDoc(scale float64) *BenchDoc {
	doc := NewBenchDoc(Config{}, Opts{Quick: true})
	f7 := &Figure{}
	f7.put("hinfs/fileserver", 1000*scale)
	f7.put("pmfs/fileserver", 400*scale)
	doc.Add("7", f7)
	lat := &Figure{}
	lat.put("hinfs/write/p99", 52000*scale)
	doc.Add("latency", lat)
	return doc
}

// TestDiffPassesWobbleFlagsRegression is the gate's core contract: a 2%
// wobble on every series passes the default 10% tolerance, a 20% drop on
// one series fails it, and the report names exactly that series.
func TestDiffPassesWobbleFlagsRegression(t *testing.T) {
	base := diffDoc(1.0)

	wobble := diffDoc(1.02)
	rep := Diff(base, []*BenchDoc{wobble}, DiffOptions{})
	if rep.Regressed() {
		t.Fatalf("2%% wobble flagged as regression: %+v", rep.Rows)
	}
	if rep.Compared != 3 {
		t.Fatalf("compared %d series, want 3", rep.Compared)
	}

	regressed := diffDoc(1.0)
	regressed.Figures["7"].Series["hinfs/fileserver"] = 800 // -20%
	rep = Diff(base, []*BenchDoc{regressed}, DiffOptions{})
	if !rep.Regressed() {
		t.Fatal("20% regression passed the gate")
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Series != "hinfs/fileserver" {
		t.Fatalf("rows = %+v, want exactly hinfs/fileserver", rep.Rows)
	}
	if rel := rep.Rows[0].Rel; rel > -0.19 || rel < -0.21 {
		t.Fatalf("rel = %v, want ~-0.20", rel)
	}
}

// TestDiffSelfComparisonIsClean pins the acceptance criterion: a document
// diffed against itself has zero deltas and passes.
func TestDiffSelfComparisonIsClean(t *testing.T) {
	doc := diffDoc(1.0)
	rep := Diff(doc, []*BenchDoc{doc}, DiffOptions{})
	if rep.Regressed() || len(rep.Rows) != 0 || len(rep.Missing) != 0 || len(rep.Extra) != 0 {
		t.Fatalf("self-diff not clean: %+v", rep)
	}
}

// TestDiffMinOfN: with repeats, the run closest to the baseline judges
// each series, so one noisy repeat does not fail the gate.
func TestDiffMinOfN(t *testing.T) {
	base := diffDoc(1.0)
	noisy := diffDoc(0.7) // all series -30%: alone this fails
	clean := diffDoc(1.01)
	rep := Diff(base, []*BenchDoc{noisy, clean}, DiffOptions{})
	if rep.Regressed() {
		t.Fatalf("min-of-2 with one clean repeat flagged: %+v", rep.Rows)
	}
	if rep.Repeats != 2 {
		t.Fatalf("repeats = %d, want 2", rep.Repeats)
	}
	// Both repeats bad: the gate must still fail.
	rep = Diff(base, []*BenchDoc{noisy, diffDoc(0.75)}, DiffOptions{})
	if !rep.Regressed() {
		t.Fatal("all-bad repeats passed")
	}
}

// TestDiffMissingSeriesFails: silently dropping a measurement is a
// failure, not a pass.
func TestDiffMissingSeriesFails(t *testing.T) {
	base := diffDoc(1.0)
	cur := diffDoc(1.0)
	delete(cur.Figures["latency"].Series, "hinfs/write/p99")
	rep := Diff(base, []*BenchDoc{cur}, DiffOptions{})
	if !rep.Regressed() {
		t.Fatal("missing series passed the gate")
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "latency/hinfs/write/p99" {
		t.Fatalf("missing = %v", rep.Missing)
	}
}

// TestDiffToleranceOverrides checks per-figure and per-series thresholds.
func TestDiffToleranceOverrides(t *testing.T) {
	base := diffDoc(1.0)
	cur := diffDoc(1.0)
	cur.Figures["7"].Series["hinfs/fileserver"] = 700       // -30%
	cur.Figures["latency"].Series["hinfs/write/p99"] *= 1.3 // +30%
	opts := DiffOptions{
		PerFigure: map[string]float64{"latency": 0.5},
		PerSeries: map[string]float64{"7:hinfs/fileserver": 0.4},
	}
	rep := Diff(base, []*BenchDoc{cur}, opts)
	if rep.Regressed() {
		t.Fatalf("overrides not honoured: %+v", rep.Rows)
	}
	// Same deltas under the default tolerance fail both.
	rep = Diff(base, []*BenchDoc{cur}, DiffOptions{})
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %+v, want 2 failures at default tolerance", rep.Rows)
	}
}

// TestDiffMarkdownGolden pins the report format end to end: regression
// rows, a missing series, an extra series, and an environment diff.
func TestDiffMarkdownGolden(t *testing.T) {
	base := diffDoc(1.0)
	cur := diffDoc(1.0)
	cur.Figures["7"].Series["hinfs/fileserver"] = 780 // -22%
	cur.Figures["7"].Series["ext4-dax/fileserver"] = 333
	delete(cur.Figures["latency"].Series, "hinfs/write/p99")
	base.Fingerprint.GOMAXPROCS = 8 // pinned: the golden file is machine-independent
	cur.Fingerprint.GOMAXPROCS = 10
	got := Diff(base, []*BenchDoc{cur}, DiffOptions{}).Markdown()

	golden := filepath.Join("testdata", "benchdiff_golden.md")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("markdown drifted from %s (run `go test ./internal/harness -run Golden -update`):\n%s", golden, got)
	}
}
