package harness

import (
	"fmt"
	"time"

	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
	"hinfs/internal/workload"
)

// ampWorkload is one measurement point of the amplification figure.
type ampWorkload struct {
	name string
	mk   func(o Opts) workload.Workload
	ops  func(o Opts) int
	// unique marks workloads whose write stream touches every offset at
	// most once, so no write can coalesce in DRAM with an earlier one and
	// amplification (flushed/logical) is guaranteed >= 1 on every system.
	unique bool
}

// AmpUniqueWorkloads returns the names of the workloads the >=1
// amplification guarantee holds for (see ampWorkload.unique).
func AmpUniqueWorkloads() []string {
	var out []string
	for _, w := range ampWorkloads() {
		if w.unique {
			out = append(out, w.name)
		}
	}
	return out
}

func ampWorkloads() []ampWorkload {
	return []ampWorkload{
		{
			// 4 KiB block-aligned sequential writes, each offset written
			// once: the cleanest view of the §2 double-copy overhead.
			// ReadPercent -1 (not 0) because 0 means "default 1:2 mix".
			name: "seq-write",
			mk: func(o Opts) workload.Workload {
				return &workload.Fio{IOSize: 4 << 10, FileSize: 8 << 20, ReadPercent: -1, Sequential: true}
			},
			ops:    func(o Opts) int { return ampOps(o, 768, 384) },
			unique: true,
		},
		{
			// Random unaligned 4 KiB writes: partial blocks force
			// fetch-before-write copies (CLFW on HiNFS, page fills in the
			// page cache), and rewrites may coalesce in DRAM.
			name: "rand-write",
			mk: func(o Opts) workload.Workload {
				return &workload.Fio{IOSize: 4 << 10, FileSize: 8 << 20, ReadPercent: -1}
			},
			ops: func(o Opts) int { return ampOps(o, 768, 384) },
		},
		{
			// Sync-heavy small-file workload: fsync moves the flush copies
			// onto the critical path (sync-flush column).
			name: "varmail",
			mk: func(o Opts) workload.Workload {
				return &workload.Varmail{}
			},
			ops: func(o Opts) int { return ampOps(o, 192, 96) },
		},
	}
}

func ampOps(o Opts, full, quick int) int {
	if o.Ops != 0 {
		return o.Ops
	}
	if o.Quick {
		return quick
	}
	return full
}

// runDrained runs w like RunOn, but keeps the end-of-run Sync inside the
// measured device-counter window. RunOn's window covers only the run
// phase, which credits buffered systems for writes they merely deferred;
// amplification must charge every logical byte all the way to NVMM, so
// the drain is part of the measurement here.
func runDrained(sys System, cfg Config, w workload.Workload, threads, ops int) (RunResult, error) {
	cfg.Fill()
	cfg.Observe = true // the figure is built from the copy counters
	inst, err := NewInstance(sys, cfg)
	if err != nil {
		return RunResult{}, err
	}
	defer inst.Close()
	if err := w.Setup(inst.FS); err != nil {
		return RunResult{}, fmt.Errorf("%s setup on %s: %w", w.Name(), sys, err)
	}
	if err := inst.FS.Sync(); err != nil {
		return RunResult{}, err
	}
	if inst.Ext != nil {
		inst.Ext.DropCaches()
	}
	inst.Obs.Reset()
	before := inst.Dev.Stats()
	start := time.Now()
	res, err := w.Run(inst.FS, threads, ops)
	if err != nil {
		return RunResult{}, fmt.Errorf("%s run on %s: %w", w.Name(), sys, err)
	}
	// Drain all dirty state to NVMM inside the window.
	if err := inst.FS.Sync(); err != nil {
		return RunResult{}, err
	}
	elapsed := time.Since(start)
	after := inst.Dev.Stats()
	out := RunResult{
		Result:  res,
		Elapsed: elapsed,
		Dev: nvmm.Stats{
			BytesRead:    after.BytesRead - before.BytesRead,
			BytesWritten: after.BytesWritten - before.BytesWritten,
			BytesFlushed: after.BytesFlushed - before.BytesFlushed,
			Flushes:      after.Flushes - before.Flushes,
			Fences:       after.Fences - before.Fences,
			FencesElided: after.FencesElided - before.FencesElided,
			ReadTime:     after.ReadTime - before.ReadTime,
			WriteTime:    after.WriteTime - before.WriteTime,
		},
	}
	if elapsed > 0 {
		out.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	if inst.HiNFS != nil {
		ps := inst.HiNFS.Pool().Stats()
		out.Pool = &ps
	}
	out.Obs = inst.Obs.Snapshot()
	return out, nil
}

// AmpPoint is the attribution of one (system, workload) cell, derived
// from a drained RunResult's copy counters.
type AmpPoint struct {
	// LogicalBytes is what the workload asked to write.
	LogicalBytes int64
	// FgBytes is the DRAM/NVMM copy traffic on the write critical path:
	// user-in + fetch-before-write + inline eviction/throttling.
	FgBytes int64
	// SyncBytes is copy traffic during fsync/sync (durability the caller
	// asked to wait for — critical path too, but separately attributed).
	SyncBytes int64
	// BgBytes is background writeback copy traffic (off the critical path).
	BgBytes int64
	// FlushedBytes is what the NVMM persisted (run + drain).
	FlushedBytes int64
}

// CopiesPerWrite is critical-path copied bytes per logical byte written —
// the paper's §2 metric: ≈1 for HiNFS lazy writes and DAX, ≈2 for a
// throttled page cache (copy into DRAM + copy to media under the writer).
func (p AmpPoint) CopiesPerWrite() float64 {
	if p.LogicalBytes == 0 {
		return 0
	}
	return float64(p.FgBytes) / float64(p.LogicalBytes)
}

// Amplification is NVMM bytes flushed per logical byte written.
func (p AmpPoint) Amplification() float64 {
	if p.LogicalBytes == 0 {
		return 0
	}
	return float64(p.FlushedBytes) / float64(p.LogicalBytes)
}

// NewAmpPoint derives the attribution from a drained run.
func NewAmpPoint(res RunResult) AmpPoint {
	s := res.Obs
	return AmpPoint{
		LogicalBytes: res.BytesWritten,
		FgBytes: s.Copy(obs.CopyUserIn).Bytes +
			s.Copy(obs.CopyWriteFetch).Bytes +
			s.Copy(obs.CopyInlineEvict).Bytes,
		SyncBytes:    s.Copy(obs.CopySyncFlush).Bytes,
		BgBytes:      s.Copy(obs.CopyWriteback).Bytes,
		FlushedBytes: res.Dev.BytesFlushed,
	}
}

// AmpSystems is the lineup of the amplification figure.
var AmpSystems = AllBaselines

// FigureAmplification measures the paper's §2 double-copy argument
// directly: for each system and write workload, how many bytes of DRAM
// and NVMM copying sit on the write critical path per logical byte
// (copies/wr), how much copying fsync and background writeback add, and
// the end-to-end write amplification once all dirty state is drained.
// The page cache must be small enough that its dirty throttle engages —
// the paper's steady state — so the cache is fixed at 1024 pages here
// regardless of the CachePages the throughput figures use.
func FigureAmplification(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	// 4 MB cache ⇒ dirty throttle at ~0.6 MB, well under every point's
	// write volume: inline writeback shows up as it does at paper scale.
	cfg.CachePages = 1024
	fig := &Figure{Table: Table{
		Title: "Amplification: critical-path copies and NVMM write amplification",
		Note: "copies/wr = critical-path copied bytes per logical byte (§2: ≈1 lazy/DAX, ≈2 throttled page cache); " +
			"amp = NVMM bytes flushed per logical byte after drain (>=1 when offsets are unique).",
		Header: []string{"system", "workload", "written-MB", "fg-copy-MB", "copies/wr", "sync-MB", "bg-MB", "flushed-MB", "amp"},
	}}
	threads := o.Threads
	if threads <= 0 {
		threads = 1 // single writer: deterministic offsets and volumes
	}
	for _, aw := range ampWorkloads() {
		for _, sys := range AmpSystems {
			res, err := runDrained(sys, cfg, aw.mk(o), threads, aw.ops(o))
			if err != nil {
				return nil, err
			}
			p := NewAmpPoint(res)
			fig.Table.Rows = append(fig.Table.Rows, []string{
				string(sys), aw.name,
				mib(p.LogicalBytes), mib(p.FgBytes),
				fmt.Sprintf("%.2f", p.CopiesPerWrite()),
				mib(p.SyncBytes), mib(p.BgBytes), mib(p.FlushedBytes),
				fmt.Sprintf("%.2f", p.Amplification()),
			})
			key := string(sys) + "/" + aw.name
			fig.put(key+"/copies-per-write", p.CopiesPerWrite())
			fig.put(key+"/amp", p.Amplification())
			fig.put(key+"/sync-bytes", float64(p.SyncBytes))
			fig.put(key+"/bg-bytes", float64(p.BgBytes))
			fig.putP(key, res)
		}
	}
	return fig, nil
}
