package harness

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"hinfs/internal/server"
	"hinfs/internal/vfs"
)

// conformanceCases is the named behavioural suite every system under test
// must pass: the same semantics must hold whether the data path is a DRAM
// write buffer, direct NVMM access, or a page cache over a block device.
// Each case owns a distinct path prefix, so the whole list runs once per
// file-system view.
var conformanceCases = []struct {
	name string
	run  func(t *testing.T, fs vfs.FileSystem)
}{
	{"round-trip", conformRoundTrip},
	{"append", conformAppend},
	{"truncate", conformTruncate},
	{"namespace", conformNamespace},
	{"fsync", conformFsync},
	{"sparse", conformSparse},
	{"overwrite", conformOverwrite},
}

// conformConfig is sized for semantics, not performance: latencies are
// collapsed so the suite exercises code paths, not the clock.
func conformConfig() Config {
	return Config{
		DeviceSize:      96 << 20,
		WriteLatency:    time.Nanosecond,
		ReadLatency:     time.Nanosecond,
		SyscallOverhead: time.Nanosecond,
		BlockOverhead:   time.Nanosecond,
		TimeScale:       1,
	}
}

// hinfsFamily reports whether sys is one of the HiNFS variants, whose
// handles expose the block-mmap capability (§4.2); the baselines and any
// remote handle do not.
func hinfsFamily(sys System) bool {
	switch sys {
	case HiNFS, HiNFSNCLFW, HiNFSWB:
		return true
	}
	return false
}

// TestConformance runs the case list against every system twice: once
// directly on the instance's file system, and once through the framed-RPC
// loopback server (net.Pipe, one tenant confined under /export), so the
// wire protocol is held to the same contract as the local API. Each mode
// also checks the capability matrix: block mmap is discoverable via
// vfs.FileAs exactly on direct HiNFS-family handles — a remote handle
// must never claim a memory-mapping capability it cannot honour.
func TestConformance(t *testing.T) {
	systems := []System{HiNFS, HiNFSNCLFW, HiNFSWB, PMFS, EXT4DAX, EXT2NVMMBD, EXT4NVMMBD}
	for _, sys := range systems {
		t.Run(string(sys), func(t *testing.T) {
			t.Run("direct", func(t *testing.T) {
				inst, err := NewInstance(sys, conformConfig())
				if err != nil {
					t.Fatal(err)
				}
				defer inst.Close()
				runConformance(t, inst.FS, hinfsFamily(sys))
			})
			t.Run("loopback", func(t *testing.T) {
				fs, cleanup := loopbackFS(t, sys)
				defer cleanup()
				runConformance(t, fs, false)
			})
		})
	}
}

// runConformance runs every named case plus the capability probe against
// one file-system view.
func runConformance(t *testing.T, fs vfs.FileSystem, wantBlockMmap bool) {
	for _, c := range conformanceCases {
		t.Run(c.name, func(t *testing.T) { c.run(t, fs) })
	}
	t.Run("block-mmap-capability", func(t *testing.T) {
		conformBlockMmap(t, fs, wantBlockMmap)
	})
}

// loopbackFS stands up a fresh instance of sys behind a single-tenant
// server over net.Pipe and returns the attached client, which implements
// vfs.FileSystem, so the conformance cases run unchanged over the wire.
func loopbackFS(t *testing.T, sys System) (vfs.FileSystem, func()) {
	t.Helper()
	inst, err := NewInstance(sys, conformConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		FS:      inst.FS,
		Tenants: map[string]server.TenantConfig{"conform": {Root: "/export", Weight: 1}},
		Workers: 2,
	})
	if err != nil {
		inst.Close()
		t.Fatal(err)
	}
	cs, ss := net.Pipe()
	go srv.ServeConn(ss)
	c, err := server.NewClient(cs, "conform")
	if err != nil {
		srv.Close()
		inst.Close()
		t.Fatal(err)
	}
	return c, func() {
		c.Unmount()
		srv.Close()
		inst.Close()
	}
}

// conformBlockMmap checks the capability matrix: FileAs must discover a
// BlockMmapper through any decoration chain exactly when the backing
// handle really maps device memory, and a discovered capability must
// round-trip a store through the mapping.
func conformBlockMmap(t *testing.T, fs vfs.FileSystem, want bool) {
	f, err := fs.Create("/mmapcap")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xAB}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	m, ok := vfs.FileAs[vfs.BlockMmapper](f)
	if ok != want {
		t.Fatalf("HasBlockMmap = %v, want %v", ok, want)
	}
	if vfs.HasBlockMmap(f) != want {
		t.Fatalf("vfs.HasBlockMmap disagrees with FileAs")
	}
	if !ok {
		return
	}
	seg, err := m.Mmap(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg) == 0 || seg[0] != 0xAB {
		t.Fatalf("mapped block starts %#x, want 0xAB", seg[0])
	}
	seg[1] = 0x5C
	if err := m.Msync(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Munmap(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB || got[1] != 0x5C {
		t.Fatalf("store through mapping not visible: % x", got)
	}
}

func conformRoundTrip(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	f, err := fs.Create("/rt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, 3*4096+357)
	for i := range data {
		data[i] = byte(i*13 + 7)
	}
	if n, err := f.WriteAt(data, 1234); err != nil || n != len(data) {
		t.Fatalf("write %d %v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := f.ReadAt(got, 1234); err != nil || n != len(got) {
		t.Fatalf("read %d %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	// Hole reads zero.
	hole := make([]byte, 1234)
	f.ReadAt(hole, 0)
	for i, b := range hole {
		if b != 0 {
			t.Fatalf("hole byte %d = %#x", i, b)
		}
	}
	if f.Size() != int64(1234+len(data)) {
		t.Fatalf("size %d", f.Size())
	}
}

func conformAppend(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	f, err := fs.Open("/log", vfs.OCreate|vfs.OWronly|vfs.OAppend)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f.WriteAt([]byte(fmt.Sprintf("%03d\n", i)), 0)
	}
	if f.Size() != 80 {
		t.Fatalf("append size %d, want 80", f.Size())
	}
	f.Close()
	g, _ := fs.Open("/log", vfs.ORdonly)
	defer g.Close()
	buf := make([]byte, 8)
	g.ReadAt(buf, 72)
	if string(buf) != "018\n019\n" {
		t.Fatalf("tail %q", buf)
	}
}

func conformTruncate(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	f, _ := fs.Create("/tr")
	defer f.Close()
	f.WriteAt(bytes.Repeat([]byte{0xEE}, 2*4096), 0)
	f.Truncate(100)
	f.Truncate(8192)
	buf := make([]byte, 8192)
	f.ReadAt(buf, 0)
	for i := 0; i < 100; i++ {
		if buf[i] != 0xEE {
			t.Fatalf("kept byte %d lost", i)
		}
	}
	for i := 100; i < 8192; i++ {
		if buf[i] != 0 {
			t.Fatalf("stale byte %d = %#x after truncate+extend", i, buf[i])
		}
	}
}

func conformNamespace(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	if err := fs.Mkdir("/ns"); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/ns/a")
	f.WriteAt([]byte("v"), 0)
	f.Close()
	if err := fs.Rename("/ns/a", "/ns/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/ns/a"); err != vfs.ErrNotExist {
		t.Fatalf("stat old = %v", err)
	}
	ents, err := fs.ReadDir("/ns")
	if err != nil || len(ents) != 1 || ents[0].Name != "b" {
		t.Fatalf("readdir %v %v", ents, err)
	}
	if err := fs.Rmdir("/ns"); err != vfs.ErrNotEmpty {
		t.Fatalf("rmdir non-empty = %v", err)
	}
	if err := fs.Unlink("/ns/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/ns"); err != nil {
		t.Fatal(err)
	}
}

func conformFsync(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	f, _ := fs.Create("/fsync")
	defer f.Close()
	f.WriteAt([]byte("durable"), 0)
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	f.ReadAt(buf, 0)
	if string(buf) != "durable" {
		t.Fatalf("got %q", buf)
	}
}

func conformSparse(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	f, _ := fs.Create("/sparse")
	defer f.Close()
	// An offset in the indirect range for extfs (block > 10).
	const off = 300 * 4096
	f.WriteAt([]byte("far"), off)
	buf := make([]byte, 3)
	f.ReadAt(buf, off)
	if string(buf) != "far" {
		t.Fatalf("got %q", buf)
	}
	mid := make([]byte, 64)
	f.ReadAt(mid, off/2)
	for _, b := range mid {
		if b != 0 {
			t.Fatal("sparse middle not zero")
		}
	}
}

func conformOverwrite(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	f, _ := fs.Create("/ow")
	defer f.Close()
	f.WriteAt(bytes.Repeat([]byte{0x11}, 4096), 0)
	f.Fsync()
	f.WriteAt(bytes.Repeat([]byte{0x22}, 128), 1000)
	f.WriteAt(bytes.Repeat([]byte{0x33}, 64), 1032)
	buf := make([]byte, 4096)
	f.ReadAt(buf, 0)
	for i := 0; i < 4096; i++ {
		want := byte(0x11)
		switch {
		case i >= 1032 && i < 1096:
			want = 0x33
		case i >= 1000 && i < 1128:
			want = 0x22
		}
		if buf[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, buf[i], want)
		}
	}
}
