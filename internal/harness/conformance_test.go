package harness

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"hinfs/internal/vfs"
)

// TestConformance runs one behavioural suite against every system under
// test: the same semantics must hold whether the data path is a DRAM
// write buffer, direct NVMM access, or a page cache over a block device.
func TestConformance(t *testing.T) {
	systems := []System{HiNFS, HiNFSNCLFW, HiNFSWB, PMFS, EXT4DAX, EXT2NVMMBD, EXT4NVMMBD}
	for _, sys := range systems {
		t.Run(string(sys), func(t *testing.T) {
			cfg := Config{
				DeviceSize:      96 << 20,
				WriteLatency:    time.Nanosecond,
				ReadLatency:     time.Nanosecond,
				SyscallOverhead: time.Nanosecond,
				BlockOverhead:   time.Nanosecond,
				TimeScale:       1,
			}
			inst, err := NewInstance(sys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			fs := inst.FS
			conformRoundTrip(t, fs)
			conformAppend(t, fs)
			conformTruncate(t, fs)
			conformNamespace(t, fs)
			conformFsync(t, fs)
			conformSparse(t, fs)
			conformOverwrite(t, fs)
		})
	}
}

func conformRoundTrip(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	f, err := fs.Create("/rt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, 3*4096+357)
	for i := range data {
		data[i] = byte(i*13 + 7)
	}
	if n, err := f.WriteAt(data, 1234); err != nil || n != len(data) {
		t.Fatalf("write %d %v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := f.ReadAt(got, 1234); err != nil || n != len(got) {
		t.Fatalf("read %d %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	// Hole reads zero.
	hole := make([]byte, 1234)
	f.ReadAt(hole, 0)
	for i, b := range hole {
		if b != 0 {
			t.Fatalf("hole byte %d = %#x", i, b)
		}
	}
	if f.Size() != int64(1234+len(data)) {
		t.Fatalf("size %d", f.Size())
	}
}

func conformAppend(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	f, err := fs.Open("/log", vfs.OCreate|vfs.OWronly|vfs.OAppend)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f.WriteAt([]byte(fmt.Sprintf("%03d\n", i)), 0)
	}
	if f.Size() != 80 {
		t.Fatalf("append size %d, want 80", f.Size())
	}
	f.Close()
	g, _ := fs.Open("/log", vfs.ORdonly)
	defer g.Close()
	buf := make([]byte, 8)
	g.ReadAt(buf, 72)
	if string(buf) != "018\n019\n" {
		t.Fatalf("tail %q", buf)
	}
}

func conformTruncate(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	f, _ := fs.Create("/tr")
	defer f.Close()
	f.WriteAt(bytes.Repeat([]byte{0xEE}, 2*4096), 0)
	f.Truncate(100)
	f.Truncate(8192)
	buf := make([]byte, 8192)
	f.ReadAt(buf, 0)
	for i := 0; i < 100; i++ {
		if buf[i] != 0xEE {
			t.Fatalf("kept byte %d lost", i)
		}
	}
	for i := 100; i < 8192; i++ {
		if buf[i] != 0 {
			t.Fatalf("stale byte %d = %#x after truncate+extend", i, buf[i])
		}
	}
}

func conformNamespace(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	if err := fs.Mkdir("/ns"); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/ns/a")
	f.WriteAt([]byte("v"), 0)
	f.Close()
	if err := fs.Rename("/ns/a", "/ns/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/ns/a"); err != vfs.ErrNotExist {
		t.Fatalf("stat old = %v", err)
	}
	ents, err := fs.ReadDir("/ns")
	if err != nil || len(ents) != 1 || ents[0].Name != "b" {
		t.Fatalf("readdir %v %v", ents, err)
	}
	if err := fs.Rmdir("/ns"); err != vfs.ErrNotEmpty {
		t.Fatalf("rmdir non-empty = %v", err)
	}
	if err := fs.Unlink("/ns/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/ns"); err != nil {
		t.Fatal(err)
	}
}

func conformFsync(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	f, _ := fs.Create("/fsync")
	defer f.Close()
	f.WriteAt([]byte("durable"), 0)
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	f.ReadAt(buf, 0)
	if string(buf) != "durable" {
		t.Fatalf("got %q", buf)
	}
}

func conformSparse(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	f, _ := fs.Create("/sparse")
	defer f.Close()
	// An offset in the indirect range for extfs (block > 10).
	const off = 300 * 4096
	f.WriteAt([]byte("far"), off)
	buf := make([]byte, 3)
	f.ReadAt(buf, off)
	if string(buf) != "far" {
		t.Fatalf("got %q", buf)
	}
	mid := make([]byte, 64)
	f.ReadAt(mid, off/2)
	for _, b := range mid {
		if b != 0 {
			t.Fatal("sparse middle not zero")
		}
	}
}

func conformOverwrite(t *testing.T, fs vfs.FileSystem) {
	t.Helper()
	f, _ := fs.Create("/ow")
	defer f.Close()
	f.WriteAt(bytes.Repeat([]byte{0x11}, 4096), 0)
	f.Fsync()
	f.WriteAt(bytes.Repeat([]byte{0x22}, 128), 1000)
	f.WriteAt(bytes.Repeat([]byte{0x33}, 64), 1032)
	buf := make([]byte, 4096)
	f.ReadAt(buf, 0)
	for i := 0; i < 4096; i++ {
		want := byte(0x11)
		switch {
		case i >= 1032 && i < 1096:
			want = 0x33
		case i >= 1000 && i < 1128:
			want = 0x22
		}
		if buf[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, buf[i], want)
		}
	}
}
