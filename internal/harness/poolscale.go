package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"hinfs/internal/buffer"
	"hinfs/internal/cacheline"
	"hinfs/internal/clock"
	"hinfs/internal/nvmm"
)

// poolScaleThreads is the goroutine sweep of the pool scaling report.
func poolScaleThreads(quick bool) []int {
	if quick {
		return []int{1, 8}
	}
	return []int{1, 2, 4, 8, 16}
}

// PoolScaling measures DRAM write-buffer lock scaling in isolation: a
// pure write-hit workload (every write finds its block in DRAM, so no
// device I/O and no eviction) hammered by N goroutines, on a single-lock
// pool (Shards: 1) versus a sharded one. It reports ops/s, the sharded
// speedup, foreground stall time and background writeback batches — the
// multi-thread half of Fig. 13's scaling story, reduced to the buffer
// itself.
//
// GOMAXPROCS is raised to the largest thread count for the duration of the
// sweep (and restored), so the goroutines can actually contend. The
// speedup column needs >= 2 physical cores to move: on a single-core host
// threads time-slice, the global lock is almost never contended, and both
// columns coincide.
func PoolScaling(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	threads := poolScaleThreads(o.Quick)
	if o.Threads > 0 {
		threads = []int{o.Threads}
	}
	ops := o.Ops
	if ops == 0 {
		ops = 200000
	}
	maxThreads := threads[len(threads)-1]
	prev := runtime.GOMAXPROCS(0)
	if maxThreads > prev {
		runtime.GOMAXPROCS(maxThreads)
		defer runtime.GOMAXPROCS(prev)
	}

	fig := &Figure{Table: Table{
		Title: "Pool scaling: write-hit ops/s, single-lock vs sharded DRAM buffer",
		Note: fmt.Sprintf("%d ops/goroutine, 64 B write hits, zero-latency device (software path only). speedup = sharded/single-lock.",
			ops),
		Header: []string{"goroutines", "single-lock", "sharded", "shards", "speedup",
			"stall-ms(1)", "stall-ms(n)", "wb-batches(n)"},
	}}
	for _, n := range threads {
		single, sstall, _, err := poolScaleRun(1, n, ops)
		if err != nil {
			return nil, err
		}
		sharded, nstall, st, err := poolScaleRun(0, n, ops)
		if err != nil {
			return nil, err
		}
		fig.Table.Rows = append(fig.Table.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", single),
			fmt.Sprintf("%.0f", sharded),
			fmt.Sprintf("%d", len(st.Shards)),
			ratio(sharded, single),
			fmt.Sprintf("%.1f", float64(sstall)/1e6),
			fmt.Sprintf("%.1f", float64(nstall)/1e6),
			fmt.Sprintf("%d", st.WritebackBatches),
		})
		fig.put(fmt.Sprintf("%d/single", n), single)
		fig.put(fmt.Sprintf("%d/sharded", n), sharded)
	}
	return fig, nil
}

// poolScaleRun executes the write-hit workload on a fresh pool and returns
// ops/s, cumulative stall nanos and the final pool stats.
func poolScaleRun(shards, goroutines, opsPer int) (float64, int64, buffer.Stats, error) {
	dev, err := nvmm.New(nvmm.Config{Size: 64 << 20})
	if err != nil {
		return 0, 0, buffer.Stats{}, err
	}
	pool := buffer.NewPool(dev, clock.Real{}, buffer.Config{
		Blocks: 8192, Shards: shards, CLFW: true})
	defer pool.Close()

	const blocksPer = 64
	fbs := make([]*buffer.FileBuf, goroutines)
	addr := func(g int, blk int64) int64 {
		return int64(1<<20) + (int64(g)*blocksPer+blk)*buffer.BlockSize
	}
	line := make([]byte, cacheline.Size)
	for g := range fbs {
		fbs[g] = pool.NewFile()
		for blk := int64(0); blk < blocksPer; blk++ {
			fbs[g].Write(blk, 0, line, addr(g, blk), false)
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fb := fbs[g]
			buf := make([]byte, cacheline.Size)
			for i := 0; i < opsPer; i++ {
				blk := int64(i % blocksPer)
				off := (i % cacheline.PerBlock) * cacheline.Size
				fb.Write(blk, off, buf, addr(g, blk), true)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := pool.Stats()
	opsPerSec := float64(goroutines*opsPer) / elapsed.Seconds()
	return opsPerSec, st.StallNanos, st, nil
}
