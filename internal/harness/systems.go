// Package harness assembles the systems under test and regenerates every
// table and figure of the paper's evaluation (§5). Each figure has a
// FigureN function returning a formatted table plus the raw series, so
// the same code backs the hinfs-bench CLI, the root-level Go benchmarks,
// and EXPERIMENTS.md.
package harness

import (
	"fmt"
	"time"

	"hinfs/internal/blockdev"
	"hinfs/internal/buffer"
	"hinfs/internal/core"
	"hinfs/internal/extfs"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
	"hinfs/internal/obs/flight"
	"hinfs/internal/pmfs"
	"hinfs/internal/vfs"
)

// System identifies a file system under test (paper Table 3 plus the
// HiNFS variants).
type System string

// The systems of the evaluation.
const (
	HiNFS      System = "hinfs"
	HiNFSNCLFW System = "hinfs-nclfw"
	HiNFSWB    System = "hinfs-wb"
	PMFS       System = "pmfs"
	EXT4DAX    System = "ext4-dax"
	EXT2NVMMBD System = "ext2-nvmmbd"
	EXT4NVMMBD System = "ext4-nvmmbd"
)

// AllBaselines is the five-system lineup of Figs. 7 and 8.
var AllBaselines = []System{HiNFS, PMFS, EXT4DAX, EXT2NVMMBD, EXT4NVMMBD}

// TraceSystems is the six-system lineup of Figs. 12 and 13.
var TraceSystems = []System{HiNFS, HiNFSWB, PMFS, EXT4DAX, EXT2NVMMBD, EXT4NVMMBD}

// Config describes the experimental environment (paper Table 2, scaled).
type Config struct {
	// DeviceSize is the emulated NVMM capacity (default 256 MB).
	DeviceSize int64
	// WriteLatency is the NVMM write latency per cacheline (default 200 ns).
	WriteLatency time.Duration
	// ReadLatency models the per-cacheline cost of copying from NVMM to
	// the user buffer (default 10 ns). The paper's emulator adds no read
	// latency because its reads run at real memcpy speed; here delays are
	// time-scaled, so an explicit copy cost keeps the read:write time
	// ratio at the paper's scale.
	ReadLatency time.Duration
	// WriteBandwidth caps NVMM write bandwidth (default 1 GB/s).
	WriteBandwidth int64
	// BufferBlocks is HiNFS's DRAM buffer capacity (default 4864 blocks =
	// 19 MB ≈ 0.4× the fileserver dataset, the paper's 2 GB : 5 GB ratio).
	BufferBlocks int
	// BufferShards is the number of independent DRAM buffer shards
	// (0 = one per GOMAXPROCS, capped by pool size; see buffer.Config).
	BufferShards int
	// CachePages is the page cache size for the NVMMBD baselines (default
	// 4096 pages = 16 MB ≈ 1/3 of the fileserver dataset; at the paper's
	// scale the sustained write stream far exceeds what the 3 GB system
	// memory can hold dirty, so the cache must be small relative to the
	// run's write volume for the same steady-state to appear).
	CachePages int
	// BlockOverhead is the per-request generic block layer cost: bio
	// allocation, queueing, submission and completion (default 12 µs,
	// in line with Linux 3.x block-layer measurements on RAM-backed
	// devices, which the paper's NVMMBD modifies).
	BlockOverhead time.Duration
	// SyscallOverhead is charged on every file operation to model the
	// user/kernel crossing and VFS dispatch the paper's "Others" category
	// contains (default 1.5 µs).
	SyscallOverhead time.Duration
	// MaxInodes bounds the inode tables (default 16384).
	MaxInodes int64
	// TimeScale multiplies every emulated delay (default 16). Scaling makes
	// delays long enough to sleep through, so emulated device time overlaps
	// across goroutines even on machines with few cores; every figure
	// reports ratios, which scaling preserves. Set 1 for real-time scale.
	TimeScale float64
	// FlightBlocks reserves an NVMM flight-recorder region of this many
	// 4 KiB blocks at format time (0 = none). Applies to the HiNFS
	// variants and PMFS; the recorder is exposed as Instance.Flight for
	// wiring into a server front-end (server.Config.Flight).
	FlightBlocks int64
	// Observe attaches an obs.Collector to the instance: op-class
	// latency histograms at the VFS boundary (all systems), decision-path
	// histograms and spans inside HiNFS, and device flush latency. The
	// collector is registered in obs.Default (for -debug-addr scrapes)
	// and snapshotted into RunResult.Obs. Off by default.
	Observe bool
	// TraceSpans bounds the span ring attached to the collector when
	// Observe is set (0 = no tracer).
	TraceSpans int
}

// Fill applies defaults.
func (c *Config) Fill() {
	if c.DeviceSize == 0 {
		c.DeviceSize = 256 << 20
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = 200 * time.Nanosecond
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = 10 * time.Nanosecond
	}
	if c.WriteBandwidth == 0 {
		c.WriteBandwidth = 1 << 30
	}
	if c.BufferBlocks == 0 {
		c.BufferBlocks = 4864
	}
	if c.CachePages == 0 {
		c.CachePages = 4096
	}
	if c.BlockOverhead == 0 {
		c.BlockOverhead = 12 * time.Microsecond
	}
	if c.SyscallOverhead == 0 {
		c.SyscallOverhead = 1500 * time.Nanosecond
	}
	if c.MaxInodes == 0 {
		c.MaxInodes = 16384
	}
	if c.TimeScale == 0 {
		c.TimeScale = 16
	}
}

// Instance is a mounted system under test.
type Instance struct {
	System System
	FS     vfs.FileSystem
	Dev    *nvmm.Device
	// HiNFS is non-nil for the HiNFS variants (stats access).
	HiNFS *core.FS
	// Ext is non-nil for the extfs-based systems.
	Ext *extfs.FS
	// Obs is the instance's collector (nil unless Config.Observe).
	Obs *obs.Collector
	// Flight is the NVMM flight recorder (nil unless Config.FlightBlocks
	// was set and the system persists one — HiNFS variants and PMFS).
	Flight *flight.Recorder
}

// NewInstance formats a fresh emulated device and mounts the requested
// system on it.
func NewInstance(sys System, cfg Config) (*Instance, error) {
	cfg.Fill()
	dev, err := nvmm.New(nvmm.Config{
		Size:           cfg.DeviceSize,
		WriteLatency:   cfg.WriteLatency,
		ReadLatency:    cfg.ReadLatency,
		WriteBandwidth: cfg.WriteBandwidth,
		TimeScale:      cfg.TimeScale,
	})
	if err != nil {
		return nil, err
	}
	inst := &Instance{System: sys, Dev: dev}
	if cfg.Observe {
		inst.Obs = obs.New()
		if cfg.TraceSpans > 0 {
			inst.Obs.SetTracer(obs.NewTracer(cfg.TraceSpans))
		}
		dev.SetObs(inst.Obs)
		obs.Default.RegisterCollector(string(sys), inst.Obs)
	}
	switch sys {
	case HiNFS, HiNFSNCLFW, HiNFSWB:
		fs, err := core.Mkfs(dev, core.Options{
			BufferBlocks:        cfg.BufferBlocks,
			DisableCLFW:         sys == HiNFSNCLFW,
			DisableEagerChecker: sys == HiNFSWB,
			Buffer:              buffer.Config{Shards: cfg.BufferShards},
			PMFS:                pmfs.Options{MaxInodes: cfg.MaxInodes, FlightBlocks: cfg.FlightBlocks},
			Obs:                 inst.Obs,
		})
		if err != nil {
			return nil, err
		}
		inst.HiNFS = fs
		inst.FS = fs
		inst.Flight = fs.Flight()
	case PMFS:
		fs, err := pmfs.Mkfs(dev, pmfs.Options{MaxInodes: cfg.MaxInodes, FlightBlocks: cfg.FlightBlocks})
		if err != nil {
			return nil, err
		}
		fs.SetObs(inst.Obs)
		inst.FS = fs
		inst.Flight = fs.Flight()
	case EXT4DAX, EXT2NVMMBD, EXT4NVMMBD:
		fs, err := extfs.Mkfs(dev, extfs.Options{
			Journal:     sys != EXT2NVMMBD,
			DAX:         sys == EXT4DAX,
			MaxInodes:   cfg.MaxInodes,
			CachePages:  cfg.CachePages,
			BlockConfig: blockdev.Config{RequestOverhead: scaled(cfg.BlockOverhead, cfg.TimeScale)},
			Obs:         inst.Obs,
		})
		if err != nil {
			return nil, err
		}
		inst.Ext = fs
		inst.FS = fs
	default:
		return nil, fmt.Errorf("harness: unknown system %q", sys)
	}
	if cfg.SyscallOverhead > 0 {
		inst.FS = WithSyscallOverhead(inst.FS, scaled(cfg.SyscallOverhead, cfg.TimeScale))
	}
	// The obs wrapper sits outermost so op-class latencies include the
	// modelled syscall overhead — the user-visible latency.
	inst.FS = obs.WrapFS(inst.FS, inst.Obs)
	return inst, nil
}

// scaled multiplies a model delay by the time scale.
func scaled(d time.Duration, scale float64) time.Duration {
	return time.Duration(float64(d) * scale)
}

// Close unmounts the instance.
func (i *Instance) Close() error { return i.FS.Unmount() }

// spin waits out an emulated software delay.
func spin(d time.Duration) { nvmm.Wait(d) }

// WithSyscallOverhead wraps fs so every operation pays a fixed software
// cost, modelling syscall entry/exit and VFS dispatch (the dominant part
// of Fig. 1's "Others" at small I/O sizes).
func WithSyscallOverhead(fs vfs.FileSystem, d time.Duration) vfs.FileSystem {
	return &overheadFS{inner: fs, d: d}
}

type overheadFS struct {
	inner vfs.FileSystem
	d     time.Duration
}

func (o *overheadFS) Create(path string) (vfs.File, error) {
	spin(o.d)
	f, err := o.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &overheadFile{inner: f, d: o.d}, nil
}

func (o *overheadFS) Open(path string, flags int) (vfs.File, error) {
	spin(o.d)
	f, err := o.inner.Open(path, flags)
	if err != nil {
		return nil, err
	}
	return &overheadFile{inner: f, d: o.d}, nil
}

func (o *overheadFS) Mkdir(path string) error  { spin(o.d); return o.inner.Mkdir(path) }
func (o *overheadFS) Rmdir(path string) error  { spin(o.d); return o.inner.Rmdir(path) }
func (o *overheadFS) Unlink(path string) error { spin(o.d); return o.inner.Unlink(path) }
func (o *overheadFS) Rename(a, b string) error { spin(o.d); return o.inner.Rename(a, b) }
func (o *overheadFS) Stat(path string) (vfs.FileInfo, error) {
	spin(o.d)
	return o.inner.Stat(path)
}
func (o *overheadFS) ReadDir(path string) ([]vfs.DirEntry, error) {
	spin(o.d)
	return o.inner.ReadDir(path)
}
func (o *overheadFS) Sync() error    { spin(o.d); return o.inner.Sync() }
func (o *overheadFS) Unmount() error { return o.inner.Unmount() }

type overheadFile struct {
	inner vfs.File
	d     time.Duration
}

func (f *overheadFile) ReadAt(p []byte, off int64) (int, error) {
	spin(f.d)
	return f.inner.ReadAt(p, off)
}
func (f *overheadFile) WriteAt(p []byte, off int64) (int, error) {
	spin(f.d)
	return f.inner.WriteAt(p, off)
}
func (f *overheadFile) Fsync() error              { spin(f.d); return f.inner.Fsync() }
func (f *overheadFile) Truncate(size int64) error { spin(f.d); return f.inner.Truncate(size) }
func (f *overheadFile) Size() int64               { return f.inner.Size() }
func (f *overheadFile) Close() error              { spin(f.d); return f.inner.Close() }

// Unwrap exposes the decorated handle for vfs.FileAs capability probes.
func (f *overheadFile) Unwrap() vfs.File { return f.inner }
