package harness

import (
	"fmt"
	"sort"

	"hinfs/internal/crashtest"
)

// FigureChaosTraffic runs the chaos-under-traffic exploration as a
// reportable artifact: the multi-tenant wire server under concurrent
// client load, crashed at sampled persist events, each crash image
// remounted under several torn-cacheline permutations and cross-checked
// against the op schedule the clients know they issued. The headline
// numbers are the violation count (must be zero — the flight recorder's
// no-fence design may lose its tail but must never lie), the
// recorder-suffix accuracy (decoded records that join an issued op by
// trace ID), and the per-tenant damage attribution a post-mortem would
// hand an operator: ops recorded, acked-but-lost lazy writes, and bytes
// proven durable by surviving fsync records.
func FigureChaosTraffic(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	points, perms := 12, 3
	if o.Quick {
		points = 4
	}
	if o.Ops > 0 {
		points = o.Ops
	}
	tcfg := crashtest.TrafficConfig{
		Points: points,
		Perms:  perms,
	}
	if o.Threads > 0 {
		tcfg.ClientsPerTenant = o.Threads
	}
	rep, err := crashtest.ExploreTraffic(tcfg)
	if err != nil {
		return nil, err
	}

	accuracy := 1.0
	if rep.RecordsDecoded > 0 {
		accuracy = float64(rep.RecordsJoined) / float64(rep.RecordsDecoded)
	}
	fig := &Figure{Table: Table{
		Title: "Chaos under traffic: crash-survivable flight attribution over a live multi-tenant server",
		Note: fmt.Sprintf("%d crash runs x %d torn permutations; recovered rings joined to client op logs by trace ID; violations must be 0",
			rep.Points, perms),
		Header: []string{"metric", "value"},
	}}
	fig.Table.Rows = append(fig.Table.Rows,
		[]string{"crash cases verified", fmt.Sprint(rep.Cases)},
		[]string{"recovered mounts", fmt.Sprint(rep.Recovered)},
		[]string{"journal txs rolled back", fmt.Sprint(rep.RolledBack)},
		[]string{"wire ops issued", fmt.Sprint(rep.OpsIssued)},
		[]string{"flight records decoded", fmt.Sprint(rep.RecordsDecoded)},
		[]string{"recorder-suffix accuracy", fmt.Sprintf("%.1f%%", 100*accuracy)},
		[]string{"torn tail records", fmt.Sprint(rep.TornRecords)},
		[]string{"violations", fmt.Sprint(len(rep.Violations) + rep.Suppressed)},
	)
	fig.put("cases", float64(rep.Cases))
	fig.put("recovered", float64(rep.Recovered))
	fig.put("opsissued", float64(rep.OpsIssued))
	fig.put("decoded", float64(rep.RecordsDecoded))
	fig.put("accuracy", accuracy)
	fig.put("torn", float64(rep.TornRecords))
	fig.put("violations", float64(len(rep.Violations)+rep.Suppressed))

	// Damage attribution: what the recovered black box tells an operator
	// about each tenant's exposure across the crashes.
	dmg := Table{
		Title:  "Per-tenant damage attribution from the recovered flight rings",
		Note:   "writes-lost = acked appends whose bytes did not survive (legitimate lazy-write loss); synced = bytes proven durable by surviving fsync records",
		Header: []string{"tenant", "ops issued", "ops recorded", "writes lost", "synced (KiB)"},
	}
	names := make([]string, 0, len(rep.Tenants))
	for name := range rep.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := rep.Tenants[name]
		dmg.Rows = append(dmg.Rows, []string{
			name, fmt.Sprint(d.OpsIssued), fmt.Sprint(d.OpsRecorded),
			fmt.Sprint(d.WritesLost), fmt.Sprintf("%.1f", float64(d.SyncedBytes)/1024),
		})
		fig.put(name+"/opsissued", float64(d.OpsIssued))
		fig.put(name+"/opsrecorded", float64(d.OpsRecorded))
		fig.put(name+"/writeslost", float64(d.WritesLost))
		fig.put(name+"/syncedbytes", float64(d.SyncedBytes))
	}
	fig.Extra = append(fig.Extra, dmg)

	if n := len(rep.Violations) + rep.Suppressed; n > 0 {
		detail := rep.Violations[0].String()
		return fig, fmt.Errorf("chaostraffic: %d consistency violations (first: %s)", n, detail)
	}
	return fig, nil
}
