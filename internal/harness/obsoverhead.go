package harness

import (
	"fmt"

	"hinfs/internal/workload"
)

// obsOverheadBudget is the acceptable throughput cost of turning the
// observability stack on: collector histograms at the VFS boundary,
// decision-path histograms, device flush timing, and the goroutine-local
// OpCtx lookups on the deep paths. FigureObsOverhead fails the run when
// the measured overhead exceeds it, which is what makes the CI leg a
// regression gate rather than a report.
const obsOverheadBudget = 0.05

// FigureObsOverhead measures the cost of observability: the same fio
// workload on HiNFS with the collector off and on, interleaved over
// several rounds with best-of taken per leg (interleaving cancels
// machine drift; best-of cancels one-off scheduling noise). The workload
// is device-wait dominated, as real runs are, so the result reflects the
// instrumentation cost on the paths users actually run.
func FigureObsOverhead(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	// Legs must run long enough for sleep-granularity noise to average
	// out: at ~30k ops/s a 2-thread leg needs several thousand ops before
	// the on/off delta is signal rather than scheduler jitter.
	rounds, threads, ops := 3, 2, 6000
	if o.Quick {
		rounds, ops = 2, 4000
	}
	if o.Ops > 0 {
		ops = o.Ops
	}
	if o.Threads > 0 {
		threads = o.Threads
	}

	newWorkload := func() workload.Workload {
		return &workload.Fio{IOSize: 4 << 10, FileSize: 4 << 20, ReadPercent: 50}
	}
	best := map[bool]float64{}
	for r := 0; r < rounds; r++ {
		for _, observe := range []bool{false, true} {
			c := cfg
			c.Observe = observe
			res, err := RunWorkload(HiNFS, c, newWorkload(), threads, ops)
			if err != nil {
				return nil, err
			}
			if res.OpsPerSec > best[observe] {
				best[observe] = res.OpsPerSec
			}
		}
	}
	overhead := 0.0
	if best[false] > 0 {
		overhead = 1 - best[true]/best[false]
	}

	fig := &Figure{Table: Table{
		Title: "Observability overhead: identical fio load with the obs stack off vs on",
		Note: fmt.Sprintf("HiNFS, 4KiB R/W 1:1, %d threads x %d ops, best of %d interleaved rounds; budget %.0f%%",
			threads, ops, rounds, 100*obsOverheadBudget),
		Header: []string{"obs", "ops/s", "overhead"},
	}}
	fig.Table.Rows = append(fig.Table.Rows,
		[]string{"off", fmt.Sprintf("%.0f", best[false]), "-"},
		[]string{"on", fmt.Sprintf("%.0f", best[true]), fmt.Sprintf("%.1f%%", 100*overhead)},
	)
	fig.put("off/opsps", best[false])
	fig.put("on/opsps", best[true])
	fig.put("overhead", overhead)
	if overhead > obsOverheadBudget {
		return fig, fmt.Errorf("obsoverhead: observability costs %.1f%% throughput, budget %.0f%%",
			100*overhead, 100*obsOverheadBudget)
	}
	return fig, nil
}
