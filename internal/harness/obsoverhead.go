package harness

import (
	"fmt"

	"hinfs/internal/obs/flight"
	"hinfs/internal/workload"
)

// obsOverheadBudget is the acceptable throughput cost of turning the
// observability stack on: collector histograms at the VFS boundary,
// decision-path histograms, device flush timing, and the goroutine-local
// OpCtx lookups on the deep paths. The same budget covers the NVMM
// flight recorder stacked on top (one unfenced 128-byte NT append per
// op). FigureObsOverhead fails the run when any measured leg exceeds
// it, which is what makes the CI leg a regression gate rather than a
// report.
const obsOverheadBudget = 0.05

// obsOverheadLegs are the measured configurations: baseline, collector
// on, and collector plus the NVMM flight recorder (flight.WrapFS over
// the instance FS — the library recording path; the server path has the
// same per-op cost, one Recorder.Record call).
var obsOverheadLegs = []string{"off", "on", "on+flight"}

// FigureObsOverhead measures the cost of observability: the same fio
// workload on HiNFS with the collector off, on, and on with the flight
// recorder appending one NVMM record per op, interleaved over several
// rounds with best-of taken per leg (interleaving cancels machine
// drift; best-of cancels one-off scheduling noise). The workload is
// device-wait dominated, as real runs are, so the result reflects the
// instrumentation cost on the paths users actually run.
func FigureObsOverhead(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	// Legs must run long enough for sleep-granularity noise to average
	// out: at ~30k ops/s a 2-thread leg needs several thousand ops before
	// the on/off delta is signal rather than scheduler jitter.
	rounds, threads, ops := 3, 2, 6000
	if o.Quick {
		rounds, ops = 2, 4000
	}
	if o.Ops > 0 {
		ops = o.Ops
	}
	if o.Threads > 0 {
		threads = o.Threads
	}

	newWorkload := func() workload.Workload {
		return &workload.Fio{IOSize: 4 << 10, FileSize: 4 << 20, ReadPercent: 50}
	}
	best := map[string]float64{}
	for r := 0; r < rounds; r++ {
		for _, leg := range obsOverheadLegs {
			c := cfg
			c.Observe = leg != "off"
			if leg == "on+flight" {
				c.FlightBlocks = 32
			}
			inst, err := NewInstance(HiNFS, c)
			if err != nil {
				return nil, err
			}
			if leg == "on+flight" {
				if inst.Flight == nil {
					inst.Close()
					return nil, fmt.Errorf("obsoverhead: FlightBlocks set but instance has no recorder")
				}
				inst.FS = flight.WrapFS(inst.FS, inst.Flight, "bench")
			}
			res, err := RunOn(inst, newWorkload(), threads, ops)
			inst.Close()
			if err != nil {
				return nil, err
			}
			if res.OpsPerSec > best[leg] {
				best[leg] = res.OpsPerSec
			}
		}
	}
	overhead := func(leg string) float64 {
		if best["off"] <= 0 {
			return 0
		}
		return 1 - best[leg]/best["off"]
	}

	fig := &Figure{Table: Table{
		Title: "Observability overhead: identical fio load with the obs stack off, on, and on with the flight recorder",
		Note: fmt.Sprintf("HiNFS, 4KiB R/W 1:1, %d threads x %d ops, best of %d interleaved rounds; budget %.0f%% per leg",
			threads, ops, rounds, 100*obsOverheadBudget),
		Header: []string{"obs", "ops/s", "overhead"},
	}}
	fig.Table.Rows = append(fig.Table.Rows,
		[]string{"off", fmt.Sprintf("%.0f", best["off"]), "-"})
	for _, leg := range obsOverheadLegs[1:] {
		fig.Table.Rows = append(fig.Table.Rows,
			[]string{leg, fmt.Sprintf("%.0f", best[leg]), fmt.Sprintf("%.1f%%", 100*overhead(leg))})
	}
	fig.put("off/opsps", best["off"])
	fig.put("on/opsps", best["on"])
	fig.put("onflight/opsps", best["on+flight"])
	fig.put("overhead", overhead("on"))
	fig.put("overhead_flight", overhead("on+flight"))
	for _, leg := range obsOverheadLegs[1:] {
		if ov := overhead(leg); ov > obsOverheadBudget {
			return fig, fmt.Errorf("obsoverhead: leg %q costs %.1f%% throughput, budget %.0f%%",
				leg, 100*ov, 100*obsOverheadBudget)
		}
	}
	return fig, nil
}
