package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"

	"hinfs/internal/obs"
	"hinfs/internal/workload"
)

// SchemaVersion identifies the benchmark JSON document format. Bump it
// when a field changes meaning; hinfs-benchdiff refuses to compare
// documents with different schemas.
const SchemaVersion = "hinfs-bench/v1"

// Profile is the machine-readable resource profile of one figure point:
// everything needed to attribute a throughput number to the work it did.
// One Profile is attached per (system, workload) point wherever a figure
// generator has a RunResult in hand.
type Profile struct {
	// Ops/OpsPerSec/ElapsedNs mirror the headline throughput metric.
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	ElapsedNs int64   `json:"elapsed_ns"`
	// Logical workload traffic (what the benchmark asked for).
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	Fsyncs       int64 `json:"fsyncs"`
	// Device counter deltas over the run phase (what the NVMM saw).
	DevBytesRead    int64 `json:"dev_bytes_read"`
	DevBytesWritten int64 `json:"dev_bytes_written"`
	DevBytesFlushed int64 `json:"dev_bytes_flushed"`
	DevFlushes      int64 `json:"dev_flushes"`
	DevFences       int64 `json:"dev_fences"`
	// PoolStallNanos is foreground allocation stall time in the DRAM
	// write buffer (HiNFS systems; 0 otherwise).
	PoolStallNanos int64 `json:"pool_stall_nanos,omitempty"`
	// OpLatencies holds per-op-class latency percentiles, keyed by the
	// obs.OpClass names (present only when the run collected them).
	OpLatencies map[string]OpLat `json:"op_latencies,omitempty"`
	// Copies holds the copy-attribution counters, keyed by the
	// obs.CopyKind names (present only when the run collected them).
	Copies map[string]obs.CopyStat `json:"copies,omitempty"`
}

// OpLat summarizes one op class's latency distribution.
type OpLat struct {
	Count int64 `json:"count"`
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// NewProfile extracts a Profile from a RunResult.
func NewProfile(res RunResult) *Profile {
	p := &Profile{
		Ops:             res.Ops,
		OpsPerSec:       res.OpsPerSec,
		ElapsedNs:       res.Elapsed.Nanoseconds(),
		BytesRead:       res.BytesRead,
		BytesWritten:    res.BytesWritten,
		Fsyncs:          res.Fsyncs,
		DevBytesRead:    res.Dev.BytesRead,
		DevBytesWritten: res.Dev.BytesWritten,
		DevBytesFlushed: res.Dev.BytesFlushed,
		DevFlushes:      res.Dev.Flushes,
		DevFences:       res.Dev.Fences,
	}
	if res.Pool != nil {
		p.PoolStallNanos = res.Pool.StallNanos
	}
	if s := res.Obs; s != nil {
		if len(s.Ops) > 0 {
			p.OpLatencies = make(map[string]OpLat, len(s.Ops))
			for name, h := range s.Ops {
				p50, _, p99, _ := h.Percentiles()
				p.OpLatencies[name] = OpLat{Count: h.Count, P50Ns: p50, P99Ns: p99}
			}
		}
		if len(s.Copies) > 0 {
			p.Copies = make(map[string]obs.CopyStat, len(s.Copies))
			for name, cs := range s.Copies {
				p.Copies[name] = cs
			}
		}
	}
	return p
}

// putP attaches a point profile under key (same "row/column" convention
// as Series keys).
func (f *Figure) putP(key string, res RunResult) {
	if f.Profiles == nil {
		f.Profiles = make(map[string]*Profile)
	}
	f.Profiles[key] = NewProfile(res)
}

// Fingerprint records the environment a benchmark document was produced
// in, so two documents are compared only when comparable.
type Fingerprint struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// GitRev is the VCS revision baked into the binary ("unknown" when
	// built without VCS stamping, e.g. `go run` or a tarball build).
	GitRev string `json:"git_rev"`
	// Quick/Ops/Threads/Seed mirror the hinfs-bench flags that change
	// the measured op stream.
	Quick   bool   `json:"quick"`
	Ops     int    `json:"ops"`
	Threads int    `json:"threads"`
	Seed    uint64 `json:"seed"`
	// Emulation knobs (after defaulting).
	DeviceSize     int64   `json:"device_size"`
	WriteLatencyNs int64   `json:"write_latency_ns"`
	ReadLatencyNs  int64   `json:"read_latency_ns"`
	WriteBandwidth int64   `json:"write_bandwidth"`
	BufferBlocks   int     `json:"buffer_blocks"`
	BufferShards   int     `json:"buffer_shards"`
	CachePages     int     `json:"cache_pages"`
	TimeScale      float64 `json:"time_scale"`
}

// NewFingerprint captures the current environment plus the run
// parameters. cfg is defaulted first so the recorded knobs are the
// effective ones.
func NewFingerprint(cfg Config, o Opts) Fingerprint {
	cfg.Fill()
	return Fingerprint{
		Schema:         SchemaVersion,
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		GitRev:         gitRev(),
		Quick:          o.Quick,
		Ops:            o.Ops,
		Threads:        o.Threads,
		Seed:           workload.BaseSeed(),
		DeviceSize:     cfg.DeviceSize,
		WriteLatencyNs: cfg.WriteLatency.Nanoseconds(),
		ReadLatencyNs:  cfg.ReadLatency.Nanoseconds(),
		WriteBandwidth: cfg.WriteBandwidth,
		BufferBlocks:   cfg.BufferBlocks,
		BufferShards:   cfg.BufferShards,
		CachePages:     cfg.CachePages,
		TimeScale:      cfg.TimeScale,
	}
}

// gitRev returns the VCS revision stamped into the binary, or "unknown".
func gitRev() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return "unknown"
}

// BenchDoc is the canonical benchmark result document emitted by
// `hinfs-bench -json`: an environment fingerprint plus every regenerated
// figure with its raw series and per-point resource profiles.
type BenchDoc struct {
	Schema      string             `json:"schema"`
	Fingerprint Fingerprint        `json:"fingerprint"`
	Figures     map[string]*Figure `json:"figures"`
}

// NewBenchDoc creates an empty document for the given environment.
func NewBenchDoc(cfg Config, o Opts) *BenchDoc {
	return &BenchDoc{
		Schema:      SchemaVersion,
		Fingerprint: NewFingerprint(cfg, o),
		Figures:     make(map[string]*Figure),
	}
}

// Add records a regenerated figure under its hinfs-bench name.
func (d *BenchDoc) Add(name string, fig *Figure) { d.Figures[name] = fig }

// Marshal renders the document as indented JSON. Map keys are sorted by
// encoding/json, so the same measurements always produce the same bytes.
func (d *BenchDoc) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteFile emits the document to path.
func (d *BenchDoc) WriteFile(path string) error {
	out, err := d.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// ReadBenchDoc parses a benchmark document and validates its schema.
func ReadBenchDoc(path string) (*BenchDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d BenchDoc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, d.Schema, SchemaVersion)
	}
	return &d, nil
}
