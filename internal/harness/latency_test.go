package harness

import (
	"strings"
	"testing"

	"hinfs/internal/obs"
	"hinfs/internal/workload"
)

func TestFigureLatencyShape(t *testing.T) {
	fig, err := FigureLatency(fastCfg(), Opts{Quick: true, Ops: 60, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Percentile series for HiNFS and at least one baseline, per op class.
	for _, key := range []string{
		"hinfs/read/p50", "hinfs/write/p99", "hinfs/fsync/p999",
		"pmfs/read/p50", "pmfs/write/p99",
	} {
		if _, ok := fig.Series[key]; !ok {
			t.Errorf("series %q missing", key)
		}
	}
	// The write-path split: Varmail's fsync pressure populates both.
	if fig.Get("hinfs/eager-blocks")+fig.Get("hinfs/lazy-blocks") == 0 {
		t.Error("no write routing recorded")
	}
	if _, ok := fig.Series["hinfs/path/lazy-write/count"]; !ok {
		t.Error("lazy-write path series missing")
	}
	// Percentiles must be ordered within each series.
	for _, base := range []string{"hinfs/write", "pmfs/write"} {
		p50, p99 := fig.Get(base+"/p50"), fig.Get(base+"/p99")
		if p50 > p99 {
			t.Errorf("%s: p50 %v > p99 %v", base, p50, p99)
		}
	}
	out := fig.Table.String()
	for _, want := range []string{"p50(us)", "p999(us)", "hinfs", "pmfs", "eager", "lazy"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunResultObsSnapshot(t *testing.T) {
	cfg := fastCfg()
	cfg.Observe = true
	cfg.TraceSpans = 256
	res, err := RunWorkload(HiNFS, cfg,
		&workload.Fileserver{Files: 8, FileSize: 16 << 10, IOSize: 16 << 10}, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("Observe set but RunResult.Obs nil")
	}
	if res.Obs.Op(obs.OpWrite).Count == 0 {
		t.Fatal("no write latencies collected")
	}
	// The op-class hist sits outermost: latencies include the modelled
	// syscall overhead, so the minimum credible p50 is that overhead.
	if p50 := res.Obs.Op(obs.OpWrite).Quantile(0.5); p50 <= 0 {
		t.Fatalf("write p50 %d", p50)
	}
}

func TestObserveOffByDefault(t *testing.T) {
	res, err := RunWorkload(PMFS, fastCfg(),
		&workload.Fileserver{Files: 8, FileSize: 16 << 10, IOSize: 16 << 10}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs != nil {
		t.Fatal("Obs snapshot without Config.Observe")
	}
}
