package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DiffOptions tunes the noise model of a benchmark comparison.
type DiffOptions struct {
	// Tolerance is the default relative threshold: a series whose best
	// repeat deviates from the baseline by more than this fraction is
	// flagged (default 0.10).
	Tolerance float64
	// PerFigure overrides the tolerance for whole figures by name
	// (e.g. "7" → 0.5 for a noisy CI runner).
	PerFigure map[string]float64
	// PerSeries overrides the tolerance for single series, keyed
	// "figure:series". Takes precedence over PerFigure.
	PerSeries map[string]float64
}

func (o *DiffOptions) fill() {
	if o.Tolerance == 0 {
		o.Tolerance = 0.10
	}
}

// tol resolves the threshold for one series.
func (o *DiffOptions) tol(figure, series string) float64 {
	if t, ok := o.PerSeries[figure+":"+series]; ok {
		return t
	}
	if t, ok := o.PerFigure[figure]; ok {
		return t
	}
	return o.Tolerance
}

// DiffRow is one out-of-tolerance series.
type DiffRow struct {
	Figure string  `json:"figure"`
	Series string  `json:"series"`
	Base   float64 `json:"base"`
	// New is the best (least-deviating) repeat's value.
	New float64 `json:"new"`
	// Rel is (New-Base)/Base; ±Inf when the baseline is zero.
	Rel float64 `json:"rel"`
	// Tol is the threshold the row exceeded.
	Tol float64 `json:"tol"`
}

// DiffReport is the outcome of comparing benchmark documents.
type DiffReport struct {
	// Compared counts the series present in both documents.
	Compared int
	// Rows lists the series outside tolerance, sorted by figure/series.
	Rows []DiffRow
	// Missing lists "figure/series" present in the baseline but absent
	// from the new document — a silently dropped measurement fails the
	// gate just like a regression.
	Missing []string
	// Extra lists series only the new document has (informational: the
	// baseline needs regenerating to cover them).
	Extra []string
	// EnvDiffs describes fingerprint fields that differ (informational;
	// explains noise, does not fail the gate).
	EnvDiffs []string
	// Repeats is how many new documents were compared (min-of-N).
	Repeats int
}

// Regressed reports whether the gate should fail.
func (r *DiffReport) Regressed() bool {
	return len(r.Rows) > 0 || len(r.Missing) > 0
}

// Diff compares one or more repeat runs against a baseline document.
// For every series the repeat value closest to the baseline is the one
// judged (min-of-N): a transient stall in one repeat does not fail the
// gate if any repeat landed within tolerance. Schema compatibility is
// the caller's job (ReadBenchDoc enforces it on load).
func Diff(base *BenchDoc, runs []*BenchDoc, opts DiffOptions) *DiffReport {
	opts.fill()
	rep := &DiffReport{Repeats: len(runs)}
	for _, run := range runs {
		rep.EnvDiffs = mergeStrings(rep.EnvDiffs, fingerprintDiff(base.Fingerprint, run.Fingerprint))
	}
	for _, figName := range sortedKeys(base.Figures) {
		baseFig := base.Figures[figName]
		for _, series := range sortedKeys(baseFig.Series) {
			baseVal := baseFig.Series[series]
			best := math.Inf(1) // best absolute relative deviation
			bestVal := 0.0
			found := false
			for _, run := range runs {
				fig := run.Figures[figName]
				if fig == nil {
					continue
				}
				val, ok := fig.Series[series]
				if !ok {
					continue
				}
				rel := relDelta(baseVal, val)
				if !found || math.Abs(rel) < math.Abs(best) {
					best, bestVal = rel, val
				}
				found = true
			}
			if !found {
				rep.Missing = append(rep.Missing, figName+"/"+series)
				continue
			}
			rep.Compared++
			if t := opts.tol(figName, series); math.Abs(best) > t {
				rep.Rows = append(rep.Rows, DiffRow{
					Figure: figName, Series: series,
					Base: baseVal, New: bestVal, Rel: best, Tol: t,
				})
			}
		}
	}
	// Series the baseline does not know about.
	seen := map[string]bool{}
	for _, run := range runs {
		for figName, fig := range run.Figures {
			for series := range fig.Series {
				key := figName + "/" + series
				if seen[key] {
					continue
				}
				seen[key] = true
				if bf := base.Figures[figName]; bf == nil || !hasKey(bf.Series, series) {
					rep.Extra = append(rep.Extra, key)
				}
			}
		}
	}
	sort.Strings(rep.Extra)
	return rep
}

func hasKey(m map[string]float64, k string) bool { _, ok := m[k]; return ok }

// relDelta is (new-base)/base, with zero baselines mapped to 0 (both
// zero) or ±Inf (appeared from nothing — always out of tolerance).
func relDelta(base, val float64) float64 {
	if base == 0 {
		if val == 0 {
			return 0
		}
		return math.Inf(sign(val))
	}
	return (val - base) / base
}

func sign(f float64) int {
	if f < 0 {
		return -1
	}
	return 1
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func mergeStrings(dst, add []string) []string {
	have := map[string]bool{}
	for _, s := range dst {
		have[s] = true
	}
	for _, s := range add {
		if !have[s] {
			dst = append(dst, s)
			have[s] = true
		}
	}
	return dst
}

// fingerprintDiff lists fields that differ between two environments.
func fingerprintDiff(a, b Fingerprint) []string {
	var out []string
	add := func(field string, av, bv any) {
		if av != bv {
			out = append(out, fmt.Sprintf("%s: %v -> %v", field, av, bv))
		}
	}
	add("go_version", a.GoVersion, b.GoVersion)
	add("goos", a.GOOS, b.GOOS)
	add("goarch", a.GOARCH, b.GOARCH)
	add("gomaxprocs", a.GOMAXPROCS, b.GOMAXPROCS)
	add("git_rev", a.GitRev, b.GitRev)
	add("quick", a.Quick, b.Quick)
	add("ops", a.Ops, b.Ops)
	add("threads", a.Threads, b.Threads)
	add("seed", a.Seed, b.Seed)
	add("device_size", a.DeviceSize, b.DeviceSize)
	add("write_latency_ns", a.WriteLatencyNs, b.WriteLatencyNs)
	add("read_latency_ns", a.ReadLatencyNs, b.ReadLatencyNs)
	add("write_bandwidth", a.WriteBandwidth, b.WriteBandwidth)
	add("buffer_blocks", a.BufferBlocks, b.BufferBlocks)
	add("buffer_shards", a.BufferShards, b.BufferShards)
	add("cache_pages", a.CachePages, b.CachePages)
	add("time_scale", a.TimeScale, b.TimeScale)
	return out
}

// Markdown renders the report as a GitHub-flavoured delta table.
func (r *DiffReport) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## hinfs-bench diff\n\n")
	status := "PASS"
	if r.Regressed() {
		status = "FAIL"
	}
	repeats := ""
	if r.Repeats > 1 {
		repeats = fmt.Sprintf(", min of %d repeats", r.Repeats)
	}
	fmt.Fprintf(&b, "**%s** — %d series compared, %d outside tolerance, %d missing%s.\n\n",
		status, r.Compared, len(r.Rows), len(r.Missing), repeats)
	if len(r.Rows) > 0 {
		fmt.Fprintf(&b, "| figure | series | baseline | current | delta | tol |\n")
		fmt.Fprintf(&b, "|---|---|---:|---:|---:|---:|\n")
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | ±%.0f%% |\n",
				row.Figure, row.Series, fmtVal(row.Base), fmtVal(row.New),
				fmtRel(row.Rel), 100*row.Tol)
		}
		b.WriteString("\n")
	}
	if len(r.Missing) > 0 {
		fmt.Fprintf(&b, "Missing series (in baseline, not in current):\n\n")
		for _, m := range r.Missing {
			fmt.Fprintf(&b, "- `%s`\n", m)
		}
		b.WriteString("\n")
	}
	if len(r.Extra) > 0 {
		fmt.Fprintf(&b, "New series not in baseline (regenerate the baseline to cover them):\n\n")
		for _, e := range r.Extra {
			fmt.Fprintf(&b, "- `%s`\n", e)
		}
		b.WriteString("\n")
	}
	if len(r.EnvDiffs) > 0 {
		fmt.Fprintf(&b, "Environment differences (informational):\n\n")
		for _, d := range r.EnvDiffs {
			fmt.Fprintf(&b, "- %s\n", d)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func fmtVal(f float64) string {
	switch {
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return fmt.Sprintf("%.0f", f)
	default:
		return fmt.Sprintf("%.4g", f)
	}
}

func fmtRel(rel float64) string {
	if math.IsInf(rel, 1) {
		return "new"
	}
	if math.IsInf(rel, -1) {
		return "gone"
	}
	return fmt.Sprintf("%+.1f%%", 100*rel)
}
