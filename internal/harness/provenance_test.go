package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hinfs/internal/obs"
)

func sampleDoc() *BenchDoc {
	doc := NewBenchDoc(Config{}, Opts{Quick: true, Threads: 2})
	fig := &Figure{Table: Table{
		Title:  "Figure X",
		Note:   "round-trip fixture",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	}}
	fig.put("hinfs/fio", 1234.5)
	fig.Profiles = map[string]*Profile{
		"hinfs/fio": {
			Ops:             100,
			OpsPerSec:       1234.5,
			ElapsedNs:       81000000,
			BytesWritten:    1 << 20,
			DevBytesFlushed: 1 << 20,
			DevFlushes:      256,
			PoolStallNanos:  42,
			OpLatencies:     map[string]OpLat{"write": {Count: 100, P50Ns: 900, P99Ns: 4200}},
			Copies:          map[string]obs.CopyStat{"user-in": {Copies: 100, Bytes: 1 << 20}},
		},
	}
	doc.Add("7", fig)
	return doc
}

// TestBenchDocRoundTrip proves the JSON schema loses nothing: emit →
// parse → identical document, and identical bytes when re-emitted.
func TestBenchDocRoundTrip(t *testing.T) {
	doc := sampleDoc()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := doc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, got) {
		t.Fatalf("round-trip changed document:\nwant %+v\ngot  %+v", doc, got)
	}
	b1, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := got.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-marshalled bytes differ")
	}
}

// TestReadBenchDocRejectsBadSchema pins the schema gate.
func TestReadBenchDocRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"hinfs-bench/v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchDoc(path); err == nil {
		t.Fatal("schema v0 accepted")
	}
	if err := os.WriteFile(path, []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchDoc(path); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestFingerprintRecordsEffectiveKnobs checks defaults are resolved
// before recording, so two documents compare the knobs actually used.
func TestFingerprintRecordsEffectiveKnobs(t *testing.T) {
	fp := NewFingerprint(Config{}, Opts{})
	if fp.Schema != SchemaVersion {
		t.Errorf("schema = %q", fp.Schema)
	}
	if fp.DeviceSize != 256<<20 || fp.BufferBlocks != 4864 || fp.TimeScale != 16 {
		t.Errorf("defaults not resolved: %+v", fp)
	}
	if fp.GoVersion == "" || fp.GOOS == "" || fp.GitRev == "" {
		t.Errorf("environment not captured: %+v", fp)
	}
}
