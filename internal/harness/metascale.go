package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"hinfs/internal/nvmm"
	"hinfs/internal/pmfs"
	"hinfs/internal/vfs"
)

// metaScaleThreads is the goroutine sweep of the metadata scaling report.
func metaScaleThreads(quick bool) []int {
	if quick {
		return []int{1, 8}
	}
	return []int{1, 2, 4, 8, 16}
}

// metaScaleTimeScale is the delay multiplier of the metascale device. The
// metadata hot path persists 64 B cachelines (journal entries, dentries,
// inode records), and a single-line flush only becomes sleepable — and
// therefore overlappable across goroutines on a small host — once the
// scaled latency clears nvmm.Wait's spin threshold. 4096 × 200 ns ≈ 820 µs
// per line comfortably does; all columns report ratios, so the scale
// cancels out.
const metaScaleTimeScale = 4096

// MetadataScaling measures multicore metadata-path scaling in isolation:
// N goroutines each run a varmail-style create/write/fsync/unlink loop in
// a private directory on a bare PMFS instance, once with the pre-sharding
// metadata path (one global namespace lock, one journal lane, one
// allocator shard) and once with the sharded one (per-directory locks,
// journal lanes, allocator shards). The workload writes into a pre-grown
// per-goroutine file so the loop exercises the metadata structures, not
// block zeroing; see metaScaleRun.
//
// The device runs with unlimited write bandwidth (no writer-port queueing)
// and heavily scaled latency so that every flush is sleepable: with the
// serial namespace the flushes issued under the global lock serialize
// whole-sale, while the sharded path overlaps them across directories.
// This reproduces the multicore gap even on a single-core host; on real
// silicon the same gap comes from actual lock contention.
func MetadataScaling(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	threads := metaScaleThreads(o.Quick)
	if o.Threads > 0 {
		threads = []int{o.Threads}
	}
	ops := o.Ops
	if ops == 0 {
		ops = 48
	}
	maxThreads := threads[len(threads)-1]
	prev := runtime.GOMAXPROCS(0)
	if maxThreads > prev {
		runtime.GOMAXPROCS(maxThreads)
		defer runtime.GOMAXPROCS(prev)
	}

	fig := &Figure{Table: Table{
		Title: "Metadata scaling: create/write/fsync/unlink ops/s, serial vs sharded hot path",
		Note: fmt.Sprintf("%d loop iterations/goroutine (4 ops each), bare PMFS, latency x%d so flushes overlap. serial = one namespace lock + 1 journal lane + 1 alloc shard. speedup = sharded/serial.",
			ops, metaScaleTimeScale),
		Header: []string{"goroutines", "serial", "sharded", "speedup",
			"lanes", "shards", "lane-cont", "dir-cont", "steals"},
	}}
	for _, n := range threads {
		serial, _, err := metaScaleRun(cfg, true, n, ops)
		if err != nil {
			return nil, err
		}
		sharded, st, err := metaScaleRun(cfg, false, n, ops)
		if err != nil {
			return nil, err
		}
		fig.Table.Rows = append(fig.Table.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", serial),
			fmt.Sprintf("%.0f", sharded),
			ratio(sharded, serial),
			fmt.Sprintf("%d", st.lanes),
			fmt.Sprintf("%d", st.shards),
			fmt.Sprintf("%d", st.laneCont),
			fmt.Sprintf("%d", st.dirCont),
			fmt.Sprintf("%d", st.steals),
		})
		fig.put(fmt.Sprintf("%d/serial", n), serial)
		fig.put(fmt.Sprintf("%d/sharded", n), sharded)
	}
	return fig, nil
}

// metaScaleStats snapshots the contention counters after a run.
type metaScaleStats struct {
	lanes    int
	shards   int
	laneCont int64
	dirCont  int64
	steals   int64
}

// metaScaleRun executes the metadata loop on a fresh PMFS instance and
// returns ops/s (4 ops per loop iteration) plus the contention counters.
//
// Each goroutine works in its own directory: it creates a scratch file,
// appends one cacheline to a pre-grown log file, fsyncs the log, and
// unlinks the scratch file. The log file's block is allocated during
// setup, so the measured loop performs no block zeroing — its cost is
// purely dentries, inode records, the journal and the allocator bitmap,
// which is the path this report isolates.
func metaScaleRun(cfg Config, serial bool, goroutines, opsPer int) (float64, metaScaleStats, error) {
	dev, err := nvmm.New(nvmm.Config{
		Size:         64 << 20,
		WriteLatency: cfg.WriteLatency,
		TimeScale:    metaScaleTimeScale,
		// WriteBandwidth left 0: no writer-port queueing, so the report
		// isolates software-path scaling from the device bandwidth cap.
	})
	if err != nil {
		return 0, metaScaleStats{}, err
	}
	// Small journal and inode table: Mkfs flushes both areas in full, and
	// at the metascale latency multiplier every formatted megabyte costs
	// real seconds of emulated flush time.
	popts := pmfs.Options{JournalBlocks: 32, MaxInodes: 1024}
	if serial {
		popts.SerialNamespace = true
		popts.JournalLanes = 1
		popts.AllocShards = 1
	}
	fs, err := pmfs.Mkfs(dev, popts)
	if err != nil {
		return 0, metaScaleStats{}, err
	}

	type worker struct {
		dir string
		log vfs.File
	}
	workers := make([]worker, goroutines)
	line := make([]byte, 64)
	for g := range workers {
		dir := fmt.Sprintf("/g%d", g)
		if err := fs.Mkdir(dir); err != nil {
			return 0, metaScaleStats{}, err
		}
		f, err := fs.Create(dir + "/log")
		if err != nil {
			return 0, metaScaleStats{}, err
		}
		if _, err := f.WriteAt(line, 0); err != nil {
			return 0, metaScaleStats{}, err
		}
		if err := f.Fsync(); err != nil {
			return 0, metaScaleStats{}, err
		}
		workers[g] = worker{dir: dir, log: f}
	}

	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := workers[g]
			buf := make([]byte, 64)
			for i := 0; i < opsPer; i++ {
				name := fmt.Sprintf("%s/f%d", w.dir, i)
				f, err := fs.Create(name)
				if err != nil {
					errs[g] = err
					return
				}
				if err := f.Close(); err != nil {
					errs[g] = err
					return
				}
				if _, err := w.log.WriteAt(buf, 0); err != nil {
					errs[g] = err
					return
				}
				if err := w.log.Fsync(); err != nil {
					errs[g] = err
					return
				}
				if err := fs.Unlink(name); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, metaScaleStats{}, err
		}
	}
	js := fs.Journal().Stats()
	as := fs.AllocStats()
	st := metaScaleStats{
		lanes:    js.Lanes,
		shards:   as.Shards,
		laneCont: js.LaneContended,
		dirCont:  fs.DirLockContended(),
		steals:   as.Steals,
	}
	for _, w := range workers {
		if err := w.log.Close(); err != nil {
			return 0, st, err
		}
	}
	if err := fs.Unmount(); err != nil {
		return 0, st, err
	}
	opsPerSec := float64(goroutines*opsPer*4) / elapsed.Seconds()
	return opsPerSec, st, nil
}
