package harness

import (
	"fmt"
	"time"

	"hinfs/internal/trace"
	"hinfs/internal/workload"
)

// Opts tunes figure regeneration cost. Zero values take per-figure
// defaults sized to finish in seconds.
type Opts struct {
	// Ops scales the per-thread operation counts (default per figure).
	Ops int
	// Threads overrides the thread count where a figure fixes one.
	Threads int
	// Quick trims sweeps to fewer points.
	Quick bool
}

// Figure holds a regenerated paper artifact: the printable table, the
// raw series keyed "row/column" for programmatic checks, and — where the
// generator has per-point RunResults — the machine-readable resource
// profiles backing each series value.
type Figure struct {
	Table    Table
	Series   map[string]float64
	Profiles map[string]*Profile `json:"Profiles,omitempty"`
	// Extra holds secondary tables some figures produce alongside the main
	// one (e.g. the per-tenant stage-attribution breakdown of -fig tenants).
	Extra []Table `json:"Extra,omitempty"`
}

func (f *Figure) put(key string, v float64) {
	if f.Series == nil {
		f.Series = make(map[string]float64)
	}
	f.Series[key] = v
}

// Get returns a series value.
func (f *Figure) Get(key string) float64 { return f.Series[key] }

// fig1Sizes are the I/O sizes of the paper's Figure 1.
func fig1Sizes(quick bool) []int {
	if quick {
		return []int{64, 4 << 10, 1 << 20}
	}
	return []int{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 1 << 20}
}

// Figure1 regenerates the fio time breakdown on PMFS (§2.2): the share of
// run time spent copying to/from NVMM (Write/Read Access) versus
// everything else, across I/O sizes, at a 1:2 read/write ratio.
func Figure1(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	fig := &Figure{Table: Table{
		Title:  "Figure 1: Time breakdown of running the fio benchmark on PMFS",
		Note:   "R:W = 1:2, single thread. Paper: Write Access >80% at >=4KB, Others dominates at 64B.",
		Header: []string{"io-size", "read-access", "write-access", "others", "elapsed"},
	}}
	for _, ioSize := range fig1Sizes(o.Quick) {
		ops := o.Ops
		if ops == 0 {
			// Target roughly 48 MB of traffic per point, bounded.
			ops = int(48 << 20 / ioSize)
			if ops > 200000 {
				ops = 200000
			}
			if ops < 64 {
				ops = 64
			}
		}
		w := &workload.Fio{IOSize: ioSize, FileSize: 32 << 20, ReadPercent: 33}
		res, err := RunWorkload(PMFS, cfg, w, 1, ops)
		if err != nil {
			return nil, err
		}
		other := res.Elapsed - res.Dev.ReadTime - res.Dev.WriteTime
		if other < 0 {
			other = 0
		}
		label := sizeLabel(ioSize)
		fig.Table.Rows = append(fig.Table.Rows, []string{
			label,
			pct(res.Dev.ReadTime, res.Elapsed),
			pct(res.Dev.WriteTime, res.Elapsed),
			pct(other, res.Elapsed),
			res.Elapsed.Round(time.Millisecond).String(),
		})
		fig.put(label+"/read", frac(res.Dev.ReadTime, res.Elapsed))
		fig.put(label+"/write", frac(res.Dev.WriteTime, res.Elapsed))
		fig.put(label+"/others", frac(other, res.Elapsed))
		fig.putP(label, res)
	}
	return fig, nil
}

func frac(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// fig2Workloads lists the Figure-2 workloads with their generators.
func fig2Workloads() []workload.Workload {
	return []workload.Workload{
		&workload.Fileserver{},
		&workload.Webserver{},
		&workload.Webproxy{},
		&workload.Varmail{},
		&workload.Postmark{},
		&workload.TPCC{},
		&workload.KernelMake{},
	}
}

// Figure2 regenerates the percentage of fsync bytes per workload: of all
// bytes written, how many were still dirty when an fsync persisted them.
func Figure2(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	// Persistence behaviour is system-independent; measure on HiNFS with a
	// cheap device so the figure regenerates fast.
	cfg.WriteLatency = time.Nanosecond
	cfg.SyscallOverhead = time.Nanosecond
	fig := &Figure{Table: Table{
		Title:  "Figure 2: Percentage of fsync bytes per workload",
		Note:   "Paper: TPC-C >90%, LASR 0%, desktop traces moderate.",
		Header: []string{"workload", "written-MB", "fsync-MB", "fsync-bytes"},
	}}
	ops := o.Ops
	if ops == 0 {
		ops = 600
	}
	addRow := func(name string, written, fsynced int64) {
		p := 0.0
		if written > 0 {
			p = 100 * float64(fsynced) / float64(written)
		}
		fig.Table.Rows = append(fig.Table.Rows, []string{
			name, mib(written), mib(fsynced), fmt.Sprintf("%.1f%%", p),
		})
		fig.put(name, p)
	}
	for _, w := range fig2Workloads() {
		res, err := RunWorkload(HiNFS, cfg, w, 2, ops)
		if err != nil {
			return nil, err
		}
		addRow(w.Name(), res.BytesWritten, res.FsyncBytes)
		fig.putP(w.Name(), res)
	}
	for _, name := range []string{"usr0", "usr1", "lasr", "facebook"} {
		tr, err := trace.ByName(name, ops*20)
		if err != nil {
			return nil, err
		}
		inst, err := NewInstance(HiNFS, cfg)
		if err != nil {
			return nil, err
		}
		if err := tr.Prepare(inst.FS); err != nil {
			inst.Close()
			return nil, err
		}
		res, err := tr.Replay(inst.FS)
		inst.Close()
		if err != nil {
			return nil, err
		}
		addRow(name, res.BytesWritten, res.FsyncBytes)
	}
	return fig, nil
}

// Figure6 regenerates the Buffer Benefit Model accuracy measurement for
// the five synchronization-containing workloads.
func Figure6(cfg Config, o Opts) (*Figure, error) {
	cfg.Fill()
	fig := &Figure{Table: Table{
		Title:  "Figure 6: Accuracy rate of the Buffer Benefit Model",
		Note:   "Paper: close to 90% even in the worst case (Usr0).",
		Header: []string{"workload", "decisions", "accurate", "accuracy"},
	}}
	ops := o.Ops
	if ops == 0 {
		ops = 800
	}
	addRow := func(name string, acc, total int64) {
		p := 0.0
		if total > 0 {
			p = 100 * float64(acc) / float64(total)
		}
		fig.Table.Rows = append(fig.Table.Rows, []string{
			name, fmt.Sprintf("%d", total), fmt.Sprintf("%d", acc), fmt.Sprintf("%.1f%%", p),
		})
		fig.put(name, p)
	}
	threads := o.Threads
	if threads == 0 {
		threads = 2
	}
	// Generator-driven sync workloads.
	for _, w := range []workload.Workload{&workload.Varmail{}, &workload.TPCC{}} {
		inst, err := NewInstance(HiNFS, cfg)
		if err != nil {
			return nil, err
		}
		res, err := RunOn(inst, w, threads, ops)
		if err != nil {
			inst.Close()
			return nil, err
		}
		acc, total := inst.HiNFS.Model().Accuracy()
		inst.Close()
		addRow(w.Name(), acc, total)
		fig.putP(w.Name(), res)
	}
	// Trace-driven sync workloads.
	for _, name := range []string{"usr0", "usr1", "facebook"} {
		tr, err := trace.ByName(name, ops*20)
		if err != nil {
			return nil, err
		}
		inst, err := NewInstance(HiNFS, cfg)
		if err != nil {
			return nil, err
		}
		if err := tr.Prepare(inst.FS); err != nil {
			inst.Close()
			return nil, err
		}
		if _, err := tr.Replay(inst.FS); err != nil {
			inst.Close()
			return nil, err
		}
		acc, total := inst.HiNFS.Model().Accuracy()
		inst.Close()
		addRow(name, acc, total)
	}
	return fig, nil
}
