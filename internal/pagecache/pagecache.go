// Package pagecache implements an OS page cache over a block device: 4 KB
// pages, LRU replacement, dirty tracking and writeback.
//
// It deliberately reproduces the behaviour the paper identifies as the
// double-copy problem (§1, §2): every read miss fetches the whole block
// from the device into a cache page before copying to the user buffer,
// every write lands in a cache page first (fetch-before-write for partial
// writes), and synchronization copies the page out through the generic
// block layer. The traditional EXT2/EXT4 baselines are built on it.
package pagecache

import (
	"sync"
	"sync/atomic"

	"hinfs/internal/blockdev"
	"hinfs/internal/obs"
)

// PageSize is the cache page size.
const PageSize = blockdev.BlockSize

// Stats counts cache activity.
type Stats struct {
	Hits       int64
	Misses     int64
	Writebacks int64 // pages written to the device
	Evictions  int64
}

type page struct {
	bn    int64
	data  []byte
	dirty bool

	prev, next *page // LRU list: head = MRU
}

// Cache is an LRU page cache over a block device. It is safe for
// concurrent use; a single mutex guards the cache, mirroring the paper's
// observation that the software stack, not lock granularity, dominates
// block-based FS overheads on NVMM.
//
// Like the kernel's dirty-ratio throttling, a writer that pushes the dirty
// page count above DirtyRatio of the capacity synchronously writes back a
// batch of pages, so sustained write streams pay device costs instead of
// accumulating unbounded dirty state.
type Cache struct {
	dev *blockdev.Device

	mu    sync.Mutex
	pages map[int64]*page
	head  *page
	tail  *page
	cap   int
	dirty int

	hits       atomic.Int64
	misses     atomic.Int64
	writebacks atomic.Int64
	evictions  atomic.Int64

	// col receives copy-attribution events (page fills, inline evictions,
	// sync flushes). Nil disables accounting.
	col atomic.Pointer[obs.Collector]
}

// DirtyRatio is the dirty-page fraction that triggers foreground
// writeback throttling.
const DirtyRatio = 0.15

// New creates a cache of capacity pages over dev.
func New(dev *blockdev.Device, capacity int) *Cache {
	if capacity <= 0 {
		panic("pagecache: capacity must be positive")
	}
	return &Cache{dev: dev, pages: make(map[int64]*page), cap: capacity}
}

// SetObs attaches (or with nil detaches) a collector for copy
// attribution.
func (c *Cache) SetObs(col *obs.Collector) { c.col.Store(col) }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Writebacks: c.writebacks.Load(),
		Evictions:  c.evictions.Load(),
	}
}

// Len returns the number of cached pages.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pages)
}

// --- LRU management (c.mu held) ---

func (c *Cache) pushFront(p *page) {
	p.prev = nil
	p.next = c.head
	if c.head != nil {
		c.head.prev = p
	}
	c.head = p
	if c.tail == nil {
		c.tail = p
	}
}

func (c *Cache) unlink(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		c.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		c.tail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (c *Cache) touch(p *page) {
	c.unlink(p)
	c.pushFront(p)
}

// getPage returns the cached page for bn, fetching from the device on a
// miss (if fetch is true) or returning a zeroed page otherwise. fillKind
// attributes the fill copy: CopyReadFill from the read path,
// CopyWriteFetch from fetch-before-write. Called with c.mu held; may
// drop it to perform device I/O.
func (c *Cache) getPage(bn int64, fetch bool, fillKind obs.CopyKind) *page {
	if p, ok := c.pages[bn]; ok {
		c.hits.Add(1)
		c.touch(p)
		return p
	}
	c.misses.Add(1)
	// Evict if full.
	for len(c.pages) >= c.cap {
		victim := c.tail
		c.unlink(victim)
		delete(c.pages, victim.bn)
		c.evictions.Add(1)
		if victim.dirty {
			c.dirty--
			c.writebacks.Add(1)
			c.mu.Unlock()
			c.dev.WriteBlock(victim.data, victim.bn)
			c.col.Load().Copy(obs.CopyInlineEvict, PageSize)
			c.mu.Lock()
			// Re-check: another goroutine may have re-created the page;
			// we proceed regardless — last write wins, matching a cache
			// without page locks under FS-level locking.
		}
	}
	p := &page{bn: bn, data: make([]byte, PageSize)}
	if fetch {
		c.mu.Unlock()
		c.dev.ReadBlock(p.data, bn)
		c.col.Load().Copy(fillKind, PageSize)
		c.mu.Lock()
		if cur, ok := c.pages[bn]; ok {
			// Lost a race; use the winner.
			c.touch(cur)
			return cur
		}
	}
	c.pages[bn] = p
	c.pushFront(p)
	return p
}

// Read copies n = len(dst) bytes from byte offset off of block bn, going
// through the cache (fetching the whole block on a miss — the first copy
// of the double-copy read path).
func (c *Cache) Read(dst []byte, bn int64, off int) {
	if off < 0 || off+len(dst) > PageSize {
		panic("pagecache: read range outside page")
	}
	c.mu.Lock()
	p := c.getPage(bn, true, obs.CopyReadFill)
	copy(dst, p.data[off:])
	c.mu.Unlock()
}

// Write copies src into byte offset off of block bn's cache page, marking
// it dirty. A partial write to an uncached block fetches it first
// (fetch-before-write); fresh reports the block was newly allocated so
// the fetch is skipped and the page zeroed.
func (c *Cache) Write(src []byte, bn int64, off int, fresh bool) {
	if off < 0 || off+len(src) > PageSize {
		panic("pagecache: write range outside page")
	}
	partial := off != 0 || len(src) != PageSize
	c.mu.Lock()
	p := c.getPage(bn, partial && !fresh, obs.CopyWriteFetch)
	copy(p.data[off:], src)
	if !p.dirty {
		p.dirty = true
		c.dirty++
	}
	throttle := c.dirty > int(DirtyRatio*float64(c.cap))
	c.mu.Unlock()
	if throttle {
		c.writebackBatch(32)
	}
}

// writebackBatch writes up to n dirty pages back, oldest first.
func (c *Cache) writebackBatch(n int) {
	for i := 0; i < n; i++ {
		c.mu.Lock()
		var victim *page
		for p := c.tail; p != nil; p = p.prev {
			if p.dirty {
				victim = p
				break
			}
		}
		if victim == nil {
			c.mu.Unlock()
			return
		}
		victim.dirty = false
		c.dirty--
		buf := make([]byte, PageSize)
		copy(buf, victim.data)
		c.mu.Unlock()
		c.writebacks.Add(1)
		c.dev.WriteBlock(buf, victim.bn)
		// Throttled writeback runs inline in the writer: the page→block
		// copy is critical-path latency the foreground op eats.
		c.col.Load().Copy(obs.CopyInlineEvict, PageSize)
	}
}

// FlushPage writes block bn back to the device if dirty, keeping it cached
// clean. It reports whether a writeback happened.
func (c *Cache) FlushPage(bn int64) bool {
	c.mu.Lock()
	p, ok := c.pages[bn]
	if !ok || !p.dirty {
		c.mu.Unlock()
		return false
	}
	p.dirty = false
	c.dirty--
	buf := make([]byte, PageSize)
	copy(buf, p.data)
	c.mu.Unlock()
	c.writebacks.Add(1)
	c.dev.WriteBlock(buf, bn)
	c.col.Load().Copy(obs.CopySyncFlush, PageSize)
	return true
}

// FlushAll writes every dirty page back and returns the count.
func (c *Cache) FlushAll() int {
	c.mu.Lock()
	var dirty []int64
	for bn, p := range c.pages {
		if p.dirty {
			dirty = append(dirty, bn)
		}
	}
	c.mu.Unlock()
	n := 0
	for _, bn := range dirty {
		if c.FlushPage(bn) {
			n++
		}
	}
	return n
}

// PeekDirty copies page bn into dst if it is cached and dirty, reporting
// whether it did (used by the EXT4 journal to snapshot metadata pages).
func (c *Cache) PeekDirty(dst []byte, bn int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pages[bn]
	if !ok || !p.dirty {
		return false
	}
	copy(dst, p.data)
	return true
}

// DirtyIn returns the block numbers of dirty pages with bn < limit.
func (c *Cache) DirtyIn(limit int64) []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int64
	for bn, p := range c.pages {
		if p.dirty && bn < limit {
			out = append(out, bn)
		}
	}
	return out
}

// Drop discards block bn from the cache without writeback (freed blocks).
func (c *Cache) Drop(bn int64) {
	c.mu.Lock()
	if p, ok := c.pages[bn]; ok {
		if p.dirty {
			c.dirty--
		}
		c.unlink(p)
		delete(c.pages, bn)
	}
	c.mu.Unlock()
}

// InvalidateAll writes every dirty page back and empties the cache
// (echo 3 > drop_caches, as the paper does before each benchmark run).
func (c *Cache) InvalidateAll() {
	c.FlushAll()
	c.mu.Lock()
	c.pages = make(map[int64]*page)
	c.head, c.tail = nil, nil
	c.dirty = 0
	c.mu.Unlock()
}

// DirtyPages returns the number of dirty cached pages.
func (c *Cache) DirtyPages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.pages {
		if p.dirty {
			n++
		}
	}
	return n
}
