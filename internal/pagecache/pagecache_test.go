package pagecache

import (
	"bytes"
	"testing"

	"hinfs/internal/blockdev"
	"hinfs/internal/nvmm"
)

func testCache(t *testing.T, pages int) (*Cache, *blockdev.Device) {
	t.Helper()
	nv, err := nvmm.New(nvmm.Config{Size: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.New(nv, blockdev.Config{})
	return New(dev, pages), dev
}

func TestMissFetchesWholeBlock(t *testing.T) {
	c, dev := testCache(t, 8)
	// Put data on the device directly.
	blk := bytes.Repeat([]byte{0x42}, PageSize)
	dev.WriteBlock(blk, 5)
	r0 := dev.Stats().BytesRead
	got := make([]byte, 10)
	c.Read(got, 5, 100)
	if got[0] != 0x42 {
		t.Fatalf("got %#x", got[0])
	}
	// The whole 4 KB block was fetched for a 10-byte read: the first copy
	// of the double-copy path.
	if dev.Stats().BytesRead-r0 != PageSize {
		t.Fatalf("fetched %d bytes", dev.Stats().BytesRead-r0)
	}
	// Second read hits.
	h0 := c.Stats().Hits
	c.Read(got, 5, 200)
	if c.Stats().Hits != h0+1 {
		t.Fatal("no hit on second read")
	}
}

func TestPartialWriteFetchesBeforeWrite(t *testing.T) {
	c, dev := testCache(t, 8)
	dev.WriteBlock(bytes.Repeat([]byte{0x11}, PageSize), 3)
	r0 := dev.Stats().BytesRead
	c.Write([]byte("patch"), 3, 50, false)
	if dev.Stats().BytesRead-r0 != PageSize {
		t.Fatal("partial write did not fetch-before-write")
	}
	got := make([]byte, PageSize)
	c.Read(got, 3, 0)
	if got[0] != 0x11 || string(got[50:55]) != "patch" || got[100] != 0x11 {
		t.Fatal("merge broken")
	}
}

func TestFullBlockWriteSkipsFetch(t *testing.T) {
	c, dev := testCache(t, 8)
	r0 := dev.Stats().BytesRead
	c.Write(make([]byte, PageSize), 7, 0, false)
	if dev.Stats().BytesRead != r0 {
		t.Fatal("full-block write fetched the block")
	}
}

func TestFreshWriteSkipsFetch(t *testing.T) {
	c, dev := testCache(t, 8)
	r0 := dev.Stats().BytesRead
	c.Write([]byte("new"), 9, 100, true)
	if dev.Stats().BytesRead != r0 {
		t.Fatal("fresh partial write fetched the block")
	}
}

func TestFlushPageWritesBack(t *testing.T) {
	c, dev := testCache(t, 64)
	c.Write([]byte("dirty"), 2, 0, true)
	if !c.FlushPage(2) {
		t.Fatal("dirty page not flushed")
	}
	if c.FlushPage(2) {
		t.Fatal("clean page flushed again")
	}
	got := make([]byte, PageSize)
	dev.ReadBlock(got, 2)
	if string(got[:5]) != "dirty" {
		t.Fatal("writeback lost data")
	}
}

func TestEvictionWritesDirtyVictim(t *testing.T) {
	c, dev := testCache(t, 4)
	for bn := int64(0); bn < 8; bn++ {
		c.Write([]byte{byte(bn + 1)}, bn, 0, true)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions")
	}
	// Every block readable with correct first byte (from cache or device).
	got := make([]byte, 1)
	for bn := int64(0); bn < 8; bn++ {
		c.Read(got, bn, 0)
		if got[0] != byte(bn+1) {
			t.Fatalf("block %d lost", bn)
		}
	}
	_ = dev
}

func TestDropDiscards(t *testing.T) {
	c, dev := testCache(t, 64)
	c.Write([]byte("gone"), 1, 0, true)
	w0 := dev.Stats().BytesWritten
	c.Drop(1)
	c.FlushAll()
	if dev.Stats().BytesWritten != w0 {
		t.Fatal("dropped page written back")
	}
}

func TestDirtyInAndPeek(t *testing.T) {
	// Large enough that the dirty-ratio throttle stays quiet.
	c, _ := testCache(t, 64)
	c.Write([]byte("a"), 1, 0, true)
	c.Write([]byte("b"), 10, 0, true)
	in := c.DirtyIn(5)
	if len(in) != 1 || in[0] != 1 {
		t.Fatalf("DirtyIn = %v", in)
	}
	buf := make([]byte, PageSize)
	if !c.PeekDirty(buf, 1) || buf[0] != 'a' {
		t.Fatal("PeekDirty failed")
	}
	if c.PeekDirty(buf, 3) {
		t.Fatal("PeekDirty on missing page")
	}
}

func TestFlushAllCount(t *testing.T) {
	c, _ := testCache(t, 64)
	c.Write([]byte("x"), 1, 0, true)
	c.Write([]byte("y"), 2, 0, true)
	if n := c.FlushAll(); n != 2 {
		t.Fatalf("FlushAll = %d", n)
	}
	if c.DirtyPages() != 0 {
		t.Fatal("dirty pages remain")
	}
}
