package clock

import (
	"testing"
	"time"
)

func TestFakeNowAdvance(t *testing.T) {
	f := NewFake(time.Unix(50, 0))
	if !f.Now().Equal(time.Unix(50, 0)) {
		t.Fatalf("Now = %v", f.Now())
	}
	f.Advance(3 * time.Second)
	if !f.Now().Equal(time.Unix(53, 0)) {
		t.Fatalf("Now = %v after advance", f.Now())
	}
}

func TestFakeAfterFiresAtDeadline(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch := f.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	f.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired before deadline")
	default:
	}
	f.Advance(time.Second)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("never fired")
	}
}

func TestFakeAfterZeroFiresImmediately(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	select {
	case <-f.After(0):
	case <-time.After(time.Second):
		t.Fatal("zero-delay After did not fire")
	}
}

func TestFakeMultipleWaiters(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	a := f.After(1 * time.Second)
	b := f.After(5 * time.Second)
	f.Advance(2 * time.Second)
	select {
	case <-a:
	default:
		t.Fatal("first waiter not fired")
	}
	select {
	case <-b:
		t.Fatal("second waiter fired early")
	default:
	}
	f.Advance(3 * time.Second)
	select {
	case <-b:
	default:
		t.Fatal("second waiter not fired")
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	t0 := c.Now()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
	if !c.Now().After(t0) {
		t.Fatal("time did not advance")
	}
}
