// Package clock abstracts time for components with time-dependent policy:
// the background writeback threads (5 s period, 30 s age-out) and the
// Buffer Benefit Model's 5 s Eager→Lazy decay. Production code uses the
// real clock; tests use a fake clock to drive those policies
// deterministically.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time and timed waits.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time after d elapses.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Fake is a manually advanced clock for tests. The zero value is not ready
// for use; call NewFake.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewFake returns a fake clock starting at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After implements Clock. The returned channel fires when Advance moves the
// clock past the deadline.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{deadline: f.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- f.now
		return w.ch
	}
	f.waiters = append(f.waiters, w)
	return w.ch
}

// Advance moves the clock forward by d, firing any waiters whose deadlines
// are reached.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	var remaining []*fakeWaiter
	var fired []*fakeWaiter
	for _, w := range f.waiters {
		if !w.deadline.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	f.waiters = remaining
	f.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}
