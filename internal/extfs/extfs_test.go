package extfs

import (
	"bytes"
	"fmt"
	"testing"

	"hinfs/internal/nvmm"
	"hinfs/internal/vfs"
)

func testFS(t testing.TB, opts Options) *FS {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	opts.MaxInodes = 1024
	fs, err := Mkfs(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Unmount() })
	return fs
}

func TestExt2RoundTrip(t *testing.T) {
	fs := testFS(t, Options{})
	f, err := fs.Create("/file")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, 3*BlockSize+500)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if n, err := f.WriteAt(data, 777); err != nil || n != len(data) {
		t.Fatalf("write: %d %v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := f.ReadAt(got, 777); err != nil || n != len(got) {
		t.Fatalf("read: %d %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
}

func TestExt4DAXRoundTrip(t *testing.T) {
	fs := testFS(t, Options{Journal: true, DAX: true})
	f, _ := fs.Create("/dax")
	defer f.Close()
	data := bytes.Repeat([]byte{0x5A}, 2*BlockSize)
	f.WriteAt(data, 100)
	got := make([]byte, len(data))
	f.ReadAt(got, 100)
	if !bytes.Equal(got, data) {
		t.Fatal("DAX mismatch")
	}
	// DAX reads must not populate the page cache with data pages.
	if misses := fs.Cache().Stats().Misses; misses == 0 {
		t.Log("metadata naturally misses; ok")
	}
}

func TestReadGoesThroughPageCache(t *testing.T) {
	fs := testFS(t, Options{})
	f, _ := fs.Create("/c")
	defer f.Close()
	f.WriteAt(make([]byte, BlockSize), 0)
	f.Fsync()
	h0 := fs.Cache().Stats().Hits
	buf := make([]byte, BlockSize)
	f.ReadAt(buf, 0)
	if fs.Cache().Stats().Hits == h0 {
		t.Fatal("read did not go through the page cache")
	}
}

func TestFsyncWritesThroughBlockLayer(t *testing.T) {
	fs := testFS(t, Options{})
	f, _ := fs.Create("/d")
	defer f.Close()
	f.WriteAt(make([]byte, 4*BlockSize), 0)
	w0 := fs.BlockDevice().Stats().BytesWritten
	f.Fsync()
	if fs.BlockDevice().Stats().BytesWritten-w0 < 4*BlockSize {
		t.Fatal("fsync did not write data blocks to the device")
	}
}

func TestExt4JournalsMetadata(t *testing.T) {
	ext2 := testFS(t, Options{})
	ext4 := testFS(t, Options{Journal: true})
	for _, fs := range []*FS{ext2, ext4} {
		f, _ := fs.Create("/j")
		f.WriteAt(make([]byte, BlockSize), 0)
		f.Fsync()
		f.Close()
	}
	if got := ext2.Stats().JournalBlockWrites; got != 0 {
		t.Fatalf("ext2 journaled %d blocks", got)
	}
	if got := ext4.Stats().JournalBlockWrites; got == 0 {
		t.Fatal("ext4 journaled nothing")
	}
}

func TestDirOpsAndRename(t *testing.T) {
	fs := testFS(t, Options{Journal: true})
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/d/x")
	f.WriteAt([]byte("v1"), 0)
	f.Close()
	if err := fs.Rename("/d/x", "/d/y"); err != nil {
		t.Fatal(err)
	}
	ents, _ := fs.ReadDir("/d")
	if len(ents) != 1 || ents[0].Name != "y" {
		t.Fatalf("ents %v", ents)
	}
	g, err := fs.Open("/d/y", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	g.ReadAt(buf, 0)
	g.Close()
	if string(buf) != "v1" {
		t.Fatalf("got %q", buf)
	}
	if err := fs.Unlink("/d/y"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
}

func TestUnlinkFreesBlocks(t *testing.T) {
	fs := testFS(t, Options{})
	// Warm the root dir block.
	f, _ := fs.Create("/w")
	f.Close()
	fs.Unlink("/w")
	before := fs.FreeBlocks()
	g, _ := fs.Create("/big")
	g.WriteAt(make([]byte, 64*BlockSize), 0)
	g.Close()
	if fs.FreeBlocks() >= before {
		t.Fatal("no blocks consumed")
	}
	fs.Unlink("/big")
	if got := fs.FreeBlocks(); got != before {
		t.Fatalf("leaked: %d != %d", got, before)
	}
}

func TestIndirectAndDoubleIndirect(t *testing.T) {
	fs := testFS(t, Options{})
	f, _ := fs.Create("/deep")
	defer f.Close()
	// Block indices in the direct, indirect and double-indirect ranges.
	for _, idx := range []int64{0, 9, 10, 100, ptrsDirect + ptrsPerBlock, ptrsDirect + ptrsPerBlock + 600} {
		pat := bytes.Repeat([]byte{byte(idx%250 + 1)}, 64)
		if _, err := f.WriteAt(pat, idx*BlockSize); err != nil {
			t.Fatalf("write idx %d: %v", idx, err)
		}
	}
	for _, idx := range []int64{0, 9, 10, 100, ptrsDirect + ptrsPerBlock, ptrsDirect + ptrsPerBlock + 600} {
		got := make([]byte, 64)
		f.ReadAt(got, idx*BlockSize)
		if got[0] != byte(idx%250+1) {
			t.Fatalf("idx %d: got %#x", idx, got[0])
		}
	}
}

func TestTruncateThenExtendZeros(t *testing.T) {
	fs := testFS(t, Options{})
	f, _ := fs.Create("/t")
	defer f.Close()
	f.WriteAt(bytes.Repeat([]byte{0xFF}, 2*BlockSize), 0)
	f.Truncate(100)
	f.Truncate(BlockSize)
	buf := make([]byte, BlockSize)
	f.ReadAt(buf, 0)
	for i := 100; i < BlockSize; i++ {
		if buf[i] != 0 {
			t.Fatalf("stale byte at %d", i)
		}
	}
}

func TestOSyncFlushesImmediately(t *testing.T) {
	fs := testFS(t, Options{})
	f, err := fs.Open("/s", vfs.OCreate|vfs.ORdwr|vfs.OSync)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w0 := fs.BlockDevice().Stats().BytesWritten
	f.WriteAt(make([]byte, BlockSize), 0)
	if fs.BlockDevice().Stats().BytesWritten == w0 {
		t.Fatal("O_SYNC write stayed in the page cache")
	}
}

func TestCacheEvictionWritesBack(t *testing.T) {
	dev, _ := nvmm.New(nvmm.Config{Size: 64 << 20})
	fs, err := Mkfs(dev, Options{MaxInodes: 256, CachePages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Unmount()
	f, _ := fs.Create("/spill")
	defer f.Close()
	data := make([]byte, BlockSize)
	for i := 0; i < 128; i++ {
		f.WriteAt(data, int64(i)*BlockSize)
	}
	if fs.Cache().Stats().Evictions == 0 {
		t.Fatal("tiny cache never evicted")
	}
	// Data still correct through cache misses.
	buf := make([]byte, BlockSize)
	for i := 0; i < 128; i += 17 {
		if _, err := f.ReadAt(buf, int64(i)*BlockSize); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentFiles(t *testing.T) {
	fs := testFS(t, Options{Journal: true})
	errc := make(chan error, 6)
	for w := 0; w < 6; w++ {
		go func(w int) {
			f, err := fs.Create(fmt.Sprintf("/c%d", w))
			if err != nil {
				errc <- err
				return
			}
			defer f.Close()
			pat := bytes.Repeat([]byte{byte(w + 1)}, BlockSize)
			for i := 0; i < 16; i++ {
				if _, err := f.WriteAt(pat, int64(i)*BlockSize); err != nil {
					errc <- err
					return
				}
			}
			f.Fsync()
			buf := make([]byte, BlockSize)
			for i := 0; i < 16; i++ {
				f.ReadAt(buf, int64(i)*BlockSize)
				if buf[0] != byte(w+1) {
					errc <- fmt.Errorf("worker %d corrupt", w)
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < 6; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRenameToSelfIsNoop(t *testing.T) {
	fs := testFS(t, Options{})
	f, _ := fs.Create("/same")
	f.WriteAt([]byte("keep"), 0)
	f.Close()
	if err := fs.Rename("/same", "/same"); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open("/same", vfs.ORdonly)
	if err != nil {
		t.Fatalf("file vanished after self-rename: %v", err)
	}
	buf := make([]byte, 4)
	g.ReadAt(buf, 0)
	g.Close()
	if string(buf) != "keep" {
		t.Fatalf("content lost: %q", buf)
	}
}

func TestDAXDataBypassesPageCache(t *testing.T) {
	fs := testFS(t, Options{Journal: true, DAX: true})
	f, _ := fs.Create("/direct")
	defer f.Close()
	// Writes go straight to NVMM: durable without fsync, and dirty data
	// pages never accumulate in the cache.
	dirtyBefore := fs.Cache().DirtyPages()
	f.WriteAt(make([]byte, 8*BlockSize), 0)
	// Only metadata pages (inode/bitmap) may be dirty; 8 data blocks must
	// not be.
	if dirty := fs.Cache().DirtyPages(); dirty >= dirtyBefore+8 {
		t.Fatalf("DAX write left %d dirty pages (was %d)", dirty, dirtyBefore)
	}
	w0 := fs.BlockDevice().Stats().BytesWritten
	f.Fsync()
	// fsync must not push data blocks through the block layer (they are
	// already durable); only journal/metadata traffic is allowed.
	if delta := fs.BlockDevice().Stats().BytesWritten - w0; delta >= 8*BlockSize {
		t.Fatalf("DAX fsync rewrote data through the block layer: %d B", delta)
	}
}

func TestDAXWriteIsDurableImmediately(t *testing.T) {
	dev, _ := nvmm.New(nvmm.Config{Size: 64 << 20, TrackPersistence: true})
	fs, err := Mkfs(dev, Options{Journal: true, DAX: true, MaxInodes: 256})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/d")
	// Make the create durable, then write data via DAX and crash without
	// any fsync: DAX data (like PMFS) must survive.
	fs.Sync()
	f.WriteAt([]byte("dax-durable"), 0)
	dev.Crash()
	got := make([]byte, 11)
	// Read the raw NVMM: find the data by scanning is overkill — instead
	// verify through a fresh handle on the same (still-live) instance,
	// whose page cache was never populated with this data.
	f2, err := fs.Open("/d", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	f2.ReadAt(got, 0)
	if string(got) != "dax-durable" {
		t.Fatalf("got %q", got)
	}
	f.Close()
	f2.Close()
}

func TestThrottlingBoundsDirtyPages(t *testing.T) {
	dev, _ := nvmm.New(nvmm.Config{Size: 64 << 20})
	fs, err := Mkfs(dev, Options{MaxInodes: 256, CachePages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Unmount()
	f, _ := fs.Create("/stream")
	defer f.Close()
	for i := 0; i < 512; i++ {
		f.WriteAt(make([]byte, BlockSize), int64(i)*BlockSize)
	}
	// Dirty pages must stay near the throttle threshold, not grow without
	// bound (the kernel's dirty_ratio behaviour).
	if dirty := fs.Cache().DirtyPages(); dirty > 100 {
		t.Fatalf("throttling let %d dirty pages accumulate (cap 256)", dirty)
	}
}

func TestStatAndSize(t *testing.T) {
	fs := testFS(t, Options{})
	f, _ := fs.Create("/meta")
	f.WriteAt(make([]byte, 5000), 0)
	if f.Size() != 5000 {
		t.Fatalf("Size = %d", f.Size())
	}
	fi, err := fs.Stat("/meta")
	if err != nil || fi.Size != 5000 || fi.IsDir {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
	f.Close()
	fs.Mkdir("/md")
	if fi, _ := fs.Stat("/md"); !fi.IsDir {
		t.Fatal("dir not reported")
	}
	if fi, _ := fs.Stat("/"); !fi.IsDir || fi.Name != "/" {
		t.Fatal("root stat")
	}
	if _, err := fs.Stat("/nope"); err != vfs.ErrNotExist {
		t.Fatalf("missing stat = %v", err)
	}
}

func TestDropCachesKeepsData(t *testing.T) {
	fs := testFS(t, Options{Journal: true})
	f, _ := fs.Create("/cold")
	payload := bytes.Repeat([]byte{0x5C}, 3*BlockSize)
	f.WriteAt(payload, 0)
	fs.DropCaches()
	if fs.Cache().Len() != 0 {
		t.Fatalf("cache not empty: %d pages", fs.Cache().Len())
	}
	got := make([]byte, len(payload))
	f.ReadAt(got, 0) // refetches everything from the device
	if !bytes.Equal(got, payload) {
		t.Fatal("data lost across DropCaches")
	}
	f.Close()
}

func TestTruncateIndirectRanges(t *testing.T) {
	fs := testFS(t, Options{})
	f, _ := fs.Create("/wide")
	defer f.Close()
	// Populate direct, indirect and double-indirect blocks, then cut back
	// through all three ranges (exercising clearPtr everywhere).
	idxs := []int64{0, 5, ptrsDirect + 3, ptrsDirect + ptrsPerBlock + 7}
	for _, idx := range idxs {
		f.WriteAt([]byte{0xAA}, idx*BlockSize)
	}
	free0 := fs.FreeBlocks()
	if err := f.Truncate(BlockSize); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() <= free0 {
		t.Fatal("truncate freed nothing")
	}
	got := make([]byte, 1)
	f.ReadAt(got, 0)
	if got[0] != 0xAA {
		t.Fatal("kept block lost")
	}
	// Extend again: all cut ranges must read zero.
	f.Truncate((ptrsDirect + ptrsPerBlock + 8) * BlockSize)
	for _, idx := range idxs[1:] {
		f.ReadAt(got, idx*BlockSize)
		if got[0] != 0 {
			t.Fatalf("stale data at idx %d", idx)
		}
	}
}
