package extfs

import (
	"encoding/binary"
	"io"
	"sync/atomic"
	"time"

	"hinfs/internal/obs"
	"hinfs/internal/vfs"
)

// --- per-inode block index: 10 direct, 1 indirect, 1 double-indirect ---

const (
	idxIndirect = 10
	idxDouble   = 11
)

// readPtr reads pointer slot of index block bn through the page cache.
func (fs *FS) readPtr(bn int64, slot int64) int64 {
	var b [8]byte
	fs.cache.Read(b[:], bn, int(slot*8))
	return int64(binary.LittleEndian.Uint64(b[:]))
}

func (fs *FS) writePtr(bn int64, slot int64, val int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(val))
	fs.cache.Write(b[:], bn, int(slot*8), false)
}

// lookupBlock returns the data block for file block idx, 0 for a hole.
func (fs *FS) lookupBlock(r inodeRec, idx int64) int64 {
	switch {
	case idx < ptrsDirect:
		return r.Ptrs[idx]
	case idx < ptrsDirect+ptrsPerBlock:
		ind := r.Ptrs[idxIndirect]
		if ind == 0 {
			return 0
		}
		return fs.readPtr(ind, idx-ptrsDirect)
	default:
		rel := idx - ptrsDirect - ptrsPerBlock
		if rel >= ptrsPerBlock*ptrsPerBlock {
			return 0
		}
		dbl := r.Ptrs[idxDouble]
		if dbl == 0 {
			return 0
		}
		ind := fs.readPtr(dbl, rel/ptrsPerBlock)
		if ind == 0 {
			return 0
		}
		return fs.readPtr(ind, rel%ptrsPerBlock)
	}
}

// ensureBlock makes file block idx exist, updating r in place. It returns
// the block number and whether it was newly allocated.
func (fs *FS) ensureBlock(r *inodeRec, idx int64) (int64, bool, error) {
	alloc1 := func() (int64, error) {
		bs, err := fs.allocBlocks(1)
		if err != nil {
			return 0, err
		}
		return bs[0], nil
	}
	switch {
	case idx < ptrsDirect:
		if r.Ptrs[idx] != 0 {
			return r.Ptrs[idx], false, nil
		}
		bn, err := alloc1()
		if err != nil {
			return 0, false, err
		}
		r.Ptrs[idx] = bn
		return bn, true, nil
	case idx < ptrsDirect+ptrsPerBlock:
		if r.Ptrs[idxIndirect] == 0 {
			ind, err := alloc1()
			if err != nil {
				return 0, false, err
			}
			fs.cache.Write(fs.zero[:], ind, 0, true)
			r.Ptrs[idxIndirect] = ind
		}
		slot := idx - ptrsDirect
		if bn := fs.readPtr(r.Ptrs[idxIndirect], slot); bn != 0 {
			return bn, false, nil
		}
		bn, err := alloc1()
		if err != nil {
			return 0, false, err
		}
		fs.writePtr(r.Ptrs[idxIndirect], slot, bn)
		return bn, true, nil
	default:
		rel := idx - ptrsDirect - ptrsPerBlock
		if rel >= ptrsPerBlock*ptrsPerBlock {
			return 0, false, vfs.ErrNoSpace
		}
		if r.Ptrs[idxDouble] == 0 {
			dbl, err := alloc1()
			if err != nil {
				return 0, false, err
			}
			fs.cache.Write(fs.zero[:], dbl, 0, true)
			r.Ptrs[idxDouble] = dbl
		}
		ind := fs.readPtr(r.Ptrs[idxDouble], rel/ptrsPerBlock)
		if ind == 0 {
			var err error
			ind, err = alloc1()
			if err != nil {
				return 0, false, err
			}
			fs.cache.Write(fs.zero[:], ind, 0, true)
			fs.writePtr(r.Ptrs[idxDouble], rel/ptrsPerBlock, ind)
		}
		slot := rel % ptrsPerBlock
		if bn := fs.readPtr(ind, slot); bn != 0 {
			return bn, false, nil
		}
		bn, err := alloc1()
		if err != nil {
			return 0, false, err
		}
		fs.writePtr(ind, slot, bn)
		return bn, true, nil
	}
}

// fileBlocks collects every data and index block of the file.
func (fs *FS) fileBlocks(r inodeRec) (data, index []int64) {
	for i := int64(0); i < ptrsDirect; i++ {
		if r.Ptrs[i] != 0 {
			data = append(data, r.Ptrs[i])
		}
	}
	if ind := r.Ptrs[idxIndirect]; ind != 0 {
		index = append(index, ind)
		for s := int64(0); s < ptrsPerBlock; s++ {
			if bn := fs.readPtr(ind, s); bn != 0 {
				data = append(data, bn)
			}
		}
	}
	if dbl := r.Ptrs[idxDouble]; dbl != 0 {
		index = append(index, dbl)
		for s := int64(0); s < ptrsPerBlock; s++ {
			ind := fs.readPtr(dbl, s)
			if ind == 0 {
				continue
			}
			index = append(index, ind)
			for u := int64(0); u < ptrsPerBlock; u++ {
				if bn := fs.readPtr(ind, u); bn != 0 {
					data = append(data, bn)
				}
			}
		}
	}
	return data, index
}

// --- directories ---

type dentry struct {
	ino  int64
	typ  byte
	name string
}

func (fs *FS) dirScan(rec inodeRec, fn func(bn int64, off int, d dentry) bool) {
	blocks := (rec.Size + BlockSize - 1) / BlockSize
	var buf [dentrySize]byte
	for bi := int64(0); bi < blocks; bi++ {
		bn := fs.lookupBlock(rec, bi)
		if bn == 0 {
			continue
		}
		for s := 0; s < dentriesPerBl; s++ {
			fs.cache.Read(buf[:], bn, s*dentrySize)
			ino := int64(binary.LittleEndian.Uint64(buf[:8]))
			if ino == 0 {
				continue
			}
			n := int(buf[9])
			if n > maxNameLen {
				n = maxNameLen
			}
			d := dentry{ino: ino, typ: buf[8], name: string(buf[10 : 10+n])}
			if fn(bn, s*dentrySize, d) {
				return
			}
		}
	}
}

func (fs *FS) dirLookup(rec inodeRec, name string) (bn int64, off int, d dentry, ok bool) {
	fs.dirScan(rec, func(b int64, o int, e dentry) bool {
		if e.name == name {
			bn, off, d, ok = b, o, e, true
			return true
		}
		return false
	})
	return
}

func (fs *FS) dirAddEntry(dirIno int64, rec *inodeRec, d dentry) error {
	if len(d.name) > maxNameLen {
		return vfs.ErrNameTooLon
	}
	blocks := (rec.Size + BlockSize - 1) / BlockSize
	var slotBn int64 = -1
	slotOff := 0
	var probe [8]byte
	for bi := int64(0); bi < blocks && slotBn < 0; bi++ {
		bn := fs.lookupBlock(*rec, bi)
		if bn == 0 {
			continue
		}
		for s := 0; s < dentriesPerBl; s++ {
			fs.cache.Read(probe[:], bn, s*dentrySize)
			if binary.LittleEndian.Uint64(probe[:]) == 0 {
				slotBn, slotOff = bn, s*dentrySize
				break
			}
		}
	}
	if slotBn < 0 {
		bn, _, err := fs.ensureBlock(rec, blocks)
		if err != nil {
			return err
		}
		fs.cache.Write(fs.zero[:], bn, 0, true)
		rec.Size = (blocks + 1) * BlockSize
		slotBn, slotOff = bn, 0
	}
	var e [dentrySize]byte
	binary.LittleEndian.PutUint64(e[0:], uint64(d.ino))
	e[8] = d.typ
	e[9] = byte(len(d.name))
	copy(e[10:], d.name)
	fs.cache.Write(e[:], slotBn, slotOff, false)
	return nil
}

func (fs *FS) dirRemoveEntry(bn int64, off int) {
	var z [8]byte
	fs.cache.Write(z[:], bn, off, false)
}

func (fs *FS) dirEmpty(rec inodeRec) bool {
	empty := true
	fs.dirScan(rec, func(int64, int, dentry) bool { empty = false; return true })
	return empty
}

// --- namespace operations (vfs.FileSystem) ---

func (fs *FS) resolveDir(parts []string) (int64, error) {
	cur := int64(rootIno)
	for _, name := range parts {
		rec := fs.readInode(cur)
		if rec.Type != typeDir {
			return 0, vfs.ErrNotDir
		}
		_, _, d, ok := fs.dirLookup(rec, name)
		if !ok {
			return 0, vfs.ErrNotExist
		}
		if d.typ != typeDir {
			return 0, vfs.ErrNotDir
		}
		cur = d.ino
	}
	return cur, nil
}

// Resolve returns the inode number at path.
func (fs *FS) Resolve(path string) (int64, error) {
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return 0, err
	}
	fs.nsMu.RLock()
	defer fs.nsMu.RUnlock()
	if len(parts) == 0 {
		return rootIno, nil
	}
	dir, err := fs.resolveDir(parts[:len(parts)-1])
	if err != nil {
		return 0, err
	}
	rec := fs.readInode(dir)
	_, _, d, ok := fs.dirLookup(rec, parts[len(parts)-1])
	if !ok {
		return 0, vfs.ErrNotExist
	}
	return d.ino, nil
}

// Create implements vfs.FileSystem.
func (fs *FS) Create(path string) (vfs.File, error) {
	return fs.Open(path, vfs.OCreate|vfs.ORdwr)
}

// Open implements vfs.FileSystem.
func (fs *FS) Open(path string, flags int) (vfs.File, error) {
	if err := fs.checkMounted(); err != nil {
		return nil, err
	}
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return nil, err
	}
	fs.nsMu.Lock()
	defer fs.nsMu.Unlock()
	dirIno, err := fs.resolveDir(dirParts)
	if err != nil {
		return nil, err
	}
	dirRec := fs.readInode(dirIno)
	_, _, d, ok := fs.dirLookup(dirRec, base)
	var ino int64
	switch {
	case ok && d.typ == typeDir:
		return nil, vfs.ErrIsDir
	case ok:
		ino = d.ino
	case flags&vfs.OCreate != 0:
		ino, err = fs.allocInode(typeFile)
		if err != nil {
			return nil, err
		}
		if err := fs.dirAddEntry(dirIno, &dirRec, dentry{ino: ino, typ: typeFile, name: base}); err != nil {
			fs.freeInode(ino)
			return nil, err
		}
		fs.writeInode(dirIno, dirRec)
	default:
		return nil, vfs.ErrNotExist
	}
	st := fs.state(ino)
	st.meta.Lock()
	st.refs++
	st.meta.Unlock()
	f := &File{fs: fs, ino: ino, flags: flags}
	if ok && flags&vfs.OTrunc != 0 {
		st.mu.Lock()
		err := f.truncateLocked(0)
		st.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(path string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return err
	}
	fs.nsMu.Lock()
	defer fs.nsMu.Unlock()
	dirIno, err := fs.resolveDir(dirParts)
	if err != nil {
		return err
	}
	dirRec := fs.readInode(dirIno)
	if _, _, _, ok := fs.dirLookup(dirRec, base); ok {
		return vfs.ErrExist
	}
	ino, err := fs.allocInode(typeDir)
	if err != nil {
		return err
	}
	if err := fs.dirAddEntry(dirIno, &dirRec, dentry{ino: ino, typ: typeDir, name: base}); err != nil {
		fs.freeInode(ino)
		return err
	}
	fs.writeInode(dirIno, dirRec)
	return nil
}

// Rmdir implements vfs.FileSystem.
func (fs *FS) Rmdir(path string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return err
	}
	fs.nsMu.Lock()
	defer fs.nsMu.Unlock()
	dirIno, err := fs.resolveDir(dirParts)
	if err != nil {
		return err
	}
	dirRec := fs.readInode(dirIno)
	bn, off, d, ok := fs.dirLookup(dirRec, base)
	if !ok {
		return vfs.ErrNotExist
	}
	if d.typ != typeDir {
		return vfs.ErrNotDir
	}
	rec := fs.readInode(d.ino)
	if !fs.dirEmpty(rec) {
		return vfs.ErrNotEmpty
	}
	fs.dirRemoveEntry(bn, off)
	fs.reclaim(d.ino, rec)
	return nil
}

// Unlink implements vfs.FileSystem.
func (fs *FS) Unlink(path string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return err
	}
	fs.nsMu.Lock()
	defer fs.nsMu.Unlock()
	dirIno, err := fs.resolveDir(dirParts)
	if err != nil {
		return err
	}
	dirRec := fs.readInode(dirIno)
	bn, off, d, ok := fs.dirLookup(dirRec, base)
	if !ok {
		return vfs.ErrNotExist
	}
	if d.typ == typeDir {
		return vfs.ErrIsDir
	}
	fs.dirRemoveEntry(bn, off)
	fs.dropOrDefer(d.ino)
	return nil
}

func (fs *FS) dropOrDefer(ino int64) {
	st := fs.state(ino)
	st.meta.Lock()
	open := st.refs > 0
	if open {
		st.unlinked = true
	}
	st.meta.Unlock()
	if open {
		return
	}
	fs.reclaim(ino, fs.readInode(ino))
}

func (fs *FS) reclaim(ino int64, rec inodeRec) {
	data, index := fs.fileBlocks(rec)
	fs.releaseBlocks(append(data, index...))
	fs.freeInode(ino)
}

// Rename implements vfs.FileSystem.
func (fs *FS) Rename(oldpath, newpath string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	oldDirParts, oldBase, err := vfs.SplitDirBase(oldpath)
	if err != nil {
		return err
	}
	newDirParts, newBase, err := vfs.SplitDirBase(newpath)
	if err != nil {
		return err
	}
	fs.nsMu.Lock()
	defer fs.nsMu.Unlock()
	oldDir, err := fs.resolveDir(oldDirParts)
	if err != nil {
		return err
	}
	newDir, err := fs.resolveDir(newDirParts)
	if err != nil {
		return err
	}
	oldDirRec := fs.readInode(oldDir)
	obn, ooff, d, ok := fs.dirLookup(oldDirRec, oldBase)
	if !ok {
		return vfs.ErrNotExist
	}
	if oldDir == newDir && oldBase == newBase {
		return nil // rename to self is a no-op
	}
	newDirRec := fs.readInode(newDir)
	if newDir == oldDir {
		newDirRec = oldDirRec
	}
	if dbn, doff, destD, exists := fs.dirLookup(newDirRec, newBase); exists {
		if destD.typ == typeDir {
			return vfs.ErrIsDir
		}
		fs.dirRemoveEntry(dbn, doff)
		fs.dropOrDefer(destD.ino)
	}
	fs.dirRemoveEntry(obn, ooff)
	if err := fs.dirAddEntry(newDir, &newDirRec, dentry{ino: d.ino, typ: d.typ, name: newBase}); err != nil {
		return err
	}
	fs.writeInode(newDir, newDirRec)
	return nil
}

// Stat implements vfs.FileSystem.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	if err := fs.checkMounted(); err != nil {
		return vfs.FileInfo{}, err
	}
	ino, err := fs.Resolve(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	parts, _ := vfs.SplitPath(path)
	name := "/"
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	rec := fs.readInode(ino)
	return vfs.FileInfo{Name: name, Size: rec.Size, IsDir: rec.Type == typeDir}, nil
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	if err := fs.checkMounted(); err != nil {
		return nil, err
	}
	ino, err := fs.Resolve(path)
	if err != nil {
		return nil, err
	}
	fs.nsMu.RLock()
	defer fs.nsMu.RUnlock()
	rec := fs.readInode(ino)
	if rec.Type != typeDir {
		return nil, vfs.ErrNotDir
	}
	var out []vfs.DirEntry
	fs.dirScan(rec, func(_ int64, _ int, d dentry) bool {
		out = append(out, vfs.DirEntry{Name: d.name, IsDir: d.typ == typeDir})
		return false
	})
	return out, nil
}

// Sync implements vfs.FileSystem: flush all dirty data pages, then the
// metadata (journaled under EXT4).
func (fs *FS) Sync() error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cache.FlushAll()
	fs.journalMetadata()
	fs.bdev.Flush()
	return nil
}

// Unmount implements vfs.FileSystem.
func (fs *FS) Unmount() error {
	if fs.unmounted.Swap(true) {
		return vfs.ErrUnmounted
	}
	fs.cache.FlushAll()
	fs.journalMetadata()
	fs.bdev.Flush()
	return nil
}

// --- file handle ---

// File is an open extfs file. It implements vfs.File.
type File struct {
	fs     *FS
	ino    int64
	flags  int
	closed atomic.Bool
}

func (f *File) checkOpen() error {
	if f.closed.Load() {
		return vfs.ErrClosed
	}
	return f.fs.checkMounted()
}

func (f *File) st() *inodeState { return f.fs.state(f.ino) }

// Size implements vfs.File.
func (f *File) Size() int64 {
	st := f.st()
	st.mu.RLock()
	defer st.mu.RUnlock()
	return f.fs.readInode(f.ino).Size
}

// ReadAt implements vfs.File: through the page cache (double copy on a
// miss), or directly from NVMM in DAX mode (single copy).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	st := f.st()
	st.mu.RLock()
	defer st.mu.RUnlock()
	rec := f.fs.readInode(f.ino)
	if off >= rec.Size {
		// io.ReaderAt contract: reads at or past EOF report io.EOF.
		return 0, io.EOF
	}
	n := len(p)
	var eof error
	if off+int64(n) > rec.Size {
		n = int(rec.Size - off)
		eof = io.EOF
	}
	read := 0
	for read < n {
		pos := off + int64(read)
		idx := pos / BlockSize
		bo := int(pos % BlockSize)
		chunk := BlockSize - bo
		if chunk > n-read {
			chunk = n - read
		}
		bn := f.fs.lookupBlock(rec, idx)
		dst := p[read : read+chunk]
		switch {
		case bn == 0:
			for i := range dst {
				dst[i] = 0
			}
		case f.fs.opts.DAX:
			f.fs.nv.Read(dst, bn*BlockSize+int64(bo))
			f.fs.col.Copy(obs.CopyReadOut, chunk)
		default:
			f.fs.cache.Read(dst, bn, bo)
			f.fs.col.Copy(obs.CopyReadOut, chunk)
		}
		read += chunk
	}
	return n, eof
}

// WriteAt implements vfs.File: into the page cache (dirty pages written
// back at fsync/sync), or directly to NVMM in DAX mode.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	st := f.st()
	st.mu.Lock()
	defer st.mu.Unlock()
	rec := f.fs.readInode(f.ino)
	if f.flags&vfs.OAppend != 0 {
		off = rec.Size
	}
	written := 0
	for written < len(p) {
		pos := off + int64(written)
		idx := pos / BlockSize
		bo := int(pos % BlockSize)
		chunk := BlockSize - bo
		if chunk > len(p)-written {
			chunk = len(p) - written
		}
		bn, created, err := f.fs.ensureBlock(&rec, idx)
		if err != nil {
			f.fs.writeInode(f.ino, rec)
			return written, err
		}
		src := p[written : written+chunk]
		if f.fs.opts.DAX {
			if created {
				// Zero the rest of a fresh block directly on NVMM.
				f.fs.nv.Write(f.fs.zero[:], bn*BlockSize)
			}
			f.fs.nv.WriteNT(src, bn*BlockSize+int64(bo))
		} else {
			f.fs.cache.Write(src, bn, bo, created)
		}
		f.fs.col.Copy(obs.CopyUserIn, chunk)
		written += chunk
	}
	if off+int64(len(p)) > rec.Size {
		rec.Size = off + int64(len(p))
	}
	rec.Mtime = time.Now().UnixNano()
	f.fs.writeInode(f.ino, rec)
	if f.flags&vfs.OSync != 0 {
		f.fsyncLocked(rec)
	}
	return written, nil
}

// fsyncLocked flushes the file's data pages and journals the metadata.
func (f *File) fsyncLocked(rec inodeRec) {
	if !f.fs.opts.DAX {
		blocks := (rec.Size + BlockSize - 1) / BlockSize
		for bi := int64(0); bi < blocks; bi++ {
			if bn := f.fs.lookupBlock(rec, bi); bn != 0 {
				f.fs.cache.FlushPage(bn)
			}
		}
	} else {
		f.fs.nv.Fence()
	}
	f.fs.journalMetadata()
	f.fs.bdev.Flush()
}

// Fsync implements vfs.File.
func (f *File) Fsync() error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	st := f.st()
	st.mu.Lock()
	defer st.mu.Unlock()
	f.fsyncLocked(f.fs.readInode(f.ino))
	return nil
}

// Truncate implements vfs.File.
func (f *File) Truncate(size int64) error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	if size < 0 {
		return vfs.ErrInvalid
	}
	st := f.st()
	st.mu.Lock()
	defer st.mu.Unlock()
	return f.truncateLocked(size)
}

func (f *File) truncateLocked(size int64) error {
	rec := f.fs.readInode(f.ino)
	if size == rec.Size {
		return nil
	}
	if size < rec.Size {
		// Free all blocks beyond the boundary (simple full-walk version).
		keep := (size + BlockSize - 1) / BlockSize
		var freed []int64
		blocks := (rec.Size + BlockSize - 1) / BlockSize
		for bi := keep; bi < blocks; bi++ {
			if bn := f.fs.lookupBlock(rec, bi); bn != 0 {
				freed = append(freed, bn)
				f.clearPtr(&rec, bi)
			}
		}
		f.fs.releaseBlocks(freed)
		// Zero the tail of the boundary block.
		if size%BlockSize != 0 {
			if bn := f.fs.lookupBlock(rec, size/BlockSize); bn != 0 {
				tail := int(BlockSize - size%BlockSize)
				if f.fs.opts.DAX {
					f.fs.nv.Write(f.fs.zero[:tail], bn*BlockSize+size%BlockSize)
					f.fs.nv.Flush(bn*BlockSize+size%BlockSize, tail)
				} else {
					f.fs.cache.Write(f.fs.zero[:tail], bn, int(size%BlockSize), false)
				}
			}
		}
	}
	rec.Size = size
	rec.Mtime = time.Now().UnixNano()
	f.fs.writeInode(f.ino, rec)
	return nil
}

// clearPtr zeroes the pointer to file block bi.
func (f *File) clearPtr(rec *inodeRec, bi int64) {
	switch {
	case bi < ptrsDirect:
		rec.Ptrs[bi] = 0
	case bi < ptrsDirect+ptrsPerBlock:
		if ind := rec.Ptrs[idxIndirect]; ind != 0 {
			f.fs.writePtr(ind, bi-ptrsDirect, 0)
		}
	default:
		rel := bi - ptrsDirect - ptrsPerBlock
		if dbl := rec.Ptrs[idxDouble]; dbl != 0 {
			if ind := f.fs.readPtr(dbl, rel/ptrsPerBlock); ind != 0 {
				f.fs.writePtr(ind, rel%ptrsPerBlock, 0)
			}
		}
	}
}

// Close implements vfs.File. A second Close returns ErrClosed without
// touching the refcount.
func (f *File) Close() error {
	if f.closed.Swap(true) {
		return vfs.ErrClosed
	}
	st := f.st()
	st.meta.Lock()
	st.refs--
	reclaim := st.refs == 0 && st.unlinked
	st.meta.Unlock()
	if reclaim {
		// Reclaim under the inode lock so a ReadAt that raced Close and
		// already passed its closed-check finishes before the blocks it is
		// reading are released for reuse.
		st.mu.Lock()
		defer st.mu.Unlock()
		f.fs.reclaim(f.ino, f.fs.readInode(f.ino))
	}
	return nil
}
