// Package extfs implements a traditional block-based file system in the
// style of EXT2/EXT4, used for the paper's baseline systems (Table 3):
//
//   - EXT2+NVMMBD: Journal=false, DAX=false — a non-journaling FS whose
//     every access goes through the OS page cache and the generic block
//     layer (double copy on both paths).
//   - EXT4+NVMMBD: Journal=true, DAX=false — adds JBD2-style ordered-mode
//     metadata journaling (metadata blocks are written twice: once to the
//     journal region, once in place).
//   - EXT4-DAX: Journal=true, DAX=true — the DAX patch: file data bypasses
//     the page cache and is copied directly between the user buffer and
//     NVMM, while metadata keeps the cache-oriented EXT4 path. This
//     matches the paper's observation (§5.2.1) that EXT4-DAX underperforms
//     PMFS on metadata-heavy workloads such as Varmail.
//
// The on-disk format is a classic ext2 simplification: an inode table,
// a block bitmap, and per-inode 10 direct + 1 indirect + 1 double-indirect
// block pointers. Directory blocks hold 64 B fixed dentries. Crash
// recovery is not implemented for these baselines — the paper's figures
// only measure their runtime costs (journal writes included), not their
// recovery; the NVMM-aware systems (pmfs, core) are the ones with real
// recovery.
package extfs

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/blockdev"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
	"hinfs/internal/pagecache"
	"hinfs/internal/vfs"
)

// BlockSize is the file system block size.
const BlockSize = blockdev.BlockSize

const (
	magic         = 0x45585446532016 // "EXTFS" 2016
	inodeSize     = 128
	maxNameLen    = 54
	dentrySize    = 64
	ptrsDirect    = 10
	ptrsPerBlock  = BlockSize / 8
	rootIno       = 1
	typeFree      = 0
	typeFile      = 1
	typeDir       = 2
	inodesPerBlk  = BlockSize / inodeSize
	dentriesPerBl = BlockSize / dentrySize
)

// Options configures Mkfs/Mount.
type Options struct {
	// Journal enables JBD2-style ordered-mode metadata journaling (EXT4).
	Journal bool
	// DAX makes file data bypass the page cache with direct NVMM access.
	DAX bool
	// JournalBlocks sizes the journal region (default 256).
	JournalBlocks int64
	// MaxInodes sizes the inode table (default 65536).
	MaxInodes int64
	// CachePages is the page cache capacity (default 4096 pages = 16 MB).
	CachePages int
	// BlockConfig tunes the emulated block layer.
	BlockConfig blockdev.Config
	// Obs, when non-nil, receives copy-attribution events from the file
	// data path and the page cache (user↔page copies, fills, evictions,
	// flushes). Nil disables accounting.
	Obs *obs.Collector
}

func (o *Options) fill() {
	if o.JournalBlocks == 0 {
		o.JournalBlocks = 256
	}
	if o.MaxInodes == 0 {
		o.MaxInodes = 65536
	}
	if o.CachePages == 0 {
		o.CachePages = 4096
	}
}

type layout struct {
	journalStart int64 // block number
	journalBlks  int64
	inodeStart   int64 // block number
	maxInodes    int64
	bitmapStart  int64
	bitmapBlks   int64
	dataStart    int64
	totalBlocks  int64
}

func computeLayout(totalBlocks int64, o Options) (layout, error) {
	var l layout
	l.totalBlocks = totalBlocks
	l.journalStart = 1
	l.journalBlks = o.JournalBlocks
	l.inodeStart = l.journalStart + l.journalBlks
	l.maxInodes = o.MaxInodes
	inodeBlks := (o.MaxInodes*inodeSize + BlockSize - 1) / BlockSize
	l.bitmapStart = l.inodeStart + inodeBlks
	l.bitmapBlks = (totalBlocks/8 + BlockSize) / BlockSize
	l.dataStart = l.bitmapStart + l.bitmapBlks
	if l.dataStart >= totalBlocks {
		return l, fmt.Errorf("extfs: device too small")
	}
	return l, nil
}

// inodeState mirrors pmfs's per-inode DRAM bookkeeping.
type inodeState struct {
	mu sync.RWMutex

	meta     sync.Mutex
	refs     int
	unlinked bool
}

// Stats counts extfs-level activity.
type Stats struct {
	JournalBlockWrites int64
	MetaFlushes        int64
}

// FS is a mounted extfs instance. It implements vfs.FileSystem.
type FS struct {
	nv    *nvmm.Device
	bdev  *blockdev.Device
	cache *pagecache.Cache
	opts  Options
	l     layout

	nsMu   sync.RWMutex
	states sync.Map // ino → *inodeState

	allocMu sync.Mutex
	words   []uint64
	free    int64
	hint    int64

	inoMu    sync.Mutex
	freeInos []int64

	jMu   sync.Mutex
	jNext int64 // next journal block

	journalWrites atomic.Int64
	metaFlushes   atomic.Int64
	metaTicks     atomic.Int64

	unmounted atomic.Bool
	zero      [BlockSize]byte

	// col receives file-level copy attribution (nil-safe).
	col *obs.Collector
}

// Mkfs formats the NVMM device as extfs and mounts it.
func Mkfs(nv *nvmm.Device, opts Options) (*FS, error) {
	opts.fill()
	bdev := blockdev.New(nv, opts.BlockConfig)
	l, err := computeLayout(bdev.Blocks(), opts)
	if err != nil {
		return nil, err
	}
	fs := &FS{nv: nv, bdev: bdev, cache: pagecache.New(bdev, opts.CachePages), opts: opts, l: l, col: opts.Obs}
	fs.cache.SetObs(opts.Obs)
	fs.words = make([]uint64, (l.totalBlocks+63)/64)
	for bn := int64(0); bn < l.dataStart; bn++ {
		fs.words[bn/64] |= 1 << uint(bn%64)
	}
	fs.free = l.totalBlocks - l.dataStart
	fs.hint = l.dataStart
	// Zero the inode table and persist the bitmap.
	for b := l.inodeStart; b < l.bitmapStart; b++ {
		fs.cache.Write(fs.zero[:], b, 0, true)
	}
	fs.persistBitmap()
	for i := int64(l.maxInodes - 1); i >= 2; i-- {
		fs.freeInos = append(fs.freeInos, i)
	}
	fs.jNext = l.journalStart
	// Root directory.
	fs.writeInode(rootIno, inodeRec{Type: typeDir, Links: 2})
	// Superblock.
	var sb [BlockSize]byte
	binary.LittleEndian.PutUint64(sb[0:], magic)
	binary.LittleEndian.PutUint64(sb[8:], uint64(l.totalBlocks))
	fs.cache.Write(sb[:], 0, 0, true)
	fs.cache.FlushAll()
	return fs, nil
}

func (fs *FS) persistBitmap() {
	buf := make([]byte, len(fs.words)*8)
	for i, w := range fs.words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	for b := int64(0); b < fs.l.bitmapBlks; b++ {
		lo := b * BlockSize
		hi := lo + BlockSize
		if hi > int64(len(buf)) {
			hi = int64(len(buf))
		}
		var pg [BlockSize]byte
		copy(pg[:], buf[lo:hi])
		fs.cache.Write(pg[:], fs.l.bitmapStart+b, 0, true)
	}
}

// Stats returns extfs counters.
func (fs *FS) Stats() Stats {
	return Stats{
		JournalBlockWrites: fs.journalWrites.Load(),
		MetaFlushes:        fs.metaFlushes.Load(),
	}
}

// Cache exposes the page cache (stats, tests).
func (fs *FS) Cache() *pagecache.Cache { return fs.cache }

// BlockDevice exposes the emulated block device (stats, tests).
func (fs *FS) BlockDevice() *blockdev.Device { return fs.bdev }

func (fs *FS) state(ino int64) *inodeState {
	v, ok := fs.states.Load(ino)
	if !ok {
		v, _ = fs.states.LoadOrStore(ino, &inodeState{})
	}
	return v.(*inodeState)
}

func (fs *FS) checkMounted() error {
	if fs.unmounted.Load() {
		return vfs.ErrUnmounted
	}
	return nil
}

// --- inode records through the page cache ---

type inodeRec struct {
	Type  byte
	Links uint32
	Size  int64
	Mtime int64
	Ptrs  [12]int64 // 10 direct, 1 indirect, 1 double-indirect
}

func (fs *FS) inodeLoc(ino int64) (bn int64, off int) {
	return fs.l.inodeStart + ino/inodesPerBlk, int(ino%inodesPerBlk) * inodeSize
}

func (fs *FS) readInode(ino int64) inodeRec {
	bn, off := fs.inodeLoc(ino)
	var b [inodeSize]byte
	fs.cache.Read(b[:], bn, off)
	var r inodeRec
	r.Type = b[0]
	r.Links = binary.LittleEndian.Uint32(b[4:])
	r.Size = int64(binary.LittleEndian.Uint64(b[8:]))
	r.Mtime = int64(binary.LittleEndian.Uint64(b[24:]))
	for i := 0; i < 12; i++ {
		r.Ptrs[i] = int64(binary.LittleEndian.Uint64(b[32+i*8:]))
	}
	return r
}

// metaTick counts metadata mutations and commits the journal every
// commitInterval of them, modelling JBD2's periodic transaction commit.
const commitInterval = 512

func (fs *FS) metaTick() {
	if fs.metaTicks.Add(1)%commitInterval == 0 {
		fs.journalMetadata()
	}
}

// DropCaches flushes and empties the page cache (the paper clears the OS
// page cache before every benchmark run).
func (fs *FS) DropCaches() {
	fs.cache.FlushAll()
	fs.journalMetadata()
	fs.cache.InvalidateAll()
}

func (fs *FS) writeInode(ino int64, r inodeRec) {
	bn, off := fs.inodeLoc(ino)
	var b [inodeSize]byte
	b[0] = r.Type
	binary.LittleEndian.PutUint32(b[4:], r.Links)
	binary.LittleEndian.PutUint64(b[8:], uint64(r.Size))
	binary.LittleEndian.PutUint64(b[24:], uint64(r.Mtime))
	for i := 0; i < 12; i++ {
		binary.LittleEndian.PutUint64(b[32+i*8:], uint64(r.Ptrs[i]))
	}
	fs.cache.Write(b[:], bn, off, false)
	fs.metaTick()
}

// --- block allocation (bitmap pages become dirty metadata) ---

func (fs *FS) allocBlocks(n int) ([]int64, error) {
	fs.allocMu.Lock()
	defer fs.allocMu.Unlock()
	if int64(n) > fs.free {
		return nil, vfs.ErrNoSpace
	}
	out := make([]int64, 0, n)
	bn := fs.hint
	span := fs.l.totalBlocks - fs.l.dataStart
	for scanned := int64(0); len(out) < n && scanned < span+1; scanned++ {
		if bn >= fs.l.totalBlocks {
			bn = fs.l.dataStart
		}
		if fs.words[bn/64]&(1<<uint(bn%64)) == 0 {
			fs.words[bn/64] ^= 1 << uint(bn%64)
			fs.free--
			fs.writeBitmapWord(bn)
			out = append(out, bn)
		}
		bn++
	}
	fs.hint = bn
	if len(out) < n {
		panic("extfs: allocator inconsistency")
	}
	return out, nil
}

func (fs *FS) releaseBlocks(blocks []int64) {
	fs.allocMu.Lock()
	defer fs.allocMu.Unlock()
	for _, bn := range blocks {
		if fs.words[bn/64]&(1<<uint(bn%64)) == 0 {
			panic("extfs: double free")
		}
		fs.words[bn/64] ^= 1 << uint(bn%64)
		fs.free++
		fs.writeBitmapWord(bn)
		fs.cache.Drop(bn)
	}
}

// writeBitmapWord dirties the bitmap page holding bn's word. No metaTick:
// allocation bursts are committed with the inode update that follows.
func (fs *FS) writeBitmapWord(bn int64) {
	word := bn / 64
	pg := fs.l.bitmapStart + word*8/BlockSize
	off := int(word * 8 % BlockSize)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], fs.words[word])
	fs.cache.Write(b[:], pg, off, false)
}

// FreeBlocks returns the free data block count.
func (fs *FS) FreeBlocks() int64 {
	fs.allocMu.Lock()
	defer fs.allocMu.Unlock()
	return fs.free
}

func (fs *FS) allocInode(typ byte) (int64, error) {
	fs.inoMu.Lock()
	if len(fs.freeInos) == 0 {
		fs.inoMu.Unlock()
		return 0, vfs.ErrNoSpace
	}
	ino := fs.freeInos[len(fs.freeInos)-1]
	fs.freeInos = fs.freeInos[:len(fs.freeInos)-1]
	fs.inoMu.Unlock()
	fs.writeInode(ino, inodeRec{Type: typ, Links: 1, Mtime: time.Now().UnixNano()})
	return ino, nil
}

func (fs *FS) freeInode(ino int64) {
	fs.writeInode(ino, inodeRec{})
	fs.inoMu.Lock()
	fs.freeInos = append(fs.freeInos, ino)
	fs.inoMu.Unlock()
	fs.states.Delete(ino)
}

// --- JBD2-style ordered-mode journaling ---

// journalMetadata writes every dirty metadata page to the journal region
// through the block layer (the first of EXT4's two metadata writes), then
// checkpoints the pages in place. With Journal=false (EXT2) the pages are
// just written in place.
func (fs *FS) journalMetadata() {
	dirty := fs.cache.DirtyIn(fs.l.dataStart)
	if len(dirty) == 0 {
		return
	}
	if fs.opts.Journal {
		var buf [BlockSize]byte
		for _, bn := range dirty {
			if !fs.cache.PeekDirty(buf[:], bn) {
				continue
			}
			// Journal write: next sequential block in the journal region.
			fs.jMu.Lock()
			jbn := fs.jNext
			fs.jNext++
			if fs.jNext >= fs.l.journalStart+fs.l.journalBlks {
				fs.jNext = fs.l.journalStart + 1
			}
			fs.jMu.Unlock()
			fs.bdev.WriteBlock(buf[:], jbn)
			fs.journalWrites.Add(1)
		}
		// Commit record at the region head.
		fs.bdev.WriteBlock(fs.zero[:], fs.l.journalStart)
		fs.journalWrites.Add(1)
	}
	// Checkpoint: write the pages in place.
	n := 0
	for _, bn := range dirty {
		if fs.cache.FlushPage(bn) {
			n++
		}
	}
	fs.metaFlushes.Add(int64(n))
}
