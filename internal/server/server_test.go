package server

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"hinfs/internal/nvmm"
	"hinfs/internal/pmfs"
	"hinfs/internal/vfs"
)

func testFS(t testing.TB) vfs.FileSystem {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := pmfs.Mkfs(dev, pmfs.Options{MaxInodes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func testServer(t testing.TB, tenants map[string]TenantConfig) *Server {
	t.Helper()
	srv, err := New(Config{FS: testFS(t), Tenants: tenants, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// pipeClient connects a client to srv over an in-memory pipe.
func pipeClient(t testing.TB, srv *Server, tenant string) *Client {
	t.Helper()
	a, b := net.Pipe()
	go srv.ServeConn(b)
	c, err := NewClient(a, tenant)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Unmount() })
	return c
}

func twoTenants() map[string]TenantConfig {
	return map[string]TenantConfig{
		"alpha": {Root: "/tenants/alpha", Weight: 1},
		"beta":  {Root: "/tenants/beta", Weight: 1},
	}
}

// schedTask wraps a closure in the scheduler's task envelope for the
// deterministic unit tests below (no workers; dispatch by direct next()
// calls, execution by r.t.exec()).
func schedTask(cost int64, fn func()) *schedReq {
	ft := &funcTask{fn: fn, done: make(chan struct{})}
	ft.sr = schedReq{cost: cost, t: ft}
	return &ft.sr
}

// TestSchedulerWeights drives the credit scheduler deterministically —
// no workers, direct next() calls — and checks that backlogged tenants
// are served in weight proportion.
func TestSchedulerWeights(t *testing.T) {
	s := &sched{
		queues: map[string]*schedQueue{
			"big":   {weight: 3},
			"small": {weight: 1},
		},
		order: []string{"big", "small"},
	}
	s.cond = sync.NewCond(&s.mu)
	// Every request costs 1/16 of a quantum, so one replenish cycle
	// (weights 3+1 = 4 quanta of credit) serves exactly 64 requests.
	const reqCost = schedQuantum / 16
	served := map[string]int{}
	for _, name := range s.order {
		name := name
		q := s.queues[name]
		for i := 0; i < 64; i++ {
			q.push(schedTask(reqCost, func() { served[name]++ }))
		}
	}
	// Serve exactly one replenish cycle's worth of requests. No workers
	// run, so nothing settles — the pre-charged estimates are the whole
	// accounting, and dispatch is deterministic.
	for i := 0; i < 64; i++ {
		r := s.next()
		if r == nil {
			t.Fatal("scheduler returned nil with backlog")
		}
		r.t.exec()
	}
	if served["big"] != 48 || served["small"] != 16 {
		t.Fatalf("served big=%d small=%d, want 48 and 16",
			served["big"], served["small"])
	}
}

// TestSchedulerBatchDrain checks batched dispatch: one nextBatch call
// drains up to the cap from the min-vrt queue only, pre-charging each
// request, so a batch is a contiguous single-tenant run.
func TestSchedulerBatchDrain(t *testing.T) {
	s := &sched{
		queues: map[string]*schedQueue{
			"a": {weight: 1},
			"b": {weight: 1},
		},
		order: []string{"a", "b"},
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < 12; i++ {
		for _, name := range s.order {
			q := s.queues[name]
			r := schedTask(schedQuantum, func() {})
			r.q = q
			q.push(r)
		}
	}
	buf := s.nextBatch(nil, 8)
	if len(buf) != 8 {
		t.Fatalf("batch drained %d, want 8", len(buf))
	}
	for i, r := range buf {
		if r.q != s.queues["a"] {
			t.Fatalf("batch element %d from wrong queue", i)
		}
	}
	if got := s.queues["a"].vrt; got != 8*schedQuantum {
		t.Fatalf("pre-charged vrt = %d, want %d", got, 8*schedQuantum)
	}
	// Having pre-charged 8 quanta, tenant a is now behind b: the next
	// batch must come from b, and a short queue yields a short batch.
	buf = s.nextBatch(buf[:0], 8)
	if len(buf) != 8 || buf[0].q != s.queues["b"] {
		t.Fatalf("second batch len=%d from a=%v", len(buf), buf[0].q == s.queues["a"])
	}
	buf = s.nextBatch(buf[:0], 8)
	if len(buf) != 4 || buf[0].q != s.queues["a"] {
		t.Fatalf("third batch len=%d, want the 4 left in a", len(buf))
	}
}

// TestSchedulerByteCost checks that the cost estimate scales with I/O
// size, so a tenant of large writes cannot monopolize via op count.
func TestSchedulerByteCost(t *testing.T) {
	if c := opCost(0); c != 1000 {
		t.Fatalf("opCost(0) = %d", c)
	}
	if c := opCost(64 << 10); c != 17000 {
		t.Fatalf("opCost(64K) = %d", c)
	}
}

// TestSchedulerSettle checks that measured service time is charged back
// at weight rate: a request whose true cost exceeded its estimate
// advances its tenant's virtual clock past the frontier, deferring its
// next service until rivals catch up.
func TestSchedulerSettle(t *testing.T) {
	s := &sched{
		queues: map[string]*schedQueue{
			"heavy": {weight: 2},
			"light": {weight: 1},
		},
		order: []string{"heavy", "light"},
	}
	s.cond = sync.NewCond(&s.mu)
	heavy, light := s.queues["heavy"], s.queues["light"]
	// heavy ran 4 quanta over its estimate: its clock advances by the
	// overrun divided by its weight.
	s.settle(heavy, 4*schedQuantum)
	if heavy.vrt != 2*schedQuantum {
		t.Fatalf("heavy vrt after settle = %d, want %d", heavy.vrt, 2*schedQuantum)
	}
	// With both backlogged, the tenant that has consumed less weighted
	// service is served first regardless of arrival order.
	s.enqueue("heavy", schedTask(1, func() {}))
	s.enqueue("light", schedTask(1, func() {}))
	if r := s.next(); r.q != light {
		t.Fatal("scheduler served the overdrawn tenant before the lagging one")
	}
}

// TestSchedulerLagClamp checks the bounded-memory rule: a tenant
// re-entering from idle keeps at most lagWindow of unused entitlement.
func TestSchedulerLagClamp(t *testing.T) {
	s := &sched{
		queues: map[string]*schedQueue{"t": {weight: 1}},
		order:  []string{"t"},
	}
	s.cond = sync.NewCond(&s.mu)
	s.vtime = 100 * schedQuantum // frontier advanced while t was idle
	if err := s.enqueue("t", schedTask(1, func() {})); err != nil {
		t.Fatal(err)
	}
	if got, want := s.queues["t"].vrt, 100*schedQuantum-lagWindow; got != want {
		t.Fatalf("idle tenant vrt clamped to %d, want %d", got, want)
	}
}

func TestErrorCodesRoundTrip(t *testing.T) {
	for _, m := range errToCode {
		code := codeFor(m.err)
		if code != m.code {
			t.Errorf("codeFor(%v) = %d, want %d", m.err, code, m.code)
		}
		if got := errFor(code, ""); got != m.err {
			t.Errorf("errFor(%d) = %v, want %v", code, got, m.err)
		}
	}
	if code := codeFor(fmt.Errorf("novel")); code != stOther {
		t.Errorf("unknown error code = %d", code)
	}
}

func TestServerBasicOps(t *testing.T) {
	srv := testServer(t, twoTenants())
	c := pipeClient(t, srv, "alpha")

	f, err := c.Create("/hello")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.WriteAt([]byte("remote bytes"), 0); err != nil || n != 12 {
		t.Fatalf("write = %d, %v", n, err)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 12 {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 32)
	n, err := f.ReadAt(buf, 0)
	if err != io.EOF || n != 12 {
		t.Fatalf("short read = %d, %v; want 12, io.EOF", n, err)
	}
	if string(buf[:n]) != "remote bytes" {
		t.Fatalf("read %q", buf[:n])
	}
	if n, err := f.ReadAt(buf[:4], 2); err != nil || n != 4 || string(buf[:4]) != "mote" {
		t.Fatalf("offset read = %d, %v, %q", n, err, buf[:4])
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("read past EOF = %v", err)
	}
	if err := f.Truncate(6); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 6 {
		t.Fatalf("size after truncate = %d", f.Size())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != vfs.ErrClosed {
		t.Fatalf("double close = %v", err)
	}
	if _, err := f.ReadAt(buf, 0); err != vfs.ErrClosed {
		t.Fatalf("read after close = %v", err)
	}

	// Namespace ops and error identity across the wire.
	if _, err := c.Open("/missing", vfs.ORdonly); err != vfs.ErrNotExist {
		t.Fatalf("open missing = %v, want vfs.ErrNotExist", err)
	}
	if err := c.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/d"); err != vfs.ErrExist {
		t.Fatalf("mkdir dup = %v", err)
	}
	if err := c.Rename("/hello", "/d/hi"); err != nil {
		t.Fatal(err)
	}
	fi, err := c.Stat("/d/hi")
	if err != nil || fi.Size != 6 || fi.IsDir {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
	ents, err := c.ReadDir("/")
	if err != nil || len(ents) != 1 || ents[0].Name != "d" || !ents[0].IsDir {
		t.Fatalf("readdir = %v, %v", ents, err)
	}
	if err := c.Rmdir("/d"); err != vfs.ErrNotEmpty {
		t.Fatalf("rmdir non-empty = %v", err)
	}
	if err := c.Unlink("/d/hi"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantIsolation plants data as one tenant and verifies another
// tenant can neither see nor reach it, by listing, by path, or by any
// traversal shape.
func TestTenantIsolation(t *testing.T) {
	srv := testServer(t, twoTenants())
	ca := pipeClient(t, srv, "alpha")
	cb := pipeClient(t, srv, "beta")

	f, err := ca.Create("/secret")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("alpha-only"), 0)
	f.Close()

	if _, err := cb.Stat("/secret"); err != vfs.ErrNotExist {
		t.Fatalf("beta stats alpha's file: %v", err)
	}
	ents, err := cb.ReadDir("/")
	if err != nil || len(ents) != 0 {
		t.Fatalf("beta sees %v, %v", ents, err)
	}
	for _, p := range []string{
		"/../alpha/secret",
		"/../../tenants/alpha/secret",
		"..",
		"/..",
		"/a/../../alpha/secret",
		"/\x00",
	} {
		if _, err := cb.Open(p, vfs.ORdonly); err != vfs.ErrInvalid {
			t.Errorf("escape Open(%q) = %v, want ErrInvalid", p, err)
		}
		if _, err := cb.Stat(p); err != vfs.ErrInvalid {
			t.Errorf("escape Stat(%q) = %v, want ErrInvalid", p, err)
		}
	}
	// Same name in beta's namespace is a different file.
	g, err := cb.Create("/secret")
	if err != nil {
		t.Fatal(err)
	}
	g.WriteAt([]byte("beta"), 0)
	g.Close()
	h, err := ca.Open("/secret", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	buf := make([]byte, 10)
	if n, err := h.ReadAt(buf, 0); (err != nil && err != io.EOF) || string(buf[:n]) != "alpha-only" {
		t.Fatalf("alpha's file changed: %q, %v", buf[:n], err)
	}
}

// TestSessionRequiresAttach checks the protocol rejects ops without an
// Attach and unknown tenants at Attach.
func TestSessionRequiresAttach(t *testing.T) {
	srv := testServer(t, twoTenants())
	a, b := net.Pipe()
	go srv.ServeConn(b)
	if _, err := NewClient(a, "nobody"); err != ErrUnknownTenant {
		t.Fatalf("attach unknown tenant = %v", err)
	}
}

func TestQuota(t *testing.T) {
	srv := testServer(t, map[string]TenantConfig{
		"q": {Root: "/q", QuotaBytes: 64 << 10},
	})
	c := pipeClient(t, srv, "q")
	f, err := c.Create("/data")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(make([]byte, 32<<10), 0); err != nil {
		t.Fatalf("write under quota: %v", err)
	}
	if _, err := f.WriteAt(make([]byte, 64<<10), 32<<10); err != ErrQuota {
		t.Fatalf("write over quota = %v, want ErrQuota", err)
	}
	// Overwrites within the existing size are free.
	if _, err := f.WriteAt(make([]byte, 16<<10), 0); err != nil {
		t.Fatalf("overwrite = %v", err)
	}
	// Truncate growth is charged, shrink refunds.
	if err := f.Truncate(96 << 10); err != ErrQuota {
		t.Fatalf("truncate over quota = %v", err)
	}
	if err := f.Truncate(4 << 10); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 48<<10), 0); err != nil {
		t.Fatalf("write after shrink = %v", err)
	}
	// Unlink refunds the file's bytes.
	if err := c.Unlink("/data"); err != nil {
		t.Fatal(err)
	}
	g, err := c.Create("/data2")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.WriteAt(make([]byte, 60<<10), 0); err != nil {
		t.Fatalf("write after unlink refund = %v", err)
	}
	st := srv.Stats()
	if len(st) != 1 || st[0].QuotaRejects < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestManyClients is the acceptance load: over a real TCP loopback
// listener, 1000+ concurrent clients across two tenants each write a
// uniquely tagged file, read it back, and check namespace isolation.
func TestManyClients(t *testing.T) {
	srv := testServer(t, twoTenants())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	const perTenant = 512 // 1024 concurrent sessions total
	var wg sync.WaitGroup
	errs := make(chan error, 2*perTenant)
	for _, tenant := range []string{"alpha", "beta"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string, i int) {
				defer wg.Done()
				fail := func(format string, args ...any) {
					errs <- fmt.Errorf("%s/%d: %s", tenant, i, fmt.Sprintf(format, args...))
				}
				c, err := Dial(addr, tenant)
				if err != nil {
					fail("dial: %v", err)
					return
				}
				defer c.Unmount()
				path := fmt.Sprintf("/u%d", i)
				tag := fmt.Sprintf("%s:%d", tenant, i)
				f, err := c.Create(path)
				if err != nil {
					fail("create: %v", err)
					return
				}
				if _, err := f.WriteAt([]byte(tag), 0); err != nil {
					fail("write: %v", err)
					return
				}
				buf := make([]byte, len(tag))
				if n, err := f.ReadAt(buf, 0); err != nil && err != io.EOF || n != len(tag) {
					fail("read: %d, %v", n, err)
					return
				}
				if string(buf) != tag {
					fail("cross-tenant or cross-client leak: got %q want %q", buf, tag)
					return
				}
				if err := f.Close(); err != nil {
					fail("close: %v", err)
					return
				}
				// The other tenant's namespace must not contain this file —
				// checked via a traversal attempt, which must be rejected.
				if _, err := c.Stat("/../" + map[string]string{"alpha": "beta", "beta": "alpha"}[tenant] + path); err != vfs.ErrInvalid {
					fail("escape stat = %v", err)
				}
			}(tenant, i)
		}
	}
	wg.Wait()
	close(errs)
	bad := 0
	for err := range errs {
		t.Error(err)
		if bad++; bad > 10 {
			t.Fatal("too many failures")
		}
	}
	// Every client's file landed in its tenant's subtree.
	st := srv.Stats()
	if len(st) != 2 {
		t.Fatalf("stats: %+v", st)
	}
	for _, ts := range st {
		if ts.Ops == 0 || ts.BytesWritten == 0 {
			t.Fatalf("tenant %s recorded no work: %+v", ts.Name, ts)
		}
	}
}

// TestServerClosePendingSessions checks shutdown with live sessions:
// Close unblocks everything and no goroutine deadlocks.
func TestServerCloseUnblocks(t *testing.T) {
	srv := testServer(t, twoTenants())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { srv.Serve(ln); close(done) }()
	c, err := Dial(ln.Addr().String(), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Create("/x")
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	// The client's next op fails cleanly rather than hanging.
	if _, err := c.Stat("/x"); err == nil {
		t.Fatal("op on closed server succeeded")
	}
}
