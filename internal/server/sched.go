package server

import (
	"sync"
	"time"

	"hinfs/internal/obs"
	"hinfs/internal/vfs"
)

// sched is a weighted fair scheduler in the virtual-runtime family (the
// same shape as start-time fair queueing or Linux CFS): each tenant owns
// a FIFO queue and a virtual runtime — its cumulative service time in
// nanoseconds divided by its weight. A bounded worker pool always serves
// the backlogged tenant with the smallest virtual runtime, so over any
// busy interval tenants receive worker time in the ratio of their
// weights, regardless of how many connections each one floods the server
// with.
//
// Dispatch pre-charges the request's estimated cost; after the request
// runs, the worker settles the tenant's clock against the measured
// service time. The settle step is what makes fairness hold for
// operations whose true cost cannot be known up front — an fsync that
// flushes a deep write buffer may cost three orders of magnitude more
// worker time than its estimate, and without settling a tenant could buy
// that time at the estimate price.
//
// A tenant whose queue momentarily drains (its clients' next requests
// are still in flight on the wire) keeps its virtual runtime, so it
// re-enters exactly as far behind as its unused entitlement — fairness
// is preserved across the micro-idle gaps every synchronous RPC client
// exhibits. The memory is bounded: on re-entry the clock is clamped to
// at most lagWindow behind the service frontier, so a tenant idle for an
// hour returns to service quickly but cannot starve others with an
// hour's banked lag.
//
// The scheduler also bounds server concurrency: only `workers` requests
// execute at once, however many sessions are connected. That bound is
// what makes fairness meaningful — contention is resolved by the virtual
// clocks, not by goroutine-scheduler luck.
//
// With pipelined sessions a backlogged tenant queue usually holds many
// requests; a worker drains up to `batch` of them in one dispatch and
// brackets the run in a PersistScope (when configured), so the batch's
// trailing device fences coalesce into one ordering point. The whole
// batch's measured service time settles against the tenant's clock, so
// batching changes the grain of fairness (bounded by batch × quantum),
// never its ratios.
type sched struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string]*schedQueue
	// order fixes the tie-break scan sequence, making single-worker
	// dispatch fully deterministic (tested).
	order []string
	// vtime is the service frontier: the largest virtual runtime any
	// tenant had when dispatched. Re-entering tenants are clamped
	// relative to it when nothing else is backlogged.
	vtime  int64
	closed bool
	wg     sync.WaitGroup
	// batch bounds how many requests one worker drains from a single
	// tenant queue per dispatch.
	batch int
	// newScope, when set, opens a persist scope around every multi-op
	// dispatch batch (server.Config.BatchFences).
	newScope func() PersistScope
}

// PersistScope brackets a dispatch batch for fence coalescing. The
// concrete implementation is nvmm.FenceScope; the indirection keeps the
// server ignorant of the device (baselines and tests run without one).
type PersistScope interface {
	// OpBoundary marks the seam between two independent ops.
	OpBoundary()
	// Close issues the batch's single coalesced ordering point.
	Close()
}

// task is one schedulable unit of work.
type task interface {
	// exec runs the operation body in a worker slot.
	exec()
	// finish completes the task: delivers the response or unblocks the
	// submitter. It runs after the whole dispatch batch's persist scope
	// has closed, so a reply released here is never sent before the
	// batch's coalesced ordering fence. ran=false means the scheduler
	// shut down before the task executed.
	finish(ran bool)
}

// schedQuantum is the granularity of the fairness guarantee in
// nanoseconds of weighted service time (1 ms). lagWindow bounds how far
// behind the service frontier an idle tenant's clock may lag on
// re-entry: at most two quanta of catch-up service can be "banked" by
// going idle. idleGrace decides what "idle" means: a tenant whose queue
// merely blips empty while its clients' next requests are in flight on
// the wire — the steady state of every synchronous RPC client — keeps
// its full entitlement; only a tenant with no arrivals for idleGrace is
// clamped. Without the grace, the clamp fires on every micro-gap and
// quietly confiscates a weighted tenant's share (measured: a 4:1 weight
// ratio degraded to ~1.3:1).
const (
	schedQuantum = int64(time.Millisecond)
	lagWindow    = 2 * schedQuantum
	idleGrace    = 50 * time.Millisecond
)

// defaultDispatchBatch is the per-dispatch drain bound when the server
// config leaves it zero.
const defaultDispatchBatch = 8

type schedQueue struct {
	weight int64
	vrt    int64 // virtual runtime: service ns consumed / weight
	// lastArrival is when the tenant last enqueued a request; the lag
	// clamp applies only after idleGrace of silence.
	lastArrival time.Time
	// head/tail is the intrusive FIFO of waiting requests: enqueue links
	// the request itself, so admission allocates nothing.
	head, tail *schedReq
	depth      int
	// servedNS is cumulative measured service time, the quantity the
	// weights divide; exported per tenant via Server.Stats.
	servedNS int64
	// estErrNS accumulates |measured - estimated| over settled requests:
	// how wrong the pre-charge model is for this tenant's mix, exported
	// so estimate drift is visible before it distorts short-run fairness.
	estErrNS int64
}

func (q *schedQueue) push(r *schedReq) {
	r.next = nil
	if q.tail == nil {
		q.head = r
	} else {
		q.tail.next = r
	}
	q.tail = r
	q.depth++
}

func (q *schedQueue) pop() *schedReq {
	r := q.head
	if r == nil {
		return nil
	}
	q.head = r.next
	if q.head == nil {
		q.tail = nil
	}
	r.next = nil
	q.depth--
	return r
}

// schedReq is the intrusive scheduling envelope embedded in every task:
// the cost estimate, the queue link, and the observability context.
type schedReq struct {
	cost int64 // estimated service nanoseconds, pre-charged at dispatch
	q    *schedQueue
	next *schedReq
	// enq is the admission time; the worker charges ctx's queue stage
	// with enq→dispatch. ctx (optional) also gets attached to the worker
	// goroutine around exec, so deep layers can charge their stages.
	enq time.Time
	ctx *obs.OpCtx
	t   task
}

// opCost estimates an operation's service time in nanoseconds from its
// data size: 1 µs per op plus 1 µs per 4 KiB. The estimate only shapes
// dispatch order over the few requests in flight at once — the worker
// settles each clock to the measured time afterwards, so a wrong
// estimate cannot buy extra service.
func opCost(dataBytes int) int64 { return int64(1+dataBytes/4096) * 1000 }

func newSched(weights map[string]int64, order []string, workers, batch int, newScope func() PersistScope) *sched {
	s := &sched{queues: make(map[string]*schedQueue), order: order, newScope: newScope}
	s.cond = sync.NewCond(&s.mu)
	for name, w := range weights {
		if w <= 0 {
			w = 1
		}
		s.queues[name] = &schedQueue{weight: w}
	}
	if batch <= 0 {
		batch = defaultDispatchBatch
	}
	s.batch = batch
	if workers <= 0 {
		workers = 1
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// enqueue queues r for tenant and returns immediately. A tenant
// re-entering from idle is clamped to at most lagWindow behind the
// furthest-behind backlogged tenant (or the service frontier when the
// server is otherwise idle).
func (s *sched) enqueue(tenant string, r *schedReq) error {
	s.mu.Lock()
	q := s.queues[tenant]
	if q == nil || s.closed {
		s.mu.Unlock()
		return ErrUnknownTenant
	}
	now := time.Now()
	if q.head == nil && now.Sub(q.lastArrival) > idleGrace {
		base := s.vtime
		for _, name := range s.order {
			if o := s.queues[name]; o != q && o.head != nil && o.vrt < base {
				base = o.vrt
			}
		}
		if q.vrt < base-lagWindow {
			q.vrt = base - lagWindow
		}
	}
	q.lastArrival = now
	r.enq = now
	r.q = q
	q.push(r)
	s.mu.Unlock()
	s.cond.Signal()
	return nil
}

// funcTask adapts a plain closure to the task interface for the blocking
// Do path.
type funcTask struct {
	sr   schedReq
	fn   func()
	ran  bool
	done chan struct{}
}

func (t *funcTask) exec() { t.ran = true; t.fn() }

func (t *funcTask) finish(bool) { close(t.done) }

// Do runs fn under the fair scheduler, blocking until it has executed.
// ctx (optional) receives queue-wait and service-time stage charges and
// is attached to the worker goroutine for the duration of fn.
func (s *sched) Do(tenant string, cost int64, ctx *obs.OpCtx, fn func()) error {
	t := &funcTask{fn: fn, done: make(chan struct{})}
	t.sr = schedReq{cost: cost, ctx: ctx, t: t}
	if err := s.enqueue(tenant, &t.sr); err != nil {
		return err
	}
	<-t.done
	if !t.ran {
		return vfs.ErrUnmounted
	}
	return nil
}

// nextBatch blocks for work and drains up to max requests from the
// backlogged queue with the smallest virtual runtime (ties: order
// position), appending them to buf. Each dequeued request advances the
// queue's clock by its estimated cost over weight. Returns buf unchanged
// when the scheduler is closed.
func (s *sched) nextBatch(buf []*schedReq, max int) []*schedReq {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return buf
		}
		var best *schedQueue
		for _, name := range s.order {
			q := s.queues[name]
			if q.head == nil {
				continue
			}
			if best == nil || q.vrt < best.vrt {
				best = q
			}
		}
		if best == nil {
			s.cond.Wait()
			continue
		}
		for len(buf) < max {
			r := best.pop()
			if r == nil {
				break
			}
			best.vrt += r.cost / best.weight
			best.servedNS += r.cost
			buf = append(buf, r)
		}
		if best.vrt > s.vtime {
			s.vtime = best.vrt
		}
		return buf
	}
}

// next is single-request dispatch: the policy nextBatch generalizes,
// kept for determinism tests. nil when the scheduler is closed.
func (s *sched) next() *schedReq {
	buf := s.nextBatch(make([]*schedReq, 0, 1), 1)
	if len(buf) == 0 {
		return nil
	}
	return buf[0]
}

// settle charges q the difference between measured and estimated service
// time (rolling the clock back if the estimate was high).
func (s *sched) settle(q *schedQueue, delta int64) {
	if delta == 0 {
		return
	}
	s.mu.Lock()
	q.vrt += delta / q.weight
	q.servedNS += delta
	if delta < 0 {
		q.estErrNS -= delta
	} else {
		q.estErrNS += delta
	}
	if q.vrt > s.vtime {
		s.vtime = q.vrt
	}
	s.mu.Unlock()
}

func (s *sched) worker() {
	defer s.wg.Done()
	buf := make([]*schedReq, 0, s.batch)
	for {
		buf = s.nextBatch(buf[:0], s.batch)
		if len(buf) == 0 {
			return
		}
		// A multi-op batch coalesces its trailing persist fences: one
		// scope around the whole drain, an op boundary between requests,
		// one real fence at close. Every request's reply is released
		// only after the scope closes, so no client ever sees an ack
		// whose ordering point has not been issued.
		var scope PersistScope
		if len(buf) > 1 && s.newScope != nil {
			scope = s.newScope()
		}
		for i, r := range buf {
			if i > 0 && scope != nil {
				scope.OpBoundary()
			}
			if r.ctx != nil {
				r.ctx.Charge(obs.StageQueue, time.Since(r.enq).Nanoseconds())
				r.ctx.Attach()
			}
			start := time.Now()
			r.t.exec()
			dur := time.Since(start).Nanoseconds()
			if r.ctx != nil {
				r.ctx.Detach()
				r.ctx.Charge(obs.StageService, dur)
			}
			s.settle(r.q, dur-r.cost)
		}
		if scope != nil {
			scope.Close()
		}
		for _, r := range buf {
			r.t.finish(true)
		}
	}
}

// SchedStats is one tenant's scheduler-internal state, exported for the
// debug endpoint, the Prometheus exposition and hinfs-top.
type SchedStats struct {
	// QueueDepth is the number of requests waiting or running.
	QueueDepth int
	// VruntimeLagNS is how far the tenant's virtual clock trails the
	// service frontier (0 when at or past it): its unused entitlement.
	VruntimeLagNS int64
	// ServiceNS is cumulative measured service time.
	ServiceNS int64
	// EstErrNS is cumulative |measured - estimated| over settled
	// requests: the pre-charge model's accumulated error.
	EstErrNS int64
}

// stats snapshots per-tenant scheduler state.
func (s *sched) stats() map[string]SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]SchedStats, len(s.queues))
	for name, q := range s.queues {
		lag := s.vtime - q.vrt
		if lag < 0 {
			lag = 0
		}
		out[name] = SchedStats{
			QueueDepth:    q.depth,
			VruntimeLagNS: lag,
			ServiceNS:     q.servedNS,
			EstErrNS:      q.estErrNS,
		}
	}
	return out
}

// close stops the workers after draining nothing further; queued requests
// are finished without running so blocked sessions unwind.
func (s *sched) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var orphans []*schedReq
	for _, q := range s.queues {
		for r := q.pop(); r != nil; r = q.pop() {
			orphans = append(orphans, r)
		}
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
	for _, r := range orphans {
		r.t.finish(false)
	}
}
