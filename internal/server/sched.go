package server

import (
	"sync"
	"time"

	"hinfs/internal/obs"
	"hinfs/internal/vfs"
)

// sched is a weighted fair scheduler in the virtual-runtime family (the
// same shape as start-time fair queueing or Linux CFS): each tenant owns
// a FIFO queue and a virtual runtime — its cumulative service time in
// nanoseconds divided by its weight. A bounded worker pool always serves
// the backlogged tenant with the smallest virtual runtime, so over any
// busy interval tenants receive worker time in the ratio of their
// weights, regardless of how many connections each one floods the server
// with.
//
// Dispatch pre-charges the request's estimated cost; after the request
// runs, the worker settles the tenant's clock against the measured
// service time. The settle step is what makes fairness hold for
// operations whose true cost cannot be known up front — an fsync that
// flushes a deep write buffer may cost three orders of magnitude more
// worker time than its estimate, and without settling a tenant could buy
// that time at the estimate price.
//
// A tenant whose queue momentarily drains (its clients' next requests
// are still in flight on the wire) keeps its virtual runtime, so it
// re-enters exactly as far behind as its unused entitlement — fairness
// is preserved across the micro-idle gaps every synchronous RPC client
// exhibits. The memory is bounded: on re-entry the clock is clamped to
// at most lagWindow behind the service frontier, so a tenant idle for an
// hour returns to service quickly but cannot starve others with an
// hour's banked lag.
//
// The scheduler also bounds server concurrency: only `workers` requests
// execute at once, however many sessions are connected. That bound is
// what makes fairness meaningful — contention is resolved by the virtual
// clocks, not by goroutine-scheduler luck.
type sched struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string]*schedQueue
	// order fixes the tie-break scan sequence, making single-worker
	// dispatch fully deterministic (tested).
	order []string
	// vtime is the service frontier: the largest virtual runtime any
	// tenant had when dispatched. Re-entering tenants are clamped
	// relative to it when nothing else is backlogged.
	vtime  int64
	closed bool
	wg     sync.WaitGroup
}

// schedQuantum is the granularity of the fairness guarantee in
// nanoseconds of weighted service time (1 ms). lagWindow bounds how far
// behind the service frontier an idle tenant's clock may lag on
// re-entry: at most two quanta of catch-up service can be "banked" by
// going idle. idleGrace decides what "idle" means: a tenant whose queue
// merely blips empty while its clients' next requests are in flight on
// the wire — the steady state of every synchronous RPC client — keeps
// its full entitlement; only a tenant with no arrivals for idleGrace is
// clamped. Without the grace, the clamp fires on every micro-gap and
// quietly confiscates a weighted tenant's share (measured: a 4:1 weight
// ratio degraded to ~1.3:1).
const (
	schedQuantum = int64(time.Millisecond)
	lagWindow    = 2 * schedQuantum
	idleGrace    = 50 * time.Millisecond
)

type schedQueue struct {
	weight int64
	vrt    int64 // virtual runtime: service ns consumed / weight
	// lastArrival is when the tenant last enqueued a request; the lag
	// clamp applies only after idleGrace of silence.
	lastArrival time.Time
	reqs        []*schedReq
	// servedNS is cumulative measured service time, the quantity the
	// weights divide; exported per tenant via Server.Stats.
	servedNS int64
	// estErrNS accumulates |measured - estimated| over settled requests:
	// how wrong the pre-charge model is for this tenant's mix, exported
	// so estimate drift is visible before it distorts short-run fairness.
	estErrNS int64
}

type schedReq struct {
	cost int64 // estimated service nanoseconds, pre-charged at dispatch
	q    *schedQueue
	run  func()
	done chan struct{}
	// ran distinguishes "executed" from "abandoned at shutdown".
	ran bool
	// enq is the admission time; the worker charges ctx's queue stage
	// with enq→dispatch. ctx (optional) also gets attached to the worker
	// goroutine around run, so deep layers can charge their stages.
	enq time.Time
	ctx *obs.OpCtx
}

// opCost estimates an operation's service time in nanoseconds from its
// data size: 1 µs per op plus 1 µs per 4 KiB. The estimate only shapes
// dispatch order over the few requests in flight at once — the worker
// settles each clock to the measured time afterwards, so a wrong
// estimate cannot buy extra service.
func opCost(dataBytes int) int64 { return int64(1+dataBytes/4096) * 1000 }

func newSched(weights map[string]int64, order []string, workers int) *sched {
	s := &sched{queues: make(map[string]*schedQueue), order: order}
	s.cond = sync.NewCond(&s.mu)
	for name, w := range weights {
		if w <= 0 {
			w = 1
		}
		s.queues[name] = &schedQueue{weight: w}
	}
	if workers <= 0 {
		workers = 1
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// enqueue queues r for tenant and returns immediately. A tenant
// re-entering from idle is clamped to at most lagWindow behind the
// furthest-behind backlogged tenant (or the service frontier when the
// server is otherwise idle).
func (s *sched) enqueue(tenant string, r *schedReq) error {
	s.mu.Lock()
	q := s.queues[tenant]
	if q == nil || s.closed {
		s.mu.Unlock()
		return ErrUnknownTenant
	}
	now := time.Now()
	if len(q.reqs) == 0 && now.Sub(q.lastArrival) > idleGrace {
		base := s.vtime
		for _, name := range s.order {
			if o := s.queues[name]; o != q && len(o.reqs) > 0 && o.vrt < base {
				base = o.vrt
			}
		}
		if q.vrt < base-lagWindow {
			q.vrt = base - lagWindow
		}
	}
	q.lastArrival = now
	r.enq = now
	r.q = q
	q.reqs = append(q.reqs, r)
	s.mu.Unlock()
	s.cond.Signal()
	return nil
}

// Do runs fn under the fair scheduler, blocking until it has executed.
// Session loops call it once per request, so a session has at most one
// request in the scheduler — queue depth is bounded by connection count.
// ctx (optional) receives queue-wait and service-time stage charges and
// is attached to the worker goroutine for the duration of fn.
func (s *sched) Do(tenant string, cost int64, ctx *obs.OpCtx, fn func()) error {
	r := &schedReq{cost: cost, run: fn, done: make(chan struct{}), ctx: ctx}
	if err := s.enqueue(tenant, r); err != nil {
		return err
	}
	<-r.done
	if !r.ran {
		return vfs.ErrUnmounted
	}
	return nil
}

// next blocks for the next request to serve, nil when the scheduler is
// closed. Policy: serve the backlogged queue with the smallest virtual
// runtime (ties: order position), advancing its clock by the estimated
// cost over weight.
func (s *sched) next() *schedReq {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		var best *schedQueue
		for _, name := range s.order {
			q := s.queues[name]
			if len(q.reqs) == 0 {
				continue
			}
			if best == nil || q.vrt < best.vrt {
				best = q
			}
		}
		if best == nil {
			s.cond.Wait()
			continue
		}
		r := best.reqs[0]
		best.reqs = best.reqs[1:]
		best.vrt += r.cost / best.weight
		best.servedNS += r.cost
		if best.vrt > s.vtime {
			s.vtime = best.vrt
		}
		return r
	}
}

// settle charges q the difference between measured and estimated service
// time (rolling the clock back if the estimate was high).
func (s *sched) settle(q *schedQueue, delta int64) {
	if delta == 0 {
		return
	}
	s.mu.Lock()
	q.vrt += delta / q.weight
	q.servedNS += delta
	if delta < 0 {
		q.estErrNS -= delta
	} else {
		q.estErrNS += delta
	}
	if q.vrt > s.vtime {
		s.vtime = q.vrt
	}
	s.mu.Unlock()
}

func (s *sched) worker() {
	defer s.wg.Done()
	for {
		r := s.next()
		if r == nil {
			return
		}
		r.ran = true
		if r.ctx != nil {
			r.ctx.Charge(obs.StageQueue, time.Since(r.enq).Nanoseconds())
			r.ctx.Attach()
		}
		start := time.Now()
		r.run()
		dur := time.Since(start).Nanoseconds()
		if r.ctx != nil {
			r.ctx.Detach()
			r.ctx.Charge(obs.StageService, dur)
		}
		s.settle(r.q, dur-r.cost)
		close(r.done)
	}
}

// SchedStats is one tenant's scheduler-internal state, exported for the
// debug endpoint, the Prometheus exposition and hinfs-top.
type SchedStats struct {
	// QueueDepth is the number of requests waiting or running.
	QueueDepth int
	// VruntimeLagNS is how far the tenant's virtual clock trails the
	// service frontier (0 when at or past it): its unused entitlement.
	VruntimeLagNS int64
	// ServiceNS is cumulative measured service time.
	ServiceNS int64
	// EstErrNS is cumulative |measured - estimated| over settled
	// requests: the pre-charge model's accumulated error.
	EstErrNS int64
}

// stats snapshots per-tenant scheduler state.
func (s *sched) stats() map[string]SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]SchedStats, len(s.queues))
	for name, q := range s.queues {
		lag := s.vtime - q.vrt
		if lag < 0 {
			lag = 0
		}
		out[name] = SchedStats{
			QueueDepth:    len(q.reqs),
			VruntimeLagNS: lag,
			ServiceNS:     q.servedNS,
			EstErrNS:      q.estErrNS,
		}
	}
	return out
}

// close stops the workers after draining nothing further; queued requests
// are completed (their done channels closed) without running so blocked
// sessions unwind.
func (s *sched) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var orphans []*schedReq
	for _, q := range s.queues {
		orphans = append(orphans, q.reqs...)
		q.reqs = nil
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
	for _, r := range orphans {
		close(r.done)
	}
}
