package server

import (
	"testing"

	"hinfs/internal/nvmm"
	"hinfs/internal/obs/flight"
	"hinfs/internal/pmfs"
)

// testFlightFS builds a pmfs with an NVMM flight region, returning the
// fs, its recorder, and the device (for decoding the ring back).
func testFlightFS(t testing.TB) (*pmfs.FS, *flight.Recorder, *nvmm.Device) {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := pmfs.Mkfs(dev, pmfs.Options{MaxInodes: 8192, FlightBlocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	rec := fs.Flight()
	if rec == nil {
		t.Fatal("pmfs formatted with FlightBlocks has no recorder")
	}
	return fs, rec, dev
}

// TestServerFlightEndToEnd drives requests through the full wire stack
// and decodes the NVMM ring back: every dispatched request must appear
// exactly once with the trace the client predicted, the right tenant,
// the right canonical op, and a success result.
func TestServerFlightEndToEnd(t *testing.T) {
	fs, rec, dev := testFlightFS(t)
	srv, err := New(Config{FS: fs, Tenants: twoTenants(), Workers: 2, Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := pipeClient(t, srv, "alpha")
	const base = uint64(7) << 32
	c.SetTraceBase(base)

	f, err := c.Create("/a") // trace base+1
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if _, err := f.WriteAt(buf, 0); err != nil { // base+2
		t.Fatal(err)
	}
	if err := f.Fsync(); err != nil { // base+3
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf, 0); err != nil { // base+4
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // base+5
		t.Fatal(err)
	}
	// Records land on the session's writer goroutine after each reply;
	// closing the server drains every writer, so the decode below cannot
	// race an in-flight append.
	c.Unmount()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Seq(); got < 5 {
		t.Fatalf("recorder at seq %d after drain, want >= 5", got)
	}

	off, size := fs.FlightRegion()
	log, err := flight.Decode(dev, off, size)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		trace uint64
		op    uint8
	}{
		{base + 1, flight.OpCreate},
		{base + 2, flight.OpWrite},
		{base + 3, flight.OpFsync},
		{base + 4, flight.OpRead},
		{base + 5, flight.OpClose},
	}
	byTrace := map[uint64]*flight.Record{}
	for i := range log.Records {
		byTrace[log.Records[i].Trace] = &log.Records[i]
	}
	for _, w := range want {
		r := byTrace[w.trace]
		if r == nil {
			t.Fatalf("trace %#x missing from the decoded ring (%d records)", w.trace, len(log.Records))
		}
		if r.Op != w.op {
			t.Errorf("trace %#x: op %s, want %s", w.trace, flight.OpName(r.Op), flight.OpName(w.op))
		}
		if r.Tenant != "alpha" {
			t.Errorf("trace %#x: tenant %q, want alpha", w.trace, r.Tenant)
		}
		if r.Result != 0 {
			t.Errorf("trace %#x: result %d, want 0", w.trace, r.Result)
		}
	}
	wr := byTrace[base+2]
	if wr.Len != 512 || wr.Off != 0 {
		t.Errorf("write record: len %d off %d, want 512/0", wr.Len, wr.Off)
	}
	if wr.Ino == 0 {
		t.Errorf("write record: ino 0, want the file's inode number")
	}
	if byTrace[base+4].Len != 512 {
		t.Errorf("read record: len %d, want 512", byTrace[base+4].Len)
	}
}

// TestServerFlightSteadyStateAllocs repeats the end-to-end allocation
// bound with the recorder on: recording must add nothing to the per-op
// allocation budget (Record encodes into a stack buffer and issues one
// posted NT store).
func TestServerFlightSteadyStateAllocs(t *testing.T) {
	fs, rec, _ := testFlightFS(t)
	srv, err := New(Config{FS: fs, Tenants: twoTenants(), Workers: 4, Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := pipeClient(t, srv, "alpha")
	f, err := c.Create("/hot")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1024)
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ { // warm pools on both sides
		f.ReadAt(buf, 0)
		f.WriteAt(buf, 0)
	}
	n := testing.AllocsPerRun(500, func() {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	})
	// Same budget as the recorder-off steady-state test: flight on must
	// not move it.
	if n > 30 {
		t.Fatalf("read+write round trip with flight on allocates %.1f objects, want <= 30", n)
	}
}
