package server

import (
	"sync/atomic"

	"hinfs/internal/obs"
	"hinfs/internal/vfs"
)

// TenantConfig declares one tenant of the server.
type TenantConfig struct {
	// Root is the tenant's namespace root on the backing file system; the
	// tenant sees it as "/" and structurally cannot name anything outside
	// it (vfs.Sub). Created at server construction if missing.
	Root string
	// Weight is the tenant's fair-share weight (default 1): under
	// contention, tenants receive service in the ratio of their weights.
	Weight int
	// QuotaBytes caps the tenant's logical byte usage (file sizes, not
	// allocated blocks); 0 means unlimited. Accounting is approximate —
	// size deltas observed at the server, not an fsck of the subtree — so
	// it bounds abuse, it is not a billing meter.
	QuotaBytes int64
}

// tenant is the server-side state of one tenant.
type tenant struct {
	name string
	view vfs.FileSystem // Sub-rooted at cfg.Root
	cfg  TenantConfig
	used atomic.Int64 // approximate logical bytes
	// rejects counts quota rejections.
	rejects atomic.Int64
	ops     atomic.Int64
	bytesR  atomic.Int64
	bytesW  atomic.Int64
	// Service-time histograms (ns), measured from scheduler admission to
	// completion, so they include queueing — the latency a fair scheduler
	// actually controls.
	readLat  obs.Hist
	writeLat obs.Hist
	metaLat  obs.Hist
	// win is the same admission-to-completion latency per class, but in
	// rotating windows, so p99/p999 can be read over recent time instead
	// of only end-of-run. Indexed by opClass.
	win [3]*obs.Windows
	// stageNS accumulates each op's per-stage breakdown: where the
	// tenant's measured latency actually went.
	stageNS [obs.NumStages]atomic.Int64
}

// record folds one completed op's measurements into the tenant:
// class histogram, window, per-stage sums.
func (t *tenant) record(class opClass, latNS int64, ctx *obs.OpCtx) {
	t.ops.Add(1)
	switch class {
	case classRead:
		t.readLat.Observe(latNS)
	case classWrite:
		t.writeLat.Observe(latNS)
	default:
		t.metaLat.Observe(latNS)
	}
	t.win[class].Observe(latNS)
	for _, st := range obs.Stages() {
		if ns := ctx.StageNS(st); ns > 0 {
			t.stageNS[st].Add(ns)
		}
	}
}

// chargeGrow admits growth bytes against the quota, returning ErrQuota
// without charging when the tenant would exceed it. Concurrent charges
// may transiently overshoot by the in-flight amount; the subsequent
// settle keeps the long-run balance honest.
func (t *tenant) chargeGrow(growth int64) error {
	if growth <= 0 || t.cfg.QuotaBytes == 0 {
		return nil
	}
	if t.used.Add(growth) > t.cfg.QuotaBytes {
		t.used.Add(-growth)
		t.rejects.Add(1)
		return ErrQuota
	}
	return nil
}

// settle adjusts the balance after an operation whose actual size delta
// differed from the admitted estimate (short write, truncate, unlink).
func (t *tenant) settle(delta int64) {
	if t.cfg.QuotaBytes == 0 || delta == 0 {
		return
	}
	if t.used.Add(delta) < 0 {
		// Approximate accounting can undershoot (e.g. two handles
		// truncating the same file); clamp at zero.
		t.used.Store(0)
	}
}

// TenantStats is a point-in-time summary of one tenant, exported for the
// load generator, the benchmark figure and the debug endpoint.
type TenantStats struct {
	Name         string
	Weight       int
	Ops          int64
	BytesRead    int64
	BytesWritten int64
	UsedBytes    int64
	QuotaBytes   int64
	QuotaRejects int64
	// ServiceNS is the measured worker time the tenant has consumed —
	// the quantity the fair-share weights divide.
	ServiceNS int64
	ReadLat   obs.HistSnapshot
	WriteLat  obs.HistSnapshot
	MetaLat   obs.HistSnapshot
	// StageNS attributes the tenant's cumulative measured latency to
	// stages, keyed by obs.Stage names. queue+quota+lock+stall+flush is
	// the attributed part; "service" is total worker time (containing
	// the middle four); measured-minus-attributed is unaccounted compute
	// (memcpy, framing, handle lookups).
	StageNS map[string]int64
	// Sched is the tenant's live scheduler state.
	Sched SchedStats
	// WindowLat is the admission-to-completion latency over the recent
	// metric windows, per class ("read"/"write"/"meta") — the time-series
	// view the exposition endpoint serves quantiles from.
	WindowLat map[string]obs.HistSnapshot
}

// MeasuredNS returns the tenant's cumulative admission-to-completion
// latency (the denominator of the stage attribution shares).
func (ts *TenantStats) MeasuredNS() int64 {
	return ts.ReadLat.Sum + ts.WriteLat.Sum + ts.MetaLat.Sum
}

func (t *tenant) stats() TenantStats {
	stages := make(map[string]int64, obs.NumStages)
	for _, st := range obs.Stages() {
		if v := t.stageNS[st].Load(); v != 0 {
			stages[st.String()] = v
		}
	}
	return TenantStats{
		Name:         t.name,
		Weight:       t.cfg.Weight,
		Ops:          t.ops.Load(),
		BytesRead:    t.bytesR.Load(),
		BytesWritten: t.bytesW.Load(),
		UsedBytes:    t.used.Load(),
		QuotaBytes:   t.cfg.QuotaBytes,
		QuotaRejects: t.rejects.Load(),
		ReadLat:      t.readLat.Snapshot(),
		WriteLat:     t.writeLat.Snapshot(),
		MetaLat:      t.metaLat.Snapshot(),
		StageNS:      stages,
		WindowLat: map[string]obs.HistSnapshot{
			"read":  t.win[classRead].Merged(0),
			"write": t.win[classWrite].Merged(0),
			"meta":  t.win[classMeta].Merged(0),
		},
	}
}
