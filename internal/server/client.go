package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/obs"
	"hinfs/internal/vfs"
)

// Client is a connection to a Server, attached to one tenant. It
// implements vfs.FileSystem, so workloads, conformance suites and tools
// written against the VFS interfaces run unchanged over the wire; the
// error identities (vfs.ErrNotExist, io.EOF, ...) survive the round trip.
//
// A Client is safe for concurrent use; synchronous calls serialize on
// the connection. For single-connection parallelism, use NewBatch — the
// pipelined submission path (batch.go); for multi-connection
// parallelism, open more clients — connections are the unit of
// concurrency, which is how the load generator simulates users.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	in     []byte
	out    enc
	closed bool
	// trace is the request-ID generator: seeded per client from the wall
	// clock (scrambled so concurrent clients do not collide), incremented
	// per request. The current value is sent in every request frame and is
	// what joins a client-side slow-op record to the server-side one.
	trace atomic.Uint64
	// slow, when set, receives client-observed slow-op records — the
	// round-trip latency as the application saw it, wire time included.
	slow atomic.Pointer[obs.SlowLog]
}

// SetSlowOpLog installs a client-side slow-op log: any request whose
// full round trip reaches the log's threshold is recorded with side
// "client" and the same trace ID the server saw. Pass nil to disable.
func (c *Client) SetSlowOpLog(l *obs.SlowLog) { c.slow.Store(l) }

// nextTrace returns a fresh trace ID for one request.
func (c *Client) nextTrace() uint64 { return c.trace.Add(1) }

// SetTraceBase reseeds the request-ID generator so the next request is
// stamped base+1, the one after base+2, and so on. Harnesses use it to
// make every wire trace predictable, so an externally kept op schedule
// joins server-side records (flight ring, slow-op logs) by trace alone.
func (c *Client) SetTraceBase(base uint64) { c.trace.Store(base) }

// Dial connects to addr and attaches to tenant.
func Dial(addr, tenant string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, tenant)
}

// NewClient attaches to tenant over an existing connection (net.Pipe in
// tests). It takes ownership of conn.
func NewClient(conn net.Conn, tenant string) (*Client, error) {
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
	c.trace.Store(uint64(time.Now().UnixNano()) * 0x9e3779b97f4a7c15)
	c.mu.Lock()
	c.out.b = c.out.b[:0]
	c.out.u8(opAttach)
	trace := c.nextTrace()
	c.out.u64(trace)
	c.out.str(tenant)
	resp, err := c.roundTripLocked()
	if err == nil {
		var d dec
		d.b = resp
		if rt := d.u64(); d.err != nil || rt != trace {
			err = fmt.Errorf("server: attach response trace mismatch")
		} else if st := d.u8(); st != stOK {
			err = errFor(st, d.str())
		}
	}
	c.mu.Unlock()
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// roundTripLocked sends c.out as one frame and reads the response frame.
// The caller holds c.mu and has filled c.out.
func (c *Client) roundTripLocked() ([]byte, error) {
	if c.closed {
		return nil, vfs.ErrUnmounted
	}
	if err := writeFrame(c.bw, c.out.b); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.br, c.in)
	if err != nil {
		return nil, err
	}
	c.in = resp
	return resp, nil
}

// call performs one request for op: the op byte and a fresh trace ID are
// written first, then build encodes the request body into c.out; parse
// (optional) decodes a successful response body.
func (c *Client) call(op byte, build func(*enc), parse func(*dec) error) error {
	slow := c.slow.Load()
	var start time.Time
	if slow != nil {
		start = time.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out.b = c.out.b[:0]
	c.out.u8(op)
	trace := c.nextTrace()
	c.out.u64(trace)
	if build != nil {
		build(&c.out)
	}
	resp, err := c.roundTripLocked()
	if slow != nil {
		if lat := time.Since(start).Nanoseconds(); slow.Exceeds(lat) {
			rec := obs.SlowOp{
				Side:    "client",
				Trace:   obs.TraceString(trace),
				Op:      opName(op),
				TotalNS: lat,
			}
			if err != nil {
				rec.Err = err.Error()
			}
			slow.Record(rec)
		}
	}
	if err != nil {
		return err
	}
	d := dec{b: resp}
	if rt := d.u64(); d.err != nil || rt != trace {
		// The reply stream is desynchronized (a reply for a request this
		// call never made); there is no way to resynchronize a framed
		// pipeline, so poison the connection.
		c.closed = true
		c.conn.Close()
		return fmt.Errorf("server: response trace mismatch (got %#x, want %#x)", rt, trace)
	}
	st := d.u8()
	if st != stOK && st != stEOF {
		detail := ""
		if st == stOther {
			detail = d.str()
		}
		return errFor(st, detail)
	}
	if parse != nil {
		if perr := parse(&d); perr != nil {
			return perr
		}
		if d.err != nil {
			return d.err
		}
	}
	if st == stEOF {
		return io.EOF
	}
	return nil
}

// Create implements vfs.FileSystem.
func (c *Client) Create(path string) (vfs.File, error) {
	var id uint32
	err := c.call(opCreate, func(e *enc) {
		e.str(path)
	}, func(d *dec) error {
		id = d.u32()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &remoteFile{c: c, id: id}, nil
}

// Open implements vfs.FileSystem.
func (c *Client) Open(path string, flags int) (vfs.File, error) {
	var id uint32
	err := c.call(opOpen, func(e *enc) {
		e.u32(uint32(flags))
		e.str(path)
	}, func(d *dec) error {
		id = d.u32()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &remoteFile{c: c, id: id}, nil
}

// Mkdir implements vfs.FileSystem.
func (c *Client) Mkdir(path string) error {
	return c.call(opMkdir, func(e *enc) { e.str(path) }, nil)
}

// Rmdir implements vfs.FileSystem.
func (c *Client) Rmdir(path string) error {
	return c.call(opRmdir, func(e *enc) { e.str(path) }, nil)
}

// Unlink implements vfs.FileSystem.
func (c *Client) Unlink(path string) error {
	return c.call(opUnlink, func(e *enc) { e.str(path) }, nil)
}

// Rename implements vfs.FileSystem.
func (c *Client) Rename(oldpath, newpath string) error {
	return c.call(opRename, func(e *enc) { e.str(oldpath); e.str(newpath) }, nil)
}

// Stat implements vfs.FileSystem.
func (c *Client) Stat(path string) (vfs.FileInfo, error) {
	var fi vfs.FileInfo
	err := c.call(opStat, func(e *enc) {
		e.str(path)
	}, func(d *dec) error {
		fi.Name = d.str()
		fi.Size = int64(d.u64())
		fi.IsDir = d.u8() == 1
		fi.Blocks = int64(d.u64())
		return nil
	})
	return fi, err
}

// ReadDir implements vfs.FileSystem.
func (c *Client) ReadDir(path string) ([]vfs.DirEntry, error) {
	var ents []vfs.DirEntry
	err := c.call(opReadDir, func(e *enc) {
		e.str(path)
	}, func(d *dec) error {
		n := int(d.u32())
		if n < 0 || n > MaxIO {
			return fmt.Errorf("server: implausible directory size %d", n)
		}
		ents = make([]vfs.DirEntry, 0, n)
		for i := 0; i < n; i++ {
			name := d.str()
			isDir := d.u8() == 1
			if d.err != nil {
				return d.err
			}
			ents = append(ents, vfs.DirEntry{Name: name, IsDir: isDir})
		}
		return nil
	})
	return ents, err
}

// Sync implements vfs.FileSystem.
func (c *Client) Sync() error {
	return c.call(opSync, nil, nil)
}

// Unmount implements vfs.FileSystem: it ends the session and closes the
// connection. The server-side file system stays mounted — a tenant does
// not own the mount.
func (c *Client) Unmount() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return vfs.ErrUnmounted
	}
	c.closed = true
	return c.conn.Close()
}

// --- remote file handle ---

// remoteFile is a client-side vfs.File backed by a server handle. It
// deliberately exposes no optional capabilities (no BlockMmapper): device
// memory cannot be aliased across a wire, and the capability probes
// (vfs.FileAs) correctly report that.
type remoteFile struct {
	c  *Client
	id uint32
	mu sync.Mutex
	// closed guards double-close client-side so the handle ID — which the
	// server may eventually reuse for another session — is never sent
	// after Close.
	closed bool
}

func (f *remoteFile) checkOpen() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return vfs.ErrClosed
	}
	return nil
}

// ReadAt implements vfs.File, chunking at MaxIO.
func (f *remoteFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > MaxIO {
			chunk = MaxIO
		}
		var n int
		err := f.c.call(opRead, func(e *enc) {
			e.u32(f.id)
			e.u64(uint64(off + int64(total)))
			e.u32(uint32(chunk))
		}, func(d *dec) error {
			// Copy inside the parse callback: it runs under the client
			// mutex, and the decoded slice aliases the connection's reusable
			// receive buffer.
			n = copy(p[total:], d.bytes())
			return nil
		})
		total += n
		if err != nil {
			return total, err
		}
		if n < chunk {
			// Short read without EOF status should not happen; treat it as
			// EOF rather than spinning.
			return total, io.EOF
		}
	}
	return total, nil
}

// WriteAt implements vfs.File, chunking at MaxIO.
func (f *remoteFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	total := 0
	for {
		chunk := len(p) - total
		if chunk > MaxIO {
			chunk = MaxIO
		}
		var n int
		err := f.c.call(opWrite, func(e *enc) {
			e.u32(f.id)
			e.u64(uint64(off + int64(total)))
			e.bytes(p[total : total+chunk])
		}, func(d *dec) error {
			n = int(d.u32())
			return nil
		})
		total += n
		if err != nil {
			return total, err
		}
		if total >= len(p) {
			return total, nil
		}
		if n < chunk {
			return total, vfs.ErrNoSpace
		}
	}
}

// Fsync implements vfs.File.
func (f *remoteFile) Fsync() error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	return f.c.call(opFsync, func(e *enc) { e.u32(f.id) }, nil)
}

// Truncate implements vfs.File.
func (f *remoteFile) Truncate(size int64) error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	return f.c.call(opTruncate, func(e *enc) {
		e.u32(f.id)
		e.u64(uint64(size))
	}, nil)
}

// Size implements vfs.File.
func (f *remoteFile) Size() int64 {
	if err := f.checkOpen(); err != nil {
		return 0
	}
	var size int64
	err := f.c.call(opSize, func(e *enc) { e.u32(f.id) }, func(d *dec) error {
		size = int64(d.u64())
		return nil
	})
	if err != nil {
		return 0
	}
	return size
}

// Close implements vfs.File. A second Close returns ErrClosed locally
// without another round trip.
func (f *remoteFile) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return vfs.ErrClosed
	}
	f.closed = true
	f.mu.Unlock()
	return f.c.call(opClose, func(e *enc) { e.u32(f.id) }, nil)
}
