package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
	"hinfs/internal/pmfs"
	"hinfs/internal/vfs"
)

// TestStageAttribution drives enough fsync-heavy load through the server
// to exercise every charge site and checks the acceptance property: the
// attributed stages (queue+quota+lock+stall+flush) account for the
// measured admission-to-completion latency, within tolerance.
func TestStageAttribution(t *testing.T) {
	// A device with emulated persist latency, as deployments have: without
	// it, service time is all unattributable real compute and the
	// attribution ratio is meaningless.
	dev, err := nvmm.New(nvmm.Config{
		Size:           128 << 20,
		WriteLatency:   200 * time.Nanosecond,
		WriteBandwidth: 1 << 30,
		TimeScale:      16,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := pmfs.Mkfs(dev, pmfs.Options{MaxInodes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		FS:      fs,
		Tenants: map[string]TenantConfig{"alpha": {Root: "/t/alpha", Weight: 1, QuotaBytes: 64 << 20}},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := pipeClient(t, srv, "alpha")
			f, err := c.Create("/f" + string(rune('a'+i)))
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			buf := make([]byte, 8<<10)
			for j := 0; j < 30; j++ {
				if _, err := f.WriteAt(buf, int64(j%4)*int64(len(buf))); err != nil {
					t.Error(err)
					return
				}
				if j%3 == 2 {
					if err := f.Fsync(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()

	ts := srv.Stats()[0]
	measured := ts.MeasuredNS()
	if measured <= 0 {
		t.Fatal("no measured latency")
	}
	if ts.StageNS["queue"] <= 0 {
		t.Error("no queue time attributed with 8 clients on 2 workers")
	}
	if ts.StageNS["service"] <= 0 {
		t.Error("no service time attributed")
	}
	if ts.StageNS["flush"] <= 0 {
		t.Error("no flush time attributed despite fsyncs")
	}
	var attributed int64
	for _, st := range []string{"queue", "quota", "lock", "stall", "flush"} {
		attributed += ts.StageNS[st]
	}
	// Attribution must neither miss most of the latency nor exceed it by
	// more than bookkeeping skew (stage charges and the latency clock are
	// read at slightly different instants). The floor is loose because
	// StageFlush charges analytic device time when no collector is
	// attached: the emulation's wall overshoot (spin-wait quantization,
	// preemption on small hosts) is real latency but lands in
	// unattributed service, not flush.
	if ratio := float64(attributed) / float64(measured); ratio < 0.35 || ratio > 1.1 {
		t.Errorf("attributed/measured = %.2f (attributed %d, measured %d, stages %v)",
			ratio, attributed, measured, ts.StageNS)
	}
	// The non-queue attributed stages all happen inside the service slot.
	inService := attributed - ts.StageNS["queue"]
	if inService > ts.StageNS["service"] {
		t.Errorf("in-service stages %d exceed service time %d", inService, ts.StageNS["service"])
	}
	if ts.Sched.ServiceNS <= 0 {
		t.Error("scheduler reports no service time")
	}
	if ts.Sched.QueueDepth != 0 {
		t.Errorf("queue depth %d after quiesce", ts.Sched.QueueDepth)
	}
	// Window metrics saw the same ops.
	var winCount int64
	for _, h := range ts.WindowLat {
		winCount += h.Count
	}
	if winCount == 0 {
		t.Error("window metrics recorded nothing")
	}
}

// TestSlowOpTraceMatch is the end-to-end trace-propagation check: with
// log-everything thresholds on both sides, every server record's trace
// ID must also appear in the client's log — the same u64 that crossed
// the wire in the request frame.
func TestSlowOpTraceMatch(t *testing.T) {
	var serverLog bytes.Buffer
	srv, err := New(Config{
		FS:              testFS(t),
		Tenants:         map[string]TenantConfig{"alpha": {Root: "/t/alpha", Weight: 1}},
		Workers:         1,
		SlowOpThreshold: time.Nanosecond, // log every op
		SlowOpLog:       &serverLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var clientLog bytes.Buffer
	c := pipeClient(t, srv, "alpha")
	c.SetSlowOpLog(obs.NewSlowLog(&clientLog, time.Nanosecond))

	f, err := c.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Server-side slow-op records land on the writer goroutine after each
	// reply; drain before parsing the log.
	c.Unmount()
	srv.Close()

	parse := func(buf *bytes.Buffer) map[string]obs.SlowOp {
		out := map[string]obs.SlowOp{}
		sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
		for sc.Scan() {
			var op obs.SlowOp
			if err := json.Unmarshal(sc.Bytes(), &op); err != nil {
				t.Fatalf("bad slow-op line %q: %v", sc.Text(), err)
			}
			out[op.Trace+"/"+op.Op] = op
		}
		return out
	}
	serverOps := parse(&serverLog)
	clientOps := parse(&clientLog)
	if len(serverOps) == 0 || len(clientOps) == 0 {
		t.Fatalf("server logged %d, client logged %d", len(serverOps), len(clientOps))
	}
	matched := 0
	for key, sop := range serverOps {
		cop, ok := clientOps[key]
		if !ok {
			t.Errorf("server op %s has no client record", key)
			continue
		}
		matched++
		if sop.Side != "server" || cop.Side != "client" {
			t.Errorf("sides = %q/%q", sop.Side, cop.Side)
		}
		if sop.Trace == obs.TraceString(0) {
			t.Error("zero trace ID crossed the wire")
		}
		// The client clock includes the wire; it can never be under the
		// server's measured latency by more than clock skew.
		if cop.TotalNS < sop.TotalNS/2 {
			t.Errorf("%s: client %dns vs server %dns", key, cop.TotalNS, sop.TotalNS)
		}
		if sop.Op == "fsync" && sop.Stages["service"] <= 0 {
			t.Errorf("fsync record missing stage breakdown: %v", sop.Stages)
		}
	}
	if matched == 0 {
		t.Fatal("no trace matched between client and server logs")
	}
	if got := srv.SlowOpsLogged(); got != int64(len(serverOps)) {
		t.Errorf("SlowOpsLogged = %d, want %d", got, len(serverOps))
	}
}

// TestWrapFSOverClient checks the obs wrapper composes over the remote
// file system too: a server.Client wrapped by obs.WrapFS records op
// classes like any local system — the coverage the harness relies on
// when it benchmarks over the wire.
func TestWrapFSOverClient(t *testing.T) {
	srv := testServer(t, twoTenants())
	c := pipeClient(t, srv, "alpha")
	col := obs.New()
	fs := obs.WrapFS(c, col)

	f, err := fs.Create("/w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 1024), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 1024), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	s := col.Snapshot()
	for op, want := range map[obs.OpClass]int64{
		obs.OpCreate: 1, obs.OpWrite: 1, obs.OpRead: 1, obs.OpFsync: 1, obs.OpMeta: 1,
	} {
		if got := s.Op(op).Count; got != want {
			t.Errorf("%s over the wire: count %d, want %d", op, got, want)
		}
	}
}

// TestWriteProm checks the exposition output: well-formed families with
// nonzero per-tenant series after load.
func TestWriteProm(t *testing.T) {
	srv := testServer(t, twoTenants())
	c := pipeClient(t, srv, "alpha")
	f, err := c.Create("/p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 2048), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Per-op accounting lands on the session's writer goroutine after the
	// reply is on the wire; shut the server down (idempotent — the cleanup
	// calls it again) so the scrape below sees all three ops.
	c.Unmount()
	srv.Close()

	var buf bytes.Buffer
	srv.WriteProm(&buf)
	out := buf.String()
	for _, family := range []string{
		"hinfs_tenant_ops_total",
		"hinfs_tenant_bytes_total",
		"hinfs_tenant_stage_ns_total",
		"hinfs_tenant_measured_ns_total",
		"hinfs_sched_queue_depth",
		"hinfs_sched_vruntime_lag_ns",
		"hinfs_sched_service_ns_total",
		"hinfs_sched_estimate_error_ns_total",
	} {
		if !strings.Contains(out, "# TYPE "+family+" ") {
			t.Errorf("missing TYPE header for %s", family)
		}
		if !strings.Contains(out, family+"{") {
			t.Errorf("missing samples for %s", family)
		}
	}
	// The loaded tenant has nonzero ops; both tenants appear.
	if !strings.Contains(out, `hinfs_tenant_ops_total{tenant="alpha"} 3`) {
		t.Errorf("alpha ops sample wrong:\n%s", out)
	}
	if !strings.Contains(out, `hinfs_tenant_ops_total{tenant="beta"} 0`) {
		t.Errorf("beta ops sample missing:\n%s", out)
	}
	// Registered through the registry, the same bytes come out of the
	// /metrics composition path.
	reg := obs.NewRegistry()
	reg.RegisterProm("server", srv.WriteProm)
	var buf2 bytes.Buffer
	reg.WriteProm(&buf2)
	if !strings.Contains(buf2.String(), "hinfs_tenant_ops_total") {
		t.Error("registry exposition missing server metrics")
	}
}

// TestTraceNonzeroOnWire asserts the client stamps every request with a
// nonzero trace ID (the server logs it verbatim, so zero would make
// records unjoinable).
func TestTraceNonzeroOnWire(t *testing.T) {
	var log bytes.Buffer
	srv, err := New(Config{
		FS:              testFS(t),
		Tenants:         map[string]TenantConfig{"alpha": {Root: "/t/alpha", Weight: 1}},
		SlowOpThreshold: time.Nanosecond,
		SlowOpLog:       &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := pipeClient(t, srv, "alpha")
	if err := c.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	// The slow-op record is emitted by the writer goroutine after the
	// reply; drain it before reading the log buffer.
	c.Unmount()
	srv.Close()
	var op obs.SlowOp
	if err := json.Unmarshal(log.Bytes(), &op); err != nil {
		t.Fatalf("no slow-op record: %v", err)
	}
	if op.Trace == obs.TraceString(0) {
		t.Fatal("client sent trace 0")
	}
	if op.Op != "mkdir" {
		t.Fatalf("op = %q", op.Op)
	}
}

// TestSubViewStillConfined re-checks namespace confinement with the obs
// plumbing in place: the trace context must not leak paths across
// tenants or bypass Sub.
func TestSubViewStillConfined(t *testing.T) {
	srv := testServer(t, twoTenants())
	a := pipeClient(t, srv, "alpha")
	b := pipeClient(t, srv, "beta")
	if err := a.Mkdir("/only-alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Stat("/only-alpha"); err != vfs.ErrNotExist {
		t.Fatalf("beta sees alpha's directory: %v", err)
	}
	if _, err := b.Stat("/../alpha/only-alpha"); err != vfs.ErrInvalid {
		t.Fatalf("path escape not rejected: %v", err)
	}
}
