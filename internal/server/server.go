package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"hinfs/internal/vfs"
)

// Config assembles a server.
type Config struct {
	// FS is the backing file system. The server is the only writer the
	// tenants reach; it may be any vfs.FileSystem (HiNFS or a baseline).
	FS vfs.FileSystem
	// Tenants declares the tenant set. Roots are created if missing.
	Tenants map[string]TenantConfig
	// Workers bounds concurrently executing requests (default 8). This is
	// the fair scheduler's service capacity.
	Workers int
}

// Server multiplexes framed-RPC sessions from many clients onto one
// backing file system, with per-tenant namespace confinement, quota
// accounting and weighted fair scheduling.
type Server struct {
	fs      vfs.FileSystem
	tenants map[string]*tenant
	order   []string
	sched   *sched

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// New validates the tenant set, creates missing roots, and starts the
// scheduler workers. The caller owns fs; Server.Close does not unmount it.
func New(cfg Config) (*Server, error) {
	if cfg.FS == nil {
		return nil, fmt.Errorf("server: no backing file system")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("server: no tenants configured")
	}
	s := &Server{
		fs:      cfg.FS,
		tenants: make(map[string]*tenant),
		conns:   make(map[net.Conn]struct{}),
	}
	for name := range cfg.Tenants {
		s.order = append(s.order, name)
	}
	sort.Strings(s.order)
	weights := make(map[string]int64)
	for _, name := range s.order {
		tc := cfg.Tenants[name]
		if tc.Weight <= 0 {
			tc.Weight = 1
		}
		if err := mkdirAll(cfg.FS, tc.Root); err != nil {
			return nil, fmt.Errorf("server: tenant %s root %q: %w", name, tc.Root, err)
		}
		view, err := vfs.Sub(cfg.FS, tc.Root)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %s: %w", name, err)
		}
		s.tenants[name] = &tenant{name: name, view: view, cfg: tc}
		weights[name] = int64(tc.Weight)
	}
	s.sched = newSched(weights, s.order, cfg.Workers)
	return s, nil
}

// mkdirAll creates path and its ancestors on fs.
func mkdirAll(fs vfs.FileSystem, path string) error {
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return err
	}
	for i := 1; i <= len(parts); i++ {
		if err := fs.Mkdir(vfs.JoinPath(parts[:i])); err != nil && err != vfs.ErrExist {
			return err
		}
	}
	return nil
}

// Serve accepts sessions on ln until the listener fails or the server is
// closed. It is the caller's accept loop; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return vfs.ErrUnmounted
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// ServeConn runs one session on an existing connection (net.Pipe in
// tests, pre-accepted sockets) and blocks until it ends.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	s.serveConn(conn)
}

// Close stops accepting, tears down every session, and stops the
// scheduler. The backing file system is left mounted.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	s.sched.close()
	return nil
}

// Stats snapshots every tenant, in name order.
func (s *Server) Stats() []TenantStats {
	svc := s.sched.serviceNS()
	out := make([]TenantStats, 0, len(s.order))
	for _, name := range s.order {
		ts := s.tenants[name].stats()
		ts.ServiceNS = svc[name]
		out = append(out, ts)
	}
	return out
}

// --- session ---

// handle is one open file in a session's handle table.
type handle struct {
	f     vfs.File
	flags int
}

type session struct {
	srv     *Server
	ten     *tenant
	handles map[uint32]handle
	nextID  uint32
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sess := &session{srv: s, handles: make(map[uint32]handle), nextID: 1}
	defer sess.closeAll()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var in []byte
	var out enc
	for {
		payload, err := readFrame(br, in)
		if err != nil {
			return // EOF, reset, or protocol violation: the session is over
		}
		in = payload
		out.b = out.b[:0]
		sess.dispatch(payload, &out)
		if err := writeFrame(bw, out.b); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// closeAll closes every handle the session still holds — the server-side
// half of the handle lifecycle: a dying connection leaks nothing.
func (sess *session) closeAll() {
	for id, h := range sess.handles {
		h.f.Close()
		delete(sess.handles, id)
	}
}

// fail encodes an error response.
func fail(out *enc, err error) {
	code := codeFor(err)
	out.u8(code)
	if code == stOther {
		out.str(err.Error())
	}
}

// dispatch decodes one request and produces one response. Attach runs
// inline; every other op runs under the fair scheduler as the session's
// tenant.
func (sess *session) dispatch(payload []byte, out *enc) {
	d := dec{b: payload}
	op := d.u8()
	if d.err != nil {
		fail(out, vfs.ErrInvalid)
		return
	}
	if op == opAttach {
		name := d.str()
		if d.err != nil {
			fail(out, vfs.ErrInvalid)
			return
		}
		t := sess.srv.tenants[name]
		if t == nil {
			fail(out, ErrUnknownTenant)
			return
		}
		sess.ten = t
		out.u8(stOK)
		return
	}
	if sess.ten == nil {
		fail(out, ErrNoTenant)
		return
	}
	// Decode in the session goroutine; only the file-system work runs in
	// a scheduler slot.
	run, cost, class := sess.decode(op, &d)
	if run == nil {
		fail(out, vfs.ErrInvalid)
		return
	}
	t := sess.ten
	start := time.Now()
	if err := t.srvDo(sess.srv.sched, cost, run, out); err != nil {
		out.b = out.b[:0]
		fail(out, err)
		return
	}
	lat := time.Since(start).Nanoseconds()
	t.ops.Add(1)
	switch class {
	case classRead:
		t.readLat.Observe(lat)
	case classWrite:
		t.writeLat.Observe(lat)
	default:
		t.metaLat.Observe(lat)
	}
}

// srvDo runs fn in a scheduler slot for tenant t.
func (t *tenant) srvDo(s *sched, cost int64, fn func(*enc), out *enc) error {
	return s.Do(t.name, cost, func() { fn(out) })
}

type opClass int

const (
	classMeta opClass = iota
	classRead
	classWrite
)

// decode parses the request for op and returns the closure that executes
// it and encodes the response, plus its scheduler cost and latency class.
// A nil closure means a malformed request.
func (sess *session) decode(op byte, d *dec) (func(*enc), int64, opClass) {
	t := sess.ten
	view := t.view
	switch op {
	case opOpen:
		flags := int(d.u32())
		path := d.str()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			f, err := view.Open(path, flags)
			if err != nil {
				fail(out, err)
				return
			}
			id := sess.put(f, flags)
			out.u8(stOK)
			out.u32(id)
		}, 1, classMeta
	case opCreate:
		path := d.str()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			f, err := view.Create(path)
			if err != nil {
				fail(out, err)
				return
			}
			id := sess.put(f, vfs.ORdwr)
			out.u8(stOK)
			out.u32(id)
		}, 1, classMeta
	case opClose:
		id := d.u32()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			h, ok := sess.handles[id]
			if !ok {
				fail(out, ErrBadHandle)
				return
			}
			delete(sess.handles, id)
			if err := h.f.Close(); err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
		}, 1, classMeta
	case opRead:
		id := d.u32()
		off := int64(d.u64())
		n := int(d.u32())
		if d.err != nil || n < 0 || n > MaxIO {
			return nil, 0, classRead
		}
		return func(out *enc) {
			h, ok := sess.handles[id]
			if !ok {
				fail(out, ErrBadHandle)
				return
			}
			buf := make([]byte, n)
			got, err := h.f.ReadAt(buf, off)
			switch err {
			case nil:
				out.u8(stOK)
			case io.EOF:
				out.u8(stEOF)
			default:
				fail(out, err)
				return
			}
			out.bytes(buf[:got])
			t.bytesR.Add(int64(got))
		}, opCost(n), classRead
	case opWrite:
		id := d.u32()
		off := int64(d.u64())
		data := d.bytes()
		if d.err != nil {
			return nil, 0, classWrite
		}
		return func(out *enc) {
			h, ok := sess.handles[id]
			if !ok {
				fail(out, ErrBadHandle)
				return
			}
			// Quota: admit the estimated growth before writing, settle to
			// the actual size delta after.
			oldSize := h.f.Size()
			end := off + int64(len(data))
			if h.flags&vfs.OAppend != 0 {
				end = oldSize + int64(len(data))
			}
			growth := end - oldSize
			if growth < 0 {
				growth = 0
			}
			if err := t.chargeGrow(growth); err != nil {
				fail(out, err)
				return
			}
			n, err := h.f.WriteAt(data, off)
			t.settle(h.f.Size() - oldSize - growth)
			if err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
			out.u32(uint32(n))
			t.bytesW.Add(int64(n))
		}, opCost(len(data)), classWrite
	case opFsync:
		id := d.u32()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			h, ok := sess.handles[id]
			if !ok {
				fail(out, ErrBadHandle)
				return
			}
			if err := h.f.Fsync(); err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
		}, 1, classMeta
	case opTruncate:
		id := d.u32()
		size := int64(d.u64())
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			h, ok := sess.handles[id]
			if !ok {
				fail(out, ErrBadHandle)
				return
			}
			oldSize := h.f.Size()
			if err := t.chargeGrow(size - oldSize); err != nil {
				fail(out, err)
				return
			}
			err := h.f.Truncate(size)
			grow := size - oldSize
			if grow < 0 {
				grow = 0
			}
			t.settle(h.f.Size() - oldSize - grow)
			if err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
		}, 1, classMeta
	case opSize:
		id := d.u32()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			h, ok := sess.handles[id]
			if !ok {
				fail(out, ErrBadHandle)
				return
			}
			out.u8(stOK)
			out.u64(uint64(h.f.Size()))
		}, 1, classMeta
	case opMkdir, opRmdir, opUnlink:
		path := d.str()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			var err error
			switch op {
			case opMkdir:
				err = view.Mkdir(path)
			case opRmdir:
				err = view.Rmdir(path)
			case opUnlink:
				var fi vfs.FileInfo
				fi, err = view.Stat(path)
				if err == nil {
					if err = view.Unlink(path); err == nil {
						t.settle(-fi.Size)
					}
				}
			}
			if err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
		}, 1, classMeta
	case opRename:
		oldp := d.str()
		newp := d.str()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			if err := view.Rename(oldp, newp); err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
		}, 1, classMeta
	case opStat:
		path := d.str()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			fi, err := view.Stat(path)
			if err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
			out.str(fi.Name)
			out.u64(uint64(fi.Size))
			if fi.IsDir {
				out.u8(1)
			} else {
				out.u8(0)
			}
			out.u64(uint64(fi.Blocks))
		}, 1, classMeta
	case opReadDir:
		path := d.str()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			ents, err := view.ReadDir(path)
			if err != nil {
				fail(out, err)
				return
			}
			total := 0
			for _, e := range ents {
				total += 3 + len(e.Name)
			}
			if total > MaxIO {
				fail(out, fmt.Errorf("server: directory listing exceeds %d bytes", MaxIO))
				return
			}
			out.u8(stOK)
			out.u32(uint32(len(ents)))
			for _, e := range ents {
				out.str(e.Name)
				if e.IsDir {
					out.u8(1)
				} else {
					out.u8(0)
				}
			}
		}, 1, classMeta
	case opSync:
		return func(out *enc) {
			if err := view.Sync(); err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
		}, 1, classMeta
	}
	return nil, 0, classMeta
}

// put registers a handle and returns its session-local ID. IDs are never
// reused within a session, so a stale client ID cannot alias a newer file.
func (sess *session) put(f vfs.File, flags int) uint32 {
	id := sess.nextID
	sess.nextID++
	sess.handles[id] = handle{f: f, flags: flags}
	return id
}
