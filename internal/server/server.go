package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"hinfs/internal/obs"
	"hinfs/internal/vfs"
)

// Config assembles a server.
type Config struct {
	// FS is the backing file system. The server is the only writer the
	// tenants reach; it may be any vfs.FileSystem (HiNFS or a baseline).
	FS vfs.FileSystem
	// Tenants declares the tenant set. Roots are created if missing.
	Tenants map[string]TenantConfig
	// Workers bounds concurrently executing requests (default 8). This is
	// the fair scheduler's service capacity.
	Workers int
	// SlowOpThreshold triggers the structured slow-op log: any op whose
	// admission-to-completion latency reaches it is written to SlowOpLog
	// as one JSON line with trace ID, tenant, op and the full per-stage
	// breakdown. 0 disables the log.
	SlowOpThreshold time.Duration
	// SlowOpLog receives the slow-op JSON lines (default os.Stderr when
	// SlowOpThreshold is set).
	SlowOpLog io.Writer
	// MetricsWindow and MetricsWindows shape the per-tenant time-series
	// latency metrics: MetricsWindows rotating windows of MetricsWindow
	// each (defaults 1s × 8).
	MetricsWindow  time.Duration
	MetricsWindows int
}

// Server multiplexes framed-RPC sessions from many clients onto one
// backing file system, with per-tenant namespace confinement, quota
// accounting and weighted fair scheduling.
type Server struct {
	fs      vfs.FileSystem
	tenants map[string]*tenant
	order   []string
	sched   *sched
	slow    *obs.SlowLog

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// New validates the tenant set, creates missing roots, and starts the
// scheduler workers. The caller owns fs; Server.Close does not unmount it.
func New(cfg Config) (*Server, error) {
	if cfg.FS == nil {
		return nil, fmt.Errorf("server: no backing file system")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("server: no tenants configured")
	}
	s := &Server{
		fs:      cfg.FS,
		tenants: make(map[string]*tenant),
		conns:   make(map[net.Conn]struct{}),
	}
	if cfg.SlowOpThreshold > 0 {
		w := cfg.SlowOpLog
		if w == nil {
			w = os.Stderr
		}
		s.slow = obs.NewSlowLog(w, cfg.SlowOpThreshold)
	}
	for name := range cfg.Tenants {
		s.order = append(s.order, name)
	}
	sort.Strings(s.order)
	weights := make(map[string]int64)
	for _, name := range s.order {
		tc := cfg.Tenants[name]
		if tc.Weight <= 0 {
			tc.Weight = 1
		}
		if err := mkdirAll(cfg.FS, tc.Root); err != nil {
			return nil, fmt.Errorf("server: tenant %s root %q: %w", name, tc.Root, err)
		}
		view, err := vfs.Sub(cfg.FS, tc.Root)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %s: %w", name, err)
		}
		t := &tenant{name: name, view: view, cfg: tc}
		for i := range t.win {
			t.win[i] = obs.NewWindows(cfg.MetricsWindow, cfg.MetricsWindows)
		}
		s.tenants[name] = t
		weights[name] = int64(tc.Weight)
	}
	s.sched = newSched(weights, s.order, cfg.Workers)
	return s, nil
}

// mkdirAll creates path and its ancestors on fs.
func mkdirAll(fs vfs.FileSystem, path string) error {
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return err
	}
	for i := 1; i <= len(parts); i++ {
		if err := fs.Mkdir(vfs.JoinPath(parts[:i])); err != nil && err != vfs.ErrExist {
			return err
		}
	}
	return nil
}

// Serve accepts sessions on ln until the listener fails or the server is
// closed. It is the caller's accept loop; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return vfs.ErrUnmounted
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// ServeConn runs one session on an existing connection (net.Pipe in
// tests, pre-accepted sockets) and blocks until it ends.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	s.serveConn(conn)
}

// Close stops accepting, tears down every session, and stops the
// scheduler. The backing file system is left mounted.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	s.sched.close()
	return nil
}

// Stats snapshots every tenant, in name order.
func (s *Server) Stats() []TenantStats {
	sched := s.sched.stats()
	out := make([]TenantStats, 0, len(s.order))
	for _, name := range s.order {
		ts := s.tenants[name].stats()
		ts.Sched = sched[name]
		ts.ServiceNS = ts.Sched.ServiceNS
		out = append(out, ts)
	}
	return out
}

// SlowOpsLogged reports how many slow-op records the server has written.
func (s *Server) SlowOpsLogged() int64 { return s.slow.Logged() }

// WriteProm writes the server's tenant and scheduler metrics in the
// Prometheus text exposition format: per-tenant op/byte/quota counters,
// per-stage attributed time, recent-window latency quantiles per op
// class, and scheduler internals (queue depth, vruntime lag, estimate
// error). Register it on a debug server with
// obs.Default.RegisterProm("server", srv.WriteProm).
func (s *Server) WriteProm(w io.Writer) {
	p := obs.NewPromWriter(w)
	stats := s.Stats()

	p.Header("hinfs_tenant_ops_total", "Completed operations per tenant.", "counter")
	for i := range stats {
		p.Metric("hinfs_tenant_ops_total", float64(stats[i].Ops), "tenant", stats[i].Name)
	}
	p.Header("hinfs_tenant_bytes_total", "Bytes moved per tenant and direction.", "counter")
	for i := range stats {
		p.Metric("hinfs_tenant_bytes_total", float64(stats[i].BytesRead), "tenant", stats[i].Name, "dir", "read")
		p.Metric("hinfs_tenant_bytes_total", float64(stats[i].BytesWritten), "tenant", stats[i].Name, "dir", "write")
	}
	p.Header("hinfs_tenant_used_bytes", "Approximate logical bytes in use per tenant.", "gauge")
	for i := range stats {
		p.Metric("hinfs_tenant_used_bytes", float64(stats[i].UsedBytes), "tenant", stats[i].Name)
	}
	p.Header("hinfs_tenant_quota_rejects_total", "Operations rejected by the byte quota.", "counter")
	for i := range stats {
		p.Metric("hinfs_tenant_quota_rejects_total", float64(stats[i].QuotaRejects), "tenant", stats[i].Name)
	}
	p.Header("hinfs_tenant_stage_ns_total", "Measured latency attributed to each stage, per tenant.", "counter")
	for i := range stats {
		for _, st := range obs.Stages() {
			p.Metric("hinfs_tenant_stage_ns_total", float64(stats[i].StageNS[st.String()]),
				"tenant", stats[i].Name, "stage", st.String())
		}
	}
	p.Header("hinfs_tenant_measured_ns_total", "Cumulative admission-to-completion latency per tenant.", "counter")
	for i := range stats {
		p.Metric("hinfs_tenant_measured_ns_total", float64(stats[i].MeasuredNS()), "tenant", stats[i].Name)
	}
	p.Header("hinfs_tenant_window_latency_ns", "Latency quantiles over the recent metric windows, per tenant and op class.", "gauge")
	for i := range stats {
		for class, h := range stats[i].WindowLat {
			if h.Count == 0 {
				continue
			}
			for _, q := range []struct {
				v float64
				s string
			}{{0.5, "0.5"}, {0.99, "0.99"}, {0.999, "0.999"}} {
				p.Metric("hinfs_tenant_window_latency_ns", float64(h.Quantile(q.v)),
					"tenant", stats[i].Name, "class", class, "quantile", q.s)
			}
		}
	}
	p.Header("hinfs_sched_queue_depth", "Requests queued or running per tenant.", "gauge")
	for i := range stats {
		p.Metric("hinfs_sched_queue_depth", float64(stats[i].Sched.QueueDepth), "tenant", stats[i].Name)
	}
	p.Header("hinfs_sched_vruntime_lag_ns", "How far the tenant's virtual clock trails the service frontier.", "gauge")
	for i := range stats {
		p.Metric("hinfs_sched_vruntime_lag_ns", float64(stats[i].Sched.VruntimeLagNS), "tenant", stats[i].Name)
	}
	p.Header("hinfs_sched_service_ns_total", "Measured worker time consumed per tenant.", "counter")
	for i := range stats {
		p.Metric("hinfs_sched_service_ns_total", float64(stats[i].Sched.ServiceNS), "tenant", stats[i].Name)
	}
	p.Header("hinfs_sched_estimate_error_ns_total", "Cumulative |measured-estimated| service time per tenant.", "counter")
	for i := range stats {
		p.Metric("hinfs_sched_estimate_error_ns_total", float64(stats[i].Sched.EstErrNS), "tenant", stats[i].Name)
	}
	p.Header("hinfs_slow_ops_total", "Slow-op log records written by the server.", "counter")
	p.Metric("hinfs_slow_ops_total", float64(s.slow.Logged()))
}

// --- session ---

// handle is one open file in a session's handle table.
type handle struct {
	f     vfs.File
	flags int
}

type session struct {
	srv     *Server
	ten     *tenant
	handles map[uint32]handle
	nextID  uint32
	// opctx is the request-scoped observability context, embedded so the
	// per-request hot path allocates nothing: Reset on decode, charged
	// through the scheduler and deep layers, read back after completion.
	opctx obs.OpCtx
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sess := &session{srv: s, handles: make(map[uint32]handle), nextID: 1}
	defer sess.closeAll()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var in []byte
	var out enc
	for {
		payload, err := readFrame(br, in)
		if err != nil {
			return // EOF, reset, or protocol violation: the session is over
		}
		in = payload
		out.b = out.b[:0]
		sess.dispatch(payload, &out)
		if err := writeFrame(bw, out.b); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// closeAll closes every handle the session still holds — the server-side
// half of the handle lifecycle: a dying connection leaks nothing.
func (sess *session) closeAll() {
	for id, h := range sess.handles {
		h.f.Close()
		delete(sess.handles, id)
	}
}

// fail encodes an error response.
func fail(out *enc, err error) {
	code := codeFor(err)
	out.u8(code)
	if code == stOther {
		out.str(err.Error())
	}
}

// obsClass maps an opcode to the obs op class used for trace spans and
// the slow-op log.
func obsClass(op byte) obs.OpClass {
	switch op {
	case opRead:
		return obs.OpRead
	case opWrite:
		return obs.OpWrite
	case opFsync, opSync:
		return obs.OpFsync
	case opCreate:
		return obs.OpCreate
	case opUnlink:
		return obs.OpUnlink
	}
	return obs.OpMeta
}

// dispatch decodes one request and produces one response. Attach runs
// inline; every other op runs under the fair scheduler as the session's
// tenant. Every request carries a u64 trace ID after the op byte; it
// rides sess.opctx through the scheduler and the deep layers so the
// response-side accounting can attribute the measured latency to stages.
func (sess *session) dispatch(payload []byte, out *enc) {
	d := dec{b: payload}
	op := d.u8()
	trace := d.u64()
	if d.err != nil {
		fail(out, vfs.ErrInvalid)
		return
	}
	if op == opAttach {
		name := d.str()
		if d.err != nil {
			fail(out, vfs.ErrInvalid)
			return
		}
		t := sess.srv.tenants[name]
		if t == nil {
			fail(out, ErrUnknownTenant)
			return
		}
		sess.ten = t
		out.u8(stOK)
		return
	}
	if sess.ten == nil {
		fail(out, ErrNoTenant)
		return
	}
	// Decode in the session goroutine; only the file-system work runs in
	// a scheduler slot.
	sess.opctx.Reset(trace, obsClass(op))
	run, cost, class := sess.decode(op, &d)
	if run == nil {
		fail(out, vfs.ErrInvalid)
		return
	}
	t := sess.ten
	start := time.Now()
	err := t.srvDo(sess.srv.sched, cost, &sess.opctx, run, out)
	lat := time.Since(start).Nanoseconds()
	if err != nil {
		out.b = out.b[:0]
		fail(out, err)
		return
	}
	t.record(class, lat, &sess.opctx)
	if sess.srv.slow.Exceeds(lat) {
		sess.srv.slow.Record(obs.SlowOp{
			Side:    "server",
			Trace:   obs.TraceString(trace),
			Tenant:  t.name,
			Op:      opName(op),
			TotalNS: lat,
			Stages:  obs.StageMap(sess.opctx.Breakdown()),
		})
	}
}

// srvDo runs fn in a scheduler slot for tenant t.
func (t *tenant) srvDo(s *sched, cost int64, ctx *obs.OpCtx, fn func(*enc), out *enc) error {
	return s.Do(t.name, cost, ctx, func() { fn(out) })
}

type opClass int

const (
	classMeta opClass = iota
	classRead
	classWrite
)

// decode parses the request for op and returns the closure that executes
// it and encodes the response, plus its scheduler cost and latency class.
// A nil closure means a malformed request.
func (sess *session) decode(op byte, d *dec) (func(*enc), int64, opClass) {
	t := sess.ten
	view := t.view
	switch op {
	case opOpen:
		flags := int(d.u32())
		path := d.str()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			f, err := view.Open(path, flags)
			if err != nil {
				fail(out, err)
				return
			}
			id := sess.put(f, flags)
			out.u8(stOK)
			out.u32(id)
		}, 1, classMeta
	case opCreate:
		path := d.str()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			f, err := view.Create(path)
			if err != nil {
				fail(out, err)
				return
			}
			id := sess.put(f, vfs.ORdwr)
			out.u8(stOK)
			out.u32(id)
		}, 1, classMeta
	case opClose:
		id := d.u32()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			h, ok := sess.handles[id]
			if !ok {
				fail(out, ErrBadHandle)
				return
			}
			delete(sess.handles, id)
			if err := h.f.Close(); err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
		}, 1, classMeta
	case opRead:
		id := d.u32()
		off := int64(d.u64())
		n := int(d.u32())
		if d.err != nil || n < 0 || n > MaxIO {
			return nil, 0, classRead
		}
		return func(out *enc) {
			h, ok := sess.handles[id]
			if !ok {
				fail(out, ErrBadHandle)
				return
			}
			buf := make([]byte, n)
			got, err := h.f.ReadAt(buf, off)
			switch err {
			case nil:
				out.u8(stOK)
			case io.EOF:
				out.u8(stEOF)
			default:
				fail(out, err)
				return
			}
			out.bytes(buf[:got])
			t.bytesR.Add(int64(got))
		}, opCost(n), classRead
	case opWrite:
		id := d.u32()
		off := int64(d.u64())
		data := d.bytes()
		if d.err != nil {
			return nil, 0, classWrite
		}
		return func(out *enc) {
			h, ok := sess.handles[id]
			if !ok {
				fail(out, ErrBadHandle)
				return
			}
			// Quota: admit the estimated growth before writing, settle to
			// the actual size delta after.
			oldSize := h.f.Size()
			end := off + int64(len(data))
			if h.flags&vfs.OAppend != 0 {
				end = oldSize + int64(len(data))
			}
			growth := end - oldSize
			if growth < 0 {
				growth = 0
			}
			qt := time.Now()
			err := t.chargeGrow(growth)
			sess.opctx.Charge(obs.StageQuota, time.Since(qt).Nanoseconds())
			if err != nil {
				fail(out, err)
				return
			}
			n, err := h.f.WriteAt(data, off)
			t.settle(h.f.Size() - oldSize - growth)
			if err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
			out.u32(uint32(n))
			t.bytesW.Add(int64(n))
		}, opCost(len(data)), classWrite
	case opFsync:
		id := d.u32()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			h, ok := sess.handles[id]
			if !ok {
				fail(out, ErrBadHandle)
				return
			}
			if err := h.f.Fsync(); err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
		}, 1, classMeta
	case opTruncate:
		id := d.u32()
		size := int64(d.u64())
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			h, ok := sess.handles[id]
			if !ok {
				fail(out, ErrBadHandle)
				return
			}
			oldSize := h.f.Size()
			qt := time.Now()
			cerr := t.chargeGrow(size - oldSize)
			sess.opctx.Charge(obs.StageQuota, time.Since(qt).Nanoseconds())
			if cerr != nil {
				fail(out, cerr)
				return
			}
			err := h.f.Truncate(size)
			grow := size - oldSize
			if grow < 0 {
				grow = 0
			}
			t.settle(h.f.Size() - oldSize - grow)
			if err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
		}, 1, classMeta
	case opSize:
		id := d.u32()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			h, ok := sess.handles[id]
			if !ok {
				fail(out, ErrBadHandle)
				return
			}
			out.u8(stOK)
			out.u64(uint64(h.f.Size()))
		}, 1, classMeta
	case opMkdir, opRmdir, opUnlink:
		path := d.str()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			var err error
			switch op {
			case opMkdir:
				err = view.Mkdir(path)
			case opRmdir:
				err = view.Rmdir(path)
			case opUnlink:
				var fi vfs.FileInfo
				fi, err = view.Stat(path)
				if err == nil {
					if err = view.Unlink(path); err == nil {
						t.settle(-fi.Size)
					}
				}
			}
			if err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
		}, 1, classMeta
	case opRename:
		oldp := d.str()
		newp := d.str()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			if err := view.Rename(oldp, newp); err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
		}, 1, classMeta
	case opStat:
		path := d.str()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			fi, err := view.Stat(path)
			if err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
			out.str(fi.Name)
			out.u64(uint64(fi.Size))
			if fi.IsDir {
				out.u8(1)
			} else {
				out.u8(0)
			}
			out.u64(uint64(fi.Blocks))
		}, 1, classMeta
	case opReadDir:
		path := d.str()
		if d.err != nil {
			return nil, 0, classMeta
		}
		return func(out *enc) {
			ents, err := view.ReadDir(path)
			if err != nil {
				fail(out, err)
				return
			}
			total := 0
			for _, e := range ents {
				total += 3 + len(e.Name)
			}
			if total > MaxIO {
				fail(out, fmt.Errorf("server: directory listing exceeds %d bytes", MaxIO))
				return
			}
			out.u8(stOK)
			out.u32(uint32(len(ents)))
			for _, e := range ents {
				out.str(e.Name)
				if e.IsDir {
					out.u8(1)
				} else {
					out.u8(0)
				}
			}
		}, 1, classMeta
	case opSync:
		return func(out *enc) {
			if err := view.Sync(); err != nil {
				fail(out, err)
				return
			}
			out.u8(stOK)
		}, 1, classMeta
	}
	return nil, 0, classMeta
}

// put registers a handle and returns its session-local ID. IDs are never
// reused within a session, so a stale client ID cannot alias a newer file.
func (sess *session) put(f vfs.File, flags int) uint32 {
	id := sess.nextID
	sess.nextID++
	sess.handles[id] = handle{f: f, flags: flags}
	return id
}
