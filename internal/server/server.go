package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"hinfs/internal/obs"
	"hinfs/internal/obs/flight"
	"hinfs/internal/vfs"
)

// Config assembles a server.
type Config struct {
	// FS is the backing file system. The server is the only writer the
	// tenants reach; it may be any vfs.FileSystem (HiNFS or a baseline).
	FS vfs.FileSystem
	// Tenants declares the tenant set. Roots are created if missing.
	Tenants map[string]TenantConfig
	// Workers bounds concurrently executing requests (default 8). This is
	// the fair scheduler's service capacity.
	Workers int
	// SlowOpThreshold triggers the structured slow-op log: any op whose
	// admission-to-completion latency reaches it is written to SlowOpLog
	// as one JSON line with trace ID, tenant, op and the full per-stage
	// breakdown. 0 disables the log.
	SlowOpThreshold time.Duration
	// SlowOpLog receives the slow-op JSON lines (default os.Stderr when
	// SlowOpThreshold is set).
	SlowOpLog io.Writer
	// MetricsWindow and MetricsWindows shape the per-tenant time-series
	// latency metrics: MetricsWindows rotating windows of MetricsWindow
	// each (defaults 1s × 8).
	MetricsWindow  time.Duration
	MetricsWindows int
	// SessionWindow bounds in-flight (pipelined) requests per session
	// (default 256). A client exceeding it is simply not read from until
	// replies drain — backpressure, not an error.
	SessionWindow int
	// DispatchBatch bounds how many queued requests one scheduler worker
	// drains from a single tenant queue per dispatch (default 8). The
	// whole batch's service time is charged to the tenant, so batching
	// coarsens the fairness grain without changing the ratios.
	DispatchBatch int
	// BatchFences, when set, opens a persist scope around every multi-op
	// dispatch batch so the batch's trailing device fences coalesce into
	// one ordering point (wire it to nvmm's Device.EnterFenceScope).
	// Replies are released only after the scope closes.
	BatchFences func() PersistScope
	// Flight, when set, receives one persisted record per dispatched
	// request: trace, tenant, op, ino, offset, length, stage breakdown
	// and result code, NT-stored into the NVMM flight ring with no fence
	// (internal/obs/flight). Wire it to the backing FS's Flight()
	// recorder; nil disables recording.
	Flight *flight.Recorder
}

// defaultSessionWindow is the per-session in-flight bound when the
// config leaves SessionWindow zero.
const defaultSessionWindow = 256

// Server multiplexes framed-RPC sessions from many clients onto one
// backing file system, with per-tenant namespace confinement, quota
// accounting and weighted fair scheduling.
type Server struct {
	fs      vfs.FileSystem
	tenants map[string]*tenant
	order   []string
	sched   *sched
	slow    *obs.SlowLog
	flight  *flight.Recorder
	window  int

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// New validates the tenant set, creates missing roots, and starts the
// scheduler workers. The caller owns fs; Server.Close does not unmount it.
func New(cfg Config) (*Server, error) {
	if cfg.FS == nil {
		return nil, fmt.Errorf("server: no backing file system")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("server: no tenants configured")
	}
	s := &Server{
		fs:      cfg.FS,
		tenants: make(map[string]*tenant),
		conns:   make(map[net.Conn]struct{}),
		flight:  cfg.Flight,
		window:  cfg.SessionWindow,
	}
	if s.window <= 0 {
		s.window = defaultSessionWindow
	}
	if cfg.SlowOpThreshold > 0 {
		w := cfg.SlowOpLog
		if w == nil {
			w = os.Stderr
		}
		s.slow = obs.NewSlowLog(w, cfg.SlowOpThreshold)
	}
	for name := range cfg.Tenants {
		s.order = append(s.order, name)
	}
	sort.Strings(s.order)
	weights := make(map[string]int64)
	for _, name := range s.order {
		tc := cfg.Tenants[name]
		if tc.Weight <= 0 {
			tc.Weight = 1
		}
		if err := mkdirAll(cfg.FS, tc.Root); err != nil {
			return nil, fmt.Errorf("server: tenant %s root %q: %w", name, tc.Root, err)
		}
		view, err := vfs.Sub(cfg.FS, tc.Root)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %s: %w", name, err)
		}
		t := &tenant{name: name, view: view, cfg: tc}
		for i := range t.win {
			t.win[i] = obs.NewWindows(cfg.MetricsWindow, cfg.MetricsWindows)
		}
		s.tenants[name] = t
		weights[name] = int64(tc.Weight)
	}
	s.sched = newSched(weights, s.order, cfg.Workers, cfg.DispatchBatch, cfg.BatchFences)
	return s, nil
}

// mkdirAll creates path and its ancestors on fs.
func mkdirAll(fs vfs.FileSystem, path string) error {
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return err
	}
	for i := 1; i <= len(parts); i++ {
		if err := fs.Mkdir(vfs.JoinPath(parts[:i])); err != nil && err != vfs.ErrExist {
			return err
		}
	}
	return nil
}

// Serve accepts sessions on ln until the listener fails or the server is
// closed. It is the caller's accept loop; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return vfs.ErrUnmounted
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// ServeConn runs one session on an existing connection (net.Pipe in
// tests, pre-accepted sockets) and blocks until it ends.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	s.serveConn(conn)
}

// Close stops accepting, tears down every session, and stops the
// scheduler. The backing file system is left mounted.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	s.sched.close()
	return nil
}

// Stats snapshots every tenant, in name order.
func (s *Server) Stats() []TenantStats {
	sched := s.sched.stats()
	out := make([]TenantStats, 0, len(s.order))
	for _, name := range s.order {
		ts := s.tenants[name].stats()
		ts.Sched = sched[name]
		ts.ServiceNS = ts.Sched.ServiceNS
		out = append(out, ts)
	}
	return out
}

// SlowOpsLogged reports how many slow-op records the server has written.
func (s *Server) SlowOpsLogged() int64 { return s.slow.Logged() }

// WriteProm writes the server's tenant and scheduler metrics in the
// Prometheus text exposition format: per-tenant op/byte/quota counters,
// per-stage attributed time, recent-window latency quantiles per op
// class, and scheduler internals (queue depth, vruntime lag, estimate
// error). Register it on a debug server with
// obs.Default.RegisterProm("server", srv.WriteProm).
func (s *Server) WriteProm(w io.Writer) {
	p := obs.NewPromWriter(w)
	stats := s.Stats()

	p.Header("hinfs_tenant_ops_total", "Completed operations per tenant.", "counter")
	for i := range stats {
		p.Metric("hinfs_tenant_ops_total", float64(stats[i].Ops), "tenant", stats[i].Name)
	}
	p.Header("hinfs_tenant_bytes_total", "Bytes moved per tenant and direction.", "counter")
	for i := range stats {
		p.Metric("hinfs_tenant_bytes_total", float64(stats[i].BytesRead), "tenant", stats[i].Name, "dir", "read")
		p.Metric("hinfs_tenant_bytes_total", float64(stats[i].BytesWritten), "tenant", stats[i].Name, "dir", "write")
	}
	p.Header("hinfs_tenant_used_bytes", "Approximate logical bytes in use per tenant.", "gauge")
	for i := range stats {
		p.Metric("hinfs_tenant_used_bytes", float64(stats[i].UsedBytes), "tenant", stats[i].Name)
	}
	p.Header("hinfs_tenant_quota_rejects_total", "Operations rejected by the byte quota.", "counter")
	for i := range stats {
		p.Metric("hinfs_tenant_quota_rejects_total", float64(stats[i].QuotaRejects), "tenant", stats[i].Name)
	}
	p.Header("hinfs_tenant_stage_ns_total", "Measured latency attributed to each stage, per tenant.", "counter")
	for i := range stats {
		for _, st := range obs.Stages() {
			p.Metric("hinfs_tenant_stage_ns_total", float64(stats[i].StageNS[st.String()]),
				"tenant", stats[i].Name, "stage", st.String())
		}
	}
	p.Header("hinfs_tenant_measured_ns_total", "Cumulative admission-to-completion latency per tenant.", "counter")
	for i := range stats {
		p.Metric("hinfs_tenant_measured_ns_total", float64(stats[i].MeasuredNS()), "tenant", stats[i].Name)
	}
	p.Header("hinfs_tenant_window_latency_ns", "Latency quantiles over the recent metric windows, per tenant and op class.", "gauge")
	for i := range stats {
		for class, h := range stats[i].WindowLat {
			if h.Count == 0 {
				continue
			}
			for _, q := range []struct {
				v float64
				s string
			}{{0.5, "0.5"}, {0.99, "0.99"}, {0.999, "0.999"}} {
				p.Metric("hinfs_tenant_window_latency_ns", float64(h.Quantile(q.v)),
					"tenant", stats[i].Name, "class", class, "quantile", q.s)
			}
		}
	}
	p.Header("hinfs_sched_queue_depth", "Requests queued or running per tenant.", "gauge")
	for i := range stats {
		p.Metric("hinfs_sched_queue_depth", float64(stats[i].Sched.QueueDepth), "tenant", stats[i].Name)
	}
	p.Header("hinfs_sched_vruntime_lag_ns", "How far the tenant's virtual clock trails the service frontier.", "gauge")
	for i := range stats {
		p.Metric("hinfs_sched_vruntime_lag_ns", float64(stats[i].Sched.VruntimeLagNS), "tenant", stats[i].Name)
	}
	p.Header("hinfs_sched_service_ns_total", "Measured worker time consumed per tenant.", "counter")
	for i := range stats {
		p.Metric("hinfs_sched_service_ns_total", float64(stats[i].Sched.ServiceNS), "tenant", stats[i].Name)
	}
	p.Header("hinfs_sched_estimate_error_ns_total", "Cumulative |measured-estimated| service time per tenant.", "counter")
	for i := range stats {
		p.Metric("hinfs_sched_estimate_error_ns_total", float64(stats[i].Sched.EstErrNS), "tenant", stats[i].Name)
	}
	p.Header("hinfs_slow_ops_total", "Slow-op log records written by the server.", "counter")
	p.Metric("hinfs_slow_ops_total", float64(s.slow.Logged()))
	p.Header("hinfs_window_coverage_ns", "Age of the oldest retained metrics window — the span the recent-window quantiles actually cover.", "gauge")
	now := time.Now().UnixNano()
	var cov int64
	for _, name := range s.order {
		for _, win := range s.tenants[name].win {
			if o, ok := win.Oldest(); ok {
				if age := now - o; age > cov {
					cov = age
				}
			}
		}
	}
	p.Metric("hinfs_window_coverage_ns", float64(cov))
	if s.flight != nil {
		p.Header("hinfs_flight_seq", "Highest flight-recorder sequence number issued.", "counter")
		p.Metric("hinfs_flight_seq", float64(s.flight.Seq()))
		p.Header("hinfs_flight_slots", "Flight ring capacity in records.", "gauge")
		p.Metric("hinfs_flight_slots", float64(s.flight.Slots()))
	}
}

// --- session ---

// handle is one open file in a session's handle table. ino is resolved
// once at registration (vfs.InodeNumberer probe) so stamping it into
// flight records costs nothing per I/O; 0 when the backend has no
// stable inode numbers.
type handle struct {
	f     vfs.File
	flags int
	ino   uint64
}

// session is one connection's server-side state. The reader goroutine
// (serveConn) decodes frames and admits requests to the scheduler; any
// worker may execute them; the writer goroutine serializes completions
// back onto the wire in completion order, which — with out-of-order
// completion across the fair scheduler — is not arrival order. The
// window (slots) bounds in-flight requests per session, so one
// pipelining client cannot queue unbounded work.
type session struct {
	srv  *Server
	conn net.Conn
	ten  *tenant
	bw   *bufio.Writer

	// hmu guards the handle table: with pipelining, several workers can
	// execute this session's requests concurrently.
	hmu     sync.Mutex
	handles map[uint32]handle
	nextID  uint32

	// completions carries finished requests to the writer goroutine;
	// slots is the window semaphore (send = acquire, receive = release).
	// Both are sized to the window, so a completion send never blocks:
	// every in-flight request holds exactly one slot.
	completions chan *request
	slots       chan struct{}
	// dead is set by the writer on a wire error; completions are then
	// drained for accounting without writing. Only the writer touches it.
	dead bool
}

// request is the pooled per-request envelope: decoded arguments, the
// scheduler seat, the response buffer and the observability context. One
// pool object cycles reader → scheduler → worker → writer → pool with
// zero steady-state allocations.
type request struct {
	sr   schedReq
	sess *session

	op     byte
	trace  uint64
	lclass opClass
	start  time.Time
	ran    bool

	// Decoded arguments (per-op subset).
	id    uint32
	flags int
	n     int
	off   int64
	size  int64
	ino   uint64 // resolved handle inode, for the flight record
	path  string
	path2 string
	data  []byte // aliases buf; valid until the request is pooled

	buf   []byte // reusable frame receive buffer
	out   enc    // reusable response buffer
	opctx obs.OpCtx
}

var reqPool = sync.Pool{New: func() any {
	r := &request{}
	r.sr.t = r
	r.sr.ctx = &r.opctx
	return r
}}

func getReq(sess *session) *request {
	r := reqPool.Get().(*request)
	r.sess = sess
	return r
}

func putReq(r *request) {
	r.sess = nil
	r.data = nil
	r.path, r.path2 = "", ""
	r.ran = false
	r.ino = 0
	reqPool.Put(r)
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sess := &session{
		srv:         s,
		conn:        conn,
		bw:          bufio.NewWriterSize(conn, 64<<10),
		handles:     make(map[uint32]handle),
		nextID:      1,
		completions: make(chan *request, s.window),
		slots:       make(chan struct{}, s.window),
	}
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		sess.writeLoop()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		req := getReq(sess)
		payload, err := readFrame(br, req.buf)
		if err != nil {
			putReq(req)
			break // EOF, reset, or protocol violation: the session is over
		}
		req.buf = payload
		sess.slots <- struct{}{} // window: blocks until a reply drains
		sess.admit(req)
	}
	// Teardown: in-flight requests hold slots until the writer completes
	// them, so holding every slot proves the pipeline is empty. Then the
	// writer can stop and the handles can close.
	for i := 0; i < cap(sess.slots); i++ {
		sess.slots <- struct{}{}
	}
	close(sess.completions)
	writerWG.Wait()
	sess.closeAll()
}

// admit decodes one request frame and routes it: attach and malformed
// frames answer inline; everything else is queued under the fair
// scheduler as the session's tenant. The caller has acquired a window
// slot; the request releases it when the writer completes it.
func (sess *session) admit(req *request) {
	d := dec{b: req.buf}
	req.op = d.u8()
	req.trace = d.u64()
	if d.err != nil {
		// Header too short to even carry a trace; echo zero.
		sess.respondErr(req, vfs.ErrInvalid)
		return
	}
	if req.op == opAttach {
		name := d.str()
		if d.err != nil {
			sess.respondErr(req, vfs.ErrInvalid)
			return
		}
		t := sess.srv.tenants[name]
		if t == nil {
			sess.respondErr(req, ErrUnknownTenant)
			return
		}
		sess.ten = t
		out := &req.out
		out.b = out.b[:0]
		out.u64(req.trace)
		out.u8(stOK)
		sess.completions <- req
		return
	}
	if sess.ten == nil {
		sess.respondErr(req, ErrNoTenant)
		return
	}
	if !req.parse(&d) {
		sess.respondErr(req, vfs.ErrInvalid)
		return
	}
	req.opctx.Reset(req.trace, obsClass(req.op))
	req.start = time.Now()
	if err := sess.srv.sched.enqueue(sess.ten.name, &req.sr); err != nil {
		sess.respondErr(req, err)
	}
}

// respondErr completes req inline with an error response (no scheduler
// pass, no tenant accounting).
func (sess *session) respondErr(req *request, err error) {
	out := &req.out
	out.b = out.b[:0]
	out.u64(req.trace)
	encodeErr(out, err)
	sess.completions <- req
}

// parse decodes the per-op arguments into req and sets its scheduler
// cost and latency class. False means a malformed request.
func (req *request) parse(d *dec) bool {
	req.sr.cost = 1
	req.lclass = classMeta
	switch req.op {
	case opOpen:
		req.flags = int(d.u32())
		req.path = d.str()
	case opCreate:
		req.path = d.str()
	case opClose, opFsync, opSize:
		req.id = d.u32()
	case opRead:
		req.id = d.u32()
		req.off = int64(d.u64())
		req.n = int(d.u32())
		if req.n < 0 || req.n > MaxIO {
			return false
		}
		req.sr.cost = opCost(req.n)
		req.lclass = classRead
	case opWrite:
		req.id = d.u32()
		req.off = int64(d.u64())
		req.data = d.bytes()
		req.sr.cost = opCost(len(req.data))
		req.lclass = classWrite
	case opTruncate:
		req.id = d.u32()
		req.size = int64(d.u64())
	case opMkdir, opRmdir, opUnlink, opStat, opReadDir:
		req.path = d.str()
	case opRename:
		req.path = d.str()
		req.path2 = d.str()
	case opSync:
	default:
		return false
	}
	return d.err == nil
}

// writeLoop is the session's writer goroutine: it serializes completed
// requests onto the wire, flushing only when the completion queue goes
// empty so a burst of pipelined replies shares one syscall.
func (sess *session) writeLoop() {
	for req := range sess.completions {
		if !sess.dead {
			err := writeFrame(sess.bw, req.out.b)
			if err == nil && len(sess.completions) == 0 {
				err = sess.bw.Flush()
			}
			if err != nil {
				// The client is gone; keep draining completions for
				// accounting and slot release, but stop writing and
				// unblock the reader.
				sess.dead = true
				sess.conn.Close()
			}
		}
		sess.complete(req)
	}
}

// complete records one executed request's accounting, returns it to the
// pool and releases its window slot. It runs on the session's writer
// goroutine, which never has an obs.OpCtx attached — so the flight
// record's NT store cannot be charged to any request's StageFlush.
func (sess *session) complete(req *request) {
	if req.ran {
		t := sess.ten
		lat := time.Since(req.start).Nanoseconds()
		t.record(req.lclass, lat, &req.opctx)
		if sess.srv.slow.Exceeds(lat) {
			sess.srv.slow.Record(obs.SlowOp{
				Side:    "server",
				Trace:   obs.TraceString(req.trace),
				Tenant:  t.name,
				Op:      opName(req.op),
				TotalNS: lat,
				Stages:  obs.StageMap(req.opctx.Breakdown()),
			})
		}
		if fr := sess.srv.flight; fr != nil {
			var n int
			switch req.op {
			case opRead:
				n = req.n
			case opWrite:
				n = len(req.data)
			}
			result := uint8(255)
			if len(req.out.b) >= 9 {
				result = req.out.b[8]
			}
			rec := flight.Record{
				Trace:  req.trace,
				Ino:    req.ino,
				Off:    req.off,
				Start:  req.start.UnixNano(),
				Len:    uint32(n),
				Op:     flightOp(req.op),
				Result: result,
				Tenant: t.name,
				Stages: req.opctx.Breakdown(),
			}
			fr.Record(&rec)
		}
	}
	putReq(req)
	<-sess.slots
}

// flightOp maps a wire opcode to the flight recorder's canonical op
// vocabulary.
func flightOp(op byte) uint8 {
	switch op {
	case opOpen:
		return flight.OpOpen
	case opCreate:
		return flight.OpCreate
	case opClose:
		return flight.OpClose
	case opRead:
		return flight.OpRead
	case opWrite:
		return flight.OpWrite
	case opFsync:
		return flight.OpFsync
	case opTruncate:
		return flight.OpTruncate
	case opMkdir:
		return flight.OpMkdir
	case opRmdir:
		return flight.OpRmdir
	case opUnlink:
		return flight.OpUnlink
	case opRename:
		return flight.OpRename
	case opStat, opSize:
		return flight.OpStat
	case opReadDir:
		return flight.OpReadDir
	case opSync:
		return flight.OpSync
	}
	return flight.OpUnknown
}

// finish implements task: the scheduler hands the request to the writer
// once its dispatch batch (and persist scope) is done. ran=false means
// the scheduler shut down before exec; answer ErrUnmounted.
func (req *request) finish(ran bool) {
	if !ran {
		out := &req.out
		out.b = out.b[:0]
		out.u64(req.trace)
		encodeErr(out, vfs.ErrUnmounted)
	}
	req.sess.completions <- req
}

// closeAll closes every handle the session still holds — the server-side
// half of the handle lifecycle: a dying connection leaks nothing.
func (sess *session) closeAll() {
	sess.hmu.Lock()
	defer sess.hmu.Unlock()
	for id, h := range sess.handles {
		h.f.Close()
		delete(sess.handles, id)
	}
}

// encodeErr appends an error status to a response.
func encodeErr(out *enc, err error) {
	code := codeFor(err)
	out.u8(code)
	if code == stOther {
		out.str(err.Error())
	}
}

// obsClass maps an opcode to the obs op class used for trace spans and
// the slow-op log.
func obsClass(op byte) obs.OpClass {
	switch op {
	case opRead:
		return obs.OpRead
	case opWrite:
		return obs.OpWrite
	case opFsync, opSync:
		return obs.OpFsync
	case opCreate:
		return obs.OpCreate
	case opUnlink:
		return obs.OpUnlink
	}
	return obs.OpMeta
}

type opClass int

const (
	classMeta opClass = iota
	classRead
	classWrite
)

// fail encodes an error response, preserving the trace echo.
func (req *request) fail(err error) {
	req.out.b = req.out.b[:8]
	encodeErr(&req.out, err)
}

// exec implements task: it runs the decoded operation against the
// tenant's view and encodes the response into req.out. It runs in a
// scheduler worker; concurrent with other requests of the same session.
func (req *request) exec() {
	req.ran = true
	sess := req.sess
	t := sess.ten
	view := t.view
	out := &req.out
	out.b = out.b[:0]
	out.u64(req.trace)
	switch req.op {
	case opOpen:
		f, err := view.Open(req.path, req.flags)
		if err != nil {
			req.fail(err)
			return
		}
		id, ino := sess.put(f, req.flags)
		req.ino = ino
		out.u8(stOK)
		out.u32(id)
	case opCreate:
		f, err := view.Create(req.path)
		if err != nil {
			req.fail(err)
			return
		}
		id, ino := sess.put(f, vfs.ORdwr)
		req.ino = ino
		out.u8(stOK)
		out.u32(id)
	case opClose:
		h, ok := sess.take(req.id)
		if !ok {
			req.fail(ErrBadHandle)
			return
		}
		req.ino = h.ino
		if err := h.f.Close(); err != nil {
			req.fail(err)
			return
		}
		out.u8(stOK)
	case opRead:
		h, ok := sess.get(req.id)
		if !ok {
			req.fail(ErrBadHandle)
			return
		}
		req.ino = h.ino
		// Read directly into the response buffer: status and length are
		// placeholders until the read lands, so the hot path stages no
		// scratch copy and allocates nothing at steady state.
		out.u8(0)
		out.u32(0)
		dst := out.grow(req.n)
		got, err := h.f.ReadAt(dst, req.off)
		switch err {
		case nil:
			out.b[8] = stOK
		case io.EOF:
			out.b[8] = stEOF
		default:
			out.b = out.b[:8]
			encodeErr(out, err)
			return
		}
		binary.BigEndian.PutUint32(out.b[9:13], uint32(got))
		out.b = out.b[:13+got]
		t.bytesR.Add(int64(got))
	case opWrite:
		h, ok := sess.get(req.id)
		if !ok {
			req.fail(ErrBadHandle)
			return
		}
		req.ino = h.ino
		// Quota: admit the estimated growth before writing, settle to
		// the actual size delta after.
		oldSize := h.f.Size()
		end := req.off + int64(len(req.data))
		if h.flags&vfs.OAppend != 0 {
			end = oldSize + int64(len(req.data))
		}
		growth := end - oldSize
		if growth < 0 {
			growth = 0
		}
		qt := time.Now()
		err := t.chargeGrow(growth)
		req.opctx.Charge(obs.StageQuota, time.Since(qt).Nanoseconds())
		if err != nil {
			req.fail(err)
			return
		}
		n, err := h.f.WriteAt(req.data, req.off)
		t.settle(h.f.Size() - oldSize - growth)
		if err != nil {
			req.fail(err)
			return
		}
		out.u8(stOK)
		out.u32(uint32(n))
		t.bytesW.Add(int64(n))
	case opFsync:
		h, ok := sess.get(req.id)
		if !ok {
			req.fail(ErrBadHandle)
			return
		}
		req.ino = h.ino
		if err := h.f.Fsync(); err != nil {
			req.fail(err)
			return
		}
		out.u8(stOK)
	case opTruncate:
		h, ok := sess.get(req.id)
		if !ok {
			req.fail(ErrBadHandle)
			return
		}
		req.ino = h.ino
		oldSize := h.f.Size()
		qt := time.Now()
		cerr := t.chargeGrow(req.size - oldSize)
		req.opctx.Charge(obs.StageQuota, time.Since(qt).Nanoseconds())
		if cerr != nil {
			req.fail(cerr)
			return
		}
		err := h.f.Truncate(req.size)
		grow := req.size - oldSize
		if grow < 0 {
			grow = 0
		}
		t.settle(h.f.Size() - oldSize - grow)
		if err != nil {
			req.fail(err)
			return
		}
		out.u8(stOK)
	case opSize:
		h, ok := sess.get(req.id)
		if !ok {
			req.fail(ErrBadHandle)
			return
		}
		req.ino = h.ino
		out.u8(stOK)
		out.u64(uint64(h.f.Size()))
	case opMkdir, opRmdir, opUnlink:
		var err error
		switch req.op {
		case opMkdir:
			err = view.Mkdir(req.path)
		case opRmdir:
			err = view.Rmdir(req.path)
		case opUnlink:
			var fi vfs.FileInfo
			fi, err = view.Stat(req.path)
			if err == nil {
				if err = view.Unlink(req.path); err == nil {
					t.settle(-fi.Size)
				}
			}
		}
		if err != nil {
			req.fail(err)
			return
		}
		out.u8(stOK)
	case opRename:
		if err := view.Rename(req.path, req.path2); err != nil {
			req.fail(err)
			return
		}
		out.u8(stOK)
	case opStat:
		fi, err := view.Stat(req.path)
		if err != nil {
			req.fail(err)
			return
		}
		out.u8(stOK)
		out.str(fi.Name)
		out.u64(uint64(fi.Size))
		if fi.IsDir {
			out.u8(1)
		} else {
			out.u8(0)
		}
		out.u64(uint64(fi.Blocks))
	case opReadDir:
		ents, err := view.ReadDir(req.path)
		if err != nil {
			req.fail(err)
			return
		}
		total := 0
		for _, e := range ents {
			total += 3 + len(e.Name)
		}
		if total > MaxIO {
			req.fail(fmt.Errorf("server: directory listing exceeds %d bytes", MaxIO))
			return
		}
		out.u8(stOK)
		out.u32(uint32(len(ents)))
		for _, e := range ents {
			out.str(e.Name)
			if e.IsDir {
				out.u8(1)
			} else {
				out.u8(0)
			}
		}
	case opSync:
		if err := view.Sync(); err != nil {
			req.fail(err)
			return
		}
		out.u8(stOK)
	}
}

// put registers a handle and returns its session-local ID. IDs are never
// reused within a session, so a stale client ID cannot alias a newer file.
func (sess *session) put(f vfs.File, flags int) (uint32, uint64) {
	var ino uint64
	if n, ok := vfs.FileAs[vfs.InodeNumberer](f); ok {
		ino = n.InodeNumber()
	}
	sess.hmu.Lock()
	defer sess.hmu.Unlock()
	id := sess.nextID
	sess.nextID++
	sess.handles[id] = handle{f: f, flags: flags, ino: ino}
	return id, ino
}

// get looks up a handle.
func (sess *session) get(id uint32) (handle, bool) {
	sess.hmu.Lock()
	defer sess.hmu.Unlock()
	h, ok := sess.handles[id]
	return h, ok
}

// take removes and returns a handle (opClose).
func (sess *session) take(id uint32) (handle, bool) {
	sess.hmu.Lock()
	defer sess.hmu.Unlock()
	h, ok := sess.handles[id]
	if ok {
		delete(sess.handles, id)
	}
	return h, ok
}
