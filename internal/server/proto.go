// Package server is the multi-tenant file server front-end: a framed RPC
// protocol over any net.Conn, a server multiplexing many client sessions
// onto one vfs.FileSystem with per-tenant chroot-style namespaces
// (vfs.Sub), approximate quota accounting and weighted fair scheduling,
// and a client that implements vfs.FileSystem so everything written
// against the VFS interfaces — workloads, conformance suites, load
// generators — runs unchanged over a server connection.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hinfs/internal/vfs"
)

// Wire format: every message is one frame, a big-endian uint32 payload
// length followed by the payload. A request payload starts with the op
// byte followed by a u64 trace ID — a client-assigned request identifier
// propagated through the server's per-stage latency attribution and both
// sides' slow-op logs, so one slow request can be matched end to end. A
// response payload starts with the echoed u64 trace ID followed by a
// status byte (0 = OK, else an error code from the table below).
//
// Sessions are pipelined: a client may have many requests in flight on
// one connection, and responses may arrive in any order — the echoed
// trace ID is the correlator. The synchronous client path still sends
// one request at a time and asserts the echo; the Batch API exploits the
// pipeline (client.go/batch.go). The server bounds in-flight requests
// per session with a window; connections remain cheap, so large-scale
// concurrency still comes from connections.
const (
	opAttach byte = iota + 1
	opOpen
	opCreate
	opClose
	opRead
	opWrite
	opFsync
	opTruncate
	opSize
	opMkdir
	opRmdir
	opUnlink
	opRename
	opStat
	opReadDir
	opSync
)

// opName names an opcode for logs and metrics.
func opName(op byte) string {
	switch op {
	case opAttach:
		return "attach"
	case opOpen:
		return "open"
	case opCreate:
		return "create"
	case opClose:
		return "close"
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opFsync:
		return "fsync"
	case opTruncate:
		return "truncate"
	case opSize:
		return "size"
	case opMkdir:
		return "mkdir"
	case opRmdir:
		return "rmdir"
	case opUnlink:
		return "unlink"
	case opRename:
		return "rename"
	case opStat:
		return "stat"
	case opReadDir:
		return "readdir"
	case opSync:
		return "sync"
	}
	return "unknown"
}

// MaxIO bounds the data bytes of one read or write request; larger client
// I/O is chunked. Combined with the path limits in vfs, it gives MaxFrame.
const (
	MaxIO    = 1 << 20
	maxFrame = MaxIO + 2*vfs.MaxPathLen + 64
)

// Status codes. Every vfs sentinel error crosses the wire as a code and
// is mapped back to the identical sentinel on the client, so code written
// against vfs error identities works unchanged over a connection.
const (
	stOK byte = iota
	stNotExist
	stExist
	stIsDir
	stNotDir
	stNotEmpty
	stNoSpace
	stClosed
	stReadOnly
	stWriteOnly
	stInvalid
	stNameTooLong
	stUnmounted
	stEOF // ReadAt reached end of file (data may accompany it)
	stBadHandle
	stNoTenant // op before a successful Attach
	stUnknownTenant
	stQuota // tenant over its byte quota
	stOther // unmodelled error; detail string follows
)

// Server-side sentinel errors with no vfs equivalent.
var (
	ErrBadHandle     = errors.New("server: unknown file handle")
	ErrNoTenant      = errors.New("server: session not attached to a tenant")
	ErrUnknownTenant = errors.New("server: unknown tenant")
	ErrQuota         = errors.New("server: tenant byte quota exhausted")
)

var errToCode = []struct {
	err  error
	code byte
}{
	{vfs.ErrNotExist, stNotExist},
	{vfs.ErrExist, stExist},
	{vfs.ErrIsDir, stIsDir},
	{vfs.ErrNotDir, stNotDir},
	{vfs.ErrNotEmpty, stNotEmpty},
	{vfs.ErrNoSpace, stNoSpace},
	{vfs.ErrClosed, stClosed},
	{vfs.ErrReadOnly, stReadOnly},
	{vfs.ErrWriteOnly, stWriteOnly},
	{vfs.ErrInvalid, stInvalid},
	{vfs.ErrNameTooLon, stNameTooLong},
	{vfs.ErrUnmounted, stUnmounted},
	{io.EOF, stEOF},
	{ErrBadHandle, stBadHandle},
	{ErrNoTenant, stNoTenant},
	{ErrUnknownTenant, stUnknownTenant},
	{ErrQuota, stQuota},
}

func codeFor(err error) byte {
	for _, m := range errToCode {
		if errors.Is(err, m.err) {
			return m.code
		}
	}
	return stOther
}

func errFor(code byte, detail string) error {
	for _, m := range errToCode {
		if m.code == code {
			return m.err
		}
	}
	return fmt.Errorf("server: remote error: %s", detail)
}

// --- frame I/O ---

// writeFrame emits the length prefix byte-wise so the header never
// escapes to the heap — frame encode is allocation-free (tested).
func writeFrame(w *bufio.Writer, payload []byte) error {
	n := uint32(len(payload))
	w.WriteByte(byte(n >> 24))
	w.WriteByte(byte(n >> 16))
	w.WriteByte(byte(n >> 8))
	if err := w.WriteByte(byte(n)); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into buf (grown as needed) and returns the
// payload. Oversized frames are a protocol violation and kill the
// session — the length prefix is attacker-controlled input.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// --- payload encoding ---

// enc appends big-endian fields to a reusable buffer.
type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }

// str encodes a length-prefixed string (u16 length).
func (e *enc) str(s string) {
	e.b = binary.BigEndian.AppendUint16(e.b, uint16(len(s)))
	e.b = append(e.b, s...)
}

// bytes encodes a length-prefixed byte slice (u32 length).
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

// grow extends the buffer by n uninitialized bytes and returns the new
// region, so payloads (read data) can be produced in place instead of
// staged through a scratch buffer and copied.
func (e *enc) grow(n int) []byte {
	l := len(e.b)
	if cap(e.b)-l < n {
		nb := make([]byte, l, l+n)
		copy(nb, e.b)
		e.b = nb
	}
	e.b = e.b[: l+n : cap(e.b)]
	return e.b[l:]
}

var errTruncated = errors.New("server: truncated message")

// dec consumes big-endian fields from a payload. The first malformed
// field poisons the decoder; check err once at the end.
type dec struct {
	b   []byte
	err error
}

func (d *dec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.err = errTruncated
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.err = errTruncated
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.err = errTruncated
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) str() string {
	if d.err != nil || len(d.b) < 2 {
		d.err = errTruncated
		return ""
	}
	n := int(binary.BigEndian.Uint16(d.b))
	d.b = d.b[2:]
	if len(d.b) < n {
		d.err = errTruncated
		return ""
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v
}

func (d *dec) bytes() []byte {
	if d.err != nil || len(d.b) < 4 {
		d.err = errTruncated
		return nil
	}
	n := int(binary.BigEndian.Uint32(d.b))
	d.b = d.b[4:]
	if n > MaxIO || len(d.b) < n {
		d.err = errTruncated
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}
