package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"hinfs/internal/vfs"
)

// TestBatchRoundTrip pipelines a mixed write/fsync/read burst through
// one connection and checks every op's result individually.
func TestBatchRoundTrip(t *testing.T) {
	srv := testServer(t, twoTenants())
	c := pipeClient(t, srv, "alpha")
	f, err := c.Create("/b")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	b := c.NewBatch()
	const n = 48
	writes := make([]*BatchOp, n)
	for i := 0; i < n; i++ {
		data := []byte(fmt.Sprintf("chunk-%02d!", i))
		writes[i] = b.WriteAt(f, data, int64(i*10))
	}
	sync := b.Fsync(f)
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, w := range writes {
		if w.Err != nil || w.N != 9 {
			t.Fatalf("write %d = %d, %v", i, w.N, w.Err)
		}
	}
	if sync.Err != nil {
		t.Fatalf("fsync: %v", sync.Err)
	}
	if d := b.AchievedDepth(); d <= 1 {
		t.Fatalf("achieved depth %.2f, want > 1 for a pipelined burst", d)
	}

	b.Reset()
	bufs := make([][]byte, n)
	reads := make([]*BatchOp, n)
	for i := 0; i < n; i++ {
		bufs[i] = make([]byte, 9)
		reads[i] = b.ReadAt(f, bufs[i], int64(i*10))
	}
	// One read past EOF rides in the same batch.
	tail := b.ReadAt(f, make([]byte, 16), int64(n*10))
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, r := range reads {
		want := fmt.Sprintf("chunk-%02d!", i)
		if r.Err != nil && !(i == n-1 && r.Err == io.EOF) {
			t.Fatalf("read %d: %v", i, r.Err)
		}
		if r.N != 9 || string(bufs[i]) != want {
			t.Fatalf("read %d = %d %q, want %q", i, r.N, bufs[i], want)
		}
	}
	if tail.Err != io.EOF || tail.N != 0 {
		t.Fatalf("past-EOF read = %d, %v", tail.N, tail.Err)
	}
}

// TestBatchWindowOne checks the degenerate synchronous window still
// completes everything (it is the baseline the batch figure sweeps from).
func TestBatchWindowOne(t *testing.T) {
	srv := testServer(t, twoTenants())
	c := pipeClient(t, srv, "alpha")
	f, err := c.Create("/w1")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := c.NewBatch()
	b.SetWindow(1)
	for i := 0; i < 8; i++ {
		b.WriteAt(f, []byte{byte(i)}, int64(i))
	}
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	if d := b.AchievedDepth(); d != 1 {
		t.Fatalf("achieved depth %.2f at window 1, want exactly 1", d)
	}
	got := make([]byte, 8)
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("read back %v", got)
	}
}

// TestBatchValidation checks that ill-formed ops fail locally without
// touching the wire, and that the rest of the batch still completes.
func TestBatchValidation(t *testing.T) {
	srv := testServer(t, twoTenants())
	c := pipeClient(t, srv, "alpha")
	c2 := pipeClient(t, srv, "beta")
	f, err := c.Create("/v")
	if err != nil {
		t.Fatal(err)
	}
	g, err := c2.Create("/other")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	b := c.NewBatch()
	foreign := b.WriteAt(g, []byte("x"), 0) // other client's handle
	huge := b.ReadAt(f, make([]byte, MaxIO+1), 0)
	ok := b.WriteAt(f, []byte("fine"), 0)
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	if foreign.Err != vfs.ErrInvalid {
		t.Fatalf("foreign handle = %v, want ErrInvalid", foreign.Err)
	}
	if huge.Err != vfs.ErrInvalid {
		t.Fatalf("oversized read = %v, want ErrInvalid", huge.Err)
	}
	if ok.Err != nil || ok.N != 4 {
		t.Fatalf("valid op in mixed batch = %d, %v", ok.N, ok.Err)
	}

	f.Close()
	b.Reset()
	closed := b.Fsync(f)
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	if closed.Err != vfs.ErrClosed {
		t.Fatalf("closed handle = %v, want ErrClosed", closed.Err)
	}
}

// TestBatchInterleavesWithSyncCalls checks a batch and the synchronous
// client path share one connection safely: the sync path's strict echo
// check must never see a batch op's reply.
func TestBatchInterleavesWithSyncCalls(t *testing.T) {
	srv := testServer(t, twoTenants())
	c := pipeClient(t, srv, "alpha")
	f, err := c.Create("/mix")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := c.NewBatch()
	for round := 0; round < 20; round++ {
		for i := 0; i < 16; i++ {
			b.WriteAt(f, []byte("data"), int64(i*4))
		}
		if err := b.Wait(); err != nil {
			t.Fatal(err)
		}
		for _, o := range b.ops {
			if o.Err != nil {
				t.Fatal(o.Err)
			}
		}
		b.Reset()
		if _, err := c.Stat("/mix"); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchTorture races batched submissions on many connections
// against server shutdown. The invariant under test: every queued op
// ends done with either a result or an error — exactly one completion,
// matched by trace — and nothing hangs or panics, under -race.
func TestBatchTorture(t *testing.T) {
	srv := testServer(t, twoTenants())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	const clients = 12
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			tenant := []string{"alpha", "beta"}[i%2]
			c, err := Dial(addr, tenant)
			if err != nil {
				return // server may already be closing
			}
			defer c.Unmount()
			f, err := c.Create(fmt.Sprintf("/t%d", i))
			if err != nil {
				return
			}
			b := c.NewBatch()
			b.SetWindow(1 + rng.Intn(DefaultBatchWindow))
			buf := make([]byte, 512)
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				nops := 1 + rng.Intn(40)
				for j := 0; j < nops; j++ {
					switch rng.Intn(3) {
					case 0:
						b.WriteAt(f, buf[:1+rng.Intn(512)], int64(rng.Intn(1<<16)))
					case 1:
						b.ReadAt(f, buf[:1+rng.Intn(512)], int64(rng.Intn(1<<16)))
					default:
						b.Fsync(f)
					}
				}
				err := b.Wait()
				for k, o := range b.ops {
					if !o.done {
						t.Errorf("client %d round %d: op %d not completed after Wait", i, round, k)
						return
					}
				}
				if err != nil {
					return // transport failed: all ops completed with the error
				}
				b.Reset()
			}
		}(i)
	}
	time.Sleep(150 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}

// TestClientEncodeZeroAllocs pins the client submission path's
// allocation budget: encoding and framing one write request reuses the
// connection buffers and allocates nothing.
func TestClientEncodeZeroAllocs(t *testing.T) {
	var e enc
	bw := bufio.NewWriterSize(io.Discard, 64<<10)
	payload := make([]byte, 4096)
	n := testing.AllocsPerRun(1000, func() {
		e.b = e.b[:0]
		e.u8(opWrite)
		e.u64(0x1234)
		e.u32(7)
		e.u64(8192)
		e.bytes(payload)
		if err := writeFrame(bw, e.b); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("frame encode allocates %.1f objects/op, want 0", n)
	}
}

// TestSchedDispatchZeroAllocs pins the scheduler's steady-state budget:
// enqueue, dispatch and settle of a pooled request allocate nothing —
// the queue links are intrusive and the envelope is caller-owned.
func TestSchedDispatchZeroAllocs(t *testing.T) {
	s := &sched{
		queues: map[string]*schedQueue{"t": {weight: 1}},
		order:  []string{"t"},
	}
	s.cond = sync.NewCond(&s.mu)
	r := schedTask(1000, func() {})
	buf := make([]*schedReq, 0, 1)
	n := testing.AllocsPerRun(1000, func() {
		if err := s.enqueue("t", r); err != nil {
			t.Fatal(err)
		}
		buf = s.nextBatch(buf[:0], 1)
		if len(buf) != 1 {
			t.Fatal("dispatch returned nothing")
		}
		buf[0].t.exec()
		s.settle(buf[0].q, 50)
	})
	if n != 0 {
		t.Fatalf("dispatch cycle allocates %.1f objects/op, want 0", n)
	}
}

// TestServerReadWriteSteadyStateAllocs measures the whole stack end to
// end — client encode, server session, scheduler, pmfs, reply — for
// small reads and writes over an in-memory pipe, and bounds the
// amortized allocation rate. The pooled request/reply path keeps it to
// a handful of objects per op (pmfs internals and runtime channel ops),
// an order of magnitude below the pre-pooling baseline; the tight zero
// checks live in the targeted tests above.
func TestServerReadWriteSteadyStateAllocs(t *testing.T) {
	srv := testServer(t, twoTenants())
	c := pipeClient(t, srv, "alpha")
	f, err := c.Create("/hot")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1024)
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ { // warm pools on both sides
		f.ReadAt(buf, 0)
		f.WriteAt(buf, 0)
	}
	n := testing.AllocsPerRun(500, func() {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	})
	// Two full RPCs; the budget is deliberately loose (goroutine wakeups
	// and timer reads vary) but catches any per-op buffer regression.
	if n > 30 {
		t.Fatalf("read+write round trip allocates %.1f objects, want <= 30", n)
	}
}
