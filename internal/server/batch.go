package server

import (
	"fmt"
	"io"
	"sync"
	"time"

	"hinfs/internal/obs"
	"hinfs/internal/vfs"
)

// Batch is the pipelined submission path: queue many data-plane ops
// (ReadAt/WriteAt/Fsync) against one Client, then Flush/Wait. Submission
// keeps up to the window in flight on the connection without waiting for
// replies; replies are matched to ops by the echoed trace ID, in
// whatever order the server completes them. One synchronous round trip
// per op becomes one wire turnaround per window.
//
// A Batch is not safe for concurrent use; it serializes against the
// Client's synchronous calls (both hold the connection mutex), so a
// Wait and a concurrent c.Stat interleave safely at the frame level.
// Results are delivered through the returned *BatchOp after Wait;
// read data lands in the caller's buffer. Reset recycles the batch —
// and invalidates its BatchOps — for the next round.
type Batch struct {
	c *Client
	// window bounds in-flight ops (DefaultBatchWindow unless SetWindow).
	window int

	ops  []*BatchOp
	sent int // ops[:sent] submitted

	pending       map[uint64]*BatchOp // in flight, by trace
	inflight      int
	inflightBytes int // expected response bytes in flight

	// depthSum/sends measure realized pipeline depth: the mean number of
	// in-flight ops observed at each submission.
	depthSum int64
	sends    int64

	lat *obs.Hist
}

// DefaultBatchWindow is the per-connection in-flight cap for batched
// submission. It stays under the server's session window so a batching
// client never stalls mid-frame against server backpressure.
const DefaultBatchWindow = 64

// batchRespWindow additionally bounds the expected bytes of in-flight
// responses, so a pipelined burst of large reads cannot overfill both
// sides' socket buffers while the client is still writing requests —
// the classic pipeline deadlock.
const batchRespWindow = 256 << 10

// BatchOp is one queued operation and, after Wait (or a Flush that
// happened to reap it), its result. Valid until the batch is Reset.
type BatchOp struct {
	op        byte
	fid       uint32
	off       int64
	buf       []byte // read destination / write source
	respBytes int    // expected response size, for the byte window
	trace     uint64
	sentAt    time.Time
	done      bool

	// N is the byte count result (read: bytes read into the buffer;
	// write: bytes accepted).
	N int
	// Err is the op's terminal status: nil, io.EOF (short read at end of
	// file, N still valid), a vfs sentinel, or a transport error.
	Err error
}

var batchOpPool = sync.Pool{New: func() any { return new(BatchOp) }}

// NewBatch returns an empty batch bound to c.
func (c *Client) NewBatch() *Batch {
	return &Batch{
		c:       c,
		window:  DefaultBatchWindow,
		pending: make(map[uint64]*BatchOp, DefaultBatchWindow),
	}
}

// SetWindow bounds in-flight ops for this batch, clamped to
// [1, DefaultBatchWindow]. Window 1 degenerates to synchronous
// submission — the baseline the batch figure compares against.
func (b *Batch) SetWindow(n int) {
	if n < 1 {
		n = 1
	}
	if n > DefaultBatchWindow {
		n = DefaultBatchWindow
	}
	b.window = n
}

// SetLatency installs a histogram receiving per-op submit-to-reply
// latency (ns). Pass nil to disable.
func (b *Batch) SetLatency(h *obs.Hist) { b.lat = h }

// Len reports how many ops are queued in the batch (submitted or not).
func (b *Batch) Len() int { return len(b.ops) }

// Ops returns the queued ops in submission order, for result inspection
// after Wait. The slice is owned by the batch and invalidated by Reset.
func (b *Batch) Ops() []*BatchOp { return b.ops }

// AchievedDepth reports the mean number of in-flight requests observed
// at each submission — the realized pipeline depth (1.0 = synchronous).
func (b *Batch) AchievedDepth() float64 {
	if b.sends == 0 {
		return 0
	}
	return float64(b.depthSum) / float64(b.sends)
}

// add queues an op against f, validating that f is a remote file of this
// batch's client. Validation errors complete the op immediately.
func (b *Batch) add(op byte, f vfs.File, buf []byte, off int64, respBytes int) *BatchOp {
	o := batchOpPool.Get().(*BatchOp)
	*o = BatchOp{op: op, off: off, buf: buf, respBytes: respBytes}
	rf, ok := f.(*remoteFile)
	switch {
	case !ok || rf.c != b.c:
		o.Err = vfs.ErrInvalid
		o.done = true
	case rf.checkOpen() != nil:
		o.Err = vfs.ErrClosed
		o.done = true
	default:
		o.fid = rf.id
	}
	b.ops = append(b.ops, o)
	return o
}

// ReadAt queues a read of len(p) bytes at off into p. Reads above MaxIO
// are rejected (the synchronous path chunks; the batch API keeps one op
// = one frame).
func (b *Batch) ReadAt(f vfs.File, p []byte, off int64) *BatchOp {
	o := b.add(opRead, f, p, off, 13+len(p))
	if !o.done && len(p) > MaxIO {
		o.Err = vfs.ErrInvalid
		o.done = true
	}
	return o
}

// WriteAt queues a write of p at off.
func (b *Batch) WriteAt(f vfs.File, p []byte, off int64) *BatchOp {
	o := b.add(opWrite, f, p, off, 17)
	if !o.done && len(p) > MaxIO {
		o.Err = vfs.ErrInvalid
		o.done = true
	}
	return o
}

// Fsync queues an fsync of f.
func (b *Batch) Fsync(f vfs.File) *BatchOp {
	return b.add(opFsync, f, nil, 0, 13)
}

// Flush submits queued ops up to the window without waiting for every
// reply; ops whose replies already arrived are completed. The returned
// error is a transport/protocol failure (per-op errors live in each
// BatchOp.Err).
func (b *Batch) Flush() error {
	b.c.mu.Lock()
	defer b.c.mu.Unlock()
	return b.pumpLocked(false)
}

// Wait submits everything still queued and blocks until every op has
// its reply. After Wait, every BatchOp is complete.
func (b *Batch) Wait() error {
	b.c.mu.Lock()
	defer b.c.mu.Unlock()
	return b.pumpLocked(true)
}

// Reset recycles the batch and its ops for the next round. Results of
// prior BatchOps become invalid. Call only after Wait (or a transport
// failure, which completes everything).
func (b *Batch) Reset() {
	for _, o := range b.ops {
		*o = BatchOp{}
		batchOpPool.Put(o)
	}
	b.ops = b.ops[:0]
	b.sent = 0
}

// pumpLocked runs the submit/reap loop under the client mutex.
func (b *Batch) pumpLocked(drain bool) error {
	c := b.c
	if c.closed {
		b.failLocked(vfs.ErrUnmounted)
		return vfs.ErrUnmounted
	}
	for ; b.sent < len(b.ops); b.sent++ {
		o := b.ops[b.sent]
		if o.done {
			continue
		}
		for b.inflight >= b.window ||
			(b.inflight > 0 && b.inflightBytes+o.respBytes > batchRespWindow) {
			if err := b.reapOneLocked(); err != nil {
				b.failLocked(err)
				return err
			}
		}
		o.trace = c.nextTrace()
		if b.lat != nil {
			o.sentAt = time.Now()
		}
		c.out.b = c.out.b[:0]
		c.out.u8(o.op)
		c.out.u64(o.trace)
		c.out.u32(o.fid)
		switch o.op {
		case opRead:
			c.out.u64(uint64(o.off))
			c.out.u32(uint32(len(o.buf)))
		case opWrite:
			c.out.u64(uint64(o.off))
			c.out.bytes(o.buf)
		}
		if err := writeFrame(c.bw, c.out.b); err != nil {
			b.failLocked(err)
			return err
		}
		b.pending[o.trace] = o
		b.inflight++
		b.inflightBytes += o.respBytes
		b.sends++
		b.depthSum += int64(b.inflight)
	}
	if err := c.bw.Flush(); err != nil {
		b.failLocked(err)
		return err
	}
	for drain && b.inflight > 0 {
		if err := b.reapOneLocked(); err != nil {
			b.failLocked(err)
			return err
		}
	}
	return nil
}

// reapOneLocked reads one reply frame and completes the matching op.
func (b *Batch) reapOneLocked() error {
	c := b.c
	if c.bw.Buffered() > 0 {
		// Requests may still sit in the write buffer; push them out
		// before blocking on a reply they may be needed to produce.
		if err := c.bw.Flush(); err != nil {
			return err
		}
	}
	resp, err := readFrame(c.br, c.in)
	if err != nil {
		return err
	}
	c.in = resp
	d := dec{b: resp}
	trace := d.u64()
	o := b.pending[trace]
	if d.err != nil || o == nil {
		return fmt.Errorf("server: reply for unknown trace %#x", trace)
	}
	delete(b.pending, trace)
	b.inflight--
	b.inflightBytes -= o.respBytes
	o.done = true
	if b.lat != nil {
		b.lat.ObserveSince(o.sentAt)
	}
	st := d.u8()
	switch {
	case st == stOK, st == stEOF && o.op == opRead:
		switch o.op {
		case opRead:
			// Copy now: the decoded slice aliases the connection's
			// reusable receive buffer.
			o.N = copy(o.buf, d.bytes())
			if st == stEOF {
				o.Err = io.EOF
			}
		case opWrite:
			o.N = int(d.u32())
		}
		if d.err != nil {
			o.Err = d.err
		}
	default:
		detail := ""
		if st == stOther {
			detail = d.str()
		}
		o.Err = errFor(st, detail)
	}
	return nil
}

// failLocked completes every unfinished op with err and poisons the
// connection: a transport or framing failure mid-pipeline leaves the
// stream unrecoverable.
func (b *Batch) failLocked(err error) {
	for _, o := range b.ops {
		if !o.done {
			o.done = true
			o.Err = err
		}
	}
	for trace := range b.pending {
		delete(b.pending, trace)
	}
	b.inflight = 0
	b.inflightBytes = 0
	b.sent = len(b.ops)
	if !b.c.closed {
		b.c.closed = true
		b.c.conn.Close()
	}
}
