package crashtest

import (
	"testing"

	"hinfs/internal/core"
	"hinfs/internal/nvmm"
)

// TestExploreBatchFenceStock explores the fence-coalesced persist
// schedule batched server dispatch produces: grouped ops under fence
// scopes, trailing fences collapsed to one per group. Stock HiNFS must
// survive every crash point under every torn permutation.
func TestExploreBatchFenceStock(t *testing.T) {
	rep, err := Explore(Config{Workload: "batchfence", Ops: 80, Points: 32, Perms: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != rep.Cases {
		t.Fatalf("only %d of %d cases remounted", rep.Recovered, rep.Cases)
	}
	if len(rep.Violations) != 0 || rep.Suppressed != 0 {
		for i, v := range rep.Violations {
			if i == 10 {
				break
			}
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("%d violations on stock HiNFS (%s)", len(rep.Violations)+rep.Suppressed, rep.Summary())
	}
}

// TestBatchFenceActuallyCoalesces proves the workload exercises the
// elision path — a run must retire a substantial number of fences into
// scope-close coalescing, or the exploration above is testing nothing
// new.
func TestBatchFenceActuallyCoalesces(t *testing.T) {
	cfg := Config{Workload: "batchfence"}
	cfg.fill()
	dev, err := nvmm.New(nvmm.Config{Size: cfg.DeviceSize, TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mkfs(dev, cfg.fsOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Abandon()
	w := &BatchFence{Dev: dev}
	if err := w.Setup(fs); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(fs, 1, 80); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	if st.FencesElided == 0 {
		t.Fatal("batchfence run elided no fences — the coalescing path was not exercised")
	}
	t.Logf("fences %d, elided %d (%.0f%% of an uncoalesced run)",
		st.Fences, st.FencesElided,
		100*float64(st.FencesElided)/float64(st.Fences+st.FencesElided))
}
