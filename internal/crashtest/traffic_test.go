package crashtest

import "testing"

// TestExploreTrafficStock: the chaos-under-traffic leg — the wire server
// under concurrent multi-tenant load, crashed at sampled persist events
// — recovers with zero violations, and the flight ring's surviving
// suffix joins the client op schedules completely.
func TestExploreTrafficStock(t *testing.T) {
	points := 8
	if testing.Short() {
		points = 3
	}
	rep, err := ExploreTraffic(TrafficConfig{Points: points, Perms: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	if rep.Recovered != rep.Cases {
		t.Fatalf("only %d of %d cases remounted", rep.Recovered, rep.Cases)
	}
	if len(rep.Violations) != 0 || rep.Suppressed != 0 {
		for i, v := range rep.Violations {
			if i == 10 {
				break
			}
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("%d violations under traffic (%s)", len(rep.Violations)+rep.Suppressed, rep.Summary())
	}
	if rep.RecordsDecoded == 0 {
		t.Fatal("no flight records decoded from any crash image — recorder not wired")
	}
	if rep.RecordsJoined != rep.RecordsDecoded {
		t.Fatalf("only %d of %d decoded records joined an issued op", rep.RecordsJoined, rep.RecordsDecoded)
	}
	for _, tn := range trafficTenants {
		if d := rep.Tenants[tn.name]; d == nil || d.OpsIssued == 0 {
			t.Fatalf("tenant %s issued no ops", tn.name)
		}
	}
}

// TestPatByteDeterministic: the content pattern is a pure function — the
// whole verification scheme rides on writer and verifier agreeing.
func TestPatByteDeterministic(t *testing.T) {
	s := pathSalt("/tenants/gold/c1.log")
	if s == pathSalt("/tenants/bronze/c3.log") {
		t.Fatal("distinct paths share a salt")
	}
	if patByte(s, 0) != patByte(s, 0) || patByte(s, 1) == patByte(s, 0) && patByte(s, 2) == patByte(s, 0) {
		t.Fatal("pattern degenerate")
	}
}
