package crashtest

import (
	"fmt"

	"hinfs/internal/vfs"
	"hinfs/internal/workload"
)

// AppendSync is a crash-test workload personality: a handful of log
// files receive unaligned appends, fsynced only every SyncEvery-th
// operation. The sparse fsyncs leave wide lazy-write windows — exactly
// where the §4.1 data-before-commit coupling matters — and the payload
// is fully random so any lost or torn byte fails the content oracle.
type AppendSync struct {
	Files      int // default 8
	AppendSize int // max append length; default 3 KB (unaligned tails)
	SyncEvery  int // fsync every Nth op; default 4
}

func (w *AppendSync) fill() {
	if w.Files == 0 {
		w.Files = 8
	}
	if w.AppendSize == 0 {
		w.AppendSize = 3 << 10
	}
	if w.SyncEvery == 0 {
		w.SyncEvery = 4
	}
}

func (w *AppendSync) path(i int) string { return fmt.Sprintf("/app/log%d", i) }

// Name implements workload.Workload.
func (w *AppendSync) Name() string { return "append" }

// Setup implements workload.Workload.
func (w *AppendSync) Setup(fs vfs.FileSystem) error {
	w.fill()
	if err := fs.Mkdir("/app"); err != nil && err != vfs.ErrExist {
		return err
	}
	for i := 0; i < w.Files; i++ {
		f, err := fs.Create(w.path(i))
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Run implements workload.Workload. Threads are executed sequentially —
// the crash explorer requires a single-threaded, fully deterministic op
// stream anyway.
func (w *AppendSync) Run(fs vfs.FileSystem, threads, ops int) (workload.Result, error) {
	w.fill()
	if threads <= 0 {
		threads = 1
	}
	var res workload.Result
	rng := workload.NewRand(0xA99E17)
	buf := make([]byte, w.AppendSize)
	for op := 0; op < ops*threads; op++ {
		i := rng.Intn(w.Files)
		f, err := fs.Open(w.path(i), vfs.ORdwr|vfs.OAppend)
		if err != nil {
			return res, err
		}
		n := 1 + rng.Intn(w.AppendSize)
		for j := 0; j < n; j++ {
			buf[j] = byte(rng.Uint64())
		}
		wn, werr := f.WriteAt(buf[:n], 0)
		res.BytesWritten += int64(wn)
		if werr != nil {
			f.Close()
			return res, werr
		}
		if op%w.SyncEvery == w.SyncEvery-1 {
			if err := f.Fsync(); err != nil {
				f.Close()
				return res, err
			}
			res.Fsyncs++
			res.FsyncBytes += int64(wn)
		}
		if err := f.Close(); err != nil {
			return res, err
		}
		res.Ops++
	}
	return res, nil
}
