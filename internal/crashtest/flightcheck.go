package crashtest

import (
	"fmt"
	"io"

	"hinfs/internal/core"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs/flight"
)

// Forensics is the post-mortem flow: re-execute the deterministic
// workload with a crash armed at event, materialize the torn image
// selected by tornSeed, remount it through journal recovery, and write
// the surviving flight ring as JSON lines — one per record, trace IDs in
// the same %016x form the slow-op logs use, so the two join directly.
func Forensics(cfg Config, event int64, tornSeed uint64, w io.Writer) error {
	cfg.fill()
	cfg.Flight = true
	run, err := cfg.runOnce(event, false)
	if err != nil {
		return err
	}
	if run.state == nil {
		return fmt.Errorf("crashtest: no crash captured at event %d (schedule has %d events)", event, run.totalEv)
	}
	dev, err := run.state.Materialize(nvmm.Config{}, tornSeed)
	if err != nil {
		return err
	}
	fs, _, err := core.MountRecover(dev, cfg.fsOpts())
	if err != nil {
		return fmt.Errorf("crashtest: forensics remount: %w", err)
	}
	defer fs.Abandon()
	off, size := fs.FlightRegion()
	if size == 0 {
		return fmt.Errorf("crashtest: recovered image has no flight region")
	}
	log, err := flight.Decode(dev, off, size)
	if err != nil {
		return err
	}
	return log.WriteJSON(w)
}

// verifyFlight cross-checks the flight-record suffix recovered from one
// crash image against the recorded op schedule — the invariant class the
// recorder's no-fence design must honor:
//
//	flight-phantom   a surviving record names an op whose record was not
//	                 even written when the crash hit (seq issued after the
//	                 crash event) — the recorder "remembers the future".
//	flight-lost      an op's record was written strictly before the crash
//	                 event (WriteNT commits its own lines right after its
//	                 fault point) yet did not survive into the image.
//	flight-foreign   a CRC-valid record matches no op the schedule issued.
//	flight-mismatch  a surviving record's fields disagree with the op it
//	                 claims to describe.
//	flight-synced-lost
//	                 a surviving fsync record proves that fsync completed,
//	                 so its synced bytes must be durable: the file must
//	                 exist with at least the synced size (unless a later
//	                 namespace op on the path started before the crash).
//
// The checks intentionally use only (a) the decoded region of the crash
// image and (b) the recorded schedule — exactly what a real post-mortem
// has: the black box plus the ops the clients know they issued.
func (cfg *Config) verifyFlight(rep *Report, base *runResult, fs *core.FS, dev *nvmm.Device, pt int64, seed uint64) {
	off, size := fs.FlightRegion()
	if size == 0 {
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "flight-region",
			Detail: "flight enabled but the recovered image has no flight region"}, cfg.Log)
		return
	}
	log, err := flight.Decode(dev, off, size)
	if err != nil {
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "flight-decode", Detail: err.Error()}, cfg.Log)
		return
	}
	bySeq := make(map[uint64]*opRecord, len(base.recs))
	for i := range base.recs {
		rec := &base.recs[i]
		if rec.flightSeq != 0 {
			if _, dup := bySeq[rec.flightSeq]; !dup { // rename logs two opRecords under one seq
				bySeq[rec.flightSeq] = rec
			}
		}
	}
	// Surviving records: each must be genuine and must describe a
	// completed op.
	for i := range log.Records {
		d := &log.Records[i]
		rec, ok := bySeq[d.Seq]
		if !ok {
			rep.add(Violation{Event: pt, Seed: seed, Invariant: "flight-foreign",
				Detail: fmt.Sprintf("decoded record seq %d matches no op the schedule issued", d.Seq)}, cfg.Log)
			continue
		}
		if rec.flightEv > pt {
			rep.add(Violation{Event: pt, Seed: seed, Invariant: "flight-phantom", Path: rec.path,
				Detail: fmt.Sprintf("record seq %d (%s) was written at event %d, after the crash at %d",
					d.Seq, flight.OpName(d.Op), rec.flightEv, pt)}, cfg.Log)
			continue
		}
		if d.Op != rec.flightOp {
			rep.add(Violation{Event: pt, Seed: seed, Invariant: "flight-mismatch", Path: rec.path,
				Detail: fmt.Sprintf("record seq %d decodes as %s, schedule issued %s",
					d.Seq, flight.OpName(d.Op), flight.OpName(rec.flightOp))}, cfg.Log)
			continue
		}
		if d.Op == flight.OpFsync {
			cfg.checkSyncedFloor(rep, base, fs, d, rec, pt, seed)
		}
	}
	// Completeness: every record written strictly before the crash must
	// survive (its WriteNT committed its lines before event pt), unless
	// the ring lapped it.
	oldest := log.OldestRetained()
	for seq, rec := range bySeq {
		if rec.flightEv >= pt || seq < oldest {
			continue
		}
		if !log.Contains(seq) {
			rep.add(Violation{Event: pt, Seed: seed, Invariant: "flight-lost", Path: rec.path,
				Detail: fmt.Sprintf("record seq %d (%s, written at event %d) is durable by %d but did not decode",
					seq, flight.OpName(rec.flightOp), rec.flightEv, pt)}, cfg.Log)
		}
	}
}

// checkSyncedFloor asserts the one durability claim a flight record can
// make about its op's own effects: a surviving fsync record proves the
// fsync completed (its persist events all precede the record's WriteNT),
// so the synced size must be met — unless a later op on the path
// (unlink, truncate, rename, re-create) had started by the crash and may
// have legitimately changed it.
func (cfg *Config) checkSyncedFloor(rep *Report, base *runResult, fs *core.FS, d *flight.Record, rec *opRecord, pt int64, seed uint64) {
	later := false
	seen := false
	for i := range base.recs {
		r2 := &base.recs[i]
		if r2 == rec {
			seen = true
			continue
		}
		if !seen || r2.path != rec.path || r2.startEv >= pt {
			continue
		}
		switch r2.kind {
		case opUnlink, opUntrack, opCreate, opRmdir:
			later = true
		}
	}
	if later {
		return
	}
	fi, err := fs.Stat(rec.path)
	if err != nil {
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "flight-synced-lost", Path: rec.path,
			Detail: fmt.Sprintf("fsync record seq %d survived but the file is gone (synced %d bytes): %v",
				d.Seq, rec.synced, err)}, cfg.Log)
		return
	}
	if fi.Size < rec.synced {
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "flight-synced-lost", Path: rec.path,
			Detail: fmt.Sprintf("fsync record seq %d survived but size %d is below the synced floor %d",
				d.Seq, fi.Size, rec.synced)}, cfg.Log)
	}
}
