package crashtest

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"hinfs/internal/vfs"
)

// The oracle is prefix-based. Per-inode commit chaining (pmfs.storeInode)
// totally orders every recorded operation on a path — appends chain on
// the file inode, namespace ops on the directory inode and on the file
// inode they link or unlink — and recovery rolls back uncommitted
// transactions in reverse order, so the recovered state of a path is
// always the state after some PREFIX of its recorded operations. Two
// things pin the prefix down further:
//
//   - a completed fsync is a durability barrier: it forces the file's
//     whole chain (data writeback, deferred commits, and every namespace
//     op ordered before it), so prefixes older than the last completed
//     fsync are inadmissible;
//   - setup-phase namespace operations commit inline (their chains hold
//     only other inline-committed namespace transactions), so the crash
//     window — which starts after setup — can never roll them back.
//
// Everything else is deliberately one-sided: a completed-but-unfsynced
// op (even an unlink) may legitimately be rolled back when its commit
// was chained behind an open lazy-write transaction.

// candidate is one admissible recovered state of a path: one prefix
// segment between namespace operations.
type candidate struct {
	exists bool
	// mirror holds every byte written in this generation; the recovered
	// content must be a prefix of it.
	mirror []byte
	// sizes holds the admissible recovered sizes: the length after each
	// recorded write (commit chaining makes anything else a torn write).
	sizes map[int64]bool
	// minSize is the fsync floor inside this generation.
	minSize int64
}

// pathModel is the admissible-state set for one path, oldest candidate
// first.
type pathModel struct {
	// tracked turns false when the path sees an operation the oracle
	// does not model (truncate, rename); it is then skipped for the
	// rest of this crash point's verification.
	tracked bool
	cands   []*candidate
}

func (pm *pathModel) cur() *candidate { return pm.cands[len(pm.cands)-1] }

type model struct {
	files map[string]*pathModel
	dirs  map[string]bool
}

// buildModel folds the recorded operation stream into the admissible
// states at crash event e. Completed operations (ev < e) apply; the one
// operation in flight at the crash (startEv < e <= ev) applies too —
// prefix semantics make its before-state admissible automatically —
// except that an in-flight fsync raises no barrier. Operations completed
// during setup (ev <= setupEv) are durable: they reset the candidate
// list instead of extending it.
func buildModel(recs []opRecord, e, setupEv int64) *model {
	m := &model{files: make(map[string]*pathModel), dirs: make(map[string]bool)}
	get := func(p string) *pathModel {
		pm := m.files[p]
		if pm == nil {
			pm = &pathModel{tracked: true, cands: []*candidate{{exists: false, sizes: map[int64]bool{0: true}}}}
			m.files[p] = pm
		}
		return pm
	}
	for i := range recs {
		rec := &recs[i]
		if rec.startEv >= e {
			break // single-threaded: nothing later has started
		}
		completed := rec.ev < e
		durable := completed && rec.ev <= setupEv
		switch rec.kind {
		case opMkdir:
			// Only setup-phase mkdirs are asserted; a workload-phase
			// mkdir's commit could be chain-deferred.
			if durable {
				m.dirs[rec.path] = true
			}
		case opRmdir:
			delete(m.dirs, rec.path)
		case opCreate:
			pm := get(rec.path)
			if !pm.tracked {
				break
			}
			c := &candidate{exists: true, sizes: map[int64]bool{0: true}}
			if durable {
				pm.cands = []*candidate{c}
			} else {
				pm.cands = append(pm.cands, c)
			}
		case opWrite:
			pm := get(rec.path)
			if !pm.tracked {
				break
			}
			c := pm.cur()
			if !c.exists {
				// A write through a handle whose path was unlinked:
				// detached from the namespace, not modellable here.
				pm.tracked = false
				break
			}
			end := rec.off + int64(len(rec.data))
			if int64(len(c.mirror)) < end {
				c.mirror = append(c.mirror, make([]byte, end-int64(len(c.mirror)))...)
			}
			copy(c.mirror[rec.off:end], rec.data)
			c.sizes[int64(len(c.mirror))] = true
		case opFsync:
			pm := get(rec.path)
			if !pm.tracked || !completed {
				break
			}
			c := pm.cur()
			if !c.exists {
				pm.tracked = false
				break
			}
			pm.cands = []*candidate{c}
			c.minSize = int64(len(c.mirror))
		case opUnlink:
			pm := get(rec.path)
			if !pm.tracked {
				break
			}
			pm.cands = append(pm.cands, &candidate{exists: false, sizes: map[int64]bool{0: true}})
		case opUntrack:
			get(rec.path).tracked = false
		}
	}
	return m
}

// oracleViolation is one oracle failure for one path.
type oracleViolation struct {
	path      string
	invariant string
	detail    string
}

// verify checks the recovered file system against the model, returning
// violations in deterministic (path-sorted) order.
func (m *model) verify(fs vfs.FileSystem) []oracleViolation {
	var out []oracleViolation
	paths := make([]string, 0, len(m.files))
	for p := range m.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		pm := m.files[path]
		if !pm.tracked {
			continue
		}
		if v := checkPath(fs, path, pm.cands); v != nil {
			out = append(out, *v)
		}
	}
	dirs := make([]string, 0, len(m.dirs))
	for d := range m.dirs {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		fi, err := fs.Stat(dir)
		if err != nil || !fi.IsDir {
			out = append(out, oracleViolation{path: dir, invariant: "dir-missing",
				detail: "directory from a durable mkdir is gone"})
		}
	}
	return out
}

// checkPath accepts the recovered file if ANY admissible candidate
// matches, trying newest first; the reported detail comes from the
// newest (expected-current) candidate.
func checkPath(fs vfs.FileSystem, path string, cands []*candidate) *oracleViolation {
	fi, serr := fs.Stat(path)
	exists := serr == nil
	var content []byte
	if exists {
		var err error
		if content, err = readBack(fs, path, fi.Size); err != nil {
			return &oracleViolation{path: path, invariant: "unreadable",
				detail: fmt.Sprintf("read of %d bytes failed: %v", fi.Size, err)}
		}
		if int64(len(content)) != fi.Size {
			return &oracleViolation{path: path, invariant: "short-read",
				detail: fmt.Sprintf("stat says %d bytes, read returned %d", fi.Size, len(content))}
		}
	}
	var first *oracleViolation
	for i := len(cands) - 1; i >= 0; i-- {
		v := matchCandidate(path, cands[i], exists, fi.Size, content)
		if v == nil {
			return nil
		}
		if first == nil {
			first = v
		}
	}
	return first
}

func matchCandidate(path string, c *candidate, exists bool, size int64, content []byte) *oracleViolation {
	if c.exists != exists {
		if c.exists {
			return &oracleViolation{path: path, invariant: "missing",
				detail: fmt.Sprintf("file gone (expected ≤%d bytes, fsync floor %d)", len(c.mirror), c.minSize)}
		}
		return &oracleViolation{path: path, invariant: "resurrected",
			detail: "file exists after a completed unlink"}
	}
	if !exists {
		return nil
	}
	if size < c.minSize {
		return &oracleViolation{path: path, invariant: "synced-data-lost",
			detail: fmt.Sprintf("size %d below fsync floor %d", size, c.minSize)}
	}
	if !c.sizes[size] {
		return &oracleViolation{path: path, invariant: "torn-size",
			detail: fmt.Sprintf("size %d is not a write boundary (fsync floor %d, mirror %d)",
				size, c.minSize, len(c.mirror))}
	}
	if !bytes.Equal(content, c.mirror[:size]) {
		off := 0
		for off < len(content) && content[off] == c.mirror[off] {
			off++
		}
		return &oracleViolation{path: path, invariant: "content",
			detail: fmt.Sprintf("byte %d of %d differs from the write mirror (fsync floor %d): committed metadata describes data that never persisted", off, size, c.minSize)}
	}
	return nil
}

func readBack(fs vfs.FileSystem, path string, size int64) ([]byte, error) {
	f, err := fs.Open(path, vfs.ORdonly)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, size)
	var off int64
	for off < size {
		n, err := f.ReadAt(buf[off:], off)
		if err != nil && err != io.EOF {
			return nil, err
		}
		if n == 0 {
			break
		}
		off += int64(n)
	}
	return buf[:off], nil
}
