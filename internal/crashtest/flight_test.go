package crashtest

import (
	"testing"

	"hinfs/internal/core"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs/flight"
)

// TestExploreFlightStock: with the flight recorder wired into the image,
// stock HiNFS passes the chaos exploration under the extended invariant
// set — the recorded suffix always matches the op schedule.
func TestExploreFlightStock(t *testing.T) {
	rep, err := Explore(Config{Workload: "varmail", Ops: 60, Points: 32, Perms: 3, Seed: 42, Flight: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != rep.Cases {
		t.Fatalf("only %d of %d cases remounted", rep.Recovered, rep.Cases)
	}
	if len(rep.Violations) != 0 || rep.Suppressed != 0 {
		for i, v := range rep.Violations {
			if i == 10 {
				break
			}
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("%d violations with flight recorder on (%s)", len(rep.Violations)+rep.Suppressed, rep.Summary())
	}
}

// TestFlightInvariantsHaveTeeth is the self-test for the flight-*
// invariant class: a hand-built mismatch between the ring contents and
// the op schedule must trigger every check exactly once.
func TestFlightInvariantsHaveTeeth(t *testing.T) {
	cfg := &Config{Flight: true}
	cfg.fill()
	dev, err := nvmm.New(nvmm.Config{Size: cfg.DeviceSize, TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mkfs(dev, cfg.fsOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Abandon()
	flt := fs.Flight()
	if flt == nil {
		t.Fatal("Mkfs with FlightBlocks produced no recorder")
	}
	// Ring contents: seqs 1..4.
	flt.Record(&flight.Record{Op: flight.OpWrite}) // 1: schedule says written after crash -> phantom
	flt.Record(&flight.Record{Op: flight.OpFsync}) // 2: fsync floor on a file that is gone -> synced-lost
	flt.Record(&flight.Record{Op: flight.OpWrite}) // 3: no matching op -> foreign
	flt.Record(&flight.Record{Op: flight.OpRead})  // 4: schedule issued a write -> mismatch
	const pt = 50
	base := &runResult{recs: []opRecord{
		{kind: opWrite, path: "/a", flightSeq: 1, flightOp: flight.OpWrite, flightEv: pt + 50},
		{kind: opFsync, path: "/missing", flightSeq: 2, flightOp: flight.OpFsync, flightEv: 10, synced: 4096},
		{kind: opWrite, path: "/b", flightSeq: 4, flightOp: flight.OpWrite, flightEv: 10},
		{kind: opWrite, path: "/c", flightSeq: 5, flightOp: flight.OpWrite, flightEv: 10}, // never reached the ring -> lost
	}}
	rep := &Report{}
	cfg.verifyFlight(rep, base, fs, dev, pt, 0)
	want := map[string]int{
		"flight-phantom": 1, "flight-synced-lost": 1, "flight-foreign": 1,
		"flight-mismatch": 1, "flight-lost": 1,
	}
	got := map[string]int{}
	for _, v := range rep.Violations {
		got[v.Invariant]++
	}
	for inv, n := range want {
		if got[inv] != n {
			t.Errorf("invariant %s: %d violations, want %d", inv, got[inv], n)
		}
	}
	if len(rep.Violations) != 5 {
		for _, v := range rep.Violations {
			t.Logf("violation: %s", v)
		}
		t.Fatalf("%d violations, want 5", len(rep.Violations))
	}
}

// TestFlightSyncedFloorSkipsSuperseded: a surviving fsync record stops
// asserting its size floor once a later namespace op on the path had
// started by the crash.
func TestFlightSyncedFloorSkipsSuperseded(t *testing.T) {
	cfg := &Config{Flight: true}
	cfg.fill()
	dev, err := nvmm.New(nvmm.Config{Size: cfg.DeviceSize, TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mkfs(dev, cfg.fsOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Abandon()
	fs.Flight().Record(&flight.Record{Op: flight.OpFsync}) // seq 1
	const pt = 50
	base := &runResult{recs: []opRecord{
		{kind: opFsync, path: "/gone", flightSeq: 1, flightOp: flight.OpFsync, flightEv: 10, synced: 4096},
		{kind: opUnlink, path: "/gone", startEv: 20, ev: 25}, // started before the crash: floor lifted
	}}
	rep := &Report{}
	cfg.verifyFlight(rep, base, fs, dev, pt, 0)
	if len(rep.Violations) != 0 {
		t.Fatalf("floor asserted despite a later unlink: %s", rep.Violations[0])
	}
}
