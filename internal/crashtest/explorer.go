package crashtest

import (
	"fmt"
	"io"
	"sort"
	"time"

	"hinfs/internal/buffer"
	"hinfs/internal/clock"
	"hinfs/internal/core"
	"hinfs/internal/nvmm"
	"hinfs/internal/pmfs"
	"hinfs/internal/workload"
)

// Config parameterizes one exploration.
type Config struct {
	// Workload names the personality: "varmail" (default — the paper's
	// fsync- and namespace-heavy mail server), "append" (append-heavy
	// logs with sparse fsyncs, the widest lazy-write windows) or
	// "batchfence" (grouped ops under fence scopes — the coalesced
	// persist schedule of the pipelined server's dispatch batches).
	Workload string
	// Ops is the per-run operation count (default 120).
	Ops int
	// Points is the number of crash points to explore (default 48).
	// Points are drawn from the workload phase's persist-event window:
	// half on a systematic stride, half seeded-random, deduplicated.
	Points int
	// Perms is the number of torn-cacheline permutations per point
	// (default 3). The first is always seed 0 — the classic crash that
	// drops every pending line; the rest keep pseudo-random subsets.
	Perms int
	// Seed drives every random choice (default 1). Same seed, same
	// exploration, same report.
	Seed uint64
	// FirstEvent/LastEvent optionally clamp the crash window to a
	// sub-range of persist events (0 = unbounded), for replaying one
	// region of the schedule.
	FirstEvent, LastEvent int64
	// DeviceSize is the emulated NVMM capacity (default 24 MB).
	DeviceSize int64
	// BufferBlocks is the DRAM write-buffer size (default 512).
	BufferBlocks int
	// UnsafeSkipOrderedCommit mounts with the deliberately seeded §4.1
	// ordering bug; the self-test uses it to prove the explorer detects
	// real ordering violations.
	UnsafeSkipOrderedCommit bool
	// Flight formats a flight-recorder region into the image, appends one
	// record per mutating op during the runs, and verifies the recovered
	// record suffix against the recorded op schedule at every crash case
	// (the "flight-*" invariant class): a surviving record must name an
	// op that completed before the crash, every record written strictly
	// before the crash must survive, and an fsynced size a surviving
	// fsync record claims must be met by the recovered file.
	Flight bool
	// Log, when non-nil, receives a line per verified crash case and
	// per violation.
	Log io.Writer
}

func (cfg *Config) fill() {
	if cfg.Workload == "" {
		cfg.Workload = "varmail"
	}
	if cfg.Ops == 0 {
		cfg.Ops = 120
	}
	if cfg.Points == 0 {
		cfg.Points = 48
	}
	if cfg.Perms == 0 {
		cfg.Perms = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.DeviceSize == 0 {
		cfg.DeviceSize = 24 << 20
	}
	if cfg.BufferBlocks == 0 {
		cfg.BufferBlocks = 512
	}
}

// fsOpts builds the deterministic mount used for every run: one shard,
// inline-only writeback, a fake clock that never advances — the whole
// persist-event schedule must be a pure function of the op stream.
func (cfg *Config) fsOpts() core.Options {
	var flightBlocks int64
	if cfg.Flight {
		flightBlocks = flightRegionBlocks
	}
	return core.Options{
		BufferBlocks:            cfg.BufferBlocks,
		Clock:                   clock.NewFake(time.Unix(0, 0)),
		Buffer:                  buffer.Config{Shards: 1, WritebackThreads: -1},
		PMFS:                    pmfs.Options{JournalBlocks: 512, MaxInodes: 2048, FlightBlocks: flightBlocks},
		UnsafeSkipOrderedCommit: cfg.UnsafeSkipOrderedCommit,
	}
}

// flightRegionBlocks sizes the explorer's flight ring: 32 blocks = 128 KB
// ≈ 1023 slots, comfortably more records than any explorer run appends,
// so the lost-record invariant never has to reason about lapping.
const flightRegionBlocks = 32

func (cfg *Config) newWorkload() (workload.Workload, error) {
	switch cfg.Workload {
	case "varmail":
		// Scaled-down Varmail: same op mix (delete / create-append-fsync
		// / read-append-fsync / read), sized so a few hundred ops give a
		// few thousand crashable events.
		return &workload.Varmail{Files: 64, FileSize: 4 << 10, AppendSize: 4 << 10}, nil
	case "append":
		return &AppendSync{}, nil
	case "batchfence":
		return &BatchFence{}, nil
	}
	return nil, fmt.Errorf("crashtest: unknown workload %q (have varmail, append, batchfence)", cfg.Workload)
}

// Violation is one detected crash-consistency failure, with everything
// needed to reproduce it: the crash event, the torn-subset seed and the
// failing invariant.
type Violation struct {
	// Event is the persist-event ordinal the crash was injected at.
	Event int64
	// Seed selected the kept subset of pending cachelines (0 = none).
	Seed uint64
	// Invariant names the failed check: "recovery" (remount failed),
	// "fsck" (metadata checker), or an oracle invariant such as
	// "content", "torn-size", "synced-data-lost", "missing",
	// "resurrected", "dir-missing".
	Invariant string
	// Path is the affected file (oracle violations only).
	Path string
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the minimal repro line.
func (v Violation) String() string {
	s := fmt.Sprintf("event %d seed %#016x: %s", v.Event, v.Seed, v.Invariant)
	if v.Path != "" {
		s += " " + v.Path
	}
	if v.Detail != "" {
		s += ": " + v.Detail
	}
	return s
}

// Report aggregates one exploration.
type Report struct {
	Workload    string
	Ops         int
	SetupEvents int64 // persist events consumed by Setup (not crashed into)
	TotalEvents int64 // schedule length of the full run
	Points      int   // crash points explored
	Cases       int   // points × permutations
	Recovered   int   // cases that remounted successfully
	RolledBack  int   // journal transactions rolled back across all cases
	FsckErrors  int   // metadata-checker failures
	Violations  []Violation
	// Suppressed counts violations beyond the reporting cap (a seeded
	// bug can fail thousands of cases; the first maxViolations carry
	// all the signal).
	Suppressed int
}

const maxViolations = 512

func (r *Report) add(v Violation, log io.Writer) {
	if len(r.Violations) >= maxViolations {
		r.Suppressed++
		return
	}
	r.Violations = append(r.Violations, v)
	if log != nil {
		fmt.Fprintf(log, "VIOLATION %s\n", v)
	}
}

// Summary renders a one-paragraph result.
func (r *Report) Summary() string {
	s := fmt.Sprintf("workload %s: %d events (%d setup), %d crash points × %d perms = %d cases, %d recovered, %d txs rolled back",
		r.Workload, r.TotalEvents, r.SetupEvents, r.Points, r.Cases/max(r.Points, 1), r.Cases, r.Recovered, r.RolledBack)
	if n := len(r.Violations) + r.Suppressed; n > 0 {
		s += fmt.Sprintf(", %d VIOLATIONS", n)
	} else {
		s += ", no violations"
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runResult is one full workload execution.
type runResult struct {
	recs    []opRecord
	setupEv int64
	totalEv int64
	state   *nvmm.CrashState
}

// runOnce executes the workload start to finish on a fresh device. With
// target > 0 a CrashPlan snapshots the durability state at exactly that
// persist event; the run still completes (the crash is virtual) and the
// pool is abandoned rather than flushed, like a machine losing power.
func (cfg *Config) runOnce(target int64, keep bool) (*runResult, error) {
	dev, err := nvmm.New(nvmm.Config{Size: cfg.DeviceSize, TrackPersistence: true})
	if err != nil {
		return nil, err
	}
	fs, err := core.Mkfs(dev, cfg.fsOpts())
	if err != nil {
		return nil, err
	}
	defer fs.Abandon()
	rec := &recorder{fs: fs, dev: dev, keep: keep, flt: fs.Flight()}
	w, err := cfg.newWorkload()
	if err != nil {
		return nil, err
	}
	if bf, ok := w.(*BatchFence); ok {
		bf.Dev = dev // the fence-scope API lives on the device, below the VFS
	}
	if err := w.Setup(rec); err != nil {
		return nil, fmt.Errorf("crashtest: %s setup: %w", w.Name(), err)
	}
	setupEv := dev.PersistEvents()
	if target > 0 {
		dev.SetCrashPlan(func(ev int64, _ nvmm.EventKind) bool { return ev == target })
	}
	if _, err := w.Run(rec, 1, cfg.Ops); err != nil {
		return nil, fmt.Errorf("crashtest: %s run: %w", w.Name(), err)
	}
	return &runResult{
		recs:    rec.recs,
		setupEv: setupEv,
		totalEv: dev.PersistEvents(),
		state:   dev.TakeCrashState(),
	}, nil
}

// pickPoints chooses n distinct crash events in (lo, hi]: half on a
// systematic stride (coverage), half seeded-random (surprise), sorted.
func pickPoints(lo, hi int64, n int, seed uint64) []int64 {
	span := hi - lo
	if span <= 0 || n <= 0 {
		return nil
	}
	if int64(n) >= span {
		all := make([]int64, span)
		for i := range all {
			all[i] = lo + 1 + int64(i)
		}
		return all
	}
	set := make(map[int64]bool, n)
	pts := make([]int64, 0, n)
	take := func(p int64) {
		if p > lo && p <= hi && !set[p] {
			set[p] = true
			pts = append(pts, p)
		}
	}
	stride := n / 2
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < stride; i++ {
		take(lo + 1 + int64(i)*span/int64(stride))
	}
	rng := workload.NewRand(seed*0x9E3779B97F4A7C15 + 1)
	for len(pts) < n {
		take(lo + 1 + rng.Int63n(span))
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	return pts
}

// permSeeds builds the torn-subset seed list: always seed 0 (drop every
// pending line) first, then perms-1 pseudo-random keeps.
func permSeeds(seed uint64, perms int) []uint64 {
	out := []uint64{0}
	rng := workload.NewRand(seed*0xD6E8FEB86659FD93 + 2)
	for len(out) < perms {
		if s := rng.Uint64(); s != 0 {
			out = append(out, s)
		}
	}
	return out
}

// Explore runs the full record / crash / verify loop and returns the
// aggregated report. A non-nil error means the exploration itself broke
// (workload failure, non-deterministic schedule); consistency failures
// are returned inside the report, not as errors.
func Explore(cfg Config) (*Report, error) {
	cfg.fill()
	base, err := cfg.runOnce(0, true)
	if err != nil {
		return nil, err
	}
	lo, hi := base.setupEv, base.totalEv
	if cfg.FirstEvent > lo+1 {
		lo = cfg.FirstEvent - 1
	}
	if cfg.LastEvent > 0 && cfg.LastEvent < hi {
		hi = cfg.LastEvent
	}
	if lo >= hi {
		return nil, fmt.Errorf("crashtest: empty crash window (%d, %d] (schedule has %d events, %d in setup)",
			lo, hi, base.totalEv, base.setupEv)
	}
	points := pickPoints(lo, hi, cfg.Points, cfg.Seed)
	seeds := permSeeds(cfg.Seed, cfg.Perms)
	rep := &Report{
		Workload:    cfg.Workload,
		Ops:         cfg.Ops,
		SetupEvents: base.setupEv,
		TotalEvents: base.totalEv,
	}
	for _, pt := range points {
		run, err := cfg.runOnce(pt, false)
		if err != nil {
			return rep, err
		}
		if run.totalEv != base.totalEv {
			return rep, fmt.Errorf("crashtest: non-deterministic persist-event schedule: record run has %d events, replay for point %d has %d",
				base.totalEv, pt, run.totalEv)
		}
		if run.state == nil || run.state.Event() != pt {
			return rep, fmt.Errorf("crashtest: crash plan armed at event %d captured nothing", pt)
		}
		rep.Points++
		for _, s := range seeds {
			rep.Cases++
			cfg.verifyCase(rep, base, run.state, pt, s)
		}
	}
	return rep, nil
}

// verifyCase materializes one torn image, remounts it through recovery
// and checks both the metadata checker and the application oracle.
func (cfg *Config) verifyCase(rep *Report, base *runResult, state *nvmm.CrashState, pt int64, seed uint64) {
	dev, err := state.Materialize(nvmm.Config{}, seed)
	if err != nil {
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "materialize", Detail: err.Error()}, cfg.Log)
		return
	}
	fs, rolled, err := core.MountRecover(dev, cfg.fsOpts())
	if err != nil {
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "recovery",
			Detail: "remount failed: " + err.Error()}, cfg.Log)
		return
	}
	defer fs.Abandon()
	rep.Recovered++
	rep.RolledBack += rolled
	before := len(rep.Violations) + rep.Suppressed
	for _, cerr := range fs.Fsck() {
		rep.FsckErrors++
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "fsck", Detail: cerr.Error()}, cfg.Log)
	}
	m := buildModel(base.recs, pt, base.setupEv)
	for _, ov := range m.verify(fs) {
		rep.add(Violation{Event: pt, Seed: seed, Invariant: ov.invariant,
			Path: ov.path, Detail: ov.detail}, cfg.Log)
	}
	if cfg.Flight {
		cfg.verifyFlight(rep, base, fs, dev, pt, seed)
	}
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "point %d seed %#016x (%s, %d pending lines): rolled back %d, %d violations\n",
			pt, seed, state.Kind(), state.PendingLines(), rolled, len(rep.Violations)+rep.Suppressed-before)
	}
}
