package crashtest

import (
	"reflect"
	"testing"
)

// TestExploreVarmailStock is the headline guarantee: on stock HiNFS the
// Varmail mix (deletes, create-append-fsync, read-append-fsync, reads)
// survives every explored crash point under every torn-cacheline
// permutation with zero consistency violations.
func TestExploreVarmailStock(t *testing.T) {
	rep, err := Explore(Config{Workload: "varmail", Ops: 60, Points: 40, Perms: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != 40 || rep.Cases != 120 {
		t.Fatalf("explored %d points / %d cases, want 40/120", rep.Points, rep.Cases)
	}
	if rep.Recovered != rep.Cases {
		t.Fatalf("only %d of %d cases remounted", rep.Recovered, rep.Cases)
	}
	if len(rep.Violations) != 0 || rep.Suppressed != 0 {
		for i, v := range rep.Violations {
			if i == 10 {
				break
			}
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("%d violations on stock HiNFS (%s)", len(rep.Violations)+rep.Suppressed, rep.Summary())
	}
	if rep.RolledBack == 0 {
		t.Error("no crash point ever rolled back a transaction — exploration looks toothless")
	}
}

// TestExploreAppendStock covers the lazy-write-heavy personality: sparse
// fsyncs keep most appends buffered in DRAM across many events.
func TestExploreAppendStock(t *testing.T) {
	rep, err := Explore(Config{Workload: "append", Ops: 80, Points: 32, Perms: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 || rep.Suppressed != 0 {
		for i, v := range rep.Violations {
			if i == 10 {
				break
			}
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("%d violations on stock HiNFS (%s)", len(rep.Violations)+rep.Suppressed, rep.Summary())
	}
}

// TestSeededOrderingBugDetected is the explorer's self-test: mounting
// with the deliberately broken §4.1 coupling (commit records written
// before the buffered data persists) must produce at least one reported
// violation, with a usable minimal repro.
func TestSeededOrderingBugDetected(t *testing.T) {
	rep, err := Explore(Config{Workload: "append", Ops: 80, Points: 32, Perms: 3, Seed: 7,
		UnsafeSkipOrderedCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatalf("seeded ordering bug went undetected (%s)", rep.Summary())
	}
	v := rep.Violations[0]
	if v.Event <= 0 || v.Invariant == "" {
		t.Fatalf("violation lacks a minimal repro: %+v", v)
	}
	t.Logf("first repro: %s", v)
}

// TestExploreDeterministic: identical configs must yield identical
// reports, byte for byte — the repro contract depends on it.
func TestExploreDeterministic(t *testing.T) {
	cfg := Config{Workload: "varmail", Ops: 40, Points: 12, Perms: 2, Seed: 99}
	a, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two explorations diverged:\n%s\n%s", a.Summary(), b.Summary())
	}
}

// TestEventRangeClamp: FirstEvent/LastEvent restrict the crash window.
func TestEventRangeClamp(t *testing.T) {
	base, err := Explore(Config{Workload: "append", Ops: 30, Points: 4, Perms: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mid := (base.SetupEvents + base.TotalEvents) / 2
	rep, err := Explore(Config{Workload: "append", Ops: 30, Points: 4, Perms: 1, Seed: 3,
		FirstEvent: mid, LastEvent: mid + 40})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points == 0 {
		t.Fatal("no points in clamped window")
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations in clamped window: %s", rep.Violations[0])
	}
	// An inverted window must fail loudly, not explore nothing.
	if _, err := Explore(Config{Workload: "append", Ops: 30, Points: 4, Perms: 1, Seed: 3,
		FirstEvent: base.TotalEvents + 100}); err == nil {
		t.Fatal("empty crash window not rejected")
	}
}

func TestPickPoints(t *testing.T) {
	pts := pickPoints(100, 1100, 64, 5)
	if len(pts) != 64 {
		t.Fatalf("got %d points, want 64", len(pts))
	}
	seen := map[int64]bool{}
	for i, p := range pts {
		if p <= 100 || p > 1100 {
			t.Fatalf("point %d out of (100, 1100]", p)
		}
		if seen[p] {
			t.Fatalf("duplicate point %d", p)
		}
		seen[p] = true
		if i > 0 && pts[i-1] >= p {
			t.Fatal("points not sorted")
		}
	}
	if !reflect.DeepEqual(pts, pickPoints(100, 1100, 64, 5)) {
		t.Fatal("pickPoints not deterministic")
	}
	// Tiny windows degrade to exhaustive enumeration.
	if got := pickPoints(10, 14, 100, 5); !reflect.DeepEqual(got, []int64{11, 12, 13, 14}) {
		t.Fatalf("exhaustive enumeration = %v", got)
	}
}

func TestPermSeeds(t *testing.T) {
	s := permSeeds(9, 4)
	if len(s) != 4 || s[0] != 0 {
		t.Fatalf("permSeeds = %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] == 0 {
			t.Fatal("derived seed 0 would silently mean drop-all")
		}
	}
}

// TestOracleModel exercises the prefix model directly: fsync floors,
// in-flight writes admitting both boundaries, and the one-sided
// treatment of a completed-but-unfsynced unlink.
func TestOracleModel(t *testing.T) {
	recs := []opRecord{
		{kind: opCreate, path: "/f", startEv: 1, ev: 2}, // setup: durable
		{kind: opWrite, path: "/f", off: 0, data: []byte("aaaa"), startEv: 3, ev: 6},
		{kind: opFsync, path: "/f", startEv: 7, ev: 9},
		{kind: opWrite, path: "/f", off: 4, data: []byte("bbbb"), startEv: 10, ev: 14},
	}
	const setupEv = 2
	// Crash with the second write in flight: one candidate (the fsync
	// collapsed everything older), sizes 4 and 8 admissible, floor 4.
	m := buildModel(recs, 12, setupEv)
	pm := m.files["/f"]
	if len(pm.cands) != 1 {
		t.Fatalf("%d candidates, want 1", len(pm.cands))
	}
	c := pm.cur()
	if !c.exists || !c.sizes[4] || !c.sizes[8] || c.sizes[2] || c.minSize != 4 {
		t.Fatalf("candidate %+v", c)
	}
	if string(c.mirror) != "aaaabbbb" {
		t.Fatalf("mirror = %q", c.mirror)
	}
	// Crash before the fsync completes: no floor yet, size 0 (the
	// durable create) still admissible.
	m = buildModel(recs, 8, setupEv)
	c = m.files["/f"].cur()
	if c.minSize != 0 || !c.sizes[0] || !c.sizes[4] {
		t.Fatalf("pre-fsync candidate %+v", c)
	}
	// A completed unlink is NOT durable by itself: both the gone-state
	// and the rolled-back old generation stay admissible.
	recs = append(recs, opRecord{kind: opUnlink, path: "/f", startEv: 16, ev: 18})
	m = buildModel(recs, 20, setupEv)
	pm = m.files["/f"]
	if len(pm.cands) != 2 {
		t.Fatalf("post-unlink candidates = %d, want 2", len(pm.cands))
	}
	if pm.cur().exists {
		t.Fatal("newest candidate should be the unlinked state")
	}
	if old := pm.cands[0]; !old.exists || old.minSize != 4 {
		t.Fatalf("rolled-back generation %+v", old)
	}
	// A setup-phase (durable) create resets the candidate list.
	recs = append(recs, opRecord{kind: opCreate, path: "/g", startEv: 1, ev: 2})
	m = buildModel(recs, 20, setupEv)
	if pm := m.files["/g"]; len(pm.cands) != 1 || !pm.cur().exists {
		t.Fatalf("durable create candidates %+v", pm.cands)
	}
}
