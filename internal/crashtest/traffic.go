package crashtest

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hinfs/internal/core"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs/flight"
	"hinfs/internal/pmfs"
	"hinfs/internal/server"
	"hinfs/internal/vfs"
	"hinfs/internal/workload"
)

// TrafficConfig parameterizes chaos-under-traffic exploration: the
// multi-tenant wire server under concurrent client load, crashed at a
// sampled persist event, with the recovered flight-record suffix
// cross-checked against the op schedule the clients know they issued.
//
// Unlike Explore, runs are not deterministic (real goroutines, real
// clock): each crash point is an independent run carrying its own op
// log. The join between that log and the recovered ring is the trace
// ID — every client reseeds its trace generator (Client.SetTraceBase)
// so op k of client c is trace c<<32+k, predictable on both sides.
type TrafficConfig struct {
	// Points is the number of independent crash runs (default 6).
	Points int
	// Perms is the number of torn-cacheline permutations per point
	// (default 3, seed 0 first — the drop-everything crash).
	Perms int
	// Seed drives crash-point sampling and permutation seeds (default 1).
	Seed uint64
	// ClientsPerTenant is the concurrent client count per tenant
	// (default 2; tenants are fixed: gold weight 4, bronze weight 1).
	ClientsPerTenant int
	// Chunk is the append size in bytes (default 1024). Every client
	// appends fixed-size pattern chunks to its own file, so a recovered
	// size that is not a chunk boundary is a torn lazy write.
	Chunk int
	// FsyncEvery issues an fsync after every Nth append (default 4).
	FsyncEvery int
	// HorizonEvents bounds how far past warm-up the crash event is
	// sampled (default 600).
	HorizonEvents int64
	// DeviceSize is the emulated NVMM capacity (default 24 MB).
	DeviceSize int64
	// BufferBlocks is the DRAM write-buffer size (default 512).
	BufferBlocks int
	// Log, when non-nil, receives a line per crash case and violation.
	Log io.Writer
}

func (cfg *TrafficConfig) fill() {
	if cfg.Points == 0 {
		cfg.Points = 6
	}
	if cfg.Perms == 0 {
		cfg.Perms = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ClientsPerTenant == 0 {
		cfg.ClientsPerTenant = 2
	}
	if cfg.Chunk == 0 {
		cfg.Chunk = 1024
	}
	if cfg.FsyncEvery == 0 {
		cfg.FsyncEvery = 4
	}
	if cfg.HorizonEvents == 0 {
		cfg.HorizonEvents = 600
	}
	if cfg.DeviceSize == 0 {
		cfg.DeviceSize = 24 << 20
	}
	if cfg.BufferBlocks == 0 {
		cfg.BufferBlocks = 512
	}
}

func (cfg *TrafficConfig) fsOpts() core.Options {
	return core.Options{
		BufferBlocks: cfg.BufferBlocks,
		PMFS:         pmfs.Options{JournalBlocks: 512, MaxInodes: 2048, FlightBlocks: flightRegionBlocks},
	}
}

// trafficTenants is the fixed tenant set: the 4:1 weight split the
// fairness figures use.
var trafficTenants = []struct {
	name   string
	weight int
}{
	{"gold", 4},
	{"bronze", 1},
}

// trafficOp is one wire request a client knows it issued, keyed by its
// predicted trace ID.
type trafficOp struct {
	tenant string
	path   string // server-side absolute path
	op     uint8  // flight canonical op code
	off    int64
	n      int
	floor  int64 // fsync: client-acked bytes at issue — the durable floor
	ok     bool  // the call returned success client-side
}

// trafficFile is one client's append target.
type trafficFile struct {
	tenant string
	path   string // server-side absolute path
	salt   uint64
	issued int64 // bytes attempted
	acked  int64 // bytes acknowledged contiguously from 0
	dirty  bool  // a failed/short write happened; boundary checks are off
}

// trafficRun is one completed crash run: the op log, the files, and the
// captured crash state.
type trafficRun struct {
	ops   map[uint64]*trafficOp
	files []*trafficFile
	state *nvmm.CrashState
}

// pathSalt seeds the per-file byte pattern (FNV-1a of the path).
func pathSalt(path string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= 1099511628211
	}
	return h
}

// patByte is the deterministic content byte at offset off of a file with
// the given salt — what the clients write and the verifier expects.
func patByte(salt uint64, off int64) byte {
	x := salt + uint64(off)*0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return byte(x)
}

// trafficClient runs one client's append/fsync loop until stop. Every
// wire call increments the local op counter k, so its trace is base+k —
// the join key the verifier uses.
type trafficClient struct {
	cfg  *TrafficConfig
	cl   *server.Client
	base uint64
	file *trafficFile
	ops  []trafficOp // index i is trace base+i+1
}

func (tc *trafficClient) run(ready *sync.WaitGroup, stop <-chan struct{}, done *sync.WaitGroup) {
	defer done.Done()
	relPath := tc.file.path[len("/tenants/"+tc.file.tenant):]
	f, err := tc.cl.Open(relPath, vfs.ORdwr|vfs.OCreate)
	tc.ops = append(tc.ops, trafficOp{tenant: tc.file.tenant, path: tc.file.path,
		op: flight.OpOpen, ok: err == nil})
	ready.Done()
	if err != nil {
		return
	}
	buf := make([]byte, tc.cfg.Chunk)
	writes := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		off := tc.file.issued
		for i := range buf {
			buf[i] = patByte(tc.file.salt, off+int64(i))
		}
		tc.file.issued += int64(len(buf))
		n, werr := f.WriteAt(buf, off)
		tc.ops = append(tc.ops, trafficOp{tenant: tc.file.tenant, path: tc.file.path,
			op: flight.OpWrite, off: off, n: n, ok: werr == nil && n == len(buf)})
		if werr != nil || n != len(buf) {
			tc.file.dirty = true
			return
		}
		tc.file.acked += int64(n)
		writes++
		if writes%tc.cfg.FsyncEvery == 0 {
			floor := tc.file.acked
			serr := f.Fsync()
			tc.ops = append(tc.ops, trafficOp{tenant: tc.file.tenant, path: tc.file.path,
				op: flight.OpFsync, floor: floor, ok: serr == nil})
			if serr != nil {
				return
			}
		}
	}
}

// runTraffic executes one crash run: a fresh image, a live server, the
// client fleet, a crash plan armed at a sampled event past warm-up.
func (cfg *TrafficConfig) runTraffic(rng *workload.Rand) (*trafficRun, error) {
	dev, err := nvmm.New(nvmm.Config{Size: cfg.DeviceSize, TrackPersistence: true})
	if err != nil {
		return nil, err
	}
	fs, err := core.Mkfs(dev, cfg.fsOpts())
	if err != nil {
		return nil, err
	}
	defer fs.Abandon()
	tenants := make(map[string]server.TenantConfig, len(trafficTenants))
	for _, tn := range trafficTenants {
		tenants[tn.name] = server.TenantConfig{Root: "/tenants/" + tn.name, Weight: tn.weight}
	}
	srv, err := server.New(server.Config{
		FS:      fs,
		Tenants: tenants,
		Workers: 2,
		Flight:  fs.Flight(),
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	var clients []*trafficClient
	id := uint64(0)
	for _, tn := range trafficTenants {
		for i := 0; i < cfg.ClientsPerTenant; i++ {
			id++
			cpipe, spipe := net.Pipe()
			go srv.ServeConn(spipe)
			cl, err := server.NewClient(cpipe, tn.name)
			if err != nil {
				return nil, fmt.Errorf("crashtest: traffic attach: %w", err)
			}
			base := id << 32
			cl.SetTraceBase(base)
			path := fmt.Sprintf("/tenants/%s/c%d.log", tn.name, id)
			clients = append(clients, &trafficClient{
				cfg: cfg, cl: cl, base: base,
				file: &trafficFile{tenant: tn.name, path: path, salt: pathSalt(path)},
			})
		}
	}
	stop := make(chan struct{})
	var ready, done sync.WaitGroup
	ready.Add(len(clients))
	done.Add(len(clients))
	for _, tc := range clients {
		go tc.run(&ready, stop, &done)
	}
	ready.Wait()
	// Warm-up is over (every client attached and opened); sample the
	// crash event from the traffic that follows. The plan fires at the
	// first event at or past the target — the client loops keep the
	// event counter moving, so it always fires.
	target := dev.PersistEvents() + 1 + rng.Int63n(cfg.HorizonEvents)
	dev.SetCrashPlan(func(ev int64, _ nvmm.EventKind) bool { return ev >= target })
	var state *nvmm.CrashState
	deadline := time.Now().Add(30 * time.Second)
	for state == nil {
		if time.Now().After(deadline) {
			close(stop)
			done.Wait()
			return nil, fmt.Errorf("crashtest: traffic crash plan at event %d never fired (now %d)",
				target, dev.PersistEvents())
		}
		time.Sleep(500 * time.Microsecond)
		state = dev.TakeCrashState()
	}
	dev.SetCrashPlan(nil)
	close(stop)
	done.Wait()
	run := &trafficRun{ops: make(map[uint64]*trafficOp), state: state}
	for _, tc := range clients {
		tc.cl.Unmount()
		run.files = append(run.files, tc.file)
		for i := range tc.ops {
			run.ops[tc.base+uint64(i)+1] = &tc.ops[i]
		}
	}
	return run, nil
}

// TenantDamage attributes one tenant's share of the chaos: ops issued
// (per run), flight records that survived crashes (per case), acked
// appends whose bytes did not survive (per case — legitimate lazy-write
// loss, not violations) and bytes proven durable by surviving fsync
// records (per case).
type TenantDamage struct {
	OpsIssued   int64
	OpsRecorded int64
	WritesLost  int64
	SyncedBytes int64
}

// TrafficReport aggregates one chaos-under-traffic exploration.
type TrafficReport struct {
	Points, Cases, Recovered int
	RolledBack, FsckErrors   int
	// OpsIssued counts wire ops across all runs; RecordsDecoded /
	// RecordsJoined / TornRecords count the recovered ring's contents
	// across all cases — joined/decoded is the recorder-suffix accuracy.
	OpsIssued, RecordsDecoded, RecordsJoined, TornRecords int64
	Violations                                            []Violation
	Suppressed                                            int
	Tenants                                               map[string]*TenantDamage
}

func (r *TrafficReport) add(v Violation, log io.Writer) {
	if len(r.Violations) >= maxViolations {
		r.Suppressed++
		return
	}
	r.Violations = append(r.Violations, v)
	if log != nil {
		fmt.Fprintf(log, "VIOLATION %s\n", v)
	}
}

// Summary renders a one-paragraph result.
func (r *TrafficReport) Summary() string {
	joined := float64(100)
	if r.RecordsDecoded > 0 {
		joined = 100 * float64(r.RecordsJoined) / float64(r.RecordsDecoded)
	}
	s := fmt.Sprintf("traffic: %d crash runs × %d perms = %d cases, %d recovered, %d txs rolled back, %d ops issued, %d records decoded (%.1f%% joined, %d torn tails)",
		r.Points, r.Cases/max(r.Points, 1), r.Cases, r.Recovered, r.RolledBack, r.OpsIssued, r.RecordsDecoded, joined, r.TornRecords)
	for _, tn := range trafficTenants {
		if d := r.Tenants[tn.name]; d != nil {
			s += fmt.Sprintf("; %s: %d ops, %d recorded, %d writes lost, %d bytes fsync-proven",
				tn.name, d.OpsIssued, d.OpsRecorded, d.WritesLost, d.SyncedBytes)
		}
	}
	if n := len(r.Violations) + r.Suppressed; n > 0 {
		s += fmt.Sprintf(", %d VIOLATIONS", n)
	} else {
		s += ", no violations"
	}
	return s
}

// ExploreTraffic runs the chaos-under-traffic loop: Points independent
// crash runs, each verified under Perms torn permutations. A non-nil
// error means the harness broke; consistency failures are in the report.
func ExploreTraffic(cfg TrafficConfig) (*TrafficReport, error) {
	cfg.fill()
	rep := &TrafficReport{Tenants: make(map[string]*TenantDamage)}
	for _, tn := range trafficTenants {
		rep.Tenants[tn.name] = &TenantDamage{}
	}
	rng := workload.NewRand(cfg.Seed*0xA24BAED4963EE407 + 3)
	for p := 0; p < cfg.Points; p++ {
		run, err := cfg.runTraffic(rng)
		if err != nil {
			return rep, err
		}
		rep.Points++
		rep.OpsIssued += int64(len(run.ops))
		for _, op := range run.ops {
			rep.Tenants[op.tenant].OpsIssued++
		}
		for _, seed := range permSeeds(cfg.Seed^(uint64(p)*0x9E3779B97F4A7C15+7), cfg.Perms) {
			rep.Cases++
			cfg.verifyTrafficCase(rep, run, seed)
		}
	}
	return rep, nil
}

// verifyTrafficCase materializes one torn image from a traffic run,
// remounts it, and checks the flight-forensics invariants:
//
//	traffic-foreign   a surviving record's trace matches no issued op
//	traffic-tenant    a surviving record is attributed to the wrong tenant
//	traffic-op        a surviving record's op code disagrees with the op
//	traffic-synced-lost / traffic-synced-content
//	                  a surviving successful-fsync record's size floor or
//	                  pattern content is not met by the recovered file
//	traffic-torn-size a recovered append-only file's size is not a chunk
//	                  boundary (a lazy write leaked partially)
//	traffic-content   recovered bytes disagree with the written pattern
func (cfg *TrafficConfig) verifyTrafficCase(rep *TrafficReport, run *trafficRun, seed uint64) {
	pt := run.state.Event()
	dev, err := run.state.Materialize(nvmm.Config{}, seed)
	if err != nil {
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "materialize", Detail: err.Error()}, cfg.Log)
		return
	}
	fs, rolled, err := core.MountRecover(dev, cfg.fsOpts())
	if err != nil {
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "recovery",
			Detail: "remount failed: " + err.Error()}, cfg.Log)
		return
	}
	defer fs.Abandon()
	rep.Recovered++
	rep.RolledBack += rolled
	before := len(rep.Violations) + rep.Suppressed
	for _, cerr := range fs.Fsck() {
		rep.FsckErrors++
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "fsck", Detail: cerr.Error()}, cfg.Log)
	}
	off, size := fs.FlightRegion()
	if size == 0 {
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "flight-region",
			Detail: "recovered image has no flight region"}, cfg.Log)
		return
	}
	log, err := flight.Decode(dev, off, size)
	if err != nil {
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "flight-decode", Detail: err.Error()}, cfg.Log)
		return
	}
	rep.RecordsDecoded += int64(len(log.Records))
	rep.TornRecords += int64(log.Torn)
	sizes := cfg.recoveredSizes(rep, run, fs, pt, seed)
	for i := range log.Records {
		d := &log.Records[i]
		op, ok := run.ops[d.Trace]
		if !ok {
			rep.add(Violation{Event: pt, Seed: seed, Invariant: "traffic-foreign",
				Detail: fmt.Sprintf("record seq %d trace %#x matches no issued op", d.Seq, d.Trace)}, cfg.Log)
			continue
		}
		rep.RecordsJoined++
		rep.Tenants[op.tenant].OpsRecorded++
		if d.Tenant != op.tenant {
			rep.add(Violation{Event: pt, Seed: seed, Invariant: "traffic-tenant", Path: op.path,
				Detail: fmt.Sprintf("record seq %d attributed to %q, op was %s's", d.Seq, d.Tenant, op.tenant)}, cfg.Log)
		}
		if d.Op != op.op {
			rep.add(Violation{Event: pt, Seed: seed, Invariant: "traffic-op", Path: op.path,
				Detail: fmt.Sprintf("record seq %d decodes as %s, op was %s", d.Seq, flight.OpName(d.Op), flight.OpName(op.op))}, cfg.Log)
		}
		// A surviving successful-fsync record proves durability: the
		// fsync's flushes and fences are strictly earlier persist events
		// than the record's own WriteNT, so the floor must be met.
		if d.Op == flight.OpFsync && d.Result == 0 && op.ok {
			sz, exists := sizes[op.path]
			if !exists {
				rep.add(Violation{Event: pt, Seed: seed, Invariant: "traffic-synced-lost", Path: op.path,
					Detail: fmt.Sprintf("fsync record seq %d survived but the file is gone (floor %d bytes)", d.Seq, op.floor)}, cfg.Log)
			} else if sz < op.floor {
				rep.add(Violation{Event: pt, Seed: seed, Invariant: "traffic-synced-lost", Path: op.path,
					Detail: fmt.Sprintf("fsync record seq %d survived but size %d is below the synced floor %d", d.Seq, sz, op.floor)}, cfg.Log)
			} else {
				rep.Tenants[op.tenant].SyncedBytes += op.floor
			}
		}
	}
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "traffic point %d seed %#016x: rolled back %d, %d records, %d violations\n",
			pt, seed, rolled, len(log.Records), len(rep.Violations)+rep.Suppressed-before)
	}
}

// recoveredSizes checks every client file's recovered state (size
// boundary, pattern content), counts per-tenant lost appends, and
// returns path -> recovered size for the fsync-floor checks.
func (cfg *TrafficConfig) recoveredSizes(rep *TrafficReport, run *trafficRun, fs *core.FS, pt int64, seed uint64) map[string]int64 {
	sizes := make(map[string]int64, len(run.files))
	for _, f := range run.files {
		fi, err := fs.Stat(f.path)
		if err != nil {
			// Never durable — the create itself was lost. Legitimate (the
			// fsync-floor check catches the illegitimate variant); every
			// acked append on it is damage.
			rep.Tenants[f.tenant].WritesLost += f.acked / int64(cfg.Chunk)
			continue
		}
		sizes[f.path] = fi.Size
		if f.acked > fi.Size {
			rep.Tenants[f.tenant].WritesLost += (f.acked - fi.Size) / int64(cfg.Chunk)
		}
		if !f.dirty {
			if fi.Size%int64(cfg.Chunk) != 0 {
				rep.add(Violation{Event: pt, Seed: seed, Invariant: "traffic-torn-size", Path: f.path,
					Detail: fmt.Sprintf("recovered size %d is not a %d-byte append boundary", fi.Size, cfg.Chunk)}, cfg.Log)
			}
			if fi.Size > f.issued {
				rep.add(Violation{Event: pt, Seed: seed, Invariant: "traffic-torn-size", Path: f.path,
					Detail: fmt.Sprintf("recovered size %d exceeds the %d bytes ever issued", fi.Size, f.issued)}, cfg.Log)
			}
		}
		if fi.Size > 0 {
			cfg.checkPattern(rep, fs, f, fi.Size, pt, seed)
		}
	}
	return sizes
}

// checkPattern verifies every recovered byte of f matches the
// deterministic write pattern.
func (cfg *TrafficConfig) checkPattern(rep *TrafficReport, fs *core.FS, f *trafficFile, size, pt int64, seed uint64) {
	h, err := fs.Open(f.path, vfs.ORdonly)
	if err != nil {
		rep.add(Violation{Event: pt, Seed: seed, Invariant: "traffic-content", Path: f.path,
			Detail: "stat succeeded but open failed: " + err.Error()}, cfg.Log)
		return
	}
	defer h.Close()
	buf := make([]byte, 64<<10)
	for at := int64(0); at < size; {
		n := int64(len(buf))
		if rem := size - at; rem < n {
			n = rem
		}
		if _, err := h.ReadAt(buf[:n], at); err != nil {
			rep.add(Violation{Event: pt, Seed: seed, Invariant: "traffic-content", Path: f.path,
				Detail: fmt.Sprintf("read at %d: %v", at, err)}, cfg.Log)
			return
		}
		for i := int64(0); i < n; i++ {
			if buf[i] != patByte(f.salt, at+i) {
				rep.add(Violation{Event: pt, Seed: seed, Invariant: "traffic-content", Path: f.path,
					Detail: fmt.Sprintf("byte %d is %#02x, pattern says %#02x", at+i, buf[i], patByte(f.salt, at+i))}, cfg.Log)
				return
			}
		}
		at += n
	}
}
