// Package crashtest explores HiNFS crash consistency systematically.
//
// An exploration has three phases:
//
//  1. Record: run a deterministic workload once against a fresh HiNFS
//     instance on a persistence-tracking device, stamping every
//     state-changing VFS call with the device's persist-event ordinal
//     (internal/nvmm's monotonic counter over Flush/WriteNT/Fence).
//  2. Crash: for each chosen crash point, replay the identical workload
//     with a CrashPlan armed at that event; the device captures the
//     durable image plus the pending (stored-but-unflushed) cachelines.
//  3. Verify: materialize several torn-subset images per point (seed 0
//     drops every pending line; other seeds keep pseudo-random halves),
//     remount each through journal recovery, run the metadata checker,
//     and verify an application-level oracle built from the recorded
//     operation stream.
//
// The oracle asserts the paper's §4.1 contract: fsynced data survives
// with correct contents, a lazy write is visible wholly or not at all
// (the recovered size is a prefix boundary of the recorded write
// sequence and the bytes below it match), and namespace operations are
// atomic. Operations in flight at the crash point are allowed either
// their before- or after-state.
//
// Everything is deterministic by construction: workloads run single
// threaded on a single-shard pool with inline-only writeback and a fake
// clock, so the replay's persist-event schedule is identical to the
// recording's — the explorer asserts this and fails loudly otherwise.
package crashtest

import (
	"sync"

	"hinfs/internal/nvmm"
	"hinfs/internal/obs/flight"
	"hinfs/internal/vfs"
)

// opKind classifies a recorded operation.
type opKind uint8

const (
	opMkdir opKind = iota
	opRmdir
	opCreate
	opWrite
	opFsync
	opUnlink
	// opUntrack marks a path whose state the oracle stops modelling
	// (truncate and rename are not used by the crash workloads; rather
	// than model them half-right, the oracle skips such paths until a
	// later unlink or create re-establishes a known state).
	opUntrack
)

// opRecord is one state-changing operation, stamped with the device's
// persist-event counter at call entry (startEv) and return (ev). An
// operation completed before crash event e iff ev < e; it was in flight
// iff startEv < e <= ev.
type opRecord struct {
	kind    opKind
	path    string
	off     int64
	data    []byte
	startEv int64
	ev      int64
	// Flight-recorder stamps (zero when the run records no flight ring):
	// the sequence number the op's flight record was appended under, the
	// canonical op code it carried, and the persist-event ordinal of the
	// record's own WriteNT. The record is durable in a crash image iff
	// the crash event is strictly greater than flightEv (WriteNT commits
	// its lines right after its fault point); at exactly flightEv the
	// record's two cachelines are pending — the torn-tail case.
	flightSeq uint64
	flightOp  uint8
	flightEv  int64
	// synced, for opFsync records, is the file size the completed fsync
	// made durable — the floor the flight-forensics invariant asserts.
	synced int64
}

// recorder wraps a FileSystem, logging every state-changing call with
// persist-event stamps. With keep=false it is a transparent passthrough
// (crash replays re-run the identical op stream but do not need a second
// copy of the log). Read-only calls are never recorded; fs.Sync is
// passed through unrecorded, which is sound — modelling it could only
// make the oracle stricter, never looser.
type recorder struct {
	fs   vfs.FileSystem
	dev  *nvmm.Device
	keep bool
	// flt, when set, appends one flight record per mutating op — the
	// persisted black box the chaos invariants cross-check after a crash.
	flt *flight.Recorder

	mu   sync.Mutex
	recs []opRecord
}

func (r *recorder) events() int64 { return r.dev.PersistEvents() }

// flightNote appends the flight record for one completed op and returns
// its (seq, persist-event) stamps. It runs in BOTH record and replay
// runs: the record's WriteNT is a persist event, so skipping it in
// replays would desynchronize the two schedules the explorer compares.
func (r *recorder) flightNote(op uint8, ino uint64, off int64, n int) (uint64, int64) {
	if r.flt == nil {
		return 0, 0
	}
	seq := r.flt.Record(&flight.Record{Ino: ino, Off: off, Len: uint32(n), Op: op})
	// The record's NT store is the LAST persist event Record fired — but
	// not necessarily the only one: under a fence-elision scope
	// (batchfence) the store first materializes any pending elided
	// fence, so counting events()+1 up front would stamp the record one
	// event early and break the durability line verifyFlight draws.
	return seq, r.events()
}

func (r *recorder) add(rec opRecord) {
	if !r.keep {
		return
	}
	r.mu.Lock()
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

// Create implements vfs.FileSystem.
func (r *recorder) Create(path string) (vfs.File, error) {
	start := r.events()
	f, err := r.fs.Create(path)
	if err != nil {
		return nil, err
	}
	ino := inoOf(f)
	seq, fev := r.flightNote(flight.OpCreate, ino, 0, 0)
	r.add(opRecord{kind: opCreate, path: path, startEv: start, ev: r.events(),
		flightSeq: seq, flightOp: flight.OpCreate, flightEv: fev})
	return &recFile{r: r, f: f, path: path, ino: ino}, nil
}

// Open implements vfs.FileSystem. An OCreate open of a missing path is
// recorded as a creation (the pre-existence probe is a read and emits no
// persist events).
func (r *recorder) Open(path string, flags int) (vfs.File, error) {
	start := r.events()
	creating := false
	if flags&vfs.OCreate != 0 {
		_, serr := r.fs.Stat(path)
		creating = serr != nil
	}
	f, err := r.fs.Open(path, flags)
	if err != nil {
		return nil, err
	}
	ino := inoOf(f)
	if creating {
		seq, fev := r.flightNote(flight.OpCreate, ino, 0, 0)
		r.add(opRecord{kind: opCreate, path: path, startEv: start, ev: r.events(),
			flightSeq: seq, flightOp: flight.OpCreate, flightEv: fev})
	} else if flags&vfs.OTrunc != 0 {
		seq, fev := r.flightNote(flight.OpTruncate, ino, 0, 0)
		r.add(opRecord{kind: opUntrack, path: path, startEv: start, ev: r.events(),
			flightSeq: seq, flightOp: flight.OpTruncate, flightEv: fev})
	}
	return &recFile{r: r, f: f, path: path, ino: ino, app: flags&vfs.OAppend != 0}, nil
}

// Mkdir implements vfs.FileSystem.
func (r *recorder) Mkdir(path string) error {
	start := r.events()
	err := r.fs.Mkdir(path)
	if err == nil {
		seq, fev := r.flightNote(flight.OpMkdir, 0, 0, 0)
		r.add(opRecord{kind: opMkdir, path: path, startEv: start, ev: r.events(),
			flightSeq: seq, flightOp: flight.OpMkdir, flightEv: fev})
	}
	return err
}

// Rmdir implements vfs.FileSystem.
func (r *recorder) Rmdir(path string) error {
	start := r.events()
	err := r.fs.Rmdir(path)
	if err == nil {
		seq, fev := r.flightNote(flight.OpRmdir, 0, 0, 0)
		r.add(opRecord{kind: opRmdir, path: path, startEv: start, ev: r.events(),
			flightSeq: seq, flightOp: flight.OpRmdir, flightEv: fev})
	}
	return err
}

// Unlink implements vfs.FileSystem.
func (r *recorder) Unlink(path string) error {
	start := r.events()
	err := r.fs.Unlink(path)
	if err == nil {
		seq, fev := r.flightNote(flight.OpUnlink, 0, 0, 0)
		r.add(opRecord{kind: opUnlink, path: path, startEv: start, ev: r.events(),
			flightSeq: seq, flightOp: flight.OpUnlink, flightEv: fev})
	}
	return err
}

// Rename implements vfs.FileSystem. Both endpoints leave the tracked
// set; the crash workloads do not rename.
func (r *recorder) Rename(oldpath, newpath string) error {
	start := r.events()
	err := r.fs.Rename(oldpath, newpath)
	if err == nil {
		seq, fev := r.flightNote(flight.OpRename, 0, 0, 0)
		ev := r.events()
		r.add(opRecord{kind: opUntrack, path: oldpath, startEv: start, ev: ev,
			flightSeq: seq, flightOp: flight.OpRename, flightEv: fev})
		r.add(opRecord{kind: opUntrack, path: newpath, startEv: start, ev: ev})
	}
	return err
}

// Stat implements vfs.FileSystem.
func (r *recorder) Stat(path string) (vfs.FileInfo, error) { return r.fs.Stat(path) }

// ReadDir implements vfs.FileSystem.
func (r *recorder) ReadDir(path string) ([]vfs.DirEntry, error) { return r.fs.ReadDir(path) }

// Sync implements vfs.FileSystem.
func (r *recorder) Sync() error { return r.fs.Sync() }

// Unmount implements vfs.FileSystem.
func (r *recorder) Unmount() error { return r.fs.Unmount() }

// recFile wraps an open handle, recording writes (with a private copy of
// the data — the oracle replays it as the content mirror), fsyncs and
// truncates.
type recFile struct {
	r    *recorder
	f    vfs.File
	path string
	ino  uint64
	app  bool
}

// inoOf probes a handle for its inode number (vfs.InodeNumberer).
func inoOf(f vfs.File) uint64 {
	if n, ok := vfs.FileAs[vfs.InodeNumberer](f); ok {
		return n.InodeNumber()
	}
	return 0
}

// ReadAt implements vfs.File.
func (f *recFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }

// WriteAt implements vfs.File. For OAppend handles the recorded offset
// is the actual append position (size after the write minus the bytes
// written), not the ignored caller offset.
func (f *recFile) WriteAt(p []byte, off int64) (int, error) {
	start := f.r.events()
	n, err := f.f.WriteAt(p, off)
	if n > 0 {
		at := off
		if f.app {
			at = f.f.Size() - int64(n)
		}
		seq, fev := f.r.flightNote(flight.OpWrite, f.ino, at, n)
		if f.r.keep {
			data := make([]byte, n)
			copy(data, p[:n])
			f.r.add(opRecord{kind: opWrite, path: f.path, off: at, data: data, startEv: start, ev: f.r.events(),
				flightSeq: seq, flightOp: flight.OpWrite, flightEv: fev})
		}
	}
	return n, err
}

// Fsync implements vfs.File.
func (f *recFile) Fsync() error {
	start := f.r.events()
	err := f.f.Fsync()
	if err == nil {
		seq, fev := f.r.flightNote(flight.OpFsync, f.ino, 0, 0)
		f.r.add(opRecord{kind: opFsync, path: f.path, startEv: start, ev: f.r.events(),
			flightSeq: seq, flightOp: flight.OpFsync, flightEv: fev, synced: f.f.Size()})
	}
	return err
}

// Truncate implements vfs.File.
func (f *recFile) Truncate(size int64) error {
	start := f.r.events()
	err := f.f.Truncate(size)
	if err == nil {
		seq, fev := f.r.flightNote(flight.OpTruncate, f.ino, size, 0)
		f.r.add(opRecord{kind: opUntrack, path: f.path, startEv: start, ev: f.r.events(),
			flightSeq: seq, flightOp: flight.OpTruncate, flightEv: fev})
	}
	return err
}

// Size implements vfs.File.
func (f *recFile) Size() int64 { return f.f.Size() }

// Close implements vfs.File.
func (f *recFile) Close() error { return f.f.Close() }
