package crashtest

import (
	"fmt"

	"hinfs/internal/nvmm"
	"hinfs/internal/vfs"
	"hinfs/internal/workload"
)

// BatchFence is a crash-test workload personality that drives the
// fence-coalescing path the pipelined server uses: ops are issued in
// groups bracketed by an nvmm.FenceScope with an OpBoundary between
// ops, exactly how a scheduler worker executes a dispatch batch. Each
// group's trailing fences collapse into one ordering point at scope
// close, so the explorer's crash points land on the *production*
// persist-event schedule of batched execution — fewer, later fences —
// and verify that recovery, fsck and the content oracle still hold at
// every one of them.
type BatchFence struct {
	// Dev is the device under the file system; the explorer injects it
	// (the scope API is a device API, deliberately below the VFS).
	Dev *nvmm.Device

	Files     int // default 8
	BatchOps  int // ops per fence scope; default 6
	WriteSize int // max write length; default 3 KB (unaligned tails)
	SyncEvery int // fsync every Nth op; default 4
}

func (w *BatchFence) fill() {
	if w.Files == 0 {
		w.Files = 8
	}
	if w.BatchOps == 0 {
		w.BatchOps = 6
	}
	if w.WriteSize == 0 {
		w.WriteSize = 3 << 10
	}
	if w.SyncEvery == 0 {
		w.SyncEvery = 4
	}
}

func (w *BatchFence) path(i int) string { return fmt.Sprintf("/bat/f%d", i) }

// Name implements workload.Workload.
func (w *BatchFence) Name() string { return "batchfence" }

// Setup implements workload.Workload.
func (w *BatchFence) Setup(fs vfs.FileSystem) error {
	w.fill()
	if err := fs.Mkdir("/bat"); err != nil && err != vfs.ErrExist {
		return err
	}
	for i := 0; i < w.Files; i++ {
		f, err := fs.Create(w.path(i))
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Run implements workload.Workload: ops groups of BatchOps appends, each
// group under one fence scope. Single-goroutine and seeded, so the
// persist-event schedule — including which fences coalesce — is a pure
// function of the op stream, as the explorer requires.
func (w *BatchFence) Run(fs vfs.FileSystem, threads, ops int) (workload.Result, error) {
	w.fill()
	if w.Dev == nil {
		return workload.Result{}, fmt.Errorf("batchfence: no device injected")
	}
	if threads <= 0 {
		threads = 1
	}
	var res workload.Result
	rng := workload.NewRand(0xBA7C4F)
	buf := make([]byte, w.WriteSize)
	runOp := func(op int) error {
		i := rng.Intn(w.Files)
		f, err := fs.Open(w.path(i), vfs.ORdwr|vfs.OAppend)
		if err != nil {
			return err
		}
		defer f.Close()
		n := 1 + rng.Intn(w.WriteSize)
		for j := 0; j < n; j++ {
			buf[j] = byte(rng.Uint64())
		}
		wn, werr := f.WriteAt(buf[:n], 0)
		res.BytesWritten += int64(wn)
		if werr != nil {
			return werr
		}
		if op%w.SyncEvery == w.SyncEvery-1 {
			if err := f.Fsync(); err != nil {
				return err
			}
			res.Fsyncs++
			res.FsyncBytes += int64(wn)
		}
		res.Ops++
		return nil
	}
	total := ops * threads
	for op := 0; op < total; {
		group := w.BatchOps
		if rest := total - op; group > rest {
			group = rest
		}
		scope := w.Dev.EnterFenceScope()
		var err error
		for g := 0; g < group; g++ {
			if g > 0 {
				scope.OpBoundary()
			}
			if err = runOp(op); err != nil {
				break
			}
			op++
		}
		scope.Close()
		if err != nil {
			return res, err
		}
	}
	return res, nil
}
