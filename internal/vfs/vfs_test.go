package vfs

import (
	"strings"
	"testing"
)

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		err  error
	}{
		{"/", []string{}, nil},
		{"", nil, ErrInvalid},
		{"/a/b/c", []string{"a", "b", "c"}, nil},
		{"//a///b/", []string{"a", "b"}, nil},
		{"a/b", []string{"a", "b"}, nil},
		{"/a/./b", []string{"a", "b"}, nil},
		{"/a/../b", nil, ErrInvalid},
		// Hardening: every escape/abuse shape an untrusted client can send.
		{"..", nil, ErrInvalid},
		{"/..", nil, ErrInvalid},
		{"/../", nil, ErrInvalid},
		{"/a/..", nil, ErrInvalid},
		{"/a/b/../../..", nil, ErrInvalid},
		{"/./../a", nil, ErrInvalid},
		{"//..//a", nil, ErrInvalid},
		{"/a/\x00b", nil, ErrInvalid},
		{"/\x00", nil, ErrInvalid},
		{"/.", []string{}, nil},
		{"///", []string{}, nil},
		{"/a//", []string{"a"}, nil},
		{"/a/./././b///", []string{"a", "b"}, nil},
		// "..." and ".hidden" are ordinary names, not traversal.
		{"/...", []string{"..."}, nil},
		{"/..x/.y", []string{"..x", ".y"}, nil},
		// Length limits.
		{"/" + strings.Repeat("a", MaxComponentLen), []string{strings.Repeat("a", MaxComponentLen)}, nil},
		{"/" + strings.Repeat("a", MaxComponentLen+1), nil, ErrNameTooLon},
		{strings.Repeat("/a", MaxPathComponents+1), nil, ErrInvalid},
		{"/" + strings.Repeat("x/", MaxPathLen), nil, ErrInvalid},
	}
	for _, c := range cases {
		got, err := SplitPath(c.in)
		if err != c.err {
			t.Errorf("SplitPath(%.40q) err = %v, want %v", c.in, err, c.err)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("SplitPath(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitPath(%q)[%d] = %q", c.in, i, got[i])
			}
		}
	}
}

func TestSplitPathDepthLimit(t *testing.T) {
	// Exactly MaxPathComponents is fine; one more is not.
	ok := strings.Repeat("/a", MaxPathComponents)
	if _, err := SplitPath(ok); err != nil {
		t.Fatalf("depth %d rejected: %v", MaxPathComponents, err)
	}
	if _, err := SplitPath(ok + "/a"); err != ErrInvalid {
		t.Fatalf("depth %d accepted: %v", MaxPathComponents+1, err)
	}
}

func TestSplitDirBase(t *testing.T) {
	dir, base, err := SplitDirBase("/a/b/c")
	if err != nil || base != "c" || len(dir) != 2 || dir[0] != "a" || dir[1] != "b" {
		t.Fatalf("got %v %q %v", dir, base, err)
	}
	if _, _, err := SplitDirBase("/"); err != ErrInvalid {
		t.Fatalf("root SplitDirBase err = %v", err)
	}
	dir, base, err = SplitDirBase("/top")
	if err != nil || base != "top" || len(dir) != 0 {
		t.Fatalf("got %v %q %v", dir, base, err)
	}
}

func TestJoinPath(t *testing.T) {
	if got := JoinPath(nil); got != "/" {
		t.Fatalf("JoinPath(nil) = %q", got)
	}
	if got := JoinPath([]string{"a", "b"}); got != "/a/b" {
		t.Fatalf("JoinPath = %q", got)
	}
}

// recordFS is a fake FileSystem that records every path it is handed, so
// Sub's re-anchoring can be asserted exactly.
type recordFS struct {
	paths []string
}

func (r *recordFS) note(p string) { r.paths = append(r.paths, p) }

func (r *recordFS) Create(p string) (File, error)        { r.note(p); return nil, nil }
func (r *recordFS) Open(p string, f int) (File, error)   { r.note(p); return nil, nil }
func (r *recordFS) Mkdir(p string) error                 { r.note(p); return nil }
func (r *recordFS) Rmdir(p string) error                 { r.note(p); return nil }
func (r *recordFS) Unlink(p string) error                { r.note(p); return nil }
func (r *recordFS) Rename(o, n string) error             { r.note(o); r.note(n); return nil }
func (r *recordFS) Stat(p string) (FileInfo, error)      { r.note(p); return FileInfo{IsDir: true}, nil }
func (r *recordFS) ReadDir(p string) ([]DirEntry, error) { r.note(p); return nil, nil }
func (r *recordFS) Sync() error                          { return nil }
func (r *recordFS) Unmount() error                       { return nil }

func TestSubResolvesUnderRoot(t *testing.T) {
	inner := &recordFS{}
	sub, err := Sub(inner, "/tenants/t1")
	if err != nil {
		t.Fatal(err)
	}
	inner.paths = nil // drop the Stat from Sub itself

	cases := []struct {
		give string
		want string
	}{
		{"/", "/tenants/t1"},
		{"/f", "/tenants/t1/f"},
		{"//f//", "/tenants/t1/f"},
		{"/./a/./b", "/tenants/t1/a/b"},
		{"relative/name", "/tenants/t1/relative/name"},
	}
	for _, c := range cases {
		inner.paths = nil
		if _, err := sub.Stat(c.give); err != nil {
			t.Fatalf("Stat(%q): %v", c.give, err)
		}
		if len(inner.paths) != 1 || inner.paths[0] != c.want {
			t.Errorf("Stat(%q) reached %v, want [%s]", c.give, inner.paths, c.want)
		}
	}

	inner.paths = nil
	if err := sub.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if len(inner.paths) != 2 || inner.paths[0] != "/tenants/t1/a" || inner.paths[1] != "/tenants/t1/b" {
		t.Errorf("Rename reached %v", inner.paths)
	}
}

func TestSubRejectsEscapes(t *testing.T) {
	inner := &recordFS{}
	sub, err := Sub(inner, "/jail")
	if err != nil {
		t.Fatal(err)
	}
	inner.paths = nil
	for _, p := range []string{"..", "/..", "/../", "/../../etc", "/a/../..", "", "/\x00"} {
		if _, err := sub.Stat(p); err != ErrInvalid {
			t.Errorf("Stat(%q) = %v, want ErrInvalid", p, err)
		}
		if err := sub.Mkdir(p); err != ErrInvalid {
			t.Errorf("Mkdir(%q) = %v, want ErrInvalid", p, err)
		}
		if err := sub.Rename(p, "/ok"); err != ErrInvalid {
			t.Errorf("Rename(%q, ok) = %v, want ErrInvalid", p, err)
		}
		if err := sub.Rename("/ok", p); err != ErrInvalid {
			t.Errorf("Rename(ok, %q) = %v, want ErrInvalid", p, err)
		}
	}
	if len(inner.paths) != 0 {
		t.Fatalf("escape attempts reached the inner fs: %v", inner.paths)
	}
	if err := sub.Unmount(); err != ErrInvalid {
		t.Fatalf("Unmount on a view = %v, want ErrInvalid", err)
	}
}

func TestSubRootValidation(t *testing.T) {
	inner := &recordFS{}
	if _, err := Sub(inner, "/../x"); err != ErrInvalid {
		t.Fatalf("Sub with traversal root = %v", err)
	}
	sub, err := Sub(inner, "/")
	if err != nil {
		t.Fatal(err)
	}
	inner.paths = nil
	sub.Stat("/f")
	if len(inner.paths) != 1 || inner.paths[0] != "/f" {
		t.Fatalf("root view reached %v", inner.paths)
	}
}

// capFile layers: base implements BlockMmapper, wrap decorates it.
type baseFile struct{ File }

func (baseFile) Mmap(index int64) ([]byte, error) { return nil, nil }
func (baseFile) Msync(index int64) error          { return nil }
func (baseFile) Munmap() error                    { return nil }

type wrapFile struct {
	File
	inner File
}

func (w wrapFile) Unwrap() File { return w.inner }

type plainFile struct{ File }

func TestFileAs(t *testing.T) {
	b := baseFile{}
	if !HasBlockMmap(b) {
		t.Fatal("base handle not discovered directly")
	}
	// Capability survives one and two layers of decoration.
	if !HasBlockMmap(wrapFile{inner: b}) {
		t.Fatal("capability lost through one decorator")
	}
	if !HasBlockMmap(wrapFile{inner: wrapFile{inner: b}}) {
		t.Fatal("capability lost through two decorators")
	}
	// A chain ending in a plain handle reports no capability.
	if HasBlockMmap(plainFile{}) || HasBlockMmap(wrapFile{inner: plainFile{}}) {
		t.Fatal("capability invented")
	}
	if HasBlockMmap(nil) {
		t.Fatal("nil handle has capability")
	}
	// FileAs returns the first matching layer.
	m, ok := FileAs[BlockMmapper](wrapFile{inner: b})
	if !ok || m == nil {
		t.Fatal("FileAs failed")
	}
}
