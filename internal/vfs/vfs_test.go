package vfs

import "testing"

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		err  bool
	}{
		{"/", []string{}, false},
		{"", nil, true},
		{"/a/b/c", []string{"a", "b", "c"}, false},
		{"//a///b/", []string{"a", "b"}, false},
		{"a/b", []string{"a", "b"}, false},
		{"/a/./b", []string{"a", "b"}, false},
		{"/a/../b", nil, true},
	}
	for _, c := range cases {
		got, err := SplitPath(c.in)
		if (err != nil) != c.err {
			t.Errorf("SplitPath(%q) err = %v", c.in, err)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("SplitPath(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitPath(%q)[%d] = %q", c.in, i, got[i])
			}
		}
	}
}

func TestSplitDirBase(t *testing.T) {
	dir, base, err := SplitDirBase("/a/b/c")
	if err != nil || base != "c" || len(dir) != 2 || dir[0] != "a" || dir[1] != "b" {
		t.Fatalf("got %v %q %v", dir, base, err)
	}
	if _, _, err := SplitDirBase("/"); err != ErrInvalid {
		t.Fatalf("root SplitDirBase err = %v", err)
	}
	dir, base, err = SplitDirBase("/top")
	if err != nil || base != "top" || len(dir) != 0 {
		t.Fatalf("got %v %q %v", dir, base, err)
	}
}
