// Package vfs defines the file-system interface shared by every system in
// this repository: HiNFS and its variants, the PMFS baseline, EXT4-DAX, and
// the EXT2/EXT4-on-NVMMBD baselines. Workload generators, the benchmark
// harness, the example applications, the CLI tools and the multi-tenant
// server all program against these interfaces, so any system can be swapped
// under any workload.
//
// The surface is capability-based: FileSystem composes a small set of core
// interfaces (Opener, Namespace, Syncer), and optional capabilities —
// memory-mapped I/O, decorated-handle unwrapping — are discovered by
// interface assertion (FileAs, HasBlockMmap) rather than demanded of every
// backend. A front-end that only lists directories can depend on Namespace
// alone; the server mounts anything that satisfies FileSystem and probes
// the rest.
package vfs

import (
	"errors"
	"strings"
)

// Open flags. They mirror the POSIX flags the paper's write-path policy
// depends on: O_SYNC marks every write on the handle eager-persistent.
const (
	ORdonly = 1 << iota
	OWronly
	ORdwr
	OCreate
	OTrunc
	OAppend
	OSync
)

// Common errors returned by all file systems.
var (
	ErrNotExist   = errors.New("vfs: file does not exist")
	ErrExist      = errors.New("vfs: file already exists")
	ErrIsDir      = errors.New("vfs: is a directory")
	ErrNotDir     = errors.New("vfs: not a directory")
	ErrNotEmpty   = errors.New("vfs: directory not empty")
	ErrNoSpace    = errors.New("vfs: no space left on device")
	ErrClosed     = errors.New("vfs: file handle closed")
	ErrReadOnly   = errors.New("vfs: handle not open for writing")
	ErrWriteOnly  = errors.New("vfs: handle not open for reading")
	ErrInvalid    = errors.New("vfs: invalid argument")
	ErrNameTooLon = errors.New("vfs: name too long")
	ErrUnmounted  = errors.New("vfs: file system unmounted")
)

// Path-shape limits. Individual file systems may impose tighter per-name
// limits (PMFS dentries hold 54 bytes); these bound what path *parsing*
// will accept, so adversarial inputs from untrusted clients — the server
// feeds wire paths straight into SplitPath — are rejected before any
// namespace walk begins.
const (
	// MaxPathLen bounds the byte length of a whole path.
	MaxPathLen = 4096
	// MaxPathComponents bounds the directory depth of a path.
	MaxPathComponents = 255
	// MaxComponentLen bounds one path component's byte length.
	MaxComponentLen = 255
)

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string
	Size  int64
	IsDir bool
	// Blocks is the number of data blocks allocated on the device.
	Blocks int64
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name  string
	IsDir bool
}

// File is an open file handle.
//
// ReadAt follows the io.ReaderAt contract: a read starting at or past end
// of file returns (0, io.EOF), and a read truncated by end of file returns
// the bytes read together with io.EOF. When n == len(p) the error is nil.
// Every system returns the same shapes, so one client read path works over
// any backend.
type File interface {
	// ReadAt reads up to len(p) bytes at offset off. It returns the number
	// of bytes read; n < len(p) only at end of file, in which case the
	// error is io.EOF (see the interface comment).
	ReadAt(p []byte, off int64) (n int, err error)
	// WriteAt writes p at offset off, extending the file as needed.
	// Handles opened with OAppend ignore off and append atomically.
	WriteAt(p []byte, off int64) (n int, err error)
	// Fsync persists all data and metadata of the file to NVMM.
	Fsync() error
	// Truncate changes the file size.
	Truncate(size int64) error
	// Size returns the current file size.
	Size() int64
	// Close releases the handle. Closing an already-closed handle returns
	// ErrClosed; operations racing Close either complete or fail with
	// ErrClosed, never touch reclaimed storage.
	Close() error
}

// Opener creates and opens files — the minimal data-plane entry point.
type Opener interface {
	// Create creates a regular file, failing if it exists.
	Create(path string) (File, error)
	// Open opens an existing file (or creates one with OCreate).
	Open(path string, flags int) (File, error)
}

// Namespace manipulates and inspects the directory tree.
type Namespace interface {
	// Mkdir creates a directory.
	Mkdir(path string) error
	// Rmdir removes an empty directory.
	Rmdir(path string) error
	// Unlink removes a regular file.
	Unlink(path string) error
	// Rename moves oldpath to newpath, replacing a regular file there.
	Rename(oldpath, newpath string) error
	// Stat describes the file at path.
	Stat(path string) (FileInfo, error)
	// ReadDir lists the directory at path.
	ReadDir(path string) ([]DirEntry, error)
}

// Syncer flushes dirty state to the device.
type Syncer interface {
	// Sync flushes all dirty state to the device.
	Sync() error
}

// FileSystem is a mounted file system instance: the composition of the
// core capabilities plus teardown.
type FileSystem interface {
	Opener
	Namespace
	Syncer
	// Unmount flushes everything and stops background work. The file
	// system must not be used afterwards.
	Unmount() error
}

// Mmapper is implemented by file systems supporting direct memory-mapped
// I/O (§4.2). Mmap returns a slice aliasing device memory; Msync persists
// stores made through it.
type Mmapper interface {
	Mmap(length int64) ([]byte, error)
	Msync() error
	Munmap() error
}

// BlockMmapper is the optional per-handle capability for block-granular
// direct memory-mapped I/O (§4.2): Mmap returns a slice aliasing the
// device memory of one file block, Msync persists stores made through it,
// Munmap ends the mapping. HiNFS handles implement it; page-cache
// baselines and remote handles do not. Discover it with FileAs — never by
// asserting on the concrete handle, which may be decorated.
type BlockMmapper interface {
	Mmap(index int64) ([]byte, error)
	Msync(index int64) error
	Munmap() error
}

// InodeNumberer is the optional per-handle capability exposing the
// backing inode number. The flight recorder stamps it into persisted
// records so post-crash forensics can name the object an op touched even
// when the path is gone. Discover it with FileAs; handles of systems
// without stable inode numbers simply do not implement it.
type InodeNumberer interface {
	InodeNumber() uint64
}

// FileUnwrapper is implemented by decorating file handles (latency
// instrumentation, modelled syscall overhead) so optional capabilities of
// the underlying handle stay discoverable through the decoration.
type FileUnwrapper interface {
	Unwrap() File
}

// FileAs walks f's decoration chain looking for capability T, in the
// spirit of errors.As: it returns the first layer satisfying T, following
// Unwrap until the chain ends.
func FileAs[T any](f File) (T, bool) {
	for f != nil {
		if t, ok := any(f).(T); ok {
			return t, true
		}
		u, ok := f.(FileUnwrapper)
		if !ok {
			break
		}
		f = u.Unwrap()
	}
	var zero T
	return zero, false
}

// HasBlockMmap reports whether f (or a handle it decorates) supports
// block-granular mmap.
func HasBlockMmap(f File) bool {
	_, ok := FileAs[BlockMmapper](f)
	return ok
}

// SplitPath normalizes path and splits it into components. The root "/"
// yields an empty slice. It rejects, with ErrInvalid: empty paths, any
// ".." component (the namespace has no parent links, so dot-dot could only
// ever be an escape attempt), components containing NUL bytes, and paths
// exceeding MaxPathLen bytes or MaxPathComponents components. Components
// longer than MaxComponentLen return ErrNameTooLon. Repeated slashes,
// trailing slashes and "." components are ignored. Every namespace walk in
// the repository starts here, so these checks hold for all systems.
func SplitPath(path string) ([]string, error) {
	if path == "" {
		return nil, ErrInvalid
	}
	if len(path) > MaxPathLen {
		return nil, ErrInvalid
	}
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		switch p {
		case "", ".":
		case "..":
			return nil, ErrInvalid
		default:
			if len(p) > MaxComponentLen {
				return nil, ErrNameTooLon
			}
			if strings.IndexByte(p, 0) >= 0 {
				return nil, ErrInvalid
			}
			out = append(out, p)
		}
	}
	if len(out) > MaxPathComponents {
		return nil, ErrInvalid
	}
	return out, nil
}

// SplitDirBase splits path into its parent components and final name.
func SplitDirBase(path string) (dir []string, base string, err error) {
	parts, err := SplitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", ErrInvalid
	}
	return parts[:len(parts)-1], parts[len(parts)-1], nil
}

// JoinPath reassembles components into a canonical absolute path.
func JoinPath(parts []string) string {
	if len(parts) == 0 {
		return "/"
	}
	return "/" + strings.Join(parts, "/")
}
