// Package vfs defines the file-system interface shared by every system in
// this repository: HiNFS and its variants, the PMFS baseline, EXT4-DAX, and
// the EXT2/EXT4-on-NVMMBD baselines. Workload generators, the benchmark
// harness, the example applications and the CLI tools all program against
// these interfaces, so any system can be swapped under any workload.
package vfs

import (
	"errors"
	"strings"
)

// Open flags. They mirror the POSIX flags the paper's write-path policy
// depends on: O_SYNC marks every write on the handle eager-persistent.
const (
	ORdonly = 1 << iota
	OWronly
	ORdwr
	OCreate
	OTrunc
	OAppend
	OSync
)

// Common errors returned by all file systems.
var (
	ErrNotExist   = errors.New("vfs: file does not exist")
	ErrExist      = errors.New("vfs: file already exists")
	ErrIsDir      = errors.New("vfs: is a directory")
	ErrNotDir     = errors.New("vfs: not a directory")
	ErrNotEmpty   = errors.New("vfs: directory not empty")
	ErrNoSpace    = errors.New("vfs: no space left on device")
	ErrClosed     = errors.New("vfs: file handle closed")
	ErrReadOnly   = errors.New("vfs: handle not open for writing")
	ErrWriteOnly  = errors.New("vfs: handle not open for reading")
	ErrInvalid    = errors.New("vfs: invalid argument")
	ErrNameTooLon = errors.New("vfs: name too long")
	ErrUnmounted  = errors.New("vfs: file system unmounted")
)

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string
	Size  int64
	IsDir bool
	// Blocks is the number of data blocks allocated on the device.
	Blocks int64
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name  string
	IsDir bool
}

// File is an open file handle.
type File interface {
	// ReadAt reads len(p) bytes at offset off. It returns the number of
	// bytes read; n < len(p) only at end of file.
	ReadAt(p []byte, off int64) (n int, err error)
	// WriteAt writes p at offset off, extending the file as needed.
	// Handles opened with OAppend ignore off and append atomically.
	WriteAt(p []byte, off int64) (n int, err error)
	// Fsync persists all data and metadata of the file to NVMM.
	Fsync() error
	// Truncate changes the file size.
	Truncate(size int64) error
	// Size returns the current file size.
	Size() int64
	// Close releases the handle.
	Close() error
}

// Mmapper is implemented by file systems supporting direct memory-mapped
// I/O (§4.2). Mmap returns a slice aliasing device memory; Msync persists
// stores made through it.
type Mmapper interface {
	Mmap(length int64) ([]byte, error)
	Msync() error
	Munmap() error
}

// FileSystem is a mounted file system instance.
type FileSystem interface {
	// Create creates a regular file, failing if it exists.
	Create(path string) (File, error)
	// Open opens an existing file (or creates one with OCreate).
	Open(path string, flags int) (File, error)
	// Mkdir creates a directory.
	Mkdir(path string) error
	// Rmdir removes an empty directory.
	Rmdir(path string) error
	// Unlink removes a regular file.
	Unlink(path string) error
	// Rename moves oldpath to newpath, replacing a regular file there.
	Rename(oldpath, newpath string) error
	// Stat describes the file at path.
	Stat(path string) (FileInfo, error)
	// ReadDir lists the directory at path.
	ReadDir(path string) ([]DirEntry, error)
	// Sync flushes all dirty state to the device.
	Sync() error
	// Unmount flushes everything and stops background work. The file
	// system must not be used afterwards.
	Unmount() error
}

// SplitPath normalizes path and splits it into components. It returns
// ErrInvalid for empty paths and ignores duplicate slashes. The root "/"
// yields an empty slice.
func SplitPath(path string) ([]string, error) {
	if path == "" {
		return nil, ErrInvalid
	}
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		switch p {
		case "", ".":
		case "..":
			return nil, ErrInvalid
		default:
			out = append(out, p)
		}
	}
	return out, nil
}

// SplitDirBase splits path into its parent components and final name.
func SplitDirBase(path string) (dir []string, base string, err error) {
	parts, err := SplitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", ErrInvalid
	}
	return parts[:len(parts)-1], parts[len(parts)-1], nil
}
