package vfs

// Sub returns a chroot-style view of fs confined to the subtree at root:
// every path given to the view is validated (SplitPath — so "..",
// NUL bytes and oversized paths are rejected before any walk) and
// re-anchored under root. The view cannot name, and therefore cannot
// reach, anything outside the subtree; the multi-tenant server builds one
// per tenant. The root directory must already exist.
//
// The view shares the underlying mount: Sync flushes the whole file
// system, and Unmount is refused (ErrInvalid) — teardown belongs to the
// owner of the real mount, not to a confined view.
func Sub(fs FileSystem, root string) (FileSystem, error) {
	parts, err := SplitPath(root)
	if err != nil {
		return nil, err
	}
	if _, err := fs.Stat(JoinPath(parts)); err != nil {
		return nil, err
	}
	prefix := ""
	if len(parts) > 0 {
		prefix = JoinPath(parts)
	}
	return &subFS{inner: fs, prefix: prefix}, nil
}

type subFS struct {
	inner FileSystem
	// prefix is the canonical root path without trailing slash, "" when
	// the view is rooted at "/".
	prefix string
}

// resolve validates path and re-anchors it under the view's root. All
// escapes are structurally impossible after SplitPath: the surviving
// components contain no "..", no empty names and no separators, so the
// join can only descend.
func (s *subFS) resolve(path string) (string, error) {
	parts, err := SplitPath(path)
	if err != nil {
		return "", err
	}
	if len(parts) == 0 {
		if s.prefix == "" {
			return "/", nil
		}
		return s.prefix, nil
	}
	return s.prefix + JoinPath(parts), nil
}

func (s *subFS) Create(path string) (File, error) {
	full, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	return s.inner.Create(full)
}

func (s *subFS) Open(path string, flags int) (File, error) {
	full, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	return s.inner.Open(full, flags)
}

func (s *subFS) Mkdir(path string) error {
	full, err := s.resolve(path)
	if err != nil {
		return err
	}
	return s.inner.Mkdir(full)
}

func (s *subFS) Rmdir(path string) error {
	full, err := s.resolve(path)
	if err != nil {
		return err
	}
	return s.inner.Rmdir(full)
}

func (s *subFS) Unlink(path string) error {
	full, err := s.resolve(path)
	if err != nil {
		return err
	}
	return s.inner.Unlink(full)
}

func (s *subFS) Rename(oldpath, newpath string) error {
	oldFull, err := s.resolve(oldpath)
	if err != nil {
		return err
	}
	newFull, err := s.resolve(newpath)
	if err != nil {
		return err
	}
	return s.inner.Rename(oldFull, newFull)
}

func (s *subFS) Stat(path string) (FileInfo, error) {
	full, err := s.resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	return s.inner.Stat(full)
}

func (s *subFS) ReadDir(path string) ([]DirEntry, error) {
	full, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	return s.inner.ReadDir(full)
}

func (s *subFS) Sync() error { return s.inner.Sync() }

// Unmount on a confined view is refused: the view does not own the mount.
func (s *subFS) Unmount() error { return ErrInvalid }
