package journal

import (
	"encoding/binary"
	"testing"

	"hinfs/internal/nvmm"
)

// TestRollbackReverseSequenceAcrossTxs pins the global rollback order:
// two uncommitted transactions logged overlapping undo images for the
// same range, and recovery must land on the *oldest* pre-image — i.e.
// apply the newest undo first — regardless of txid or map iteration
// order.
func TestRollbackReverseSequenceAcrossTxs(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 128 * 4096
	dev.WriteNT([]byte("AAAAAAAA"), addr)

	tx1 := j.Begin()
	tx1.LogRange(addr, 8) // undo image "AAAAAAAA"
	dev.WriteNT([]byte("BBBBBBBB"), addr)
	tx2 := j.Begin()
	tx2.LogRange(addr, 8) // undo image "BBBBBBBB"
	dev.WriteNT([]byte("CCCCCCCC"), addr)
	// Neither commits; crash.
	dev.Crash()

	rolled, err := Recover(dev, areaBase, areaSize)
	if err != nil {
		t.Fatal(err)
	}
	if rolled != 2 {
		t.Fatalf("rolled %d txs, want 2", rolled)
	}
	got := make([]byte, 8)
	dev.Read(got, addr)
	if string(got) != "AAAAAAAA" {
		t.Fatalf("rollback order wrong: got %q, want AAAAAAAA", got)
	}
}

// TestBitmapUndoCommutes pins the logical bitmap undo: an uncommitted
// transaction's bit toggles are XOR-reverted without clobbering bits a
// *later committed* transaction set in the same word.
func TestBitmapUndoCommutes(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 128 * 4096
	var w [8]byte
	dev.WriteNT(w[:], addr) // word = 0

	write := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		dev.WriteNT(w[:], addr)
	}
	read := func() uint64 {
		dev.Read(w[:], addr)
		return binary.LittleEndian.Uint64(w[:])
	}

	// txA allocates bits 0-3 and stays open.
	txA := j.Begin()
	txA.LogBitmap(addr, 0x0f)
	write(read() ^ 0x0f)
	// txB allocates bits 4-7 in the same word and commits.
	txB := j.Begin()
	txB.LogBitmap(addr, 0xf0)
	write(read() ^ 0xf0)
	txB.Commit()

	dev.Crash()
	rolled, err := Recover(dev, areaBase, areaSize)
	if err != nil {
		t.Fatal(err)
	}
	if rolled != 1 {
		t.Fatalf("rolled %d txs, want 1 (txA only)", rolled)
	}
	if got := read(); got != 0xf0 {
		t.Fatalf("word = %#x after rollback, want 0xf0 (txB's committed bits intact)", got)
	}
	_ = txA
}

// TestAfterChainsCommitRecords pins commit chaining: a transaction whose
// commit is requested before its predecessor's must not have a durable
// commit record until the predecessor commits.
func TestAfterChainsCommitRecords(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 128 * 4096
	dev.WriteNT([]byte("old-old-"), addr)

	tx1 := j.Begin()
	tx1.LogRange(addr, 8)
	dev.WriteNT([]byte("mid-mid-"), addr)
	tx2 := j.Begin()
	tx2.After(tx1)
	tx2.LogRange(addr, 8)
	dev.WriteNT([]byte("new-new-"), addr)

	// tx2's commit is requested first; the record must wait on tx1.
	tx2.Commit()
	if !tx2.Committed() {
		t.Fatal("commit request not acknowledged")
	}
	// Crash now: neither record durable, both roll back to the oldest image.
	img := snapshotArea(dev)
	restoreCrash(t, dev, img, addr, "old-old-", 2)

	// Now let tx1 commit: both records are written, in order, and both
	// transactions' entries are retired.
	tx1.Commit()
	if res := j.Residue(); len(res) != 0 {
		t.Fatalf("residue after chained commits: %v", res)
	}
}

// snapshotArea copies the whole device image so a destructive crash check
// can run mid-test and be undone.
func snapshotArea(dev *nvmm.Device) []byte {
	img := make([]byte, dev.Size())
	dev.Read(img, 0)
	return img
}

// restoreCrash crashes the device, recovers it and verifies the rollback,
// then restores the pre-crash image.
func restoreCrash(t *testing.T, dev *nvmm.Device, img []byte, addr int64, want string, wantRolled int) {
	t.Helper()
	// Crash destroys the volatile state; run the check, then restore.
	dev.Crash()
	rolled, err := Recover(dev, areaBase, areaSize)
	if err != nil {
		t.Fatal(err)
	}
	if rolled != wantRolled {
		t.Fatalf("rolled %d txs, want %d", rolled, wantRolled)
	}
	got := make([]byte, 8)
	dev.Read(got, addr)
	if string(got) != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	// Restore the pre-crash image (data only; recovery zeroed the journal
	// area on the durable side too, so put the original bytes back).
	dev.Write(img, 0)
	dev.Flush(0, len(img))
	dev.Fence()
}

// TestEagerInvalidationRetiresEntries pins the commit-time cleanup: after
// a transaction commits, no valid entries for it remain in the log.
func TestEagerInvalidationRetiresEntries(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 128 * 4096
	dev.WriteNT(make([]byte, 64), addr)

	tx := j.Begin()
	tx.LogRange(addr, 40)
	tx.LogBitmap(addr+64, 0xff)
	tx.Commit()
	if res := j.Residue(); len(res) != 0 {
		t.Fatalf("committed tx left residue: %v", res)
	}
	// An open transaction's entries are not residue.
	open := j.Begin()
	open.LogRange(addr, 8)
	if res := j.Residue(); len(res) != 0 {
		t.Fatalf("open tx reported as residue: %v", res)
	}
	open.Commit()
}

// TestRecoverIdempotent is the recovery idempotency contract: recovering,
// crashing again with no new activity, and recovering again must roll
// back zero transactions the second time.
func TestRecoverIdempotent(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 128 * 4096
	dev.WriteNT([]byte("original"), addr)

	tx := j.Begin()
	tx.LogRange(addr, 8)
	dev.WriteNT([]byte("modified"), addr)
	dev.Crash()

	rolled, err := Recover(dev, areaBase, areaSize)
	if err != nil || rolled != 1 {
		t.Fatalf("first recover: %d, %v", rolled, err)
	}
	// Power loss immediately after recovery, before any new activity.
	dev.Crash()
	rolled, err = Recover(dev, areaBase, areaSize)
	if err != nil {
		t.Fatal(err)
	}
	if rolled != 0 {
		t.Fatalf("second recover rolled back %d txs, want 0", rolled)
	}
	got := make([]byte, 8)
	dev.Read(got, addr)
	if string(got) != "original" {
		t.Fatalf("state drifted across idempotent recovery: %q", got)
	}
}
