package journal

import (
	"testing"

	"hinfs/internal/nvmm"
)

// TestTxAllocBudget pins the journal hot path's allocation budget: one
// Begin/LogRange/LogBitmap/Commit cycle heap-allocates at most once —
// the Tx itself, which is deliberately not pooled (deferred commits and
// After chains hold *Tx pointers for unbounded time, so reuse would
// alias a live chain). The undo slot list rides in the Tx's inline
// array and log-area zeroing uses the shared zero block, both of which
// this test guards against regression.
func TestTxAllocBudget(t *testing.T) {
	dev, err := nvmm.New(nvmm.Config{Size: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const (
		base = 4096
		size = 2 << 20
		addr = 6 << 20 // data range well clear of the journal area
	)
	j, err := New(dev, base, size)
	if err != nil {
		t.Fatal(err)
	}
	dev.WriteNT(make([]byte, 64), addr)

	n := testing.AllocsPerRun(400, func() {
		tx := j.Begin()
		tx.LogRange(addr, 40)
		tx.LogBitmap(addr+64, 0xff)
		tx.Commit()
	})
	if n > 1 {
		t.Fatalf("journal tx cycle allocates %.1f objects/op, want <= 1 (the Tx)", n)
	}
}
