package journal

import (
	"bytes"
	"sync"
	"testing"

	"hinfs/internal/nvmm"
)

const (
	areaBase = 4096
	areaSize = 16 * 4096
)

func testDev(t *testing.T) *nvmm.Device {
	t.Helper()
	d, err := nvmm.New(nvmm.Config{Size: 4 << 20, TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newJournal(t *testing.T, dev *nvmm.Device) *Journal {
	t.Helper()
	j, err := New(dev, areaBase, areaSize)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestCommitKeepsChanges(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 128 * 4096
	dev.WriteNT([]byte("original"), addr)

	tx := j.Begin()
	tx.LogRange(addr, 8)
	dev.WriteNT([]byte("modified"), addr)
	tx.Commit()

	if _, err := Recover(dev, areaBase, areaSize); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	dev.Read(got, addr)
	if string(got) != "modified" {
		t.Fatalf("committed change rolled back: %q", got)
	}
}

func TestUncommittedRollsBack(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 128 * 4096
	dev.WriteNT([]byte("original"), addr)

	tx := j.Begin()
	tx.LogRange(addr, 8)
	dev.WriteNT([]byte("modified"), addr)
	// no commit
	rolled, err := Recover(dev, areaBase, areaSize)
	if err != nil {
		t.Fatal(err)
	}
	if rolled != 1 {
		t.Fatalf("rolled back %d txs, want 1", rolled)
	}
	got := make([]byte, 8)
	dev.Read(got, addr)
	if string(got) != "original" {
		t.Fatalf("uncommitted change kept: %q", got)
	}
}

func TestLargeRangeSpansEntries(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 200 * 4096
	old := bytes.Repeat([]byte("ab"), 100) // 200 bytes > MaxUndoBytes
	dev.WriteNT(old, addr)

	tx := j.Begin()
	tx.LogRange(addr, len(old))
	dev.WriteNT(bytes.Repeat([]byte("zz"), 100), addr)
	rolled, err := Recover(dev, areaBase, areaSize)
	if err != nil || rolled != 1 {
		t.Fatalf("recover: %d, %v", rolled, err)
	}
	got := make([]byte, len(old))
	dev.Read(got, addr)
	if !bytes.Equal(got, old) {
		t.Fatal("multi-entry undo failed")
	}
	_ = tx
}

func TestCrashMidTransactionTornEntryIgnored(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 300 * 4096
	dev.WriteNT([]byte("original"), addr)

	tx := j.Begin()
	tx.LogRange(addr, 8)
	dev.WriteNT([]byte("modified"), addr)
	// Simulate a torn second entry: write body without valid flag by
	// crashing immediately — all flushed entries have valid set, so
	// recovery sees a complete undo entry and rolls back.
	dev.Crash()
	rolled, err := Recover(dev, areaBase, areaSize)
	if err != nil {
		t.Fatal(err)
	}
	if rolled != 1 {
		t.Fatalf("rolled %d, want 1", rolled)
	}
	got := make([]byte, 8)
	dev.Read(got, addr)
	if string(got) != "original" {
		t.Fatalf("got %q", got)
	}
}

func TestDeferredCommitOrdering(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	tx := j.Begin()
	tx.AddPending(2)
	tx.Seal()
	if tx.Committed() {
		t.Fatal("committed before blocks persisted")
	}
	tx.BlockPersisted()
	if tx.Committed() {
		t.Fatal("committed after 1 of 2 blocks")
	}
	tx.BlockPersisted()
	if !tx.Committed() {
		t.Fatal("not committed after all blocks persisted")
	}
}

func TestSealAfterAllPersisted(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	tx := j.Begin()
	tx.AddPending(1)
	tx.BlockPersisted()
	if tx.Committed() {
		t.Fatal("committed before seal")
	}
	tx.Seal()
	if !tx.Committed() {
		t.Fatal("seal did not commit drained tx")
	}
}

func TestCheckpointWrapsWhenFull(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 400 * 4096
	dev.WriteNT(make([]byte, 4096), addr)
	// Each LogRange(8) uses one entry + one commit entry; fill the area
	// several times over.
	slots := int(areaSize / EntrySize)
	for i := 0; i < slots*3; i++ {
		tx := j.Begin()
		tx.LogRange(addr, 8)
		tx.Commit()
	}
	if j.Stats().Checkpoints == 0 {
		t.Fatal("journal never checkpointed")
	}
}

func TestConcurrentTransactions(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			addr := int64(500+w) * 4096
			dev.WriteNT(make([]byte, 64), addr)
			for i := 0; i < 10; i++ {
				tx := j.Begin()
				tx.LogRange(addr, 48)
				dev.WriteNT(bytes.Repeat([]byte{byte(i)}, 48), addr)
				tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	if got := j.Stats().Commits; got != 80 {
		t.Fatalf("commits = %d, want 80", got)
	}
}

func TestRecoverRejectsBadArea(t *testing.T) {
	dev := testDev(t)
	if _, err := Recover(dev, 0, 100); err == nil {
		t.Fatal("bad area size accepted")
	}
	if _, err := New(dev, 0, 100); err == nil {
		t.Fatal("New accepted bad area size")
	}
}

func TestHalfRotationWithDeferredCommits(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 600 * 4096
	dev.WriteNT(make([]byte, 4096), addr)
	// Keep one deferred transaction open, then push enough committed
	// transactions through to force half rotations around it.
	open := j.Begin()
	open.LogRange(addr, 8)
	open.AddPending(1)
	open.Seal()
	// Each tx consumes two slots (reserved commit + one undo entry), so
	// this crosses one half boundary without filling the whole area (the
	// open tx pins its own half).
	half := int(areaSize / EntrySize / 2)
	for i := 0; i < half*3/5; i++ {
		tx := j.Begin()
		tx.LogRange(addr+64, 8)
		tx.Commit()
	}
	if j.Stats().Checkpoints == 0 {
		t.Fatal("no half rotation despite pressure")
	}
	// The open transaction still commits correctly afterwards.
	open.BlockPersisted()
	if !open.Committed() {
		t.Fatal("deferred tx lost through rotation")
	}
}

func TestPressureCallbackDrainsStall(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 700 * 4096
	dev.WriteNT(make([]byte, 4096), addr)
	// Fill both halves with entries from one open tx per half... simpler:
	// hold open transactions in both halves via interleaving, and rely on
	// the pressure callback to release them. The callback also fires from
	// the journal's early-nudge goroutine, so held needs a lock.
	var (
		mu   sync.Mutex
		held []*Tx
	)
	release := func() {
		mu.Lock()
		txs := held
		held = nil
		mu.Unlock()
		for _, tx := range txs {
			tx.BlockPersisted()
		}
	}
	j.SetPressure(release)
	// Open deferred transactions faster than they commit; the journal
	// must invoke the pressure callback rather than deadlock.
	slots := int(areaSize / EntrySize)
	for i := 0; i < slots*2; i++ {
		tx := j.Begin()
		tx.LogRange(addr, 8)
		tx.AddPending(1)
		tx.Seal()
		mu.Lock()
		held = append(held, tx)
		n := len(held)
		mu.Unlock()
		if n > 64 {
			// In HiNFS the background writeback drains these; here the
			// pressure callback does when the journal stalls.
			if j.Stats().Stalls > 0 {
				break
			}
		}
	}
	release()
	if j.Stats().Checkpoints == 0 {
		t.Fatal("journal never rotated under sustained deferred load")
	}
}

func TestLogRangeOnCommittedPanics(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	tx := j.Begin()
	tx.Commit()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on LogRange after commit")
		}
	}()
	tx.LogRange(0, 8)
}
