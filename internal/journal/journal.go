// Package journal implements PMFS-style metadata undo logging on an NVMM
// device region (paper §4.1).
//
// Each log entry is exactly one cacheline (64 B). An entry carries up to 48
// bytes of the *old* contents of a metadata range (undo image) or marks a
// transaction commit. The last byte of every entry is a valid flag written
// after the rest of the entry; because stores within one cacheline are
// never reordered by the cache hierarchy, a set valid flag guarantees the
// entry is complete. Recovery rolls back every transaction that has logged
// entries but no commit entry.
//
// HiNFS's ordered-mode coupling (data blocks must be durable before the
// commit record of the transaction that made them visible) is supported by
// deferred commits: a transaction may be left open with pending block
// references and committed later by whichever path persists its last data
// block (fsync or the background writeback threads). Because deferred
// transactions stay open for seconds, the log area is managed as two
// ping-pong halves: entries fill one half while the other drains; a half
// is zeroed and reused once no open transaction has entries in it. Every
// transaction reserves its commit slot at Begin, so writing a commit
// record never blocks — only new undo logging can stall on a full log,
// and the registered pressure callback (HiNFS wires it to the write
// buffer's flusher) accelerates draining.
package journal

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/cacheline"
	"hinfs/internal/nvmm"
)

// EntrySize is the size of one log entry: a single cacheline.
const EntrySize = cacheline.Size

// MaxUndoBytes is the undo payload capacity of one entry.
const MaxUndoBytes = 48

// Entry kinds.
const (
	kindUndo   = 1
	kindCommit = 2
)

// Entry layout within the 64-byte cacheline:
//
//	[0:4)   txid (uint32)
//	[4:12)  addr (uint64 device offset of the undone range)
//	[12]    length of undo data (<= 48)
//	[13]    kind
//	[14:62) undo data (48 bytes)
//	[62]    reserved
//	[63]    valid flag, written last
const (
	offTxid  = 0
	offAddr  = 4
	offLen   = 12
	offKind  = 13
	offData  = 14
	offValid = 63
)

// half is one ping-pong region of the log area.
type half struct {
	base  int64 // device offset
	count int   // entry capacity
	next  int   // next free slot
	live  int   // open transactions with entries here
}

// Journal manages the log area on the device.
type Journal struct {
	dev *nvmm.Device

	base int64
	size int64

	mu     sync.Mutex
	halves [2]half
	cur    int
	nextID int64

	// pressure, if set, is invoked (without the journal lock) when the
	// log is under space pressure, to accelerate deferred-commit draining.
	pressure atomic.Value // func()

	entriesLogged atomic.Int64
	commits       atomic.Int64
	checkpoints   atomic.Int64
	stalls        atomic.Int64
}

// Tx is an open transaction. A Tx is created by Begin, fills undo entries
// via LogRange, and finishes with Commit or with deferred commit via
// AddPending/Seal/BlockPersisted.
type Tx struct {
	j          *Journal
	id         uint32
	commitSlot int64   // device address reserved at Begin
	touched    [2]bool // halves containing this tx's entries
	hasEntries bool

	pending   atomic.Int32 // blocks that must persist before commit
	sealed    atomic.Bool  // no more pending blocks will be added
	committed atomic.Bool
}

// New creates a journal over [base, base+size) of dev. The caller must
// have zeroed the area on mkfs; use Recover on an existing image.
func New(dev *nvmm.Device, base, size int64) (*Journal, error) {
	if size < 2*cacheline.BlockSize || size%(2*cacheline.BlockSize) != 0 {
		return nil, fmt.Errorf("journal: area size %d must be a positive multiple of two blocks", size)
	}
	j := &Journal{dev: dev, base: base, size: size, nextID: 1}
	hs := size / 2
	j.halves[0] = half{base: base, count: int(hs / EntrySize)}
	j.halves[1] = half{base: base + hs, count: int(hs / EntrySize)}
	return j, nil
}

// SetPressure registers a callback invoked when the log is under space
// pressure. The callback must not call back into the journal's Begin or
// LogRange (committing via BlockPersisted is fine and is the point).
func (j *Journal) SetPressure(fn func()) {
	j.pressure.Store(fn)
}

func (j *Journal) callPressure() {
	if fn, ok := j.pressure.Load().(func()); ok && fn != nil {
		fn()
	}
}

// Begin opens a transaction and reserves its commit slot.
func (j *Journal) Begin() *Tx {
	j.mu.Lock()
	t := &Tx{j: j}
	t.id = uint32(j.nextID)
	j.nextID++
	t.commitSlot = j.allocSlotLocked(t)
	j.mu.Unlock()
	return t
}

// allocSlotLocked reserves one entry slot for t in the current half,
// rotating halves when full. Called with j.mu held; may drop and reacquire
// it while waiting for the other half to drain.
func (j *Journal) allocSlotLocked(t *Tx) int64 {
	for {
		h := &j.halves[j.cur]
		if h.next < h.count {
			s := h.next
			h.next++
			if !t.touched[j.cur] {
				t.touched[j.cur] = true
				h.live++
			}
			// Nudge the drainers early when a half passes 3/4 full.
			if h.next == h.count*3/4 {
				go j.callPressure()
			}
			return h.base + int64(s)*EntrySize
		}
		// Current half is full: rotate once the other half has no live
		// transactions.
		other := &j.halves[1-j.cur]
		if other.live == 0 {
			j.zeroHalfLocked(other)
			other.next = 0
			j.cur = 1 - j.cur
			j.checkpoints.Add(1)
			continue
		}
		j.stalls.Add(1)
		j.mu.Unlock()
		j.callPressure()
		time.Sleep(50 * time.Microsecond)
		j.mu.Lock()
	}
}

func (j *Journal) zeroHalfLocked(h *half) {
	zero := make([]byte, cacheline.BlockSize)
	hs := int64(h.count) * EntrySize
	for off := int64(0); off < hs; off += cacheline.BlockSize {
		j.dev.Write(zero, h.base+off)
	}
	j.dev.Flush(h.base, int(hs))
	j.dev.Fence()
}

// writeEntry persists one entry. The entry is one cacheline and stores
// within a cacheline are never reordered by the caching hierarchy (§4.1),
// so writing the body first, the valid byte last, and issuing a single
// flush+fence guarantees a torn entry is never seen as valid.
func (j *Journal) writeEntry(addr int64, e [EntrySize]byte) {
	body := e
	body[offValid] = 0
	j.dev.Write(body[:], addr)
	j.dev.Write([]byte{1}, addr+offValid)
	j.dev.Flush(addr, EntrySize)
	j.dev.Fence()
	j.entriesLogged.Add(1)
}

// LogRange records the current contents of [addr, addr+n) on the device as
// undo data. It must be called before the range is modified.
func (t *Tx) LogRange(addr int64, n int) {
	if t.committed.Load() {
		panic("journal: LogRange on committed transaction")
	}
	for n > 0 {
		chunk := n
		if chunk > MaxUndoBytes {
			chunk = MaxUndoBytes
		}
		var e [EntrySize]byte
		binary.LittleEndian.PutUint32(e[offTxid:], t.id)
		binary.LittleEndian.PutUint64(e[offAddr:], uint64(addr))
		e[offLen] = byte(chunk)
		e[offKind] = kindUndo
		t.j.dev.Read(e[offData:offData+chunk], addr)
		t.j.mu.Lock()
		slot := t.j.allocSlotLocked(t)
		t.j.mu.Unlock()
		t.j.writeEntry(slot, e)
		t.hasEntries = true
		addr += int64(chunk)
		n -= chunk
	}
}

// Commit writes the commit record immediately. Use Seal/AddPending for
// ordered-mode deferred commits instead.
func (t *Tx) Commit() {
	t.finishCommit()
}

// AddPending registers n data blocks whose persistence must precede this
// transaction's commit record (HiNFS ordered mode, §4.1).
func (t *Tx) AddPending(n int) {
	t.pending.Add(int32(n))
}

// Seal declares that no further pending blocks will be added. If all
// pending blocks have already persisted, the commit record is written now;
// otherwise the final BlockPersisted call writes it.
func (t *Tx) Seal() {
	t.sealed.Store(true)
	if t.pending.Load() == 0 {
		t.finishCommit()
	}
}

// BlockPersisted tells the transaction one of its pending data blocks is
// now durable. When the last pending block of a sealed transaction
// persists, the commit record is written.
func (t *Tx) BlockPersisted() {
	if t.pending.Add(-1) == 0 && t.sealed.Load() {
		t.finishCommit()
	}
}

// Committed reports whether the commit record has been written.
func (t *Tx) Committed() bool { return t.committed.Load() }

func (t *Tx) finishCommit() {
	if t.committed.Swap(true) {
		return
	}
	var e [EntrySize]byte
	binary.LittleEndian.PutUint32(e[offTxid:], t.id)
	e[offKind] = kindCommit
	t.j.writeEntry(t.commitSlot, e)
	t.j.commits.Add(1)
	t.j.mu.Lock()
	for i := range t.touched {
		if t.touched[i] {
			t.j.halves[i].live--
		}
	}
	t.j.mu.Unlock()
}

// Stats reports journal activity counters.
type Stats struct {
	EntriesLogged int64
	Commits       int64
	// Checkpoints counts half rotations (log reuse).
	Checkpoints int64
	// Stalls counts waits for the opposite half to drain.
	Stalls int64
}

// Stats returns a snapshot of journal counters.
func (j *Journal) Stats() Stats {
	return Stats{
		EntriesLogged: j.entriesLogged.Load(),
		Commits:       j.commits.Load(),
		Checkpoints:   j.checkpoints.Load(),
		Stalls:        j.stalls.Load(),
	}
}

// Recover scans the journal area, rolls back every transaction without a
// commit record (applying undo entries in reverse log order), and resets
// the area. It returns the number of transactions rolled back.
func Recover(dev *nvmm.Device, base, size int64) (rolledBack int, err error) {
	if size < 2*cacheline.BlockSize || size%(2*cacheline.BlockSize) != 0 {
		return 0, fmt.Errorf("journal: bad area size %d", size)
	}
	count := int(size / EntrySize)
	type undo struct {
		addr int64
		data []byte
	}
	undos := make(map[uint32][]undo)
	committed := make(map[uint32]bool)
	var e [EntrySize]byte
	for s := 0; s < count; s++ {
		dev.Read(e[:], base+int64(s)*EntrySize)
		if e[offValid] != 1 {
			continue
		}
		txid := binary.LittleEndian.Uint32(e[offTxid:])
		switch e[offKind] {
		case kindCommit:
			committed[txid] = true
		case kindUndo:
			n := int(e[offLen])
			if n > MaxUndoBytes {
				return 0, fmt.Errorf("journal: corrupt entry %d: undo length %d", s, n)
			}
			data := make([]byte, n)
			copy(data, e[offData:offData+n])
			addr := int64(binary.LittleEndian.Uint64(e[offAddr:]))
			undos[txid] = append(undos[txid], undo{addr: addr, data: data})
		}
	}
	for txid, list := range undos {
		if committed[txid] {
			continue
		}
		for i := len(list) - 1; i >= 0; i-- {
			u := list[i]
			dev.Write(u.data, u.addr)
			dev.Flush(u.addr, len(u.data))
		}
		dev.Fence()
		rolledBack++
	}
	// Reset the area.
	zero := make([]byte, cacheline.BlockSize)
	for off := int64(0); off < size; off += cacheline.BlockSize {
		dev.Write(zero, base+off)
	}
	dev.Flush(base, int(size))
	dev.Fence()
	return rolledBack, nil
}
