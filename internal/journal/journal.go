// Package journal implements PMFS-style metadata undo logging on an NVMM
// device region (paper §4.1).
//
// Each log entry is exactly one cacheline (64 B). An entry carries up to 40
// bytes of the *old* contents of a metadata range (undo image), an 8-byte
// XOR mask for one allocation-bitmap word, or marks a transaction commit.
// The last byte of every entry is a valid flag written after the rest of
// the entry; because stores within one cacheline are never reordered by the
// cache hierarchy, a set valid flag guarantees the entry is complete.
// Recovery rolls back every transaction that has logged entries but no
// commit entry, applying physical undo images in reverse global sequence
// order (each entry carries a monotonic sequence number) and bitmap masks
// by XOR, which is order-independent — so interleaved transactions on
// overlapping metadata unwind correctly.
//
// The log area is divided into independent *lanes* (NOVA-style per-CPU
// journals): each lane has its own mutex, its own ping-pong halves and its
// own entry allocation, so concurrent transactions on different lanes never
// contend for slot space. A transaction is assigned a lane at Begin
// (round-robin) and logs every entry there. Correctness across lanes hangs
// on two global atomics: the transaction id (unique across lanes, so a
// commit record is unambiguous) and the entry sequence number (stamped into
// every entry, so Recover can merge all lanes and roll back in reverse
// global order no matter where entries landed).
//
// HiNFS's ordered-mode coupling (data blocks must be durable before the
// commit record of the transaction that made them visible) is supported by
// deferred commits: a transaction may be left open with pending block
// references and committed later by whichever path persists its last data
// block (fsync or the background writeback threads). Deferred commits can
// finish out of begin order; when two transactions touch the same inode's
// metadata that would make rollback unsound, so Tx.After chains a
// transaction's commit record behind its predecessor's. Once a commit
// record is durable the transaction's entries are stale; they are
// invalidated eagerly (entries first, then the commit record, fenced in
// that order) so that outside a crash window the log contains entries only
// for open transactions — an invariant pmfs.Check verifies via Residue.
//
// Because deferred transactions stay open for seconds, each lane is managed
// as two ping-pong halves: entries fill one half while the other drains; a
// half is zeroed and reused once no open transaction has entries in it.
// Every transaction reserves its commit slot at Begin, so writing a commit
// record never blocks — only new undo logging can stall on a full lane, and
// the registered pressure callback (HiNFS wires it to the write buffer's
// flusher) accelerates draining.
package journal

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/cacheline"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
)

// EntrySize is the size of one log entry: a single cacheline.
const EntrySize = cacheline.Size

// MaxUndoBytes is the undo payload capacity of one entry.
const MaxUndoBytes = 40

// DefaultLanes is the default lane count. Eight lanes keep contention low
// at the thread counts the harness sweeps while leaving each lane's halves
// large enough that deferred commits rarely pin a rotation.
const DefaultLanes = 8

// Entry kinds.
const (
	kindUndo   = 1
	kindCommit = 2
	kindBitmap = 3
)

// Entry layout within the 64-byte cacheline:
//
//	[0:4)   txid (uint32)
//	[4:12)  addr (uint64 device offset of the undone range / bitmap word)
//	[12]    length of undo data (<= 40; always 8 for bitmap entries)
//	[13]    kind
//	[14:54) undo data (40 bytes; bitmap entries hold the XOR mask in [14:22))
//	[54:62) global sequence number (uint64), orders rollback
//	[62]    reserved
//	[63]    valid flag, written last
const (
	offTxid  = 0
	offAddr  = 4
	offLen   = 12
	offKind  = 13
	offData  = 14
	offSeq   = 54
	offValid = 63
)

// half is one ping-pong region of a lane.
type half struct {
	base  int64 // device offset
	count int   // entry capacity
	next  int   // next free slot
	live  int   // open transactions with entries here
}

// lane is one independent slice of the log area with its own lock, its own
// ping-pong halves and its own set of open transactions.
type lane struct {
	mu     sync.Mutex
	halves [2]half
	cur    int
	open   map[uint32]struct{} // txids begun on this lane, not yet retired
}

// Journal manages the log area on the device.
type Journal struct {
	dev *nvmm.Device

	base int64
	size int64

	lanes    []*lane
	nextLane atomic.Uint64 // round-robin lane assignment
	nextID   atomic.Uint32 // global txid allocation

	// depMu guards the commit-chaining state (Tx.waiting/ready/recorded/
	// waiters). Never held during device I/O.
	depMu sync.Mutex

	seq atomic.Uint64 // global entry sequence, stamps rollback order

	// pressure, if set, is invoked (without any lane lock) when the log is
	// under space pressure, to accelerate deferred-commit draining.
	pressure atomic.Value // func()

	// col, if set, receives lane-contention counter increments.
	col atomic.Pointer[obs.Collector]

	entriesLogged atomic.Int64
	commits       atomic.Int64
	checkpoints   atomic.Int64
	stalls        atomic.Int64
	laneContended atomic.Int64
}

// Tx is an open transaction. A Tx is created by Begin, fills undo entries
// via LogRange/LogBitmap, and finishes with Commit or with deferred commit
// via AddPending/Seal/BlockPersisted. After chains the commit record behind
// another transaction's.
type Tx struct {
	j          *Journal
	ln         *lane
	id         uint32
	commitSlot int64   // device address reserved at Begin
	touched    [2]bool // lane halves containing this tx's entries
	hasEntries bool
	slots      []int64 // addresses of this tx's undo entries (for invalidation)
	// slotsArr backs slots inline: a typical metadata transaction logs a
	// handful of entries, so the common case never heap-allocates the
	// slot list. (The Tx itself is the one remaining allocation on the
	// journal hot path — it is not pooled, deliberately: deferred commits
	// and After-chains hold *Tx pointers for unbounded time, so reuse
	// would alias a live chain.)
	slotsArr [8]int64

	pending   atomic.Int32 // blocks that must persist before commit
	sealed    atomic.Bool  // no more pending blocks will be added
	committed atomic.Bool  // commit requested (record may trail behind deps)

	// Commit-chaining state, guarded by j.depMu.
	waiting  int   // predecessors whose records are not yet written
	ready    bool  // commit requested while predecessors were outstanding
	recorded bool  // commit record written and entries invalidated
	waiters  []*Tx // transactions chained behind this one
}

// New creates a journal over [base, base+size) of dev with DefaultLanes
// lanes. The caller must have zeroed the area on mkfs; use Recover on an
// existing image.
func New(dev *nvmm.Device, base, size int64) (*Journal, error) {
	return NewLanes(dev, base, size, 0)
}

// NewLanes is New with an explicit lane count (0 = DefaultLanes). The lane
// count is a DRAM-only concurrency knob: entries are self-describing
// (txid + global sequence), so an image written with one lane count
// recovers correctly under any other. Lanes are clamped so every lane half
// spans at least one block.
func NewLanes(dev *nvmm.Device, base, size int64, lanes int) (*Journal, error) {
	if size < 2*cacheline.BlockSize || size%(2*cacheline.BlockSize) != 0 {
		return nil, fmt.Errorf("journal: area size %d must be a positive multiple of two blocks", size)
	}
	if lanes <= 0 {
		lanes = DefaultLanes
	}
	halfBlocks := size / (2 * cacheline.BlockSize) // total blocks available per half-set
	if int64(lanes) > halfBlocks {
		lanes = int(halfBlocks)
	}
	j := &Journal{dev: dev, base: base, size: size}
	off := base
	for i := 0; i < lanes; i++ {
		hb := halfBlocks / int64(lanes)
		if int64(i) < halfBlocks%int64(lanes) {
			hb++
		}
		halfBytes := hb * cacheline.BlockSize
		ln := &lane{open: make(map[uint32]struct{})}
		ln.halves[0] = half{base: off, count: int(halfBytes / EntrySize)}
		ln.halves[1] = half{base: off + halfBytes, count: int(halfBytes / EntrySize)}
		off += 2 * halfBytes
		j.lanes = append(j.lanes, ln)
	}
	return j, nil
}

// Lanes returns the number of independent journal lanes.
func (j *Journal) Lanes() int { return len(j.lanes) }

// SetPressure registers a callback invoked when the log is under space
// pressure. The callback must not call back into the journal's Begin or
// LogRange (committing via BlockPersisted is fine and is the point).
func (j *Journal) SetPressure(fn func()) {
	j.pressure.Store(fn)
}

// SetObs attaches a collector receiving lane-contention counters, or
// detaches with nil.
func (j *Journal) SetObs(c *obs.Collector) { j.col.Store(c) }

func (j *Journal) callPressure() {
	if fn, ok := j.pressure.Load().(func()); ok && fn != nil {
		fn()
	}
}

// lock acquires ln's mutex, counting contended acquisitions and charging
// the contended wait to the attached op's lock stage. The uncontended
// fast path pays nothing beyond the TryLock.
func (j *Journal) lock(ln *lane) {
	if ln.mu.TryLock() {
		return
	}
	j.laneContended.Add(1)
	j.col.Load().Add(obs.CtrJournalLaneContended, 1)
	op := obs.CurrentOp()
	var start time.Time
	if op != nil {
		start = time.Now()
	}
	ln.mu.Lock()
	if op != nil {
		op.Charge(obs.StageLock, time.Since(start).Nanoseconds())
	}
}

// Begin opens a transaction on a round-robin-assigned lane and reserves its
// commit slot there.
func (j *Journal) Begin() *Tx {
	ln := j.lanes[j.nextLane.Add(1)%uint64(len(j.lanes))]
	t := &Tx{j: j, ln: ln, id: j.nextID.Add(1)}
	t.slots = t.slotsArr[:0]
	j.lock(ln)
	ln.open[t.id] = struct{}{}
	t.commitSlot = j.allocSlotLocked(ln, t)
	ln.mu.Unlock()
	return t
}

// allocSlotLocked reserves one entry slot for t in ln's current half,
// rotating halves when full. Called with ln.mu held; may drop and reacquire
// it while waiting for the other half to drain.
func (j *Journal) allocSlotLocked(ln *lane, t *Tx) int64 {
	for {
		h := &ln.halves[ln.cur]
		if h.next < h.count {
			s := h.next
			h.next++
			if !t.touched[ln.cur] {
				t.touched[ln.cur] = true
				h.live++
			}
			// Nudge the drainers early when a half passes 3/4 full.
			if h.next == h.count*3/4 {
				go j.callPressure()
			}
			return h.base + int64(s)*EntrySize
		}
		// Current half is full: rotate once the other half has no live
		// transactions.
		other := &ln.halves[1-ln.cur]
		if other.live == 0 {
			j.zeroHalfLocked(other)
			other.next = 0
			ln.cur = 1 - ln.cur
			j.checkpoints.Add(1)
			continue
		}
		j.stalls.Add(1)
		ln.mu.Unlock()
		j.callPressure()
		time.Sleep(50 * time.Microsecond)
		j.lock(ln)
	}
}

// zeroBlock is the shared all-zero source for log-area resets; it is
// only ever read, so sharing it across lanes and with Recover is safe.
var zeroBlock [cacheline.BlockSize]byte

func (j *Journal) zeroHalfLocked(h *half) {
	hs := int64(h.count) * EntrySize
	for off := int64(0); off < hs; off += cacheline.BlockSize {
		j.dev.Write(zeroBlock[:], h.base+off)
	}
	j.dev.Flush(h.base, int(hs))
	j.dev.Fence()
}

// writeEntry persists one entry, stamping its global sequence number. The
// entry is one cacheline and stores within a cacheline are never reordered
// by the caching hierarchy (§4.1), so writing the body first, the valid
// byte last, and issuing a single flush+fence guarantees a torn entry is
// never seen as valid.
func (j *Journal) writeEntry(addr int64, e [EntrySize]byte) {
	body := e
	binary.LittleEndian.PutUint64(body[offSeq:], j.seq.Add(1))
	body[offValid] = 0
	j.dev.Write(body[:], addr)
	j.dev.Write([]byte{1}, addr+offValid)
	j.dev.Flush(addr, EntrySize)
	j.dev.Fence()
	j.entriesLogged.Add(1)
}

// logEntry allocates a slot for t on its lane and writes e into it. The
// device write happens outside the lane lock: the slot is exclusively
// reserved, so only the slot cursor needs mutual exclusion.
func (t *Tx) logEntry(e [EntrySize]byte) {
	t.j.lock(t.ln)
	slot := t.j.allocSlotLocked(t.ln, t)
	t.ln.mu.Unlock()
	t.j.writeEntry(slot, e)
	t.slots = append(t.slots, slot)
	t.hasEntries = true
}

// LogRange records the current contents of [addr, addr+n) on the device as
// undo data. It must be called before the range is modified.
func (t *Tx) LogRange(addr int64, n int) {
	if t.committed.Load() {
		panic("journal: LogRange on committed transaction")
	}
	for n > 0 {
		chunk := n
		if chunk > MaxUndoBytes {
			chunk = MaxUndoBytes
		}
		var e [EntrySize]byte
		binary.LittleEndian.PutUint32(e[offTxid:], t.id)
		binary.LittleEndian.PutUint64(e[offAddr:], uint64(addr))
		e[offLen] = byte(chunk)
		e[offKind] = kindUndo
		t.j.dev.Read(e[offData:offData+chunk], addr)
		t.logEntry(e)
		addr += int64(chunk)
		n -= chunk
	}
}

// LogBitmap records a logical undo for one 8-byte allocation-bitmap word:
// mask is the XOR the transaction is about to apply to the word at addr.
// Rollback re-applies the XOR, which is its own inverse and commutes with
// other transactions' bitmap undos — so bitmap words, which many
// transactions legitimately share, unwind correctly regardless of commit
// interleaving. It must be called before the word is modified.
func (t *Tx) LogBitmap(addr int64, mask uint64) {
	if t.committed.Load() {
		panic("journal: LogBitmap on committed transaction")
	}
	var e [EntrySize]byte
	binary.LittleEndian.PutUint32(e[offTxid:], t.id)
	binary.LittleEndian.PutUint64(e[offAddr:], uint64(addr))
	e[offLen] = 8
	e[offKind] = kindBitmap
	binary.LittleEndian.PutUint64(e[offData:], mask)
	t.logEntry(e)
}

// After chains t's commit record behind prev's: even if t's commit is
// requested first, its record is not written until prev's record is
// durable. Transactions touching the same inode's metadata must be chained
// in begin order, or an out-of-order crash could roll an earlier
// uncommitted transaction's undo image over a later committed one's
// update. Chaining works across lanes (the dependency graph is global).
// Must be called before t's commit is requested; nil prev is a no-op.
func (t *Tx) After(prev *Tx) {
	if prev == nil || prev == t {
		return
	}
	j := t.j
	j.depMu.Lock()
	if !prev.recorded {
		prev.waiters = append(prev.waiters, t)
		t.waiting++
	}
	j.depMu.Unlock()
}

// Commit writes the commit record immediately. Use Seal/AddPending for
// ordered-mode deferred commits instead.
func (t *Tx) Commit() {
	t.finishCommit()
}

// AddPending registers n data blocks whose persistence must precede this
// transaction's commit record (HiNFS ordered mode, §4.1).
func (t *Tx) AddPending(n int) {
	t.pending.Add(int32(n))
}

// Seal declares that no further pending blocks will be added. If all
// pending blocks have already persisted, the commit record is written now;
// otherwise the final BlockPersisted call writes it.
func (t *Tx) Seal() {
	t.sealed.Store(true)
	if t.pending.Load() == 0 {
		t.finishCommit()
	}
}

// BlockPersisted tells the transaction one of its pending data blocks is
// now durable. When the last pending block of a sealed transaction
// persists, the commit record is written.
func (t *Tx) BlockPersisted() {
	if t.pending.Add(-1) == 0 && t.sealed.Load() {
		t.finishCommit()
	}
}

// Committed reports whether commit has been requested (the record itself
// may still be waiting on chained predecessors, see After).
func (t *Tx) Committed() bool { return t.committed.Load() }

// finishCommit requests the commit. If chained predecessors have not
// written their records yet the transaction is marked ready and the last
// predecessor's record-writer completes it; otherwise the record is
// written here.
func (t *Tx) finishCommit() {
	if t.committed.Swap(true) {
		return
	}
	j := t.j
	j.depMu.Lock()
	if t.waiting > 0 {
		t.ready = true
		j.depMu.Unlock()
		return
	}
	j.depMu.Unlock()
	j.writeRecordChain(t)
}

// writeRecordChain writes t's commit record and then the records of every
// chained transaction that became unblocked and was already
// commit-requested, in dependency order.
func (j *Journal) writeRecordChain(t *Tx) {
	queue := []*Tx{t}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		j.writeRecord(cur)
		j.depMu.Lock()
		cur.recorded = true
		for _, w := range cur.waiters {
			w.waiting--
			if w.waiting == 0 && w.ready {
				queue = append(queue, w)
			}
		}
		cur.waiters = nil
		j.depMu.Unlock()
	}
}

// writeRecord makes cur's commit durable and then eagerly retires its log
// entries. Ordering is crash-critical and relies on flushes completing
// before later stores are issued:
//
//  1. commit record written, flushed, fenced — the transaction is
//     committed; a crash after this never rolls it back;
//  2. every undo/bitmap entry's valid byte cleared and flushed, fence —
//     entries of a committed transaction can no longer resurface;
//  3. the commit record's valid byte cleared, flushed, fenced — only after
//     step 2 is durable, so no crash state shows live undo entries without
//     their commit record.
func (j *Journal) writeRecord(cur *Tx) {
	var e [EntrySize]byte
	binary.LittleEndian.PutUint32(e[offTxid:], cur.id)
	e[offKind] = kindCommit
	j.writeEntry(cur.commitSlot, e)
	j.commits.Add(1)

	for _, slot := range cur.slots {
		j.dev.Write([]byte{0}, slot+offValid)
		j.dev.Flush(slot, EntrySize)
	}
	j.dev.Fence()
	j.dev.Write([]byte{0}, cur.commitSlot+offValid)
	j.dev.Flush(cur.commitSlot, EntrySize)
	j.dev.Fence()

	ln := cur.ln
	j.lock(ln)
	for i := range cur.touched {
		if cur.touched[i] {
			ln.halves[i].live--
		}
	}
	delete(ln.open, cur.id)
	ln.mu.Unlock()
}

// ResidueEntry describes a valid journal entry that does not belong to any
// open transaction — residue that eager invalidation should have retired.
type ResidueEntry struct {
	// Slot is the entry index within the journal area.
	Slot int
	// Lane is the lane whose region holds the slot.
	Lane int
	// TxID is the owning transaction.
	TxID uint32
	// Kind is the entry kind byte (1 undo, 2 commit, 3 bitmap).
	Kind byte
}

// laneOf returns the index of the lane whose region contains addr, or -1
// for addresses outside every lane (the unused tail when the area does not
// divide evenly).
func (j *Journal) laneOf(addr int64) int {
	for i, ln := range j.lanes {
		lo := ln.halves[0].base
		hi := ln.halves[1].base + int64(ln.halves[1].count)*EntrySize
		if addr >= lo && addr < hi {
			return i
		}
	}
	return -1
}

// Residue scans every lane's region and returns each valid entry whose
// transaction is not open on any lane. The caller must guarantee
// quiescence (no transactions begun or committed during the scan);
// pmfs.Check runs it after recovery or sync to verify the log retired
// committed transactions.
func (j *Journal) Residue() []ResidueEntry {
	open := make(map[uint32]struct{})
	for _, ln := range j.lanes {
		ln.mu.Lock()
		for id := range ln.open {
			open[id] = struct{}{}
		}
		ln.mu.Unlock()
	}

	var out []ResidueEntry
	count := int(j.size / EntrySize)
	var e [EntrySize]byte
	for s := 0; s < count; s++ {
		addr := j.base + int64(s)*EntrySize
		j.dev.Read(e[:], addr)
		if e[offValid] != 1 {
			continue
		}
		txid := binary.LittleEndian.Uint32(e[offTxid:])
		if _, ok := open[txid]; ok {
			continue
		}
		out = append(out, ResidueEntry{Slot: s, Lane: j.laneOf(addr), TxID: txid, Kind: e[offKind]})
	}
	return out
}

// Stats reports journal activity counters.
type Stats struct {
	EntriesLogged int64
	Commits       int64
	// Checkpoints counts half rotations (log reuse), summed across lanes.
	Checkpoints int64
	// Stalls counts waits for a lane's opposite half to drain.
	Stalls int64
	// Lanes is the number of independent journal lanes.
	Lanes int
	// LaneContended counts lane-lock acquisitions that found the lock held.
	LaneContended int64
}

// Stats returns a snapshot of journal counters.
func (j *Journal) Stats() Stats {
	return Stats{
		EntriesLogged: j.entriesLogged.Load(),
		Commits:       j.commits.Load(),
		Checkpoints:   j.checkpoints.Load(),
		Stalls:        j.stalls.Load(),
		Lanes:         len(j.lanes),
		LaneContended: j.laneContended.Load(),
	}
}

// Recover scans the whole journal area, rolls back every transaction
// without a commit record, and resets the area. The scan is lane-agnostic
// by construction: every entry carries its txid and a globally unique
// sequence number, so entries from all lanes merge into one rollback
// stream. Physical undo entries are applied in reverse global-sequence
// order across all uncommitted transactions (not merely per transaction or
// per lane), so interleaved writers to overlapping ranges unwind to the
// oldest pre-image; bitmap entries apply their XOR mask, which commutes.
// It returns the number of transactions rolled back.
func Recover(dev *nvmm.Device, base, size int64) (rolledBack int, err error) {
	if size < 2*cacheline.BlockSize || size%(2*cacheline.BlockSize) != 0 {
		return 0, fmt.Errorf("journal: bad area size %d", size)
	}
	count := int(size / EntrySize)
	type undo struct {
		seq  uint64
		txid uint32
		kind byte
		addr int64
		data []byte
	}
	var undos []undo
	committed := make(map[uint32]bool)
	var e [EntrySize]byte
	for s := 0; s < count; s++ {
		dev.Read(e[:], base+int64(s)*EntrySize)
		if e[offValid] != 1 {
			continue
		}
		txid := binary.LittleEndian.Uint32(e[offTxid:])
		switch e[offKind] {
		case kindCommit:
			committed[txid] = true
		case kindUndo, kindBitmap:
			n := int(e[offLen])
			if n > MaxUndoBytes || (e[offKind] == kindBitmap && n != 8) {
				return 0, fmt.Errorf("journal: corrupt entry %d: kind %d length %d", s, e[offKind], n)
			}
			data := make([]byte, n)
			copy(data, e[offData:offData+n])
			undos = append(undos, undo{
				seq:  binary.LittleEndian.Uint64(e[offSeq:]),
				txid: txid,
				kind: e[offKind],
				addr: int64(binary.LittleEndian.Uint64(e[offAddr:])),
				data: data,
			})
		}
	}
	// Newest first: later modifications must be undone before earlier
	// ones so overlapping ranges land on the oldest pre-image.
	rolled := make(map[uint32]bool)
	sort.Slice(undos, func(a, b int) bool { return undos[a].seq > undos[b].seq })
	for _, u := range undos {
		if committed[u.txid] {
			continue
		}
		if u.kind == kindBitmap {
			var w [8]byte
			dev.Read(w[:], u.addr)
			v := binary.LittleEndian.Uint64(w[:]) ^ binary.LittleEndian.Uint64(u.data)
			binary.LittleEndian.PutUint64(w[:], v)
			dev.Write(w[:], u.addr)
			dev.Flush(u.addr, 8)
		} else {
			dev.Write(u.data, u.addr)
			dev.Flush(u.addr, len(u.data))
		}
		rolled[u.txid] = true
	}
	if len(rolled) > 0 {
		dev.Fence()
	}
	rolledBack = len(rolled)
	// Reset the area.
	for off := int64(0); off < size; off += cacheline.BlockSize {
		dev.Write(zeroBlock[:], base+off)
	}
	dev.Flush(base, int(size))
	dev.Fence()
	return rolledBack, nil
}
