package journal

import (
	"testing"

	"hinfs/internal/cacheline"
)

// TestNewLanesGeometry: the lanes must partition the log area exactly —
// contiguous, non-overlapping, every byte owned by one half — for any lane
// count, including ones that do not divide the area evenly.
func TestNewLanesGeometry(t *testing.T) {
	dev := testDev(t)
	cases := []struct {
		blocks    int64 // area size in blocks
		lanes     int
		wantLanes int
	}{
		{2, 0, 1},   // minimum area: one lane, one block per half
		{2, 8, 1},   // clamp: only one half-block available
		{16, 0, 8},  // default lane count, even split
		{16, 8, 8},  // explicit, even split
		{16, 3, 3},  // uneven: 8 half-blocks over 3 lanes = 3,3,2
		{16, 5, 5},  // uneven: 8 half-blocks over 5 lanes = 2,2,2,1,1
		{16, 16, 8}, // clamp to half-blocks
		{64, 8, 8},
	}
	for _, c := range cases {
		size := c.blocks * cacheline.BlockSize
		j, err := NewLanes(dev, areaBase, size, c.lanes)
		if err != nil {
			t.Fatalf("NewLanes(%d blocks, %d lanes): %v", c.blocks, c.lanes, err)
		}
		if got := j.Lanes(); got != c.wantLanes {
			t.Fatalf("NewLanes(%d blocks, %d lanes) = %d lanes, want %d",
				c.blocks, c.lanes, got, c.wantLanes)
		}
		off := int64(areaBase)
		for i, ln := range j.lanes {
			for h := 0; h < 2; h++ {
				if ln.halves[h].base != off {
					t.Fatalf("%d blocks/%d lanes: lane %d half %d base = %d, want %d",
						c.blocks, c.lanes, i, h, ln.halves[h].base, off)
				}
				if ln.halves[h].count < int(cacheline.BlockSize/EntrySize) {
					t.Fatalf("%d blocks/%d lanes: lane %d half %d holds %d entries, below one block",
						c.blocks, c.lanes, i, h, ln.halves[h].count)
				}
				off += int64(ln.halves[h].count) * EntrySize
			}
		}
		if off != areaBase+size {
			t.Fatalf("%d blocks/%d lanes: lanes cover [%d, %d), want [%d, %d)",
				c.blocks, c.lanes, int64(areaBase), off, int64(areaBase), areaBase+size)
		}
	}
}

// TestNewLanesRejectsBadSize: the area must stay a positive multiple of two
// blocks regardless of lane count.
func TestNewLanesRejectsBadSize(t *testing.T) {
	dev := testDev(t)
	if _, err := NewLanes(dev, areaBase, cacheline.BlockSize, 4); err == nil {
		t.Fatal("single-block area accepted")
	}
	if _, err := NewLanes(dev, areaBase, 3*cacheline.BlockSize, 2); err == nil {
		t.Fatal("odd-block area accepted")
	}
}

// TestResidueLaneAttribution: Residue reports valid entries not owned by
// any open transaction, attributed to the lane holding their slot. Open
// transactions' entries are excluded; a journal instance that never began
// them (fresh mount over the same area) sees them all. Begin assigns lanes
// round-robin, so consecutive Begins land on distinct lanes.
func TestResidueLaneAttribution(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	const addr = 256 * 4096
	const txs = 4
	ids := make(map[uint32]bool)
	for i := 0; i < txs; i++ {
		tx := j.Begin()
		tx.LogRange(addr+int64(i)*64, 8)
		ids[tx.id] = true
	}
	// The writing journal holds all four open: nothing is residue.
	if res := j.Residue(); len(res) != 0 {
		t.Fatalf("live journal reported %d residue entries, want 0", len(res))
	}
	// A fresh instance over the same area has no open transactions, so
	// every durable entry is residue — with lane attribution.
	j, err := New(dev, areaBase, areaSize)
	if err != nil {
		t.Fatal(err)
	}
	res := j.Residue()
	if len(res) < txs {
		t.Fatalf("Residue reported %d entries, want >= %d", len(res), txs)
	}
	seen := make(map[uint32]bool)
	lanes := make(map[int]bool)
	for _, e := range res {
		if e.Lane < 0 || e.Lane >= j.Lanes() {
			t.Fatalf("entry at %#x attributed to lane %d (journal has %d)", e.Slot, e.Lane, j.Lanes())
		}
		ln := j.lanes[e.Lane]
		lo := ln.halves[0].base
		hi := ln.halves[1].base + int64(ln.halves[1].count)*EntrySize
		slotAddr := int64(areaBase) + int64(e.Slot)*EntrySize
		if slotAddr < lo || slotAddr >= hi {
			t.Fatalf("entry %d (addr %#x) attributed to lane %d spanning [%#x, %#x)",
				e.Slot, slotAddr, e.Lane, lo, hi)
		}
		if e.Kind == kindUndo {
			seen[e.TxID] = true
			lanes[e.Lane] = true
		}
	}
	for id := range ids {
		if !seen[id] {
			t.Fatalf("open tx %d missing from residue", id)
		}
	}
	if len(lanes) < 2 {
		t.Fatalf("round-robin Begin left all residue in %d lane(s)", len(lanes))
	}
}

// TestCrossLaneRollbackOrder: two uncommitted transactions on different
// lanes undo-log the same address in sequence. Rollback must apply undos in
// reverse *global* sequence order — newest first — or the older pre-image
// would not win. A per-lane scan that ignored the global sequence could
// apply them in either order.
func TestCrossLaneRollbackOrder(t *testing.T) {
	dev := testDev(t)
	j := newJournal(t, dev)
	if j.Lanes() < 2 {
		t.Fatalf("journal has %d lanes, test needs >= 2", j.Lanes())
	}
	const addr = 300 * 4096
	dev.WriteNT([]byte("AAAAAAAA"), addr)

	tx1 := j.Begin()
	tx2 := j.Begin()
	if tx1.ln == tx2.ln {
		t.Fatal("consecutive Begins assigned the same lane")
	}
	tx1.LogRange(addr, 8) // pre-image AAAAAAAA, logged first (lower seq)
	dev.WriteNT([]byte("BBBBBBBB"), addr)
	tx2.LogRange(addr, 8) // pre-image BBBBBBBB, logged second (higher seq)
	dev.WriteNT([]byte("CCCCCCCC"), addr)

	rolled, err := Recover(dev, areaBase, areaSize)
	if err != nil {
		t.Fatal(err)
	}
	if rolled != 2 {
		t.Fatalf("recovered %d txs, want 2", rolled)
	}
	got := make([]byte, 8)
	dev.Read(got, addr)
	if string(got) != "AAAAAAAA" {
		t.Fatalf("cross-lane rollback applied out of order: %q, want AAAAAAAA", got)
	}
}
