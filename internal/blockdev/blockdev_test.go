package blockdev

import (
	"bytes"
	"testing"
	"time"

	"hinfs/internal/nvmm"
)

func TestReadWriteBlock(t *testing.T) {
	nv, _ := nvmm.New(nvmm.Config{Size: 1 << 20})
	d := New(nv, Config{})
	blk := bytes.Repeat([]byte{0xAB}, BlockSize)
	d.WriteBlock(blk, 3)
	got := make([]byte, BlockSize)
	d.ReadBlock(got, 3)
	if !bytes.Equal(got, blk) {
		t.Fatal("round trip failed")
	}
	s := d.Stats()
	if s.Requests != 2 || s.BytesWritten != BlockSize || s.BytesRead != BlockSize {
		t.Fatalf("stats %+v", s)
	}
}

func TestWriteIsDurable(t *testing.T) {
	nv, _ := nvmm.New(nvmm.Config{Size: 1 << 20, TrackPersistence: true})
	d := New(nv, Config{})
	d.WriteBlock(bytes.Repeat([]byte{7}, BlockSize), 1)
	nv.Crash()
	got := make([]byte, BlockSize)
	d.ReadBlock(got, 1)
	if got[0] != 7 {
		t.Fatal("block write not durable at completion")
	}
}

func TestRequestOverheadCharged(t *testing.T) {
	nv, _ := nvmm.New(nvmm.Config{Size: 1 << 20})
	d := New(nv, Config{RequestOverhead: 200 * time.Microsecond})
	start := time.Now()
	buf := make([]byte, BlockSize)
	d.ReadBlock(buf, 0)
	if time.Since(start) < 200*time.Microsecond {
		t.Fatal("block layer overhead not charged")
	}
}

func TestBadArgsPanic(t *testing.T) {
	nv, _ := nvmm.New(nvmm.Config{Size: 1 << 20})
	d := New(nv, Config{})
	for _, f := range []func(){
		func() { d.ReadBlock(make([]byte, 10), 0) },
		func() { d.WriteBlock(make([]byte, BlockSize), 1<<40) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestBlocks(t *testing.T) {
	nv, _ := nvmm.New(nvmm.Config{Size: 1 << 20})
	d := New(nv, Config{})
	if d.Blocks() != 256 {
		t.Fatalf("Blocks = %d", d.Blocks())
	}
}
