// Package blockdev emulates NVMMBD: a RAMDISK-like block device built on
// the NVMM performance model (paper §5.1, Table 3). It mirrors the brd
// driver the paper modified — every request passes through a "generic
// block layer" whose per-request software overhead (request allocation,
// queueing, completion) is charged as a configurable delay, and the data
// transfer itself pays the NVMM latency/bandwidth model of the underlying
// device.
//
// The traditional EXT2/EXT4-like file systems (internal/extfs) are built
// on this device through the OS page cache (internal/pagecache),
// reproducing the double-copy + block-layer overheads that HiNFS's design
// eliminates.
package blockdev

import (
	"sync/atomic"
	"time"

	"hinfs/internal/cacheline"
	"hinfs/internal/nvmm"
)

// BlockSize is the device block size (one page).
const BlockSize = cacheline.BlockSize

// Config tunes the block layer model.
type Config struct {
	// RequestOverhead is the generic-block-layer software cost charged per
	// request, covering bio allocation, queueing and completion (default
	// 4 µs, in line with measurements of the Linux block layer on
	// ultra-low-latency devices).
	RequestOverhead time.Duration
}

func (c *Config) fill() {
	if c.RequestOverhead == 0 {
		c.RequestOverhead = 4 * time.Microsecond
	}
}

// Stats counts device activity.
type Stats struct {
	Requests     int64
	BytesRead    int64
	BytesWritten int64
}

// Device is an emulated NVMM-backed block device.
type Device struct {
	nv  *nvmm.Device
	cfg Config

	requests     atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
}

// New wraps an NVMM device as a block device.
func New(nv *nvmm.Device, cfg Config) *Device {
	cfg.fill()
	return &Device{nv: nv, cfg: cfg}
}

// Blocks returns the device capacity in blocks.
func (d *Device) Blocks() int64 { return d.nv.Size() / BlockSize }

// NVMM returns the backing NVMM device (stats).
func (d *Device) NVMM() *nvmm.Device { return d.nv }

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats {
	return Stats{
		Requests:     d.requests.Load(),
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
	}
}

func (d *Device) check(bn int64) {
	if bn < 0 || bn >= d.Blocks() {
		panic("blockdev: block number out of range")
	}
}

// overhead charges the generic block layer cost of one request.
func (d *Device) overhead() {
	d.requests.Add(1)
	nvmm.Wait(d.cfg.RequestOverhead)
}

// ReadBlock reads block bn into dst (len BlockSize).
func (d *Device) ReadBlock(dst []byte, bn int64) {
	d.check(bn)
	if len(dst) != BlockSize {
		panic("blockdev: short read buffer")
	}
	d.overhead()
	d.nv.Read(dst, bn*BlockSize)
	d.bytesRead.Add(BlockSize)
}

// WriteBlock writes src (len BlockSize) to block bn. Like a block device
// write completion, the data is durable when the call returns, so it pays
// the NVMM write latency for the whole block.
func (d *Device) WriteBlock(src []byte, bn int64) {
	d.check(bn)
	if len(src) != BlockSize {
		panic("blockdev: short write buffer")
	}
	d.overhead()
	d.nv.Write(src, bn*BlockSize)
	d.nv.Flush(bn*BlockSize, BlockSize)
	d.bytesWritten.Add(BlockSize)
}

// Flush is a full-device write barrier (REQ_FLUSH).
func (d *Device) Flush() {
	d.overhead()
	d.nv.Fence()
}
