// Package workload implements deterministic generators for every workload
// in the paper's Table 1: the four Filebench personalities (fileserver,
// webserver, webproxy, varmail), a fio-like microbenchmark (Fig. 1), and
// the macrobenchmarks (Postmark, TPC-C, Kernel-Grep, Kernel-Make).
//
// Generators run against any vfs.FileSystem, so the same op stream
// exercises HiNFS and every baseline. All randomness is a seeded
// xorshift64* stream: two runs of the same workload issue identical ops.
package workload

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"hinfs/internal/vfs"
)

// Rand is a small deterministic xorshift64* generator.
type Rand struct{ s uint64 }

// NewRand seeds a generator; seed 0 is remapped.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// baseSeed perturbs every workload RNG stream when non-zero; see
// SetBaseSeed.
var baseSeed atomic.Uint64

// SetBaseSeed sets a global base seed mixed into every workload RNG
// stream (hinfs-bench -seed). Zero — the default — leaves the historical
// fixed seeds untouched, so existing runs and tests stay bit-identical.
// Two runs with the same base seed issue identical op streams.
func SetBaseSeed(seed uint64) { baseSeed.Store(seed) }

// BaseSeed returns the current base seed (0 = default streams).
func BaseSeed() uint64 { return baseSeed.Load() }

// mixSeed combines a stream-local seed with the base seed. With base 0 it
// returns local unchanged.
func mixSeed(local uint64) uint64 {
	base := baseSeed.Load()
	if base == 0 {
		return local
	}
	x := local ^ (base * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 31
	return x
}

// Uint64 returns the next value.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value in [0, n).
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("workload: Int63n on non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// HotIntn returns an index in [0, n) with 80/20 skew: 80% of picks land in
// the first 20% of the range, modelling the access locality most file
// system workloads exhibit (§1).
func (r *Rand) HotIntn(n int) int {
	if n <= 0 {
		panic("workload: HotIntn on non-positive n")
	}
	hot := n / 5
	if hot == 0 {
		hot = 1
	}
	if r.Float64() < 0.8 {
		return r.Intn(hot)
	}
	return r.Intn(n)
}

// Result aggregates a workload run.
type Result struct {
	// Ops counts completed workload operations (the Filebench metric).
	Ops int64
	// BytesRead and BytesWritten are user-visible I/O volumes.
	BytesRead    int64
	BytesWritten int64
	// Fsyncs counts fsync calls.
	Fsyncs int64
	// FsyncBytes counts written bytes that an fsync later persisted (the
	// Fig. 2 metric: dirty bytes outstanding at each fsync).
	FsyncBytes int64
}

func (r *Result) add(o Result) {
	r.Ops += o.Ops
	r.BytesRead += o.BytesRead
	r.BytesWritten += o.BytesWritten
	r.Fsyncs += o.Fsyncs
	r.FsyncBytes += o.FsyncBytes
}

// Workload generates operations against a file system.
type Workload interface {
	// Name identifies the workload (Table 1 row).
	Name() string
	// Setup pre-creates the dataset.
	Setup(fs vfs.FileSystem) error
	// Run executes ops operations per thread across threads goroutines.
	Run(fs vfs.FileSystem, threads, ops int) (Result, error)
}

// syncTracker accounts the Fig. 2 fsync-byte metric: bytes written to a
// file since its last fsync count as fsync bytes when the fsync arrives.
type syncTracker struct {
	mu    sync.Mutex
	dirty map[string]int64
}

func newSyncTracker() *syncTracker {
	return &syncTracker{dirty: make(map[string]int64)}
}

func (t *syncTracker) wrote(path string, n int64) {
	t.mu.Lock()
	t.dirty[path] += n
	t.mu.Unlock()
}

func (t *syncTracker) synced(path string) int64 {
	t.mu.Lock()
	n := t.dirty[path]
	delete(t.dirty, path)
	t.mu.Unlock()
	return n
}

func (t *syncTracker) forget(path string) {
	t.mu.Lock()
	delete(t.dirty, path)
	t.mu.Unlock()
}

// runThreads fans body out over threads goroutines, each with its own
// deterministic RNG, and merges the per-thread results.
func runThreads(threads int, body func(tid int, rng *Rand, res *Result) error) (Result, error) {
	if threads <= 0 {
		threads = 1
	}
	results := make([]Result, threads)
	errs := make([]error, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := NewRand(mixSeed(uint64(tid)*0x1337 + 7))
			errs[tid] = body(tid, rng, &results[tid])
		}(tid)
	}
	wg.Wait()
	var total Result
	for i := range results {
		total.add(results[i])
		if errs[i] != nil {
			return total, errs[i]
		}
	}
	return total, nil
}

// payload returns a reusable pseudo-random buffer of length n.
func payload(rng *Rand, buf []byte, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	// Fill sparsely; full randomization would dominate CPU time.
	for i := 0; i < n; i += 512 {
		buf[i] = byte(rng.Uint64())
	}
	return buf
}

// writeAll writes buf at off, accounting into res and the tracker.
func writeAll(f vfs.File, buf []byte, off int64, path string, st *syncTracker, res *Result) error {
	n, err := f.WriteAt(buf, off)
	res.BytesWritten += int64(n)
	if st != nil {
		st.wrote(path, int64(n))
	}
	return err
}

// fsyncFile fsyncs f, accounting fsync bytes for path.
func fsyncFile(f vfs.File, path string, st *syncTracker, res *Result) error {
	if err := f.Fsync(); err != nil {
		return err
	}
	res.Fsyncs++
	if st != nil {
		res.FsyncBytes += st.synced(path)
	}
	return nil
}

// readFull reads the whole file in chunks of ioSize.
func readFull(f vfs.File, ioSize int, res *Result) error {
	size := f.Size()
	buf := make([]byte, ioSize)
	for off := int64(0); off < size; off += int64(ioSize) {
		n, err := f.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			return err
		}
		res.BytesRead += int64(n)
		if n == 0 {
			break
		}
	}
	return nil
}

// fanoutPath spreads files across subdirectories to keep directory scans
// short (Filebench does the same with its fileset width).
func fanoutPath(prefix string, i int) string {
	return fmt.Sprintf("/%s/d%d/f%d", prefix, i%16, i)
}

// makeFileset creates count files of the given size under prefix.
func makeFileset(fs vfs.FileSystem, prefix string, count int, size int64) error {
	if err := fs.Mkdir("/" + prefix); err != nil && err != vfs.ErrExist {
		return err
	}
	for d := 0; d < 16; d++ {
		if err := fs.Mkdir(fmt.Sprintf("/%s/d%d", prefix, d)); err != nil && err != vfs.ErrExist {
			return err
		}
	}
	rng := NewRand(mixSeed(99))
	var buf []byte
	for i := 0; i < count; i++ {
		f, err := fs.Create(fanoutPath(prefix, i))
		if err != nil {
			return err
		}
		if size > 0 {
			chunk := int64(1 << 20)
			for off := int64(0); off < size; off += chunk {
				n := chunk
				if size-off < n {
					n = size - off
				}
				buf = payload(rng, buf, int(n))
				if _, err := f.WriteAt(buf, off); err != nil {
					f.Close()
					return err
				}
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// opCounter is a shared atomic op budget for multi-threaded runs.
type opCounter struct{ left atomic.Int64 }

func newOpCounter(n int64) *opCounter {
	c := &opCounter{}
	c.left.Store(n)
	return c
}

func (c *opCounter) take() bool { return c.left.Add(-1) >= 0 }
