package workload

import (
	"fmt"

	"hinfs/internal/vfs"
)

// Postmark emulates mail/web service small-file churn (Table 1):
// transactions over a pool of small files, each either read-or-append
// paired with create-or-delete. Many files are short-lived, which is why
// HiNFS's buffer-drop-on-delete wins on it (§5.3).
type Postmark struct {
	Files   int // pool size (default 512)
	MinSize int // default 512 B
	MaxSize int // default 16 KB
}

func (w *Postmark) fill() {
	if w.Files == 0 {
		w.Files = 512
	}
	if w.MinSize == 0 {
		w.MinSize = 512
	}
	if w.MaxSize == 0 {
		w.MaxSize = 16 << 10
	}
}

// Name implements Workload.
func (w *Postmark) Name() string { return "postmark" }

// Setup implements Workload.
func (w *Postmark) Setup(fs vfs.FileSystem) error {
	w.fill()
	rng := NewRand(mixSeed(3))
	if err := fs.Mkdir("/postmark"); err != nil && err != vfs.ErrExist {
		return err
	}
	var buf []byte
	for i := 0; i < w.Files; i++ {
		f, err := fs.Create(fmt.Sprintf("/postmark/f%d", i))
		if err != nil {
			return err
		}
		size := w.MinSize + rng.Intn(w.MaxSize-w.MinSize)
		buf = payload(rng, buf, size)
		f.WriteAt(buf, 0)
		f.Close()
	}
	return nil
}

// Run implements Workload.
func (w *Postmark) Run(fs vfs.FileSystem, threads, ops int) (Result, error) {
	w.fill()
	budget := newOpCounter(int64(ops) * int64(threads))
	return runThreads(threads, func(tid int, rng *Rand, res *Result) error {
		var buf []byte
		for budget.take() {
			i := rng.Intn(w.Files)
			path := fmt.Sprintf("/postmark/f%d", i)
			// Read-or-append half of the transaction.
			if rng.Intn(2) == 0 {
				if f, err := fs.Open(path, vfs.ORdonly); err == nil {
					readFull(f, w.MaxSize, res)
					f.Close()
				}
			} else {
				if f, err := fs.Open(path, vfs.ORdwr|vfs.OAppend); err == nil {
					buf = payload(rng, buf, w.MinSize+rng.Intn(w.MaxSize-w.MinSize))
					writeAll(f, buf, 0, path, nil, res)
					f.Close()
				}
			}
			// Create-or-delete half.
			if rng.Intn(2) == 0 {
				fs.Unlink(path)
			} else {
				if f, err := fs.Open(path, vfs.OCreate|vfs.ORdwr|vfs.OTrunc); err == nil {
					buf = payload(rng, buf, w.MinSize+rng.Intn(w.MaxSize-w.MinSize))
					writeAll(f, buf, 0, path, nil, res)
					f.Close()
				}
			}
			res.Ops++
		}
		return nil
	})
}

// TPCC emulates DBT2/TPC-C on PostgreSQL (Table 1): transactions read and
// update random pages of warehouse table files, then commit by appending
// to a WAL file and fsyncing it; table pages are checkpointed with fsync
// periodically. Over 90% of written bytes are fsynced (Fig. 2).
type TPCC struct {
	Warehouses int   // default 3 (the paper's DBT2 configuration)
	TableSize  int64 // per-warehouse table size (default 8 MB)
	PageSize   int   // default 8 KB (PostgreSQL page)
	WalSize    int   // WAL record size (default 512 B)
	// CommitEvery is the number of page updates per commit (default 4).
	CommitEvery int
	// CheckpointEvery is transactions per table fsync (default 64).
	CheckpointEvery int
}

func (w *TPCC) fill() {
	if w.Warehouses == 0 {
		w.Warehouses = 3
	}
	if w.TableSize == 0 {
		w.TableSize = 8 << 20
	}
	if w.PageSize == 0 {
		w.PageSize = 8 << 10
	}
	if w.WalSize == 0 {
		w.WalSize = 512
	}
	if w.CommitEvery == 0 {
		w.CommitEvery = 4
	}
	if w.CheckpointEvery == 0 {
		w.CheckpointEvery = 64
	}
}

// Name implements Workload.
func (w *TPCC) Name() string { return "tpcc" }

// Setup implements Workload.
func (w *TPCC) Setup(fs vfs.FileSystem) error {
	w.fill()
	if err := fs.Mkdir("/tpcc"); err != nil && err != vfs.ErrExist {
		return err
	}
	rng := NewRand(mixSeed(11))
	var buf []byte
	for wh := 0; wh < w.Warehouses; wh++ {
		f, err := fs.Create(fmt.Sprintf("/tpcc/table%d", wh))
		if err != nil {
			return err
		}
		const chunk = 1 << 20
		for off := int64(0); off < w.TableSize; off += chunk {
			buf = payload(rng, buf, chunk)
			f.WriteAt(buf, off)
		}
		f.Close()
	}
	f, err := fs.Create("/tpcc/wal")
	if err != nil {
		return err
	}
	return f.Close()
}

// Run implements Workload.
func (w *TPCC) Run(fs vfs.FileSystem, threads, ops int) (Result, error) {
	w.fill()
	budget := newOpCounter(int64(ops) * int64(threads))
	st := newSyncTracker()
	return runThreads(threads, func(tid int, rng *Rand, res *Result) error {
		wal, err := fs.Open("/tpcc/wal", vfs.ORdwr|vfs.OAppend)
		if err != nil {
			return err
		}
		defer wal.Close()
		tables := make([]vfs.File, w.Warehouses)
		for wh := range tables {
			t, err := fs.Open(fmt.Sprintf("/tpcc/table%d", wh), vfs.ORdwr)
			if err != nil {
				return err
			}
			tables[wh] = t
			defer t.Close()
		}
		var buf []byte
		pages := w.TableSize / int64(w.PageSize)
		txn := 0
		for budget.take() {
			wh := rng.Intn(w.Warehouses)
			tbl := tables[wh]
			tblPath := fmt.Sprintf("/tpcc/table%d", wh)
			// Read a few pages.
			for r := 0; r < 2; r++ {
				buf = payload(rng, buf, w.PageSize)
				n, _ := tbl.ReadAt(buf, rng.Int63n(pages)*int64(w.PageSize))
				res.BytesRead += int64(n)
			}
			// Update pages.
			for u := 0; u < w.CommitEvery; u++ {
				buf = payload(rng, buf, w.PageSize)
				writeAll(tbl, buf, rng.Int63n(pages)*int64(w.PageSize), tblPath, st, res)
			}
			// Commit: WAL append + fsync (the >90% fsync-byte source).
			buf = payload(rng, buf, w.WalSize*w.CommitEvery)
			writeAll(wal, buf, 0, "/tpcc/wal", st, res)
			fsyncFile(wal, "/tpcc/wal", st, res)
			txn++
			if txn%w.CheckpointEvery == 0 {
				// Checkpoint: fsync every table, like the database's
				// checkpointer — this is what pushes TPC-C's fsync-byte
				// share above 90% (Fig. 2).
				for wh2, t2 := range tables {
					fsyncFile(t2, fmt.Sprintf("/tpcc/table%d", wh2), st, res)
				}
			}
			res.Ops++
		}
		return nil
	})
}

// KernelGrep emulates grepping for an absent pattern in a source tree:
// it reads every file once, sequentially (pure read workload).
type KernelGrep struct {
	Files    int   // default 512
	FileSize int64 // default 16 KB
	IOSize   int   // default 64 KB
}

func (w *KernelGrep) fill() {
	if w.Files == 0 {
		w.Files = 512
	}
	if w.FileSize == 0 {
		w.FileSize = 16 << 10
	}
	if w.IOSize == 0 {
		w.IOSize = 64 << 10
	}
}

// Name implements Workload.
func (w *KernelGrep) Name() string { return "kernel-grep" }

// Setup implements Workload.
func (w *KernelGrep) Setup(fs vfs.FileSystem) error {
	w.fill()
	return makeFileset(fs, "src", w.Files, w.FileSize)
}

// Run implements Workload. ops is ignored: one pass over the tree per
// thread partition.
func (w *KernelGrep) Run(fs vfs.FileSystem, threads, ops int) (Result, error) {
	w.fill()
	return runThreads(threads, func(tid int, rng *Rand, res *Result) error {
		for i := tid; i < w.Files; i += threads {
			f, err := fs.Open(fanoutPath("src", i), vfs.ORdonly)
			if err != nil {
				return err
			}
			if err := readFull(f, w.IOSize, res); err != nil {
				f.Close()
				return err
			}
			f.Close()
			res.Ops++
		}
		return nil
	})
}

// KernelMake emulates make in a source tree: read sources, write object
// files (create-write-close), relink some outputs and delete temporaries.
// Lazy-persistent writes dominate; outputs are often rewritten.
type KernelMake struct {
	Sources  int   // default 384
	FileSize int64 // default 16 KB
	ObjSize  int64 // default 24 KB
	IOSize   int   // default 64 KB
}

func (w *KernelMake) fill() {
	if w.Sources == 0 {
		w.Sources = 384
	}
	if w.FileSize == 0 {
		w.FileSize = 16 << 10
	}
	if w.ObjSize == 0 {
		w.ObjSize = 24 << 10
	}
	if w.IOSize == 0 {
		w.IOSize = 64 << 10
	}
}

// Name implements Workload.
func (w *KernelMake) Name() string { return "kernel-make" }

// Setup implements Workload.
func (w *KernelMake) Setup(fs vfs.FileSystem) error {
	w.fill()
	if err := makeFileset(fs, "ksrc", w.Sources, w.FileSize); err != nil {
		return err
	}
	if err := fs.Mkdir("/obj"); err != nil && err != vfs.ErrExist {
		return err
	}
	return nil
}

// Run implements Workload. ops is the number of compile steps per thread.
func (w *KernelMake) Run(fs vfs.FileSystem, threads, ops int) (Result, error) {
	w.fill()
	budget := newOpCounter(int64(ops) * int64(threads))
	return runThreads(threads, func(tid int, rng *Rand, res *Result) error {
		var buf []byte
		for budget.take() {
			// Read a handful of sources (headers + the unit).
			for r := 0; r < 4; r++ {
				f, err := fs.Open(fanoutPath("ksrc", rng.HotIntn(w.Sources)), vfs.ORdonly)
				if err != nil {
					continue
				}
				readFull(f, w.IOSize, res)
				f.Close()
			}
			// Write the object file (rewritten across rebuilds).
			obj := fmt.Sprintf("/obj/o%d", rng.Intn(w.Sources))
			f, err := fs.Open(obj, vfs.OCreate|vfs.ORdwr|vfs.OTrunc)
			if err != nil {
				continue
			}
			buf = payload(rng, buf, int(w.ObjSize))
			writeAll(f, buf, 0, obj, nil, res)
			f.Close()
			// Occasionally delete a temporary.
			if rng.Intn(8) == 0 {
				fs.Unlink(fmt.Sprintf("/obj/o%d", rng.Intn(w.Sources)))
			}
			res.Ops++
		}
		return nil
	})
}
