package workload

import (
	"fmt"

	"hinfs/internal/vfs"
)

// The four Filebench personalities of Table 1. Dataset sizes default to a
// laptop-scale fraction of the paper's 5 GB fileset; the op mixes follow
// the published Filebench model definitions.

// Fileserver emulates a simple file server: creates, deletes, appends,
// whole-file reads and writes (write-heavy, no fsync).
type Fileserver struct {
	// Files is the dataset size in files (default 192).
	Files int
	// FileSize is the mean file size (default 256 KB).
	FileSize int64
	// IOSize is the read/write chunk size (default 1 MB, §5.2).
	IOSize int
}

func (w *Fileserver) fill() {
	if w.Files == 0 {
		w.Files = 192
	}
	if w.FileSize == 0 {
		w.FileSize = 256 << 10
	}
	if w.IOSize == 0 {
		w.IOSize = 1 << 20
	}
}

// Name implements Workload.
func (w *Fileserver) Name() string { return "fileserver" }

// Setup implements Workload.
func (w *Fileserver) Setup(fs vfs.FileSystem) error {
	w.fill()
	return makeFileset(fs, "fileserver", w.Files, w.FileSize)
}

// Run implements Workload.
func (w *Fileserver) Run(fs vfs.FileSystem, threads, ops int) (Result, error) {
	w.fill()
	budget := newOpCounter(int64(ops) * int64(threads))
	return runThreads(threads, func(tid int, rng *Rand, res *Result) error {
		var buf []byte
		for budget.take() {
			i := rng.Intn(w.Files)
			path := fanoutPath("fileserver", i)
			switch rng.Intn(5) {
			case 0: // create (or truncate) + write whole file + close
				f, err := fs.Open(path, vfs.OCreate|vfs.ORdwr|vfs.OTrunc)
				if err != nil {
					continue
				}
				for off := int64(0); off < w.FileSize; off += int64(w.IOSize) {
					n := int64(w.IOSize)
					if w.FileSize-off < n {
						n = w.FileSize - off
					}
					buf = payload(rng, buf, int(n))
					if err := writeAll(f, buf, off, path, nil, res); err != nil {
						break
					}
				}
				f.Close()
			case 1: // open + append + close
				f, err := fs.Open(path, vfs.ORdwr|vfs.OAppend)
				if err != nil {
					continue
				}
				buf = payload(rng, buf, w.IOSize)
				writeAll(f, buf, 0, path, nil, res)
				f.Close()
			case 2: // open + read whole file + close
				f, err := fs.Open(path, vfs.ORdonly)
				if err != nil {
					continue
				}
				readFull(f, w.IOSize, res)
				f.Close()
			case 3: // delete
				fs.Unlink(path)
			case 4: // stat
				fs.Stat(path)
			}
			res.Ops++
		}
		return nil
	})
}

// Webserver emulates a web server: whole-file reads plus small log
// appends (read-dominated, no fsync).
type Webserver struct {
	Files    int   // default 256
	FileSize int64 // default 64 KB
	IOSize   int   // default 1 MB
	LogSize  int   // log append size (default 16 KB)
}

func (w *Webserver) fill() {
	if w.Files == 0 {
		w.Files = 256
	}
	if w.FileSize == 0 {
		w.FileSize = 64 << 10
	}
	if w.IOSize == 0 {
		w.IOSize = 1 << 20
	}
	if w.LogSize == 0 {
		w.LogSize = 16 << 10
	}
}

// Name implements Workload.
func (w *Webserver) Name() string { return "webserver" }

// Setup implements Workload.
func (w *Webserver) Setup(fs vfs.FileSystem) error {
	w.fill()
	if err := makeFileset(fs, "webserver", w.Files, w.FileSize); err != nil {
		return err
	}
	if err := fs.Mkdir("/weblog"); err != nil && err != vfs.ErrExist {
		return err
	}
	return nil
}

// Run implements Workload.
func (w *Webserver) Run(fs vfs.FileSystem, threads, ops int) (Result, error) {
	w.fill()
	budget := newOpCounter(int64(ops) * int64(threads))
	return runThreads(threads, func(tid int, rng *Rand, res *Result) error {
		logPath := fmt.Sprintf("/weblog/log%d", tid)
		logf, err := fs.Open(logPath, vfs.OCreate|vfs.OWronly|vfs.OAppend)
		if err != nil {
			return err
		}
		defer logf.Close()
		var buf []byte
		for budget.take() {
			// 10 whole-file reads, then one log append (Filebench model).
			for r := 0; r < 10; r++ {
				path := fanoutPath("webserver", rng.HotIntn(w.Files))
				f, err := fs.Open(path, vfs.ORdonly)
				if err != nil {
					continue
				}
				readFull(f, w.IOSize, res)
				f.Close()
			}
			buf = payload(rng, buf, w.LogSize)
			writeAll(logf, buf, 0, logPath, nil, res)
			res.Ops++
		}
		return nil
	})
}

// Webproxy emulates a web proxy: create-write-close, five open-read-close
// per created file, deletes of short-lived objects, and log appends.
// Strong locality, many short-lived files, no fsync.
type Webproxy struct {
	Files    int   // default 256
	FileSize int64 // default 32 KB
	IOSize   int   // default 1 MB
	LogSize  int   // default 16 KB
}

func (w *Webproxy) fill() {
	if w.Files == 0 {
		w.Files = 256
	}
	if w.FileSize == 0 {
		w.FileSize = 32 << 10
	}
	if w.IOSize == 0 {
		w.IOSize = 1 << 20
	}
	if w.LogSize == 0 {
		w.LogSize = 16 << 10
	}
}

// Name implements Workload.
func (w *Webproxy) Name() string { return "webproxy" }

// Setup implements Workload.
func (w *Webproxy) Setup(fs vfs.FileSystem) error {
	w.fill()
	if err := makeFileset(fs, "webproxy", w.Files, w.FileSize); err != nil {
		return err
	}
	if err := fs.Mkdir("/proxylog"); err != nil && err != vfs.ErrExist {
		return err
	}
	return nil
}

// Run implements Workload.
func (w *Webproxy) Run(fs vfs.FileSystem, threads, ops int) (Result, error) {
	w.fill()
	budget := newOpCounter(int64(ops) * int64(threads))
	return runThreads(threads, func(tid int, rng *Rand, res *Result) error {
		logPath := fmt.Sprintf("/proxylog/log%d", tid)
		logf, err := fs.Open(logPath, vfs.OCreate|vfs.OWronly|vfs.OAppend)
		if err != nil {
			return err
		}
		defer logf.Close()
		var buf []byte
		for budget.take() {
			i := rng.HotIntn(w.Files)
			path := fanoutPath("webproxy", i)
			// delete + re-create + write (short-lived object churn).
			fs.Unlink(path)
			f, err := fs.Open(path, vfs.OCreate|vfs.ORdwr)
			if err != nil {
				continue
			}
			buf = payload(rng, buf, int(w.FileSize))
			writeAll(f, buf, 0, path, nil, res)
			f.Close()
			// Five reads of hot objects.
			for r := 0; r < 5; r++ {
				rp := fanoutPath("webproxy", rng.HotIntn(w.Files))
				rf, err := fs.Open(rp, vfs.ORdonly)
				if err != nil {
					continue
				}
				readFull(rf, w.IOSize, res)
				rf.Close()
			}
			buf = payload(rng, buf, w.LogSize)
			writeAll(logf, buf, 0, logPath, nil, res)
			res.Ops++
		}
		return nil
	})
}

// Varmail emulates a mail server: create-append-fsync, read-append-fsync,
// whole-file reads and deletes. Every append is fsynced, so nearly all
// writes are eager-persistent (§5.2.1).
type Varmail struct {
	Files      int   // default 256
	FileSize   int64 // default 16 KB
	AppendSize int   // default 16 KB
	IOSize     int   // default 1 MB
}

func (w *Varmail) fill() {
	if w.Files == 0 {
		w.Files = 256
	}
	if w.FileSize == 0 {
		w.FileSize = 16 << 10
	}
	if w.AppendSize == 0 {
		w.AppendSize = 16 << 10
	}
	if w.IOSize == 0 {
		w.IOSize = 1 << 20
	}
}

// Name implements Workload.
func (w *Varmail) Name() string { return "varmail" }

// Setup implements Workload.
func (w *Varmail) Setup(fs vfs.FileSystem) error {
	w.fill()
	return makeFileset(fs, "varmail", w.Files, w.FileSize)
}

// Run implements Workload.
func (w *Varmail) Run(fs vfs.FileSystem, threads, ops int) (Result, error) {
	w.fill()
	budget := newOpCounter(int64(ops) * int64(threads))
	st := newSyncTracker()
	return runThreads(threads, func(tid int, rng *Rand, res *Result) error {
		var buf []byte
		for budget.take() {
			i := rng.Intn(w.Files)
			path := fanoutPath("varmail", i)
			switch rng.Intn(4) {
			case 0: // delete
				fs.Unlink(path)
				st.forget(path)
			case 1: // create + append + fsync + close
				f, err := fs.Open(path, vfs.OCreate|vfs.ORdwr|vfs.OAppend)
				if err != nil {
					continue
				}
				// Append sizes follow a distribution around the mean (as in
				// Filebench), so file tails straddle block boundaries and
				// the same tail block sees repeated syncs.
				buf = payload(rng, buf, w.AppendSize/2+rng.Intn(w.AppendSize))
				writeAll(f, buf, 0, path, st, res)
				fsyncFile(f, path, st, res)
				f.Close()
			case 2: // open + read whole + append + fsync + close
				f, err := fs.Open(path, vfs.ORdwr|vfs.OAppend)
				if err != nil {
					continue
				}
				readFull(f, w.IOSize, res)
				buf = payload(rng, buf, w.AppendSize/2+rng.Intn(w.AppendSize))
				writeAll(f, buf, 0, path, st, res)
				fsyncFile(f, path, st, res)
				f.Close()
			case 3: // open + read whole + close
				f, err := fs.Open(path, vfs.ORdonly)
				if err != nil {
					continue
				}
				readFull(f, w.IOSize, res)
				f.Close()
			}
			res.Ops++
		}
		return nil
	})
}
