package workload

import (
	"io"

	"hinfs/internal/vfs"
)

// Fio is a fio-like microbenchmark: random reads and writes of a fixed
// I/O size against one preallocated file, with a 1:2 read/write ratio by
// default — the configuration behind the paper's Figure 1 time-breakdown
// experiment (§2.2).
type Fio struct {
	// FileSize is the preallocated file size (default 32 MB).
	FileSize int64
	// IOSize is the fixed request size (default 4 KB).
	IOSize int
	// ReadPercent is the share of reads in percent (default 33: R:W=1:2).
	ReadPercent int
	// Sequential switches from random to sequential offsets.
	Sequential bool
	// OSync opens the file O_SYNC so every write is eager-persistent.
	OSync bool
}

func (w *Fio) fill() {
	if w.FileSize == 0 {
		w.FileSize = 32 << 20
	}
	if w.IOSize == 0 {
		w.IOSize = 4 << 10
	}
	if w.ReadPercent == 0 {
		w.ReadPercent = 33
	}
}

// Name implements Workload.
func (w *Fio) Name() string { return "fio" }

// Setup implements Workload.
func (w *Fio) Setup(fs vfs.FileSystem) error {
	w.fill()
	f, err := fs.Create("/fio.dat")
	if err != nil {
		return err
	}
	defer f.Close()
	rng := NewRand(mixSeed(7))
	var buf []byte
	const chunk = 1 << 20
	for off := int64(0); off < w.FileSize; off += chunk {
		n := int64(chunk)
		if w.FileSize-off < n {
			n = w.FileSize - off
		}
		buf = payload(rng, buf, int(n))
		if _, err := f.WriteAt(buf, off); err != nil {
			return err
		}
	}
	return nil
}

// Run implements Workload.
func (w *Fio) Run(fs vfs.FileSystem, threads, ops int) (Result, error) {
	w.fill()
	budget := newOpCounter(int64(ops) * int64(threads))
	flags := vfs.ORdwr
	if w.OSync {
		flags |= vfs.OSync
	}
	return runThreads(threads, func(tid int, rng *Rand, res *Result) error {
		f, err := fs.Open("/fio.dat", flags)
		if err != nil {
			return err
		}
		defer f.Close()
		var buf []byte
		span := w.FileSize - int64(w.IOSize)
		if span <= 0 {
			span = 1
		}
		seq := int64(tid) * int64(w.IOSize)
		for budget.take() {
			var off int64
			if w.Sequential {
				off = seq % span
				seq += int64(w.IOSize)
			} else {
				off = rng.Int63n(span)
			}
			if rng.Intn(100) < w.ReadPercent {
				buf = payload(rng, buf, w.IOSize)
				n, err := f.ReadAt(buf, off)
				if err != nil && err != io.EOF {
					return err
				}
				res.BytesRead += int64(n)
			} else {
				buf = payload(rng, buf, w.IOSize)
				if err := writeAll(f, buf, off, "/fio.dat", nil, res); err != nil {
					return err
				}
			}
			res.Ops++
		}
		return nil
	})
}
