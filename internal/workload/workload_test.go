package workload

import (
	"testing"

	"hinfs/internal/nvmm"
	"hinfs/internal/pmfs"
	"hinfs/internal/vfs"
)

// testFS returns a zero-latency PMFS for fast functional workload runs.
func testFS(t testing.TB) vfs.FileSystem {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: 192 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := pmfs.Mkfs(dev, pmfs.Options{MaxInodes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Unmount() })
	return fs
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(0).Uint64() == 0 {
		t.Fatal("zero seed not remapped")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestHotIntnSkew(t *testing.T) {
	r := NewRand(3)
	const n, trials = 100, 10000
	hot := 0
	for i := 0; i < trials; i++ {
		if r.HotIntn(n) < n/5 {
			hot++
		}
	}
	// Expect ~84% (80% + uniform spill); accept a broad band.
	if frac := float64(hot) / trials; frac < 0.7 || frac > 0.95 {
		t.Fatalf("hot fraction %.2f outside [0.7,0.95]", frac)
	}
}

// runWorkload is a helper asserting a workload completes and does work.
func runWorkload(t *testing.T, w Workload, threads, ops int) Result {
	t.Helper()
	fs := testFS(t)
	if err := w.Setup(fs); err != nil {
		t.Fatalf("%s setup: %v", w.Name(), err)
	}
	res, err := w.Run(fs, threads, ops)
	if err != nil {
		t.Fatalf("%s run: %v", w.Name(), err)
	}
	if res.Ops == 0 {
		t.Fatalf("%s completed no ops", w.Name())
	}
	return res
}

func TestFileserver(t *testing.T) {
	res := runWorkload(t, &Fileserver{Files: 32, FileSize: 32 << 10, IOSize: 64 << 10}, 2, 50)
	if res.BytesWritten == 0 || res.BytesRead == 0 {
		t.Fatalf("no I/O: %+v", res)
	}
	if res.Fsyncs != 0 {
		t.Fatal("fileserver must not fsync")
	}
}

func TestWebserverIsReadDominated(t *testing.T) {
	res := runWorkload(t, &Webserver{Files: 32, FileSize: 32 << 10}, 2, 20)
	if res.BytesRead <= res.BytesWritten {
		t.Fatalf("webserver not read-dominated: R=%d W=%d", res.BytesRead, res.BytesWritten)
	}
}

func TestWebproxy(t *testing.T) {
	res := runWorkload(t, &Webproxy{Files: 32, FileSize: 16 << 10}, 2, 20)
	if res.BytesRead == 0 || res.BytesWritten == 0 {
		t.Fatalf("no I/O: %+v", res)
	}
}

func TestVarmailAllWritesFsynced(t *testing.T) {
	res := runWorkload(t, &Varmail{Files: 32}, 2, 60)
	if res.Fsyncs == 0 {
		t.Fatal("varmail issued no fsyncs")
	}
	// Nearly all written bytes should be covered by a sync (100% in the
	// paper's Fig. 2); deletions may strand a little.
	if frac := float64(res.FsyncBytes) / float64(res.BytesWritten); frac < 0.8 {
		t.Fatalf("fsync byte fraction %.2f too low for varmail", frac)
	}
}

func TestFioSequentialAndRandom(t *testing.T) {
	for _, seq := range []bool{false, true} {
		w := &Fio{FileSize: 4 << 20, IOSize: 4 << 10, Sequential: seq}
		res := runWorkload(t, w, 2, 100)
		if res.BytesRead == 0 || res.BytesWritten == 0 {
			t.Fatalf("seq=%v: no I/O", seq)
		}
		// R:W defaults to 1:2.
		if res.BytesWritten < res.BytesRead {
			t.Fatalf("seq=%v: not write-heavy: R=%d W=%d", seq, res.BytesRead, res.BytesWritten)
		}
	}
}

func TestPostmark(t *testing.T) {
	res := runWorkload(t, &Postmark{Files: 64}, 2, 50)
	if res.Fsyncs != 0 {
		t.Fatal("postmark must not fsync")
	}
	_ = res
}

func TestTPCCFsyncHeavy(t *testing.T) {
	res := runWorkload(t, &TPCC{Warehouses: 2, TableSize: 1 << 20, CheckpointEvery: 32}, 2, 200)
	if res.Fsyncs == 0 {
		t.Fatal("tpcc issued no fsyncs")
	}
	if frac := float64(res.FsyncBytes) / float64(res.BytesWritten); frac < 0.85 {
		t.Fatalf("tpcc fsync byte fraction %.2f, want > 0.85 (paper: >90%%)", frac)
	}
}

func TestKernelGrepReadOnly(t *testing.T) {
	res := runWorkload(t, &KernelGrep{Files: 64, FileSize: 8 << 10}, 2, 0)
	if res.BytesWritten != 0 {
		t.Fatal("kernel-grep wrote data")
	}
	if res.Ops != 64 {
		t.Fatalf("grep visited %d files, want 64", res.Ops)
	}
}

func TestKernelMake(t *testing.T) {
	res := runWorkload(t, &KernelMake{Sources: 48}, 2, 30)
	if res.BytesRead == 0 || res.BytesWritten == 0 {
		t.Fatalf("no I/O: %+v", res)
	}
}

func TestRunThreadsPropagatesError(t *testing.T) {
	_, err := runThreads(3, func(tid int, rng *Rand, res *Result) error {
		if tid == 1 {
			return vfs.ErrInvalid
		}
		return nil
	})
	if err != vfs.ErrInvalid {
		t.Fatalf("err = %v", err)
	}
}

func TestSyncTrackerAccounting(t *testing.T) {
	st := newSyncTracker()
	st.wrote("/a", 100)
	st.wrote("/a", 50)
	st.wrote("/b", 10)
	if n := st.synced("/a"); n != 150 {
		t.Fatalf("synced = %d", n)
	}
	if n := st.synced("/a"); n != 0 {
		t.Fatalf("re-sync = %d", n)
	}
	st.forget("/b")
	if n := st.synced("/b"); n != 0 {
		t.Fatalf("forgotten file synced = %d", n)
	}
}
