package trace

import (
	"bytes"
	"strings"
	"testing"

	"hinfs/internal/nvmm"
	"hinfs/internal/pmfs"
	"hinfs/internal/vfs"
)

func testFS(t testing.TB) vfs.FileSystem {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := pmfs.Mkfs(dev, pmfs.Options{MaxInodes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Unmount() })
	return fs
}

func TestSerializeParseRoundTrip(t *testing.T) {
	tr := &Trace{Name: "demo", Files: 3, InitialSize: 8192, Ops: []Op{
		{Kind: Write, File: 0, Off: 100, Size: 50},
		{Kind: Read, File: 1, Off: 0, Size: 4096},
		{Kind: Fsync, File: 0},
		{Kind: Unlink, File: 2},
	}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "demo" || got.Files != 3 || got.InitialSize != 8192 {
		t.Fatalf("header %+v", got)
	}
	if len(got.Ops) != 4 {
		t.Fatalf("ops %d", len(got.Ops))
	}
	for i, op := range got.Ops {
		if op != tr.Ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, op, tr.Ops[i])
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(strings.NewReader("")); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Parse(strings.NewReader("bogus header\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := Parse(strings.NewReader("# hinfs-trace x 1 0\nteleport 0 0 0\n")); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestReplayCountsAndTimes(t *testing.T) {
	fs := testFS(t)
	tr := &Trace{Name: "t", Files: 2, InitialSize: 16384, Ops: []Op{
		{Kind: Write, File: 0, Off: 0, Size: 4096},
		{Kind: Write, File: 0, Off: 4096, Size: 4096},
		{Kind: Fsync, File: 0},
		{Kind: Read, File: 1, Off: 0, Size: 8192},
		{Kind: Unlink, File: 1},
	}}
	if err := tr.Prepare(fs); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Replay(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[Write] != 2 || res.Counts[Read] != 1 || res.Counts[Fsync] != 1 || res.Counts[Unlink] != 1 {
		t.Fatalf("counts %+v", res.Counts)
	}
	if res.BytesWritten != 8192 || res.BytesRead != 8192 {
		t.Fatalf("bytes %d/%d", res.BytesWritten, res.BytesRead)
	}
	if res.FsyncBytes != 8192 {
		t.Fatalf("fsync bytes %d", res.FsyncBytes)
	}
	if res.Total() <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestReplayAfterUnlinkRecreates(t *testing.T) {
	fs := testFS(t)
	tr := &Trace{Name: "t", Files: 1, InitialSize: 4096, Ops: []Op{
		{Kind: Unlink, File: 0},
		{Kind: Write, File: 0, Off: 0, Size: 128},
		{Kind: Read, File: 0, Off: 0, Size: 128},
	}}
	if err := tr.Prepare(fs); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Replay(fs); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Usr0(500)
	b := Usr0(500)
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("lengths differ")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestSyntheticFsyncShapes(t *testing.T) {
	// LASR must contain no fsync; Facebook must be fsync-dense with small
	// writes (paper §5.3, Fig. 2).
	lasr := LASR(2000)
	for _, op := range lasr.Ops {
		if op.Kind == Fsync {
			t.Fatal("LASR contains fsync")
		}
	}
	fb := Facebook(2000)
	var writes, fsyncs, wbytes int
	for _, op := range fb.Ops {
		switch op.Kind {
		case Write:
			writes++
			wbytes += op.Size
		case Fsync:
			fsyncs++
		}
	}
	if fsyncs == 0 || float64(fsyncs)/float64(writes) < 0.5 {
		t.Fatalf("facebook fsync density too low: %d/%d", fsyncs, writes)
	}
	if mean := wbytes / writes; mean >= 1024 {
		t.Fatalf("facebook mean write size %dB, want < 1KB", mean)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"usr0", "usr1", "lasr", "facebook"} {
		tr, err := ByName(name, 100)
		if err != nil || tr.Name != name {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nope", 10); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestReplaySyntheticOnPMFS(t *testing.T) {
	fs := testFS(t)
	tr := Usr0(1500)
	if err := tr.Prepare(fs); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Replay(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[Write] == 0 || res.Counts[Read] == 0 || res.Counts[Fsync] == 0 {
		t.Fatalf("degenerate trace: %+v", res.Counts)
	}
	// Fig. 2 target for Usr0: moderate fsync-byte share.
	frac := float64(res.FsyncBytes) / float64(res.BytesWritten)
	if frac < 0.1 || frac > 0.7 {
		t.Fatalf("usr0 fsync byte fraction %.2f outside the moderate band", frac)
	}
}

func TestReplayLatencyPercentiles(t *testing.T) {
	tr, err := ByName("usr0", 400)
	if err != nil {
		t.Fatal(err)
	}
	fs := testFS(t)
	if err := tr.Prepare(fs); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Replay(fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kind{Read, Write, Unlink, Fsync} {
		h := res.Lat[k]
		if h.Count != res.Counts[k] {
			t.Errorf("%s: hist count %d != op count %d", k, h.Count, res.Counts[k])
		}
		if h.Count == 0 {
			continue
		}
		p50, p90, p99, p999 := h.Percentiles()
		if p50 > p90 || p90 > p99 || p99 > p999 {
			t.Errorf("%s: percentiles not ordered: %d %d %d %d", k, p50, p90, p99, p999)
		}
		if p999 > h.Max {
			t.Errorf("%s: p999 %d above max %d", k, p999, h.Max)
		}
		// Sanity: the histogram's total matches the wall-clock sum to
		// within measurement noise (both record the same durations).
		if h.Sum <= 0 || h.Sum > 2*res.Time[k].Nanoseconds()+1 {
			t.Errorf("%s: hist sum %d vs time %d", k, h.Sum, res.Time[k].Nanoseconds())
		}
	}
}
