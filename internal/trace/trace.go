// Package trace provides the system-call-level I/O trace machinery of the
// paper's §5.3: a trace record format, a text serialization so real traces
// can be loaded, synthesizers reproducing the published characteristics of
// the FIU Usr0/Usr1, LASR and MobiBench Facebook traces, and a replayer
// that times each operation class separately (read/write/unlink/fsync —
// exactly the four op types the paper extracts and replays).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"hinfs/internal/obs"
	"hinfs/internal/vfs"
	"hinfs/internal/workload"
)

// Kind is a trace operation type.
type Kind int

// The four operation classes the paper replays (§5.3).
const (
	Read Kind = iota
	Write
	Unlink
	Fsync
	nKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Unlink:
		return "unlink"
	case Fsync:
		return "fsync"
	}
	return "unknown"
}

// Op is one trace record.
type Op struct {
	Kind Kind
	// File is the trace-local file identifier.
	File int
	// Off and Size locate the I/O (Read/Write only).
	Off  int64
	Size int
}

// Trace is a replayable op stream.
type Trace struct {
	// Name labels the trace (e.g. "usr0").
	Name string
	// Files is the number of distinct files referenced.
	Files int
	// InitialSize pre-sizes every file before replay.
	InitialSize int64
	// Ops is the operation stream.
	Ops []Op
}

// Write serializes the trace in a line-oriented text format:
//
//	# hinfs-trace <name> <files> <initialSize>
//	<kind> <file> <off> <size>
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# hinfs-trace %s %d %d\n", t.Name, t.Files, t.InitialSize)
	for _, op := range t.Ops {
		fmt.Fprintf(bw, "%s %d %d %d\n", op.Kind, op.File, op.Off, op.Size)
	}
	return bw.Flush()
}

// Parse reads the text format produced by Write.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Trace{}
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	var tag string
	if _, err := fmt.Sscanf(sc.Text(), "# %s %s %d %d", &tag, &t.Name, &t.Files, &t.InitialSize); err != nil || tag != "hinfs-trace" {
		return nil, fmt.Errorf("trace: bad header %q", sc.Text())
	}
	line := 1
	for sc.Scan() {
		line++
		var kind string
		var op Op
		if _, err := fmt.Sscanf(sc.Text(), "%s %d %d %d", &kind, &op.File, &op.Off, &op.Size); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		switch kind {
		case "read":
			op.Kind = Read
		case "write":
			op.Kind = Write
		case "unlink":
			op.Kind = Unlink
		case "fsync":
			op.Kind = Fsync
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", line, kind)
		}
		t.Ops = append(t.Ops, op)
	}
	return t, sc.Err()
}

// ReplayResult reports a replay run.
type ReplayResult struct {
	// Time is wall-clock time spent per operation class (Fig. 12's
	// breakdown).
	Time [nKinds]time.Duration
	// Counts is the number of operations per class.
	Counts [nKinds]int64
	// Lat holds the per-class latency distribution of the same replay
	// (log-bucketed; Percentiles() gives p50/p90/p99/p999).
	Lat [nKinds]obs.HistSnapshot
	// BytesWritten and BytesRead are the user-visible volumes.
	BytesWritten int64
	BytesRead    int64
	// FsyncBytes counts written bytes outstanding at each fsync (Fig. 2).
	FsyncBytes int64
}

// Total returns the summed op time.
func (r *ReplayResult) Total() time.Duration {
	var d time.Duration
	for _, t := range r.Time {
		d += t
	}
	return d
}

// TimeFor returns the time spent in the given class.
func (r *ReplayResult) TimeFor(k Kind) time.Duration { return r.Time[k] }

func tracePath(id int) string { return fmt.Sprintf("/trace/f%d", id) }

// Prepare creates the trace's file population on fs.
func (t *Trace) Prepare(fs vfs.FileSystem) error {
	if err := fs.Mkdir("/trace"); err != nil && err != vfs.ErrExist {
		return err
	}
	rng := workload.NewRand(123)
	var buf []byte
	for i := 0; i < t.Files; i++ {
		f, err := fs.Create(tracePath(i))
		if err != nil {
			return err
		}
		if t.InitialSize > 0 {
			const chunk = 1 << 20
			for off := int64(0); off < t.InitialSize; off += chunk {
				n := int64(chunk)
				if t.InitialSize-off < n {
					n = t.InitialSize - off
				}
				buf = payload(rng, buf, int(n))
				if _, err := f.WriteAt(buf, off); err != nil {
					f.Close()
					return err
				}
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func payload(rng *workload.Rand, buf []byte, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	for i := 0; i < n; i += 512 {
		buf[i] = byte(rng.Uint64())
	}
	return buf
}

// Replay executes the trace against fs, timing each op class. Files are
// opened lazily and re-created on first touch after an unlink, matching
// how the paper extracts read/write/unlink/fsync from syscall traces.
func (t *Trace) Replay(fs vfs.FileSystem) (res ReplayResult, err error) {
	var hists [nKinds]obs.Hist
	// Named result: the snapshot must land in res even on early error
	// returns.
	defer func() {
		for k := range hists {
			res.Lat[k] = hists[k].Snapshot()
		}
	}()
	handles := make(map[int]vfs.File)
	dirty := make(map[int]int64)
	defer func() {
		for _, f := range handles {
			f.Close()
		}
	}()
	get := func(id int) (vfs.File, error) {
		if f, ok := handles[id]; ok {
			return f, nil
		}
		f, err := fs.Open(tracePath(id), vfs.OCreate|vfs.ORdwr)
		if err != nil {
			return nil, err
		}
		handles[id] = f
		return f, nil
	}
	rng := workload.NewRand(5)
	var buf []byte
	for _, op := range t.Ops {
		start := time.Now()
		switch op.Kind {
		case Read:
			f, err := get(op.File)
			if err != nil {
				return res, err
			}
			buf = payload(rng, buf, op.Size)
			n, err := f.ReadAt(buf, op.Off)
			if err != nil && err != io.EOF {
				return res, err
			}
			res.BytesRead += int64(n)
		case Write:
			f, err := get(op.File)
			if err != nil {
				return res, err
			}
			buf = payload(rng, buf, op.Size)
			n, err := f.WriteAt(buf, op.Off)
			if err != nil {
				return res, err
			}
			res.BytesWritten += int64(n)
			dirty[op.File] += int64(n)
		case Unlink:
			if f, ok := handles[op.File]; ok {
				f.Close()
				delete(handles, op.File)
			}
			fs.Unlink(tracePath(op.File))
			delete(dirty, op.File)
		case Fsync:
			f, err := get(op.File)
			if err != nil {
				return res, err
			}
			if err := f.Fsync(); err != nil {
				return res, err
			}
			res.FsyncBytes += dirty[op.File]
			delete(dirty, op.File)
		}
		d := time.Since(start)
		res.Time[op.Kind] += d
		hists[op.Kind].Observe(d.Nanoseconds())
		res.Counts[op.Kind]++
	}
	return res, nil
}
