package trace

import (
	"fmt"

	"hinfs/internal/workload"
)

// SynthParams shape a synthetic syscall trace. The four presets below are
// parameterized from the characteristics the paper reports for its traces:
// the fsync-byte fractions of Fig. 2, the Facebook trace's sub-1 KB mean
// I/O size and sync frequency (§5.3), LASR's absence of fsync, and the
// desktop traces' moderate locality.
type SynthParams struct {
	Name string
	// Files is the file population.
	Files int
	// InitialSize pre-sizes each file.
	InitialSize int64
	// Ops is the trace length.
	Ops int
	// ReadFrac, UnlinkFrac are op-mix fractions; writes fill the rest.
	ReadFrac   float64
	UnlinkFrac float64
	// MeanIO is the mean I/O size in bytes.
	MeanIO int
	// SyncedFileFrac is the fraction of files whose writes are fsynced.
	SyncedFileFrac float64
	// SyncEveryWrites issues an fsync after this many writes to a synced
	// file (1 = after every write).
	SyncEveryWrites int
	// Seed drives the deterministic generator.
	Seed uint64
}

// Synthesize builds a trace from params.
func Synthesize(p SynthParams) *Trace {
	rng := workload.NewRand(p.Seed)
	t := &Trace{Name: p.Name, Files: p.Files, InitialSize: p.InitialSize}
	// Spread the synced files uniformly across the population (by hash),
	// so locality skew does not concentrate traffic on synced files and
	// the fsync-byte fraction tracks SyncedFileFrac.
	synced := func(file int) bool {
		h := uint32(file) * 2654435761
		return float64(h%1000) < p.SyncedFileFrac*1000
	}
	writesSince := make([]int, p.Files)
	if p.SyncEveryWrites <= 0 {
		p.SyncEveryWrites = 4
	}
	for i := 0; i < p.Ops; i++ {
		r := rng.Float64()
		// Locality: most ops hit the hot 20% of files.
		file := rng.HotIntn(p.Files)
		switch {
		case r < p.ReadFrac:
			size := p.MeanIO/2 + rng.Intn(p.MeanIO)
			off := rng.Int63n(maxInt64(p.InitialSize-int64(size), 1))
			t.Ops = append(t.Ops, Op{Kind: Read, File: file, Off: off, Size: size})
		case r < p.ReadFrac+p.UnlinkFrac:
			t.Ops = append(t.Ops, Op{Kind: Unlink, File: file})
			writesSince[file] = 0
		default:
			size := p.MeanIO/2 + rng.Intn(p.MeanIO)
			off := rng.Int63n(maxInt64(p.InitialSize-int64(size), 1))
			t.Ops = append(t.Ops, Op{Kind: Write, File: file, Off: off, Size: size})
			if synced(file) {
				writesSince[file]++
				if writesSince[file] >= p.SyncEveryWrites {
					t.Ops = append(t.Ops, Op{Kind: Fsync, File: file})
					writesSince[file] = 0
				}
			}
		}
	}
	return t
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// The four published traces (Table 1), scaled to run in seconds. The
// fsync-byte fractions target Fig. 2: Usr0/Usr1 moderate, LASR zero,
// Facebook high with sub-1 KB writes.

// Usr0 models the FIU research-desktop trace.
func Usr0(ops int) *Trace {
	return Synthesize(SynthParams{
		Name: "usr0", Files: 128, InitialSize: 256 << 10, Ops: ops,
		ReadFrac: 0.30, UnlinkFrac: 0.02, MeanIO: 8 << 10,
		SyncedFileFrac: 0.35, SyncEveryWrites: 2, Seed: 1,
	})
}

// Usr1 models the FIU trace collected at a different time: slightly more
// writes, similar sync discipline.
func Usr1(ops int) *Trace {
	return Synthesize(SynthParams{
		Name: "usr1", Files: 128, InitialSize: 256 << 10, Ops: ops,
		ReadFrac: 0.25, UnlinkFrac: 0.02, MeanIO: 8 << 10,
		SyncedFileFrac: 0.30, SyncEveryWrites: 2, Seed: 2,
	})
}

// LASR models the LASR software-development trace: no fsync at all
// (Fig. 2) and a read-heavy mix.
func LASR(ops int) *Trace {
	return Synthesize(SynthParams{
		Name: "lasr", Files: 128, InitialSize: 128 << 10, Ops: ops,
		ReadFrac: 0.55, UnlinkFrac: 0.03, MeanIO: 4 << 10,
		SyncedFileFrac: 0, Seed: 3,
	})
}

// Facebook models the MobiBench Facebook trace: small writes (< 1 KB
// mean, §5.3) with fsync after nearly every write, so sync operations are
// too frequent to coalesce writes in the buffer.
func Facebook(ops int) *Trace {
	return Synthesize(SynthParams{
		Name: "facebook", Files: 64, InitialSize: 64 << 10, Ops: ops,
		ReadFrac: 0.25, UnlinkFrac: 0.01, MeanIO: 512,
		SyncedFileFrac: 0.95, SyncEveryWrites: 1, Seed: 4,
	})
}

// ByName returns the named synthetic trace.
func ByName(name string, ops int) (*Trace, error) {
	switch name {
	case "usr0":
		return Usr0(ops), nil
	case "usr1":
		return Usr1(ops), nil
	case "lasr":
		return LASR(ops), nil
	case "facebook":
		return Facebook(ops), nil
	}
	return nil, fmt.Errorf("trace: unknown synthetic trace %q", name)
}
