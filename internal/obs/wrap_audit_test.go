package obs

import (
	"reflect"
	"testing"

	"hinfs/internal/vfs"
)

// The wrapper deliberately does not time these methods; everything else
// on the two interfaces must increment an op-class histogram. A method
// added to vfs.FileSystem or vfs.File without either instrumentation or
// an entry here fails TestWrapFSCoversInterfaces — the audit that keeps
// the observability layer from silently rotting as the VFS grows.
var wrapExemptFS = map[string]string{
	"Unmount": "teardown, not a workload op",
}

var wrapExemptFile = map[string]string{
	"Size":  "local metadata read, no I/O",
	"Close": "handle lifecycle, not a workload op",
}

// auditArg synthesizes a call argument for a reflected parameter type.
func auditArg(t *testing.T, typ reflect.Type) reflect.Value {
	switch typ.Kind() {
	case reflect.String:
		return reflect.ValueOf("/audit")
	case reflect.Int, reflect.Int64:
		return reflect.Zero(typ)
	case reflect.Slice:
		return reflect.MakeSlice(typ, 8, 8)
	}
	t.Fatalf("no argument synthesis for %v; extend auditArg", typ)
	return reflect.Value{}
}

func totalOps(c *Collector) int64 {
	s := c.Snapshot()
	var n int64
	for _, op := range OpClasses() {
		n += s.Op(op).Count
	}
	return n
}

// auditMethods calls every method of iface on target, asserting the
// collector records an op for each non-exempt one.
func auditMethods(t *testing.T, c *Collector, target reflect.Value, iface reflect.Type, exempt map[string]string) {
	for i := 0; i < iface.NumMethod(); i++ {
		m := iface.Method(i)
		args := make([]reflect.Value, 0, m.Type.NumIn())
		for a := 0; a < m.Type.NumIn(); a++ {
			args = append(args, auditArg(t, m.Type.In(a)))
		}
		before := totalOps(c)
		target.MethodByName(m.Name).Call(args)
		after := totalOps(c)
		if _, ok := exempt[m.Name]; ok {
			if after != before {
				t.Errorf("%s.%s is exempt (%s) but recorded an op", iface.Name(), m.Name, exempt[m.Name])
			}
			continue
		}
		if after <= before {
			t.Errorf("%s.%s recorded no op-class observation: the obs wrapper does not cover it", iface.Name(), m.Name)
		}
	}
}

// TestWrapFSCoversInterfaces walks vfs.FileSystem and vfs.File by
// reflection and fails for any interface method the obs wrapper passes
// through untimed (unless exempted above with a reason).
func TestWrapFSCoversInterfaces(t *testing.T) {
	c := New()
	fs := WrapFS(fakeFS{}, c)
	auditMethods(t, c,
		reflect.ValueOf(fs),
		reflect.TypeOf((*vfs.FileSystem)(nil)).Elem(),
		wrapExemptFS)

	f, err := fs.Create("/audit")
	if err != nil {
		t.Fatal(err)
	}
	auditMethods(t, c,
		reflect.ValueOf(f),
		reflect.TypeOf((*vfs.File)(nil)).Elem(),
		wrapExemptFile)
}

// recordingFS notes the paths it is asked for, so composition tests can
// check both that the wrapper observed and that the inner layer ran.
type recordingFS struct {
	fakeFS
	paths []string
}

func (r *recordingFS) Create(path string) (vfs.File, error) {
	r.paths = append(r.paths, path)
	return r.fakeFS.Create(path)
}

// TestWrapFSCoversSub checks the wrapper still observes when layered
// over a vfs.Sub view — the composition every server tenant runs under
// (obs outermost, Sub re-anchoring paths beneath it).
func TestWrapFSCoversSub(t *testing.T) {
	base := &recordingFS{}
	sub, err := vfs.Sub(base, "/tenant")
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	fs := WrapFS(sub, c)
	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.Op(OpCreate).Count != 1 || s.Op(OpWrite).Count != 1 {
		t.Fatalf("sub-view ops not observed: create=%d write=%d",
			s.Op(OpCreate).Count, s.Op(OpWrite).Count)
	}
	// And the create really went through the Sub re-anchoring.
	if len(base.paths) != 1 || base.paths[0] != "/tenant/f" {
		t.Fatalf("inner create paths = %v, want [/tenant/f]", base.paths)
	}
}
