package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable nanosecond clock for window tests.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() int64      { return c.ns.Load() }
func (c *fakeClock) advance(d int64) { c.ns.Add(d) }

func TestWindowsRotation(t *testing.T) {
	clk := &fakeClock{}
	w := NewWindowsClock(time.Second, 4, clk.now)

	w.Observe(100)
	w.Observe(200)
	clk.advance(int64(time.Second)) // epoch 1
	w.Observe(300)

	snaps := w.Snapshot(0)
	if len(snaps) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(snaps), snaps)
	}
	if snaps[0].Epoch != 0 || snaps[0].Hist.Count != 2 {
		t.Fatalf("window 0 = epoch %d count %d", snaps[0].Epoch, snaps[0].Hist.Count)
	}
	if snaps[1].Epoch != 1 || snaps[1].Hist.Count != 1 {
		t.Fatalf("window 1 = epoch %d count %d", snaps[1].Epoch, snaps[1].Hist.Count)
	}
	if snaps[0].StartNS != 0 || snaps[1].StartNS != int64(time.Second) {
		t.Fatalf("window starts %d, %d", snaps[0].StartNS, snaps[1].StartNS)
	}

	// Advance past the ring size: epoch 0's slot is recycled for epoch 4,
	// and the old contents must not leak into it.
	clk.advance(3 * int64(time.Second)) // epoch 4
	w.Observe(400)
	snaps = w.Snapshot(0)
	for _, s := range snaps {
		if s.Epoch == 0 {
			t.Fatal("recycled epoch 0 still visible")
		}
		if s.Epoch == 4 && s.Hist.Count != 1 {
			t.Fatalf("recycled slot count = %d, want 1", s.Hist.Count)
		}
	}

	// Snapshot(last) trims to the most recent windows.
	if got := w.Snapshot(1); len(got) != 1 || got[0].Epoch != 4 {
		t.Fatalf("Snapshot(1) = %+v", got)
	}
}

func TestWindowsMergedExactCounts(t *testing.T) {
	clk := &fakeClock{}
	w := NewWindowsClock(time.Second, 4, clk.now)
	// Two windows with known observations.
	vals0 := []int64{1000, 2000, 4000, 4100}
	for _, v := range vals0 {
		w.Observe(v)
	}
	clk.advance(int64(time.Second))
	vals1 := []int64{8000, 16000}
	for _, v := range vals1 {
		w.Observe(v)
	}

	m := w.Merged(0)
	if want := int64(len(vals0) + len(vals1)); m.Count != want {
		t.Fatalf("merged count = %d, want %d", m.Count, want)
	}
	// Bucket counts merge exactly: the same values observed into one
	// histogram directly must produce identical bucket counts.
	var direct Hist
	for _, v := range append(append([]int64{}, vals0...), vals1...) {
		direct.Observe(v)
	}
	ds := direct.Snapshot()
	if len(ds.Buckets) != len(m.Buckets) {
		t.Fatalf("bucket sets differ: direct %d, merged %d", len(ds.Buckets), len(m.Buckets))
	}
	for i := range ds.Buckets {
		if ds.Buckets[i].Low != m.Buckets[i].Low || ds.Buckets[i].Count != m.Buckets[i].Count {
			t.Fatalf("bucket %d: direct {%d,%d} merged {%d,%d}", i,
				ds.Buckets[i].Low, ds.Buckets[i].Count, m.Buckets[i].Low, m.Buckets[i].Count)
		}
	}
}

// TestWindowsQuantileMonotonicAcrossBoundary observes a rising latency
// profile that straddles several window boundaries and checks that the
// merged view's quantiles are monotone and bracket the observed range —
// the property hinfs-top depends on when a scrape lands mid-rotation.
func TestWindowsQuantileMonotonicAcrossBoundary(t *testing.T) {
	clk := &fakeClock{}
	w := NewWindowsClock(time.Second, 8, clk.now)
	lo, hi := int64(1000), int64(0)
	v := lo
	for e := 0; e < 6; e++ {
		for i := 0; i < 100; i++ {
			w.Observe(v)
			if v > hi {
				hi = v
			}
			v += 97 // strictly rising across all windows
		}
		clk.advance(int64(time.Second))
	}
	m := w.Merged(0)
	if m.Count != 600 {
		t.Fatalf("count = %d", m.Count)
	}
	p50, p90, p99, p999 := m.Percentiles()
	if !(p50 <= p90 && p90 <= p99 && p99 <= p999) {
		t.Fatalf("quantiles not monotone: %d %d %d %d", p50, p90, p99, p999)
	}
	if p50 < lo || p999 > 2*hi {
		t.Fatalf("quantiles outside observed range [%d,%d]: p50=%d p999=%d", lo, hi, p50, p999)
	}
	// Merging fewer windows must only raise the quantiles (the early,
	// faster windows drop out of the rising profile).
	m2 := w.Merged(2)
	if q, q2 := m.Quantile(0.5), m2.Quantile(0.5); q2 < q {
		t.Fatalf("recent-window p50 %d below all-window p50 %d for a rising profile", q2, q)
	}
}

// TestWindowsConcurrent hammers one ring from writer goroutines while the
// clock advances and readers merge, under -race. Every observation must
// land in some window or be dropped cleanly (stale-slot race); the final
// quiesced ring must account for exactly the observations that landed in
// retained epochs.
func TestWindowsConcurrent(t *testing.T) {
	clk := &fakeClock{}
	w := NewWindowsClock(time.Millisecond, 4, clk.now)
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Clock mover: advances through ~20 epochs during the run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.advance(int64(time.Millisecond) / 250)
			}
		}
	}()
	// Readers: merge continuously; result consistency is checked by -race
	// and the torn-snapshot re-check inside Snapshot.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m := w.Merged(0)
					if m.Count < 0 {
						t.Error("negative merged count")
						return
					}
				}
			}
		}()
	}
	var landed atomic.Int64
	var writerWg sync.WaitGroup
	for i := 0; i < writers; i++ {
		writerWg.Add(1)
		go func(i int) {
			defer writerWg.Done()
			for j := 0; j < perWriter; j++ {
				w.Observe(int64(1000 + i*100 + j%50))
				landed.Add(1)
			}
		}(i)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()

	// Quiesced: the retained windows can hold at most everything written;
	// with a 4-slot ring and ~20 epochs most observations have rotated
	// out, but whatever remains must be internally consistent.
	m := w.Merged(0)
	if m.Count > landed.Load() {
		t.Fatalf("merged count %d exceeds observations %d", m.Count, landed.Load())
	}
	var perWindow int64
	for _, s := range w.Snapshot(0) {
		perWindow += s.Hist.Count
	}
	if perWindow != m.Count {
		t.Fatalf("window sum %d != merged count %d on a quiet ring", perWindow, m.Count)
	}
}

func TestWindowsNilAndDefaults(t *testing.T) {
	var w *Windows
	w.Observe(1)
	w.ObserveSince(time.Now())
	if w.Snapshot(0) != nil || w.Merged(0).Count != 0 || w.Width() != 0 {
		t.Fatal("nil Windows must read as empty")
	}
	d := NewWindows(0, 0)
	if d.Width() != DefaultWindow || len(d.slots) != DefaultWindowCount {
		t.Fatalf("defaults: width %v slots %d", d.Width(), len(d.slots))
	}
	d.Observe(5)
	if got := d.Merged(0).Count; got != 1 {
		t.Fatalf("default ring count = %d", got)
	}
}

func TestWindowsOldest(t *testing.T) {
	clk := &fakeClock{}
	w := NewWindowsClock(time.Second, 4, clk.now)

	if _, ok := w.Oldest(); ok {
		t.Fatal("untouched ring reports an oldest window")
	}
	w.Observe(100)
	if o, ok := w.Oldest(); !ok || o != 0 {
		t.Fatalf("Oldest = %d,%v; want 0,true", o, ok)
	}
	// Advance past the ring: epoch 0 is recycled, oldest retained is the
	// first epoch still inside the 4-window ring.
	for e := 1; e <= 6; e++ {
		clk.advance(int64(time.Second))
		w.Observe(int64(e))
	}
	o, ok := w.Oldest()
	if want := int64(3 * time.Second); !ok || o != want {
		t.Fatalf("Oldest = %d,%v; want %d,true", o, ok, want)
	}
	var nilW *Windows
	if _, ok := nilW.Oldest(); ok {
		t.Fatal("nil Windows reports an oldest window")
	}
}
