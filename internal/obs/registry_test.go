package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestRegistryNamesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := New()
	c.Op(OpRead, 5*time.Microsecond)
	c.Add(CtrEagerBlocks, 3)
	r.RegisterCollector("sys-a", c)
	r.Register("answer", func() any { return 42 })
	if got, want := r.Names(), []string{"answer", "sys-a"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("names %v", got)
	}
	snap := r.Snapshot()
	if snap["answer"] != 42 {
		t.Fatalf("answer %v", snap["answer"])
	}
	cs, ok := snap["sys-a"].(*Snapshot)
	if !ok {
		t.Fatalf("sys-a type %T", snap["sys-a"])
	}
	if cs.Op(OpRead).Count != 1 || cs.Counter(CtrEagerBlocks) != 3 {
		t.Fatalf("collector snapshot %+v", cs)
	}
}

func TestPublishTwiceNoPanic(t *testing.T) {
	r := NewRegistry()
	r.Publish("obs-test-publish")
	r.Publish("obs-test-publish") // expvar would panic on a raw re-publish
}

func TestServeDebugEndpoints(t *testing.T) {
	r := NewRegistry()
	c := New()
	c.Op(OpWrite, time.Millisecond)
	c.Path(PathLazyWrite, 12345)
	r.RegisterCollector("hinfs", c)
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var obsBody map[string]*Snapshot
	if err := json.Unmarshal(get("/debug/obs"), &obsBody); err != nil {
		t.Fatalf("/debug/obs not JSON: %v", err)
	}
	hs, ok := obsBody["hinfs"]
	if !ok {
		t.Fatalf("/debug/obs missing hinfs: %v", obsBody)
	}
	if hs.Op(OpWrite).Count != 1 || hs.Path(PathLazyWrite).Count != 1 {
		t.Fatalf("scraped snapshot %+v", hs)
	}

	var vars map[string]any
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["obs"]; !ok {
		t.Fatal("/debug/vars missing obs")
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.RegisterCollector(fmt.Sprintf("c%d", i), New())
				r.Snapshot()
				r.Names()
			}
		}(i)
	}
	wg.Wait()
	if len(r.Names()) != 4 {
		t.Fatalf("names %v", r.Names())
	}
}
