package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTracerRingWrap(t *testing.T) {
	// One shard makes the overwrite order deterministic.
	tr := newTracer(4, 1)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Start: int64(i), Op: OpWrite})
	}
	if tr.Recorded() != 10 {
		t.Fatalf("recorded %d", tr.Recorded())
	}
	if tr.Len() != 4 {
		t.Fatalf("len %d", tr.Len())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans %d", len(spans))
	}
	// The four newest (6..9), sorted by start.
	for i, s := range spans {
		if want := int64(6 + i); s.Start != want {
			t.Fatalf("span %d start %d, want %d", i, s.Start, want)
		}
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(256)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Record(Span{
					Start:   int64(id*per + i),
					Dur:     int64(i),
					Op:      OpWrite,
					Path:    PathLazyWrite,
					Shard:   int32(id),
					Outcome: "ok",
				})
			}
		}(w)
	}
	wg.Wait()
	if tr.Recorded() != workers*per {
		t.Fatalf("recorded %d, want %d", tr.Recorded(), workers*per)
	}
	if n := tr.Len(); n > 256 || n == 0 {
		t.Fatalf("len %d", n)
	}
	spans := tr.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("spans not sorted by start")
		}
	}
}

func TestTracerDisabled(t *testing.T) {
	tr := NewTracer(16)
	tr.SetEnabled(false)
	tr.Record(Span{Start: 1})
	if tr.Recorded() != 0 || tr.Len() != 0 {
		t.Fatal("disabled tracer recorded")
	}
	tr.SetEnabled(true)
	tr.Record(Span{Start: 2})
	if tr.Len() != 1 {
		t.Fatal("re-enabled tracer did not record")
	}
}

func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{})
	tr.SetEnabled(true)
	if tr.Enabled() || tr.Len() != 0 || tr.Recorded() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer not inert")
	}
}

func TestTracerDumpJSONLines(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Span{Start: 5, Dur: 7, Op: OpFsync, Path: PathWriteback,
		File: 42, Size: 3, Shard: 1, Outcome: "age"})
	tr.Record(Span{Start: 1, Dur: 2, Op: OpRead, Path: PathDirectRead, Shard: -1})
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	// Ordered by start: the read first.
	if lines[0]["op"] != "read" || lines[0]["path"] != "direct-read" {
		t.Fatalf("line 0: %v", lines[0])
	}
	if lines[1]["op"] != "fsync" || lines[1]["path"] != "writeback-batch" ||
		lines[1]["file"] != float64(42) || lines[1]["outcome"] != "age" {
		t.Fatalf("line 1: %v", lines[1])
	}
}

func TestCollectorSpanForwarding(t *testing.T) {
	c := New()
	c.Span(Span{Start: 1}) // no tracer attached: dropped, no panic
	tr := NewTracer(8)
	c.SetTracer(tr)
	c.Span(Span{Start: 2})
	if tr.Len() != 1 {
		t.Fatal("span not forwarded")
	}
	if c.Tracer() != tr {
		t.Fatal("tracer accessor")
	}
	var nc *Collector
	nc.Span(Span{})
	nc.SetTracer(tr)
	if nc.Tracer() != nil {
		t.Fatal("nil collector tracer")
	}
}
