// Package flight is a black-box flight recorder persisted in NVMM: a
// ring of fixed-width, CRC-protected records appended with non-temporal
// stores and *no per-record fence*. The write path costs one WriteNT
// (two cachelines) per operation and never blocks on durability; the
// price is that after a crash the tail of the ring may be torn or
// missing. The decoder embraces that: every slot is validated
// independently (sequence number consistent with its slot position +
// CRC over the record body), so a torn final record is detected and
// dropped rather than corrupting the report, and the surviving suffix
// is exactly the set of records whose lines happened to reach
// persistence before power cut.
//
// Durability semantics (what a decoded record proves — see DESIGN.md):
// a CRC-valid record for op X proves X *completed* before the crash
// (the record is written only after the op returns). It does NOT prove
// X's own effects are durable — except when X carries its own ordering
// (fsync/sync), whose persist events necessarily precede the record's.
package flight

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"

	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
)

// Region layout:
//
//	[0,64)              header (one cacheline): magic, version, geometry
//	[64, 64+N*128)      N record slots, 128 bytes (two cachelines) each
//
// Record slot layout (little-endian; crc covers [0,120)):
//
//	off  size  field
//	  0     8  seq     1-based sequence number; slot = (seq-1) % N
//	  8     8  trace   wire trace ID (joins slow-op logs, op schedules)
//	 16     8  ino     inode number (0 when the op has none)
//	 24     8  off     byte offset (int64 bits; 0 when n/a)
//	 32     8  start   op start, unix nanoseconds
//	 40     4  len     I/O length in bytes
//	 44     1  op      canonical op code (Op* constants)
//	 45     1  result  0 = ok, else the server status / error code
//	 46     1  tlen    tenant-name length (<= 16)
//	 47    16  tenant  tenant name bytes, zero-padded
//	 63     1  pad
//	 64    48  stages  [obs.NumStages]u64 per-stage nanoseconds
//	112     8  reserved
//	120     4  crc     IEEE CRC-32 over bytes [0,120)
//	124     4  pad
const (
	HeaderSize = 64
	SlotSize   = 128

	headerMagic   = 0x464c495448494e46 // "FLITHINF"
	headerVersion = 1

	// MaxTenant is the longest tenant name a record stores; longer names
	// are truncated (the decoder reports what was stored).
	MaxTenant = 16

	crcEnd = 120
)

// Canonical op codes. The recorder is shared by the server (proto ops),
// the crash explorer (workload ops) and the direct-FS wrapper, so the
// record carries its own vocabulary rather than any one caller's.
const (
	OpUnknown uint8 = iota
	OpOpen
	OpCreate
	OpClose
	OpRead
	OpWrite
	OpFsync
	OpTruncate
	OpMkdir
	OpRmdir
	OpUnlink
	OpRename
	OpStat
	OpReadDir
	OpSync
)

// OpName returns the display name for a canonical op code.
func OpName(op uint8) string {
	switch op {
	case OpOpen:
		return "open"
	case OpCreate:
		return "create"
	case OpClose:
		return "close"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFsync:
		return "fsync"
	case OpTruncate:
		return "truncate"
	case OpMkdir:
		return "mkdir"
	case OpRmdir:
		return "rmdir"
	case OpUnlink:
		return "unlink"
	case OpRename:
		return "rename"
	case OpStat:
		return "stat"
	case OpReadDir:
		return "readdir"
	case OpSync:
		return "sync"
	}
	return "unknown"
}

// Record is one flight-recorder entry, both the write-side input and the
// decode-side output.
type Record struct {
	Seq    uint64
	Trace  uint64
	Ino    uint64
	Off    int64
	Start  int64 // unix nanoseconds at op start
	Len    uint32
	Op     uint8
	Result uint8
	Tenant string
	Stages [obs.NumStages]int64
}

var crcTable = crc32.MakeTable(crc32.IEEE)

// crcBody is crc32.ChecksumIEEE, hand-rolled: the stdlib entry point
// dispatches through an arch-specific function variable, which makes
// escape analysis treat its argument as leaking — and that would force
// the record buffer in Record to the heap, breaking the zero-alloc
// contract of the append path.
func crcBody(b []byte) uint32 {
	c := ^uint32(0)
	for _, x := range b {
		c = crcTable[byte(c)^x] ^ (c >> 8)
	}
	return ^c
}

// encode serializes r (with the given seq) into buf. buf must be
// SlotSize bytes; the caller provides it so the hot path stays
// allocation-free.
func encode(buf *[SlotSize]byte, r *Record, seq uint64) {
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint64(buf[0:], seq)
	binary.LittleEndian.PutUint64(buf[8:], r.Trace)
	binary.LittleEndian.PutUint64(buf[16:], r.Ino)
	binary.LittleEndian.PutUint64(buf[24:], uint64(r.Off))
	binary.LittleEndian.PutUint64(buf[32:], uint64(r.Start))
	binary.LittleEndian.PutUint32(buf[40:], r.Len)
	buf[44] = r.Op
	buf[45] = r.Result
	t := r.Tenant
	if len(t) > MaxTenant {
		t = t[:MaxTenant]
	}
	buf[46] = uint8(len(t))
	copy(buf[47:47+MaxTenant], t)
	for i, ns := range r.Stages {
		binary.LittleEndian.PutUint64(buf[64+8*i:], uint64(ns))
	}
	binary.LittleEndian.PutUint32(buf[crcEnd:], crcBody(buf[:crcEnd]))
}

// decodeSlot parses one slot. ok=false means the slot holds no valid
// record; torn=true additionally means it holds a *partially persisted*
// one (non-zero bytes that fail the CRC) — the torn-tail signature.
func decodeSlot(slot []byte) (r Record, ok, torn bool) {
	zero := true
	for _, b := range slot {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return Record{}, false, false
	}
	if crcBody(slot[:crcEnd]) != binary.LittleEndian.Uint32(slot[crcEnd:]) {
		return Record{}, false, true
	}
	r.Seq = binary.LittleEndian.Uint64(slot[0:])
	r.Trace = binary.LittleEndian.Uint64(slot[8:])
	r.Ino = binary.LittleEndian.Uint64(slot[16:])
	r.Off = int64(binary.LittleEndian.Uint64(slot[24:]))
	r.Start = int64(binary.LittleEndian.Uint64(slot[32:]))
	r.Len = binary.LittleEndian.Uint32(slot[40:])
	r.Op = slot[44]
	r.Result = slot[45]
	tlen := int(slot[46])
	if tlen > MaxTenant {
		tlen = MaxTenant
	}
	r.Tenant = string(slot[47 : 47+tlen])
	for i := range r.Stages {
		r.Stages[i] = int64(binary.LittleEndian.Uint64(slot[64+8*i:]))
	}
	return r, true, false
}

// Slots returns how many record slots fit in a region of size bytes.
func Slots(size int64) int64 {
	if size < HeaderSize+SlotSize {
		return 0
	}
	return (size - HeaderSize) / SlotSize
}

// Format initializes a flight region: zeroes every slot and writes the
// header, flushed and fenced (formatting is rare; the recorder itself
// never fences).
func Format(dev *nvmm.Device, off, size int64) error {
	slots := Slots(size)
	if slots <= 0 {
		return fmt.Errorf("flight: region too small (%d bytes, need >= %d)", size, HeaderSize+SlotSize)
	}
	var zero [4096]byte
	for at := off; at < off+size; {
		n := int64(len(zero))
		if rem := off + size - at; rem < n {
			n = rem
		}
		dev.Write(zero[:n], at)
		at += n
	}
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], headerMagic)
	binary.LittleEndian.PutUint32(hdr[8:], headerVersion)
	binary.LittleEndian.PutUint32(hdr[12:], SlotSize)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(slots))
	dev.Write(hdr[:], off)
	dev.Flush(off, int(size))
	dev.Fence()
	return nil
}

// Recorder appends records to a formatted flight region. Record is safe
// for concurrent use and allocation-free.
type Recorder struct {
	dev   *nvmm.Device
	off   int64 // region start (header)
	slots int64
	seq   atomic.Uint64 // last issued sequence number
}

// Attach opens a formatted flight region for recording, resuming the
// sequence counter past every surviving record (so records from before
// a crash/restart are never reused-then-ambiguous).
func Attach(dev *nvmm.Device, off, size int64) (*Recorder, error) {
	log, err := Decode(dev, off, size)
	if err != nil {
		return nil, err
	}
	r := &Recorder{dev: dev, off: off, slots: log.SlotCount}
	r.seq.Store(log.MaxSeq)
	return r, nil
}

// Slots returns the ring's slot count.
func (r *Recorder) Slots() int64 {
	if r == nil {
		return 0
	}
	return r.slots
}

// Seq returns the last issued sequence number (how many records have
// ever been appended, across mounts).
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Record appends one entry: a single two-cacheline posted WriteNT into
// the slot owned by the next sequence number, with no flush and no
// fence. Posted means the issuing goroutine never waits on the emulated
// media — on real hardware an unfenced movnti retires immediately and
// drains from the write-combining buffer in the background, which is
// exactly why the recorder fits inside the observability budget. The
// store is durable as soon as the pipeline drains it; a crash
// immediately after Record may lose or tear this entry — by design.
// Nil-safe: a nil recorder drops the entry.
//
// The caller fills rec; rec.Seq is assigned here.
func (r *Recorder) Record(rec *Record) uint64 {
	if r == nil {
		return 0
	}
	seq := r.seq.Add(1)
	slot := int64((seq - 1) % uint64(r.slots))
	var buf [SlotSize]byte
	encode(&buf, rec, seq)
	r.dev.WriteNTPosted(buf[:], r.off+HeaderSize+slot*SlotSize)
	return seq
}
