package flight

import (
	"time"

	"hinfs/internal/vfs"
)

// WrapFS decorates fs so every operation appends one flight record to r
// — the non-server recording path, used by direct-library embedders and
// the obs-overhead benchmark leg. Stamping is allocation-free on the
// data plane (ReadAt/WriteAt/Fsync); handle creation allocates one small
// wrapper, as Open itself already does.
//
// Stage breakdowns are taken from the goroutine's attached obs.OpCtx
// when present (server-style embedding) and left zero otherwise.
func WrapFS(fs vfs.FileSystem, r *Recorder, tenant string) vfs.FileSystem {
	if len(tenant) > MaxTenant {
		tenant = tenant[:MaxTenant]
	}
	return &wrapFS{fs: fs, r: r, tenant: tenant}
}

type wrapFS struct {
	fs     vfs.FileSystem
	r      *Recorder
	tenant string
}

// note records one completed op. err is folded to a 0/1 result code —
// the library path has no wire status vocabulary.
func (w *wrapFS) note(op uint8, ino uint64, off int64, n int, start int64, err error) {
	rec := Record{
		Trace:  0,
		Ino:    ino,
		Off:    off,
		Start:  start,
		Len:    uint32(n),
		Op:     op,
		Tenant: w.tenant,
	}
	if err != nil {
		rec.Result = 1
	}
	w.r.Record(&rec)
}

func (w *wrapFS) Create(path string) (vfs.File, error) {
	start := time.Now().UnixNano()
	f, err := w.fs.Create(path)
	wf, ino := w.wrapFile(f)
	w.note(OpCreate, ino, 0, 0, start, err)
	return wf, err
}

func (w *wrapFS) Open(path string, flags int) (vfs.File, error) {
	start := time.Now().UnixNano()
	f, err := w.fs.Open(path, flags)
	wf, ino := w.wrapFile(f)
	w.note(OpOpen, ino, 0, 0, start, err)
	return wf, err
}

func (w *wrapFS) wrapFile(f vfs.File) (vfs.File, uint64) {
	if f == nil {
		return nil, 0
	}
	var ino uint64
	if n, ok := vfs.FileAs[vfs.InodeNumberer](f); ok {
		ino = n.InodeNumber()
	}
	return &wrapFile{f: f, w: w, ino: ino}, ino
}

func (w *wrapFS) Mkdir(path string) error {
	start := time.Now().UnixNano()
	err := w.fs.Mkdir(path)
	w.note(OpMkdir, 0, 0, 0, start, err)
	return err
}

func (w *wrapFS) Rmdir(path string) error {
	start := time.Now().UnixNano()
	err := w.fs.Rmdir(path)
	w.note(OpRmdir, 0, 0, 0, start, err)
	return err
}

func (w *wrapFS) Unlink(path string) error {
	start := time.Now().UnixNano()
	err := w.fs.Unlink(path)
	w.note(OpUnlink, 0, 0, 0, start, err)
	return err
}

func (w *wrapFS) Rename(oldpath, newpath string) error {
	start := time.Now().UnixNano()
	err := w.fs.Rename(oldpath, newpath)
	w.note(OpRename, 0, 0, 0, start, err)
	return err
}

func (w *wrapFS) Stat(path string) (vfs.FileInfo, error) {
	start := time.Now().UnixNano()
	fi, err := w.fs.Stat(path)
	w.note(OpStat, 0, 0, 0, start, err)
	return fi, err
}

func (w *wrapFS) ReadDir(path string) ([]vfs.DirEntry, error) {
	start := time.Now().UnixNano()
	des, err := w.fs.ReadDir(path)
	w.note(OpReadDir, 0, 0, len(des), start, err)
	return des, err
}

func (w *wrapFS) Sync() error {
	start := time.Now().UnixNano()
	err := w.fs.Sync()
	w.note(OpSync, 0, 0, 0, start, err)
	return err
}

func (w *wrapFS) Unmount() error { return w.fs.Unmount() }

type wrapFile struct {
	f   vfs.File
	w   *wrapFS
	ino uint64
}

func (f *wrapFile) Unwrap() vfs.File { return f.f }

func (f *wrapFile) ReadAt(p []byte, off int64) (int, error) {
	start := time.Now().UnixNano()
	n, err := f.f.ReadAt(p, off)
	e := err
	if e != nil && n > 0 {
		e = nil // partial read at EOF is a success for result-coding
	}
	f.w.note(OpRead, f.ino, off, n, start, e)
	return n, err
}

func (f *wrapFile) WriteAt(p []byte, off int64) (int, error) {
	start := time.Now().UnixNano()
	n, err := f.f.WriteAt(p, off)
	f.w.note(OpWrite, f.ino, off, n, start, err)
	return n, err
}

func (f *wrapFile) Fsync() error {
	start := time.Now().UnixNano()
	err := f.f.Fsync()
	f.w.note(OpFsync, f.ino, 0, 0, start, err)
	return err
}

func (f *wrapFile) Truncate(size int64) error {
	start := time.Now().UnixNano()
	err := f.f.Truncate(size)
	f.w.note(OpTruncate, f.ino, size, 0, start, err)
	return err
}

func (f *wrapFile) Size() int64 { return f.f.Size() }

func (f *wrapFile) Close() error {
	start := time.Now().UnixNano()
	err := f.f.Close()
	f.w.note(OpClose, f.ino, 0, 0, start, err)
	return err
}
