package flight

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"hinfs/internal/obs"
)

// Log is the decoded contents of a flight region: the surviving records
// plus an accounting of what did not survive, which is forensic signal
// in its own right (a torn slot marks the record in flight at power
// cut; gaps mark records whose lines never drained).
type Log struct {
	// SlotCount is the ring's capacity in records.
	SlotCount int64
	// MaxSeq is the highest sequence number among surviving records
	// (0 when the ring is empty).
	MaxSeq uint64
	// Records holds every CRC-valid record, ascending by Seq.
	Records []Record
	// Torn counts slots holding partially persisted records: non-zero
	// bytes that fail CRC or carry a sequence number inconsistent with
	// the slot position (a mix of two records' cachelines).
	Torn int
	// Gaps counts sequence numbers missing from the retained window
	// [max(1, MaxSeq-SlotCount+1), MaxSeq] — records that were issued
	// (later survivors prove it) but whose NT stores never drained.
	Gaps int
}

// OldestRetained returns the lowest sequence number the ring could still
// hold given MaxSeq — older records were overwritten by lapping, not
// lost to the crash.
func (l *Log) OldestRetained() uint64 {
	if l.MaxSeq == 0 {
		return 0
	}
	if l.MaxSeq <= uint64(l.SlotCount) {
		return 1
	}
	return l.MaxSeq - uint64(l.SlotCount) + 1
}

// DecodeBytes decodes a flight region image (header + slots).
func DecodeBytes(b []byte) (*Log, error) {
	if len(b) < HeaderSize+SlotSize {
		return nil, fmt.Errorf("flight: region too small (%d bytes)", len(b))
	}
	if m := binary.LittleEndian.Uint64(b[0:]); m != headerMagic {
		return nil, fmt.Errorf("flight: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != headerVersion {
		return nil, fmt.Errorf("flight: unsupported version %d", v)
	}
	if ss := binary.LittleEndian.Uint32(b[12:]); ss != SlotSize {
		return nil, fmt.Errorf("flight: unsupported slot size %d", ss)
	}
	slots := int64(binary.LittleEndian.Uint64(b[16:]))
	if slots <= 0 || HeaderSize+slots*SlotSize > int64(len(b)) {
		return nil, fmt.Errorf("flight: header slot count %d exceeds region", slots)
	}
	l := &Log{SlotCount: slots}
	for i := int64(0); i < slots; i++ {
		rec, ok, torn := decodeSlot(b[HeaderSize+i*SlotSize : HeaderSize+(i+1)*SlotSize])
		if torn {
			l.Torn++
			continue
		}
		if !ok {
			continue
		}
		if rec.Seq == 0 || int64((rec.Seq-1)%uint64(slots)) != i {
			// CRC-valid but in the wrong slot: two records' cachelines
			// interleaved into a coincidentally-valid image, or a foreign
			// write. Treat as torn — it is not trustworthy.
			l.Torn++
			continue
		}
		l.Records = append(l.Records, rec)
		if rec.Seq > l.MaxSeq {
			l.MaxSeq = rec.Seq
		}
	}
	sort.Slice(l.Records, func(i, j int) bool { return l.Records[i].Seq < l.Records[j].Seq })
	if l.MaxSeq > 0 {
		window := l.MaxSeq - l.OldestRetained() + 1
		l.Gaps = int(window) - len(l.Records)
	}
	return l, nil
}

// regionReader is the subset of nvmm.Device the decoder needs.
type regionReader interface {
	Read(dst []byte, off int64)
}

// Decode reads and decodes the flight region at [off, off+size) of dev.
func Decode(dev regionReader, off, size int64) (*Log, error) {
	b := make([]byte, size)
	dev.Read(b, off)
	return DecodeBytes(b)
}

// Contains reports whether seq survived into the decoded log.
func (l *Log) Contains(seq uint64) bool {
	i := sort.Search(len(l.Records), func(i int) bool { return l.Records[i].Seq >= seq })
	return i < len(l.Records) && l.Records[i].Seq == seq
}

// WriteJSON emits the log as JSON lines: one object per surviving
// record (ascending seq), then one trailer object summarizing ring
// health. Trace IDs are formatted exactly like slow-op logs
// (obs.TraceString), so the two join with a plain string match.
func (l *Log) WriteJSON(w io.Writer) error {
	for i := range l.Records {
		r := &l.Records[i]
		if _, err := fmt.Fprintf(w,
			`{"kind":"flight","seq":%d,"trace":"%s","tenant":%q,"op":"%s","ino":%d,"off":%d,"len":%d,"result":%d,"start_unix_ns":%d`,
			r.Seq, obs.TraceString(r.Trace), r.Tenant, OpName(r.Op), r.Ino, r.Off, r.Len, r.Result, r.Start); err != nil {
			return err
		}
		for _, st := range obs.Stages() {
			if _, err := fmt.Fprintf(w, `,"%s_ns":%d`, st, r.Stages[st]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}\n"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"{\"kind\":\"flight_summary\",\"slots\":%d,\"records\":%d,\"max_seq\":%d,\"oldest_retained\":%d,\"torn\":%d,\"gaps\":%d}\n",
		l.SlotCount, len(l.Records), l.MaxSeq, l.OldestRetained(), l.Torn, l.Gaps)
	return err
}
