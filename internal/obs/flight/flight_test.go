package flight

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"hinfs/internal/cacheline"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
)

func testDevice(t *testing.T, size int64, track bool) *nvmm.Device {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: size, TrackPersistence: track})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// regionImage formats a region on a device, appends records via r, and
// returns the raw region bytes.
func regionImage(t *testing.T, slots int64, recs []Record) []byte {
	t.Helper()
	size := HeaderSize + slots*SlotSize
	devSize := (size + 4095) / 4096 * 4096
	dev := testDevice(t, devSize, false)
	if err := Format(dev, 0, size); err != nil {
		t.Fatal(err)
	}
	r, err := Attach(dev, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		r.Record(&recs[i])
	}
	b := make([]byte, size)
	dev.Read(b, 0)
	return b
}

func TestRoundTrip(t *testing.T) {
	want := Record{
		Trace:  0xdeadbeefcafe,
		Ino:    42,
		Off:    4096,
		Start:  time.Now().UnixNano(),
		Len:    8192,
		Op:     OpWrite,
		Result: 0,
		Tenant: "gold",
		Stages: [obs.NumStages]int64{1, 2, 3, 4, 5, 6},
	}
	img := regionImage(t, 8, []Record{want})
	log, err := DecodeBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 1 || log.Torn != 0 || log.Gaps != 0 {
		t.Fatalf("decode: %d records, %d torn, %d gaps", len(log.Records), log.Torn, log.Gaps)
	}
	got := log.Records[0]
	want.Seq = 1
	if got != want {
		t.Fatalf("round trip:\n got  %+v\n want %+v", got, want)
	}
}

func TestTenantTruncation(t *testing.T) {
	img := regionImage(t, 4, []Record{{Tenant: "a-tenant-name-well-beyond-sixteen"}})
	log, err := DecodeBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if got := log.Records[0].Tenant; got != "a-tenant-name-we" {
		t.Fatalf("tenant = %q", got)
	}
}

// TestDecodeTable covers the decoder's torn-tail taxonomy.
func TestDecodeTable(t *testing.T) {
	mkRecs := func(n int) []Record {
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{Trace: uint64(i + 1), Op: OpWrite, Ino: uint64(i)}
		}
		return recs
	}
	const slots = 8
	cases := []struct {
		name    string
		recs    int
		mutate  func(img []byte) // img is the whole region
		records int
		maxSeq  uint64
		torn    int
		gaps    int
	}{
		{name: "empty ring", recs: 0, records: 0, maxSeq: 0},
		{name: "partial ring", recs: 3, records: 3, maxSeq: 3},
		{name: "exactly full", recs: slots, records: slots, maxSeq: slots},
		{
			// 13 records in 8 slots: seqs 6..13 survive, 1..5 were lapped.
			name: "wrapped ring", recs: 13, records: slots, maxSeq: 13,
		},
		{
			// Corrupt one byte of the last record's body: CRC must reject
			// it and classify the slot as torn (non-zero bytes, bad CRC).
			name: "torn crc", recs: 5,
			mutate: func(img []byte) {
				img[HeaderSize+4*SlotSize+20] ^= 0xff
			},
			records: 4, maxSeq: 4, torn: 1,
		},
		{
			// Zero out record 3's slot entirely: a seqno gap — later
			// survivors (4, 5) prove it was issued, but no bytes drained.
			name: "seqno gap", recs: 5,
			mutate: func(img []byte) {
				for i := HeaderSize + 2*SlotSize; i < HeaderSize+3*SlotSize; i++ {
					img[i] = 0
				}
			},
			records: 4, maxSeq: 5, gaps: 1,
		},
		{
			// A CRC-valid record sitting in the wrong slot is untrustworthy
			// (interleaved lines of two laps): copy slot 0's record into
			// slot 6 (slot 6 held nothing).
			name: "misplaced record", recs: 3,
			mutate: func(img []byte) {
				copy(img[HeaderSize+6*SlotSize:HeaderSize+7*SlotSize],
					img[HeaderSize+0*SlotSize:HeaderSize+1*SlotSize])
			},
			records: 3, maxSeq: 3, torn: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := regionImage(t, slots, mkRecs(tc.recs))
			if tc.mutate != nil {
				tc.mutate(img)
			}
			log, err := DecodeBytes(img)
			if err != nil {
				t.Fatal(err)
			}
			if len(log.Records) != tc.records || log.MaxSeq != tc.maxSeq ||
				log.Torn != tc.torn || log.Gaps != tc.gaps {
				t.Fatalf("got %d records maxSeq=%d torn=%d gaps=%d; want %d/%d/%d/%d",
					len(log.Records), log.MaxSeq, log.Torn, log.Gaps,
					tc.records, tc.maxSeq, tc.torn, tc.gaps)
			}
			for i := 1; i < len(log.Records); i++ {
				if log.Records[i].Seq <= log.Records[i-1].Seq {
					t.Fatal("records not ascending by seq")
				}
			}
		})
	}
}

func TestDecodeRejectsBadHeader(t *testing.T) {
	img := regionImage(t, 4, nil)
	img[0] ^= 1
	if _, err := DecodeBytes(img); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	img[0] ^= 1
	binary.LittleEndian.PutUint64(img[16:], 1<<40) // slot count beyond region
	if _, err := DecodeBytes(img); err == nil {
		t.Fatal("oversized slot count accepted")
	}
}

// TestTornPermutations materializes a crash at the final record's WriteNT
// with every torn-cacheline subset of that record (both lines, first
// only, second only, neither) and checks the decoder classifies each
// image correctly: the final record either survives whole or is detected
// as torn/missing — never misdecoded.
func TestTornPermutations(t *testing.T) {
	if SlotSize != 2*cacheline.Size {
		t.Fatalf("test assumes 2-line slots (SlotSize=%d)", SlotSize)
	}
	const regionSize = 4096
	run := func(seed uint64) (*Log, []byte) {
		dev := testDevice(t, regionSize, true)
		if err := Format(dev, 0, regionSize); err != nil {
			t.Fatal(err)
		}
		r, err := Attach(dev, 0, regionSize)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			r.Record(&Record{Trace: uint64(i + 1), Op: OpWrite})
		}
		dev.Fence() // make records 1..3 durable
		// Crash exactly at the 4th record's WriteNT persist event: its two
		// cachelines are pending, and seed selects the surviving subset.
		target := dev.PersistEvents() + 1
		dev.SetCrashPlan(func(ev int64, _ nvmm.EventKind) bool { return ev == target })
		r.Record(&Record{Trace: 4, Op: OpFsync})
		st := dev.TakeCrashState()
		if st == nil {
			t.Fatal("crash plan did not fire")
		}
		img, err := st.Materialize(nvmm.Config{Size: regionSize, TrackPersistence: true}, seed)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, regionSize)
		img.Read(b, 0)
		log, err := DecodeBytes(b)
		if err != nil {
			t.Fatal(err)
		}
		return log, b
	}
	sawWhole, sawTorn, sawMissing := false, false, false
	// Seed 0 drops every pending line; other seeds keep pseudo-random
	// subsets. Sweeping many seeds hits each of the 4 line subsets.
	for seed := uint64(0); seed < 64; seed++ {
		log, _ := run(seed)
		// Records 1..3 were fenced durable before the crash: they must
		// decode bit-exact under every permutation.
		if len(log.Records) < 3 {
			t.Fatalf("seed %d: durable prefix lost (%d records)", seed, len(log.Records))
		}
		for i := 0; i < 3; i++ {
			if log.Records[i].Seq != uint64(i+1) || log.Records[i].Trace != uint64(i+1) {
				t.Fatalf("seed %d: durable record %d corrupted: %+v", seed, i, log.Records[i])
			}
		}
		switch {
		case len(log.Records) == 4:
			// Whole record survived: must be exactly what was written.
			r := log.Records[3]
			if r.Seq != 4 || r.Trace != 4 || r.Op != OpFsync || log.Torn != 0 {
				t.Fatalf("seed %d: surviving tail misdecoded: %+v torn=%d", seed, r, log.Torn)
			}
			sawWhole = true
		case log.Torn == 1:
			// One line survived: CRC must have rejected the mix.
			if log.MaxSeq != 3 && log.Gaps == 0 {
				t.Fatalf("seed %d: torn tail with maxSeq=%d gaps=%d", seed, log.MaxSeq, log.Gaps)
			}
			sawTorn = true
		case log.Torn == 0 && log.MaxSeq == 3:
			// Neither line survived: clean 3-record log.
			sawMissing = true
		default:
			t.Fatalf("seed %d: unclassifiable image: records=%d torn=%d gaps=%d maxSeq=%d",
				seed, len(log.Records), log.Torn, log.Gaps, log.MaxSeq)
		}
	}
	if !sawWhole || !sawTorn || !sawMissing {
		t.Fatalf("seed sweep did not exercise all outcomes: whole=%v torn=%v missing=%v",
			sawWhole, sawTorn, sawMissing)
	}
}

func TestAttachResumesSeq(t *testing.T) {
	const regionSize = 4096
	dev := testDevice(t, regionSize, false)
	if err := Format(dev, 0, regionSize); err != nil {
		t.Fatal(err)
	}
	r, _ := Attach(dev, 0, regionSize)
	for i := 0; i < 5; i++ {
		r.Record(&Record{Op: OpWrite})
	}
	r2, err := Attach(dev, 0, regionSize)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Record(&Record{Op: OpWrite}); got != 6 {
		t.Fatalf("resumed seq = %d, want 6", got)
	}
}

func TestWriteJSON(t *testing.T) {
	img := regionImage(t, 4, []Record{
		{Trace: 0xabc, Tenant: "gold", Op: OpWrite, Ino: 7, Off: 512, Len: 64},
	})
	log, err := DecodeBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := log.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"trace":"0000000000000abc"`, `"tenant":"gold"`, `"op":"write"`,
		`"flush_ns":`, `"kind":"flight_summary"`, `"max_seq":1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON output missing %s:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 2 {
		t.Fatalf("want 2 lines, got %d:\n%s", got, out)
	}
}

// TestRecordAllocs enforces the zero-allocation contract on the append
// path (it runs on the server's writer goroutine for every request).
func TestRecordAllocs(t *testing.T) {
	const regionSize = 8192
	dev := testDevice(t, regionSize, false)
	if err := Format(dev, 0, regionSize); err != nil {
		t.Fatal(err)
	}
	r, _ := Attach(dev, 0, regionSize)
	rec := Record{Trace: 1, Tenant: "gold", Op: OpWrite, Len: 4096}
	if n := testing.AllocsPerRun(200, func() { r.Record(&rec) }); n != 0 {
		t.Fatalf("Record allocates %v times per op", n)
	}
}
