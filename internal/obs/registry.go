package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// Registry is a named set of metric sources. Each source is a function
// producing a JSON-marshalable value on demand (typically a
// Collector.Snapshot), so registration costs nothing until somebody
// actually scrapes the registry.
type Registry struct {
	mu   sync.Mutex
	vars map[string]func() any
	prom map[string]func(io.Writer)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]func() any), prom: make(map[string]func(io.Writer))}
}

// Default is the process-wide registry the debug server and the CLIs
// use. Harness instances register their collectors here when
// observability is on, so a live `-debug-addr` scrape always sees the
// most recent run.
var Default = NewRegistry()

// Register installs (or replaces) source name.
func (r *Registry) Register(name string, fn func() any) {
	r.mu.Lock()
	r.vars[name] = fn
	r.mu.Unlock()
}

// RegisterCollector installs c's live snapshot under name.
func (r *Registry) RegisterCollector(name string, c *Collector) {
	r.Register(name, func() any { return c.Snapshot() })
}

// RegisterProm installs (or replaces) a Prometheus-exposition source: fn
// writes text-format metric families to w on every scrape.
func (r *Registry) RegisterProm(name string, fn func(io.Writer)) {
	r.mu.Lock()
	if r.prom == nil {
		r.prom = make(map[string]func(io.Writer))
	}
	r.prom[name] = fn
	r.mu.Unlock()
}

// WriteProm writes every registered exposition source to w, in name
// order so scrapes are stable.
func (r *Registry) WriteProm(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.prom))
	for n := range r.prom {
		names = append(names, n)
	}
	fns := make([]func(io.Writer), 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fns = append(fns, r.prom[n])
	}
	r.mu.Unlock()
	for _, fn := range fns {
		fn(w)
	}
}

// Snapshot evaluates every source.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	names := make([]string, 0, len(r.vars))
	for n := range r.vars {
		names = append(names, n)
	}
	fns := make(map[string]func() any, len(names))
	for _, n := range names {
		fns[n] = r.vars[n]
	}
	r.mu.Unlock()
	out := make(map[string]any, len(fns))
	for n, fn := range fns {
		out[n] = fn()
	}
	return out
}

// Names returns the registered source names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.vars))
	for n := range r.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Publish exposes the registry under the given expvar name (visible at
// /debug/vars). Publishing the same name twice is a no-op rather than
// the expvar panic, so tests and multiple servers can share a registry.
func (r *Registry) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// DebugServer is a running observability endpoint.
type DebugServer struct {
	// Addr is the bound address (useful with ":0" listeners).
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// ServeDebug starts an HTTP server on addr exposing:
//
//	/debug/vars   expvar JSON (includes the registry under "obs")
//	/debug/obs    the registry snapshot alone, pretty-printed
//	/metrics      Prometheus text exposition (RegisterProm sources)
//	/debug/pprof  the standard Go profiling endpoints
//
// It returns once the listener is bound; serving continues in the
// background until Close.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	if r == nil {
		r = Default
	}
	r.Publish("obs")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &DebugServer{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go d.srv.Serve(ln)
	return d, nil
}

// Close stops the server.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
