package obs

import (
	"sync"
	"testing"
)

func TestOpCtxChargeAndBreakdown(t *testing.T) {
	var c OpCtx
	c.Reset(0xabcd, OpWrite)
	c.Charge(StageQueue, 100)
	c.Charge(StageQueue, 50)
	c.Charge(StageFlush, 7)
	c.Charge(StageLock, -5) // dropped
	c.Charge(StageLock, 0)  // dropped
	if got := c.StageNS(StageQueue); got != 150 {
		t.Fatalf("queue = %d, want 150", got)
	}
	if got := c.StageNS(StageLock); got != 0 {
		t.Fatalf("lock = %d, want 0 (non-positive charges dropped)", got)
	}
	b := c.Breakdown()
	if b[StageQueue] != 150 || b[StageFlush] != 7 {
		t.Fatalf("breakdown = %v", b)
	}
	if c.TraceOrZero() != 0xabcd {
		t.Fatalf("trace = %x", c.TraceOrZero())
	}

	// Reset clears every stage for reuse.
	c.Reset(1, OpRead)
	if b := c.Breakdown(); b != ([NumStages]int64{}) {
		t.Fatalf("breakdown after reset = %v", b)
	}

	// Everything is nil-safe.
	var nilCtx *OpCtx
	nilCtx.Reset(1, OpRead)
	nilCtx.Charge(StageQueue, 1)
	nilCtx.Attach()
	nilCtx.Detach()
	if nilCtx.StageNS(StageQueue) != 0 || nilCtx.TraceOrZero() != 0 {
		t.Fatal("nil OpCtx must read as zero")
	}
}

func TestStageNames(t *testing.T) {
	if len(Stages()) != int(NumStages) {
		t.Fatalf("Stages() lists %d, NumStages = %d", len(Stages()), NumStages)
	}
	seen := map[string]bool{}
	for _, st := range Stages() {
		name := st.String()
		if name == "unknown" || seen[name] {
			t.Fatalf("stage %d has bad or duplicate name %q", st, name)
		}
		seen[name] = true
	}
}

func TestAttachDetachCurrent(t *testing.T) {
	if CurrentOp() != nil {
		t.Fatal("no op attached, CurrentOp must be nil")
	}
	var c OpCtx
	c.Reset(42, OpFsync)
	c.Attach()
	if got := CurrentOp(); got != &c {
		t.Fatalf("CurrentOp = %p, want %p", got, &c)
	}
	if got := CurrentTrace(); got != 42 {
		t.Fatalf("CurrentTrace = %d, want 42", got)
	}

	// A different goroutine must not see this goroutine's context.
	done := make(chan *OpCtx)
	go func() { done <- CurrentOp() }()
	if other := <-done; other != nil {
		t.Fatalf("sibling goroutine sees %p", other)
	}

	c.Detach()
	if CurrentOp() != nil {
		t.Fatal("CurrentOp after Detach must be nil")
	}
	if CurrentTrace() != 0 {
		t.Fatal("CurrentTrace after Detach must be 0")
	}
	// Double detach is harmless.
	c.Detach()
}

func TestAttachReplaceSameGoroutine(t *testing.T) {
	var a, b OpCtx
	a.Reset(1, OpRead)
	b.Reset(2, OpWrite)
	a.Attach()
	b.Attach() // nested attach on the same goroutine replaces
	if got := CurrentTrace(); got != 2 {
		t.Fatalf("CurrentTrace = %d, want 2 after re-attach", got)
	}
	b.Detach()
	if CurrentOp() != nil {
		t.Fatal("detach after replace must clear the slot")
	}
}

// TestTLSConcurrent exercises the goroutine-local table under -race:
// many goroutines attach, charge through CurrentOp, and detach in loops,
// each verifying it only ever sees its own context.
func TestTLSConcurrent(t *testing.T) {
	const goroutines = 64
	const rounds = 200
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var c OpCtx
			for r := 0; r < rounds; r++ {
				trace := uint64(g)<<32 | uint64(r)
				c.Reset(trace, OpWrite)
				c.Attach()
				cur := CurrentOp()
				if cur == nil {
					// Probe-window overflow is a documented graceful
					// degradation, but with 64 goroutines in 1024 slots it
					// should be vanishingly rare.
					errs <- "lost context to probe overflow"
				} else if cur.Trace != trace {
					errs <- "saw another goroutine's context"
				}
				cur.Charge(StageFlush, 1)
				c.Detach()
				if CurrentOp() != nil {
					errs <- "context visible after detach"
				}
			}
			if c.StageNS(StageFlush) != 1 {
				// Only the last round's charge survives its Reset.
				errs <- "charges through CurrentOp did not land"
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestGoroutineID(t *testing.T) {
	id := goroutineID()
	if id <= 0 {
		t.Fatalf("goroutineID = %d", id)
	}
	done := make(chan int64)
	go func() { done <- goroutineID() }()
	if other := <-done; other == id {
		t.Fatalf("two goroutines share ID %d", id)
	}
}
