package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"
)

func TestSlowLogRecord(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 10*time.Millisecond)
	if l.Exceeds(9 * int64(time.Millisecond)) {
		t.Fatal("below-threshold op must not log")
	}
	if !l.Exceeds(10 * int64(time.Millisecond)) {
		t.Fatal("at-threshold op must log")
	}
	l.Record(SlowOp{
		Side:    "server",
		Trace:   TraceString(0xdeadbeef),
		Tenant:  "gold",
		Op:      "fsync",
		TotalNS: 12345678,
		Stages:  map[string]int64{"queue": 1000, "flush": 2000},
	})
	if l.Logged() != 1 {
		t.Fatalf("logged = %d", l.Logged())
	}
	line := strings.TrimSpace(buf.String())
	var got SlowOp
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("record is not a JSON line: %v\n%s", err, line)
	}
	if got.Trace != "00000000deadbeef" || got.Tenant != "gold" || got.Op != "fsync" ||
		got.TotalNS != 12345678 || got.Stages["flush"] != 2000 {
		t.Fatalf("round-tripped record = %+v", got)
	}
	if got.TimeNS == 0 {
		t.Fatal("timestamp not stamped")
	}
}

func TestSlowLogDisabled(t *testing.T) {
	if NewSlowLog(nil, time.Second) != nil {
		t.Fatal("nil writer must disable the log")
	}
	if NewSlowLog(&bytes.Buffer{}, 0) != nil {
		t.Fatal("zero threshold must disable the log")
	}
	var l *SlowLog
	if l.Exceeds(1 << 62) {
		t.Fatal("nil log exceeds nothing")
	}
	l.Record(SlowOp{Op: "x"}) // must not panic
	if l.Logged() != 0 {
		t.Fatal("nil log logged nothing")
	}
}

func TestStageMapOmitsZeros(t *testing.T) {
	var stages [NumStages]int64
	stages[StageQueue] = 5
	stages[StageFlush] = 9
	m := StageMap(stages)
	if len(m) != 2 || m["queue"] != 5 || m["flush"] != 9 {
		t.Fatalf("StageMap = %v", m)
	}
}

func TestTraceString(t *testing.T) {
	if got := TraceString(0xab); got != "00000000000000ab" {
		t.Fatalf("TraceString = %q", got)
	}
}

func TestPromWriter(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Header("hinfs_test_total", "A test counter.", "counter")
	p.Metric("hinfs_test_total", 3, "tenant", "gold", "stage", "queue")
	p.Metric("hinfs_test_total", 1.5)
	p.Metric("hinfs_test_total", 1, "note", "line\nbreak\"quote\\slash")
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP hinfs_test_total A test counter.\n",
		"# TYPE hinfs_test_total counter\n",
		`hinfs_test_total{tenant="gold",stage="queue"} 3` + "\n",
		"hinfs_test_total 1.5\n",
		`hinfs_test_total{note="line\nbreak\"quote\\slash"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryWriteProm checks that exposition sources write in name
// order and that a zero-value registry lazily initializes.
func TestRegistryWriteProm(t *testing.T) {
	r := NewRegistry()
	r.RegisterProm("b", func(w io.Writer) { io.WriteString(w, "from_b 1\n") })
	r.RegisterProm("a", func(w io.Writer) { io.WriteString(w, "from_a 1\n") })
	var buf bytes.Buffer
	r.WriteProm(&buf)
	if got := buf.String(); got != "from_a 1\nfrom_b 1\n" {
		t.Fatalf("WriteProm order:\n%s", got)
	}
	var zero Registry
	zero.RegisterProm("x", func(w io.Writer) { io.WriteString(w, "x 1\n") })
	buf.Reset()
	zero.WriteProm(&buf)
	if buf.String() != "x 1\n" {
		t.Fatalf("zero-value registry:\n%s", buf.String())
	}
}
