package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Span is one completed operation event: which op ran, on which file,
// where, how it was routed, and how long it took. Spans are recorded
// whole at op end (begin/end collapse into Start+Dur), so a record is a
// single ring write.
type Span struct {
	// Start is the op start in nanoseconds (clock of the recorder:
	// wall-clock unix nanos for the file systems, pool-clock nanos for
	// background writeback under a fake clock).
	Start int64
	// Dur is the op duration in nanoseconds.
	Dur int64
	// Op is the operation class.
	Op OpClass
	// Path is the decision path the op took.
	Path Path
	// File identifies the file (inode number; 0 when not applicable).
	File uint64
	// Off and Size locate the I/O (0 for non-data ops). For writeback
	// spans Size is the batch size in blocks.
	Off  int64
	Size int64
	// Shard is the DRAM buffer shard involved (-1 when not applicable).
	Shard int32
	// Trace is the wire-propagated request trace ID when the span was
	// recorded inside a server-attached op (0 otherwise), correlating
	// deep-layer spans with client requests and slow-op log lines.
	Trace uint64
	// Outcome labels how the op ended ("ok", "eager", "lazy", "mixed",
	// "stall", "error", ...).
	Outcome string
}

// jsonSpan is the JSON-lines wire form of a Span.
type jsonSpan struct {
	Start   int64  `json:"start"`
	Dur     int64  `json:"dur"`
	Op      string `json:"op"`
	Path    string `json:"path"`
	File    uint64 `json:"file,omitempty"`
	Off     int64  `json:"off,omitempty"`
	Size    int64  `json:"size,omitempty"`
	Shard   int32  `json:"shard"`
	Trace   string `json:"trace,omitempty"`
	Outcome string `json:"outcome,omitempty"`
}

// Tracer is a bounded in-memory span recorder. The ring is sharded so
// concurrent writers contend only on their shard's short critical
// section; when a shard wraps, its oldest spans are overwritten (total
// recorded vs retained is reported by Stats). A disabled tracer costs
// one atomic load per record call.
type Tracer struct {
	enabled  atomic.Bool
	recorded atomic.Int64
	pick     atomic.Uint64
	shards   []traceShard
}

type traceShard struct {
	mu   sync.Mutex
	buf  []Span
	next uint64 // total spans written to this shard
	_    [4]uint64
}

// defaultTracerShards bounds write contention without fragmenting small
// rings.
const defaultTracerShards = 8

// NewTracer creates a tracer retaining up to capacity spans, enabled.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	shards := defaultTracerShards
	if capacity < shards {
		shards = 1
	}
	return newTracer(capacity, shards)
}

func newTracer(capacity, shards int) *Tracer {
	t := &Tracer{shards: make([]traceShard, shards)}
	base := capacity / shards
	rem := capacity % shards
	for i := range t.shards {
		n := base
		if i < rem {
			n++
		}
		t.shards[i].buf = make([]Span, n)
	}
	t.enabled.Store(true)
	return t
}

// SetEnabled turns recording on or off (Record becomes a no-op when off).
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Record stores s. Nil-safe; a disabled tracer records nothing.
func (t *Tracer) Record(s Span) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.recorded.Add(1)
	sh := &t.shards[t.pick.Add(1)%uint64(len(t.shards))]
	sh.mu.Lock()
	sh.buf[sh.next%uint64(len(sh.buf))] = s
	sh.next++
	sh.mu.Unlock()
}

// Len returns the number of spans currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if sh.next < uint64(len(sh.buf)) {
			n += int(sh.next)
		} else {
			n += len(sh.buf)
		}
		sh.mu.Unlock()
	}
	return n
}

// Recorded returns the total spans ever recorded (including overwritten).
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	return t.recorded.Load()
}

// Spans returns the retained spans ordered by start time.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n := uint64(len(sh.buf))
		if sh.next < n {
			out = append(out, sh.buf[:sh.next]...)
		} else {
			out = append(out, sh.buf...)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Dump writes the retained spans as JSON lines (one span per line,
// ordered by start time) for offline analysis.
func (t *Tracer) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Spans() {
		js := jsonSpan{
			Start:   s.Start,
			Dur:     s.Dur,
			Op:      s.Op.String(),
			Path:    s.Path.String(),
			File:    s.File,
			Off:     s.Off,
			Size:    s.Size,
			Shard:   s.Shard,
			Outcome: s.Outcome,
		}
		if s.Trace != 0 {
			js.Trace = TraceString(s.Trace)
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return bw.Flush()
}
