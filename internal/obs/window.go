package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Windows is a rotating ring of histogram windows: observations land in
// the window covering the current time, and quantiles can be read over
// the most recent K windows — p99/p999 *over time*, not just end-of-run.
// Rotation is lazy (no background goroutine): the first observer or
// reader to touch a slot whose epoch has passed resets it under the
// slot's mutex; the steady-state record path is the lock-free Hist
// observe plus one atomic epoch check. The zero number of retained
// windows is the ring size; windows older than the ring are overwritten.
//
// All methods are nil-safe and safe for concurrent use.
type Windows struct {
	width int64 // window width in nanoseconds
	now   func() int64
	slots []windowSlot
}

type windowSlot struct {
	mu    sync.Mutex
	epoch atomic.Int64 // window index = now/width; -1 = never used
	hist  Hist
}

// DefaultWindow and DefaultWindowCount size the ring when callers pass
// zero: 8 one-second windows.
const (
	DefaultWindow      = time.Second
	DefaultWindowCount = 8
)

// NewWindows creates a ring of count windows of the given width,
// stamped by the wall clock. Zero arguments take the defaults.
func NewWindows(width time.Duration, count int) *Windows {
	return NewWindowsClock(width, count, func() int64 { return time.Now().UnixNano() })
}

// NewWindowsClock is NewWindows with an injectable clock (tests).
func NewWindowsClock(width time.Duration, count int, now func() int64) *Windows {
	if width <= 0 {
		width = DefaultWindow
	}
	if count < 2 {
		count = DefaultWindowCount
	}
	w := &Windows{width: int64(width), now: now, slots: make([]windowSlot, count)}
	for i := range w.slots {
		w.slots[i].epoch.Store(-1)
	}
	return w
}

// slotFor rotates (if needed) and returns the slot for epoch e, or nil
// when the slot has already been claimed by a later epoch (stale writer
// racing a clock step — the observation is dropped rather than polluting
// a newer window).
func (w *Windows) slotFor(e int64) *windowSlot {
	s := &w.slots[int(e%int64(len(w.slots)))]
	if s.epoch.Load() == e {
		return s
	}
	s.mu.Lock()
	if s.epoch.Load() < e {
		s.hist.Reset()
		s.epoch.Store(e)
	}
	s.mu.Unlock()
	if s.epoch.Load() != e {
		return nil
	}
	return s
}

// Observe records v into the current window.
func (w *Windows) Observe(v int64) {
	if w == nil {
		return
	}
	if s := w.slotFor(w.now() / w.width); s != nil {
		s.hist.Observe(v)
	}
}

// ObserveSince records the elapsed time since start in nanoseconds.
func (w *Windows) ObserveSince(start time.Time) {
	if w == nil {
		return
	}
	w.Observe(time.Since(start).Nanoseconds())
}

// WindowSnapshot is one window's immutable copy.
type WindowSnapshot struct {
	// Epoch is the window index (start time = Epoch * width).
	Epoch int64 `json:"epoch"`
	// StartNS is the window's start on the ring's clock.
	StartNS int64        `json:"start_ns"`
	Hist    HistSnapshot `json:"hist"`
}

// Snapshot returns the most recent `last` windows (including the current,
// possibly still-filling one), oldest first. last <= 0 or > ring size
// means the whole ring.
func (w *Windows) Snapshot(last int) []WindowSnapshot {
	if w == nil {
		return nil
	}
	if last <= 0 || last > len(w.slots) {
		last = len(w.slots)
	}
	cur := w.now() / w.width
	out := make([]WindowSnapshot, 0, last)
	for e := cur - int64(last) + 1; e <= cur; e++ {
		if e < 0 {
			continue
		}
		s := &w.slots[int(e%int64(len(w.slots)))]
		if s.epoch.Load() != e {
			continue // never filled, or already recycled
		}
		h := s.hist.Snapshot()
		if s.epoch.Load() != e {
			continue // recycled mid-copy; discard the torn snapshot
		}
		out = append(out, WindowSnapshot{Epoch: e, StartNS: e * w.width, Hist: h})
	}
	return out
}

// Merged merges the most recent `last` windows into one snapshot — the
// "recent latency" view the exporter and hinfs-top read quantiles from.
func (w *Windows) Merged(last int) HistSnapshot {
	if w == nil {
		return HistSnapshot{}
	}
	var m Hist
	for _, ws := range w.Snapshot(last) {
		for _, b := range ws.Hist.Buckets {
			// Re-observe bucket midpoints: bucket geometry is shared, so
			// the midpoint maps back to the same bucket and counts merge
			// exactly; Sum is approximated by midpoint*count.
			mid := b.Low + (b.High-b.Low-1)/2
			m.buckets[bucketOf(mid)].Add(b.Count)
			m.count.Add(b.Count)
			m.sum.Add(mid * b.Count)
		}
		if ws.Hist.Max > m.max.Load() {
			m.max.Store(ws.Hist.Max)
		}
	}
	return m.Snapshot()
}

// Oldest returns the start time (nanoseconds on the ring's clock) of the
// oldest retained window, and false when no window has been touched yet.
// Quantiles read via Merged cover [Oldest, now] — readers display that
// span ("last 8s") rather than implying all-time statistics.
func (w *Windows) Oldest() (startNS int64, ok bool) {
	if w == nil {
		return 0, false
	}
	ws := w.Snapshot(0)
	if len(ws) == 0 {
		return 0, false
	}
	return ws[0].StartNS, true
}

// Width returns the window width.
func (w *Windows) Width() time.Duration {
	if w == nil {
		return 0
	}
	return time.Duration(w.width)
}
