package obs

import (
	"sync/atomic"
	"time"
)

// OpClass is a user-visible operation class, recorded at the VFS
// boundary for every system under test (HiNFS and baselines alike).
type OpClass uint8

// The op classes of the per-op latency breakdown.
const (
	OpRead OpClass = iota
	OpWrite
	OpFsync
	OpCreate
	OpUnlink
	OpMeta // mkdir/rmdir/rename/stat/readdir/truncate/sync
	NumOps
)

// String implements fmt.Stringer.
func (c OpClass) String() string {
	switch c {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFsync:
		return "fsync"
	case OpCreate:
		return "create"
	case OpUnlink:
		return "unlink"
	case OpMeta:
		return "meta"
	}
	return "unknown"
}

// OpClasses lists every op class in display order.
func OpClasses() []OpClass {
	return []OpClass{OpRead, OpWrite, OpFsync, OpCreate, OpUnlink, OpMeta}
}

// Path is a decision path inside the HiNFS stack — which way an
// individual operation was routed. Path histograms record latency in
// nanoseconds except PathWriteback, which records batch sizes in blocks.
type Path uint8

// The instrumented decision paths.
const (
	// PathDirectRead is a read served entirely from NVMM (no DRAM hit).
	PathDirectRead Path = iota
	// PathBufferedRead is a read merged per cacheline from DRAM + NVMM.
	PathBufferedRead
	// PathEagerWrite is a write with at least one eager-persistent block
	// (direct NVMM non-temporal store).
	PathEagerWrite
	// PathLazyWrite is a write buffered entirely in DRAM.
	PathLazyWrite
	// PathStall is a foreground allocation that found its shard
	// exhausted (duration = the stall).
	PathStall
	// PathWriteback is a background writeback batch (value = blocks).
	PathWriteback
	// PathNVMMFlush is one device persist: cacheline flush latency
	// including bandwidth queueing.
	PathNVMMFlush
	NumPaths
)

// String implements fmt.Stringer.
func (p Path) String() string {
	switch p {
	case PathDirectRead:
		return "direct-read"
	case PathBufferedRead:
		return "buffered-read"
	case PathEagerWrite:
		return "eager-write"
	case PathLazyWrite:
		return "lazy-write"
	case PathStall:
		return "stall"
	case PathWriteback:
		return "writeback-batch"
	case PathNVMMFlush:
		return "nvmm-flush"
	}
	return "unknown"
}

// Paths lists every decision path in display order.
func Paths() []Path {
	return []Path{PathDirectRead, PathBufferedRead, PathEagerWrite,
		PathLazyWrite, PathStall, PathWriteback, PathNVMMFlush}
}

// Counter is a plain event counter keyed by name.
type Counter uint8

// The counters.
const (
	// CtrEagerBlocks / CtrLazyBlocks count per-block write routing
	// decisions (the eager/lazy mix, finer than per-op path histograms).
	CtrEagerBlocks Counter = iota
	CtrLazyBlocks
	// CtrBenefitEager / CtrBenefitLazy count the Buffer Benefit Model's
	// ghost-buffer verdicts at synchronization points.
	CtrBenefitEager
	CtrBenefitLazy
	// CtrWritebackFaults / CtrWritebackRetries count injected writeback
	// write errors and the backoff retries they triggered.
	CtrWritebackFaults
	CtrWritebackRetries
	// CtrJournalLaneContended counts journal slot allocations that found
	// their lane's mutex held (metadata hot-path lock contention).
	CtrJournalLaneContended
	// CtrAllocShardSteals counts block allocations that ran their home
	// shard dry and crossed into another shard's range.
	CtrAllocShardSteals
	// CtrAllocWordsScanned counts bitmap words examined by the allocator's
	// free-block scan (the hint-quality metric).
	CtrAllocWordsScanned
	// CtrDirLockContended counts namespace-lock acquisitions that found
	// the per-directory lock held.
	CtrDirLockContended
	NumCounters
)

// String implements fmt.Stringer.
func (c Counter) String() string {
	switch c {
	case CtrEagerBlocks:
		return "eager-blocks"
	case CtrLazyBlocks:
		return "lazy-blocks"
	case CtrBenefitEager:
		return "benefit-eager"
	case CtrBenefitLazy:
		return "benefit-lazy"
	case CtrWritebackFaults:
		return "writeback-faults"
	case CtrWritebackRetries:
		return "writeback-retries"
	case CtrJournalLaneContended:
		return "journal-lane-contended"
	case CtrAllocShardSteals:
		return "alloc-shard-steals"
	case CtrAllocWordsScanned:
		return "alloc-words-scanned"
	case CtrDirLockContended:
		return "dirlock-contended"
	}
	return "unknown"
}

// Counters lists every counter in display order.
func Counters() []Counter {
	return []Counter{CtrEagerBlocks, CtrLazyBlocks, CtrBenefitEager, CtrBenefitLazy,
		CtrWritebackFaults, CtrWritebackRetries,
		CtrJournalLaneContended, CtrAllocShardSteals, CtrAllocWordsScanned, CtrDirLockContended}
}

// CopyKind attributes one DRAM memory copy of file data to the data
// path that performed it. The paper's §2 argument is a copy count:
// a page-cache write costs two copies (user→page, page→NVMM) plus a
// flush, while a HiNFS lazy write costs one (user→DRAM buffer) on the
// critical path and defers the second to background writeback. These
// kinds let the harness reproduce that attribution per system.
type CopyKind uint8

// The copy kinds. "Foreground" kinds happen inside a write syscall;
// CopySyncFlush happens inside fsync/sync; CopyWriteback happens on
// background threads; the read kinds happen inside a read syscall.
const (
	// CopyUserIn is user data landing in its first destination
	// (DRAM buffer block, page-cache page, or NVMM store).
	CopyUserIn CopyKind = iota
	// CopyWriteFetch is a read-modify-write fetch into the write path's
	// destination (partial-block fill from NVMM or the block device).
	CopyWriteFetch
	// CopyInlineEvict is data pushed to media inside a foreground
	// operation to make room (dirty-page eviction, dirty-ratio
	// throttling, buffer-stall flush) — latency the caller eats.
	CopyInlineEvict
	// CopySyncFlush is data pushed to media by fsync/sync.
	CopySyncFlush
	// CopyWriteback is data pushed to media by background writeback.
	CopyWriteback
	// CopyReadOut is data copied to the caller by a read (from DRAM,
	// a page, or NVMM).
	CopyReadOut
	// CopyReadFill is a read-miss fill from media into a cache page.
	CopyReadFill
	NumCopyKinds
)

// String implements fmt.Stringer.
func (k CopyKind) String() string {
	switch k {
	case CopyUserIn:
		return "user-in"
	case CopyWriteFetch:
		return "write-fetch"
	case CopyInlineEvict:
		return "inline-evict"
	case CopySyncFlush:
		return "sync-flush"
	case CopyWriteback:
		return "writeback"
	case CopyReadOut:
		return "read-out"
	case CopyReadFill:
		return "read-fill"
	}
	return "unknown"
}

// CopyKinds lists every copy kind in display order.
func CopyKinds() []CopyKind {
	return []CopyKind{CopyUserIn, CopyWriteFetch, CopyInlineEvict,
		CopySyncFlush, CopyWriteback, CopyReadOut, CopyReadFill}
}

// Collector aggregates one instance's observability state: an op-class
// histogram per OpClass, a path histogram per Path, the counters, and an
// optional span tracer. Every method is nil-safe, so instrumented code
// paths pass a possibly-nil *Collector and pay one pointer test when
// observability is disabled.
type Collector struct {
	ops       [NumOps]Hist
	paths     [NumPaths]Hist
	ctrs      [NumCounters]atomic.Int64
	copies    [NumCopyKinds]atomic.Int64
	copyBytes [NumCopyKinds]atomic.Int64
	tracer    atomic.Pointer[Tracer]
}

// New creates an empty collector with no tracer attached.
func New() *Collector { return &Collector{} }

// Op records one operation of class op taking d.
func (c *Collector) Op(op OpClass, d time.Duration) {
	if c == nil {
		return
	}
	c.ops[op].Observe(d.Nanoseconds())
}

// OpHist returns the histogram for op (nil on a nil collector).
func (c *Collector) OpHist(op OpClass) *Hist {
	if c == nil {
		return nil
	}
	return &c.ops[op]
}

// Path records value v (nanoseconds, or blocks for PathWriteback) on
// decision path p.
func (c *Collector) Path(p Path, v int64) {
	if c == nil {
		return
	}
	c.paths[p].Observe(v)
}

// PathHist returns the histogram for p (nil on a nil collector).
func (c *Collector) PathHist(p Path) *Hist {
	if c == nil {
		return nil
	}
	return &c.paths[p]
}

// Add increments counter ctr by n.
func (c *Collector) Add(ctr Counter, n int64) {
	if c == nil || n == 0 {
		return
	}
	c.ctrs[ctr].Add(n)
}

// Counter returns the current value of ctr.
func (c *Collector) Counter(ctr Counter) int64 {
	if c == nil {
		return 0
	}
	return c.ctrs[ctr].Load()
}

// Copy records one DRAM memory copy of n bytes of file data attributed
// to kind. Zero-length copies are not recorded.
func (c *Collector) Copy(kind CopyKind, n int) {
	if c == nil || n <= 0 {
		return
	}
	c.copies[kind].Add(1)
	c.copyBytes[kind].Add(int64(n))
}

// CopyCount returns the number of copies recorded for kind.
func (c *Collector) CopyCount(kind CopyKind) int64 {
	if c == nil {
		return 0
	}
	return c.copies[kind].Load()
}

// CopyBytes returns the bytes copied for kind.
func (c *Collector) CopyBytes(kind CopyKind) int64 {
	if c == nil {
		return 0
	}
	return c.copyBytes[kind].Load()
}

// SetTracer attaches (or with nil detaches) a span tracer.
func (c *Collector) SetTracer(t *Tracer) {
	if c != nil {
		c.tracer.Store(t)
	}
}

// Tracer returns the attached tracer, if any.
func (c *Collector) Tracer() *Tracer {
	if c == nil {
		return nil
	}
	return c.tracer.Load()
}

// Span forwards s to the attached tracer. One atomic load when no
// tracer is attached or it is disabled.
func (c *Collector) Span(s Span) {
	if c == nil {
		return
	}
	c.tracer.Load().Record(s)
}

// Reset zeroes histograms and counters (not the tracer). Call at
// quiesced phase boundaries, e.g. between a workload's setup and run.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	for i := range c.ops {
		c.ops[i].Reset()
	}
	for i := range c.paths {
		c.paths[i].Reset()
	}
	for i := range c.ctrs {
		c.ctrs[i].Store(0)
	}
	for i := range c.copies {
		c.copies[i].Store(0)
		c.copyBytes[i].Store(0)
	}
}

// CopyStat is one copy kind's aggregate: how many copies and how many
// bytes moved.
type CopyStat struct {
	Copies int64 `json:"copies"`
	Bytes  int64 `json:"bytes"`
}

// Snapshot is an immutable copy of a collector's histograms and
// counters, keyed by the String names — the unit handed to reports,
// harness results and the expvar export.
type Snapshot struct {
	Ops      map[string]HistSnapshot `json:"ops"`
	Paths    map[string]HistSnapshot `json:"paths"`
	Counters map[string]int64        `json:"counters"`
	Copies   map[string]CopyStat     `json:"copies,omitempty"`
}

// Snapshot copies the collector's current state (nil-safe: returns an
// empty snapshot).
func (c *Collector) Snapshot() *Snapshot {
	s := &Snapshot{
		Ops:      make(map[string]HistSnapshot, NumOps),
		Paths:    make(map[string]HistSnapshot, NumPaths),
		Counters: make(map[string]int64, NumCounters),
		Copies:   make(map[string]CopyStat, NumCopyKinds),
	}
	if c == nil {
		return s
	}
	for _, op := range OpClasses() {
		if h := c.ops[op].Snapshot(); h.Count > 0 {
			s.Ops[op.String()] = h
		}
	}
	for _, p := range Paths() {
		if h := c.paths[p].Snapshot(); h.Count > 0 {
			s.Paths[p.String()] = h
		}
	}
	for _, ctr := range Counters() {
		if v := c.ctrs[ctr].Load(); v != 0 {
			s.Counters[ctr.String()] = v
		}
	}
	for _, k := range CopyKinds() {
		if n := c.copies[k].Load(); n != 0 {
			s.Copies[k.String()] = CopyStat{Copies: n, Bytes: c.copyBytes[k].Load()}
		}
	}
	return s
}

// Op returns the snapshot for an op class (zero snapshot if absent).
func (s *Snapshot) Op(op OpClass) HistSnapshot {
	if s == nil {
		return HistSnapshot{}
	}
	return s.Ops[op.String()]
}

// Path returns the snapshot for a decision path (zero if absent).
func (s *Snapshot) Path(p Path) HistSnapshot {
	if s == nil {
		return HistSnapshot{}
	}
	return s.Paths[p.String()]
}

// Counter returns a counter value (0 if absent).
func (s *Snapshot) Counter(ctr Counter) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[ctr.String()]
}

// Copy returns the copy stat for a kind (zero if absent).
func (s *Snapshot) Copy(k CopyKind) CopyStat {
	if s == nil {
		return CopyStat{}
	}
	return s.Copies[k.String()]
}
