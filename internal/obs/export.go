package obs

import (
	"io"
	"strconv"
	"strings"
)

// PromWriter emits the Prometheus text exposition format (version 0.0.4):
// optional `# HELP`/`# TYPE` headers followed by `name{labels} value`
// sample lines. It exists so the server and the harness can expose their
// metrics to standard scrapers (and hinfs-top) without a client library
// dependency. Errors are sticky; check Err once at the end.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) writeString(s string) {
	if p.err == nil {
		_, p.err = io.WriteString(p.w, s)
	}
}

// Header emits the HELP and TYPE lines for a metric family. typ is
// "counter", "gauge", "histogram" or "untyped".
func (p *PromWriter) Header(name, help, typ string) {
	p.writeString("# HELP " + name + " " + help + "\n# TYPE " + name + " " + typ + "\n")
}

// Metric emits one sample line. labels are name,value pairs; values are
// escaped per the exposition format.
func (p *PromWriter) Metric(name string, v float64, labels ...string) {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) >= 2 {
		b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(labels[i])
			b.WriteString(`="`)
			b.WriteString(promEscape(labels[i+1]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte('\n')
	p.writeString(b.String())
}

// promEscape escapes a label value (backslash, double quote, newline).
func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
