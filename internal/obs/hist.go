// Package obs is the repository's observability layer: low-overhead
// latency histograms, a ring-buffer span tracer, and a metrics registry
// exported over expvar/pprof.
//
// The paper's evaluation (Figs. 4/5, 12) argues from *where time goes* —
// per-op latency decomposed into NVMM write exposure, double-copy
// overhead and "Others" — so every layer of this repository records into
// an obs.Collector: op-class latency histograms at the VFS boundary
// (WrapFS), decision-path histograms inside HiNFS (direct vs buffered
// read, eager vs lazy write, foreground stalls, writeback batches, NVMM
// flushes), and optional begin/end spans in a bounded ring for offline
// analysis.
//
// Everything is nil-safe: a nil *Collector (the default everywhere) makes
// every record call a single pointer test, so the instrumented hot paths
// cost nothing when observability is off.
package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram geometry: values are bucketed by order of magnitude (base 2)
// with histSub linear sub-buckets per octave, the classic HdrHistogram
// layout. Relative quantile error is bounded by 1/histSub (6.25%);
// values below histSub are exact.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	histBuckets = (64 - histSubBits + 1) * histSub
)

// bucketOf maps a non-negative value to its bucket index. The mapping is
// monotone: v1 <= v2 implies bucketOf(v1) <= bucketOf(v2).
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	top := bits.Len64(u) - 1
	sub := (u >> (uint(top) - histSubBits)) & (histSub - 1)
	return (top-histSubBits+1)*histSub + int(sub)
}

// bucketLow returns the smallest value mapping to bucket b.
func bucketLow(b int) int64 {
	if b < histSub {
		return int64(b)
	}
	top := b/histSub + histSubBits - 1
	sub := b % histSub
	return int64(histSub+sub) << (uint(top) - histSubBits)
}

// bucketMid returns a representative value for bucket b (its midpoint).
func bucketMid(b int) int64 {
	if b < histSub {
		return int64(b)
	}
	top := b/histSub + histSubBits - 1
	width := int64(1) << (uint(top) - histSubBits)
	return bucketLow(b) + (width-1)/2
}

// Hist is a lock-free log-bucketed histogram of non-negative int64
// values (latencies in nanoseconds, batch sizes, ...). All methods are
// safe for concurrent use and nil-safe; the zero value is ready to use.
//
// Recording is one atomic add per counter — no locks, no allocation —
// so a Hist can sit on a hot path. Snapshots taken concurrently with
// writers are internally consistent per counter but may straddle an
// in-flight observation; Reset is meant for quiesced phase boundaries.
type Hist struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records v (negative values clamp to zero).
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start in nanoseconds.
func (h *Hist) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Merge adds o's observations into h. Merging is commutative and
// associative: merging the per-thread histograms of a run in any order
// yields the same aggregate.
func (h *Hist) Merge(o *Hist) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Reset zeroes the histogram. Concurrent observers may leave residue;
// call it only at quiesced phase boundaries.
func (h *Hist) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Bucket is one non-empty histogram bucket in a snapshot: Count
// observations fell in [Low, High).
type Bucket struct {
	Low   int64 `json:"low"`
	High  int64 `json:"high"`
	Count int64 `json:"count"`
}

// HistSnapshot is an immutable copy of a histogram, the unit of export:
// quantiles, CDFs and JSON all derive from it.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the current state. Safe under concurrent writers.
func (h *Hist) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, Bucket{
				Low:   bucketLow(i),
				High:  bucketLow(i + 1),
				Count: n,
			})
		}
	}
	return s
}

// Quantile returns the value at quantile q in [0,1]: the representative
// (midpoint) of the bucket holding the q-th observation, clamped to Max.
// It is monotone in q. Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	if q < 0 {
		q = 0
	}
	rank := int64(q*float64(s.Count)) + 1
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			// Low+High here are bucket bounds; the midpoint matches
			// bucketMid for the reconstructed index.
			mid := b.Low + (b.High-b.Low-1)/2
			if mid > s.Max {
				mid = s.Max
			}
			return mid
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observations.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// CDFPoint is one cumulative-distribution sample: Frac of all
// observations were <= Value.
type CDFPoint struct {
	Value int64   `json:"value"`
	Frac  float64 `json:"frac"`
}

// CDF returns the cumulative distribution over the non-empty buckets,
// suitable for plotting latency CDFs as related NVMM work does.
func (s HistSnapshot) CDF() []CDFPoint {
	if s.Count == 0 {
		return nil
	}
	out := make([]CDFPoint, 0, len(s.Buckets))
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		v := b.High - 1
		if v > s.Max {
			v = s.Max
		}
		out = append(out, CDFPoint{Value: v, Frac: float64(cum) / float64(s.Count)})
	}
	return out
}

// Percentiles returns the standard latency summary (p50/p90/p99/p999).
func (s HistSnapshot) Percentiles() (p50, p90, p99, p999 int64) {
	return s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99), s.Quantile(0.999)
}

// String summarizes the snapshot as durations (values read as ns).
func (s HistSnapshot) String() string {
	p50, p90, p99, p999 := s.Percentiles()
	return fmt.Sprintf("n=%d p50=%v p90=%v p99=%v p999=%v max=%v",
		s.Count, time.Duration(p50), time.Duration(p90),
		time.Duration(p99), time.Duration(p999), time.Duration(s.Max))
}
