package obs

import (
	"time"

	"hinfs/internal/vfs"
)

// WrapFS instruments fs at the VFS boundary: every operation's latency
// is recorded into c's op-class histograms. Because the wrapper works on
// the vfs interfaces, the same instrumentation covers HiNFS and every
// baseline system, which is what makes cross-system latency tables
// (hinfs-bench -fig latency) comparable. A nil collector returns fs
// unchanged.
func WrapFS(fs vfs.FileSystem, c *Collector) vfs.FileSystem {
	if c == nil {
		return fs
	}
	return &obsFS{inner: fs, c: c}
}

type obsFS struct {
	inner vfs.FileSystem
	c     *Collector
}

func (o *obsFS) Create(path string) (vfs.File, error) {
	start := time.Now()
	f, err := o.inner.Create(path)
	o.c.Op(OpCreate, time.Since(start))
	if err != nil {
		return nil, err
	}
	return &obsFile{inner: f, c: o.c}, nil
}

func (o *obsFS) Open(path string, flags int) (vfs.File, error) {
	op := OpMeta
	if flags&vfs.OCreate != 0 {
		op = OpCreate
	}
	start := time.Now()
	f, err := o.inner.Open(path, flags)
	o.c.Op(op, time.Since(start))
	if err != nil {
		return nil, err
	}
	return &obsFile{inner: f, c: o.c}, nil
}

func (o *obsFS) Unlink(path string) error {
	start := time.Now()
	err := o.inner.Unlink(path)
	o.c.Op(OpUnlink, time.Since(start))
	return err
}

func (o *obsFS) meta(fn func() error) error {
	start := time.Now()
	err := fn()
	o.c.Op(OpMeta, time.Since(start))
	return err
}

func (o *obsFS) Mkdir(path string) error { return o.meta(func() error { return o.inner.Mkdir(path) }) }
func (o *obsFS) Rmdir(path string) error { return o.meta(func() error { return o.inner.Rmdir(path) }) }
func (o *obsFS) Rename(a, b string) error {
	return o.meta(func() error { return o.inner.Rename(a, b) })
}
func (o *obsFS) Sync() error { return o.meta(func() error { return o.inner.Sync() }) }

func (o *obsFS) Stat(path string) (vfs.FileInfo, error) {
	start := time.Now()
	fi, err := o.inner.Stat(path)
	o.c.Op(OpMeta, time.Since(start))
	return fi, err
}

func (o *obsFS) ReadDir(path string) ([]vfs.DirEntry, error) {
	start := time.Now()
	ents, err := o.inner.ReadDir(path)
	o.c.Op(OpMeta, time.Since(start))
	return ents, err
}

// Unmount is not timed: it is teardown, not a workload op.
func (o *obsFS) Unmount() error { return o.inner.Unmount() }

type obsFile struct {
	inner vfs.File
	c     *Collector
}

func (f *obsFile) ReadAt(p []byte, off int64) (int, error) {
	start := time.Now()
	n, err := f.inner.ReadAt(p, off)
	f.c.Op(OpRead, time.Since(start))
	return n, err
}

func (f *obsFile) WriteAt(p []byte, off int64) (int, error) {
	start := time.Now()
	n, err := f.inner.WriteAt(p, off)
	f.c.Op(OpWrite, time.Since(start))
	return n, err
}

func (f *obsFile) Fsync() error {
	start := time.Now()
	err := f.inner.Fsync()
	f.c.Op(OpFsync, time.Since(start))
	return err
}

func (f *obsFile) Truncate(size int64) error {
	start := time.Now()
	err := f.inner.Truncate(size)
	f.c.Op(OpMeta, time.Since(start))
	return err
}

func (f *obsFile) Size() int64 { return f.inner.Size() }

func (f *obsFile) Close() error { return f.inner.Close() }

// Unwrap exposes the decorated handle so optional capabilities (mmap)
// stay discoverable via vfs.FileAs.
func (f *obsFile) Unwrap() vfs.File { return f.inner }
