package obs

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	// The largest int64 lands in the last octave-63 sub-bucket; buckets
	// beyond it exist in the array but are unreachable (their low bound
	// would overflow int64).
	maxBucket := bucketOf(int64(^uint64(0) >> 1))
	if want := (63-histSubBits)*histSub + histSub - 1; maxBucket != want {
		t.Fatalf("bucketOf(MaxInt64) = %d, want %d", maxBucket, want)
	}
	// Every reachable bucket's reported range must round-trip: its low
	// bound maps back into it and the value just below the next bound
	// does too.
	for b := 0; b < maxBucket; b++ {
		lo, hi := bucketLow(b), bucketLow(b+1)
		if got := bucketOf(lo); got != b {
			t.Fatalf("bucketOf(bucketLow(%d)=%d) = %d", b, lo, got)
		}
		if got := bucketOf(hi - 1); got != b {
			t.Fatalf("bucketOf(%d) = %d, want %d", hi-1, got, b)
		}
	}
}

func TestBucketOfRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := rng.Int63()
		b := bucketOf(v)
		if lo := bucketLow(b); v < lo {
			t.Fatalf("v=%d below its bucket %d low %d", v, b, lo)
		}
		if hi := bucketLow(b + 1); hi > 0 && v >= hi {
			t.Fatalf("v=%d at/above bucket %d high %d", v, b, hi)
		}
		if mid := bucketMid(b); mid < bucketLow(b) {
			t.Fatalf("bucket %d mid %d below low", b, mid)
		}
	}
}

func TestBucketOfMonotone(t *testing.T) {
	prev := bucketOf(0)
	for v := int64(1); v < 1<<22; v += 7 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
	}
	// Exponential probe for the large range.
	last := int64(-1)
	for v := int64(1); v > 0; v <<= 1 {
		if last >= 0 && bucketOf(v) <= bucketOf(last) {
			t.Fatalf("bucketOf(%d) <= bucketOf(%d)", v, last)
		}
		last = v
	}
}

func randomHist(seed int64, n int) *Hist {
	rng := rand.New(rand.NewSource(seed))
	h := &Hist{}
	for i := 0; i < n; i++ {
		// Mix magnitudes so many octaves are populated.
		h.Observe(rng.Int63n(1 << uint(4+rng.Intn(40))))
	}
	return h
}

func TestMergeAssociative(t *testing.T) {
	a1, b1, c1 := randomHist(1, 2000), randomHist(2, 1500), randomHist(3, 999)
	a2, b2, c2 := randomHist(1, 2000), randomHist(2, 1500), randomHist(3, 999)

	// (a ⊕ b) ⊕ c
	left := &Hist{}
	left.Merge(a1)
	left.Merge(b1)
	left.Merge(c1)
	// a ⊕ (b ⊕ c)
	bc := &Hist{}
	bc.Merge(b2)
	bc.Merge(c2)
	right := &Hist{}
	right.Merge(a2)
	right.Merge(bc)

	ls, rs := left.Snapshot(), right.Snapshot()
	if !reflect.DeepEqual(ls, rs) {
		t.Fatalf("merge not associative:\n left %+v\nright %+v", ls, rs)
	}
	if ls.Count != 2000+1500+999 {
		t.Fatalf("merged count %d", ls.Count)
	}
}

func TestQuantileMonotoneAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &Hist{}
	var vals []int64
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << uint(2+rng.Intn(30)))
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.001 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%.3f: %d < %d", q, v, prev)
		}
		if v > s.Max {
			t.Fatalf("quantile %d above max %d", v, s.Max)
		}
		prev = v
	}
	// The bucketed quantile must be within one sub-bucket (6.25%) of the
	// exact order statistic, give or take the bucket the exact value
	// straddles.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := vals[int(q*float64(len(vals)))]
		got := s.Quantile(q)
		lo, hi := bucketLow(bucketOf(exact)), bucketLow(bucketOf(exact)+1)
		if got < lo-(hi-lo) || got > hi+(hi-lo) {
			t.Fatalf("q=%v: got %d, exact %d (bucket [%d,%d))", q, got, exact, lo, hi)
		}
	}
	if s.Quantile(1) != s.Max || s.Quantile(2) != s.Max {
		t.Fatal("q>=1 must return max")
	}
}

func TestHistNegativeClampsAndNil(t *testing.T) {
	h := &Hist{}
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Max != 0 || s.Sum != 0 {
		t.Fatalf("negative clamp: %+v", s)
	}
	var nh *Hist
	nh.Observe(1) // must not panic
	nh.Merge(h)
	nh.Reset()
	if nh.Count() != 0 {
		t.Fatal("nil hist count")
	}
	if got := nh.Snapshot(); got.Count != 0 {
		t.Fatalf("nil snapshot %+v", got)
	}
}

func TestHistConcurrent(t *testing.T) {
	h := &Hist{}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 20))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	var bucketSum int64
	for _, b := range s.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestHistReset(t *testing.T) {
	h := randomHist(9, 100)
	h.Reset()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestCDF(t *testing.T) {
	h := &Hist{}
	for _, v := range []int64{1, 2, 2, 3, 1000} {
		h.Observe(v)
	}
	cdf := h.Snapshot().CDF()
	if len(cdf) == 0 {
		t.Fatal("empty cdf")
	}
	prevV, prevF := int64(-1), 0.0
	for _, p := range cdf {
		if p.Value < prevV || p.Frac < prevF {
			t.Fatalf("cdf not monotone: %+v", cdf)
		}
		prevV, prevF = p.Value, p.Frac
	}
	if last := cdf[len(cdf)-1]; last.Frac != 1 {
		t.Fatalf("cdf ends at %v", last.Frac)
	}
}

func BenchmarkHistObserve(b *testing.B) {
	h := &Hist{}
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v = (v * 2862933555777941757) & (1<<40 - 1)
		}
	})
}

func BenchmarkHistObserveNil(b *testing.B) {
	var h *Hist
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
