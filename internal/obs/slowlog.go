package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowOp is one threshold-triggered slow-operation record, written as a
// JSON line. The client and the server both log the same wire-propagated
// trace ID, so one slow request can be matched across the two sides.
type SlowOp struct {
	// TimeNS is the completion time (unix nanoseconds).
	TimeNS int64 `json:"ts"`
	// Side is "client" or "server".
	Side string `json:"side"`
	// Trace is the request's trace ID, formatted as 16 hex digits.
	Trace string `json:"trace"`
	// Tenant is the serving tenant (server side only).
	Tenant string `json:"tenant,omitempty"`
	// Op is the protocol operation name ("write", "fsync", ...).
	Op string `json:"op"`
	// TotalNS is the measured latency.
	TotalNS int64 `json:"total_ns"`
	// Stages is the per-stage breakdown (server side only): stage name →
	// attributed nanoseconds, zero stages omitted.
	Stages map[string]int64 `json:"stages,omitempty"`
	// Err is the op's error, if it failed.
	Err string `json:"err,omitempty"`
}

// TraceString formats a trace ID the way SlowOp records carry it.
func TraceString(trace uint64) string { return fmt.Sprintf("%016x", trace) }

// StageMap converts a per-stage breakdown to the SlowOp map form,
// omitting zero stages.
func StageMap(stages [NumStages]int64) map[string]int64 {
	m := make(map[string]int64, NumStages)
	for _, st := range Stages() {
		if v := stages[st]; v > 0 {
			m[st.String()] = v
		}
	}
	return m
}

// SlowLog writes threshold-triggered SlowOp records as JSON lines.
// Record serializes under a mutex (slow ops are rare by construction);
// Exceeds is the hot-path check and costs one comparison. Nil-safe.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold int64
	logged    atomic.Int64
}

// NewSlowLog logs ops of at least threshold to w. A nil writer or a
// non-positive threshold disables the log (returns nil).
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	return &SlowLog{w: w, threshold: threshold.Nanoseconds()}
}

// Exceeds reports whether an op of ns nanoseconds should be logged.
func (l *SlowLog) Exceeds(ns int64) bool {
	return l != nil && ns >= l.threshold
}

// Record writes one JSON line. The caller usually guards with Exceeds.
func (l *SlowLog) Record(op SlowOp) {
	if l == nil {
		return
	}
	if op.TimeNS == 0 {
		op.TimeNS = time.Now().UnixNano()
	}
	line, err := json.Marshal(op)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	l.w.Write(line)
	l.mu.Unlock()
	l.logged.Add(1)
}

// Logged returns the number of records written.
func (l *SlowLog) Logged() int64 {
	if l == nil {
		return 0
	}
	return l.logged.Load()
}
