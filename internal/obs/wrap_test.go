package obs

import (
	"testing"
	"time"

	"hinfs/internal/vfs"
)

// fakeFS is a do-nothing vfs.FileSystem for exercising the wrapper.
type fakeFS struct{}

type fakeFile struct{}

func (fakeFS) Create(string) (vfs.File, error)         { return fakeFile{}, nil }
func (fakeFS) Open(string, int) (vfs.File, error)      { return fakeFile{}, nil }
func (fakeFS) Mkdir(string) error                      { return nil }
func (fakeFS) Rmdir(string) error                      { return nil }
func (fakeFS) Unlink(string) error                     { return nil }
func (fakeFS) Rename(string, string) error             { return nil }
func (fakeFS) Stat(string) (vfs.FileInfo, error)       { return vfs.FileInfo{}, nil }
func (fakeFS) ReadDir(string) ([]vfs.DirEntry, error)  { return nil, nil }
func (fakeFS) Sync() error                             { return nil }
func (fakeFS) Unmount() error                          { return nil }
func (fakeFile) ReadAt(p []byte, _ int64) (int, error) { return len(p), nil }
func (fakeFile) WriteAt(p []byte, _ int64) (int, error) {
	time.Sleep(time.Millisecond)
	return len(p), nil
}
func (fakeFile) Fsync() error         { return nil }
func (fakeFile) Truncate(int64) error { return nil }
func (fakeFile) Size() int64          { return 0 }
func (fakeFile) Close() error         { return nil }

func TestWrapFSNilPassThrough(t *testing.T) {
	base := fakeFS{}
	if got := WrapFS(base, nil); got != vfs.FileSystem(base) {
		t.Fatal("nil collector must return fs unchanged")
	}
}

func TestWrapFSRecordsOpClasses(t *testing.T) {
	c := New()
	fs := WrapFS(fakeFS{}, c)

	f, err := fs.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(make([]byte, 8), 0)
	f.ReadAt(make([]byte, 8), 0)
	f.Fsync()
	f.Close()
	fs.Unlink("/a")
	fs.Mkdir("/d")
	fs.Stat("/d")
	fs.Sync()
	// Open with OCreate counts as create; without, as meta-ish open
	// surfaces under create class only when creating.
	fs.Open("/a", vfs.OCreate|vfs.ORdwr)

	s := c.Snapshot()
	want := map[OpClass]int64{
		OpCreate: 2, // Create + Open(OCreate)
		OpWrite:  1,
		OpRead:   1,
		OpFsync:  1,
		OpUnlink: 1,
		OpMeta:   3, // Mkdir, Stat, Sync
	}
	for op, n := range want {
		if got := s.Op(op).Count; got != n {
			t.Errorf("%s count = %d, want %d", op, got, n)
		}
	}
	// The slow write must dominate the write histogram's magnitude.
	if p50 := s.Op(OpWrite).Quantile(0.5); p50 < int64(100*time.Microsecond) {
		t.Errorf("write p50 %d ns implausibly fast for a 1ms op", p50)
	}
}
