package obs

import (
	"sync/atomic"

	"hinfs/internal/goid"
)

// Stage identifies one attributable segment of a request's latency. The
// paper's argument is that on NVMM the interesting time is software time;
// stages decompose a server operation's measured latency into the
// software waits that compose it: scheduler queue wait, quota admission,
// contended namespace/journal locks, DRAM buffer allocation stalls,
// emulated device persist time, and the worker service time that contains
// the middle four.
type Stage uint8

// The stages of the per-op latency breakdown.
const (
	// StageQueue is fair-scheduler queue wait: admission to dispatch.
	StageQueue Stage = iota
	// StageQuota is quota admission-check time.
	StageQuota
	// StageLock is contended lock wait (per-directory namespace locks,
	// journal lanes). Uncontended acquisitions charge nothing.
	StageLock
	// StageStall is foreground DRAM-buffer allocation stall time, net of
	// any device flush time charged inside the stall episode.
	StageStall
	// StageFlush is emulated NVMM persist latency, including bandwidth
	// queueing (clflush loops, non-temporal store drains).
	StageFlush
	// StageService is total worker service time: dispatch to completion.
	// It contains quota/lock/stall/flush plus unattributed compute.
	StageService
	NumStages
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageQueue:
		return "queue"
	case StageQuota:
		return "quota"
	case StageLock:
		return "lock"
	case StageStall:
		return "stall"
	case StageFlush:
		return "flush"
	case StageService:
		return "service"
	}
	return "unknown"
}

// Stages lists every stage in display order.
func Stages() []Stage {
	return []Stage{StageQueue, StageQuota, StageLock, StageStall, StageFlush, StageService}
}

// OpCtx is the request-scoped observability context: the wire-propagated
// trace ID plus a fixed-size per-stage latency accumulator. It is
// embedded in long-lived session state and Reset per request, so the hot
// path allocates nothing.
//
// Charging discipline: all Charge calls for one op happen either on the
// goroutine the op is Attached to (deep layers via CurrentOp) or on the
// scheduler worker before/after the run with happens-before edges to the
// reader, so the stage slots are plain int64s, not atomics.
type OpCtx struct {
	// Trace is the wire-propagated request/trace ID (client-assigned).
	Trace uint64
	// Op is the op class of the request.
	Op OpClass

	stage [NumStages]int64
	slot  int32
	live  bool
}

// Reset prepares the context for a new request.
func (c *OpCtx) Reset(trace uint64, op OpClass) {
	if c == nil {
		return
	}
	c.Trace = trace
	c.Op = op
	for i := range c.stage {
		c.stage[i] = 0
	}
}

// Charge adds ns to stage st. Nil-safe; negative charges are dropped.
func (c *OpCtx) Charge(st Stage, ns int64) {
	if c == nil || ns <= 0 {
		return
	}
	c.stage[st] += ns
}

// StageNS returns the accumulated nanoseconds for st.
func (c *OpCtx) StageNS(st Stage) int64 {
	if c == nil {
		return 0
	}
	return c.stage[st]
}

// TraceOrZero returns the trace ID, nil-safe.
func (c *OpCtx) TraceOrZero() uint64 {
	if c == nil {
		return 0
	}
	return c.Trace
}

// Breakdown returns a copy of the per-stage accumulator.
func (c *OpCtx) Breakdown() [NumStages]int64 {
	if c == nil {
		return [NumStages]int64{}
	}
	return c.stage
}

// --- goroutine-local attachment ---
//
// Deep layers (pmfs directory locks, journal lanes, buffer stalls, nvmm
// persists) sit behind interfaces that must not grow context parameters,
// so the executing goroutine carries the OpCtx instead: the scheduler
// worker Attaches the context around the request body and those layers
// look it up with CurrentOp. The registry is a fixed-size open-addressed
// table keyed by goroutine ID with no allocation on any path, and a
// global active counter makes CurrentOp a single atomic load when no op
// is attached anywhere — non-server workloads pay ~nothing.

const (
	tlsSlots    = 1024 // power of two
	tlsMaxProbe = 16
)

type tlsEntry struct {
	gid atomic.Int64
	ctx atomic.Pointer[OpCtx]
	_   [6]uint64 // pad to a cacheline to keep neighbors independent
}

var (
	tlsTab    [tlsSlots]tlsEntry
	tlsActive atomic.Int64
)

// goroutineID is the table key. goid.ID is two loads on amd64, which is
// what lets CurrentOp sit on the per-persist device path: with a server
// op attached everywhere, a traceback-based ID would tax every flush.
func goroutineID() int64 { return goid.ID() }

func tlsHash(gid int64) uint64 {
	return uint64(gid) * 0x9e3779b97f4a7c15
}

// Attach registers c as the current goroutine's active op. If the probe
// window is full (pathological collision), the context stays detached:
// deep-layer charges are lost for this op but explicit charges (queue,
// quota, service) still land. Nil-safe.
func (c *OpCtx) Attach() {
	if c == nil {
		return
	}
	gid := goroutineID()
	h := tlsHash(gid)
	for i := 0; i < tlsMaxProbe; i++ {
		e := &tlsTab[(h+uint64(i))%tlsSlots]
		if e.gid.CompareAndSwap(0, gid) {
			e.ctx.Store(c)
			c.slot = int32((h + uint64(i)) % tlsSlots)
			c.live = true
			tlsActive.Add(1)
			return
		}
		if e.gid.Load() == gid {
			// Re-attach on the same goroutine (nested use): replace.
			e.ctx.Store(c)
			c.slot = int32((h + uint64(i)) % tlsSlots)
			c.live = true
			return
		}
	}
	c.live = false
}

// Detach removes the registration made by Attach. Nil-safe; a context
// that never attached (or lost the probe race) is a no-op.
func (c *OpCtx) Detach() {
	if c == nil || !c.live {
		return
	}
	e := &tlsTab[c.slot]
	e.ctx.Store(nil)
	e.gid.Store(0)
	c.live = false
	tlsActive.Add(-1)
}

// CurrentOp returns the OpCtx attached to the calling goroutine, or nil.
// When no op is attached anywhere in the process, it is a single atomic
// load — the obs-off fast path for every deep layer.
func CurrentOp() *OpCtx {
	if tlsActive.Load() == 0 {
		return nil
	}
	gid := goroutineID()
	h := tlsHash(gid)
	for i := 0; i < tlsMaxProbe; i++ {
		e := &tlsTab[(h+uint64(i))%tlsSlots]
		if e.gid.Load() == gid {
			return e.ctx.Load()
		}
	}
	return nil
}

// CurrentTrace returns the attached op's trace ID, or 0.
func CurrentTrace() uint64 {
	if c := CurrentOp(); c != nil {
		return c.Trace
	}
	return 0
}
