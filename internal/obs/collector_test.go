package obs

import (
	"testing"
	"time"
)

func TestCollectorRoundTrip(t *testing.T) {
	c := New()
	c.Op(OpRead, 10*time.Microsecond)
	c.Op(OpRead, 20*time.Microsecond)
	c.Path(PathEagerWrite, 5000)
	c.Path(PathWriteback, 64) // blocks, not ns
	c.Add(CtrEagerBlocks, 7)
	c.Add(CtrLazyBlocks, 0) // no-op: zero adds keep the snapshot sparse

	s := c.Snapshot()
	if got := s.Op(OpRead).Count; got != 2 {
		t.Fatalf("read count %d", got)
	}
	if got := s.Path(PathEagerWrite).Count; got != 1 {
		t.Fatalf("eager count %d", got)
	}
	if got := s.Path(PathWriteback).Max; got != 64 {
		t.Fatalf("writeback max %d", got)
	}
	if got := s.Counter(CtrEagerBlocks); got != 7 {
		t.Fatalf("eager blocks %d", got)
	}
	if _, ok := s.Counters[CtrLazyBlocks.String()]; ok {
		t.Fatal("zero counter exported")
	}
	if got := s.Op(OpFsync); got.Count != 0 {
		t.Fatalf("absent op %+v", got)
	}

	c.Reset()
	s = c.Snapshot()
	if len(s.Ops) != 0 || len(s.Paths) != 0 || len(s.Counters) != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	c.Op(OpRead, time.Second)
	c.Path(PathStall, 1)
	c.Add(CtrLazyBlocks, 1)
	c.Reset()
	if c.Counter(CtrLazyBlocks) != 0 || c.OpHist(OpRead) != nil || c.PathHist(PathStall) != nil {
		t.Fatal("nil collector leaked state")
	}
	s := c.Snapshot()
	if s == nil || s.Op(OpRead).Count != 0 {
		t.Fatal("nil collector snapshot")
	}
	var ns *Snapshot
	if ns.Op(OpRead).Count != 0 || ns.Path(PathStall).Count != 0 || ns.Counter(CtrEagerBlocks) != 0 {
		t.Fatal("nil snapshot accessors")
	}
}

func TestEnumStrings(t *testing.T) {
	if len(OpClasses()) != int(NumOps) {
		t.Fatalf("OpClasses %d != NumOps %d", len(OpClasses()), NumOps)
	}
	if len(Paths()) != int(NumPaths) {
		t.Fatalf("Paths %d != NumPaths %d", len(Paths()), NumPaths)
	}
	if len(Counters()) != int(NumCounters) {
		t.Fatalf("Counters %d != NumCounters %d", len(Counters()), NumCounters)
	}
	seen := map[string]bool{}
	for _, op := range OpClasses() {
		if s := op.String(); s == "unknown" || seen[s] {
			t.Fatalf("op %d string %q", op, s)
		} else {
			seen[s] = true
		}
	}
	for _, p := range Paths() {
		if s := p.String(); s == "unknown" || seen[s] {
			t.Fatalf("path %d string %q", p, s)
		} else {
			seen[s] = true
		}
	}
	for _, c := range Counters() {
		if s := c.String(); s == "unknown" || seen[s] {
			t.Fatalf("counter %d string %q", c, s)
		} else {
			seen[s] = true
		}
	}
}
