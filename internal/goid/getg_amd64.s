//go:build amd64

#include "textflag.h"

// func getg() uintptr
TEXT ·getg(SB), NOSPLIT, $0-8
	MOVQ (TLS), AX
	MOVQ AX, ret+0(FP)
	RET
