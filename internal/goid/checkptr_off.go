//go:build !race && !msan && !asan

package goid

// checkptrActive: no pointer-checking instrumentation in this build;
// the init-time offset scan and the two-load fast path are safe to run.
const checkptrActive = false
