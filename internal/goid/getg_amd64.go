//go:build amd64

package goid

import "unsafe"

// getg returns the current goroutine's g pointer from thread-local
// storage. Implemented in assembly; the (TLS) pseudo-register has been
// the stable way to reach g since the Go 1.x ABI was set.
func getg() unsafe.Pointer
