//go:build race || msan || asan

package goid

// checkptrActive: this build carries the runtime's checkptr
// instrumentation, which (correctly) rejects dereferencing raw g memory
// — the g struct is not an ordinary Go-heap object, so the offset scan
// in init would abort the process with "found bad pointer in Go heap".
// The package keeps the portable runtime.Stack parse instead; sanitizer
// builds trade speed for checking everywhere, this is no different.
const checkptrActive = true
