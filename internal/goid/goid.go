// Package goid returns the current goroutine's ID cheaply.
//
// Both goroutine-local registries in this tree — obs's per-request OpCtx
// attachment and nvmm's fence-scope table — key an open-addressed table
// by goroutine ID. The portable way to get that ID is parsing the
// runtime.Stack header ("goroutine N [running]:"), but the traceback
// machinery behind runtime.Stack costs on the order of a microsecond,
// and the lookups sit on the per-persist device hot path: with a server
// op attached, every flush paid a traceback. ID replaces that with two
// loads: the g pointer from thread-local storage (one assembly
// instruction, stable across Go releases) and the goid field at an
// offset discovered at init.
//
// The offset is not hard-coded. runtime.g's layout shifts between Go
// releases (1.24 inserted syscallbp, for example), so init derives it
// empirically: several fresh goroutines each scan their own g memory for
// the ID parsed from their own runtime.Stack header, and only an offset
// that matches on every goroutine survives. If zero or several offsets
// survive — a new runtime layout, a coincidental collision, or an
// architecture without the assembly shim — the package silently keeps
// the slow parse, so it is never less correct than what it replaces,
// only sometimes slower.
package goid

import (
	"runtime"
	"sync"
	"unsafe"
)

// goidOffset is the byte offset of runtime.g's goid field, or -1 when
// init could not establish one and ID uses the stack parse. Written once
// during package init, read-only after.
var goidOffset = -1

// scanWords bounds the offset scan: goid sits a few hundred bytes into
// runtime.g on every release since the field existed, and g structs are
// heap objects comfortably larger than this window.
const scanWords = 64

func init() {
	if checkptrActive {
		return // sanitizer build: raw g derefs would trip checkptr
	}
	if getg() == nil {
		return // no assembly shim for this architecture
	}
	// Each probe goroutine reports every offset holding its own ID; an
	// offset must hold on all of them to be believed. Fresh goroutines
	// get distinct, monotonically growing IDs, so a stray field that
	// happens to equal one goroutine's ID cannot track all four.
	const probes = 4
	var (
		wg    sync.WaitGroup
		cands [probes][]int
	)
	for i := 0; i < probes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := parseID()
			g := getg()
			for off := 0; off < scanWords*8; off += 8 {
				if *(*int64)(unsafe.Add(g, off)) == id {
					cands[i] = append(cands[i], off)
				}
			}
		}(i)
	}
	wg.Wait()
	match := -1
	for _, off := range cands[0] {
		ok := true
		for i := 1; i < probes; i++ {
			found := false
			for _, o := range cands[i] {
				if o == off {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			if match != -1 {
				return // ambiguous: two offsets survived, trust neither
			}
			match = off
		}
	}
	goidOffset = match
}

// ID returns the current goroutine's ID. Two loads on the fast path;
// falls back to parsing the runtime.Stack header when init could not
// validate a field offset.
func ID() int64 {
	if goidOffset >= 0 {
		return *(*int64)(unsafe.Add(getg(), goidOffset))
	}
	return parseID()
}

// Fast reports whether ID runs on the validated two-load path.
func Fast() bool { return goidOffset >= 0 }

// parseBufPool recycles the runtime.Stack parse buffers: the slice
// passed to runtime.Stack escapes, so a stack-local buffer would cost
// one heap allocation per lookup.
var parseBufPool = sync.Pool{New: func() any { return new([64]byte) }}

// parseID is the portable slow path: parse the goroutine ID from the
// runtime.Stack header ("goroutine N [running]:"). The buffer is
// deliberately too small for the full stack; only the header matters.
func parseID() int64 {
	bp := parseBufPool.Get().(*[64]byte)
	n := runtime.Stack(bp[:], false)
	// Skip "goroutine " (10 bytes) and read digits.
	var id int64
	for _, b := range bp[10:n] {
		if b < '0' || b > '9' {
			break
		}
		id = id*10 + int64(b-'0')
	}
	parseBufPool.Put(bp)
	return id
}
