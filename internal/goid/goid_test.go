package goid

import (
	"sync"
	"testing"
)

// TestIDMatchesStackParse pins the fast path to ground truth: on many
// concurrent goroutines, the two-load ID must equal the ID parsed from
// that goroutine's own runtime.Stack header.
func TestIDMatchesStackParse(t *testing.T) {
	if !Fast() {
		t.Log("fast path unavailable; ID uses the stack parse (still correct)")
	}
	var wg sync.WaitGroup
	errs := make(chan int64, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if got, want := ID(), parseID(); got != want {
					errs <- got
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for id := range errs {
		t.Fatalf("ID() = %d disagrees with the runtime.Stack parse", id)
	}
}

// TestIDStableWithinGoroutine: the ID must not change across calls on
// one goroutine (stack growth and thread migration included).
func TestIDStableWithinGoroutine(t *testing.T) {
	first := ID()
	var grow func(n int) int
	grow = func(n int) int {
		var pad [256]byte
		if n == 0 {
			return int(pad[0])
		}
		return grow(n-1) + int(pad[n%256])
	}
	grow(200) // force stack copies
	if got := ID(); got != first {
		t.Fatalf("ID changed across stack growth: %d then %d", first, got)
	}
}

// TestIDZeroAllocs: the fast path must not allocate — it feeds
// per-persist device lookups.
func TestIDZeroAllocs(t *testing.T) {
	if !Fast() {
		t.Skip("slow path pools its buffer but is not guaranteed alloc-free under contention")
	}
	if n := testing.AllocsPerRun(1000, func() { ID() }); n != 0 {
		t.Fatalf("ID allocates %.1f per call", n)
	}
}

func BenchmarkID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ID()
	}
}

func BenchmarkParseID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		parseID()
	}
}
