//go:build !amd64

package goid

import "unsafe"

// getg has no shim on this architecture; nil keeps ID on the portable
// runtime.Stack parse.
func getg() unsafe.Pointer { return nil }
