// Package core implements HiNFS — the paper's primary contribution: a
// high-performance NVMM file system that hides NVMM's long write latency
// behind a DRAM write buffer without reintroducing double-copy overheads.
//
// HiNFS layers three components over the PMFS-like persistent substrate
// (internal/pmfs):
//
//   - the NVMM-aware Write Buffer (internal/buffer): lazy-persistent
//     writes land in DRAM and are written back by background threads
//     (§3.2), at cacheline granularity (CLFW, §3.2.1);
//   - the Eager-Persistent Write Checker (internal/benefit): O_SYNC /
//     sync-mount writes (case 1) and writes to blocks the Buffer Benefit
//     Model marked Eager-Persistent (case 2) bypass the buffer and go
//     directly to NVMM with non-temporal stores (§3.3.2);
//   - direct reads: reads copy straight from DRAM and/or NVMM to the user
//     buffer, merged per cacheline with the DRAM Block Index + Cacheline
//     Bitmap (§3.3.1) — never through an intermediate cache page.
//
// The Variant knobs reproduce the paper's ablations: HiNFS-NCLFW disables
// cacheline-level fetch/writeback, and HiNFS-WB disables the eager checker
// so every write is buffered ("simply using DRAM as a write buffer").
package core

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hinfs/internal/benefit"
	"hinfs/internal/buffer"
	"hinfs/internal/cacheline"
	"hinfs/internal/clock"
	"hinfs/internal/nvmm"
	"hinfs/internal/obs"
	"hinfs/internal/pmfs"
	"hinfs/internal/vfs"
)

// BlockSize is the file system block size.
const BlockSize = pmfs.BlockSize

// Options configures a HiNFS mount.
type Options struct {
	// BufferBlocks is the DRAM write buffer capacity in 4 KB blocks.
	// Required (the paper mounts with a 2 GB buffer for microbenchmarks).
	BufferBlocks int
	// DisableCLFW turns off Cacheline Level Fetch/Writeback — the paper's
	// HiNFS-NCLFW variant (Fig. 9).
	DisableCLFW bool
	// DisableEagerChecker buffers every write — the paper's HiNFS-WB
	// variant (Figs. 12, 13).
	DisableEagerChecker bool
	// SyncMount emulates mounting with the sync option: every write is
	// eager-persistent case 1.
	SyncMount bool
	// Buffer overrides write-buffer tuning; Blocks and CLFW are set from
	// the fields above.
	Buffer buffer.Config
	// Benefit overrides Buffer Benefit Model tuning.
	Benefit benefit.Config
	// Clock substitutes the time source (tests). Defaults to the wall
	// clock.
	Clock clock.Clock
	// PMFS tunes the persistent substrate: format parameters (Mkfs only)
	// plus the runtime concurrency knobs (journal lanes, allocator shards,
	// the serial-namespace baseline), which apply on every mount.
	PMFS pmfs.Options
	// Obs, when non-nil, receives decision-path latency histograms
	// (direct vs buffered read, eager vs lazy write), per-block routing
	// counters and op spans from this mount, and is propagated to the
	// write buffer, the benefit model and the device. Nil (the default)
	// costs one pointer test per operation.
	Obs *obs.Collector
	// UnsafeSkipOrderedCommit deliberately breaks the paper's §4.1
	// ordered-mode coupling: a lazy write's metadata commit record is
	// written at once instead of waiting for the buffered data to reach
	// NVMM, so a crash can expose metadata describing data that was never
	// persisted. It exists only so the crash-point explorer's self-test
	// can prove it detects real ordering bugs. Never set it otherwise.
	UnsafeSkipOrderedCommit bool
}

// FS is a mounted HiNFS instance. It implements vfs.FileSystem.
type FS struct {
	*pmfs.FS
	pool  *buffer.Pool
	model *benefit.Model
	clk   clock.Clock
	opts  Options
	obs   *obs.Collector

	mu    sync.Mutex
	files map[pmfs.Ino]*buffer.FileBuf
}

// Mkfs formats dev and mounts HiNFS on it.
func Mkfs(dev *nvmm.Device, opts Options) (*FS, error) {
	base, err := pmfs.Mkfs(dev, opts.PMFS)
	if err != nil {
		return nil, err
	}
	return wrap(base, dev, opts), nil
}

// Mount mounts HiNFS on a formatted device, running journal recovery.
func Mount(dev *nvmm.Device, opts Options) (*FS, error) {
	base, err := pmfs.MountOpts(dev, opts.PMFS)
	if err != nil {
		return nil, err
	}
	return wrap(base, dev, opts), nil
}

// MountRecover is Mount, also reporting the number of journal
// transactions rolled back during recovery.
func MountRecover(dev *nvmm.Device, opts Options) (*FS, int, error) {
	base, rolled, err := pmfs.MountRecoverOpts(dev, opts.PMFS)
	if err != nil {
		return nil, 0, err
	}
	return wrap(base, dev, opts), rolled, nil
}

func wrap(base *pmfs.FS, dev *nvmm.Device, opts Options) *FS {
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	base.SetClock(opts.Clock)
	bcfg := opts.Buffer
	bcfg.Blocks = opts.BufferBlocks
	bcfg.CLFW = !opts.DisableCLFW
	if bcfg.Obs == nil {
		bcfg.Obs = opts.Obs
	}
	pool := buffer.NewPool(dev, opts.Clock, bcfg)
	mcfg := opts.Benefit
	if mcfg.Obs == nil {
		mcfg.Obs = opts.Obs
	}
	// Size the ghost buffer from the pool's resolved (defaulted) config,
	// not the raw mount options.
	mcfg.SizeGhostFromBuffer(pool.Config())
	if mcfg.NVMMWriteLatency == 0 {
		mcfg.NVMMWriteLatency = dev.Config().WriteLatency
	}
	fs := &FS{
		FS:    base,
		pool:  pool,
		model: benefit.NewModel(opts.Clock, mcfg),
		clk:   opts.Clock,
		opts:  opts,
		obs:   opts.Obs,
		files: make(map[pmfs.Ino]*buffer.FileBuf),
	}
	if opts.Obs != nil {
		dev.SetObs(opts.Obs)
		base.SetObs(opts.Obs)
	}
	// Under journal space pressure, drain deferred (ordered-mode) commits
	// by flushing the write buffer. A writeback error is not actionable
	// here; failed blocks stay dirty and their transactions stay open until
	// a later flush succeeds.
	base.Journal().SetPressure(func() { _, _ = fs.pool.FlushAll() })
	return fs
}

// Fsck validates the persistent image (see pmfs.FS.Check). Flush the
// buffer first (Sync) for a meaningful result; buffered-but-unflushed
// lazy writes legitimately hold uncommitted transactions.
func (fs *FS) Fsck() []error { return fs.FS.Check() }

// Pool exposes the DRAM write buffer (stats, tests).
func (fs *FS) Pool() *buffer.Pool { return fs.pool }

// Model exposes the Buffer Benefit Model (stats, tests).
func (fs *FS) Model() *benefit.Model { return fs.model }

// fileBuf returns the shared per-inode buffer view.
func (fs *FS) fileBuf(ino pmfs.Ino) *buffer.FileBuf {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fb := fs.files[ino]
	if fb == nil {
		fb = fs.pool.NewFile()
		fs.files[ino] = fb
	}
	return fb
}

// dropFile discards all buffered and model state for ino.
func (fs *FS) dropFile(ino pmfs.Ino) {
	fs.mu.Lock()
	fb := fs.files[ino]
	delete(fs.files, ino)
	fs.mu.Unlock()
	if fb != nil {
		fb.Drop()
	}
	fs.model.DropFile(uint64(ino))
}

// Create implements vfs.FileSystem.
func (fs *FS) Create(path string) (vfs.File, error) {
	return fs.Open(path, vfs.OCreate|vfs.ORdwr)
}

// Open implements vfs.FileSystem.
func (fs *FS) Open(path string, flags int) (vfs.File, error) {
	// O_TRUNC is handled here, not by the substrate, so buffered blocks
	// are dropped under the inode lock before their NVMM blocks are freed.
	pf, err := fs.FS.OpenFile(path, flags&^vfs.OTrunc)
	if err != nil {
		return nil, err
	}
	f := &File{fs: fs, pf: pf, fb: fs.fileBuf(pf.Ino()), flags: flags}
	if flags&vfs.OTrunc != 0 {
		if err := f.Truncate(0); err != nil {
			pf.Close()
			return nil, err
		}
	}
	return f, nil
}

// Unlink implements vfs.FileSystem. The dentry is removed first; then the
// file's buffered dirty blocks are discarded (writes to short-lived files
// never pay NVMM cost, §1), and only then is the NVMM storage freed —
// background writeback can never touch freed blocks.
func (fs *FS) Unlink(path string) error {
	ino, reclaim, err := fs.FS.UnlinkKeepStorage(path)
	if err != nil {
		return err
	}
	if reclaim != nil {
		fs.dropFile(ino)
		reclaim()
	}
	return nil
}

// Rename implements vfs.FileSystem. A replaced target's buffered blocks
// are discarded before its storage is freed.
func (fs *FS) Rename(oldpath, newpath string) error {
	replaced, reclaim, err := fs.FS.RenameKeepStorage(oldpath, newpath)
	if err != nil {
		return err
	}
	if reclaim != nil {
		fs.dropFile(replaced)
		reclaim()
	}
	return nil
}

// Sync implements vfs.FileSystem: flush the whole DRAM buffer to NVMM.
func (fs *FS) Sync() error {
	if _, err := fs.pool.FlushAll(); err != nil {
		return err
	}
	return fs.FS.Sync()
}

// Unmount implements vfs.FileSystem: flush all DRAM blocks to NVMM (§3.2)
// and stop the writeback threads before unmounting the substrate.
func (fs *FS) Unmount() error {
	fs.pool.Close()
	return fs.FS.Unmount()
}

// Abandon stops the background writeback threads without flushing the
// DRAM buffer — the crash-simulation counterpart of Unmount. The device
// image is left exactly as the persist events issued so far made it;
// buffered dirty state evaporates as a power failure would drop it.
func (fs *FS) Abandon() { fs.pool.Abandon() }

// File is an open HiNFS file handle.
type File struct {
	fs    *FS
	pf    *pmfs.File
	fb    *buffer.FileBuf
	flags int

	mapped bool
	closed atomic.Bool
}

// checkOpen rejects operations on a closed handle before any lock is
// taken. An operation that passes the check while Close runs still
// completes safely: storage reclamation happens under the inode lock the
// operation holds.
func (f *File) checkOpen() error {
	if f.closed.Load() {
		return vfs.ErrClosed
	}
	return nil
}

// Size implements vfs.File.
func (f *File) Size() int64 { return f.pf.Size() }

// Ino returns the file's inode number.
func (f *File) Ino() pmfs.Ino { return f.pf.Ino() }

// InodeNumber implements vfs.InodeNumberer.
func (f *File) InodeNumber() uint64 { return uint64(f.pf.Ino()) }

// ReadAt implements vfs.File: a single copy to the user buffer, merged per
// cacheline between DRAM and NVMM (§3.3.1).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	c := f.fs.obs
	var start time.Time
	if c != nil {
		start = time.Now()
	}
	merged := false
	f.pf.RLock()
	defer f.pf.RUnlock()
	size := f.pf.SizeLocked()
	if off >= size {
		// io.ReaderAt contract: reads at or past EOF report io.EOF.
		return 0, io.EOF
	}
	n := len(p)
	var eof error
	if off+int64(n) > size {
		n = int(size - off)
		eof = io.EOF
	}
	read := 0
	for read < n {
		pos := off + int64(read)
		idx := pos / BlockSize
		bo := int(pos % BlockSize)
		chunk := BlockSize - bo
		if chunk > n-read {
			chunk = n - read
		}
		dst := p[read : read+chunk]
		addr := f.pf.BlockAddrLocked(idx)
		if !f.fb.ReadMerge(idx, bo, dst, addr) {
			// Not buffered: read NVMM directly (or a hole).
			if addr == 0 {
				for i := range dst {
					dst[i] = 0
				}
			} else {
				f.fs.Device().Read(dst, addr+int64(bo))
				c.Copy(obs.CopyReadOut, len(dst))
			}
		} else {
			merged = true
		}
		read += chunk
	}
	if c != nil {
		dur := time.Since(start).Nanoseconds()
		path := obs.PathDirectRead
		if merged {
			path = obs.PathBufferedRead
		}
		c.Path(path, dur)
		c.Span(obs.Span{
			Start: start.UnixNano(), Dur: dur,
			Op: obs.OpRead, Path: path,
			File: uint64(f.pf.Ino()), Off: off, Size: int64(n),
			Shard: -1, Trace: obs.CurrentTrace(), Outcome: "ok",
		})
	}
	return n, eof
}

// WriteAt implements vfs.File: the Eager-Persistent Write Checker routes
// each touched block either to the DRAM buffer (lazy-persistent) or
// directly to NVMM (eager-persistent).
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if len(p) == 0 {
		return 0, nil
	}
	c := f.fs.obs
	var start time.Time
	if c != nil {
		start = time.Now()
	}
	f.pf.Lock()
	defer f.pf.Unlock()
	if f.flags&vfs.OAppend != 0 {
		off = f.pf.SizeLocked()
	}
	plan, err := f.pf.PrepareWriteLocked(off, len(p), false)
	if err != nil {
		return 0, err
	}
	tx := plan.Tx
	dev := f.fs.Device()
	ino := uint64(f.pf.Ino())
	case1 := f.fs.opts.SyncMount || f.flags&vfs.OSync != 0 || f.mapped
	lastSync := f.pf.LastSync()

	written := 0
	pendingBlocks := 0
	anyDirect := false
	var wbErr error
	eagerBlocks, lazyBlocks := int64(0), int64(0)
	for _, e := range plan.Extents {
		blkOff := 0
		if e.Index == off/BlockSize {
			blkOff = int(off % BlockSize)
		}
		chunk := BlockSize - blkOff
		if chunk > len(p)-written {
			chunk = len(p) - written
		}
		data := p[written : written+chunk]
		mask := cacheline.RangeMask(blkOff, chunk)
		f.fs.model.RecordWrite(ino, e.Index, mask)

		eager := case1
		if !eager && !f.fs.opts.DisableEagerChecker {
			eager = f.fs.model.IsEager(ino, e.Index, lastSync)
		}
		switch {
		case eager && case1 && f.fb.Buffered(e.Index):
			// Case-1 consistency (§3.3.2): the block is already in DRAM;
			// write it there, then explicitly evict it before returning. An
			// eviction error means the data is buffered but not yet durable;
			// it is surfaced after the transaction is sealed.
			f.fb.Write(e.Index, blkOff, data, e.Addr, !e.Created)
			if err := f.fb.EvictBlock(e.Index); err != nil && wbErr == nil {
				wbErr = err
			}
			anyDirect = true
			eagerBlocks++
		case eager:
			// Direct NVMM write; invalidate any stale buffered lines so
			// reads cannot see old data (case-2 blocks are clean since
			// their last sync, so this drops no dirty state). If the
			// invalidating flush fails, fall back to buffering the write:
			// dirty lines that could not reach NVMM would shadow a direct
			// write when their writeback eventually succeeds.
			if err := f.fb.Invalidate(e.Index, blkOff, chunk); err != nil {
				if wbErr == nil {
					wbErr = err
				}
				f.fb.Write(e.Index, blkOff, data, e.Addr, !e.Created, tx)
				pendingBlocks++
				lazyBlocks++
				break
			}
			dev.WriteNT(data, e.Addr+int64(blkOff))
			c.Copy(obs.CopyUserIn, len(data))
			anyDirect = true
			eagerBlocks++
		default:
			f.fb.Write(e.Index, blkOff, data, e.Addr, !e.Created, tx)
			pendingBlocks++
			lazyBlocks++
		}
		written += chunk
	}
	if anyDirect {
		dev.Fence()
	}
	// Ordered-mode commit: the transaction's commit record is written when
	// its last buffered block persists; with no buffered blocks it commits
	// now (data already durable via WriteNT). The unsafe knob skips the
	// wait (seeded ordering bug for the crash explorer's self-test).
	if !f.fs.opts.UnsafeSkipOrderedCommit {
		tx.AddPending(pendingBlocks)
	}
	tx.Seal()
	if wbErr != nil {
		// The bytes are buffered (nothing lost), but an eager block's
		// durability contract was not met this call.
		return written, wbErr
	}
	if c != nil {
		dur := time.Since(start).Nanoseconds()
		// An op with any direct block pays NVMM latency inline, so it
		// belongs to the eager-persistent distribution; pure-DRAM ops
		// belong to the lazy one. The block-level split stays exact in
		// the counters.
		path, outcome := obs.PathLazyWrite, "lazy"
		if anyDirect {
			path, outcome = obs.PathEagerWrite, "eager"
			if lazyBlocks > 0 {
				outcome = "mixed"
			}
		}
		c.Path(path, dur)
		c.Add(obs.CtrEagerBlocks, eagerBlocks)
		c.Add(obs.CtrLazyBlocks, lazyBlocks)
		c.Span(obs.Span{
			Start: start.UnixNano(), Dur: dur,
			Op: obs.OpWrite, Path: path,
			File: ino, Off: off, Size: int64(written),
			Shard: -1, Trace: obs.CurrentTrace(), Outcome: outcome,
		})
	}
	return written, nil
}

// Fsync implements vfs.File: flush the file's dirty DRAM blocks to NVMM,
// fence, and let the Buffer Benefit Model re-evaluate block states.
func (f *File) Fsync() error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	c := f.fs.obs
	var start time.Time
	if c != nil {
		start = time.Now()
	}
	f.pf.Lock()
	flushed, ferr := f.fb.Flush()
	f.fs.Device().Fence()
	f.pf.Unlock()
	if ferr == nil {
		// A failed fsync must not advance the sync clock: the file still
		// has dirty DRAM state, and re-running fsync must retry it.
		f.fs.model.OnSync(uint64(f.pf.Ino()))
		f.pf.MarkSynced(f.fs.clk.Now())
	}
	if c != nil {
		dur := time.Since(start).Nanoseconds()
		outcome := "ok"
		if ferr != nil {
			outcome = "error"
		}
		// Size carries the cachelines the sync itself flushed (N_cf).
		c.Span(obs.Span{
			Start: start.UnixNano(), Dur: dur,
			Op: obs.OpFsync, Path: obs.PathWriteback,
			File: uint64(f.pf.Ino()), Size: int64(flushed),
			Shard: -1, Trace: obs.CurrentTrace(), Outcome: outcome,
		})
	}
	return ferr
}

// Truncate implements vfs.File. Buffered blocks beyond the new size are
// discarded before the substrate frees their NVMM blocks.
func (f *File) Truncate(size int64) error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	if size < 0 {
		return vfs.ErrInvalid
	}
	f.pf.Lock()
	defer f.pf.Unlock()
	old := f.pf.SizeLocked()
	if size < old {
		boundary := size / BlockSize
		for _, idx := range f.fb.BlockIndices() {
			if idx > boundary || (idx == boundary && size%BlockSize == 0) {
				f.fb.DropBlock(idx)
			}
		}
		if size%BlockSize != 0 && f.fb.Buffered(boundary) {
			// Zero the buffered tail of the boundary block so a later
			// re-extension reads zeros from DRAM too.
			tail := int(BlockSize - size%BlockSize)
			zeros := make([]byte, tail)
			addr := f.pf.BlockAddrLocked(boundary)
			f.fb.Write(boundary, int(size%BlockSize), zeros, addr, addr != 0)
		}
	}
	return f.pf.TruncateLocked(size)
}

// Close implements vfs.File. If this close reclaims an unlinked file, its
// buffered blocks are discarded first — the hook runs iff this close is
// the reclaiming one, decided atomically under the substrate's refcount
// lock (two racing closes of the last handles must not both skip the
// drop). A second Close returns ErrClosed.
func (f *File) Close() error {
	if f.closed.Swap(true) {
		return vfs.ErrClosed
	}
	return f.pf.CloseWithHook(func() { f.fs.dropFile(f.pf.Ino()) })
}

// Mmap emulates direct memory-mapped I/O for one file block (§4.2): the
// file's dirty DRAM blocks are flushed, its blocks switch to
// Eager-Persistent until Munmap, and the returned slice aliases NVMM.
func (f *File) Mmap(index int64) ([]byte, error) {
	if err := f.checkOpen(); err != nil {
		return nil, err
	}
	f.pf.Lock()
	_, ferr := f.fb.Flush()
	f.pf.Unlock()
	if ferr != nil {
		return nil, ferr
	}
	size := f.pf.Size()
	nblocks := (size + BlockSize - 1) / BlockSize
	if index >= nblocks {
		nblocks = index + 1
	}
	indices := make([]int64, 0, nblocks)
	for i := int64(0); i < nblocks; i++ {
		indices = append(indices, i)
	}
	f.fs.model.MarkEager(uint64(f.pf.Ino()), indices)
	f.mapped = true
	m, err := f.pf.MmapBlock(index)
	if err != nil {
		return nil, err
	}
	// Reads must not see stale DRAM lines for the mapped block.
	if err := f.fb.EvictBlock(index); err != nil {
		return nil, err
	}
	return m, nil
}

// Msync persists stores made through the Mmap slice of block index.
func (f *File) Msync(index int64) error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	f.pf.RLock()
	addr := f.pf.BlockAddrLocked(index)
	f.pf.RUnlock()
	if addr == 0 {
		return vfs.ErrInvalid
	}
	f.fs.Device().Flush(addr, BlockSize)
	f.fs.Device().Fence()
	return nil
}

// Munmap ends the mapping; blocks decay back to Lazy-Persistent via the
// benefit model's normal 5 s rule.
func (f *File) Munmap() error {
	f.mapped = false
	return nil
}

// LastSyncAge returns how long ago the file was last fsynced (tests).
func (f *File) LastSyncAge(now time.Time) time.Duration {
	return now.Sub(f.pf.LastSync())
}
