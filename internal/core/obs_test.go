package core

import (
	"testing"
	"time"

	"hinfs/internal/obs"
	"hinfs/internal/vfs"
)

// TestObsInstrumentation drives every instrumented HiNFS decision path
// and checks the collector saw it: lazy and eager writes, buffered and
// direct reads, routing counters, flush latencies and spans.
func TestObsInstrumentation(t *testing.T) {
	col := obs.New()
	col.SetTracer(obs.NewTracer(1024))
	fs, _ := testFS(t, Options{Obs: col})

	// Lazy write: plain WriteAt lands in DRAM.
	f, err := fs.Create("/lazy")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8192)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Buffered read: the blocks are dirty in DRAM.
	if _, err := f.ReadAt(make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	// Fsync flushes the buffered blocks (writeback span, benefit sync).
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Eager write: O_SYNC forces the direct-to-NVMM path.
	g, err := fs.Open("/eager", vfs.OCreate|vfs.ORdwr|vfs.OSync)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Direct read: after Sync nothing of /eager is in DRAM.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ReadAt(make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	// Overrun the 512-block DRAM buffer so background reclaim kicks in
	// and records writeback batches (and possibly foreground stalls).
	big, err := fs.Create("/big")
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 64<<10)
	for off := int64(0); off < 3<<20; off += int64(len(chunk)) {
		if _, err := big.WriteAt(chunk, off); err != nil {
			t.Fatal(err)
		}
	}
	if err := big.Close(); err != nil {
		t.Fatal(err)
	}
	// Reclaim runs on the background writeback threads: nudge them and
	// wait for the batch to be recorded.
	deadline := time.Now().Add(5 * time.Second)
	for col.Snapshot().Path(obs.PathWriteback).Count == 0 {
		if time.Now().After(deadline) {
			break // the assertion below reports the failure
		}
		fs.Pool().Kick()
		time.Sleep(time.Millisecond)
	}

	s := col.Snapshot()
	for _, p := range []obs.Path{
		obs.PathLazyWrite, obs.PathEagerWrite,
		obs.PathBufferedRead, obs.PathDirectRead,
		obs.PathWriteback, obs.PathNVMMFlush,
	} {
		if s.Path(p).Count == 0 {
			t.Errorf("path %s not recorded", p)
		}
	}
	if eb := s.Counter(obs.CtrEagerBlocks); eb != 2 {
		t.Errorf("eager blocks %d, want 2 (the O_SYNC file only)", eb)
	}
	if lb := s.Counter(obs.CtrLazyBlocks); lb < 2 {
		t.Errorf("lazy blocks %d, want >= 2", lb)
	}
	// The benefit model ran at the fsync.
	if s.Counter(obs.CtrBenefitEager)+s.Counter(obs.CtrBenefitLazy) == 0 {
		t.Error("benefit verdict counters empty")
	}
	spans := col.Tracer().Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	outcomes := map[string]bool{}
	for _, sp := range spans {
		outcomes[sp.Outcome] = true
	}
	for _, want := range []string{"ok", "lazy", "eager"} {
		if !outcomes[want] {
			t.Errorf("no span with outcome %q (have %v)", want, outcomes)
		}
	}
}

// TestObsDisabledIsInert checks the nil-collector default records
// nothing and changes nothing.
func TestObsDisabledIsInert(t *testing.T) {
	fs, _ := testFS(t, Options{})
	f, err := fs.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// No collector anywhere: Snapshot of a nil collector is empty.
	var c *obs.Collector
	if s := c.Snapshot(); len(s.Paths) != 0 {
		t.Fatal("nil collector recorded")
	}
}
