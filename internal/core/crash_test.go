package core

import (
	"bytes"
	"testing"

	"hinfs/internal/nvmm"
	"hinfs/internal/pmfs"
	"hinfs/internal/vfs"
)

// trackedFS builds HiNFS on a persistence-tracking device so tests can
// simulate power loss and observe exactly what a real NVMM would retain.
func trackedFS(t *testing.T) (*FS, *nvmm.Device) {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: 64 << 20, TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mkfs(dev, Options{BufferBlocks: 256, PMFS: pmfs.Options{MaxInodes: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

// TestOrderedModeCrashBeforeWriteback is the §4.1 guarantee: a lazy-
// persistent write's metadata commit record is withheld until its data
// blocks are durable. Crashing while the data is still only in DRAM must
// roll the metadata back — the file never points at unwritten blocks.
func TestOrderedModeCrashBeforeWriteback(t *testing.T) {
	fs, dev := trackedFS(t)
	// A durable reference file.
	ref, _ := fs.Create("/ref")
	ref.WriteAt(bytes.Repeat([]byte{0xAA}, 4096), 0)
	ref.Fsync()
	// A never-synced file: its writes are lazy-persistent, living only in
	// the DRAM buffer with their metadata transaction commit withheld.
	f, err := fs.Create("/ordered")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(bytes.Repeat([]byte{0xBB}, 8192), 0)
	// Power loss before any writeback or fsync.
	dev.Crash()

	base, rolled, err := pmfs.MountRecover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if rolled == 0 {
		t.Fatal("recovery rolled back no transactions")
	}
	g, err := base.Open("/ordered", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	// The uncommitted lazy write must be gone: size reverted to 0, so the
	// file never points at blocks whose data was lost with DRAM.
	if got := g.Size(); got != 0 {
		t.Fatalf("size after crash = %d, want 0 (uncommitted write visible)", got)
	}
	// The durable reference survives intact.
	r, err := base.Open("/ref", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	r.ReadAt(buf, 0)
	for i, b := range buf {
		if b != 0xAA {
			t.Fatalf("durable data corrupted at %d: %#x", i, b)
		}
	}
}

// TestCrashAfterFsyncKeepsData: once fsync returns, the data and its
// metadata survive power loss.
func TestCrashAfterFsyncKeepsData(t *testing.T) {
	fs, dev := trackedFS(t)
	f, _ := fs.Create("/durable")
	payload := bytes.Repeat([]byte{0xCD}, 3*4096)
	f.WriteAt(payload, 0)
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	dev.Crash()

	base, _, err := pmfs.MountRecover(dev)
	if err != nil {
		t.Fatal(err)
	}
	g, err := base.Open("/durable", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != int64(len(payload)) {
		t.Fatalf("size = %d", g.Size())
	}
	got := make([]byte, len(payload))
	g.ReadAt(got, 0)
	if !bytes.Equal(got, payload) {
		t.Fatal("fsynced data lost in crash")
	}
}

// TestCrashAfterEagerWriteKeepsData: eager-persistent (O_SYNC) writes are
// durable at return, like PMFS writes.
func TestCrashAfterEagerWriteKeepsData(t *testing.T) {
	fs, dev := trackedFS(t)
	f, err := fs.Open("/sync", vfs.OCreate|vfs.ORdwr|vfs.OSync)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("eager-persistent"), 0)
	dev.Crash()

	base, _, err := pmfs.MountRecover(dev)
	if err != nil {
		t.Fatal(err)
	}
	g, err := base.Open("/sync", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	g.ReadAt(got, 0)
	if string(got) != "eager-persistent" {
		t.Fatalf("O_SYNC write lost: %q", got)
	}
}

// TestCrashDuringChurnStaysConsistent runs mixed operations, crashes
// without any flush, and verifies the recovered file system is mountable
// and internally consistent (all pre-crash fsynced data intact).
func TestCrashDuringChurnStaysConsistent(t *testing.T) {
	fs, dev := trackedFS(t)
	// Durable phase.
	for i := 0; i < 8; i++ {
		f, _ := fs.Create(pathN(i))
		f.WriteAt(bytes.Repeat([]byte{byte(i + 1)}, 2048), 0)
		f.Fsync()
		f.Close()
	}
	// Volatile churn phase: writes, truncates, deletes — none synced.
	for i := 0; i < 8; i += 2 {
		f, _ := fs.Open(pathN(i), vfs.ORdwr)
		f.WriteAt(bytes.Repeat([]byte{0xFF}, 8192), 0)
		f.Close()
	}
	fs.Unlink(pathN(1))
	fs.Unlink(pathN(3))
	dev.Crash()

	base, _, err := pmfs.MountRecover(dev)
	if err != nil {
		t.Fatalf("recovered mount failed: %v", err)
	}
	// Every surviving file must be readable; fsynced content of files
	// never touched after their fsync must be intact.
	for i := 5; i < 8; i += 2 {
		f, err := base.Open(pathN(i), vfs.ORdonly)
		if err != nil {
			t.Fatalf("file %d: %v", i, err)
		}
		buf := make([]byte, 2048)
		f.ReadAt(buf, 0)
		if buf[0] != byte(i+1) || buf[2047] != byte(i+1) {
			t.Fatalf("file %d content corrupted", i)
		}
		f.Close()
	}
	// The recovered FS must support further writes.
	g, err := base.Create("/post-crash")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt([]byte("alive"), 0); err != nil {
		t.Fatal(err)
	}
	g.Close()
}

func pathN(i int) string {
	return "/churn" + string(rune('a'+i))
}
