package core

import (
	"bytes"
	"testing"
	"time"

	"hinfs/internal/buffer"
	"hinfs/internal/clock"
	"hinfs/internal/nvmm"
	"hinfs/internal/vfs"
)

func TestOpenFlagsMatrix(t *testing.T) {
	fs, _ := testFS(t, Options{})
	if _, err := fs.Open("/missing", vfs.ORdonly); err != vfs.ErrNotExist {
		t.Fatalf("open missing = %v", err)
	}
	f, err := fs.Open("/made", vfs.OCreate|vfs.ORdwr)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("abcdef"), 0)
	f.Close()
	// O_TRUNC empties it.
	g, err := fs.Open("/made", vfs.ORdwr|vfs.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 0 {
		t.Fatalf("size after O_TRUNC = %d", g.Size())
	}
	g.Close()
	// Opening a directory as a file fails.
	fs.Mkdir("/adir")
	if _, err := fs.Open("/adir", vfs.ORdonly); err != vfs.ErrIsDir {
		t.Fatalf("open dir = %v", err)
	}
}

func TestRenameReplacesBufferedTarget(t *testing.T) {
	fs, _ := testFS(t, Options{})
	src, _ := fs.Create("/src")
	src.WriteAt([]byte("source-data"), 0)
	src.Close()
	dst, _ := fs.Create("/dst")
	dst.WriteAt(bytes.Repeat([]byte{0xDD}, 3*BlockSize), 0) // buffered dirty
	dst.Close()
	if err := fs.Rename("/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open("/dst", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	buf := make([]byte, 11)
	g.ReadAt(buf, 0)
	if string(buf) != "source-data" {
		t.Fatalf("got %q", buf)
	}
	if g.Size() != 11 {
		t.Fatalf("size %d", g.Size())
	}
	fs.Sync()
	if errs := fs.Fsck(); len(errs) != 0 {
		t.Fatalf("inconsistent after replace-rename: %v", errs)
	}
}

func TestUnlinkThenRecreateSameName(t *testing.T) {
	fs, _ := testFS(t, Options{})
	for i := 0; i < 5; i++ {
		f, err := fs.Create("/cycle")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(bytes.Repeat([]byte{byte(i + 1)}, 2*BlockSize), 0)
		f.Close()
		g, _ := fs.Open("/cycle", vfs.ORdonly)
		buf := make([]byte, 1)
		g.ReadAt(buf, BlockSize)
		g.Close()
		if buf[0] != byte(i+1) {
			t.Fatalf("round %d read %#x", i, buf[0])
		}
		if err := fs.Unlink("/cycle"); err != nil {
			t.Fatal(err)
		}
	}
	fs.Sync()
	if errs := fs.Fsck(); len(errs) != 0 {
		t.Fatalf("inconsistent after churn: %v", errs)
	}
}

func TestHiNFSRemountCycle(t *testing.T) {
	d, err := nvmm.New(nvmm.Config{Size: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fs1, err := Mkfs(d, Options{BufferBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs1.Create("/survivor")
	f.WriteAt([]byte("generation 1"), 0)
	f.Close()
	fs1.Unmount()

	fs2, err := Mount(d, Options{BufferBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs2.Open("/survivor", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	g.ReadAt(buf, 0)
	if string(buf) != "generation 1" {
		t.Fatalf("got %q", buf)
	}
	// Write through the remounted instance and verify.
	h, _ := fs2.Create("/gen2")
	h.WriteAt([]byte("generation 2"), 0)
	h.Close()
	g.Close()
	if err := fs2.Unmount(); err != nil {
		t.Fatal(err)
	}
}

func TestWBVariantDropsOnDeleteToo(t *testing.T) {
	// Even HiNFS-WB (buffer everything) keeps the delete-absorption win.
	fs, dev := testFS(t, Options{DisableEagerChecker: true})
	f, _ := fs.Create("/doomed")
	f.WriteAt(make([]byte, 8*BlockSize), 0)
	f.Close()
	flushedBefore := dev.Stats().BytesFlushed
	fs.Unlink("/doomed")
	fs.Sync()
	if delta := dev.Stats().BytesFlushed - flushedBefore; delta >= 8*BlockSize {
		t.Fatalf("WB variant flushed deleted data: %d bytes", delta)
	}
}

func TestSyncMountStillReadsCorrectly(t *testing.T) {
	fs, _ := testFS(t, Options{SyncMount: true})
	f, _ := fs.Create("/s")
	defer f.Close()
	data := bytes.Repeat([]byte{0x42}, 3*BlockSize+99)
	f.WriteAt(data, 17)
	got := make([]byte, len(data))
	f.ReadAt(got, 17)
	if !bytes.Equal(got, data) {
		t.Fatal("sync-mount round trip failed")
	}
}

func TestWritebackThreadCommitsOrderedTx(t *testing.T) {
	// A lazy write's deferred commit must eventually be written by the
	// background writeback (not only by fsync): force eviction via a tiny
	// pool and watch the journal commit counter.
	fs, _ := testFS(t, Options{BufferBlocks: 8})
	before := fs.Journal().Stats().Commits
	f, _ := fs.Create("/bg")
	defer f.Close()
	for i := 0; i < 64; i++ {
		f.WriteAt(make([]byte, BlockSize), int64(i)*BlockSize)
	}
	deadline := time.Now().Add(3 * time.Second)
	for fs.Journal().Stats().Commits <= before+32 {
		if time.Now().After(deadline) {
			t.Fatalf("background writeback committed too few txs: %d -> %d",
				before, fs.Journal().Stats().Commits)
		}
		time.Sleep(5 * time.Millisecond)
		fs.Pool().Kick()
	}
}

func TestReadAtNegativeOffset(t *testing.T) {
	fs, _ := testFS(t, Options{})
	f, _ := fs.Create("/neg")
	defer f.Close()
	if _, err := f.ReadAt(make([]byte, 4), -1); err != vfs.ErrInvalid {
		t.Fatalf("negative read = %v", err)
	}
	if _, err := f.WriteAt(make([]byte, 4), -1); err != vfs.ErrInvalid {
		t.Fatalf("negative write = %v", err)
	}
	if err := f.Truncate(-5); err != vfs.ErrInvalid {
		t.Fatalf("negative truncate = %v", err)
	}
}

func TestPoolPolicyPassthrough(t *testing.T) {
	fs, _ := testFS(t, Options{Buffer: buffer.Config{Policy: buffer.FIFO}})
	if got := fs.Pool().Config().Policy; got != buffer.FIFO {
		t.Fatalf("policy = %v", got)
	}
}

func TestFakeClockDoesNotLeakIntoMetadata(t *testing.T) {
	// Ensure fake-clock mounts produce valid mtimes (no panics, sane stat).
	fk := clock.NewFake(time.Unix(1234, 0))
	fs, _ := testFS(t, Options{Clock: fk})
	f, _ := fs.Create("/t")
	f.WriteAt([]byte("x"), 0)
	f.Close()
	if _, err := fs.Stat("/t"); err != nil {
		t.Fatal(err)
	}
}
