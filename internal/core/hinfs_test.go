package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hinfs/internal/buffer"
	"hinfs/internal/clock"
	"hinfs/internal/nvmm"
	"hinfs/internal/pmfs"
	"hinfs/internal/vfs"
)

func testFS(t testing.TB, opts Options) (*FS, *nvmm.Device) {
	t.Helper()
	dev, err := nvmm.New(nvmm.Config{Size: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if opts.BufferBlocks == 0 {
		opts.BufferBlocks = 512
	}
	opts.PMFS.MaxInodes = 1024
	fs, err := Mkfs(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Unmount() })
	return fs, dev
}

// mustFile creates path and returns the concrete HiNFS file handle.
func mustFile(t *testing.T, fs *FS, path string) *File {
	t.Helper()
	v, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	return v.(*File)
}

func TestBufferedWriteReadBack(t *testing.T) {
	fs, _ := testFS(t, Options{})
	f, err := fs.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := []byte("buffered in DRAM")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// The write must be in DRAM, not yet flushed.
	if fs.Pool().DirtyBlocks() == 0 {
		t.Fatal("lazy write did not land in the DRAM buffer")
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestReadMergesDRAMAndNVMM(t *testing.T) {
	fs, _ := testFS(t, Options{})
	f, _ := fs.Create("/m")
	defer f.Close()
	// First fill a block and fsync so it is entirely on NVMM and clean.
	base := bytes.Repeat([]byte{0x11}, BlockSize)
	f.WriteAt(base, 0)
	f.Fsync()
	// Overwrite a middle slice; it stays dirty in DRAM.
	patch := bytes.Repeat([]byte{0x22}, 200)
	f.WriteAt(patch, 1000)
	got := make([]byte, BlockSize)
	f.ReadAt(got, 0)
	want := append([]byte(nil), base...)
	copy(want[1000:], patch)
	if !bytes.Equal(got, want) {
		t.Fatal("merged read does not combine DRAM and NVMM data")
	}
}

func TestFsyncPersistsAndCleans(t *testing.T) {
	fs, dev := testFS(t, Options{})
	f, _ := fs.Create("/s")
	defer f.Close()
	f.WriteAt(bytes.Repeat([]byte{7}, 3*BlockSize), 0)
	before := dev.Stats().BytesFlushed
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().BytesFlushed == before {
		t.Fatal("fsync flushed nothing to NVMM")
	}
	if n := fs.Pool().DirtyBlocks(); n != 0 {
		t.Fatalf("%d dirty blocks after fsync", n)
	}
}

func TestUnmountFlushesEverything(t *testing.T) {
	dev, _ := nvmm.New(nvmm.Config{Size: 64 << 20})
	fs, err := Mkfs(dev, Options{BufferBlocks: 512, PMFS: pmfs.Options{MaxInodes: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/persist")
	payload := bytes.Repeat([]byte("hinfs!"), 1000)
	f.WriteAt(payload, 0)
	f.Close()
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	// Remount with plain PMFS: data must be on NVMM.
	base, err := pmfs.Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	g, err := base.Open("/persist", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	g.ReadAt(got, 0)
	if !bytes.Equal(got, payload) {
		t.Fatal("buffered data lost at unmount")
	}
}

func TestUnlinkDropsDirtyBuffers(t *testing.T) {
	fs, dev := testFS(t, Options{})
	f, _ := fs.Create("/shortlived")
	f.WriteAt(bytes.Repeat([]byte{9}, 16*BlockSize), 0)
	f.Close()
	flushedBefore := dev.Stats().BytesFlushed
	if err := fs.Unlink("/shortlived"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Pool().Stats().Drops; got == 0 {
		t.Fatal("no dirty blocks dropped on unlink")
	}
	// The dropped data must not be flushed afterwards.
	fs.Sync()
	flushedAfter := dev.Stats().BytesFlushed
	// Sync may flush metadata-unrelated leftovers, but not 16 blocks.
	if flushedAfter-flushedBefore >= 16*BlockSize {
		t.Fatalf("deleted file's data reached NVMM: %d bytes", flushedAfter-flushedBefore)
	}
}

func TestOSyncWritesAreEager(t *testing.T) {
	fs, dev := testFS(t, Options{})
	f, err := fs.Open("/sync", vfs.OCreate|vfs.ORdwr|vfs.OSync)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	before := dev.Stats().BytesFlushed
	f.WriteAt(bytes.Repeat([]byte{1}, BlockSize), 0)
	if dev.Stats().BytesFlushed == before {
		t.Fatal("O_SYNC write not persisted immediately")
	}
	if fs.Pool().DirtyBlocks() != 0 {
		t.Fatal("O_SYNC write left dirty DRAM blocks")
	}
}

func TestSyncMountAllEager(t *testing.T) {
	fs, dev := testFS(t, Options{SyncMount: true})
	f, _ := fs.Create("/f")
	defer f.Close()
	before := dev.Stats().BytesFlushed
	f.WriteAt(make([]byte, BlockSize), 0)
	if dev.Stats().BytesFlushed == before {
		t.Fatal("sync-mount write not persisted immediately")
	}
}

func TestOSyncWriteEvictsBufferedBlock(t *testing.T) {
	fs, _ := testFS(t, Options{})
	// Buffer a block lazily via one handle...
	f, _ := fs.Create("/dual")
	f.WriteAt(bytes.Repeat([]byte{3}, BlockSize), 0)
	// ...then write the same block through an O_SYNC handle (case 1).
	g, err := fs.Open("/dual", vfs.ORdwr|vfs.OSync)
	if err != nil {
		t.Fatal(err)
	}
	g.WriteAt([]byte("sync!"), 100)
	if fs.Pool().DirtyBlocks() != 0 {
		t.Fatal("case-1 write left the block dirty in DRAM")
	}
	// Both writes must be visible.
	got := make([]byte, BlockSize)
	f.ReadAt(got, 0)
	if got[0] != 3 || string(got[100:105]) != "sync!" || got[200] != 3 {
		t.Fatal("case-1 eviction lost data")
	}
	f.Close()
	g.Close()
}

func TestBenefitModelMarksFrequentSyncersEager(t *testing.T) {
	fs, _ := testFS(t, Options{})
	f := mustFile(t, fs, "/db")
	defer f.Close()
	blockData := make([]byte, BlockSize)
	// Write-fsync cycles: every sync flushes all written lines, so
	// N_cf == N_cw and the inequality fails → blocks turn eager.
	for i := 0; i < 3; i++ {
		f.WriteAt(blockData, 0)
		f.Fsync()
	}
	ino := uint64(f.Ino())
	if !fs.Model().IsEager(ino, 0, fs.clk.Now()) {
		t.Fatal("write-fsync block not marked eager-persistent")
	}
	// Subsequent async writes bypass the buffer.
	dirtyBefore := fs.Pool().DirtyBlocks()
	f.WriteAt(blockData, 0)
	if fs.Pool().DirtyBlocks() != dirtyBefore {
		t.Fatal("eager block write went to the DRAM buffer")
	}
}

func TestEagerStateDecaysAfterQuietPeriod(t *testing.T) {
	fk := clock.NewFake(time.Unix(1000, 0))
	fs, _ := testFS(t, Options{Clock: fk})
	f := mustFile(t, fs, "/decay")
	defer f.Close()
	data := make([]byte, BlockSize)
	for i := 0; i < 2; i++ {
		f.WriteAt(data, 0)
		f.Fsync()
	}
	ino := uint64(f.Ino())
	if !fs.Model().IsEager(ino, 0, f.pf.LastSync()) {
		t.Fatal("precondition: block should be eager")
	}
	// After 6 quiet seconds the state decays to lazy (paper: 5 s default).
	fk.Advance(6 * time.Second)
	if fs.Model().IsEager(ino, 0, f.pf.LastSync()) {
		t.Fatal("eager state did not decay")
	}
	f.WriteAt(data, 0)
	if fs.Pool().DirtyBlocks() == 0 {
		t.Fatal("post-decay write was not buffered")
	}
}

func TestWBVariantBuffersEverything(t *testing.T) {
	fs, _ := testFS(t, Options{DisableEagerChecker: true})
	f, _ := fs.Create("/wb")
	defer f.Close()
	data := make([]byte, BlockSize)
	for i := 0; i < 3; i++ {
		f.WriteAt(data, 0)
		f.Fsync()
	}
	// Even with sync-heavy behaviour, HiNFS-WB still buffers.
	f.WriteAt(data, 0)
	if fs.Pool().DirtyBlocks() == 0 {
		t.Fatal("HiNFS-WB write bypassed the buffer")
	}
}

func TestNCLFWWholeBlockTraffic(t *testing.T) {
	mk := func(disable bool) buffer.Stats {
		fs, _ := testFS(t, Options{DisableCLFW: disable})
		f, _ := fs.Create("/x")
		// Small unaligned writes into many blocks.
		for i := 0; i < 32; i++ {
			f.WriteAt([]byte("tiny"), int64(i)*BlockSize+100)
		}
		f.Fsync()
		f.Close()
		st := fs.Pool().Stats()
		return st
	}
	clfw := mk(false)
	nclfw := mk(true)
	if nclfw.LinesFlushed <= clfw.LinesFlushed {
		t.Fatalf("NCLFW flushed %d lines, CLFW %d — CLFW must flush fewer",
			nclfw.LinesFlushed, clfw.LinesFlushed)
	}
}

func TestTruncateDropsBufferedTail(t *testing.T) {
	fs, _ := testFS(t, Options{})
	f, _ := fs.Create("/t")
	defer f.Close()
	f.WriteAt(bytes.Repeat([]byte{0xEE}, 4*BlockSize), 0)
	if err := f.Truncate(BlockSize + 100); err != nil {
		t.Fatal(err)
	}
	if got := f.Size(); got != BlockSize+100 {
		t.Fatalf("size = %d", got)
	}
	// Re-extend: everything past the cut must read zero, even though the
	// old data was buffered in DRAM.
	if err := f.Truncate(3 * BlockSize); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3*BlockSize)
	f.ReadAt(got, 0)
	for i := BlockSize + 100; i < 3*BlockSize; i++ {
		if got[i] != 0 {
			t.Fatalf("stale byte %#x at %d after truncate+extend", got[i], i)
		}
	}
	for i := 0; i < BlockSize+100; i++ {
		if got[i] != 0xEE {
			t.Fatalf("lost byte at %d", i)
		}
	}
}

func TestAppendAcrossBlocks(t *testing.T) {
	fs, _ := testFS(t, Options{})
	f, err := fs.Open("/log", vfs.OCreate|vfs.OWronly|vfs.OAppend)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	line := bytes.Repeat([]byte{0xAA}, 1000)
	for i := 0; i < 10; i++ {
		f.WriteAt(line, 0)
	}
	if f.Size() != 10000 {
		t.Fatalf("size = %d", f.Size())
	}
	got := make([]byte, 10000)
	f2, _ := fs.Open("/log", vfs.ORdonly)
	defer f2.Close()
	f2.ReadAt(got, 0)
	for i, b := range got {
		if b != 0xAA {
			t.Fatalf("byte %d = %#x", i, b)
		}
	}
}

func TestBackgroundWritebackUnderPressure(t *testing.T) {
	// A tiny pool forces eviction-driven writeback.
	fs, dev := testFS(t, Options{BufferBlocks: 16})
	f, _ := fs.Create("/big")
	defer f.Close()
	data := make([]byte, BlockSize)
	for i := 0; i < 256; i++ {
		if _, err := f.WriteAt(data, int64(i)*BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	if fs.Pool().Stats().Evictions == 0 {
		t.Fatal("no evictions despite pool pressure")
	}
	if dev.Stats().BytesFlushed == 0 {
		t.Fatal("evictions flushed nothing")
	}
	// All data still readable.
	got := make([]byte, BlockSize)
	for i := 0; i < 256; i += 37 {
		if _, err := f.ReadAt(got, int64(i)*BlockSize); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPeriodicWritebackWithFakeClock(t *testing.T) {
	fk := clock.NewFake(time.Unix(0, 0))
	fs, _ := testFS(t, Options{Clock: fk, Buffer: buffer.Config{
		FlushPeriod: 5 * time.Second,
		MaxDirtyAge: 30 * time.Second,
	}})
	f, _ := fs.Create("/aged")
	defer f.Close()
	f.WriteAt(make([]byte, BlockSize), 0)
	if fs.Pool().DirtyBlocks() != 1 {
		t.Fatal("write not buffered")
	}
	// Advance past MaxDirtyAge; the periodic thread should flush it. Keep
	// advancing in the wait loop so the writeback threads' re-armed timers
	// fire regardless of goroutine scheduling.
	deadline := time.Now().Add(2 * time.Second)
	for fs.Pool().DirtyBlocks() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("aged dirty block never written back")
		}
		fk.Advance(5 * time.Second)
		time.Sleep(2 * time.Millisecond)
	}
}

func TestOrderedModeCommitWaitsForData(t *testing.T) {
	fs, _ := testFS(t, Options{})
	jnlBefore := fs.Journal().Stats().Commits
	f, _ := fs.Create("/ordered")
	defer f.Close()
	f.WriteAt(make([]byte, BlockSize), 0)
	// The lazy write's transaction must not commit until its data block
	// persists. (Creation committed; the write tx is pending.)
	mid := fs.Journal().Stats()
	f.Fsync()
	after := fs.Journal().Stats()
	if after.Commits <= mid.Commits {
		t.Fatalf("fsync did not commit the deferred transaction (before=%d mid=%d after=%d)",
			jnlBefore, mid.Commits, after.Commits)
	}
}

func TestRandomizedConsistencyAgainstShadow(t *testing.T) {
	// Property-style test: random writes/reads/fsyncs/truncates on HiNFS
	// must always match an in-memory shadow copy.
	fs, _ := testFS(t, Options{BufferBlocks: 64})
	f, _ := fs.Create("/shadow")
	defer f.Close()
	const maxSize = 48 * BlockSize
	shadow := make([]byte, 0, maxSize)
	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 800; op++ {
		switch rng.Intn(10) {
		case 0:
			f.Fsync()
		case 1:
			n := rng.Intn(len(shadow) + 1)
			f.Truncate(int64(n))
			shadow = shadow[:n]
		default:
			off := rng.Intn(maxSize - 1)
			n := 1 + rng.Intn(8000)
			if off+n > maxSize {
				n = maxSize - off
			}
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(rng.Intn(256))
			}
			if _, err := f.WriteAt(data, int64(off)); err != nil {
				t.Fatal(err)
			}
			if off+n > len(shadow) {
				shadow = append(shadow, make([]byte, off+n-len(shadow))...)
			}
			copy(shadow[off:], data)
		}
		if op%50 == 0 {
			if got, want := f.Size(), int64(len(shadow)); got != want {
				t.Fatalf("op %d: size %d, want %d", op, got, want)
			}
			got := make([]byte, len(shadow))
			f.ReadAt(got, 0)
			if !bytes.Equal(got, shadow) {
				for i := range got {
					if got[i] != shadow[i] {
						t.Fatalf("op %d: first mismatch at byte %d (block %d line %d): got %#x want %#x",
							op, i, i/BlockSize, (i%BlockSize)/64, got[i], shadow[i])
					}
				}
			}
		}
	}
}

func TestMmapDirectAccess(t *testing.T) {
	fs, _ := testFS(t, Options{})
	f := mustFile(t, fs, "/mapped")
	defer f.Close()
	f.WriteAt([]byte("before map"), 0)
	m, err := f.Mmap(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(m[:10]) != "before map" {
		t.Fatalf("mapped view stale: %q", m[:10])
	}
	copy(m, "direct st!")
	if err := f.Msync(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	f.ReadAt(got, 0)
	if string(got) != "direct st!" {
		t.Fatalf("read after mmap store: %q", got)
	}
	if err := f.Munmap(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentFilesUnderSmallPool(t *testing.T) {
	fs, _ := testFS(t, Options{BufferBlocks: 32})
	const workers = 8
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			path := fmt.Sprintf("/c%d", w)
			f, err := fs.Create(path)
			if err != nil {
				errc <- err
				return
			}
			defer f.Close()
			pat := bytes.Repeat([]byte{byte(w + 1)}, BlockSize)
			for i := 0; i < 32; i++ {
				if _, err := f.WriteAt(pat, int64(i)*BlockSize); err != nil {
					errc <- err
					return
				}
			}
			if w%2 == 0 {
				if err := f.Fsync(); err != nil {
					errc <- err
					return
				}
			}
			buf := make([]byte, BlockSize)
			for i := 0; i < 32; i++ {
				f.ReadAt(buf, int64(i)*BlockSize)
				if buf[0] != byte(w+1) || buf[BlockSize-1] != byte(w+1) {
					errc <- fmt.Errorf("worker %d corrupt block %d", w, i)
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestStatSeesBufferedSize(t *testing.T) {
	fs, _ := testFS(t, Options{})
	f, _ := fs.Create("/sz")
	defer f.Close()
	f.WriteAt(make([]byte, 5000), 0)
	fi, err := fs.Stat("/sz")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 5000 {
		t.Fatalf("Stat size %d before flush", fi.Size)
	}
}
