// Package benefit implements HiNFS's Buffer Benefit Model (paper §3.3.2):
// the policy that classifies asynchronous writes as lazy-persistent
// (buffer in DRAM) or eager-persistent (write NVMM directly) before the
// write is issued.
//
// Each data block carries a state bit (Lazy-Persistent or
// Eager-Persistent). At every synchronization operation the model
// evaluates, per related block, Inequality (1):
//
//	N_cw·L_dram + N_cf·L_nvmm < N_cw·L_nvmm
//
// where N_cw is the number of cacheline writes to the block since its
// previous synchronization and N_cf is the number of cacheline flushes
// the synchronization itself would perform. A block satisfying the
// inequality benefits from buffering and is set Lazy-Persistent;
// otherwise it is set Eager-Persistent and subsequent asynchronous writes
// go directly to NVMM. A block decays back to Lazy-Persistent when its
// file has not seen a synchronization for EagerDecay (5 s default).
//
// N_cf is measured with a ghost buffer: a bounded index that pretends
// every write was buffered but stores only cacheline bitmaps, not data
// (<1 % of the real buffer's memory). The model also records prediction
// accuracy — whether a block's consecutive synchronizations agree — which
// regenerates the paper's Figure 6.
package benefit

import (
	"sync"
	"time"

	"hinfs/internal/buffer"
	"hinfs/internal/cacheline"
	"hinfs/internal/clock"
	"hinfs/internal/obs"
)

// Config parameterizes the model. Zero fields take paper defaults.
type Config struct {
	// DRAMWriteLatency is L_dram per cacheline (default 25 ns).
	DRAMWriteLatency time.Duration
	// NVMMWriteLatency is L_nvmm per cacheline (default 200 ns).
	NVMMWriteLatency time.Duration
	// EagerDecay switches a block back to Lazy-Persistent after this long
	// without a synchronization on its file (default 5 s).
	EagerDecay time.Duration
	// GhostBlocks bounds the ghost buffer (default 4096 blocks; size it
	// like the real DRAM buffer).
	GhostBlocks int
	// Obs, when non-nil, counts each synchronization's per-block
	// verdicts (obs.CtrBenefitEager / CtrBenefitLazy), exposing the
	// ghost-buffer decision mix to the observability layer.
	Obs *obs.Collector
}

// SizeGhostFromBuffer sizes the ghost buffer from the real DRAM write
// buffer's resolved configuration (paper §3.3.2: the ghost buffer "has the
// same number of entries as the write buffer" while storing only bitmaps).
// It is a no-op if GhostBlocks was set explicitly.
func (c *Config) SizeGhostFromBuffer(b buffer.Config) {
	if c.GhostBlocks == 0 {
		c.GhostBlocks = b.Blocks
	}
}

func (c *Config) fill() {
	if c.DRAMWriteLatency == 0 {
		c.DRAMWriteLatency = 25 * time.Nanosecond
	}
	if c.NVMMWriteLatency == 0 {
		c.NVMMWriteLatency = 200 * time.Nanosecond
	}
	if c.EagerDecay == 0 {
		c.EagerDecay = 5 * time.Second
	}
	if c.GhostBlocks == 0 {
		c.GhostBlocks = 4096
	}
}

// blockState is the per-block model state.
type blockState struct {
	eager bool
	// ncw counts cacheline writes since the block's last synchronization.
	ncw int
	// decidedAt is when the current state was last decided by a sync.
	decidedAt time.Time
	// prevSatisfied/hasPrev drive the Figure-6 accuracy metric.
	prevSatisfied bool
	hasPrev       bool
}

// ghostEntry tracks the would-be dirty cachelines of one block.
type ghostEntry struct {
	ino   uint64
	idx   int64
	dirty cacheline.Bitmap
	prev  *ghostEntry
	next  *ghostEntry
}

type ghostKey struct {
	ino uint64
	idx int64
}

// fileState aggregates a file's recent synchronization behaviour so that
// blocks with no history of their own (fresh appends) inherit the file's
// tendency: a mail server's append-fsync pattern marks the whole file's
// new blocks Eager-Persistent, matching the paper's Varmail and Facebook
// observations (§5.2.1, §5.3).
type fileState struct {
	newBlockEager bool
	decidedAt     time.Time
}

// Model is the eager-persistent write checker's decision engine. It is
// safe for concurrent use.
type Model struct {
	cfg Config
	clk clock.Clock

	mu        sync.Mutex
	files     map[uint64]map[int64]*blockState
	fileStats map[uint64]*fileState
	ghost     map[ghostKey]*ghostEntry
	gHead     *ghostEntry // MRU
	gTail     *ghostEntry // LRU
	gCount    int

	accurate  int64
	decisions int64
}

// NewModel creates a model.
func NewModel(clk clock.Clock, cfg Config) *Model {
	cfg.fill()
	return &Model{
		cfg:       cfg,
		clk:       clk,
		files:     make(map[uint64]map[int64]*blockState),
		fileStats: make(map[uint64]*fileState),
		ghost:     make(map[ghostKey]*ghostEntry),
	}
}

// Config returns the model configuration after defaulting.
func (m *Model) Config() Config { return m.cfg }

func (m *Model) state(ino uint64, idx int64) *blockState {
	f := m.files[ino]
	if f == nil {
		f = make(map[int64]*blockState)
		m.files[ino] = f
	}
	s := f[idx]
	if s == nil {
		// New blocks start Lazy-Persistent (§3.3.2).
		s = &blockState{}
		f[idx] = s
	}
	return s
}

// --- ghost buffer LRU ---

func (m *Model) ghostPushFront(e *ghostEntry) {
	e.prev = nil
	e.next = m.gHead
	if m.gHead != nil {
		m.gHead.prev = e
	}
	m.gHead = e
	if m.gTail == nil {
		m.gTail = e
	}
}

func (m *Model) ghostUnlink(e *ghostEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.gHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.gTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (m *Model) ghostTouch(ino uint64, idx int64, mask cacheline.Bitmap) {
	k := ghostKey{ino, idx}
	e := m.ghost[k]
	if e == nil {
		if m.gCount >= m.cfg.GhostBlocks && m.gTail != nil {
			// Evict the LRU ghost entry: in the real buffer its lines
			// would have been flushed in the background, which N_cf
			// excludes by definition.
			victim := m.gTail
			m.ghostUnlink(victim)
			delete(m.ghost, ghostKey{victim.ino, victim.idx})
			m.gCount--
		}
		e = &ghostEntry{ino: ino, idx: idx}
		m.ghost[k] = e
		m.gCount++
	} else {
		m.ghostUnlink(e)
	}
	e.dirty |= mask
	m.ghostPushFront(e)
}

// RecordWrite tells the model a write covered the cachelines of mask in
// block idx of file ino. Call it for every asynchronous write, buffered
// or direct, before or after issuing it.
func (m *Model) RecordWrite(ino uint64, idx int64, mask cacheline.Bitmap) {
	m.mu.Lock()
	s := m.state(ino, idx)
	s.ncw += mask.Count()
	m.ghostTouch(ino, idx, mask)
	m.mu.Unlock()
}

// IsEager reports whether an asynchronous write to block idx must bypass
// the DRAM buffer. lastSync is the file's last synchronization time: a
// block whose file has not synced within EagerDecay decays to
// Lazy-Persistent (the paper's 5 s rule, applied at write time using the
// file's recorded sync time rather than by scanning).
func (m *Model) IsEager(ino uint64, idx int64, lastSync time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.clk.Now().Sub(lastSync) > m.cfg.EagerDecay {
		// The file has been quiet: everything decays to Lazy-Persistent.
		if s := m.files[ino][idx]; s != nil {
			s.eager = false
		}
		return false
	}
	s := m.files[ino][idx]
	if s == nil || !s.hasPrev {
		// No per-block history: inherit the file's recent tendency.
		fst := m.fileStats[ino]
		return fst != nil && fst.newBlockEager
	}
	return s.eager
}

// OnSync re-evaluates Inequality (1) for every block of ino written since
// its previous synchronization and returns the number of blocks set
// Eager-Persistent. The ghost buffer supplies N_cf.
func (m *Model) OnSync(ino uint64) (eager, lazy int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clk.Now()
	f := m.files[ino]
	for idx, s := range f {
		var ncf int
		k := ghostKey{ino, idx}
		if e := m.ghost[k]; e != nil {
			ncf = e.dirty.Count()
			e.dirty = 0 // the sync flushes them
		}
		if s.ncw == 0 && ncf == 0 {
			continue // not involved in this synchronization
		}
		ld := int64(m.cfg.DRAMWriteLatency)
		ln := int64(m.cfg.NVMMWriteLatency)
		satisfied := int64(s.ncw)*ld+int64(ncf)*ln < int64(s.ncw)*ln
		if s.hasPrev {
			m.decisions++
			if s.prevSatisfied == satisfied {
				m.accurate++
			}
		}
		s.prevSatisfied = satisfied
		s.hasPrev = true
		s.eager = !satisfied
		s.decidedAt = now
		s.ncw = 0
		if s.eager {
			eager++
		} else {
			lazy++
		}
	}
	if eager+lazy > 0 {
		fst := m.fileStats[ino]
		if fst == nil {
			fst = &fileState{}
			m.fileStats[ino] = fst
		}
		fst.newBlockEager = eager > lazy
		fst.decidedAt = now
	}
	m.cfg.Obs.Add(obs.CtrBenefitEager, int64(eager))
	m.cfg.Obs.Add(obs.CtrBenefitLazy, int64(lazy))
	return eager, lazy
}

// MarkEager forces every tracked block of ino into the Eager-Persistent
// state (used by mmap: §4.2 sets all mapped blocks eager until munmap).
func (m *Model) MarkEager(ino uint64, indices []int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, idx := range indices {
		s := m.state(ino, idx)
		s.eager = true
		s.hasPrev = true // authoritative: not a prediction
		s.decidedAt = m.clk.Now()
	}
}

// DropFile forgets all state for ino (unlink).
func (m *Model) DropFile(ino uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for idx := range m.files[ino] {
		k := ghostKey{ino, idx}
		if e := m.ghost[k]; e != nil {
			m.ghostUnlink(e)
			delete(m.ghost, k)
			m.gCount--
		}
	}
	delete(m.files, ino)
	delete(m.fileStats, ino)
}

// Accuracy returns the Figure-6 metric: of all per-block synchronization
// pairs, how many made the same satisfy/violate decision as the previous
// one.
func (m *Model) Accuracy() (accurate, total int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.accurate, m.decisions
}

// GhostLen returns the current ghost buffer occupancy (tests).
func (m *Model) GhostLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gCount
}
